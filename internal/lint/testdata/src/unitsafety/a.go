// Fixture for the unitsafety analyzer, type-checked under a simulator
// package path: dimension mixing through untyped conversions, and raw
// divisions the units package already provides safe helpers for.
package pfs

import "units"

func bad(t units.Time, b units.Bytes, r units.Rate, f units.Hertz, c units.Cycles) {
	_ = int64(t) + int64(b)     // want `mixes units.Time and units.Bytes`
	_ = float64(b) / float64(r) // want `raw division of units.Bytes by units.Rate`
	_ = float64(c) / float64(f) // want `raw division of units.Cycles by units.Hertz`
	_ = float64(b) / float64(t) // want `raw division of units.Bytes by units.Time`
	_ = int64(b) > int64(t)     // want `mixes units.Bytes and units.Time`
}

func good(t units.Time, b units.Bytes, r units.Rate, f units.Hertz, c units.Cycles) {
	_ = r.TimeFor(b)        // the safe form of Bytes over Rate
	_ = f.Duration(c)       // the safe form of Cycles over Hertz
	_ = units.Over(b, t)    // the safe form of Bytes over Time
	_ = int64(t) - int64(t) // same dimension: fine
	_ = int64(t) + 5        // unitless operand: fine
	d := t + 10*t           // typed arithmetic inside one dimension: fine
	_ = d
}

func reviewed(t units.Time, b units.Bytes) {
	//lint:unitmix reviewed: opaque progress scalar for a UI meter
	_ = int64(t) + int64(b)
}
