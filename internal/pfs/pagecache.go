package pfs

import (
	"fmt"

	"sais/internal/sim"
	"sais/internal/units"
)

// PageCache models the I/O server's buffer cache with readahead: a miss
// on any byte of a window reads the whole window from disk once, and
// subsequent requests for the window — later strips of the same stream,
// or the same data re-read by another client — are served from memory.
// This is what lets a PVFS server sustain NIC-rate delivery for
// sequential and shared workloads, and it is the mechanism behind the
// paper's multi-client experiment (Figure 12), where eight servers
// serve far more than eight disks could.
type PageCache struct {
	eng      *sim.Engine
	capacity units.Bytes
	window   units.Bytes
	used     units.Bytes

	entries map[pageKey]*pageEntry
	// lru is maintained with an intrusive doubly-linked list.
	head, tail *pageEntry
	// inflight tracks windows being read from disk; arrivals during the
	// read queue as waiters rather than issuing duplicate disk I/O.
	inflight map[pageKey][]sim.Event

	hits, misses, merged uint64
}

type pageKey struct {
	file FileID
	win  int64
}

type pageEntry struct {
	key        pageKey
	prev, next *pageEntry
}

// NewPageCache builds a cache of capacity bytes with the given
// readahead window. A zero or negative capacity disables caching
// (every Get is a miss and nothing is stored).
func NewPageCache(eng *sim.Engine, capacity, window units.Bytes) *PageCache {
	if window <= 0 {
		panic(fmt.Sprintf("pfs: page cache window %d must be positive", window))
	}
	return &PageCache{
		eng:      eng,
		capacity: capacity,
		window:   window,
		entries:  make(map[pageKey]*pageEntry),
		inflight: make(map[pageKey][]sim.Event),
	}
}

// Window returns the readahead window size.
func (c *PageCache) Window() units.Bytes { return c.window }

// Hits returns window lookups served from memory.
func (c *PageCache) Hits() uint64 { return c.hits }

// Misses returns window lookups that required disk I/O.
func (c *PageCache) Misses() uint64 { return c.misses }

// Merged returns window lookups that piggybacked on in-flight I/O.
func (c *PageCache) Merged() uint64 { return c.merged }

// Windows returns the window indices covering [offset, offset+size).
func (c *PageCache) Windows(offset, size units.Bytes) (first, last int64) {
	first = int64(offset / c.window)
	last = int64((offset + size - 1) / c.window)
	return first, last
}

// WindowExtent returns the byte range of window win.
func (c *PageCache) WindowExtent(win int64) (offset, size units.Bytes) {
	return units.Bytes(win) * c.window, c.window
}

// Get requests window win of file. ready fires as soon as the window is
// resident (immediately on a hit). fetch is invoked on a true miss and
// must perform the disk read, calling the provided completion when the
// bytes are in memory; the cache fires every queued waiter then.
func (c *PageCache) Get(file FileID, win int64, ready sim.Event, fetch func(done sim.Event)) {
	key := pageKey{file: file, win: win}
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.touch(e)
		c.eng.Immediately(ready)
		return
	}
	if waiters, ok := c.inflight[key]; ok {
		c.merged++
		c.inflight[key] = append(waiters, ready)
		return
	}
	c.misses++
	c.inflight[key] = []sim.Event{ready}
	fetch(func(now units.Time) {
		c.install(key)
		waiters := c.inflight[key]
		delete(c.inflight, key)
		for _, w := range waiters {
			w(now)
		}
	})
}

// Put marks window win of file resident without disk I/O — the
// write path populating the cache, so a later read of freshly written
// data is served from memory.
func (c *PageCache) Put(file FileID, win int64) {
	key := pageKey{file: file, win: win}
	if e, ok := c.entries[key]; ok {
		c.touch(e)
		return
	}
	c.install(key)
}

// install inserts the window, evicting LRU windows to fit.
func (c *PageCache) install(key pageKey) {
	if c.capacity <= 0 {
		return
	}
	if _, ok := c.entries[key]; ok {
		return
	}
	for c.used+c.window > c.capacity && c.tail != nil {
		c.evict(c.tail)
	}
	if c.used+c.window > c.capacity {
		return // window larger than the whole cache
	}
	e := &pageEntry{key: key}
	c.entries[key] = e
	c.used += c.window
	c.pushFront(e)
}

func (c *PageCache) evict(e *pageEntry) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.used -= c.window
}

func (c *PageCache) touch(e *pageEntry) {
	c.unlink(e)
	c.pushFront(e)
}

func (c *PageCache) pushFront(e *pageEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *PageCache) unlink(e *pageEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Used returns resident bytes.
func (c *PageCache) Used() units.Bytes { return c.used }

// Len returns resident windows.
func (c *PageCache) Len() int { return len(c.entries) }

// CheckInvariants validates list/map consistency for tests.
func (c *PageCache) CheckInvariants() error {
	n := 0
	for e := c.head; e != nil; e = e.next {
		if got, ok := c.entries[e.key]; !ok || got != e {
			return fmt.Errorf("pfs: list entry %v not in map", e.key)
		}
		if e.next == nil && c.tail != e {
			return fmt.Errorf("pfs: tail mismatch")
		}
		n++
	}
	if n != len(c.entries) {
		return fmt.Errorf("pfs: list has %d entries, map %d", n, len(c.entries))
	}
	if c.used != units.Bytes(n)*c.window {
		return fmt.Errorf("pfs: used %v != %d windows", c.used, n)
	}
	if c.capacity > 0 && c.used > c.capacity {
		return fmt.Errorf("pfs: over capacity")
	}
	return nil
}
