package experiments

import (
	"testing"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/units"
)

// TestPaperClaims is the regression suite for the reproduction itself:
// each subtest pins one claim from the paper's evaluation to a band the
// simulator must stay inside. If a refactor or recalibration moves a
// headline shape, this is the test that names the broken claim.
//
// Bands are intentionally wide — the target is the paper's *shape*
// (who wins, by roughly what factor, where the crossovers fall), not
// its absolute testbed numbers. EXPERIMENTS.md records the exact
// measured values.
func TestPaperClaims(t *testing.T) {
	pair := func(t *testing.T, cfg cluster.Config) (base, sais *cluster.Result) {
		t.Helper()
		base, err := cluster.Run(cfg.WithPolicy(irqsched.PolicyIrqbalance))
		if err != nil {
			t.Fatal(err)
		}
		sais, err = cluster.Run(cfg.WithPolicy(irqsched.PolicySourceAware))
		if err != nil {
			t.Fatal(err)
		}
		return base, sais
	}
	speedup := func(base, sais *cluster.Result) float64 {
		return float64(sais.Bandwidth)/float64(base.Bandwidth) - 1
	}

	std := cluster.DefaultConfig()
	std.BytesPerProc = 24 * units.MiB

	t.Run("3gbit-peak-speedup-in-twenties", func(t *testing.T) {
		// Paper: max +23.57 % at 48 servers on the 3-Gbit NIC.
		cfg := std
		cfg.Servers = 48
		base, sais := pair(t, cfg)
		if got := speedup(base, sais); got < 0.10 || got > 0.40 {
			t.Errorf("48-server 3-Gbit speed-up %.1f%% outside [10%%, 40%%] (paper: 23.57%%)", got*100)
		}
	})

	t.Run("speedup-grows-from-8-servers", func(t *testing.T) {
		// Paper: the gain rises with server count as the NIC-side
		// bottleneck clears.
		small := std
		small.Servers = 8
		large := std
		large.Servers = 32
		b8, s8 := pair(t, small)
		b32, s32 := pair(t, large)
		if speedup(b8, s8) >= speedup(b32, s32) {
			t.Errorf("speed-up at 8 servers (%.1f%%) not below 32 servers (%.1f%%)",
				speedup(b8, s8)*100, speedup(b32, s32)*100)
		}
	})

	t.Run("1gbit-bottleneck-compresses-gain", func(t *testing.T) {
		// Paper: 1-Gbit peak is only 6.05 %.
		cfg := std
		cfg.Servers = 32
		cfg.ClientNICRate = units.Gigabit
		base, sais := pair(t, cfg)
		if got := speedup(base, sais); got < 0 || got > 0.08 {
			t.Errorf("1-Gbit speed-up %.1f%% outside [0%%, 8%%] (paper: ≤6.05%%)", got*100)
		}
	})

	t.Run("missrate-reduction-near-forty-percent", func(t *testing.T) {
		// Paper Fig. 7: ≈40 % reduction at the headline transfer size.
		cfg := std
		cfg.Servers = 16
		base, sais := pair(t, cfg)
		red := 1 - sais.CacheMissRate/base.CacheMissRate
		if red < 0.25 || red > 0.60 {
			t.Errorf("miss-rate reduction %.1f%% outside [25%%, 60%%] (paper: ≈40%%)", red*100)
		}
	})

	t.Run("unhalted-cycles-reduced", func(t *testing.T) {
		// Paper Figs. 10/11: up to 27 % (1-Gbit) and 48 % (3-Gbit).
		cfg := std
		cfg.Servers = 16
		base, sais := pair(t, cfg)
		red := 1 - float64(sais.UnhaltedCycles)/float64(base.UnhaltedCycles)
		if red < 0.15 || red > 0.65 {
			t.Errorf("unhalted reduction %.1f%% outside [15%%, 65%%]", red*100)
		}
	})

	t.Run("sais-zero-migration", func(t *testing.T) {
		// The mechanism itself: with pinned processes every hinted strip
		// lands on its consumer; no cache-to-cache traffic remains.
		cfg := std
		cfg.Servers = 16
		_, sais := pair(t, cfg)
		if sais.RemoteLines != 0 {
			t.Errorf("SAIs migrated %d lines", sais.RemoteLines)
		}
	})

	t.Run("no-nic-bottleneck-gain-near-fifty", func(t *testing.T) {
		// Paper §VI: +53.23 % with the client at memory rate.
		e := Figure14()
		cfg := e.Cells[2].Config // 4 apps
		base, sais := pair(t, cfg)
		if got := speedup(base, sais); got < 0.30 || got > 0.80 {
			t.Errorf("no-bottleneck speed-up %.1f%% outside [30%%, 80%%] (paper: 53.23%%)", got*100)
		}
	})

	t.Run("multiclient-gain-decays-past-saturation", func(t *testing.T) {
		// Paper Fig. 12: +20.46 % at 8 clients decaying to +1.39 % at 56.
		peak := cluster.DefaultConfig()
		peak.Clients = 8
		peak.Servers = 8
		peak.SharedFiles = true
		peak.BytesPerProc = 8 * units.MiB
		over := peak
		over.Clients = 48
		bp, sp := pair(t, peak)
		bo, so := pair(t, over)
		if speedup(bp, sp) <= speedup(bo, so) {
			t.Errorf("gain at 8 clients (%.1f%%) not above 48 clients (%.1f%%)",
				speedup(bp, sp)*100, speedup(bo, so)*100)
		}
		if got := speedup(bo, so); got > 0.05 {
			t.Errorf("overloaded gain %.1f%% should be marginal (paper: 1.39%% at 56)", got*100)
		}
	})

	t.Run("writes-unaffected", func(t *testing.T) {
		// Paper §I: no locality issue on the write path.
		cfg := std
		cfg.Servers = 16
		cfg.WriteWorkload = true
		base, sais := pair(t, cfg)
		if got := speedup(base, sais); got > 0.03 || got < -0.03 {
			t.Errorf("write-path difference %.2f%% should be ≈0", got*100)
		}
	})
}
