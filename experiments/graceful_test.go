package experiments

import (
	"strings"
	"testing"

	"sais/cluster"
	"sais/internal/faults"
	"sais/internal/irqsched"
	"sais/internal/units"
)

// smallGraceful shrinks the default study for test turnaround: one
// policy, a 4-server cluster, the same permanent crash.
func smallGraceful() GracefulSweep {
	g := GracefulDegradation()
	g.Policies = []irqsched.PolicyKind{irqsched.PolicySourceAware}
	cfg := cluster.DefaultConfig()
	cfg.Servers = 4
	cfg.TransferSize = 256 * units.KiB
	cfg.BytesPerProc = units.MiB
	cfg.RetryTimeout = 5 * units.Millisecond
	cfg.MaxRetries = 6
	cfg.RetryBackoff = 2
	cfg.RetryJitter = 0.1
	cfg.Faults = &faults.Plan{Timeline: []faults.TimelineEvent{
		{At: units.Millisecond, Kind: faults.KindCrash, Server: 0},
	}}
	g.Config = cfg
	g.Deadlines = []units.Time{0, 30 * units.Millisecond}
	return g
}

// TestGracefulDegradationSalvages: the deadline posture converts
// hard failures into partial deliveries — strictly more bytes reach
// the application than under hard-fail, and the partial accounting is
// typed, not silent.
func TestGracefulDegradationSalvages(t *testing.T) {
	rep, err := smallGraceful().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	hard, soft := rep.Rows[0], rep.Rows[1]
	if hard.Deadline != 0 || soft.Deadline == 0 {
		t.Fatalf("row order: %+v / %+v", hard, soft)
	}
	if hard.FailedOps == 0 {
		t.Error("hard-fail posture abandoned nothing; the crash is not biting")
	}
	if hard.PartialOps != 0 {
		t.Errorf("hard-fail posture reported %d partial ops without a deadline", hard.PartialOps)
	}
	if soft.PartialOps == 0 {
		t.Error("deadline posture produced no partial results")
	}
	if soft.PartialBytes == 0 {
		t.Error("partial results salvaged zero bytes")
	}
	if soft.Goodput <= hard.Goodput {
		t.Errorf("deadline goodput %.3f not above hard-fail %.3f", soft.Goodput, hard.Goodput)
	}
}

// TestGracefulDeterministicRender: the report is a pure function of
// the sweep spec — rendering twice yields byte-identical text.
func TestGracefulDeterministicRender(t *testing.T) {
	g := smallGraceful()
	r1, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	g2 := smallGraceful()
	g2.Parallel = 2
	r2, err := g2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() {
		t.Errorf("tables differ across worker counts:\n%s\n---\n%s", r1.Table(), r2.Table())
	}
	if !strings.Contains(r1.CSV(), "deadline_ns,") {
		t.Error("CSV missing header")
	}
	if r1.CSV() != r2.CSV() {
		t.Error("CSV differs across worker counts")
	}
}
