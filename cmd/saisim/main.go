// Command saisim runs a single simulated cluster under one interrupt
// scheduling policy and prints the paper's four metrics. It is the
// exploratory front-end to the library; cmd/experiments regenerates the
// paper's figures.
//
// Example:
//
//	saisim -policy sais -servers 48 -transfer 1MiB -nic 3
//	saisim -policy irqbalance -servers 16 -procs 4 -trace
//	saisim -timeout 30s -clients 32 -servers 48
//	saisim -loss 0.01 -retry 20ms -max-retries 12
//	saisim -crash 0 -crash-at 5ms -revive-at 35ms -retry 20ms -max-retries 12
//	saisim -fault-plan chaos.json -retry 20ms -max-retries 12
//	saisim -background-users 1000000 -foreground-clients 64
//	saisim run scenarios/crash-recover.json
//	saisim chaos -n 20 -seed 7
//
// `saisim run` executes serializable scenario files (see
// internal/scenario) and exits nonzero when an assertion or runtime
// invariant fails; `saisim chaos` soaks the invariant suite over
// freshly derived chaos timelines.
//
// Ctrl-C (SIGINT) or an expired -timeout stops the simulation at
// event-loop granularity; the metrics accumulated up to that point are
// still printed, marked as partial. A completed run whose transfers
// failed after exhausting their retries also exits nonzero, with a
// one-line summary on stderr — a faulted run never looks clean to CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"sais/cluster"
	"sais/internal/faults"
	"sais/internal/flowsim"
	"sais/internal/irqsched"
	"sais/internal/prof"
	"sais/internal/trace"
	"sais/internal/units"
)

// profiler is package-level so fatal (which exits without running
// defers) can flush profiles too.
var profiler *prof.Profiler

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "run":
			os.Exit(runScenarioCmd(os.Args[2:]))
		case "chaos":
			os.Exit(chaosSoakCmd(os.Args[2:]))
		}
	}
	var (
		policyName = flag.String("policy", "sais", "scheduling policy: "+strings.Join(irqsched.Names(), "|"))
		servers    = flag.Int("servers", 16, "number of PVFS I/O server nodes")
		clients    = flag.Int("clients", 1, "number of client nodes")
		procs      = flag.Int("procs", 2, "IOR processes per client")
		cores      = flag.Int("cores", 8, "cores per client")
		nicGbit    = flag.Float64("nic", 3, "client NIC rate in Gbit/s")
		transfer   = flag.String("transfer", "1MiB", "transfer size (e.g. 128KiB, 1MiB, 2MiB)")
		perProc    = flag.String("bytes", "32MiB", "bytes each process reads")
		shared     = flag.Bool("shared", false, "clients read shared files (Figure-12 mode)")
		migrate    = flag.Float64("migrate", 0, "probability a process migrates while blocked on I/O")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		verbose    = flag.Bool("v", false, "print the busy-time breakdown")
		traceN     = flag.Int("trace", 0, "print the last N client trace events")
		traceOut   = flag.String("trace-out", "", "record per-strip lifecycle spans and write a Chrome trace-event JSON file (load in Perfetto or chrome://tracing)")
		asJSON     = flag.Bool("json", false, "emit the result as JSON")
		configPath = flag.String("config", "", "load the cluster configuration from a JSON file (flags below still override)")
		saveConfig = flag.String("save-config", "", "write the effective configuration to a JSON file")
		timeout    = flag.Duration("timeout", 0, "abort the simulation after this long of wall-clock time (0 = no limit)")

		faultPlan  = flag.String("fault-plan", "", "load a fault plan (JSON, see internal/faults) and apply it to the run")
		loss       = flag.Float64("loss", 0, "frame loss probability on the fabric [0,1); implies degraded mode")
		crashSrv   = flag.Int("crash", 0, "server index to crash (with -crash-at/-revive-at)")
		crashAt    = flag.Duration("crash-at", 0, "crash -crash server at this simulated time (0 = no crash)")
		reviveAt   = flag.Duration("revive-at", 0, "revive the crashed server at this simulated time (0 = stays down)")
		retry      = flag.Duration("retry", 0, "client retry timeout for lost transfers (0 = retries off)")
		maxRetries = flag.Int("max-retries", 0, "retries per transfer before abandoning it")

		bgUsers    = flag.Int("background-users", 0, "analytic background users sharing the cluster (hybrid-fidelity mode, see DESIGN.md §14)")
		fgClients  = flag.Int("foreground-clients", 0, "full-fidelity foreground client nodes (overrides -clients when set)")
		tenantMix  = flag.String("tenant-mix", "", "tenant mix as inline JSON (starts with '[') or a path to a JSON file; default: one constant-rate tenant")
		bgRate     = flag.Float64("bg-user-bps", 4096, "per-user mean rate in bytes/s for the default single-tenant mix")
		bgColocate = flag.Float64("bg-colocate", 0.2, "fraction of default-mix background traffic landing on client NICs")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		progress   = flag.Bool("progress", false, "print a progress heartbeat to stderr while the run executes")
		shardsN    = flag.Int("shards", 0, "partition the cluster over this many event engines (0/1 = single engine; results are identical for any value)")
		workersN   = flag.Int("workers", 0, "goroutines driving the shards (clamped to the shard count)")
	)
	flag.Parse()

	var err error
	profiler, err = prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer profiler.Stop()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, *timeout)
		defer cancelTimeout()
	}

	policy, err := irqsched.ParsePolicy(*policyName)
	if err != nil {
		fatal(err)
	}
	xfer, err := units.ParseBytes(*transfer)
	if err != nil {
		fatal(err)
	}
	budget, err := units.ParseBytes(*perProc)
	if err != nil {
		fatal(err)
	}

	cfg := cluster.DefaultConfig()
	if *configPath != "" {
		loaded, err := cluster.LoadConfig(*configPath)
		if err != nil {
			fatal(err)
		}
		cfg = loaded
	}
	cfg.Policy = policy
	cfg.Servers = *servers
	cfg.Clients = *clients
	cfg.ProcsPerClient = *procs
	cfg.CoresPerClient = *cores
	cfg.ClientNICRate = units.Rate(*nicGbit) * units.Gigabit
	cfg.TransferSize = xfer
	cfg.BytesPerProc = budget
	cfg.SharedFiles = *shared
	cfg.MigrateDuringBlock = *migrate
	cfg.Seed = *seed
	if *shardsN > 0 {
		cfg.Shards = *shardsN
	}
	if *workersN > 0 {
		cfg.Workers = *workersN
	}
	// Nonzero (not just positive) passes through, so negatives reach
	// cluster validation instead of being silently ignored.
	if *fgClients != 0 {
		cfg.ForegroundClients = *fgClients
	}
	if *bgUsers != 0 {
		cfg.BackgroundUsers = *bgUsers
	}
	if *tenantMix != "" {
		mix, err := loadTenantMix(*tenantMix)
		if err != nil {
			fatal(err)
		}
		cfg.TenantMix = mix
	}
	if cfg.BackgroundUsers > 0 && len(cfg.TenantMix) == 0 {
		// Bare -background-users N: a single constant-rate tenant, so
		// the headline run needs no mix file.
		cfg.TenantMix = []flowsim.TenantShare{{
			Name:        "background",
			Share:       1,
			PerUserRate: units.Rate(*bgRate),
			Colocate:    *bgColocate,
		}}
	}

	if *faultPlan != "" {
		plan, err := faults.LoadPlan(*faultPlan)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = plan
	}
	if *loss > 0 {
		if cfg.Faults == nil {
			cfg.Faults = &faults.Plan{}
		}
		cfg.Faults.Loss = *loss
	}
	if *crashAt > 0 {
		if cfg.Faults == nil {
			cfg.Faults = &faults.Plan{}
		}
		cfg.Faults.Timeline = append(cfg.Faults.Timeline,
			faults.TimelineEvent{At: units.Time(crashAt.Nanoseconds()), Kind: faults.KindCrash, Server: *crashSrv})
		if *reviveAt > 0 {
			cfg.Faults.Timeline = append(cfg.Faults.Timeline,
				faults.TimelineEvent{At: units.Time(reviveAt.Nanoseconds()), Kind: faults.KindRevive, Server: *crashSrv})
		}
	}
	if *retry > 0 {
		cfg.RetryTimeout = units.Time(retry.Nanoseconds())
	}
	if *maxRetries > 0 {
		cfg.MaxRetries = *maxRetries
	}

	if *saveConfig != "" {
		if err := cluster.SaveConfig(*saveConfig, cfg); err != nil {
			fatal(err)
		}
	}
	if *progress {
		// Throttled wall-clock heartbeat; stderr only, so the simulated
		// results stay byte-identical with and without it.
		last := time.Now() //lint:wallclock heartbeat throttle; stderr only
		cfg.Progress = func(fired uint64, live int, simNow units.Time) {
			now := time.Now() //lint:wallclock heartbeat throttle; stderr only
			if now.Sub(last) >= 500*time.Millisecond {
				last = now
				fmt.Fprintf(os.Stderr, "saisim: %d events fired, %d live, simulated t=%v\n", fired, live, simNow)
			}
		}
	}
	if *traceN > 0 {
		printTraced(ctx, cfg, *traceN)
		return
	}
	var res *cluster.Result
	if *traceOut != "" {
		var spans *trace.SpanLog
		res, spans, err = cluster.RunSpannedContext(ctx, cfg)
		if spans != nil {
			if werr := writeTrace(*traceOut, spans); werr != nil {
				fatal(werr)
			}
			fmt.Fprintf(os.Stderr, "saisim: wrote %d spans to %s\n", spans.Len(), *traceOut)
		}
	} else {
		res, err = cluster.RunContext(ctx, cfg)
	}
	partial := false
	if err != nil {
		if res == nil {
			fatal(err)
		}
		// Interrupted mid-run: report what the simulator measured up to
		// the stopping point, and exit non-zero below.
		partial = true
		fmt.Fprintf(os.Stderr, "saisim: run interrupted (%v); printing partial metrics at simulated t=%v\n",
			err, res.Duration)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		if partial {
			profiler.Stop()
			os.Exit(1)
		}
		exitIfFaulted(res)
		return
	}

	fmt.Printf("policy          %s\n", res.Policy)
	fmt.Printf("duration        %v\n", res.Duration)
	fmt.Printf("bytes read      %v\n", res.TotalBytes)
	fmt.Printf("bandwidth       %.1f MB/s\n", float64(res.Bandwidth)/1e6)
	fmt.Printf("L2 miss rate    %.4f (%d misses / %d accesses)\n",
		res.CacheMissRate, res.LineMisses, res.LineAccesses)
	fmt.Printf("  migrated lines %d, memory lines %d\n", res.RemoteLines, res.MemoryLines)
	fmt.Printf("CPU utilization %.2f%%\n", res.CPUUtilization*100)
	fmt.Printf("CLK_UNHALTED    %d cycles\n", res.UnhaltedCycles)
	fmt.Printf("interrupts      %d (%d hinted), ring drops %d\n",
		res.Interrupts, res.HintedIRQs, res.RingDrops)
	if res.StripCount > 0 {
		fmt.Printf("strip latency   mean %v, p50 %v, p95 %v, p99 %v (%d strips)\n",
			res.StripLatencyMean, res.StripLatencyP50, res.StripLatencyP95,
			res.StripLatencyP99, res.StripCount)
	}
	fmt.Printf("bottlenecks     client NIC %.0f%%, server disks %.0f%%, server CPUs %.0f%%\n",
		res.ClientNICBusy*100, res.DiskBusy*100, res.ServerCPUBusy*100)
	if res.BackgroundOfferedBytes > 0 {
		fmt.Printf("background      %d users offered %v, served %v (backlog %v)\n",
			cfg.BackgroundUsers, res.BackgroundOfferedBytes,
			res.BackgroundServedBytes, res.BackgroundBacklogBytes)
	}
	if f := res.Faults; f.FramesDropped+f.FramesCorrupted+f.RingDrops+f.StallsInjected+f.StormFrames > 0 || f.Crashes > 0 {
		fmt.Printf("faults          dropped %d, corrupted %d, ring drops %d, stalls %d, storm frames %d\n",
			f.FramesDropped, f.FramesCorrupted, f.RingDrops, f.StallsInjected, f.StormFrames)
		fmt.Printf("recovery        strips retried %d, duplicates %d, failed ops %d, goodput %v/%v\n",
			f.StripsRetried, f.DuplicateStrips, f.FailedOps, f.GoodputBytes, f.OfferedBytes)
		if f.Crashes > 0 {
			var down units.Time
			for _, d := range f.ServerDowntime {
				down += d
			}
			fmt.Printf("crashes         %d (downtime %v, recovery %v)\n", f.Crashes, down, f.RecoveryTime)
		}
	}
	if *verbose {
		fmt.Println("busy time by category:")
		keys := make([]string, 0, len(res.BusyByCategory))
		for k := range res.BusyByCategory {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-10s %v\n", k, res.BusyByCategory[k])
		}
	}
	if partial {
		profiler.Stop()
		os.Exit(1)
	}
	exitIfFaulted(res)
}

// exitIfFaulted turns a completed run with abandoned or partial
// transfers into a nonzero exit, with a one-line summary on stderr, so
// scripts and CI never mistake a degraded run for a clean one.
func exitIfFaulted(res *cluster.Result) {
	f := res.Faults
	if f.FailedOps == 0 && f.PartialOps == 0 {
		return
	}
	profiler.Stop()
	fmt.Fprintf(os.Stderr, "saisim: %d ops failed, %d partial (%v short of %v offered) after %d retries\n",
		f.FailedOps, f.PartialOps, f.OfferedBytes-f.GoodputBytes, f.OfferedBytes, res.Retries)
	os.Exit(1)
}

// loadTenantMix decodes a tenant mix from inline JSON (anything
// starting with '[') or from a JSON file. Validation happens in
// cluster.Run, so errors carry the same typed sentinels either way.
func loadTenantMix(arg string) ([]flowsim.TenantShare, error) {
	data := []byte(arg)
	if len(arg) == 0 || arg[0] != '[' {
		b, err := os.ReadFile(arg)
		if err != nil {
			return nil, fmt.Errorf("tenant-mix: %w", err)
		}
		data = b
	}
	var mix []flowsim.TenantShare
	if err := json.Unmarshal(data, &mix); err != nil {
		return nil, fmt.Errorf("tenant-mix: %w", err)
	}
	return mix, nil
}

// printTraced runs a single-client configuration with an event trace
// attached and prints the last N records.
func printTraced(ctx context.Context, cfg cluster.Config, n int) {
	res, ring, err := cluster.RunTracedContext(ctx, cfg, n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("bandwidth %.1f MB/s under %s; last %d trace events:\n",
		float64(res.Bandwidth)/1e6, res.Policy, ring.Len())
	fmt.Println(ring.Render())
}

// writeTrace exports the span log as Chrome trace-event JSON. The close
// error is returned: for a file just written, Close is where a full
// disk or quota error surfaces.
func writeTrace(path string, spans *trace.SpanLog) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return spans.ExportChrome(f)
}

func fatal(err error) {
	profiler.Stop() // os.Exit skips defers; flush profiles first
	fmt.Fprintln(os.Stderr, "saisim:", err)
	os.Exit(1)
}
