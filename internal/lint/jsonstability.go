package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"hash/crc32"
	"reflect"
	"sort"
	"strings"

	"sais/internal/lint/analysis"
)

// JSONStability freezes the serialized schema of the result structs
// downstream tooling parses. The repo's convention (DESIGN.md §16):
// the untagged fields of cluster.Result are the baseline schema every
// consumer may rely on; fields added later must carry `,omitempty` so
// old outputs and new outputs only differ where the new feature is
// actually exercised — that is what keeps classic-run JSON
// byte-identical across PRs.
//
// A struct opts in with
//
//	//saisvet:jsonstable sig=HHHHHHHH
//
// where the signature is crc32(IEEE) over the sorted serialized names
// of its *required* (non-omitempty, non-skipped) fields. The analyzer
// recomputes the signature: a mismatch means a required field was
// added, removed, or renamed (directly or via its json tag) — the
// diagnostic prints the newly computed value, so an intentional schema
// change is a one-token annotation update that a reviewer sees in the
// diff. Adding an `,omitempty` field never changes the signature:
// additions are free, mutations are loud.
//
// Two companion checks: an annotation missing its sig argument is
// flagged with the computed value (bootstrap path), and a required
// field whose type is itself a struct declared in this module must be
// jsonstable too — otherwise schema drift sneaks in one nesting level
// down. Suppress with //lint:jsonstability and a reason.
var JSONStability = &analysis.Analyzer{
	Name: "jsonstability",
	Doc: "//saisvet:jsonstable structs keep their required serialized field set " +
		"frozen under a recorded signature; new fields must be ,omitempty " +
		"(suppress: //lint:jsonstability)",
	Directives: []string{"jsonstability"},
	Run:        runJSONStability,
}

// jsonStableDecl is one annotated struct declaration awaiting checks.
type jsonStableDecl struct {
	ts   *ast.TypeSpec
	st   *ast.StructType
	args string
}

func runJSONStability(pass *analysis.Pass) (any, error) {
	dirs := pass.Directives()

	// First pass: register every annotated struct in the package facts
	// before any checking, so the nested-coverage rule sees a sibling
	// declared later in the file (or a later file) as covered.
	var decls []jsonStableDecl
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				args, ok := annotation([]*ast.CommentGroup{gd.Doc, ts.Doc}, "jsonstable")
				if !ok {
					continue
				}
				tn, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					continue
				}
				pass.Facts.JSONStable = append(pass.Facts.JSONStable,
					tn.Pkg().Path()+"."+tn.Name())
				decls = append(decls, jsonStableDecl{ts: ts, st: st, args: args})
			}
		}
	}

	for _, d := range decls {
		ts, st := d.ts, d.st
		required := requiredFieldNames(st)
		sig := schemaSig(required)

		declared := ""
		for _, field := range strings.Fields(d.args) {
			if v, ok := strings.CutPrefix(field, "sig="); ok {
				declared = v
			}
		}
		switch {
		case declared == "":
			if !dirs.Suppressed(ts.Pos(), "jsonstability") {
				pass.Reportf(ts.Pos(), "//saisvet:jsonstable on %s is missing its signature: record the current required field set with `//saisvet:jsonstable sig=%s`", ts.Name.Name, sig)
			}
		case declared != sig:
			if !dirs.Suppressed(ts.Pos(), "jsonstability") {
				pass.Reportf(ts.Pos(), "required serialized fields of jsonstable struct %s drifted from recorded sig=%s (computed sig=%s over %s): new fields must carry `,omitempty` so old outputs stay byte-identical; if the required set changed intentionally, update the annotation to sig=%s", ts.Name.Name, declared, sig, strings.Join(required, ","), sig)
			}
		}

		// Nested coverage: a required field whose type is a
		// module-local struct must be under the contract too.
		for _, field := range st.Fields.List {
			_, opts, skip := jsonFieldInfo(field)
			if skip || hasOption(opts, "omitempty") {
				continue
			}
			nested := nestedModuleStruct(pass.TypeOf(field.Type))
			if nested == nil {
				continue
			}
			q := nested.Obj().Pkg().Path() + "." + nested.Obj().Name()
			if pass.DepJSONStable(q) {
				continue
			}
			if !dirs.Suppressed(field.Pos(), "jsonstability") {
				pass.Reportf(field.Pos(), "required field of jsonstable struct %s nests %s, which is not itself //saisvet:jsonstable: schema drift one level down is invisible to the parent's signature (annotate %s or suppress with //lint:jsonstability)",
					ts.Name.Name, q, nested.Obj().Name())
			}
		}
	}
	return nil, nil
}

// requiredFieldNames returns the sorted serialized names of the
// struct's required fields: exported, not `json:"-"`, not omitempty.
// The serialized name is the json tag name when present, else the Go
// field name — so renaming either side of that mapping changes the
// signature.
func requiredFieldNames(st *ast.StructType) []string {
	var names []string
	for _, field := range st.Fields.List {
		name, opts, skip := jsonFieldInfo(field)
		if skip || hasOption(opts, "omitempty") {
			continue
		}
		names = append(names, name...)
	}
	sort.Strings(names)
	return names
}

// jsonFieldInfo resolves one struct field declaration to its serialized
// names, its tag options, and whether encoding/json skips it entirely
// (unexported, or tagged json:"-").
func jsonFieldInfo(field *ast.Field) (names []string, opts []string, skip bool) {
	tagName := ""
	if field.Tag != nil {
		tag := reflect.StructTag(strings.Trim(field.Tag.Value, "`")).Get("json")
		parts := strings.Split(tag, ",")
		tagName = parts[0]
		opts = parts[1:]
		if tagName == "-" && len(opts) == 0 {
			return nil, nil, true
		}
	}
	if len(field.Names) == 0 {
		// Embedded field: serialized under the (possibly tagged) type
		// name; its inlining subtleties are out of scope, so treat the
		// name as the schema handle.
		name := tagName
		if name == "" || name == "-" {
			switch t := ast.Unparen(field.Type).(type) {
			case *ast.Ident:
				name = t.Name
			case *ast.StarExpr:
				if id, ok := t.X.(*ast.Ident); ok {
					name = id.Name
				}
			case *ast.SelectorExpr:
				name = t.Sel.Name
			}
		}
		if name != "" {
			names = append(names, name)
		}
		return names, opts, false
	}
	for _, n := range field.Names {
		if !n.IsExported() {
			continue
		}
		name := tagName
		if name == "" || name == "-" {
			name = n.Name
		}
		names = append(names, name)
	}
	return names, opts, len(names) == 0
}

// hasOption reports whether a json tag option list contains opt.
func hasOption(opts []string, opt string) bool {
	for _, o := range opts {
		if o == opt {
			return true
		}
	}
	return false
}

// schemaSig hashes the sorted required field names into the 8-hex-digit
// signature recorded in the annotation.
func schemaSig(names []string) string {
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE([]byte(strings.Join(names, "\n"))))
}

// nestedModuleStruct unwraps pointers, slices, arrays, and maps (value
// side) to a named struct type declared inside this module, or nil.
func nestedModuleStruct(t types.Type) *types.Named {
	for depth := 0; t != nil && depth < 8; depth++ {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		case *types.Map:
			t = u.Elem()
			continue
		case *types.Named:
			obj := u.Obj()
			if obj.Pkg() == nil {
				return nil
			}
			path := obj.Pkg().Path()
			if path != "sais" && !strings.HasPrefix(path, "sais/") {
				return nil // stdlib and foreign types are out of contract scope
			}
			if _, ok := u.Underlying().(*types.Struct); !ok {
				return nil
			}
			return u
		default:
			return nil
		}
	}
	return nil
}
