// Multiclient: the paper's scalability scenario (Figure 12) in
// miniature — a fixed pool of 8 I/O servers serving a growing number
// of client nodes that read a shared file. The SAIs advantage peaks
// when clients ≈ servers and fades once the servers saturate, because
// the number of in-flight requests per client (NR in the §III model)
// collapses.
//
// Run with:
//
//	go run ./examples/multiclient
package main

import (
	"fmt"
	"log"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/metrics"
	"sais/internal/units"
)

func main() {
	fmt.Printf("%-10s %14s %14s %10s %12s\n",
		"clients", "irqbalance", "sais", "speed-up", "per-client")
	for _, clients := range []int{2, 4, 8, 16, 32} {
		cfg := cluster.DefaultConfig()
		cfg.Clients = clients
		cfg.Servers = 8
		cfg.SharedFiles = true
		cfg.BytesPerProc = 8 * units.MiB

		base, err := cluster.Run(cfg.WithPolicy(irqsched.PolicyIrqbalance))
		if err != nil {
			log.Fatal(err)
		}
		sais, err := cluster.Run(cfg.WithPolicy(irqsched.PolicySourceAware))
		if err != nil {
			log.Fatal(err)
		}
		perClient := float64(sais.Bandwidth) / 1e6 / float64(clients)
		fmt.Printf("%-10d %9.1f MB/s %9.1f MB/s %10s %7.1f MB/s\n",
			clients,
			float64(base.Bandwidth)/1e6,
			float64(sais.Bandwidth)/1e6,
			metrics.Percent(metrics.Speedup(float64(sais.Bandwidth), float64(base.Bandwidth))),
			perClient)
	}
	fmt.Println("\nAggregate bandwidth grows until the 8 servers saturate; past that,")
	fmt.Println("per-client request rate (NR) drops and the SAIs gain compresses —")
	fmt.Println("the paper measured +20.46% at 8 clients falling to +1.39% at 56.")
}
