// Package units defines the scalar quantity types shared by every
// subsystem of the SAIs simulator: simulated time, byte counts, data
// rates, and CPU clock frequencies.
//
// The simulator keeps all time as integer nanoseconds (units.Time) so
// event ordering is exact and runs are bit-reproducible; rates are
// float64 bytes-per-second only at the edges where division is needed.
package units

import (
	"fmt"
	"math"
)

// Time is a point on (or span of) the simulated clock in nanoseconds.
// It is deliberately distinct from time.Duration: simulated time has no
// relationship to the wall clock and must never be passed to the
// standard library's timers.
type Time int64

// Common spans expressed in simulator time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel meaning "no deadline".
const Forever Time = math.MaxInt64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time with an adaptive unit suffix.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6gs", t.Seconds())
	}
}

// Bytes is a byte count. Strips, transfers, cache capacities, and NIC
// queues are all measured in Bytes.
type Bytes int64

// Common sizes.
const (
	Byte Bytes = 1
	KiB  Bytes = 1024 * Byte
	MiB  Bytes = 1024 * KiB
	GiB  Bytes = 1024 * MiB
)

// String renders the size with a binary-unit suffix.
func (b Bytes) String() string {
	switch {
	case b < 0:
		return "-" + (-b).String()
	case b < KiB:
		return fmt.Sprintf("%dB", int64(b))
	case b < MiB:
		return fmt.Sprintf("%.4gKiB", float64(b)/float64(KiB))
	case b < GiB:
		return fmt.Sprintf("%.4gMiB", float64(b)/float64(MiB))
	default:
		return fmt.Sprintf("%.4gGiB", float64(b)/float64(GiB))
	}
}

// Rate is a data rate in bytes per second.
type Rate float64

// Common rates. Network rates follow the decimal convention used on
// datasheets (1 Gbit/s = 125e6 B/s); memory rates are quoted directly.
const (
	BytePerSecond Rate = 1
	KBps          Rate = 1e3
	MBps          Rate = 1e6
	GBps          Rate = 1e9

	// Gigabit is the payload rate of one 1-Gbit/s Ethernet port.
	Gigabit Rate = 125 * MBps
)

// MiBps converts r to binary mebibytes per second, the unit the paper's
// bandwidth figures use.
func (r Rate) MiBps() float64 { return float64(r) / float64(MiB) }

// String renders the rate in MB/s (decimal), matching the simulator's
// report tables.
func (r Rate) String() string { return fmt.Sprintf("%.4gMB/s", float64(r)/float64(MBps)) }

// TimeFor returns the time needed to move n bytes at rate r, rounded up
// to a whole nanosecond so a positive transfer never takes zero time.
// A rate that is zero, negative, or NaN means the link can never finish:
// the result is Forever, never a garbage conversion of NaN/Inf.
func (r Rate) TimeFor(n Bytes) Time {
	if !(r > 0) { // also catches NaN, which fails every comparison
		return Forever
	}
	if n <= 0 {
		return 0
	}
	t := math.Ceil(float64(n) / float64(r) * float64(Second))
	if !(t < float64(math.MaxInt64)) { // +Inf and NaN both land here
		return Forever
	}
	return Time(t)
}

// Over returns the average rate achieved moving n bytes in span t. A
// zero or negative span yields 0 — an undefined average, reported as
// "no throughput" rather than Inf.
func Over(n Bytes, t Time) Rate {
	if t <= 0 {
		return 0
	}
	return Rate(float64(n) / t.Seconds())
}

// Hertz is a CPU clock frequency in cycles per second.
type Hertz float64

// Common frequencies.
const (
	MHz Hertz = 1e6
	GHz Hertz = 1e9
)

// Cycles is a CPU cycle count.
type Cycles int64

// Duration converts a cycle count at frequency f into simulated time,
// rounding up so positive work always advances the clock. A stopped
// clock (zero, negative, or NaN frequency) never finishes: Forever.
func (f Hertz) Duration(c Cycles) Time {
	if !(f > 0) { // also catches NaN
		return Forever
	}
	if c <= 0 {
		return 0
	}
	t := math.Ceil(float64(c) / float64(f) * float64(Second))
	if !(t < float64(math.MaxInt64)) { // +Inf and NaN both land here
		return Forever
	}
	return Time(t)
}

// CyclesIn returns how many cycles elapse at frequency f during span t.
// A stopped clock accumulates no cycles, and an overflowing product
// saturates instead of converting Inf to a negative count.
func (f Hertz) CyclesIn(t Time) Cycles {
	if t <= 0 || !(f > 0) {
		return 0
	}
	c := float64(f) * t.Seconds()
	if !(c < float64(math.MaxInt64)) {
		return Cycles(math.MaxInt64)
	}
	return Cycles(c)
}

// String renders the frequency in GHz.
func (f Hertz) String() string { return fmt.Sprintf("%.4gGHz", float64(f)/float64(GHz)) }

// ParseBytes parses a human-readable size: "64KiB", "1MiB", "2GiB",
// "1500" (bytes), with K/M/G accepted as shorthand for the binary
// units.
func ParseBytes(s string) (Bytes, error) {
	var n float64
	var unit string
	if _, err := fmt.Sscanf(s, "%g%s", &n, &unit); err != nil {
		if _, err2 := fmt.Sscanf(s, "%g", &n); err2 != nil {
			return 0, fmt.Errorf("units: cannot parse size %q", s)
		}
		unit = "B"
	}
	if n < 0 {
		return 0, fmt.Errorf("units: negative size %q", s)
	}
	switch unit {
	case "B", "":
		return Bytes(n), nil
	case "KiB", "K", "k", "KB":
		return Bytes(n * float64(KiB)), nil
	case "MiB", "M", "m", "MB":
		return Bytes(n * float64(MiB)), nil
	case "GiB", "G", "g", "GB":
		return Bytes(n * float64(GiB)), nil
	default:
		return 0, fmt.Errorf("units: unknown size unit %q", unit)
	}
}

// ParseTime parses a duration like "10ms", "2us", "1s", "500ns".
func ParseTime(s string) (Time, error) {
	var n float64
	var unit string
	if _, err := fmt.Sscanf(s, "%g%s", &n, &unit); err != nil {
		return 0, fmt.Errorf("units: cannot parse duration %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("units: negative duration %q", s)
	}
	switch unit {
	case "ns":
		return Time(n), nil
	case "us", "µs":
		return Time(n * float64(Microsecond)), nil
	case "ms":
		return Time(n * float64(Millisecond)), nil
	case "s":
		return Time(n * float64(Second)), nil
	default:
		return 0, fmt.Errorf("units: unknown duration unit %q", unit)
	}
}
