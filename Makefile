# SAIs reproduction — convenience targets.

GO ?= go

.PHONY: all build vet test race race-short bench experiments figures cover clean

all: build vet test race-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full race-detector pass over every package (slow).
race:
	$(GO) test -race ./...

# Short race pass of the orchestration-critical packages (the worker
# pool and its heaviest consumer); cheap enough to run in `all`.
race-short:
	$(GO) test -race ./internal/runner ./experiments

# Record the canonical outputs the repository ships with.
test-output:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench:
	$(GO) test -bench=. -benchmem ./...

bench-output:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every figure of the paper (tables to stdout).
experiments:
	$(GO) run ./cmd/experiments

figures:
	$(GO) run ./cmd/experiments -plot

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
