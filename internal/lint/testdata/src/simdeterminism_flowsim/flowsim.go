// Fixture proving the fluid-flow engine is held to the strict rule
// set: sais/internal/flowsim is a deterministic package (its stations
// feed service-time scaling inside the event loop), so wall clocks,
// goroutines, and map-ordered iteration are findings here just as in
// internal/sim.
package flowsim

import "time"

type station struct {
	loads map[int]float64
}

// advance is the hazard class that motivated the listing: a rate
// integrator sampling the host clock instead of simulated time.
func advance() int64 {
	return time.Now().UnixNano() // want "wall clock"
}

// aggregate shows the strict rules compose: no concurrent station
// updates, no map-ordered accumulation.
func aggregate(s station) float64 {
	go advance() // want "go statement in deterministic package"
	sum := 0.0
	for _, v := range s.loads { // want "range over map in deterministic package"
		sum += v
	}
	return sum
}

// drain is the annotated commutative form, legal as everywhere.
func drain(s station) float64 {
	sum := 0.0
	//lint:maporder pure commutative accumulation
	for _, v := range s.loads {
		sum += v
	}
	return sum
}
