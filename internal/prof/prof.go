// Package prof wires the standard -cpuprofile/-memprofile flags into
// the command front-ends. The commands exit through os.Exit on error
// paths (which skips defers), so Stop is idempotent and must be called
// explicitly before every exit as well as deferred from main.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler owns the open profile files of one process.
type Profiler struct {
	cpuFile *os.File
	memPath string
	stopped bool
}

// Start begins CPU profiling to cpuPath (if non-empty) and records
// memPath for the heap snapshot Stop writes. Empty paths disable the
// corresponding profile.
func Start(cpuPath, memPath string) (*Profiler, error) {
	p := &Profiler{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			if cerr := f.Close(); cerr != nil {
				return nil, fmt.Errorf("prof: %v (also failed to close %s: %v)", err, cpuPath, cerr)
			}
			return nil, fmt.Errorf("prof: %w", err)
		}
		p.cpuFile = f
	}
	return p, nil
}

// Stop finishes the CPU profile and writes the heap profile. It is
// safe to call more than once; only the first call acts.
func (p *Profiler) Stop() error {
	if p == nil || p.stopped {
		return nil
	}
	p.stopped = true
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		runtime.GC() // materialize final live-heap state
		werr := pprof.WriteHeapProfile(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr // close failure = profile truncated on disk
		}
		if werr != nil {
			return fmt.Errorf("prof: %w", werr)
		}
	}
	return nil
}
