// Package hdep is a fixture dependency for the hookcontract
// cross-package tests: the nilhook annotation travels as a HookFields
// fact and binds callers in other packages.
package hdep

// Widget carries an optional observer hook.
type Widget struct {
	// OnFire, when set, observes events; nil means the feature is off.
	//saisvet:nilhook
	OnFire func()
}
