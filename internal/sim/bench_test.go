package sim

// Hot-path engine benchmarks. The three mixes mirror the engine's real
// load: steady schedule/fire (every modelled interrupt), cancel-heavy
// (retry timers re-armed on every ack), and deadline-scan (fan-out
// timers where all but one are cancelled). `make bench-record`
// snapshots these into BENCH_sim.json; `make bench-check` compares.

import (
	"testing"

	"sais/internal/units"
)

func BenchmarkEngineHotScheduleFire(b *testing.B) {
	e := NewEngine()
	var step units.Time
	var tick Event
	tick = func(units.Time) {
		step++
		e.After(step%97+1, tick)
	}
	for i := 0; i < 256; i++ {
		e.At(units.Time(i), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineHotCancelHeavy(b *testing.B) {
	e := NewEngine()
	const chains = 64
	timeout := func(units.Time) {}
	timers := make([]Timer, chains)
	ticks := make([]Event, chains)
	for i := 0; i < chains; i++ {
		i := i
		ticks[i] = func(units.Time) {
			timers[i].Cancel()
			timers[i] = e.After(100000, timeout)
			e.After(units.Time(i%13+1), ticks[i])
		}
		e.At(units.Time(i), ticks[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineHotDeadlineScan(b *testing.B) {
	e := NewEngine()
	const fan = 8
	var tick Event
	tmp := make([]Timer, fan)
	tick = func(units.Time) {
		for j := 0; j < fan; j++ {
			tmp[j] = e.After(units.Time(1000+j), tick)
		}
		for j := 1; j < fan; j++ {
			tmp[j].Cancel()
		}
	}
	e.At(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineHotImmediately exercises the same-instant FIFO fast
// path: each fired event chains another at the current instant, the
// NIC→APIC→core hand-off pattern.
func BenchmarkEngineHotImmediately(b *testing.B) {
	e := NewEngine()
	var chain Event
	chain = func(units.Time) {
		e.Immediately(chain)
	}
	e.At(0, chain)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
