package irqsched

import (
	"sais/internal/apic"
	"sais/internal/toeplitz"
	"sais/internal/units"
)

// FlowDirector models Intel Ethernet Flow Director in its ATR
// (application-targeted routing) mode: the NIC samples outgoing
// packets and records, per flow, the core that last transmitted — so
// the next receive interrupt for that flow is steered to where the
// application last ran. The table is bounded; full tables evict the
// oldest flow (perfect-filter exhaustion).
//
// The design carries the pathology Wu et al. analyse in "Why Does Flow
// Director Cause Packet Reordering?": the table updates the moment a
// transmit is sampled, so when an application thread migrates (or
// interleaved request processing makes different cores transmit for
// the same flow), packets of one flow that are already in flight split
// across two cores with different softirq backlogs and complete out of
// order. A-TFC (atfc.go) is the literature's fix: stage the update and
// promote it only at flow quiescence.
type FlowDirector struct {
	capacity int
	table    map[uint64]int
	order    []uint64 // insertion order, oldest first, for eviction

	inserts   uint64
	updates   uint64
	evictions uint64
	hits      uint64
	misses    uint64
}

// NewFlowDirector builds the policy with the given flow-table capacity
// (entries; < 1 means the default 1024).
func NewFlowDirector(capacity int) *FlowDirector {
	if capacity < 1 {
		capacity = 1024
	}
	return &FlowDirector{
		capacity: capacity,
		table:    make(map[uint64]int, capacity),
	}
}

// Name implements apic.Router.
func (f *FlowDirector) Name() string { return "flowdirector" }

// NoteTransmit implements TxObserver: record the transmitting core as
// the flow's receive target, immediately — the reordering race.
func (f *FlowDirector) NoteTransmit(flow uint64, core int) {
	if _, ok := f.table[flow]; ok {
		if f.table[flow] != core {
			f.updates++
		}
		f.table[flow] = core
		return
	}
	if len(f.table) >= f.capacity {
		oldest := f.order[0]
		f.order = f.order[1:]
		delete(f.table, oldest)
		f.evictions++
	}
	f.table[flow] = core
	f.order = append(f.order, flow)
	f.inserts++
}

// Route implements apic.Router: table hit steers to the recorded core;
// misses (unseen or evicted flows) fall back to the Toeplitz hash,
// which is what the hardware's RSS fallback path does.
func (f *FlowDirector) Route(_ apic.Vector, _ int, flow uint64, allowed []int, _ units.Time) int {
	if core, ok := f.table[flow]; ok {
		for _, c := range allowed {
			if c == core {
				f.hits++
				return c
			}
		}
	}
	f.misses++
	h := toeplitz.HashUint64(flow)
	return allowed[int(h)%len(allowed)]
}

// Counters implements CounterReporter.
func (f *FlowDirector) Counters() map[string]uint64 {
	return map[string]uint64{
		"fd_inserts":   f.inserts,
		"fd_updates":   f.updates,
		"fd_evictions": f.evictions,
		"fd_hits":      f.hits,
		"fd_misses":    f.misses,
	}
}
