package netsim

import (
	"fmt"

	"sais/internal/sim"
	"sais/internal/units"
)

// Fabric is the switched network connecting node NICs — the model of
// the cluster's store-and-forward Ethernet switch. A frame leaves the
// sender through its NIC egress serializer, crosses the switch after a
// fixed forwarding latency, and is serialized again by the receiver's
// NIC port, so both the sender's and the receiver's line rates bound
// throughput, exactly as with a real switch.
type Fabric struct {
	eng     *sim.Engine
	latency units.Time
	nics    map[NodeID]*NIC
	// loss injects random frame drops for failure testing; nil = none.
	loss func(FrameKey) bool
	// corrupt injects header bit-flips; nil = none.
	corrupt func(*Frame, FrameKey) bool
	// remote routes frames whose destination is not attached here —
	// the sharded-cluster hook; nil = unknown destinations drop.
	remote RemoteForward
	// latencyScale multiplies the forwarding latency when > 0 — the
	// degraded-switch injection hook.
	latencyScale float64
	forwarded    uint64
	dropped      uint64
	corrupted    uint64
	// framePool recycles Frame structs (and their Header capacity)
	// between transfers. The engine is single-threaded per run, so a
	// plain LIFO free list is both lock-free and deterministic. Frames
	// are returned explicitly by their final owner — the fabric on a
	// drop, the NIC on a full ring, the consumer after dispatching the
	// body — and never referenced again after FreeFrame.
	framePool []*Frame
}

// NewFabric creates an empty fabric with the given one-way switch
// forwarding latency.
func NewFabric(eng *sim.Engine, latency units.Time) *Fabric {
	if latency < 0 {
		panic("netsim: negative fabric latency")
	}
	return &Fabric{eng: eng, latency: latency, nics: make(map[NodeID]*NIC)}
}

// Attach connects a NIC to the fabric. Attaching two NICs with the same
// NodeID panics: node identity is the routing key.
func (f *Fabric) Attach(n *NIC) {
	if _, dup := f.nics[n.id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %d on fabric", n.id))
	}
	n.fab = f
	f.nics[n.id] = n
}

// NIC returns the attached NIC for id, or nil.
func (f *Fabric) NIC(id NodeID) *NIC { return f.nics[id] }

// Nodes returns the number of attached NICs.
func (f *Fabric) Nodes() int { return len(f.nics) }

// Forwarded returns the number of frames the switch has forwarded.
func (f *Fabric) Forwarded() uint64 { return f.forwarded }

// Dropped returns frames dropped by injected loss or unknown
// destinations.
func (f *Fabric) Dropped() uint64 { return f.dropped }

// SetLoss installs a frame-drop predicate called per forwarded frame;
// used by failure injection. The predicate receives the frame's
// FrameKey so decisions can be pure functions of frame identity —
// required for shard-layout invariance; predicates that close over
// mutable state are only safe on single-shard fabrics. Pass nil to
// disable.
func (f *Fabric) SetLoss(fn func(FrameKey) bool) { f.loss = fn }

// SetCorruption installs a per-frame header-corruption predicate: a
// selected frame's IP header gets a flipped byte, so the receiver's
// checksum validation rejects it. The predicate sees the frame (so
// tests can target e.g. only data-bearing frames) and its FrameKey
// (see SetLoss for the statelessness requirement). Pass nil to
// disable.
func (f *Fabric) SetCorruption(fn func(*Frame, FrameKey) bool) { f.corrupt = fn }

// Corrupted returns the number of frames whose headers were damaged.
func (f *Fabric) Corrupted() uint64 { return f.corrupted }

// SetLatencyScale scales the switch forwarding latency for frames
// forwarded from now on — the degraded-link injection hook. Scale 1 (or
// 0) restores the configured latency; scale must not be negative.
func (f *Fabric) SetLatencyScale(scale float64) {
	if scale < 0 {
		panic("netsim: negative latency scale")
	}
	f.latencyScale = scale
}

// NewFrame returns a zeroed frame from the pool (retaining recycled
// Header capacity), allocating only when the pool is empty.
func (f *Fabric) NewFrame() *Frame {
	if n := len(f.framePool); n > 0 {
		fr := f.framePool[n-1]
		f.framePool = f.framePool[:n-1]
		return fr
	}
	return &Frame{}
}

// FreeFrame returns a frame to the pool. Only the frame's single final
// owner may call it; the frame must not be referenced afterwards.
func (f *Fabric) FreeFrame(fr *Frame) {
	hdr := fr.Header[:0]
	*fr = Frame{Header: hdr}
	f.framePool = append(f.framePool, fr)
}

// FrameKey identifies one forwarded frame in a way that is invariant
// to shard layout and execution interleaving: the source node plus
// that source NIC's monotone forward sequence number. Keyed fault
// decisions (loss, corruption) hash this identity instead of drawing
// from a shared stream, so the set of affected frames is a pure
// function of (config, seed) no matter how the cluster is partitioned.
type FrameKey struct {
	Src NodeID
	Seq uint64
}

// Origin returns the engine tie-break class frame deliveries carry:
// the source node shifted out of the zero value reserved for plain
// local events (see sim.AtOrigin).
func (k FrameKey) Origin() uint64 { return uint64(k.Src) + 1 }

// RemoteForward routes a frame whose destination NIC is not attached
// to this fabric. sendAt is the forwarding instant on the source
// engine and deliverAt the delivery time after switch latency; key is
// the frame's identity (its Origin and Seq seed the destination
// engine's tie-break). The hook reports whether the destination
// exists — false drops the frame at the source.
type RemoteForward func(fr *Frame, wire units.Bytes, sendAt, deliverAt units.Time, key FrameKey) bool

// SetRemote installs the cross-shard routing hook. Pass nil to restore
// drop-on-unknown-destination behaviour.
func (f *Fabric) SetRemote(fn RemoteForward) { f.remote = fn }

// InjectArrival delivers a frame that was forwarded on another shard's
// fabric. It must be called on this fabric's engine at the frame's
// delivery time (the sharded executor's mailboxes guarantee both).
// Loss and corruption were already decided at the source; only
// destination lookup happens here.
func (f *Fabric) InjectArrival(fr *Frame, wire units.Bytes) {
	dst, ok := f.nics[fr.Dst]
	if !ok {
		// The partition map and the NIC set disagree — count it as a
		// drop rather than leak the frame.
		f.dropped++
		f.FreeFrame(fr)
		return
	}
	dst.receive(fr, wire)
}

// forward is called by a NIC when egress serialization of a frame
// completes.
func (f *Fabric) forward(fr *Frame, wire units.Bytes) {
	key := FrameKey{Src: fr.Src}
	if src := f.nics[fr.Src]; src != nil {
		src.fwdSeq++
		key.Seq = src.fwdSeq
	}
	if f.loss != nil && f.loss(key) {
		f.dropped++
		f.FreeFrame(fr)
		return
	}
	if f.corrupt != nil && f.corrupt(fr, key) && len(fr.Header) > 12 {
		fr.Header[12] ^= 0xff // source-address byte: checksum now fails
		f.corrupted++
	}
	latency := f.latency
	if f.latencyScale > 0 {
		scaled := float64(latency) * f.latencyScale
		// Clamp instead of overflowing into a negative delay.
		if scaled > float64(units.Forever/2) {
			scaled = float64(units.Forever / 2)
		}
		latency = units.Time(scaled)
	}
	dst, ok := f.nics[fr.Dst]
	if !ok {
		now := f.eng.Now()
		if f.remote != nil && f.remote(fr, wire, now, now+latency, key) {
			f.forwarded++
			return
		}
		f.dropped++
		f.FreeFrame(fr)
		return
	}
	f.forwarded++
	// Origin-tagged so two sources' frames colliding on one delivery
	// instant order by source identity, not by forwarding call order —
	// the tie-break that survives sharding (DESIGN.md §12).
	f.eng.AtOrigin(f.eng.Now()+latency, key.Origin(), func(units.Time) {
		dst.receive(fr, wire)
	})
}
