// Package scenario turns a cluster experiment into a serializable,
// CI-assertable artifact. A Scenario file bundles the topology and
// workload (a cluster.Config), an optional hand-written fault plan
// (inside the config), an optional seeded chaos generator (ChaosSpec),
// the policies to run it under, and a list of metric assertions. One
// file is one reproducible claim about the simulator: "this cluster,
// under these faults, delivers at least this much goodput and violates
// no runtime invariant".
//
// The package also houses the runtime invariant checker
// (CheckInvariants): structural properties every run must satisfy
// regardless of configuration — no strip issued without a terminal
// account, retry budgets respected, histogram and span counts agreeing,
// the simulated clock monotonic, crashed servers silent. Scenarios run
// them by default; `saisim run` and `make scenarios` turn violations
// into nonzero exits.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"sais/cluster"
	"sais/internal/faults"
	"sais/internal/irqsched"
)

// Scenario is one serializable experiment with assertions.
type Scenario struct {
	// Name identifies the scenario in reports; required.
	Name string
	// Description says what claim the scenario checks.
	Description string `json:",omitempty"`
	// Config is the cluster under test. In a scenario file it is
	// decoded over cluster.DefaultConfig, so files state only what they
	// change — exactly like `saisim -config`.
	Config cluster.Config
	// Policies lists the scheduling policies to run the scenario under
	// (names as cmd/saisim accepts). Empty means the config's own
	// policy. Assertions and invariants must hold for every policy.
	Policies []string `json:",omitempty"`
	// Chaos, when set, derives a randomized-but-deterministic fault
	// timeline from the scenario seed and merges it into the config's
	// fault plan (faults.Merge).
	Chaos *ChaosSpec `json:",omitempty"`
	// Assertions are metric predicates evaluated against each run's
	// Result; any failure makes the scenario fail.
	Assertions []Assertion `json:",omitempty"`
	// SkipInvariants disables the runtime invariant checker — only for
	// scenarios that deliberately construct states the checker rejects.
	SkipInvariants bool `json:",omitempty"`
}

// Validate checks the scenario shape: a name, resolvable policies,
// well-formed assertions, a generatable chaos spec, and a config that
// — with the chaos timeline merged in — passes cluster validation for
// every policy. A scenario that validates cannot fail to start.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	for _, a := range s.Assertions {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if s.Chaos != nil {
		if err := s.Chaos.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	policies, err := s.policyKinds()
	if err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	for _, pol := range policies {
		cfg, err := s.materialize(pol)
		if err != nil {
			return fmt.Errorf("scenario %s (%s): %w", s.Name, pol, err)
		}
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("scenario %s (%s): %w", s.Name, pol, err)
		}
	}
	return nil
}

// policyKinds resolves Policies, defaulting to the config's own.
func (s *Scenario) policyKinds() ([]irqsched.PolicyKind, error) {
	if len(s.Policies) == 0 {
		return []irqsched.PolicyKind{s.Config.Policy}, nil
	}
	kinds := make([]irqsched.PolicyKind, len(s.Policies))
	for i, name := range s.Policies {
		k, err := irqsched.ParsePolicy(name)
		if err != nil {
			return nil, err
		}
		kinds[i] = k
	}
	return kinds, nil
}

// materialize builds the runnable config for one policy: the scenario
// config with the policy applied and the generated chaos timeline
// merged into its fault plan.
func (s *Scenario) materialize(pol irqsched.PolicyKind) (cluster.Config, error) {
	cfg := s.Config
	cfg.Policy = pol
	if s.Chaos != nil {
		plan, err := s.Chaos.Generate(cfg.Seed, cfg.Servers, cfg.Clients)
		if err != nil {
			return cluster.Config{}, err
		}
		cfg.Faults = faults.Merge(cfg.Faults, plan)
	}
	return cfg, nil
}

// Write serializes the scenario as indented JSON.
func Write(w io.Writer, s *Scenario) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Read parses and validates a scenario. The Config block decodes over
// cluster.DefaultConfig (files state only deviations); unknown fields
// anywhere are rejected so typos surface immediately.
func Read(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	s := &Scenario{Config: cluster.DefaultConfig()}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("scenario: parsing: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Load reads a scenario file.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Save writes a scenario file. The close error is checked so a
// truncated file (full disk) is reported instead of silently saved.
func Save(path string, s *Scenario) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return Write(f, s)
}
