// Fixture for a misplaced package waiver: //lint:package is only
// honored in the file header, so the mid-file directive below is inert
// and the go statement still reports.
package stray

func spawn(fn func()) {
	//lint:package goroutine this waiver is below the package clause and does nothing
	go fn() // want "go statement in deterministic package"
}
