# SAIs reproduction — convenience targets.

GO ?= go

.PHONY: all build vet lint lint-fixtures test race race-short bench bench-record bench-check experiments figures chaos policymatrix scenarios chaos-soak cover clean

all: build vet lint test race-short scenarios bench-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (DESIGN.md §11 and §16): build the
# saisvet facts engine, then run its nine analyzers (simdeterminism,
# seedderive, unitsafety, closecheck, allocfree, shardsafety,
# hookcontract, jsonstability, waiverhygiene) over the whole module
# through the standard `go vet -vettool` protocol, with cross-package
# facts riding the vetx channel. Keep this warn-free — CI fails hard on
# any finding. The binary is a file target so an unchanged analyzer
# tree (e.g. restored from the CI cache) skips the rebuild.
SAISVET := .bin/saisvet
SAISVET_SRC := $(shell find cmd/saisvet internal/lint -name '*.go' -not -name '*_test.go') go.mod
LINTFLAGS ?= -strict-waivers

$(SAISVET): $(SAISVET_SRC)
	$(GO) build -o $(SAISVET) ./cmd/saisvet

lint: $(SAISVET)
	$(GO) vet -vettool=$(SAISVET) $(LINTFLAGS) ./...

# Analyzer self-tests: the per-analyzer fixture suites plus the driver's
# protocol tests (facts round-trip, VetxOnly semantics, output formats,
# and the real-vet cross-package run).
lint-fixtures:
	$(GO) test ./internal/lint/... ./cmd/saisvet

test:
	$(GO) test ./...

# Full race-detector pass over every package (slow).
race:
	$(GO) test -race ./...

# Short race pass of the orchestration-critical packages (the worker
# pool, the fault injector, their heaviest consumer, the span/trace
# recorder they share, and the sharded executor with its cluster-level
# differential tests under parallel workers); cheap enough to run in
# `all`.
race-short:
	$(GO) test -race ./internal/runner ./internal/faults ./experiments ./internal/trace ./internal/shard
	$(GO) test -race -run 'TestSharded' ./cluster

# Record the canonical outputs the repository ships with.
test-output:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench:
	$(GO) test -bench=. -benchmem ./...

bench-output:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Benchmark baseline: the event-engine hot path plus the sharded
# executor's 256-node scaling matrix. bench-record snapshots the
# current numbers into BENCH_sim.json (commit it); bench-check compares
# a fresh run against the committed baseline and fails the build on a
# regression beyond each benchmark's tolerance band (hand-editable in
# the baseline; the sharded macro-benchmarks carry wider bands than the
# steady microbenchmarks).
BENCH_COUNT ?= 5
SHARD_BENCH_COUNT ?= 3

bench-record:
	{ $(GO) test -run '^$$' -bench EngineHot -benchmem -count $(BENCH_COUNT) ./internal/sim ; \
	  $(GO) test -run '^$$' -bench HybridMillionUsers -benchmem -count $(BENCH_COUNT) ./internal/flowsim ; \
	  $(GO) test -run '^$$' -bench ShardedScaling -benchmem -count $(SHARD_BENCH_COUNT) . ; } \
	| $(GO) run ./cmd/benchcheck -record BENCH_sim.json

bench-check:
	{ $(GO) test -run '^$$' -bench EngineHot -benchmem -count $(BENCH_COUNT) ./internal/sim ; \
	  $(GO) test -run '^$$' -bench HybridMillionUsers -benchmem -count $(BENCH_COUNT) ./internal/flowsim ; \
	  $(GO) test -run '^$$' -bench ShardedScaling -benchmem -count $(SHARD_BENCH_COUNT) . ; } \
	| $(GO) run ./cmd/benchcheck -baseline BENCH_sim.json -strict

# Regenerate every figure of the paper (tables to stdout).
experiments:
	$(GO) run ./cmd/experiments

figures:
	$(GO) run ./cmd/experiments -plot

# Degraded-mode studies: the scripted crash-and-recover scenario across
# policies (see also `-degraded` for the loss-rate sweep).
chaos:
	$(GO) run ./cmd/experiments -chaos

# Policy × workload matrix: strip-latency percentiles and the reorder
# metric for every policy in the irqsched registry.
policymatrix:
	$(GO) run ./cmd/experiments -policymatrix -parallel 8

# Tier-1 scenario gate: run every committed scenario file, on one
# engine and on four shards, evaluating assertions and the runtime
# invariant suite (internal/scenario). Nonzero exit on any violation.
scenarios:
	$(GO) build -o .bin/saisim ./cmd/saisim
	.bin/saisim run scenarios/*.json
	.bin/saisim run -shards 4 scenarios/*.json

# Chaos soak: N derived chaos timelines against the invariant suite.
# One root seed reproduces the whole soak (`make chaos-soak N=50
# SOAK_SEED=7`).
N ?= 20
SOAK_SEED ?= 1

chaos-soak:
	$(GO) build -o .bin/saisim ./cmd/saisim
	.bin/saisim chaos -n $(N) -seed $(SOAK_SEED)

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
