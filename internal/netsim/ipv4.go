package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements a real IPv4 header codec so the SAIs hint path
// (HintCapsuler on the server, SrcParser in the client NIC driver) runs
// over genuine wire bytes, not just struct fields. Only the fields the
// simulator uses are interpreted; the rest round-trip.

// Header field constants.
const (
	ipVersion     = 4
	minIHL        = 5  // 32-bit words
	maxIHL        = 15 // header + up to 40 option bytes
	minHeaderLen  = minIHL * 4
	maxOptionsLen = (maxIHL - minIHL) * 4
)

// Codec errors.
var (
	ErrShortHeader  = errors.New("netsim: buffer shorter than IPv4 header")
	ErrBadVersion   = errors.New("netsim: not an IPv4 header")
	ErrBadIHL       = errors.New("netsim: invalid IHL")
	ErrOptionsLong  = errors.New("netsim: options exceed 40 bytes")
	ErrOptionsAlign = errors.New("netsim: options not 32-bit aligned")
	ErrBadChecksum  = errors.New("netsim: header checksum mismatch")
	ErrLengthField  = errors.New("netsim: total-length field inconsistent")
)

// IPv4Header is the decoded header of one simulated packet.
type IPv4Header struct {
	TotalLen uint16 // header + payload bytes
	ID       uint16
	TTL      uint8
	Protocol uint8
	SrcIP    uint32
	DstIP    uint32
	Options  []byte // raw options field, 32-bit aligned
}

// HeaderLen returns the encoded header length in bytes.
func (h *IPv4Header) HeaderLen() int { return minHeaderLen + len(h.Options) }

// Marshal encodes the header (with a correct checksum) into wire bytes.
func (h *IPv4Header) Marshal() ([]byte, error) { return h.MarshalAppend(nil) }

// MarshalAppend encodes the header onto the end of buf and returns the
// extended slice — the allocation-free path for pooled frames, which
// reuse a recycled frame's Header capacity.
func (h *IPv4Header) MarshalAppend(buf []byte) ([]byte, error) {
	if len(h.Options) > maxOptionsLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrOptionsLong, len(h.Options))
	}
	if len(h.Options)%4 != 0 {
		return nil, fmt.Errorf("%w: %d bytes", ErrOptionsAlign, len(h.Options))
	}
	hlen := h.HeaderLen()
	if int(h.TotalLen) < hlen {
		return nil, fmt.Errorf("%w: total %d < header %d", ErrLengthField, h.TotalLen, hlen)
	}
	start := len(buf)
	for i := 0; i < hlen; i++ {
		buf = append(buf, 0)
	}
	b := buf[start:]
	b[0] = ipVersion<<4 | byte(hlen/4)
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	b[8] = h.TTL
	b[9] = h.Protocol
	binary.BigEndian.PutUint32(b[12:], h.SrcIP)
	binary.BigEndian.PutUint32(b[16:], h.DstIP)
	copy(b[minHeaderLen:], h.Options)
	binary.BigEndian.PutUint16(b[10:], checksum(b))
	return buf, nil
}

// UnmarshalIPv4 decodes and validates a header from wire bytes,
// returning the header and the number of bytes it occupied.
func UnmarshalIPv4(b []byte) (*IPv4Header, int, error) {
	if len(b) < minHeaderLen {
		return nil, 0, ErrShortHeader
	}
	if b[0]>>4 != ipVersion {
		return nil, 0, fmt.Errorf("%w: version %d", ErrBadVersion, b[0]>>4)
	}
	ihl := int(b[0] & 0x0f)
	if ihl < minIHL || ihl > maxIHL {
		return nil, 0, fmt.Errorf("%w: %d", ErrBadIHL, ihl)
	}
	hlen := ihl * 4
	if len(b) < hlen {
		return nil, 0, ErrShortHeader
	}
	if checksum(b[:hlen]) != 0 {
		return nil, 0, ErrBadChecksum
	}
	h := &IPv4Header{
		TotalLen: binary.BigEndian.Uint16(b[2:]),
		ID:       binary.BigEndian.Uint16(b[4:]),
		TTL:      b[8],
		Protocol: b[9],
		SrcIP:    binary.BigEndian.Uint32(b[12:]),
		DstIP:    binary.BigEndian.Uint32(b[16:]),
	}
	if int(h.TotalLen) < hlen {
		return nil, 0, fmt.Errorf("%w: total %d < header %d", ErrLengthField, h.TotalLen, hlen)
	}
	if hlen > minHeaderLen {
		h.Options = append([]byte(nil), b[minHeaderLen:hlen]...)
	}
	return h, hlen, nil
}

// checksum computes the RFC 1071 ones-complement sum of b. Computing it
// over a header whose checksum field holds the correct value yields 0.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
