package disk

import (
	"testing"

	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/units"
)

func newDisk(t *testing.T, cfg Config) (*sim.Engine, *Disk) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, New(eng, cfg, rng.New(1))
}

func noRotation() Config {
	cfg := DefaultConfig()
	cfg.RotationPeriod = 0 // deterministic service times for exact asserts
	return cfg
}

func TestSequentialReadsHitReadahead(t *testing.T) {
	eng, d := newDisk(t, noRotation())
	var done []units.Time
	eng.At(0, func(units.Time) {
		// First read positions; the next 7 strips sit in the 512 KiB
		// readahead window.
		for i := 0; i < 8; i++ {
			lba := units.Bytes(i) * 64 * units.KiB
			d.Read(lba, 64*units.KiB, func(now units.Time) { done = append(done, now) })
		}
	})
	eng.RunUntilIdle()
	st := d.Stats()
	// The head starts at LBA 0, so the first read positions for free;
	// every later strip is a readahead hit.
	if st.Seeks != 0 {
		t.Errorf("seeks = %d, want 0 (readahead covers the rest)", st.Seeks)
	}
	if st.Sequential != 7 {
		t.Errorf("sequential hits = %d, want 7", st.Sequential)
	}
	if st.Requests != 8 || len(done) != 8 {
		t.Errorf("requests = %d done = %d", st.Requests, len(done))
	}
}

func TestRandomReadsSeekEveryTime(t *testing.T) {
	eng, d := newDisk(t, noRotation())
	eng.At(0, func(units.Time) {
		for i := 1; i <= 4; i++ {
			d.Read(units.Bytes(i)*10*units.GiB, 64*units.KiB, nil)
		}
	})
	eng.RunUntilIdle()
	if got := d.Stats().Seeks; got != 4 {
		t.Errorf("seeks = %d, want 4", got)
	}
}

func TestSeekCostGrowsWithDistance(t *testing.T) {
	cfg := noRotation()
	// Near seek.
	engNear, near := newDisk(t, cfg)
	var nearDone units.Time
	engNear.At(0, func(units.Time) {
		near.Read(units.MiB, 4*units.KiB, func(now units.Time) { nearDone = now })
	})
	engNear.RunUntilIdle()
	// Far seek.
	engFar, far := newDisk(t, cfg)
	var farDone units.Time
	engFar.At(0, func(units.Time) {
		far.Read(200*units.GiB, 4*units.KiB, func(now units.Time) { farDone = now })
	})
	engFar.RunUntilIdle()
	if farDone <= nearDone {
		t.Errorf("far seek %v not slower than near seek %v", farDone, nearDone)
	}
	if farDone > cfg.FullSeek+cfg.MediaRate.TimeFor(4*units.KiB) {
		t.Errorf("far seek %v exceeds full-seek bound", farDone)
	}
}

func TestElevatorReordersWithinWindow(t *testing.T) {
	cfg := noRotation()
	cfg.ElevatorWindow = 8
	eng, d := newDisk(t, cfg)
	var order []units.Bytes
	record := func(lba units.Bytes) sim.Event {
		return func(units.Time) { order = append(order, lba) }
	}
	eng.At(0, func(units.Time) {
		// Busy the head with one request, then queue far and near.
		d.Read(0, 64*units.KiB, record(0))
		d.Read(100*units.GiB, 64*units.KiB, record(100*units.GiB))
		d.Read(units.MiB, 64*units.KiB, record(units.MiB))
	})
	eng.RunUntilIdle()
	if len(order) != 3 || order[1] != units.MiB {
		t.Errorf("service order = %v, want the near request second", order)
	}
}

func TestFIFOWithWindowOne(t *testing.T) {
	cfg := noRotation()
	cfg.ElevatorWindow = 1
	eng, d := newDisk(t, cfg)
	var order []units.Bytes
	eng.At(0, func(units.Time) {
		d.Read(0, 4*units.KiB, func(units.Time) { order = append(order, 0) })
		d.Read(100*units.GiB, 4*units.KiB, func(units.Time) { order = append(order, 1) })
		d.Read(units.MiB, 4*units.KiB, func(units.Time) { order = append(order, 2) })
	})
	eng.RunUntilIdle()
	for i, v := range order {
		if int(v) != i {
			t.Fatalf("window=1 must be FIFO, got %v", order)
		}
	}
}

func TestElevatorImprovesThroughput(t *testing.T) {
	// The Figure-12 mechanism: the same random request set completes
	// sooner when the elevator may reorder over a deeper window.
	run := func(window int) units.Time {
		cfg := noRotation()
		cfg.ElevatorWindow = window
		eng, d := newDisk(t, cfg)
		r := rng.New(7)
		eng.At(0, func(units.Time) {
			for i := 0; i < 64; i++ {
				d.Read(units.Bytes(r.Int63n(int64(200*units.GiB))), 4*units.KiB, nil)
			}
		})
		return eng.RunUntilIdle()
	}
	fifo := run(1)
	elevator := run(16)
	if elevator >= fifo {
		t.Errorf("elevator makespan %v not better than FIFO %v", elevator, fifo)
	}
}

func TestReadValidation(t *testing.T) {
	_, d := newDisk(t, noRotation())
	for _, f := range []func(){
		func() { d.Read(0, 0, nil) },
		func() { d.Read(-1, 4, nil) },
		func() { d.Read(250*units.GiB, 4*units.KiB, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(c *Config){
		func(c *Config) { c.MediaRate = 0 },
		func(c *Config) { c.FullSeek = c.TrackToTrack - 1 },
		func(c *Config) { c.RotationPeriod = -1 },
		func(c *Config) { c.Span = 0 },
		func(c *Config) { c.ReadAhead = -1 },
		func(c *Config) { c.ElevatorWindow = 0 },
	}
	for i, mod := range bad {
		cfg := DefaultConfig()
		mod(&cfg)
		if err := cfg.validate(); err == nil {
			t.Errorf("case %d: config accepted", i)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() units.Time {
		eng := sim.NewEngine()
		d := New(eng, DefaultConfig(), rng.New(42))
		r := rng.New(9)
		eng.At(0, func(units.Time) {
			for i := 0; i < 32; i++ {
				d.Read(units.Bytes(r.Int63n(int64(100*units.GiB))), 64*units.KiB, nil)
			}
		})
		return eng.RunUntilIdle()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("runs differ: %v vs %v", a, b)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, d := newDisk(t, noRotation())
	eng.At(0, func(units.Time) {
		d.Read(0, 128*units.KiB, nil)
	})
	end := eng.RunUntilIdle()
	st := d.Stats()
	if st.Bytes != 128*units.KiB {
		t.Errorf("bytes = %v", st.Bytes)
	}
	if st.BusyTime != end {
		t.Errorf("busy %v != makespan %v for a single request from t=0", st.BusyTime, end)
	}
}

func BenchmarkDiskSequentialStream(b *testing.B) {
	eng := sim.NewEngine()
	d := New(eng, DefaultConfig(), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lba := units.Bytes(i%1000000) * 64 * units.KiB % (200 * units.GiB)
		d.Read(lba, 64*units.KiB, nil)
		if i%64 == 63 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
}
