package flowsim

import (
	"errors"
	"math"
	"testing"

	"sais/internal/units"
)

// TestValidateMixTypedErrors is the satellite-2 table: every invalid
// hybrid mix maps onto a typed, errors.Is-able sentinel.
func TestValidateMixTypedErrors(t *testing.T) {
	ok := func(mix ...TenantShare) []TenantShare { return mix }
	cases := []struct {
		name string
		mix  []TenantShare
		want error
	}{
		{"empty mix", nil, ErrNoTenantMix},
		{"negative rate", ok(TenantShare{Name: "a", Share: 1, PerUserRate: -1}), ErrNegativeRate},
		{"share below zero", ok(TenantShare{Name: "a", Share: -0.1, PerUserRate: 1}), ErrBadShare},
		{"share above one", ok(TenantShare{Name: "a", Share: 1.5, PerUserRate: 1}), ErrBadShare},
		{"sum below one", ok(
			TenantShare{Name: "a", Share: 0.5, PerUserRate: 1},
			TenantShare{Name: "b", Share: 0.4, PerUserRate: 1},
		), ErrShareSum},
		{"sum above one", ok(
			TenantShare{Name: "a", Share: 0.7, PerUserRate: 1},
			TenantShare{Name: "b", Share: 0.7, PerUserRate: 1},
		), ErrShareSum},
		{"unknown shape", ok(TenantShare{Name: "a", Share: 1, PerUserRate: 1, Shape: "square"}), ErrBadShape},
		{"diurnal without period", ok(TenantShare{Name: "a", Share: 1, PerUserRate: 1, Shape: "diurnal"}), ErrBadPeriod},
		{"burst without period", ok(TenantShare{Name: "a", Share: 1, PerUserRate: 1, Shape: "burst", Duty: 0.5}), ErrBadPeriod},
		{"amplitude above one", ok(TenantShare{Name: "a", Share: 1, PerUserRate: 1, Shape: "diurnal", Period: units.Millisecond, Amplitude: 1.1}), ErrBadAmplitude},
		{"zero duty", ok(TenantShare{Name: "a", Share: 1, PerUserRate: 1, Shape: "burst", Period: units.Millisecond}), ErrBadDuty},
		{"duty above one", ok(TenantShare{Name: "a", Share: 1, PerUserRate: 1, Shape: "burst", Period: units.Millisecond, Duty: 1.5}), ErrBadDuty},
		{"bad phase", ok(TenantShare{Name: "a", Share: 1, PerUserRate: 1, Phase: 1}), ErrBadPhase},
		{"bad colocate", ok(TenantShare{Name: "a", Share: 1, PerUserRate: 1, Colocate: 1.01}), ErrBadColocate},
		{"negative hot servers", ok(TenantShare{Name: "a", Share: 1, PerUserRate: 1, HotServers: -1}), ErrBadHotServers},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateMix(tc.mix)
			if !errors.Is(err, tc.want) {
				t.Fatalf("ValidateMix = %v, want errors.Is %v", err, tc.want)
			}
		})
	}
}

func TestValidateMixAccepts(t *testing.T) {
	mix := []TenantShare{
		{Name: "stream", Share: 0.7, PerUserRate: 3000, Colocate: 0.2},
		{Name: "burst", Share: 0.3, PerUserRate: 2500, Shape: "burst", Period: 10 * units.Millisecond, Duty: 0.3, HotServers: 4},
	}
	if err := ValidateMix(mix); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}
	// Rounding-friendly decimal shares must pass the sum tolerance.
	thirds := []TenantShare{
		{Name: "a", Share: 0.3, PerUserRate: 1},
		{Name: "b", Share: 0.3, PerUserRate: 1},
		{Name: "c", Share: 0.4, PerUserRate: 1},
	}
	if err := ValidateMix(thirds); err != nil {
		t.Fatalf("decimal shares rejected: %v", err)
	}
}

// TestShapesMeanPreserving: averaged over whole periods every shape
// offers its mean rate, so switching shapes never changes total load.
func TestShapesMeanPreserving(t *testing.T) {
	const period = 10 * units.Millisecond
	shapes := []Flow{
		{Rate: 1e6, Shape: ShapeConstant},
		{Rate: 1e6, Shape: ShapeDiurnal, Period: period, Amplitude: 0.8},
		{Rate: 1e6, Shape: ShapeDiurnal, Period: period, Amplitude: 0.8, Phase: 0.25},
		{Rate: 1e6, Shape: ShapeBurst, Period: period, Duty: 0.3},
		{Rate: 1e6, Shape: ShapeBurst, Period: period, Duty: 0.3, Phase: 0.5},
	}
	const steps = 100000 // 10 whole periods at 1µs resolution
	for i, f := range shapes {
		sum := 0.0
		for s := 0; s < steps; s++ {
			sum += f.RateAt(units.Time(s) * units.Microsecond)
		}
		mean := sum / steps
		if rel := math.Abs(mean-f.Rate) / f.Rate; rel > 0.01 {
			t.Errorf("shape %d: mean %.0f vs %.0f (rel %.4f)", i, mean, f.Rate, rel)
		}
		for s := 0; s < steps; s++ {
			if r := f.RateAt(units.Time(s) * units.Microsecond); r < 0 {
				t.Fatalf("shape %d: negative rate %v at step %d", i, r, s)
			}
		}
	}
}

// TestStationConservation: after Finalize, offered = served + backlog to
// within float rounding, in both under- and overload.
func TestStationConservation(t *testing.T) {
	cases := []struct {
		name string
		cap  units.Rate
	}{
		{"underload", 10e6},
		{"overload", 1e6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := NewStation(tc.cap, units.Millisecond, []Flow{
				{Rate: 1.5e6, Shape: ShapeDiurnal, Period: 20 * units.Millisecond, Amplitude: 0.9},
				{Rate: 0.5e6, Shape: ShapeBurst, Period: 7 * units.Millisecond, Duty: 0.25},
			})
			st.Finalize(123456789) // deliberately not step-aligned
			off, srv, bck := float64(st.OfferedBytes()), float64(st.ServedBytes()), float64(st.BacklogBytes())
			if off <= 0 {
				t.Fatal("no bytes offered")
			}
			if srv > off {
				t.Fatalf("served %v > offered %v", srv, off)
			}
			if diff := math.Abs(off - srv - bck); diff > 2+1e-9*off {
				t.Fatalf("conservation gap %v (offered %v served %v backlog %v)", diff, off, srv, bck)
			}
			if tc.cap == 1e6 && bck == 0 {
				t.Fatal("overloaded station drained completely")
			}
		})
	}
}

// TestAdvanceQueryInvariance: the state at a step boundary must not
// depend on how many intermediate queries happened — the property that
// keeps sharded layouts bit-identical (different layouts query stations
// at different intermediate instants).
func TestAdvanceQueryInvariance(t *testing.T) {
	mk := func() *Station {
		return NewStation(2e6, units.Millisecond, []Flow{
			{Rate: 1.9e6, Shape: ShapeDiurnal, Period: 5 * units.Millisecond, Amplitude: 1},
			{Rate: 0.3e6, Shape: ShapeBurst, Period: 3 * units.Millisecond, Duty: 0.5, Phase: 0.1},
		})
	}
	a, b := mk(), mk()
	const end = 50 * units.Millisecond
	// a: one query at the end. b: a ragged storm of queries, including
	// out-of-order (past) timestamps.
	a.AdvanceTo(end)
	for _, q := range []units.Time{13, 999999, 1000001, 7777777, 500, 31415926, 31415926, 2718281, end} {
		b.AdvanceTo(q)
	}
	if a.offered != b.offered || a.served != b.served || a.backlog != b.backlog || a.load != b.load {
		t.Fatalf("query pattern changed state: a={%v %v %v %v} b={%v %v %v %v}",
			a.offered, a.served, a.backlog, a.load, b.offered, b.served, b.backlog, b.load)
	}
	for i := range a.q {
		if a.q[i] != b.q[i] || a.lastServed[i] != b.lastServed[i] {
			t.Fatalf("flow %d state diverged", i)
		}
	}
}

func TestSlowdown(t *testing.T) {
	cases := []struct {
		u, want float64
	}{
		{-1, 1}, {0, 1}, {0.5, 2}, {0.75, 4}, {0.9375, 16}, {1, 16}, {5, 16},
	}
	for _, tc := range cases {
		if got := Slowdown(tc.u); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Slowdown(%v) = %v, want %v", tc.u, got, tc.want)
		}
	}
	// Monotone non-decreasing over the whole input range.
	prev := 0.0
	for u := -0.5; u < 1.5; u += 0.01 {
		if s := Slowdown(u); s < prev {
			t.Fatalf("Slowdown not monotone at u=%v", u)
		} else {
			prev = s
		}
	}
}

// TestFluidVsDiscretizedReference (satellite 3): the coarse fluid model
// must track an independently-written fine-grained discretization of
// the same queue within tolerance — cumulative served bytes and final
// backlog, under a mix that exercises both under- and overload.
func TestFluidVsDiscretizedReference(t *testing.T) {
	flows := []Flow{
		{Rate: 1.2e6, Shape: ShapeDiurnal, Period: 8 * units.Millisecond, Amplitude: 0.9},
		{Rate: 0.8e6, Shape: ShapeBurst, Period: 5 * units.Millisecond, Duty: 0.2, Phase: 0.3},
		{Rate: 0.3e6, Shape: ShapeConstant},
	}
	const (
		capacity = units.Rate(2e6)
		step     = units.Millisecond
		end      = 100 * units.Millisecond
	)
	st := NewStation(capacity, step, flows)
	st.Finalize(end)

	// Reference: the same queue discretized 100× finer, integrating the
	// rate curve by midpoint rule instead of left endpoint.
	fine := step / 100
	var q, served, offered float64
	for now := units.Time(0); now < end; now += fine {
		sec := float64(fine) * 1e-9
		for _, f := range flows {
			q += f.RateAt(now+fine/2) * sec
			offered += f.RateAt(now+fine/2) * sec
		}
		capb := float64(capacity) * sec
		if q <= capb {
			served += q
			q = 0
		} else {
			served += capb
			q -= capb
		}
	}

	relServed := math.Abs(float64(st.ServedBytes())-served) / served
	if relServed > 0.02 {
		t.Errorf("served: fluid %v vs reference %.0f (rel %.4f)", st.ServedBytes(), served, relServed)
	}
	relOffered := math.Abs(float64(st.OfferedBytes())-offered) / offered
	if relOffered > 0.02 {
		t.Errorf("offered: fluid %v vs reference %.0f (rel %.4f)", st.OfferedBytes(), offered, relOffered)
	}
	// Backlog is the small difference of two large numbers; compare on
	// the offered scale.
	if diff := math.Abs(float64(st.BacklogBytes()) - q); diff > 0.02*offered {
		t.Errorf("backlog: fluid %v vs reference %.0f (offered %.0f)", st.BacklogBytes(), q, offered)
	}
}

// TestServerFlowsResolution: Colocate splits traffic between server and
// client stations, HotServers concentrates it, and totals across all
// stations equal the mix's aggregate mean rate.
func TestServerFlowsResolution(t *testing.T) {
	mix := []TenantShare{
		{Name: "spread", Share: 0.6, PerUserRate: 1000, Colocate: 0.25},
		{Name: "hot", Share: 0.4, PerUserRate: 2000, HotServers: 2},
	}
	const users, servers, clients = 100000, 8, 4

	var serverTotal float64
	for s := 0; s < servers; s++ {
		fl := ServerFlows(mix, users, s, servers)
		if len(fl) != len(mix) {
			t.Fatalf("server %d: %d flows, want %d", s, len(fl), len(mix))
		}
		if s >= 2 && fl[1].Rate != 0 {
			t.Errorf("server %d outside hot set has rate %v for hot tenant", s, fl[1].Rate)
		}
		for _, f := range fl {
			serverTotal += f.Rate
		}
	}
	var clientTotal float64
	for c := 0; c < clients; c++ {
		fl := ClientFlows(mix, users, clients)
		_ = c
		if fl[1].Rate != 0 {
			t.Errorf("non-colocated tenant leaked %v to clients", fl[1].Rate)
		}
		clientTotal += fl[0].Rate
	}

	wantServer := float64(users) * (0.6*1000*0.75 + 0.4*2000)
	wantClient := float64(users) * 0.6 * 1000 * 0.25
	if math.Abs(serverTotal-wantServer) > 1e-6*wantServer {
		t.Errorf("server aggregate %v, want %v", serverTotal, wantServer)
	}
	if math.Abs(clientTotal-wantClient) > 1e-6*wantClient {
		t.Errorf("client aggregate %v, want %v", clientTotal, wantClient)
	}
	if got, want := MixMeanRate(mix, users), wantServer+wantClient; math.Abs(got-want) > 1e-6*want {
		t.Errorf("MixMeanRate %v, want %v", got, want)
	}

	// HotServers wider than the cluster degrades to uniform spread.
	wide := []TenantShare{{Name: "w", Share: 1, PerUserRate: 1000, HotServers: 64}}
	for s := 0; s < 4; s++ {
		fl := ServerFlows(wide, 100, s, 4)
		if want := 100.0 * 1000 / 4; math.Abs(fl[0].Rate-want) > 1e-9 {
			t.Fatalf("server %d rate %v, want %v", s, fl[0].Rate, want)
		}
	}
}

func TestHasRate(t *testing.T) {
	if HasRate(nil) {
		t.Error("empty slice has rate")
	}
	if HasRate([]Flow{{Rate: 0}, {Rate: 0}}) {
		t.Error("zero flows have rate")
	}
	if !HasRate([]Flow{{Rate: 0}, {Rate: 1}}) {
		t.Error("positive flow missed")
	}
}
