package flowsim

import (
	"testing"

	"sais/internal/sim"
	"sais/internal/units"
)

// BenchmarkHybridMillionUsers measures the rate-update steady state of
// the hybrid engine at headline scale: 1,000,000 background users in a
// three-tenant mix resolved onto 64 foreground-client stations plus 16
// server stations, all ticked by self-rearming events on one arena
// engine. One op advances the whole cluster's analytic state by one
// rate-update step (80 station integrations + 80 event re-arms). The
// gate is 0 allocs/op: the fluid path must ride the PR 3 arena without
// touching the heap.
func BenchmarkHybridMillionUsers(b *testing.B) {
	const (
		users   = 1000000
		clients = 64
		servers = 16
		step    = units.Millisecond
	)
	mix := []TenantShare{
		{Name: "stream", Share: 0.6, PerUserRate: 3000, Colocate: 0.2},
		{Name: "diurnal", Share: 0.3, PerUserRate: 2000, Shape: "diurnal", Period: 50 * units.Millisecond, Amplitude: 0.8, Colocate: 0.1},
		{Name: "burst", Share: 0.1, PerUserRate: 4000, Shape: "burst", Period: 20 * units.Millisecond, Duty: 0.25, HotServers: 4},
	}
	if err := ValidateMix(mix); err != nil {
		b.Fatal(err)
	}

	eng := sim.NewEngine()
	stations := make([]*Station, 0, clients+servers)
	for s := 0; s < servers; s++ {
		stations = append(stations, NewStation(units.Gigabit, step, ServerFlows(mix, users, s, servers)))
	}
	cf := ClientFlows(mix, users, clients)
	for c := 0; c < clients; c++ {
		stations = append(stations, NewStation(units.Gigabit, step, cf))
	}
	for _, st := range stations {
		st := st
		var tick func(units.Time)
		tick = func(now units.Time) {
			st.AdvanceTo(now)
			eng.After(step, tick)
		}
		eng.After(step, tick)
	}

	// Warm the arena and the station trajectories past the transient.
	horizon := 10 * step
	eng.RunBefore(horizon)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		horizon += step
		eng.RunBefore(horizon)
	}
	b.StopTimer()

	var served units.Bytes
	for _, st := range stations {
		served += st.ServedBytes()
	}
	if served <= 0 {
		b.Fatal("no bytes served")
	}
}
