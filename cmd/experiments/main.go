// Command experiments regenerates the paper's evaluation: every table
// and figure (5-12, 14, and the §V.C 1-Gigabit result) as a text table
// of baseline vs SAIs with the relative change per cell.
//
// Usage:
//
//	experiments              # run everything, in paper order
//	experiments -fig 5       # one figure ("5", "figure5", "5-1g", "12", ...)
//	experiments -list        # list experiment ids
//	experiments -seeds 5     # more repetitions per cell
//	experiments -parallel 8  # run up to 8 cells concurrently per figure
//	experiments -timeout 2m  # bound the whole regeneration
//	experiments -degraded    # latency vs frame loss per policy (faults)
//	experiments -chaos       # crash-and-recover scenario per policy
//	experiments -policymatrix # strip latency and reordering per policy × workload
//
// Ctrl-C (SIGINT) cancels in-flight simulations promptly and the
// figures completed (or partially completed) so far are still printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sais/experiments"
	"sais/internal/faults"
	"sais/internal/prof"
	"sais/internal/units"
)

// profiler is package-level so fatal (which exits without running
// defers) can flush profiles too.
var profiler *prof.Profiler

func main() {
	var (
		fig     = flag.String("fig", "", "run a single figure by id or number")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		seeds   = flag.Int("seeds", 0, "override repetitions per cell (default: per-experiment, ≥3)")
		plot    = flag.Bool("plot", false, "render each figure as an ASCII bar chart too")
		csv     = flag.Bool("csv", false, "emit CSV rows instead of tables")
		html    = flag.String("html", "", "also write a self-contained HTML report to this file")
		par     = flag.Int("parallel", 1, "run up to N cells of each experiment concurrently")
		timeout = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")

		degraded  = flag.Bool("degraded", false, "run the degraded-mode sweep (latency vs loss per policy) and exit")
		chaos     = flag.Bool("chaos", false, "run the crash-and-recover chaos scenario and exit")
		graceful  = flag.Bool("graceful", false, "run the graceful-degradation study (permanent server loss, hard-fail vs per-transfer deadlines) and exit")
		noisy     = flag.Bool("noisy", false, "run the noisy-neighbor study (background load vs foreground strip latency per policy) and exit")
		matrix    = flag.Bool("policymatrix", false, "run the policy × workload matrix (strip latency percentiles and reordering per registered policy) and exit")
		faultPlan = flag.String("fault-plan", "", "with -chaos: load the scenario's fault plan from a JSON file")
		loss      = flag.Float64("loss", 0, "with -degraded: run only this loss rate instead of the default grid")
		crashAt   = flag.Duration("crash-at", 0, "with -chaos: override the crash time (revive stays 30ms later)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	var err error
	profiler, err = prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer profiler.Stop()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, *timeout)
		defer cancelTimeout()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		fmt.Printf("%-12s %s\n", "-degraded", experiments.Degraded().Title)
		fmt.Printf("%-12s %s\n", "-chaos", experiments.CrashAndRecover().Title)
		fmt.Printf("%-12s %s\n", "-graceful", experiments.GracefulDegradation().Title)
		fmt.Printf("%-12s %s\n", "-noisy", experiments.NoisyNeighbor().Title)
		fmt.Printf("%-12s %s\n", "-policymatrix", experiments.PolicyMatrix().Title)
		return
	}

	if *degraded {
		sweep := experiments.Degraded()
		if *seeds > 0 {
			sweep.Seeds = *seeds
		}
		sweep.Parallel = *par
		if *loss > 0 {
			sweep.LossRates = []float64{*loss}
		}
		rep, err := sweep.RunContext(ctx)
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Print(rep.CSV())
		} else {
			fmt.Println(rep.Table())
		}
		return
	}
	if *graceful {
		sweep := experiments.GracefulDegradation()
		sweep.Parallel = *par
		rep, err := sweep.RunContext(ctx)
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Print(rep.CSV())
		} else {
			fmt.Println(rep.Table())
		}
		return
	}
	if *noisy {
		sweep := experiments.NoisyNeighbor()
		sweep.Parallel = *par
		rep, err := sweep.RunContext(ctx)
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Print(rep.CSV())
		} else {
			fmt.Println(rep.Table())
		}
		return
	}
	if *matrix {
		sweep := experiments.PolicyMatrix()
		sweep.Parallel = *par
		rep, err := sweep.RunContext(ctx)
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Print(rep.CSV())
		} else {
			fmt.Println(rep.Table())
		}
		return
	}
	if *chaos {
		sc := experiments.CrashAndRecover()
		sc.Parallel = *par
		if *faultPlan != "" {
			plan, err := faults.LoadPlan(*faultPlan)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			sc.Plan = plan
			sc.Title = fmt.Sprintf("Chaos: fault plan %s", *faultPlan)
		} else if *crashAt > 0 {
			at := units.Time(crashAt.Nanoseconds())
			sc.Plan = &faults.Plan{Timeline: []faults.TimelineEvent{
				{At: at, Kind: faults.KindCrash, Server: 0},
				{At: at + 30*units.Millisecond, Kind: faults.KindRevive, Server: 0},
			}}
			sc.Title = fmt.Sprintf("Chaos: crash server 0 at %v, revive 30ms later", *crashAt)
		}
		rep, err := sc.RunContext(ctx)
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Print(rep.CSV())
		} else {
			fmt.Println(rep.Table())
		}
		return
	}

	var toRun []experiments.Experiment
	if *fig != "" {
		id := *fig
		// Bare numbers ("5", "12") are shorthand for figure ids; named
		// experiments (writes, hybrid, ...) pass through.
		if _, err := experiments.ByID(id); err != nil && !strings.HasPrefix(id, "figure") {
			id = "figure" + id
		}
		e, err := experiments.ByID(id)
		if err != nil {
			fatal(err)
		}
		toRun = []experiments.Experiment{e}
	} else {
		toRun = experiments.All()
	}

	var reports []*experiments.Report
	interrupted := false
	for _, e := range toRun {
		if *seeds > 0 {
			e.Seeds = *seeds
		}
		e.Parallel = *par
		start := time.Now() //lint:wallclock operator-facing elapsed-time note, not a figure input
		rep, err := e.RunContext(ctx)
		if err != nil {
			if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			// Graceful shutdown: keep whatever cells finished before the
			// signal or deadline, print them, and stop scheduling figures.
			interrupted = true
			if rep != nil && len(rep.Cells) > 0 {
				reports = append(reports, rep)
				render(rep, *csv, *plot)
				elapsed := time.Since(start).Round(time.Millisecond) //lint:wallclock operator-facing elapsed-time note, not a figure input
				fmt.Printf("(%s interrupted after %v with %d/%d cells)\n\n",
					e.ID, elapsed, len(rep.Cells), len(e.Cells))
			}
			fmt.Fprintln(os.Stderr, "experiments: run cancelled:", err)
			break
		}
		reports = append(reports, rep)
		render(rep, *csv, *plot)
		if !*csv {
			//lint:wallclock operator-facing elapsed-time note, not a figure input
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if *html != "" {
		f, err := os.Create(*html)
		if err != nil {
			fatal(err)
		}
		//lint:wallclock report header timestamp; injected here so the experiments package stays deterministic
		generated := time.Now().Format(time.RFC1123)
		werr := experiments.WriteHTML(f, reports, generated)
		if cerr := f.Close(); werr == nil {
			werr = cerr // a dropped close error would hide a truncated report
		}
		if werr != nil {
			fatal(werr)
		}
		fmt.Printf("HTML report written to %s\n", *html)
	}
	if interrupted {
		profiler.Stop()
		os.Exit(1)
	}
}

func fatal(err error) {
	profiler.Stop() // os.Exit skips defers; flush profiles first
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// render prints one report in the selected format.
func render(rep *experiments.Report, csv, plot bool) {
	if csv {
		fmt.Print(rep.CSV())
		return
	}
	fmt.Println(rep.Table())
	if plot {
		chart, err := rep.Chart()
		if err != nil {
			fatal(err)
		}
		fmt.Println(chart)
	}
}
