package metrics

import "math"

// Histogram bucket geometry: log-linear (HDR-style). Each power-of-two
// octave is split into 2^histSubBits linear sub-buckets, bounding the
// relative quantile error at ~1/2^histSubBits (≈3 %) across the full
// positive float range — wide enough for nanosecond latencies without
// pre-declaring bounds.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits // sub-buckets per octave
	histOctaves = 63               // exponents 0..62 (values below 1 share bucket 0)
	histBuckets = 1 + histOctaves*histSub + 1
)

// Histogram is a fixed-shape log-linear latency histogram. The zero
// value is ready to use; the bucket array is allocated on first Add so
// an unused histogram costs a few words. Percentile estimates carry
// ≤ ~3 % relative error and agree with Percentile on the raw samples
// within that bound.
type Histogram struct {
	counts []uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	e := math.Ilogb(v)
	if e > histOctaves-1 {
		e = histOctaves - 1
	}
	sub := int((v/math.Ldexp(1, e) - 1) * histSub)
	if sub < 0 {
		sub = 0
	}
	if sub >= histSub {
		sub = histSub - 1
	}
	return 1 + e*histSub + sub
}

// bucketMid returns the representative (midpoint) value of a bucket.
func bucketMid(b int) float64 {
	if b == 0 {
		return 0.5
	}
	b--
	e := b / histSub
	sub := b % histSub
	lo := math.Ldexp(1, e) * (1 + float64(sub)/histSub)
	hi := math.Ldexp(1, e) * (1 + float64(sub+1)/histSub)
	return (lo + hi) / 2
}

// Add records one observation. Negative and NaN values clamp to zero —
// latencies cannot be negative, and a poisoned sample must not poison
// the whole distribution.
func (h *Histogram) Add(v float64) {
	if !(v > 0) {
		v = 0
	}
	if h.counts == nil {
		h.counts = make([]uint64, histBuckets)
	}
	if h.n == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]uint64, histBuckets)
	}
	if h.n == 0 {
		h.min, h.max = o.min, o.max
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the exact mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// valueAtRank returns the representative value of the k-th smallest
// observation (0-based), clamped to the observed [min, max] so the
// extreme ranks are exact.
func (h *Histogram) valueAtRank(k uint64) float64 {
	var seen uint64
	for b, c := range h.counts {
		seen += c
		if seen > k {
			v := bucketMid(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Percentile estimates the p-th percentile (0..100) with the same
// rank-interpolation convention as Percentile on a raw slice, so the
// two agree within the histogram's bucket resolution.
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := p / 100 * float64(h.n-1)
	k := uint64(math.Floor(rank))
	frac := rank - float64(k)
	lo := h.valueAtRank(k)
	if frac == 0 {
		return lo
	}
	hi := h.valueAtRank(k + 1)
	return lo*(1-frac) + hi*frac
}
