package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sais/internal/lint/analysis"
)

// AllocFree statically backs the 0 allocs/op rows strict-gated in
// BENCH_sim.json: a function annotated //saisvet:allocfree — the sim
// event loop, the shard round executor, the flowsim AdvanceTo
// rate-update path — must not contain heap-allocating constructs, and
// must only call functions that are themselves allocation-free
// (annotated, or conservatively proven so by this analyzer; the proof
// travels across packages as vetx facts).
//
// Flagged constructs: slice/map composite literals and &T{} (escaping
// composites), new and make, closures capturing outer variables,
// goroutine spawns, interface conversions of non-pointer values
// (explicit, or implicit at call arguments), string concatenation and
// string<->[]byte conversions, append without preallocated-capacity
// evidence (the target must be a persistent struct-field buffer, a
// reslice of one, a parameter, or a local provably backed by one), and
// calls whose callee is dynamic or not allocation-free.
//
// A block that terminates in panic is a failure path, not steady
// state, and is exempt — the 0 allocs/op contract is about the healthy
// hot loop, and a simulation that panics has already lost. Suppress a
// reviewed site (an event-callback invocation whose allocation budget
// belongs to the scheduler's client, a per-round amortized sort) with
// //lint:alloc and a reason.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "//saisvet:allocfree functions must not allocate and may only call " +
		"allocation-free functions (suppress: //lint:alloc)",
	Directives: []string{"alloc"},
	Run:        runAllocFree,
}

// allocSite is one allocating construct inside a function body.
type allocSite struct {
	pos token.Pos
	why string
}

// allocFreeStdlib are dependency packages with no facts whose exported
// functions are trusted not to allocate: pure float/integer math and
// the sync primitives (whose fast paths are allocation-free by
// design).
var allocFreeStdlib = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync":        true,
	"sync/atomic": true,
}

// allocFreeBuiltins are the builtin calls legal in an allocfree body.
// append is handled by its own evidence rule; make and new are alloc
// sites.
var allocFreeBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true,
	"min": true, "max": true, "clear": true, "panic": true,
	"recover": true, "real": true, "imag": true, "complex": true,
	"print": true, "println": true,
}

func runAllocFree(pass *analysis.Pass) (any, error) {
	dirs := pass.Directives()

	type fnInfo struct {
		decl      *ast.FuncDecl
		obj       *types.Func
		annotated bool
		sites     []allocSite // direct allocating constructs
		calls     []callSite  // static call edges
		dynamic   []allocSite // dynamic calls (func values, interface methods)
	}
	var fns []*fnInfo
	byObj := make(map[*types.Func]*fnInfo)

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			_, annotated := annotation([]*ast.CommentGroup{fd.Doc}, "allocfree")
			info := &fnInfo{decl: fd, obj: obj, annotated: annotated}
			collectAllocSites(pass, info.decl, &info.sites, &info.calls, &info.dynamic)
			fns = append(fns, info)
			byObj[obj] = info
		}
	}

	// Fixpoint over the same-package call graph: a function is proven
	// allocation-free when it has no direct alloc sites, no dynamic
	// calls, and every callee is allocation-free (annotated here or in
	// a dependency, proven here, proven in a dependency's facts, or a
	// trusted stdlib package). dirty[fn] carries the first reason.
	dirty := make(map[*types.Func]string)
	for _, info := range fns {
		if len(info.sites) > 0 {
			dirty[info.obj] = info.sites[0].why
		} else if len(info.dynamic) > 0 {
			dirty[info.obj] = info.dynamic[0].why
		}
	}
	calleeClean := func(callee *types.Func) (string, bool) {
		if info, ok := byObj[callee]; ok {
			if info.annotated {
				return "", true // contract enforced at its own definition
			}
			if why, bad := dirty[callee]; bad {
				return why, false
			}
			return "", true
		}
		pkg := callee.Pkg()
		if pkg == nil {
			return "", true // universe scope (error methods etc.)
		}
		if allocFreeStdlib[pkg.Path()] {
			return "", true
		}
		if fact, ok := pass.DepFunctionFact(callee); ok {
			if fact.AllocFree {
				return "", true
			}
			if fact.AllocWhy != "" {
				return fact.AllocWhy, false
			}
		}
		return "no allocation-freedom fact is exported for it", false
	}
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			if _, bad := dirty[info.obj]; bad {
				continue
			}
			for _, cs := range info.calls {
				if cs.callee == info.obj {
					continue
				}
				if why, clean := calleeClean(cs.callee); !clean {
					dirty[info.obj] = fmt.Sprintf("calls %s, which is not allocation-free (%s)", calleeName(cs.callee), why)
					changed = true
					break
				}
			}
		}
	}

	// Export facts: annotated functions are contractually allocation-
	// free (violations are diagnostics below, and the tree is kept at
	// zero findings); unannotated ones export their proof status.
	for _, info := range fns {
		fact := pass.Facts.Fact(info.obj.FullName())
		if info.annotated {
			fact.AllocFree = true
		} else if why, bad := dirty[info.obj]; bad {
			fact.AllocWhy = clipVia(why)
		} else {
			fact.AllocFree = true
		}
	}

	// Diagnostics, only inside annotated functions.
	for _, info := range fns {
		if !info.annotated {
			continue
		}
		report := func(pos token.Pos, why string) {
			if !dirs.Suppressed(pos, "alloc") {
				pass.Reportf(pos, "%s in //saisvet:allocfree %s: the hot-path 0 allocs/op contract forbids it (suppress a reviewed site with //lint:alloc)",
					why, info.obj.Name())
			}
		}
		for _, s := range info.sites {
			report(s.pos, s.why)
		}
		for _, s := range info.dynamic {
			report(s.pos, s.why)
		}
		for _, cs := range info.calls {
			if cs.callee == info.obj {
				continue
			}
			if why, clean := calleeClean(cs.callee); !clean {
				report(cs.pos, fmt.Sprintf("call to %s, which is not allocation-free (%s)", calleeName(cs.callee), why))
			}
		}
	}
	return nil, nil
}

// collectAllocSites walks fd's body recording allocating constructs,
// static call edges, and dynamic calls. Blocks terminating in panic
// are failure paths and skipped wholesale.
func collectAllocSites(pass *analysis.Pass, fd *ast.FuncDecl, sites *[]allocSite, calls *[]callSite, dynamic *[]allocSite) {
	add := func(pos token.Pos, format string, args ...any) {
		*sites = append(*sites, allocSite{pos: pos, why: fmt.Sprintf(format, args...)})
	}
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				if blockPanics(pass, n) {
					return false
				}
			case *ast.GoStmt:
				add(n.Pos(), "goroutine spawn (stack + closure allocation)")
				return false
			case *ast.CompositeLit:
				t := pass.TypeOf(n)
				if t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Slice:
					add(n.Pos(), "slice literal (heap-allocates its backing array)")
				case *types.Map:
					add(n.Pos(), "map literal")
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						add(n.Pos(), "&composite literal (escaping heap allocation)")
						return false
					}
				}
			case *ast.FuncLit:
				if captured := capturedVars(pass, n); len(captured) > 0 {
					add(n.Pos(), "closure capturing %s by reference", strings.Join(captured, ", "))
					return false // inner body belongs to the closure's own budget
				}
				return false // non-capturing literal is a static func value
			case *ast.BinaryExpr:
				if n.Op == token.ADD && isStringType(pass.TypeOf(n.X)) {
					add(n.Pos(), "string concatenation")
				}
			case *ast.CallExpr:
				classifyCall(pass, n, add, calls, dynamic)
			}
			return true
		})
	}
	walk(fd.Body)
}

// classifyCall sorts one call expression into conversion, builtin,
// static call, or dynamic call, recording alloc sites as appropriate.
func classifyCall(pass *analysis.Pass, call *ast.CallExpr, add func(token.Pos, string, ...any), calls *[]callSite, dynamic *[]allocSite) {
	fun := ast.Unparen(call.Fun)

	// Type conversion: T(x).
	if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) == 1 {
			argT := pass.TypeOf(call.Args[0])
			switch {
			case types.IsInterface(target.Underlying()) && isConcreteNonPointer(argT):
				add(call.Pos(), "conversion of non-pointer %s to interface %s (boxes the value)", typeStr(argT), typeStr(target))
			case isStringType(target) && isByteOrRuneSlice(argT),
				isByteOrRuneSlice(target) && isStringType(argT):
				add(call.Pos(), "string/slice conversion (copies the contents)")
			}
		}
		return
	}

	// Builtin.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make")
			case "new":
				add(call.Pos(), "new")
			case "append":
				if !appendPreallocated(pass, call) {
					add(call.Pos(), "append without preallocated-capacity evidence (target is not a persistent field-backed buffer)")
				}
			default:
				if !allocFreeBuiltins[b.Name()] {
					add(call.Pos(), "builtin %s", b.Name())
				}
			}
			checkIfaceArgs(pass, call, add)
			return
		}
	}

	callee := staticCallee(pass, call)
	if callee == nil {
		*dynamic = append(*dynamic, allocSite{pos: call.Pos(),
			why: "dynamic call (func value or interface method); the callee's allocation behavior cannot be verified"})
	} else {
		*calls = append(*calls, callSite{callee: callee, pos: call.Pos()})
	}
	checkIfaceArgs(pass, call, add)
}

// checkIfaceArgs flags arguments implicitly converted to interface
// parameters — the fmt.Sprintf(...any) boxing path.
func checkIfaceArgs(pass *analysis.Pass, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case params.Len() > 0:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok && sig.Variadic() {
				pt = sl.Elem()
			}
			if call.Ellipsis.IsValid() {
				pt = last // x... passes the slice through, no boxing
			}
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		if at := pass.TypeOf(arg); isConcreteNonPointer(at) {
			add(arg.Pos(), "argument boxes non-pointer %s into interface parameter", typeStr(at))
		}
	}
}

// appendPreallocated reports whether the append target shows evidence
// of an amortized, preallocated buffer: a struct-field selector (a
// persistent engine buffer), any index/slice of one, a parameter
// (caller-owned capacity), or a local whose every definition in the
// function derives from one of those (including append-to-self and
// make, whose allocation is its own finding).
func appendPreallocated(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	return fieldBacked(pass, call.Args[0], 0, make(map[*types.Var]bool))
}

func fieldBacked(pass *analysis.Pass, e ast.Expr, depth int, visited map[*types.Var]bool) bool {
	if depth > 8 {
		return false
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return true // field (or package var) backed: a persistent buffer
	case *ast.IndexExpr:
		return fieldBacked(pass, x.X, depth+1, visited)
	case *ast.SliceExpr:
		return fieldBacked(pass, x.X, depth+1, visited)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "append":
					return len(x.Args) > 0 && fieldBacked(pass, x.Args[0], depth+1, visited)
				case "make":
					return true // the make itself is the alloc finding
				}
			}
		}
		return false
	case *ast.Ident:
		obj, ok := pass.TypesInfo.ObjectOf(x).(*types.Var)
		if !ok {
			return false
		}
		if obj.IsField() {
			return true
		}
		// Parameters and receivers: the caller owns the capacity.
		if isParamOrReceiver(pass, obj) {
			return true
		}
		if visited[obj] {
			// Self-referential definition (live = append(live, ...)):
			// backing is preserved; the other definitions decide.
			return true
		}
		visited[obj] = true
		// Local: every definition must itself be field-backed.
		def, found := localDefinitions(pass, x, obj)
		if !found {
			return false
		}
		for _, rhs := range def {
			if !fieldBacked(pass, rhs, depth+1, visited) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// isParamOrReceiver reports whether obj is a parameter or receiver of
// its enclosing function signature.
func isParamOrReceiver(pass *analysis.Pass, obj *types.Var) bool {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Pos() > obj.Pos() || obj.Pos() >= fd.Body.Pos() {
				continue // params/receivers are declared before the body
			}
			return true
		}
	}
	return false
}

// localDefinitions collects every RHS expression assigned to obj in
// the function enclosing use.
func localDefinitions(pass *analysis.Pass, use *ast.Ident, obj *types.Var) (rhs []ast.Expr, found bool) {
	var encl *ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Pos() <= use.Pos() && use.End() <= fd.End() {
				encl = fd
			}
		}
	}
	if encl == nil {
		return nil, false
	}
	ast.Inspect(encl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.TypesInfo.ObjectOf(id) != obj {
					continue
				}
				found = true
				if len(n.Rhs) == len(n.Lhs) {
					rhs = append(rhs, n.Rhs[i])
				} else if len(n.Rhs) == 1 {
					rhs = append(rhs, n.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.ObjectOf(name) != obj {
					continue
				}
				found = true
				if i < len(n.Values) {
					rhs = append(rhs, n.Values[i])
				}
			}
		}
		return true
	})
	return rhs, found
}

// capturedVars lists the outer local variables a func literal captures.
// Package-level objects and the literal's own locals/params don't
// count: only enclosing-function variables force a heap closure.
func capturedVars(pass *analysis.Pass, lit *ast.FuncLit) []string {
	seen := make(map[*types.Var]bool)
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
			return true // package-level
		}
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true // the literal's own declaration
		}
		seen[v] = true
		out = append(out, v.Name())
		return true
	})
	return out
}

// blockPanics reports whether the block's last statement is a panic
// call — the failure-path exemption.
func blockPanics(pass *analysis.Pass, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	es, ok := b.List[len(b.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b2, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b2.Name() == "panic"
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isConcreteNonPointer reports whether t is a concrete type whose
// conversion to an interface boxes a copy on the heap: anything but
// pointers, interfaces, and untyped nil.
func isConcreteNonPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Map, *types.Chan:
		return false // single-word (or already-boxed) representations
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	}
	return true
}

func typeStr(t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return t.String()
}
