// Package collective implements ROMIO-style two-phase collective reads
// over a client node's processes — the optimization behind MPI-IO's
// collective mode, which the paper's IOR workload can run:
//
//	Phase 1 (I/O): a subset of the processes (the aggregators) read
//	large contiguous file domains from the parallel file system —
//	fewer, bigger requests than the processes' own interleaved ones.
//
//	Phase 2 (redistribution): each aggregator scatters the pieces to
//	the processes that wanted them through shared memory — an
//	intra-node exchange that costs cache-to-cache transfers.
//
// Collective I/O trades network/server efficiency for guaranteed
// client-side data movement, so it interacts with interrupt scheduling
// in an interesting way: under SAIs the independent pattern already
// keeps strips local and phase 2 only adds migrations, while under a
// balanced policy the aggregation concentrates the damage on a few
// cores.
package collective

import (
	"fmt"

	"sais/internal/client"
	"sais/internal/pfs"
	"sais/internal/sim"
	"sais/internal/units"
)

// Config describes one collective read.
type Config struct {
	Aggregators int // processes performing phase-1 I/O (≥ 1)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Aggregators < 1 {
		return fmt.Errorf("collective: aggregators %d must be >= 1", c.Aggregators)
	}
	return nil
}

// Result summarizes one collective read.
type Result struct {
	Bytes         units.Bytes
	Domains       int
	Redistributed units.Bytes // bytes moved between cores in phase 2
	Finished      units.Time
}

// Read performs one collective read: every process in procs wants the
// byte range [base+i*perProc, base+(i+1)*perProc) of file. The first
// cfg.Aggregators processes act as aggregators. done fires (with the
// Result available) when every process holds its data.
func Read(eng *sim.Engine, node *client.Node, procs []*client.Proc, file pfs.FileID,
	base, perProc units.Bytes, cfg Config, done func(*Result)) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(procs) == 0 {
		return fmt.Errorf("collective: no processes")
	}
	if perProc <= 0 {
		return fmt.Errorf("collective: per-process bytes must be positive")
	}
	if base < 0 {
		return fmt.Errorf("collective: negative base offset")
	}
	aggs := cfg.Aggregators
	if aggs > len(procs) {
		aggs = len(procs)
	}
	total := units.Bytes(len(procs)) * perProc
	res := &Result{Bytes: total}

	// Phase 1: split [0, total) into contiguous file domains, one per
	// aggregator, strip-aligned where possible.
	domain := total / units.Bytes(aggs)
	type dom struct {
		agg           *client.Proc
		offset, bytes units.Bytes
	}
	var domains []dom
	for j := 0; j < aggs; j++ {
		off := units.Bytes(j) * domain
		sz := domain
		if j == aggs-1 {
			sz = total - off
		}
		if sz > 0 {
			domains = append(domains, dom{agg: procs[j], offset: base + off, bytes: sz})
		}
	}
	res.Domains = len(domains)

	remainingIO := len(domains)
	phase2 := func(now units.Time) {
		// Phase 2: every process pulls its range from the aggregators
		// whose domains overlap it.
		remainingXfer := 0
		finish := func(units.Time) {
			remainingXfer--
			if remainingXfer == 0 {
				res.Finished = eng.Now()
				done(res)
			}
		}
		type xfer struct {
			src, dst *client.Proc
			bytes    units.Bytes
		}
		var xfers []xfer
		for i, p := range procs {
			want0 := base + units.Bytes(i)*perProc
			want1 := want0 + perProc
			for _, d := range domains {
				lo, hi := maxB(want0, d.offset), minB(want1, d.offset+d.bytes)
				if hi <= lo {
					continue
				}
				if d.agg == p {
					continue // already resident with the aggregator
				}
				xfers = append(xfers, xfer{src: d.agg, dst: p, bytes: hi - lo})
			}
		}
		if len(xfers) == 0 {
			res.Finished = now
			done(res)
			return
		}
		remainingXfer = len(xfers)
		for _, x := range xfers {
			res.Redistributed += x.bytes
			node.TransferBetween(x.src.Core(), x.dst.Core(), x.bytes, finish)
		}
	}

	for _, d := range domains {
		d := d
		d.agg.Read(file, d.offset, d.bytes, func(now units.Time) {
			remainingIO--
			if remainingIO == 0 {
				phase2(now)
			}
		})
	}
	return nil
}

func maxB(a, b units.Bytes) units.Bytes {
	if a > b {
		return a
	}
	return b
}

func minB(a, b units.Bytes) units.Bytes {
	if a < b {
		return a
	}
	return b
}
