package faults

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"sais/internal/rng"
	"sais/internal/units"
)

// errWriter fails every write — the io.Writer a full disk looks like.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWritePlanPropagatesWriterError(t *testing.T) {
	if err := WritePlan(errWriter{}, samplePlan()); err == nil {
		t.Error("WritePlan to a failing writer returned nil")
	}
}

// samplePlan exercises every field of the spec.
func samplePlan() *Plan {
	return &Plan{
		Loss:    0.01,
		Corrupt: 0.005,
		Stalls: []Stall{
			{Server: 0, Rate: 0.5, Mean: units.Millisecond, Jitter: 100 * units.Microsecond},
			{Server: 1, Rate: 1, Mean: 2 * units.Millisecond},
		},
		Timeline: []TimelineEvent{
			{At: units.Millisecond, Kind: KindCrash, Server: 0},
			{At: 2 * units.Millisecond, Kind: KindDegradeLink, Factor: 4},
			{At: 3 * units.Millisecond, Kind: KindRevive, Server: 0},
			{At: 4 * units.Millisecond, Kind: KindStormStart, Client: -1, Period: 50 * units.Microsecond},
			{At: 5 * units.Millisecond, Kind: KindStormStop},
		},
	}
}

func TestValidateTable(t *testing.T) {
	cases := []struct {
		name    string
		plan    *Plan
		servers int
		clients int
		wantErr string // substring; "" = valid
	}{
		{"nil plan", nil, 0, 0, ""},
		{"zero plan", &Plan{}, 1, 1, ""},
		{"full plan", samplePlan(), 2, 1, ""},
		{"negative loss", &Plan{Loss: -0.1}, 1, 1, "loss"},
		{"loss of one", &Plan{Loss: 1}, 1, 1, "loss"},
		{"negative corrupt", &Plan{Corrupt: -0.5}, 1, 1, "corrupt"},
		{"corrupt of one", &Plan{Corrupt: 1}, 1, 1, "corrupt"},
		{"stall bad server", &Plan{Stalls: []Stall{{Server: 3, Rate: 1, Mean: 1}}}, 2, 1, "targets server"},
		{"stall rate above one", &Plan{Stalls: []Stall{{Server: 0, Rate: 1.5, Mean: 1}}}, 1, 1, "rate"},
		{"stall negative mean", &Plan{Stalls: []Stall{{Server: 0, Rate: 1, Mean: -1}}}, 1, 1, "negative delay"},
		{"stall negative jitter", &Plan{Stalls: []Stall{{Server: 0, Rate: 1, Jitter: -1}}}, 1, 1, "negative delay"},
		{"stall overlap", &Plan{Stalls: []Stall{
			{Server: 1, Rate: 1, Mean: 1}, {Server: 1, Rate: 0.5, Mean: 1},
		}}, 2, 1, "re-targets"},
		{"stall overlap via all", &Plan{Stalls: []Stall{
			{Server: -1, Rate: 1, Mean: 1}, {Server: 0, Rate: 0.5, Mean: 1},
		}}, 2, 1, "re-targets"},
		{"negative event time", &Plan{Timeline: []TimelineEvent{
			{At: -1, Kind: KindCrash, Server: 0},
		}}, 1, 1, "negative time"},
		{"crash bad server", &Plan{Timeline: []TimelineEvent{
			{At: 0, Kind: KindCrash, Server: 5},
		}}, 2, 1, "targets server"},
		{"revive bad server", &Plan{Timeline: []TimelineEvent{
			{At: 0, Kind: KindRevive, Server: -1},
		}}, 2, 1, "targets server"},
		{"degrade zero factor", &Plan{Timeline: []TimelineEvent{
			{At: 0, Kind: KindDegradeLink},
		}}, 1, 1, "factor"},
		{"storm zero period", &Plan{Timeline: []TimelineEvent{
			{At: 0, Kind: KindStormStart, Client: -1},
			{At: 1, Kind: KindStormStop},
		}}, 1, 1, "period"},
		{"storm negative payload", &Plan{Timeline: []TimelineEvent{
			{At: 0, Kind: KindStormStart, Client: -1, Period: 1, Payload: -1},
			{At: 1, Kind: KindStormStop},
		}}, 1, 1, "payload"},
		{"storm bad client", &Plan{Timeline: []TimelineEvent{
			{At: 0, Kind: KindStormStart, Client: 7, Period: 1},
			{At: 1, Kind: KindStormStop},
		}}, 1, 1, "targets client"},
		{"nested storm", &Plan{Timeline: []TimelineEvent{
			{At: 0, Kind: KindStormStart, Client: -1, Period: 1},
			{At: 1, Kind: KindStormStart, Client: -1, Period: 1},
			{At: 2, Kind: KindStormStop},
		}}, 1, 1, "while a storm is active"},
		{"stop without start", &Plan{Timeline: []TimelineEvent{
			{At: 0, Kind: KindStormStop},
		}}, 1, 1, "without an active storm"},
		{"unterminated storm", &Plan{Timeline: []TimelineEvent{
			{At: 0, Kind: KindStormStart, Client: -1, Period: 1},
		}}, 1, 1, "without a matching storm-stop"},
		{"unknown kind", &Plan{Timeline: []TimelineEvent{
			{At: 0, Kind: "meteor-strike"},
		}}, 1, 1, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(tc.servers, tc.clients)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestSortedTimelineIsStable(t *testing.T) {
	p := &Plan{Timeline: []TimelineEvent{
		{At: 5, Kind: KindRevive, Server: 1},
		{At: 1, Kind: KindCrash, Server: 0},
		{At: 5, Kind: KindCrash, Server: 2}, // same time as the revive: original order kept
	}}
	tl := p.sortedTimeline()
	if tl[0].Kind != KindCrash || tl[0].Server != 0 {
		t.Errorf("first event = %+v", tl[0])
	}
	if tl[1].Kind != KindRevive || tl[2].Kind != KindCrash {
		t.Errorf("tie order not stable: %+v then %+v", tl[1], tl[2])
	}
	// The plan itself is untouched.
	if p.Timeline[0].At != 5 {
		t.Error("sortedTimeline mutated the plan")
	}
}

func TestCloneAndEmpty(t *testing.T) {
	if !(*Plan)(nil).Empty() || (*Plan)(nil).Clone() != nil {
		t.Error("nil plan should be empty and clone to nil")
	}
	if !(&Plan{}).Empty() {
		t.Error("zero plan should be empty")
	}
	p := samplePlan()
	if p.Empty() {
		t.Error("sample plan should not be empty")
	}
	cp := p.Clone()
	if !reflect.DeepEqual(p, cp) {
		t.Fatalf("clone differs: %+v vs %+v", p, cp)
	}
	cp.Stalls[0].Rate = 0.9
	cp.Timeline[0].Server = 1
	if p.Stalls[0].Rate == 0.9 || p.Timeline[0].Server == 1 {
		t.Error("clone shares slices with the original")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := samplePlan()
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip changed the plan:\nwrote %+v\nread  %+v", p, got)
	}
}

// TestPlanJSONRoundTripByteIdentical pins the serialization itself:
// Save → Load → re-save must reproduce the bytes exactly, so committed
// scenario plans never churn in review when a tool rewrites them.
func TestPlanJSONRoundTripByteIdentical(t *testing.T) {
	var first bytes.Buffer
	if err := WritePlan(&first, samplePlan()); err != nil {
		t.Fatal(err)
	}
	reread, err := ReadPlan(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WritePlan(&second, reread); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-save not byte-identical:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}
}

// TestDegradeBelowOneRejectedUniformly pins the uniform rule: a
// degrade-link factor below 1 fails plan validation regardless of how
// the run is sharded — it used to slip through on shards=1 and only
// error under the sharded executor.
func TestDegradeBelowOneRejectedUniformly(t *testing.T) {
	p := &Plan{Timeline: []TimelineEvent{{At: 0, Kind: KindDegradeLink, Factor: 0.5}}}
	err := p.Validate(1, 1)
	if err == nil || !strings.Contains(err.Error(), "factor") {
		t.Fatalf("Validate() = %v, want factor error", err)
	}
	r := newRig(t, 1)
	if _, err := p.Arm(r.target(rng.New(1))); err == nil {
		t.Fatal("Arm accepted a sub-1 degrade factor on a single engine")
	}
}

func TestMergePlans(t *testing.T) {
	base := &Plan{Loss: 0.01, Stalls: []Stall{{Server: 0, Rate: 1, Mean: units.Millisecond}}}
	extra := &Plan{Loss: 0.005, Corrupt: 0.02, Timeline: []TimelineEvent{
		{At: units.Millisecond, Kind: KindCrash, Server: 1},
	}}
	m := Merge(base, extra)
	if m.Loss != 0.01 || m.Corrupt != 0.02 {
		t.Errorf("merged rates = %v/%v, want max of each side", m.Loss, m.Corrupt)
	}
	if len(m.Stalls) != 1 || len(m.Timeline) != 1 {
		t.Errorf("merged shape = %d stalls, %d events", len(m.Stalls), len(m.Timeline))
	}
	// Merge never aliases its inputs.
	m.Stalls[0].Rate = 0.1
	m.Timeline[0].Server = 9
	if base.Stalls[0].Rate != 1 || extra.Timeline[0].Server != 1 {
		t.Error("Merge shares slices with an input plan")
	}
	if got := Merge(nil, extra); !reflect.DeepEqual(got, extra) || got == extra {
		t.Errorf("Merge(nil, extra) = %+v, want an equal copy", got)
	}
	if got := Merge(base, nil); !reflect.DeepEqual(got, base) || got == base {
		t.Errorf("Merge(base, nil) = %+v, want an equal copy", got)
	}
	if Merge(nil, nil) != nil {
		t.Error("Merge(nil, nil) should stay nil")
	}
}

func TestReadPlanRejectsUnknownFields(t *testing.T) {
	cases := []struct{ name, src string }{
		{"top level", `{"Loss": 0.1, "Bogus": true}`},
		{"inside stall", `{"Stalls": [{"Server": 0, "Rate": 1, "Wat": 3}]}`},
		{"inside event", `{"Timeline": [{"At": 0, "Kind": "crash", "Extra": "x"}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadPlan(strings.NewReader(tc.src)); err == nil {
				t.Fatal("unknown field accepted")
			}
		})
	}
}
