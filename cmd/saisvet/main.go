// Command saisvet is the repository's static-analysis multichecker: it
// runs the internal/lint analyzers (simdeterminism, seedderive,
// unitsafety, closecheck) over one package at a time under the
// `go vet -vettool` protocol:
//
//	go build -o .bin/saisvet ./cmd/saisvet
//	go vet -vettool=.bin/saisvet ./...
//
// (`make lint` does exactly that.) The go command hands the tool a JSON
// config file describing a single type-checked package — source files
// plus export data for every dependency — and the tool prints findings
// to stderr in file:line:col form, exiting 2 when there are any.
//
// The protocol implementation mirrors x/tools' unitchecker but is
// built purely on the standard library's go/importer, because this
// module deliberately has no external dependencies.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"sort"
	"strings"

	"sais/internal/lint"
	"sais/internal/lint/analysis"
)

// vetConfig is the per-package configuration the go command writes for
// a -vettool. Field set and meaning follow cmd/go/internal/work.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

func main() {
	args := os.Args[1:]

	// Protocol endpoints the go command may probe before vetting.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion()
			return
		case args[0] == "-flags":
			// We accept no analyzer flags; report an empty flag set so
			// `go vet -vettool` rejects any it is given.
			fmt.Println("[]")
			return
		}
	}

	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: saisvet <package>.cfg\n\n"+
			"saisvet is a go vet -vettool; run it through `make lint` or\n"+
			"`go vet -vettool=$(go env GOPATH)/bin/saisvet ./...`.\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		os.Exit(1)
	}

	diags, err := checkPackage(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "saisvet: %v\n", err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

// printVersion answers -V=full in the form cmd/go's buildID parser
// expects: "<tool> version devel ... buildID=<content-hash>". Hashing
// our own executable makes the go command re-vet cached packages
// whenever the tool's analyzers change.
func printVersion() {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f) // a short hash only weakens caching, not correctness
			//lint:close (read-only executable handle)
			_ = f.Close()
		}
	}
	fmt.Printf("saisvet version devel buildID=%x\n", h.Sum(nil)[:16])
}

// checkPackage loads one vet config, type-checks the package it
// describes, and runs every analyzer, returning rendered diagnostics.
func checkPackage(cfgPath string) ([]string, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// The go command caches our (empty) fact output and feeds it back
	// via PackageVetx; writing it first keeps the cache primed even
	// when the package is vetted only for its dependents (VetxOnly).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("saisvet-no-facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a canonical package path; the go command supplies
		// export data for every import.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes: types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = version.Lang(cfg.GoVersion)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	var diags []string
	for _, a := range lint.Analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, name))
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Strings(diags)
	return diags, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
