// Fixture for the shardsafety analyzer under a deterministic package
// path: mailbox fields are writable only by their owning type's
// methods (locally and across packages via facts), and package-level
// mutable state must not be written at runtime.
package main

import "sais/internal/sdep"

type Engine struct {
	// inbox is the per-shard mailbox.
	//saisvet:mailbox
	inbox [][]int
}

// Deliver may write: it is a method of the owning type.
func (e *Engine) Deliver(dst, v int) {
	e.inbox[dst] = append(e.inbox[dst], v)
}

// poke is a free function, not an owner.
func poke(e *Engine, dst int) {
	e.inbox[dst] = nil // want `write to mailbox field e.inbox outside its owning type's methods`
}

type Other struct{}

// Steal is a method — of the wrong type.
func (o *Other) Steal(e *Engine) {
	e.inbox = nil // want `write to mailbox field e.inbox`
}

// rob writes a mailbox field declared in another package; the contract
// arrives through the dependency's exported facts.
func rob(b *sdep.Box) {
	b.Slots = nil // want `write to mailbox field b.Slots`
}

// fill uses the sanctioned cross-package writer.
func fill(b *sdep.Box) {
	b.Put(1)
}

// reviewed shows the hatch.
func reviewed(e *Engine) {
	//lint:shardsafety constructor wiring: the engine is not yet published
	e.inbox = make([][]int, 4)
}

var counter int
var seen = map[string]bool{}

func init() {
	counter = 0 // no finding: init-time setup is sealed before any run
}

func bump() {
	counter++         // want `runtime write to package-level counter in deterministic package`
	delete(seen, "x") // want `runtime write to package-level seen`
	//lint:globalstate test-only reset hook, never reached during a run
	counter = 0
}

func main() {}
