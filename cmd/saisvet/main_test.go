package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sais/internal/lint/analysis"
)

// TestCheckPackageFindsViolation drives the unitchecker entry point
// directly: a hand-built vet.cfg describing a one-file package with a
// seed+i bug must produce a seedderive diagnostic and a decodable vetx
// facts file.
func TestCheckPackageFindsViolation(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	const code = `package p

func fanOut(seed uint64, i uint64) uint64 { return seed + i }
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "vet.out")
	cfg := vetConfig{
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "sais/internal/sim",
		GoFiles:    []string{src},
		ImportMap:  map[string]string{},
		VetxOutput: vetx,
	}
	js, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, js, 0o666); err != nil {
		t.Fatal(err)
	}

	diags, err := checkPackage(cfgPath, vetOptions{Format: "text"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0], "seedderive") || !strings.Contains(diags[0], "rng.Derive") {
		t.Errorf("diagnostics = %q, want one seedderive finding suggesting rng.Derive", diags)
	}
	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatalf("vetx facts file not written: %v", err)
	}
	if _, ok := analysis.DecodeFacts(data); !ok {
		t.Errorf("vetx facts file for a sais package does not decode as saisvet facts: %q", data)
	}
}

// TestCheckPackageVetxOnlyForeign: dependency-only invocations for
// packages outside the sais module must write the no-facts marker and
// report nothing, without even parsing the package.
func TestCheckPackageVetxOnlyForeign(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "vet.out")
	cfg := vetConfig{
		Compiler:   "gc",
		ImportPath: "example.com/foreign",
		GoFiles:    []string{filepath.Join(dir, "does-not-exist.go")},
		VetxOnly:   true,
		VetxOutput: vetx,
	}
	js, _ := json.Marshal(cfg)
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, js, 0o666); err != nil {
		t.Fatal(err)
	}
	diags, err := checkPackage(cfgPath, vetOptions{Format: "text"})
	if err != nil || len(diags) != 0 {
		t.Errorf("VetxOnly run: diags=%v err=%v, want none", diags, err)
	}
	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatalf("vetx marker not written: %v", err)
	}
	if _, ok := analysis.DecodeFacts(data); ok {
		t.Errorf("foreign package vetx decoded as saisvet facts; want opaque marker")
	}
}

// TestCheckPackageVetxOnlySaisComputesFacts: a dependency-only pass
// over a sais-module package must still parse, type-check, and export
// real facts — that is the whole cross-package channel. The fixture
// spawns a goroutine, so the exported fact set must carry a
// goroutine taint for the spawning function, while the pass itself
// reports nothing (findings belong to the package's own vet run).
func TestCheckPackageVetxOnlySaisComputesFacts(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "helper.go")
	const code = `package helper

func Spawn(fn func()) {
	go fn()
}
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "vet.out")
	cfg := vetConfig{
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "sais/internal/helper",
		GoFiles:    []string{src},
		ImportMap:  map[string]string{},
		VetxOnly:   true,
		VetxOutput: vetx,
	}
	js, _ := json.Marshal(cfg)
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, js, 0o666); err != nil {
		t.Fatal(err)
	}
	diags, err := checkPackage(cfgPath, vetOptions{Format: "text"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("VetxOnly pass reported diagnostics: %v", diags)
	}
	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatalf("vetx facts file not written: %v", err)
	}
	pf, ok := analysis.DecodeFacts(data)
	if !ok {
		t.Fatalf("sais package vetx does not decode as facts: %q", data)
	}
	fact := pf.Functions["sais/internal/helper.Spawn"]
	if fact == nil || fact.Taints["goroutine"] == "" {
		t.Errorf("exported facts = %+v, want a goroutine taint on Spawn", pf.Functions)
	}
}

// TestFactsRoundTrip: facts written through the vetx encoding must
// decode to the same content, byte-stable across encodes (the go
// command caches vetx files by content).
func TestFactsRoundTrip(t *testing.T) {
	pf := &analysis.PackageFacts{
		Functions: map[string]*analysis.FunctionFact{
			"sais/internal/runner.Map": {Taints: map[string]string{"goroutine": "spawns a goroutine at runner.go:57:2"}},
			"(*sais/internal/sim.Engine).Step": {AllocFree: true},
			"sais/internal/trace.ExportChrome": {AllocWhy: "map literal"},
		},
		HookFields: map[string]string{"sais/cluster.Config.Progress": "nilhook"},
		JSONStable: []string{"sais/cluster.Result", "sais/cluster.FaultReport"},
	}
	enc := analysis.EncodeFacts(pf)
	got, ok := analysis.DecodeFacts(enc)
	if !ok {
		t.Fatalf("encoded facts did not decode: %q", enc)
	}
	if got.Functions["sais/internal/runner.Map"].Taints["goroutine"] == "" ||
		!got.Functions["(*sais/internal/sim.Engine).Step"].AllocFree ||
		got.Functions["sais/internal/trace.ExportChrome"].AllocWhy != "map literal" ||
		got.HookFields["sais/cluster.Config.Progress"] != "nilhook" ||
		len(got.JSONStable) != 2 {
		t.Errorf("round-tripped facts lost content: %+v", got)
	}
	if enc2 := analysis.EncodeFacts(got); string(enc2) != string(enc) {
		t.Errorf("re-encoding decoded facts is not byte-stable:\n%q\n%q", enc, enc2)
	}
}

// TestGithubFormat: -format=github renders findings as GitHub Actions
// workflow commands with escaped newlines.
func TestGithubFormat(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	const code = `package p

func fanOut(seed uint64, i uint64) uint64 { return seed + i }
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := vetConfig{
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "sais/internal/sim",
		GoFiles:    []string{src},
		ImportMap:  map[string]string{},
	}
	js, _ := json.Marshal(cfg)
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, js, 0o666); err != nil {
		t.Fatal(err)
	}
	diags, err := checkPackage(cfgPath, vetOptions{Format: "github"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.HasPrefix(diags[0], "::error file=") ||
		!strings.Contains(diags[0], "line=3") || !strings.Contains(diags[0], "(seedderive)") {
		t.Errorf("github diagnostics = %q, want one ::error annotation on line 3", diags)
	}
}

// buildSaisvet compiles the tool once into dir and returns the binary
// path.
func buildSaisvet(t *testing.T, repoRoot, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "saisvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/saisvet")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building saisvet: %v\n%s", err, out)
	}
	return bin
}

// TestVetToolCleanOnRepo is the acceptance smoke test: build saisvet
// and run it through the real `go vet -vettool` protocol over the whole
// module — with -strict-waivers, exactly as `make lint` and CI do —
// which must be finding-free. This also exercises the -V=full buildID
// handshake, the -flags probe, the per-package cfg runs, the facts
// encode/decode across every package edge, and the export-data importer
// against every package in the tree.
func TestVetToolCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module go vet in -short mode")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := buildSaisvet(t, repoRoot, t.TempDir())

	vet := exec.Command("go", "vet", "-vettool="+bin, "-strict-waivers", "./...")
	vet.Dir = repoRoot
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool reported findings or failed: %v\n%s", err, out)
	}
}

// TestVetToolCrossPackageFacts proves the facts actually travel through
// the go command's vetx channel: a scratch module named sais contains a
// non-deterministic helper package whose exported function spawns a
// goroutine, and a deterministic package (sais/internal/sim by path)
// that calls it. Vetting the module must flag the cross-package call as
// goroutine-tainted — a finding that is only derivable by reading the
// helper's facts out of its dependency vetx file.
func TestVetToolCrossPackageFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("real go vet run in -short mode")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bin := buildSaisvet(t, repoRoot, dir)

	mod := filepath.Join(dir, "mod")
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module sais\n\ngo 1.21\n")
	write("internal/helper/helper.go", `// Package helper is a scratch non-deterministic package.
package helper

// Spawn runs fn concurrently. Not reported here (the package is not in
// the deterministic set) but exported as a goroutine taint.
func Spawn(fn func()) {
	go fn()
}
`)
	write("internal/sim/sim.go", `// Package sim stands in for the deterministic event engine.
package sim

import "sais/internal/helper"

// Tick launders a goroutine spawn through the helper package.
func Tick() {
	helper.Spawn(func() {})
}
`)

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet succeeded; want a cross-package goroutine-taint finding\n%s", out)
	}
	if !strings.Contains(string(out), "goroutine-tainted") || !strings.Contains(string(out), "helper.Spawn") {
		t.Errorf("vet output = %s, want a goroutine-tainted finding at the helper.Spawn call site", out)
	}
}
