package sim

import (
	"testing"

	"sais/internal/units"
)

// TestStepPrimitives drives an engine event-by-event through the
// peek/process pair and checks the observed schedule matches Run's.
func TestStepPrimitives(t *testing.T) {
	e := NewEngine()
	var got []units.Time
	for _, at := range []units.Time{30, 10, 20, 10} {
		at := at
		e.At(at, func(now units.Time) { got = append(got, now) })
	}
	if !e.HasPendingEvents() {
		t.Fatal("HasPendingEvents = false with 4 events queued")
	}
	want := []units.Time{10, 10, 20, 30}
	for i, w := range want {
		at, ok := e.PeekNextEventTime()
		if !ok || at != w {
			t.Fatalf("peek %d: got (%v, %v), want (%v, true)", i, at, ok, w)
		}
		if !e.ProcessNextEvent() {
			t.Fatalf("ProcessNextEvent %d: no event", i)
		}
	}
	if e.HasPendingEvents() {
		t.Fatal("HasPendingEvents = true after drain")
	}
	if e.ProcessNextEvent() {
		t.Fatal("ProcessNextEvent = true on empty queue")
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

// TestPeekSkipsCancelled checks peek sees through dead queue fronts.
func TestPeekSkipsCancelled(t *testing.T) {
	e := NewEngine()
	tm := e.At(5, func(units.Time) {})
	e.At(9, func(units.Time) {})
	tm.Cancel()
	if at, ok := e.PeekNextEventTime(); !ok || at != 9 {
		t.Fatalf("peek after cancel: got (%v, %v), want (9, true)", at, ok)
	}
}

// TestRunBefore checks the strict-horizon contract: events below the
// horizon fire, the event at the horizon does not, and the clock stays
// at the last fired event.
func TestRunBefore(t *testing.T) {
	e := NewEngine()
	var fired []units.Time
	for _, at := range []units.Time{10, 20, 30} {
		e.At(at, func(now units.Time) { fired = append(fired, now) })
	}
	if n := e.RunBefore(30); n != 2 {
		t.Fatalf("RunBefore(30) executed %d events, want 2", n)
	}
	if e.Now() != 20 {
		t.Fatalf("clock at %v after RunBefore(30), want 20", e.Now())
	}
	if n := e.RunBefore(31); n != 1 {
		t.Fatalf("RunBefore(31) executed %d events, want 1", n)
	}
	if len(fired) != 3 || fired[2] != 30 {
		t.Fatalf("fired %v, want [10 20 30]", fired)
	}
}

// TestAtOriginOrdersBySource checks that same-instant origin-tagged
// events fire in origin order regardless of scheduling order, and that
// untagged fifo events at the same instant precede them.
func TestAtOriginOrdersBySource(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(10, func(units.Time) {
		// All scheduled at schedAt=10 for at=10, in descending origin
		// order; they must fire ascending.
		e.AtOrigin(10, 7, func(units.Time) { order = append(order, "o7") })
		e.AtOrigin(10, 3, func(units.Time) { order = append(order, "o3") })
		e.Immediately(func(units.Time) { order = append(order, "local") })
	})
	e.RunUntilIdle()
	want := [...]string{"local", "o3", "o7"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestScheduleRemoteMatchesLocal checks the composition property the
// sharded executor relies on: an event injected with ScheduleRemote
// sorts exactly where the equivalent AtOrigin call on a shared engine
// would have put it.
func TestScheduleRemoteMatchesLocal(t *testing.T) {
	run := func(inject func(e *Engine, log *[]string)) []string {
		e := NewEngine()
		var log []string
		// A local event scheduled at t=0 for t=50 (schedAt 0).
		e.At(50, func(units.Time) { log = append(log, "local50") })
		e.At(20, func(units.Time) {
			// Scheduled at t=20 for t=50 with origin 4.
			e.AtOrigin(50, 4, func(units.Time) { log = append(log, "o4") })
		})
		inject(e, &log)
		e.RunUntilIdle()
		return log
	}
	// Variant A: the origin-9 delivery scheduled locally at t=20.
	a := run(func(e *Engine, log *[]string) {
		e.At(20, func(units.Time) {
			e.AtOrigin(50, 9, func(units.Time) { *log = append(*log, "o9") })
		})
	})
	// Variant B: the same delivery injected from "another shard" at
	// t=30 carrying its true schedAt=20.
	b := run(func(e *Engine, log *[]string) {
		e.At(30, func(units.Time) {
			e.ScheduleRemote(50, 20, 9, func(units.Time) { *log = append(*log, "o9") })
		})
	})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("local %v vs remote %v diverge", a, b)
		}
	}
	want := [...]string{"local50", "o4", "o9"}
	for i, w := range want {
		if a[i] != w {
			t.Fatalf("order %v, want %v", a, want)
		}
	}
}

// TestScheduleRemotePanics checks the causality and origin guards.
func TestScheduleRemotePanics(t *testing.T) {
	for name, fn := range map[string]func(e *Engine){
		"zero origin":   func(e *Engine) { e.AtOrigin(10, 0, func(units.Time) {}) },
		"schedAt>at":    func(e *Engine) { e.ScheduleRemote(10, 11, 1, func(units.Time) {}) },
		"remote origin": func(e *Engine) { e.ScheduleRemote(10, 5, 0, func(units.Time) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn(NewEngine())
		}()
	}
}
