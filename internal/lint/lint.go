// Package lint hosts the saisvet analyzers: mechanical enforcement of
// the simulator's determinism, unit-safety, and error-handling
// invariants. See DESIGN.md §11 for the rationale behind each check.
//
// Every analyzer honors a line-scoped suppression directive of the form
//
//	//lint:<name> optional reason
//
// placed on the flagged line or the line directly above it, where
// <name> is the directive listed in the analyzer's Doc (wallclock,
// maporder, goroutine, globalrand, seedarith, unitmix, close). The
// reason is free text; write one — the annotation is the audit trail
// for why the invariant does not apply at that site.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"sais/internal/lint/analysis"
)

// Analyzers is the full saisvet suite, in the order the multichecker
// runs them.
var Analyzers = []*analysis.Analyzer{
	SimDeterminism,
	SeedDerive,
	UnitSafety,
	CloseCheck,
}

// deterministicPkgs are the packages whose observable behavior must be
// a pure function of (Config, Seed): the discrete-event core, every
// simulated component, and the experiment/sweep layers whose output
// ordering feeds the paper's figures. simdeterminism applies its
// strictest rules (no goroutines, no map-ordered iteration) only here.
var deterministicPkgs = map[string]bool{
	"sais/cluster":             true,
	"sais/experiments":         true,
	"sais/internal/sim":        true,
	"sais/internal/netsim":     true,
	"sais/internal/apic":       true,
	"sais/internal/cpu":        true,
	"sais/internal/cache":      true,
	"sais/internal/disk":       true,
	"sais/internal/pfs":        true,
	"sais/internal/client":     true,
	"sais/internal/irqsched":   true,
	"sais/internal/faults":     true,
	"sais/internal/workload":   true,
	"sais/internal/collective": true,
	"sais/internal/sweep":      true,
}

// isDeterministicPkg reports whether path is one of the packages whose
// behavior must be bit-reproducible. Test variants ("sais/cluster
// [sais/cluster.test]" style IDs never reach here; go vet passes the
// plain import path) share their base package's classification.
func isDeterministicPkg(path string) bool {
	return deterministicPkgs[path]
}

// isTestFile reports whether the file containing pos is a _test.go
// file. The invariants are about shipped simulator code; tests are free
// to use wall clocks, goroutines, and map iteration.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// directiveIndex records, per line, the //lint: directive names present
// on that line.
type directiveIndex struct {
	fset  *token.FileSet
	lines map[string]map[int][]string // filename -> line -> directives
}

// newDirectiveIndex scans every comment in files for //lint:<name>
// directives.
func newDirectiveIndex(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{fset: fset, lines: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//lint:") {
					continue
				}
				name := strings.TrimPrefix(text, "//lint:")
				if i := strings.IndexAny(name, " \t"); i >= 0 {
					name = name[:i]
				}
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					idx.lines[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], name)
			}
		}
	}
	return idx
}

// suppressed reports whether a finding of kind name at pos is waived by
// a //lint:name directive on the same line or the line above.
func (idx *directiveIndex) suppressed(pos token.Pos, name string) bool {
	p := idx.fset.Position(pos)
	byLine := idx.lines[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range byLine[line] {
			if d == name {
				return true
			}
		}
	}
	return false
}
