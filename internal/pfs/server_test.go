package pfs

import (
	"testing"

	"sais/internal/netsim"
	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/units"
)

// harness: one client NIC (node 1), one server (node 100), one MDS
// (node 50).
type harness struct {
	eng    *sim.Engine
	fab    *netsim.Fabric
	client *netsim.NIC
	srv    *Server
	mds    *MetadataServer
	rx     []*netsim.Frame
}

func newHarness(t *testing.T, echo bool) *harness {
	t.Helper()
	h := &harness{eng: sim.NewEngine()}
	h.fab = netsim.NewFabric(h.eng, 10*units.Microsecond)
	h.client = netsim.NewNIC(h.eng, 1, netsim.DefaultNICConfig(3*units.Gigabit))
	h.fab.Attach(h.client)
	h.client.SetInterruptHandler(func(units.Time) {
		h.rx = append(h.rx, h.client.Drain()...)
	})
	scfg := DefaultServerConfig(units.Gigabit)
	scfg.EchoHints = echo
	scfg.Disk.RotationPeriod = 0 // determinism for asserts
	h.srv = NewServer(h.eng, h.fab, 100, scfg, rng.New(1))
	h.mds = NewMetadataServer(h.eng, h.fab, 50, DefaultMetadataConfig(units.Gigabit),
		func(FileID) Layout {
			return Layout{StripSize: 64 * units.KiB, Servers: []netsim.NodeID{100}}
		})
	return h
}

func (h *harness) sendRequest(hint netsim.AffHint, pieces []Piece) {
	h.eng.At(0, func(units.Time) {
		h.client.Send(100, RequestSize, hint, &ReadRequest{
			File:   7,
			Tag:    1,
			Client: 1,
			Pieces: pieces,
		})
	})
}

func strips(n int) []Piece {
	out := make([]Piece, n)
	for i := range out {
		out[i] = Piece{GlobalStrip: i, ServerOffset: units.Bytes(i) * 64 * units.KiB, Size: 64 * units.KiB}
	}
	return out
}

func TestServerReturnsAllStrips(t *testing.T) {
	h := newHarness(t, true)
	h.sendRequest(netsim.Hint(3), strips(4))
	h.eng.RunUntilIdle()
	if len(h.rx) != 4 {
		t.Fatalf("client received %d frames, want 4", len(h.rx))
	}
	var bytes units.Bytes
	seen := map[int]bool{}
	for _, f := range h.rx {
		sd, ok := f.Body.(*StripData)
		if !ok {
			t.Fatalf("frame body %T", f.Body)
		}
		if sd.Tag != 1 || sd.File != 7 {
			t.Errorf("strip data = %+v", sd)
		}
		seen[sd.GlobalStrip] = true
		bytes += f.Payload
	}
	if bytes != 256*units.KiB {
		t.Errorf("returned %v, want 256KiB", bytes)
	}
	if len(seen) != 4 {
		t.Errorf("distinct strips = %d", len(seen))
	}
	st := h.srv.Stats()
	if st.Requests != 1 || st.StripsSent != 4 || st.BytesSent != 256*units.KiB {
		t.Errorf("server stats = %+v", st)
	}
}

func TestServerEchoesHint(t *testing.T) {
	h := newHarness(t, true)
	h.sendRequest(netsim.Hint(5), strips(2))
	h.eng.RunUntilIdle()
	for _, f := range h.rx {
		hint := netsim.ParseHint(f)
		if !hint.Valid || hint.Core != 5 {
			t.Errorf("data frame hint = %v, want aff_core=5", hint)
		}
	}
}

func TestServerWithoutCapsulerDropsHint(t *testing.T) {
	h := newHarness(t, false)
	h.sendRequest(netsim.Hint(5), strips(2))
	h.eng.RunUntilIdle()
	if len(h.rx) != 2 {
		t.Fatalf("rx = %d", len(h.rx))
	}
	for _, f := range h.rx {
		if netsim.ParseHint(f).Valid {
			t.Error("hint echoed with capsuler disabled")
		}
	}
}

func TestServerIgnoresStrayTraffic(t *testing.T) {
	h := newHarness(t, true)
	h.eng.At(0, func(units.Time) {
		h.client.Send(100, units.KiB, netsim.AffHint{}, "garbage")
	})
	h.eng.RunUntilIdle()
	if h.srv.Stats().Requests != 0 {
		t.Error("stray frame counted as request")
	}
}

func TestServerStall(t *testing.T) {
	fast := newHarness(t, true)
	fast.sendRequest(netsim.AffHint{}, strips(1))
	fastEnd := func() units.Time { fast.eng.RunUntilIdle(); return fast.eng.Now() }()

	slow := newHarness(t, true)
	slow.srv.SetStall(func() units.Time { return 5 * units.Millisecond })
	slow.sendRequest(netsim.AffHint{}, strips(1))
	slowEnd := func() units.Time { slow.eng.RunUntilIdle(); return slow.eng.Now() }()

	if slowEnd-fastEnd < 4*units.Millisecond {
		t.Errorf("stall added only %v", slowEnd-fastEnd)
	}
	if slow.srv.Stats().Stalled != 1 {
		t.Errorf("stalled = %d", slow.srv.Stats().Stalled)
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	h := newHarness(t, true)
	h.eng.At(0, func(units.Time) {
		h.client.Send(50, LayoutRequestSize, netsim.AffHint{}, &LayoutRequest{File: 7, Tag: 9, Client: 1})
	})
	h.eng.RunUntilIdle()
	if len(h.rx) != 1 {
		t.Fatalf("rx = %d frames", len(h.rx))
	}
	rep, ok := h.rx[0].Body.(*LayoutReply)
	if !ok {
		t.Fatalf("body = %T", h.rx[0].Body)
	}
	if rep.Tag != 9 || rep.File != 7 || len(rep.Layout.Servers) != 1 {
		t.Errorf("reply = %+v", rep)
	}
	if h.mds.Queries() != 1 {
		t.Errorf("queries = %d", h.mds.Queries())
	}
}

func TestPlacementDistinctFiles(t *testing.T) {
	h := newHarness(t, true)
	a := h.srv.placement(1)
	b := h.srv.placement(2)
	if a == b {
		t.Error("distinct files placed at the same LBA")
	}
	if a%units.MiB != 0 || b%units.MiB != 0 {
		t.Error("placement not MiB aligned")
	}
	span := h.srv.cfg.Disk.Span
	if a < 0 || a >= span || b < 0 || b >= span {
		t.Error("placement outside disk span")
	}
	if h.srv.placement(1) != a {
		t.Error("placement not deterministic")
	}
}

func TestPageCacheAbsorbsSequentialStrips(t *testing.T) {
	// Strips within one request are contiguous on the local disk, so
	// the page cache should fetch whole readahead windows: 8 strips of
	// 64 KiB at a 256 KiB window = 2 disk reads, not 8.
	h := newHarness(t, true)
	h.sendRequest(netsim.AffHint{}, strips(8))
	h.eng.RunUntilIdle()
	pc := h.srv.Pages()
	if pc.Misses() != 2 {
		t.Errorf("window misses = %d, want 2", pc.Misses())
	}
	if got := h.srv.Disk().Stats().Requests; got != 2 {
		t.Errorf("disk requests = %d, want 2", got)
	}
	if pc.Hits()+pc.Merged() != 6 {
		t.Errorf("hits+merged = %d, want 6", pc.Hits()+pc.Merged())
	}
}

func TestPageCacheServesRereads(t *testing.T) {
	// A second client (or run) reading the same range must not touch
	// the disk again — the Figure-12 shared-file mechanism.
	h := newHarness(t, true)
	h.sendRequest(netsim.AffHint{}, strips(4))
	h.eng.RunUntilIdle()
	diskBefore := h.srv.Disk().Stats().Requests
	h.eng.At(h.eng.Now(), func(units.Time) {
		h.client.Send(100, RequestSize, netsim.AffHint{}, &ReadRequest{
			File: 7, Tag: 2, Client: 1, Pieces: strips(4),
		})
	})
	h.eng.RunUntilIdle()
	if got := h.srv.Disk().Stats().Requests; got != diskBefore {
		t.Errorf("re-read touched the disk: %d -> %d requests", diskBefore, got)
	}
	if len(h.rx) != 8 {
		t.Errorf("client frames = %d, want 8", len(h.rx))
	}
}

func TestWritePopulatesPageCache(t *testing.T) {
	// Write a range, then read it back: the read must be served from
	// the buffer cache without a demand disk read.
	h := newHarness(t, true)
	h.eng.At(0, func(units.Time) {
		for i := 0; i < 4; i++ {
			h.client.Send(100, 64*units.KiB, netsim.AffHint{}, &StripWrite{
				File: 7, Tag: 1, Client: 1, GlobalStrip: i,
				ServerOffset: units.Bytes(i) * 64 * units.KiB, Size: 64 * units.KiB,
			})
		}
	})
	h.eng.RunUntilIdle()
	reads := h.srv.Disk().Stats().Requests - h.srv.Disk().Stats().Writes
	if reads != 0 {
		t.Fatalf("writes caused %d demand reads", reads)
	}
	h.rx = nil
	h.eng.At(h.eng.Now(), func(units.Time) {
		h.client.Send(100, RequestSize, netsim.AffHint{}, &ReadRequest{
			File: 7, Tag: 2, Client: 1, Pieces: strips(4),
		})
	})
	h.eng.RunUntilIdle()
	if len(h.rx) != 4 {
		t.Fatalf("read back %d strips", len(h.rx))
	}
	reads = h.srv.Disk().Stats().Requests - h.srv.Disk().Stats().Writes
	if reads != 0 {
		t.Errorf("read-after-write touched the disk %d times", reads)
	}
}

func TestServerDownDropsTraffic(t *testing.T) {
	h := newHarness(t, true)
	h.srv.SetDown(true)
	h.sendRequest(netsim.AffHint{}, strips(2))
	h.eng.RunUntilIdle()
	if len(h.rx) != 0 {
		t.Errorf("crashed server answered %d frames", len(h.rx))
	}
	if h.srv.Stats().Requests != 0 {
		t.Error("crashed server counted a request")
	}
	// Revive and retry: the server must serve again.
	h.srv.SetDown(false)
	if h.srv.Down() {
		t.Error("Down() after revive")
	}
	h.eng.At(h.eng.Now(), func(units.Time) {
		h.client.Send(100, RequestSize, netsim.AffHint{}, &ReadRequest{
			File: 7, Tag: 2, Client: 1, Pieces: strips(2),
		})
	})
	h.eng.RunUntilIdle()
	if len(h.rx) != 2 {
		t.Errorf("revived server returned %d strips, want 2", len(h.rx))
	}
}

func TestServerAccessors(t *testing.T) {
	h := newHarness(t, true)
	if h.srv.Node() != 100 {
		t.Errorf("Node = %d", h.srv.Node())
	}
	if h.srv.NIC() == nil || h.srv.Pages() == nil || h.srv.Disk() == nil {
		t.Error("nil accessors")
	}
	if h.mds.Node() != 50 {
		t.Errorf("MDS node = %d", h.mds.Node())
	}
	if h.srv.Pages().Window() != 256*units.KiB {
		t.Errorf("window = %v", h.srv.Pages().Window())
	}
	h.sendRequest(netsim.AffHint{}, strips(1))
	h.eng.RunUntilIdle()
	if h.srv.CPUBusy() <= 0 {
		t.Error("server CPU never busy")
	}
}
