package toeplitz

import (
	"encoding/binary"
	"testing"
)

// The Microsoft RSS verification vectors (IPv4, with and without TCP
// ports). Input layout: source address, destination address, then for
// the TCP form source port, destination port — all big-endian.
func ipv4Input(srcIP, dstIP [4]byte) []byte {
	return append(append([]byte{}, srcIP[:]...), dstIP[:]...)
}

func tcpInput(srcIP, dstIP [4]byte, srcPort, dstPort uint16) []byte {
	in := ipv4Input(srcIP, dstIP)
	in = binary.BigEndian.AppendUint16(in, srcPort)
	in = binary.BigEndian.AppendUint16(in, dstPort)
	return in
}

func TestMicrosoftVectors(t *testing.T) {
	cases := []struct {
		name     string
		srcIP    [4]byte
		dstIP    [4]byte
		srcPort  uint16
		dstPort  uint16
		wantIPv4 uint32
		wantTCP  uint32
	}{
		{"vector1", [4]byte{66, 9, 149, 187}, [4]byte{161, 142, 100, 80}, 2794, 1766, 0x323e8fc2, 0x51ccc178},
		{"vector2", [4]byte{199, 92, 111, 2}, [4]byte{65, 69, 140, 83}, 14230, 4739, 0xd718262a, 0xc626b0ea},
		{"vector3", [4]byte{24, 19, 198, 95}, [4]byte{12, 22, 207, 184}, 12898, 38024, 0xd2d0a5de, 0x5c2b394a},
		{"vector4", [4]byte{38, 27, 205, 30}, [4]byte{209, 142, 163, 6}, 48228, 2217, 0x82989176, 0xafc7327f},
		{"vector5", [4]byte{153, 39, 163, 191}, [4]byte{202, 188, 127, 2}, 44251, 1303, 0x5d1809c5, 0x10e828a2},
	}
	for _, tc := range cases {
		if got := Hash(DefaultKey[:], ipv4Input(tc.srcIP, tc.dstIP)); got != tc.wantIPv4 {
			t.Errorf("%s ipv4: got %#08x want %#08x", tc.name, got, tc.wantIPv4)
		}
		if got := Hash(DefaultKey[:], tcpInput(tc.srcIP, tc.dstIP, tc.srcPort, tc.dstPort)); got != tc.wantTCP {
			t.Errorf("%s tcp: got %#08x want %#08x", tc.name, got, tc.wantTCP)
		}
	}
}

func TestHashUint64Deterministic(t *testing.T) {
	for v := uint64(0); v < 64; v++ {
		a, b := HashUint64(v), HashUint64(v)
		if a != b {
			t.Fatalf("HashUint64(%d) unstable: %#x vs %#x", v, a, b)
		}
	}
	if HashUint64(1) == HashUint64(2) && HashUint64(2) == HashUint64(3) {
		t.Fatal("HashUint64 collapses adjacent flows — window feed is broken")
	}
}

func TestHashWrapsKey(t *testing.T) {
	// Inputs longer than key-4 bytes must not panic and must keep
	// discriminating (the key wraps).
	long := make([]byte, 2*KeySize)
	for i := range long {
		long[i] = byte(i * 7)
	}
	h1 := Hash(DefaultKey[:], long)
	long[len(long)-1] ^= 1
	if h2 := Hash(DefaultKey[:], long); h1 == h2 {
		t.Fatal("trailing-bit change past the key length did not affect the hash")
	}
}

func TestShortKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short key")
		}
	}()
	Hash(make([]byte, 7), []byte{1})
}
