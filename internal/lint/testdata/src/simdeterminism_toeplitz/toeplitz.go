// Fixture proving the Toeplitz hash package is held to the strict rule
// set: sais/internal/toeplitz is a deterministic package (its hashes
// pick interrupt destinations inside the event loop), so wall clocks,
// goroutines, and map-ordered iteration are findings here just as in
// internal/sim.
package toeplitz

import "time"

type table struct {
	buckets map[uint32]int
}

// reseed is the hazard class that motivated the listing: deriving hash
// state from the host clock would make steering layout-dependent.
func reseed() int64 {
	return time.Now().UnixNano() // want "wall clock"
}

// rebalance shows the strict rules compose: no concurrent bucket
// updates, no map-ordered redistribution.
func rebalance(t table) int {
	go reseed() // want "go statement in deterministic package"
	n := 0
	for range t.buckets { // want "range over map in deterministic package"
		n++
	}
	return n
}

// occupancy is the annotated commutative form, legal as everywhere.
func occupancy(t table) int {
	n := 0
	//lint:maporder pure commutative count
	for range t.buckets {
		n++
	}
	return n
}
