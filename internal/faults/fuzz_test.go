package faults

import (
	"strings"
	"testing"

	"sais/internal/rng"
	"sais/internal/units"
)

// FuzzPlanApply drives the whole plan pipeline — parse, validate, arm,
// run — with arbitrary JSON. The invariants: the injector never panics,
// an armed engine always drains (no fault schedule may wedge the
// simulation), and Finish leaves no open downtime interval.
func FuzzPlanApply(f *testing.F) {
	seed := func(p *Plan) {
		var b strings.Builder
		if err := WritePlan(&b, p); err != nil {
			f.Fatal(err)
		}
		f.Add(b.String())
	}
	seed(&Plan{})
	seed(&Plan{Loss: 0.2, Corrupt: 0.1})
	seed(&Plan{Stalls: []Stall{{Server: -1, Rate: 0.5, Mean: units.Millisecond, Jitter: 100 * units.Microsecond}}})
	seed(&Plan{Timeline: []TimelineEvent{
		{At: units.Millisecond, Kind: KindCrash, Server: 0},
		{At: 2 * units.Millisecond, Kind: KindRevive, Server: 0},
	}})
	seed(&Plan{Timeline: []TimelineEvent{
		{At: 0, Kind: KindDegradeLink, Factor: 3},
		{At: units.Millisecond, Kind: KindStormStart, Client: -1, Period: 100 * units.Microsecond, Payload: 64},
		{At: 2 * units.Millisecond, Kind: KindStormStop},
	}})
	seed(samplePlan())
	f.Add(`{"Loss": -3}`)
	f.Add(`{"Timeline": [{"At": 0, "Kind": "storm-start", "Period": 1}]}`)

	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadPlan(strings.NewReader(src))
		if err != nil {
			return
		}
		// Bound the storm tick count: a syntactically valid plan may
		// schedule an astronomically long storm that would take real
		// minutes of virtual ticking. The cap is a fuzz-harness budget,
		// not a package limit.
		var ticks, stormAt, stormPeriod units.Time
		for _, ev := range p.sortedTimeline() {
			if ev.At > 10*units.Second || ev.At < 0 {
				return
			}
			switch ev.Kind {
			case KindStormStart:
				stormAt, stormPeriod = ev.At, ev.Period
			case KindStormStop:
				if stormPeriod > 0 && ev.At > stormAt {
					ticks += (ev.At - stormAt) / stormPeriod
				}
			}
		}
		if ticks > 100000 {
			return
		}

		r := newRig(t, 2)
		inj, err := p.Arm(r.target(rng.New(1)))
		if err != nil {
			return // invalid against this shape; rejection is the contract
		}
		r.request(0, 0, 1, 2)
		r.request(units.Millisecond, 1, 2, 1)
		r.eng.RunUntilIdle() // must return: armed engines always drain
		st := inj.Finish(r.eng.Now())
		for i, d := range st.Downtime {
			if d < 0 {
				t.Fatalf("negative downtime %v for server %d", d, i)
			}
		}
		if st.StallTime < 0 {
			t.Fatalf("negative stall time %v", st.StallTime)
		}
	})
}
