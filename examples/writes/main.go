// Writes: demonstrate the paper's §I scoping decision — parallel I/O
// *writes* have no interrupt-locality problem, so source-aware
// scheduling neither helps nor hurts them.
//
// On the read path, every returned strip is data some specific core
// will consume, so the interrupt's destination decides whether the
// strip must migrate between caches. On the write path, the data leaves
// from the producing core's cache and the only return traffic is tiny
// acknowledgements; there is nothing to keep local.
//
// Run with:
//
//	go run ./examples/writes
package main

import (
	"fmt"
	"log"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/metrics"
	"sais/internal/units"
)

func run(cfg cluster.Config, p irqsched.PolicyKind) *cluster.Result {
	res, err := cluster.Run(cfg.WithPolicy(p))
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 16
	cfg.BytesPerProc = 16 * units.MiB

	fmt.Printf("%-10s %14s %14s %10s %14s\n",
		"workload", "irqbalance", "sais", "speed-up", "migrated lines")
	for _, mode := range []struct {
		name  string
		write bool
	}{{"read", false}, {"write", true}} {
		c := cfg
		c.WriteWorkload = mode.write
		base := run(c, irqsched.PolicyIrqbalance)
		sais := run(c, irqsched.PolicySourceAware)
		fmt.Printf("%-10s %9.1f MB/s %9.1f MB/s %10s %14d\n",
			mode.name,
			float64(base.Bandwidth)/1e6,
			float64(sais.Bandwidth)/1e6,
			metrics.Percent(metrics.Speedup(float64(sais.Bandwidth), float64(base.Bandwidth))),
			base.RemoteLines)
	}
	fmt.Println("\nReads: irqbalance migrates every strip to the consuming core, so")
	fmt.Println("SAIs wins. Writes: no strip ever returns, both policies handle only")
	fmt.Println("acknowledgements, and the difference collapses to noise — which is")
	fmt.Println("why the paper evaluates parallel reads only.")
}
