// Package runner is the repository's single job-execution engine: a
// deterministic bounded worker pool that every multi-run driver
// (experiments cells, sweep points, cmd fan-out) builds on instead of
// growing its own goroutine plumbing.
//
// Guarantees:
//
//   - Ordered result slots: job i's result lands at index i, so output
//     is byte-identical regardless of completion order or worker count.
//   - Context cancellation and deadlines: queued jobs never start after
//     ctx is done, and each job receives a ctx it should poll.
//   - First-error cancellation: the first job error cancels the shared
//     context, so in-flight jobs can stop early and queued jobs are
//     skipped entirely.
//   - Panic containment: a panicking job becomes an error carrying the
//     panic value and stack instead of crashing the process.
//   - Optional progress callback, serialized across workers.
package runner

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// Options tunes one batch execution.
type Options struct {
	// Workers bounds concurrency. Values below 2 run the batch serially
	// on the calling goroutine; the pool never runs more workers than
	// jobs.
	Workers int
	// OnProgress, if non-nil, is called after each job completes
	// successfully with the number done so far and the batch size.
	// Calls are serialized; done is strictly increasing.
	OnProgress func(done, total int)
}

// PanicError is the error a recovered job panic is converted into.
type PanicError struct {
	Index int    // index of the panicking job
	Value any    // the value passed to panic
	Stack string // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", e.Index, e.Value)
}

// Run executes fn(ctx, i) for every i in [0, n) under the options'
// worker bound and returns the first error (a job error, a recovered
// panic, or ctx.Err() if the context ended first). On the first
// failure the context passed to jobs is cancelled and no queued job
// starts.
func Run(ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, n, opts, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// Map is Run with ordered result slots: the returned slice always has
// length n, with slot i holding job i's result. On error the slice
// still carries every result completed before cancellation (unfinished
// slots hold T's zero value), so interrupted batches can report
// partial output.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	workers := opts.Workers
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	b := &batch[T]{
		ctx:     ctx,
		cancel:  cancel,
		fn:      fn,
		results: results,
		total:   n,
		onDone:  opts.OnProgress,
	}
	if workers < 2 {
		for i := 0; i < n; i++ {
			if !b.runJob(i) {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i, ok := b.next()
					if !ok {
						return
					}
					if !b.runJob(i) {
						return
					}
				}
			}()
		}
		wg.Wait()
	}

	b.mu.Lock()
	err := b.err
	b.mu.Unlock()
	if err == nil {
		err = ctx.Err()
	}
	return results, err
}

// batch is the shared state of one Map invocation.
type batch[T any] struct {
	ctx     context.Context
	cancel  context.CancelFunc
	fn      func(context.Context, int) (T, error)
	results []T
	total   int
	onDone  func(done, total int)

	mu      sync.Mutex
	nextJob int   // next job index to hand out
	done    int   // jobs finished
	err     error // first failure
}

// next hands out the next job index, refusing once the batch is
// cancelled or exhausted.
func (b *batch[T]) next() (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil || b.ctx.Err() != nil || b.nextJob >= b.total {
		return 0, false
	}
	i := b.nextJob
	b.nextJob++
	return i, true
}

// runJob executes one job with panic containment and reports whether
// the batch should continue.
func (b *batch[T]) runJob(i int) bool {
	if b.ctx.Err() != nil {
		b.fail(b.ctx.Err())
		return false
	}
	res, err := b.call(i)
	b.mu.Lock()
	if err != nil {
		if b.err == nil {
			b.err = err
			b.cancel()
		}
		b.mu.Unlock()
		return false
	}
	b.results[i] = res
	b.done++
	done := b.done
	if b.onDone != nil {
		// Called under the lock so callbacks are serialized and done is
		// strictly increasing across workers.
		b.onDone(done, b.total)
	}
	b.mu.Unlock()
	return true
}

// fail records err as the batch error if none is set yet.
func (b *batch[T]) fail(err error) {
	b.mu.Lock()
	if b.err == nil && err != nil {
		b.err = err
		b.cancel()
	}
	b.mu.Unlock()
}

// call invokes the job function, converting a panic into *PanicError.
func (b *batch[T]) call(i int) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: string(debug.Stack())}
		}
	}()
	return b.fn(b.ctx, i)
}
