// Package textplot renders small horizontal bar charts as text, so the
// experiment harness can show each figure's *shape* — the property the
// reproduction is judged on — directly in a terminal, next to the
// numeric table.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named sequence of values sharing the chart's scale.
type Series struct {
	Name   string
	Values []float64
}

// Chart is a grouped horizontal bar chart: one row per label, one bar
// per series.
type Chart struct {
	Title  string
	Labels []string
	Series []Series
	Width  int // bar field width in runes; default 40
}

// Validate checks structural consistency.
func (c *Chart) Validate() error {
	if len(c.Labels) == 0 {
		return fmt.Errorf("textplot: no labels")
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("textplot: no series")
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Labels) {
			return fmt.Errorf("textplot: series %q has %d values for %d labels",
				s.Name, len(s.Values), len(c.Labels))
		}
	}
	return nil
}

// glyphs distinguish up to four series.
var glyphs = []rune{'█', '░', '▒', '▓'}

// Render returns the chart as text. Values are scaled to the global
// maximum; negative values render as empty bars with their number.
func (c *Chart) Render() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	maxVal := 0.0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	labelW := 0
	for _, l := range c.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	nameW := 0
	for _, s := range c.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, label := range c.Labels {
		for si, s := range c.Series {
			prefix := strings.Repeat(" ", labelW)
			if si == 0 {
				prefix = fmt.Sprintf("%-*s", labelW, label)
			}
			v := s.Values[i]
			bar := barOf(v, maxVal, width, glyphs[si%len(glyphs)])
			fmt.Fprintf(&b, "%s  %-*s %s %.4g\n", prefix, nameW, s.Name, bar, v)
		}
	}
	return b.String(), nil
}

// barOf draws one bar of v against scale max.
func barOf(v, max float64, width int, glyph rune) string {
	if max <= 0 || v <= 0 || math.IsNaN(v) {
		return strings.Repeat("·", 1)
	}
	n := int(math.Round(v / max * float64(width)))
	if n < 1 {
		n = 1
	}
	if n > width {
		n = width
	}
	return strings.Repeat(string(glyph), n)
}

// Sparkline renders values as a compact single-line sparkline.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}
