package sim

import "sais/internal/units"

// Server models a resource that serves one job at a time in FIFO order:
// a NIC serializing bytes onto a wire, a disk head, a core executing
// softirq work. Submitting a job while the server is busy queues it.
//
// The service time of each job is fixed at submission, which is the
// right model for store-and-forward hardware; jobs whose cost depends on
// state at dispatch should use SubmitFunc.
type Server struct {
	eng     *Engine
	busyTo  units.Time
	queue   int
	maxQ    int
	busy    units.Time // accumulated busy time
	served  uint64
	waited  units.Time // accumulated queueing delay
	nameTag string
}

// NewServer returns an idle FIFO server bound to eng. name is used only
// for diagnostics.
func NewServer(eng *Engine, name string) *Server {
	return &Server{eng: eng, nameTag: name}
}

// Name returns the diagnostic name.
func (s *Server) Name() string { return s.nameTag }

// Busy reports whether the server is serving or has queued work.
func (s *Server) Busy() bool { return s.eng.Now() < s.busyTo }

// QueueLen returns the number of jobs submitted but not yet started,
// including the one in service.
func (s *Server) QueueLen() int { return s.queue }

// MaxQueue returns the high-water mark of QueueLen.
func (s *Server) MaxQueue() int { return s.maxQ }

// BusyTime returns total time spent serving jobs.
func (s *Server) BusyTime() units.Time { return s.busy }

// WaitTime returns total time jobs spent queued before service began.
func (s *Server) WaitTime() units.Time { return s.waited }

// Served returns the number of completed jobs.
func (s *Server) Served() uint64 { return s.served }

// Submit enqueues a job taking cost time; done (optional) runs when the
// job completes. It returns the completion time.
func (s *Server) Submit(cost units.Time, done Event) units.Time {
	return s.SubmitFunc(func(units.Time) units.Time { return cost }, done)
}

// SubmitFunc enqueues a job whose cost is computed at dispatch time by
// costAt (receiving the dispatch instant). done (optional) runs at
// completion. It returns the completion time assuming costAt is
// deterministic at the time of the call; for state-dependent costs the
// returned value is the scheduled completion of this job given current
// queue contents.
func (s *Server) SubmitFunc(costAt func(units.Time) units.Time, done Event) units.Time {
	now := s.eng.Now()
	start := s.busyTo
	if start < now {
		start = now
	}
	s.queue++
	if s.queue > s.maxQ {
		s.maxQ = s.queue
	}
	cost := costAt(start)
	if cost < 0 {
		cost = 0
	}
	finish := start + cost
	s.busyTo = finish
	s.busy += cost
	s.waited += start - now
	s.eng.At(finish, func(t units.Time) {
		s.queue--
		s.served++
		if done != nil {
			done(t)
		}
	})
	return finish
}

// Drain returns the time at which all currently queued work completes.
func (s *Server) Drain() units.Time {
	if s.busyTo < s.eng.Now() {
		return s.eng.Now()
	}
	return s.busyTo
}
