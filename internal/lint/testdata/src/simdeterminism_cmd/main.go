// Fixture type-checked under a non-deterministic package path
// (sais/cmd/faketool): the wall-clock rule still applies everywhere,
// but goroutines and map iteration are legal outside the simulator
// packages.
package main

import "time"

func main() {
	start := time.Now() // want "wall clock"
	_ = start
	done := make(chan struct{})
	go worker(done) // no finding: concurrency is fine outside the sim
	<-done
	m := map[string]int{"a": 1}
	sum := 0
	for _, v := range m { // no finding: map order only matters in the sim
		sum += v
	}
	_ = sum
}

func worker(done chan struct{}) { close(done) }
