package netsim

import "testing"

// FuzzUnmarshalIPv4 drives the header codec with arbitrary bytes: it
// must never panic, and any accepted header must re-marshal to bytes
// that decode to the same fields.
func FuzzUnmarshalIPv4(f *testing.F) {
	good, _ := (&IPv4Header{TotalLen: 576, TTL: 64, Protocol: 6}).Marshal()
	f.Add(good)
	opts, _ := Hint(7).OptionsBytes()
	withOpts, _ := (&IPv4Header{TotalLen: 576, TTL: 64, Protocol: 6, Options: opts}).Marshal()
	f.Add(withOpts)
	f.Add([]byte{0x45, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, n, err := UnmarshalIPv4(data)
		if err != nil {
			if h != nil || n != 0 {
				t.Fatalf("error with non-zero result: %v %d", h, n)
			}
			return
		}
		out, err := h.Marshal()
		if err != nil {
			t.Fatalf("accepted header does not re-marshal: %v", err)
		}
		h2, _, err := UnmarshalIPv4(out)
		if err != nil {
			t.Fatalf("re-marshaled header rejected: %v", err)
		}
		if h2.TotalLen != h.TotalLen || h2.SrcIP != h.SrcIP || h2.DstIP != h.DstIP {
			t.Fatalf("round trip drift: %+v vs %+v", h, h2)
		}
	})
}

// FuzzParseOptions drives the SrcParser with arbitrary option bytes.
func FuzzParseOptions(f *testing.F) {
	opts, _ := Hint(31).OptionsBytes()
	f.Add(opts)
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := ParseOptions(data)
		if h.Valid && (h.Core < 0 || h.Core >= MaxCores) {
			t.Fatalf("hint out of range: %+v", h)
		}
	})
}
