// Policies: compare all four interrupt-scheduling modes of the paper's
// Figure 1 — round-robin (Linux/Intel default), dedicated core
// (Linux/AMD lowest-priority default), irqbalance, and source-aware
// SAIs — on the same parallel read workload, and show where each one's
// time goes.
//
// Run with:
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/units"
)

func main() {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 32
	cfg.BytesPerProc = 24 * units.MiB

	policies := []irqsched.PolicyKind{
		irqsched.PolicyRoundRobin,
		irqsched.PolicyDedicated,
		irqsched.PolicyIrqbalance,
		irqsched.PolicyFlowHash,
		irqsched.PolicyHybrid,
		irqsched.PolicySocketAware,
		irqsched.PolicySourceAware,
	}

	fmt.Printf("%-12s %10s %10s %10s %12s %12s\n",
		"policy", "MB/s", "miss rate", "CPU %", "migr stall", "mem stall")
	var baseline float64
	for _, p := range policies {
		res, err := cluster.Run(cfg.WithPolicy(p))
		if err != nil {
			log.Fatal(err)
		}
		bw := float64(res.Bandwidth) / 1e6
		if p == irqsched.PolicyRoundRobin {
			baseline = bw
		}
		fmt.Printf("%-12s %10.1f %10.4f %9.2f%% %12v %12v\n",
			res.Policy, bw, res.CacheMissRate, res.CPUUtilization*100,
			res.BusyByCategory["migration"], res.BusyByCategory["memstall"])
	}

	fmt.Println()
	fmt.Println("Round-robin and dedicated ignore the data's destination; irqbalance")
	fmt.Println("spreads by load; flowhash pins each server's stream to one core (RSS);")
	fmt.Println("hybrid follows the hint unless the target core is saturated;")
	fmt.Println("sais-socket honours only the hint's socket; SAIs follows the exact")
	fmt.Println("aff_core_id carried in the IP options, so its migration stall is zero.")
	sais, err := cluster.Run(cfg.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SAIs vs round-robin: %+.2f%%\n", (float64(sais.Bandwidth)/1e6/baseline-1)*100)
}
