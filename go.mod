module sais

go 1.22
