package analysis

import (
	"bytes"
	"encoding/json"
	"go/types"
	"sort"
)

// PackageFacts is the serializable analysis summary one package exports
// for its dependents. It rides the `go vet -vettool` facts channel: the
// driver encodes it into the package's .vetx output file, and the go
// command hands every dependent the .vetx files of its imports
// (vetConfig.PackageVetx), which the driver decodes into Pass.Deps.
//
// All analyzers of a package share one PackageFacts value (Pass.Facts),
// each contributing its own fields, so a fact computed by one analyzer
// (simdeterminism's taint sets) is visible to every dependent package's
// passes regardless of which analyzer consumes it there.
type PackageFacts struct {
	// Functions maps a function's qualified name — types.Func.FullName,
	// e.g. "sais/internal/runner.Map" or
	// "(*sais/internal/sim.Engine).RunBefore" — to its per-function
	// facts.
	Functions map[string]*FunctionFact `json:"functions,omitempty"`

	// HookFields records struct fields annotated //saisvet:nilhook,
	// keyed by "pkgpath.Type.Field". The value is a short description of
	// the declaration site for diagnostics.
	HookFields map[string]string `json:"hookFields,omitempty"`

	// JSONStable lists the qualified names ("pkgpath.Type") of struct
	// types annotated //saisvet:jsonstable, so a dependent package can
	// verify that the serialized structs it nests are themselves under
	// the schema-stability contract.
	JSONStable []string `json:"jsonStable,omitempty"`
}

// FunctionFact is the per-function slice of PackageFacts.
type FunctionFact struct {
	// Taints maps a nondeterminism kind (wallclock, globalrand,
	// goroutine, maporder) to a human-readable provenance chain: how
	// this function transitively reaches the hazard. A suppressed
	// (//lint:-waived) hazard does not taint — the waiver is the audit
	// that the invariant holds there.
	Taints map[string]string `json:"taints,omitempty"`

	// AllocFree reports that the function satisfies the allocation-
	// freedom contract: either it was proven free of heap-allocating
	// constructs by the allocfree analyzer, or it carries the
	// //saisvet:allocfree annotation (in which case any violation is a
	// diagnostic at its own definition, so a clean tree implies the
	// contract holds).
	AllocFree bool `json:"allocFree,omitempty"`

	// AllocWhy describes the first allocation site of a non-AllocFree
	// function, for diagnostics at the caller.
	AllocWhy string `json:"allocWhy,omitempty"`
}

// Fact returns the fact record for fn, creating it if needed.
func (pf *PackageFacts) Fact(name string) *FunctionFact {
	if pf.Functions == nil {
		pf.Functions = make(map[string]*FunctionFact)
	}
	f := pf.Functions[name]
	if f == nil {
		f = &FunctionFact{}
		pf.Functions[name] = f
	}
	return f
}

// factsMagic is the first line of a saisvet facts file. Vetx files
// whose content does not start with it (foreign tools, the pre-facts
// "saisvet-no-facts" marker, stdlib packages) decode as absent facts.
const factsMagic = "saisvet-facts-v1\n"

// EncodeFacts serializes pf for a .vetx facts file. The JSON body is
// deterministic (maps marshal in sorted key order, JSONStable is
// sorted) so the go command's content-based caching is stable.
func EncodeFacts(pf *PackageFacts) []byte {
	if pf == nil {
		pf = &PackageFacts{}
	}
	sort.Strings(pf.JSONStable)
	var buf bytes.Buffer
	buf.WriteString(factsMagic)
	enc := json.NewEncoder(&buf)
	// Encode cannot fail on this closed struct shape; a failure would
	// surface as a decode miss, which dependents treat as no facts.
	_ = enc.Encode(pf)
	return buf.Bytes()
}

// DecodeFacts parses a .vetx facts file. ok is false when the content
// is not a saisvet facts file (wrong magic or malformed body); callers
// treat that as "dependency exports no facts".
func DecodeFacts(data []byte) (*PackageFacts, bool) {
	if !bytes.HasPrefix(data, []byte(factsMagic)) {
		return nil, false
	}
	var pf PackageFacts
	if err := json.Unmarshal(data[len(factsMagic):], &pf); err != nil {
		return nil, false
	}
	return &pf, true
}

// DepFunctionFact looks up the exported fact for fn in the imported
// dependency facts, or — when fn is declared in the package under
// analysis — in the facts exported so far by earlier analyzers of this
// pass.
func (p *Pass) DepFunctionFact(fn *types.Func) (FunctionFact, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return FunctionFact{}, false
	}
	var pf *PackageFacts
	if pkg == p.Pkg {
		pf = p.Facts
	} else if p.Deps != nil {
		pf = p.Deps[pkg.Path()]
	}
	if pf == nil || pf.Functions == nil {
		return FunctionFact{}, false
	}
	f, ok := pf.Functions[fn.FullName()]
	if !ok || f == nil {
		return FunctionFact{}, false
	}
	return *f, true
}

// DepHookField reports whether the qualified field name
// ("pkgpath.Type.Field") is an annotated nil-contract hook in any
// imported package (or in facts exported so far by this pass), and
// returns its declaration description.
func (p *Pass) DepHookField(qualified string) (string, bool) {
	if p.Facts != nil {
		if d, ok := p.Facts.HookFields[qualified]; ok {
			return d, true
		}
	}
	for _, pf := range p.Deps {
		if pf == nil {
			continue
		}
		if d, ok := pf.HookFields[qualified]; ok {
			return d, true
		}
	}
	return "", false
}

// DepJSONStable reports whether the qualified type name ("pkgpath.Type")
// is under the jsonstable contract in imported facts or in facts
// exported so far by this pass.
func (p *Pass) DepJSONStable(qualified string) bool {
	if p.Facts != nil {
		for _, t := range p.Facts.JSONStable {
			if t == qualified {
				return true
			}
		}
	}
	for _, pf := range p.Deps {
		if pf == nil {
			continue
		}
		for _, t := range pf.JSONStable {
			if t == qualified {
				return true
			}
		}
	}
	return false
}
