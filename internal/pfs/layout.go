// Package pfs models the parallel file system (PVFS in the paper's
// prototype): round-robin striping of files over I/O server nodes, a
// metadata server answering layout queries, and I/O servers that read
// strips from a rotational disk and stream them back to the client with
// the SAIs affinity hint echoed into every data packet.
package pfs

import (
	"fmt"

	"sais/internal/netsim"
	"sais/internal/units"
)

// FileID names a file in the file system.
type FileID uint64

// Layout describes how a file is striped: strip i lives on server
// i mod len(Servers), at local offset (i div len(Servers)) * StripSize
// within that server's local portion — PVFS's simple-stripe
// distribution.
type Layout struct {
	StripSize units.Bytes
	Servers   []netsim.NodeID
	// Size is the file's total length; it bounds server-side readahead
	// (a server must not prefetch past its local portion). Zero means
	// unknown, which disables prefetch.
	Size units.Bytes
}

// LocalBytes returns the size of the local portion server serverIdx
// holds: the strips congruent to serverIdx modulo the server count.
func (l Layout) LocalBytes(serverIdx int) units.Bytes {
	if l.Size <= 0 || l.StripSize <= 0 || len(l.Servers) == 0 {
		return 0
	}
	ns := len(l.Servers)
	totalStrips := (l.Size + l.StripSize - 1) / l.StripSize
	full := totalStrips / units.Bytes(ns)
	n := full * l.StripSize
	rem := totalStrips % units.Bytes(ns)
	if units.Bytes(serverIdx) < rem {
		n += l.StripSize
	}
	// The very last strip may be partial; the overcount is at most one
	// strip and only pads readahead, never data returned.
	return n
}

// Validate checks the layout is usable.
func (l Layout) Validate() error {
	if l.StripSize <= 0 {
		return fmt.Errorf("pfs: strip size %d must be positive", l.StripSize)
	}
	if len(l.Servers) == 0 {
		return fmt.Errorf("pfs: layout needs at least one server")
	}
	seen := map[netsim.NodeID]bool{}
	for _, s := range l.Servers {
		if seen[s] {
			return fmt.Errorf("pfs: duplicate server %d in layout", s)
		}
		seen[s] = true
	}
	return nil
}

// Piece is one contiguous byte range of a single strip, located on a
// server's local portion.
type Piece struct {
	GlobalStrip  int         // strip index within the file
	ServerOffset units.Bytes // byte offset within the server's local portion
	Size         units.Bytes
}

// ServerPlan lists the pieces one server must return for a request, in
// ascending local-offset order (which is also global-strip order).
type ServerPlan struct {
	ServerIdx int // index into Layout.Servers
	Server    netsim.NodeID
	Pieces    []Piece
}

// Extents maps a byte range [offset, offset+length) of the file onto
// per-server plans. Arbitrary (unaligned) ranges are supported; the
// evaluation workloads use strip-aligned transfers.
func (l Layout) Extents(offset, length units.Bytes) ([]ServerPlan, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if offset < 0 || length <= 0 {
		return nil, fmt.Errorf("pfs: bad range offset=%d length=%d", offset, length)
	}
	ns := len(l.Servers)
	plans := make([]ServerPlan, ns)
	for i := range plans {
		plans[i] = ServerPlan{ServerIdx: i, Server: l.Servers[i]}
	}
	end := offset + length
	strip := int(offset / l.StripSize)
	for pos := offset; pos < end; {
		stripStart := units.Bytes(strip) * l.StripSize
		stripEnd := stripStart + l.StripSize
		pieceEnd := stripEnd
		if pieceEnd > end {
			pieceEnd = end
		}
		srv := strip % ns
		local := units.Bytes(strip/ns)*l.StripSize + (pos - stripStart)
		plans[srv].Pieces = append(plans[srv].Pieces, Piece{
			GlobalStrip:  strip,
			ServerOffset: local,
			Size:         pieceEnd - pos,
		})
		pos = pieceEnd
		strip++
	}
	// Drop servers with no pieces (short transfers).
	out := plans[:0]
	for _, p := range plans {
		if len(p.Pieces) > 0 {
			out = append(out, p)
		}
	}
	return out, nil
}

// StripCount returns the number of strips a range touches.
func (l Layout) StripCount(offset, length units.Bytes) int {
	if length <= 0 {
		return 0
	}
	first := offset / l.StripSize
	last := (offset + length - 1) / l.StripSize
	return int(last-first) + 1
}
