// Command memsim runs the §VI RAM-disk experiment as a real in-process
// memory benchmark: Si-SAIs (single-pass reader+combiner, shared cache)
// versus Si-Irqbalance (split reader/combiner with a staging copy), per
// application count.
//
// Example:
//
//	memsim -apps 1,2,4,8 -requests 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sais/internal/memsim"
	"sais/internal/metrics"
	"sais/internal/units"
)

func main() {
	var (
		appsList = flag.String("apps", "1,2,4,8", "comma-separated application counts to sweep")
		servers  = flag.Int("servers", 8, "in-memory I/O nodes")
		requests = flag.Int("requests", 64, "requests per application")
		transfer = flag.Int("transfer", 1, "transfer size in MiB")
		repeats  = flag.Int("repeats", 3, "measured repetitions (best-of)")
	)
	flag.Parse()

	fmt.Printf("%-8s %14s %14s %14s %10s\n", "apps", "si-irqbalance", "si-sais", "si-sais-pair", "speed-up")
	for _, tok := range strings.Split(*appsList, ",") {
		apps, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || apps <= 0 {
			fmt.Fprintf(os.Stderr, "memsim: bad app count %q\n", tok)
			os.Exit(1)
		}
		cfg := memsim.Config{
			Servers:   *servers,
			StripSize: 64 * units.KiB,
			Transfer:  units.Bytes(*transfer) * units.MiB,
			Requests:  *requests,
			Apps:      apps,
		}
		// Warm-up pass, then best-of-N to suppress scheduling noise.
		if _, err := memsim.RunSiSAIs(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "memsim:", err)
			os.Exit(1)
		}
		var bestS, bestI, bestP units.Rate
		for r := 0; r < *repeats; r++ {
			s, err := memsim.RunSiSAIs(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memsim:", err)
				os.Exit(1)
			}
			i, err := memsim.RunSiIrqbalance(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memsim:", err)
				os.Exit(1)
			}
			pr, err := memsim.RunSiSAIsPair(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memsim:", err)
				os.Exit(1)
			}
			if s.Checksum != i.Checksum || s.Checksum != pr.Checksum {
				fmt.Fprintln(os.Stderr, "memsim: checksum mismatch between variants")
				os.Exit(1)
			}
			if s.Rate > bestS {
				bestS = s.Rate
			}
			if i.Rate > bestI {
				bestI = i.Rate
			}
			if pr.Rate > bestP {
				bestP = pr.Rate
			}
		}
		fmt.Printf("%-8d %11.1f MB/s %9.1f MB/s %9.1f MB/s %10s\n",
			apps, float64(bestI)/1e6, float64(bestS)/1e6, float64(bestP)/1e6,
			metrics.Percent(metrics.Speedup(float64(bestS), float64(bestI))))
	}
}
