// Ablation: probe the design space around SAIs with the knobs the
// paper's analysis calls out —
//
//  1. the M/P ratio (migration vs processing cost): the paper's whole
//     argument rests on M >> P, so shrink M until balanced scheduling
//     catches up;
//  2. wake-time process migration: the paper's policy (i) vs (ii)
//     distinction — how much does SAIs lose when the process no longer
//     sits where its hint pointed?
//  3. interrupt coalescing: batch interrupts and see that source-aware
//     placement, not interrupt count, carries the benefit.
//
// Run with:
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"log"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/metrics"
	"sais/internal/units"
)

func speedup(cfg cluster.Config) float64 {
	base, err := cluster.Run(cfg.WithPolicy(irqsched.PolicyIrqbalance))
	if err != nil {
		log.Fatal(err)
	}
	sais, err := cluster.Run(cfg.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		log.Fatal(err)
	}
	return metrics.Speedup(float64(sais.Bandwidth), float64(base.Bandwidth))
}

func main() {
	base := cluster.DefaultConfig()
	base.Servers = 32
	base.BytesPerProc = 16 * units.MiB

	fmt.Println("1) M/P ratio sweep (remote-line stall vs softirq processing)")
	fmt.Printf("   %-24s %10s\n", "remote line cost", "speed-up")
	for _, remote := range []units.Time{10, 50, 110, 200, 400} {
		cfg := base
		cfg.Costs.RemoteLine = remote
		fmt.Printf("   %-24v %10s\n", remote, metrics.Percent(speedup(cfg)))
	}
	fmt.Println("   With cheap migration (M ≈ P) the policies tie — the paper's")
	fmt.Println("   M >> P assumption is what creates the win.")

	fmt.Println("\n2) wake-time process migration (policy (i) vs (ii))")
	fmt.Printf("   %-24s %10s\n", "P(migrate on wake)", "speed-up")
	for _, p := range []float64{0, 0.05, 0.25, 1} {
		cfg := base
		cfg.MigrateDuringBlock = p
		fmt.Printf("   %-24.2f %10s\n", p, metrics.Percent(speedup(cfg)))
	}
	fmt.Println("   Migration during an I/O block is rare in practice, which is why")
	fmt.Println("   the paper implements policy (i) and calls the difference trivial.")

	fmt.Println("\n3) interrupt coalescing (frames per interrupt)")
	fmt.Printf("   %-24s %10s\n", "coalesce frames", "speed-up")
	for _, frames := range []int{1, 4, 16} {
		cfg := base
		cfg.CoalesceFrames = frames
		cfg.CoalesceDelay = 100 * units.Microsecond
		fmt.Printf("   %-24d %10s\n", frames, metrics.Percent(speedup(cfg)))
	}
	fmt.Println("   Coalescing cuts interrupt count, not data placement; the SAIs")
	fmt.Println("   gain survives because it comes from cache locality.")
}
