// Fixture for the seedderive analyzer, type-checked as sais/cluster:
// the package whose seed fan-out PR 4 had to fix. Derive stands in for
// rng.Derive — the analyzer does not care where the helper lives, only
// that seeds never meet raw arithmetic.
package cluster

// Config mirrors the real cluster.Config seed field.
type Config struct {
	Seed uint64
}

// Derive is the fixture's stand-in for rng.Derive. Parameter names
// deliberately avoid "seed" so the finalizer body stays clean here;
// the real implementation lives in the exempt rng package.
func Derive(root, stream uint64) uint64 {
	x := root + (stream+1)*0x9e3779b97f4a7c15
	return x ^ (x >> 31)
}

// badFanOut is the exact bug class from git history: per-client streams
// built as cfg.Seed+i, correlated across consecutive root seeds.
func badFanOut(cfg Config, clients int) []uint64 {
	out := make([]uint64, 0, clients)
	for i := 0; i < clients; i++ {
		out = append(out, cfg.Seed+uint64(i)) // want "arithmetic on seed value Seed"
	}
	return out
}

func moreBadShapes(cfg Config, i uint64) uint64 {
	a := uint64(cfg.Seed) * 31 // want "arithmetic on seed value Seed"
	b := cfg.Seed ^ i          // want "arithmetic on seed value Seed"
	seed := cfg.Seed
	seed++ // want `\+\+ on seed value seed`
	var childSeed uint64
	childSeed += i // want "compound assignment mutates seed value childSeed"
	_ = seed
	_ = childSeed
	return a ^ b
}

// goodFanOut routes every child stream through Derive.
func goodFanOut(cfg Config, clients int) []uint64 {
	out := make([]uint64, 0, clients)
	for i := 0; i < clients; i++ {
		out = append(out, Derive(cfg.Seed, uint64(i)))
	}
	return out
}

// streamArithmetic shows arithmetic on the stream index is fine — only
// the seed itself is protected.
func streamArithmetic(cfg Config, i uint64) uint64 {
	return Derive(cfg.Seed, 2*i+1)
}

// reviewed shows the escape hatch.
func reviewed(cfg Config) uint64 {
	//lint:seedarith reviewed: display-only checksum, never seeds a stream
	return cfg.Seed % 1000
}
