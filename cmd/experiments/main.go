// Command experiments regenerates the paper's evaluation: every table
// and figure (5-12, 14, and the §V.C 1-Gigabit result) as a text table
// of baseline vs SAIs with the relative change per cell.
//
// Usage:
//
//	experiments            # run everything, in paper order
//	experiments -fig 5     # one figure ("5", "figure5", "5-1g", "12", ...)
//	experiments -list      # list experiment ids
//	experiments -seeds 5   # more repetitions per cell
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sais/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "", "run a single figure by id or number")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		seeds = flag.Int("seeds", 0, "override repetitions per cell (default: per-experiment, ≥3)")
		plot  = flag.Bool("plot", false, "render each figure as an ASCII bar chart too")
		csv   = flag.Bool("csv", false, "emit CSV rows instead of tables")
		html  = flag.String("html", "", "also write a self-contained HTML report to this file")
		par   = flag.Int("parallel", 1, "run up to N cells of each experiment concurrently")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var toRun []experiments.Experiment
	if *fig != "" {
		id := *fig
		// Bare numbers ("5", "12") are shorthand for figure ids; named
		// experiments (writes, hybrid, ...) pass through.
		if _, err := experiments.ByID(id); err != nil && !strings.HasPrefix(id, "figure") {
			id = "figure" + id
		}
		e, err := experiments.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		toRun = []experiments.Experiment{e}
	} else {
		toRun = experiments.All()
	}

	var reports []*experiments.Report
	for _, e := range toRun {
		if *seeds > 0 {
			e.Seeds = *seeds
		}
		e.Parallel = *par
		start := time.Now()
		rep, err := e.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		reports = append(reports, rep)
		if *csv {
			fmt.Print(rep.CSV())
			continue
		}
		fmt.Println(rep.Table())
		if *plot {
			chart, err := rep.Chart()
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Println(chart)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *html != "" {
		f, err := os.Create(*html)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteHTML(f, reports); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("HTML report written to %s\n", *html)
	}
}
