package irqsched

import (
	"sais/internal/apic"
	"sais/internal/toeplitz"
	"sais/internal/units"
)

// ATFC is the transport-friendly steering from the Flow Director
// reordering literature (Wu et al.): like Flow Director it learns a
// flow's core from the transmit path, but an affinity *change* for a
// flow with packets potentially in flight is staged, not applied —
// the staged core is promoted only when the flow goes idle (no
// outstanding receives). An in-flight stream therefore never splits
// across cores, which is what keeps its ReorderedFrames at zero; the
// price is that steering lags one flow-quiescence behind the
// application's migration.
type ATFC struct {
	active map[uint64]int
	staged map[uint64]int

	immediate uint64 // first-sighting bindings applied at once
	stagedCnt uint64 // affinity changes parked for quiescence
	promoted  uint64 // staged changes applied at flow idle
	hits      uint64
	misses    uint64
}

// NewATFC builds the policy.
func NewATFC() *ATFC {
	return &ATFC{
		active: make(map[uint64]int),
		staged: make(map[uint64]int),
	}
}

// Name implements apic.Router.
func (a *ATFC) Name() string { return "atfc" }

// NoteTransmit implements TxObserver. A flow's first binding applies
// immediately (nothing can be in flight yet); a change of binding is
// staged until NoteFlowIdle; a transmit from the already-active core
// cancels any pending change.
func (a *ATFC) NoteTransmit(flow uint64, core int) {
	cur, ok := a.active[flow]
	switch {
	case !ok:
		a.active[flow] = core
		a.immediate++
	case cur != core:
		a.staged[flow] = core
		a.stagedCnt++
	default:
		delete(a.staged, flow)
	}
}

// NoteFlowIdle implements FlowIdleObserver: promote the staged binding
// now that no packets of the flow are outstanding.
func (a *ATFC) NoteFlowIdle(flow uint64) {
	if core, ok := a.staged[flow]; ok {
		a.active[flow] = core
		delete(a.staged, flow)
		a.promoted++
	}
}

// Route implements apic.Router.
func (a *ATFC) Route(_ apic.Vector, _ int, flow uint64, allowed []int, _ units.Time) int {
	if core, ok := a.active[flow]; ok {
		for _, c := range allowed {
			if c == core {
				a.hits++
				return c
			}
		}
	}
	a.misses++
	h := toeplitz.HashUint64(flow)
	return allowed[int(h)%len(allowed)]
}

// Counters implements CounterReporter.
func (a *ATFC) Counters() map[string]uint64 {
	return map[string]uint64{
		"atfc_immediate": a.immediate,
		"atfc_staged":    a.stagedCnt,
		"atfc_promoted":  a.promoted,
		"atfc_hits":      a.hits,
		"atfc_misses":    a.misses,
	}
}
