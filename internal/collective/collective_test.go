package collective

import (
	"testing"

	"sais/internal/client"
	"sais/internal/irqsched"
	"sais/internal/netsim"
	"sais/internal/pfs"
	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/units"
)

// rig builds one client with ns servers and an MDS.
func rig(t *testing.T, policy irqsched.PolicyKind, ns int) (*sim.Engine, *client.Node) {
	t.Helper()
	eng := sim.NewEngine()
	fab := netsim.NewFabric(eng, 10*units.Microsecond)
	ccfg := client.DefaultConfig(1, 3*units.Gigabit, policy)
	ccfg.MDS = 50
	node := client.MustNew(eng, fab, ccfg)
	servers := make([]netsim.NodeID, ns)
	rnd := rng.New(5)
	for i := range servers {
		servers[i] = netsim.NodeID(100 + i)
		scfg := pfs.DefaultServerConfig(units.Gigabit)
		scfg.EchoHints = true
		scfg.Disk.RotationPeriod = 0
		scfg.Disk.MediaRate = units.Rate(400 * units.MBps)
		pfs.NewServer(eng, fab, servers[i], scfg, rnd)
	}
	layout := pfs.Layout{StripSize: 64 * units.KiB, Servers: servers}
	pfs.NewMetadataServer(eng, fab, 50, pfs.DefaultMetadataConfig(units.Gigabit),
		func(pfs.FileID) pfs.Layout { return layout })
	return eng, node
}

func TestCollectiveReadCompletes(t *testing.T) {
	eng, node := rig(t, irqsched.PolicySourceAware, 4)
	procs := []*client.Proc{
		node.NewProc(0, 0), node.NewProc(1, 1),
		node.NewProc(2, 2), node.NewProc(3, 3),
	}
	var got *Result
	eng.At(0, func(units.Time) {
		err := Read(eng, node, procs, 1, 0, units.MiB, Config{Aggregators: 2}, func(r *Result) { got = r })
		if err != nil {
			t.Fatal(err)
		}
	})
	eng.RunUntilIdle()
	if got == nil {
		t.Fatal("collective read never completed")
	}
	if got.Bytes != 4*units.MiB {
		t.Errorf("bytes = %v, want 4MiB", got.Bytes)
	}
	if got.Domains != 2 {
		t.Errorf("domains = %d, want 2", got.Domains)
	}
	// Aggregators are procs 0 and 1. Proc 0's MiB sits in aggregator
	// 0's domain (stays); procs 1-3 each pull their MiB from an
	// aggregator — 3 MiB of redistribution.
	if got.Redistributed != 3*units.MiB {
		t.Errorf("redistributed = %v, want 3MiB", got.Redistributed)
	}
	if got.Finished <= 0 {
		t.Error("no finish time")
	}
	// PFS served the full range exactly once.
	if node.Stats().BytesRead != 4*units.MiB {
		t.Errorf("PFS bytes = %v", node.Stats().BytesRead)
	}
}

func TestSingleAggregatorMovesAlmostEverything(t *testing.T) {
	eng, node := rig(t, irqsched.PolicySourceAware, 4)
	procs := []*client.Proc{node.NewProc(0, 0), node.NewProc(1, 1), node.NewProc(2, 2)}
	var got *Result
	eng.At(0, func(units.Time) {
		if err := Read(eng, node, procs, 1, 0, 512*units.KiB, Config{Aggregators: 1}, func(r *Result) { got = r }); err != nil {
			t.Fatal(err)
		}
	})
	eng.RunUntilIdle()
	if got == nil {
		t.Fatal("never completed")
	}
	// Procs 1 and 2 pull their halves from the single aggregator.
	if got.Redistributed != units.MiB {
		t.Errorf("redistributed = %v, want 1MiB", got.Redistributed)
	}
	// The node's cache books must show the cache-to-cache traffic.
	if node.Caches().Aggregate().RemoteTransfers == 0 {
		t.Error("no remote transfers recorded for the scatter")
	}
}

func TestAggregatorsCappedAtProcs(t *testing.T) {
	eng, node := rig(t, irqsched.PolicySourceAware, 2)
	procs := []*client.Proc{node.NewProc(0, 0)}
	var got *Result
	eng.At(0, func(units.Time) {
		if err := Read(eng, node, procs, 1, 0, 256*units.KiB, Config{Aggregators: 8}, func(r *Result) { got = r }); err != nil {
			t.Fatal(err)
		}
	})
	eng.RunUntilIdle()
	if got == nil || got.Domains != 1 {
		t.Fatalf("result = %+v", got)
	}
	if got.Redistributed != 0 {
		t.Errorf("self-read redistributed %v", got.Redistributed)
	}
}

func TestValidation(t *testing.T) {
	eng, node := rig(t, irqsched.PolicySourceAware, 2)
	p := []*client.Proc{node.NewProc(0, 0)}
	if err := Read(eng, node, p, 1, 0, units.MiB, Config{}, nil); err == nil {
		t.Error("zero aggregators accepted")
	}
	if err := Read(eng, node, nil, 1, 0, units.MiB, Config{Aggregators: 1}, nil); err == nil {
		t.Error("empty procs accepted")
	}
	if err := Read(eng, node, p, 1, 0, 0, Config{Aggregators: 1}, nil); err == nil {
		t.Error("zero bytes accepted")
	}
}

func TestCollectiveVersusIndependentUnderBalancedPolicy(t *testing.T) {
	// Under irqbalance, collective I/O concentrates the strips on the
	// aggregators: total migrated volume should not exceed independent
	// reads' (every strip migrates there too) and the requests are
	// fewer and larger. This is a smoke comparison, not a benchmark.
	runCollective := func() units.Time {
		eng, node := rig(t, irqsched.PolicyIrqbalance, 8)
		procs := make([]*client.Proc, 4)
		for i := range procs {
			procs[i] = node.NewProc(i, i)
		}
		eng.At(0, func(units.Time) {
			if err := Read(eng, node, procs, 1, 0, units.MiB, Config{Aggregators: 2}, func(*Result) {}); err != nil {
				t.Fatal(err)
			}
		})
		return eng.RunUntilIdle()
	}
	runIndependent := func() units.Time {
		eng, node := rig(t, irqsched.PolicyIrqbalance, 8)
		for i := 0; i < 4; i++ {
			p := node.NewProc(i, i)
			i := i
			eng.At(0, func(units.Time) {
				p.Read(1, units.Bytes(i)*units.MiB, units.MiB, nil)
			})
		}
		return eng.RunUntilIdle()
	}
	tc, ti := runCollective(), runIndependent()
	if tc <= 0 || ti <= 0 {
		t.Fatal("runs did not progress")
	}
	// Both must terminate in the same order of magnitude; the exact
	// winner depends on the domain/transfer geometry.
	if tc > 10*ti || ti > 10*tc {
		t.Errorf("collective %v vs independent %v implausibly far apart", tc, ti)
	}
}

func TestBaseOffsetAdvances(t *testing.T) {
	eng, node := rig(t, irqsched.PolicySourceAware, 4)
	procs := []*client.Proc{node.NewProc(0, 0), node.NewProc(1, 1)}
	var first, second *Result
	eng.At(0, func(units.Time) {
		err := Read(eng, node, procs, 1, 0, 512*units.KiB, Config{Aggregators: 2}, func(r *Result) {
			first = r
			err := Read(eng, node, procs, 1, units.MiB, 512*units.KiB, Config{Aggregators: 2}, func(r2 *Result) {
				second = r2
			})
			if err != nil {
				t.Error(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	eng.RunUntilIdle()
	if first == nil || second == nil {
		t.Fatal("rounds did not complete")
	}
	if node.Stats().BytesRead != 2*units.MiB {
		t.Errorf("total read = %v, want 2MiB", node.Stats().BytesRead)
	}
	if err := Read(eng, node, procs, 1, -1, units.KiB, Config{Aggregators: 1}, nil); err == nil {
		t.Error("negative base accepted")
	}
}
