package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"sais/internal/lint/analysis"
)

// HookContract guards the nil-contract hook fields: optional
// function-valued fields (netsim.NIC's service-scale hook, pfs.Server's
// CPU-scale hook, cpu.Core's span hook, cluster.Config.Progress) whose
// nil state means "feature off" and whose classic code path must stay
// byte-identical. Annotate the field //saisvet:nilhook; every call
// through it must then be dominated by a nil guard:
//
//	if c.hook != nil { c.hook(...) }          // direct guard
//	if c.hook == nil { return }               // early return
//	... c.hook(...)                           // guarded from here on
//
// Both forms compose with && chains and with closures declared inside
// the guarded region (the SubmitFunc pattern). The annotation travels
// as a fact, so a dependent package calling an exported hook field
// unguarded is flagged too. An unguarded call through a nil hook is a
// panic on the classic path — precisely the configuration every
// regression gate runs. Suppress a reviewed site with //lint:nilhook.
var HookContract = &analysis.Analyzer{
	Name: "hookcontract",
	Doc: "calls through //saisvet:nilhook fields must be nil-guarded " +
		"(suppress: //lint:nilhook)",
	Directives: []string{"nilhook"},
	Run:        runHookContract,
}

func runHookContract(pass *analysis.Pass) (any, error) {
	dirs := pass.Directives()

	// Collect this package's annotated hook fields and export them.
	hooks := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					continue
				}
				for _, field := range st.Fields.List {
					if _, ok := annotation([]*ast.CommentGroup{field.Doc, field.Comment}, "nilhook"); !ok {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							hooks[v] = true
							if pass.Facts.HookFields == nil {
								pass.Facts.HookFields = make(map[string]string)
							}
							pass.Facts.HookFields[qualifiedField(tn, name.Name)] = "nilhook"
						}
					}
				}
			}
		}
	}

	// isHookField resolves a selector to an annotated hook field var,
	// locally or through imported facts.
	isHookField := func(sel *ast.SelectorExpr) (*types.Var, bool) {
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return nil, false
		}
		v, _ := selection.Obj().(*types.Var)
		if v == nil {
			return nil, false
		}
		if hooks[v] {
			return v, true
		}
		owner := namedOwner(selection.Recv())
		if owner == nil {
			return nil, false
		}
		if kind, ok := pass.DepHookField(qualifiedField(owner.Obj(), v.Name())); ok && kind == "nilhook" {
			return v, true
		}
		return nil, false
	}

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}

			// guarded holds [start, end) position ranges within which a
			// given hook field is known non-nil: the body of an
			// `if x.hook != nil` (possibly under &&), and the remainder
			// of a block after an `if x.hook == nil { ...terminating }`.
			type guardRange struct {
				field      *types.Var
				start, end token.Pos
			}
			var guarded []guardRange

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.IfStmt:
					for _, v := range nilCheckedHooks(pass, isHookField, n.Cond, token.NEQ) {
						guarded = append(guarded, guardRange{field: v, start: n.Body.Pos(), end: n.Body.End()})
					}
				case *ast.BlockStmt:
					for _, stmt := range n.List {
						ifs, ok := stmt.(*ast.IfStmt)
						if !ok || ifs.Else != nil || !terminatesFlow(ifs.Body) {
							continue
						}
						for _, v := range nilCheckedHooks(pass, isHookField, ifs.Cond, token.EQL) {
							guarded = append(guarded, guardRange{field: v, start: ifs.End(), end: n.End()})
						}
					}
				}
				return true
			})

			isGuarded := func(v *types.Var, pos token.Pos) bool {
				for _, g := range guarded {
					if g.field == v && g.start <= pos && pos < g.end {
						return true
					}
				}
				return false
			}

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v, ok := isHookField(sel)
				if !ok || isGuarded(v, call.Pos()) {
					return true
				}
				if !dirs.Suppressed(call.Pos(), "nilhook") {
					pass.Reportf(call.Pos(), "call through nil-able hook %s without a dominating nil guard: a nil hook means the feature is off, and this call panics on the classic path; wrap it in `if %s != nil { ... }` (suppress a reviewed site with //lint:nilhook)",
						types.ExprString(sel), types.ExprString(sel))
				}
				return true
			})
		}
	}
	return nil, nil
}

// nilCheckedHooks extracts the hook fields compared against nil with
// operator op in cond. For op == NEQ it looks through && conjunctions
// (every conjunct must hold for the body to run). For op == EQL only a
// bare `x.hook == nil` qualifies: `a == nil || b` can enter the
// terminating body with a non-nil, so a disjunction proves nothing
// about the code after it.
func nilCheckedHooks(pass *analysis.Pass, isHookField func(*ast.SelectorExpr) (*types.Var, bool), cond ast.Expr, op token.Token) []*types.Var {
	var out []*types.Var
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			if e.Op == token.LAND && op == token.NEQ {
				visit(e.X)
				visit(e.Y)
				return
			}
			if e.Op != op {
				return
			}
			for _, pair := range [2][2]ast.Expr{{e.X, e.Y}, {e.Y, e.X}} {
				sel, ok := ast.Unparen(pair[0]).(*ast.SelectorExpr)
				if !ok || !isNilIdent(pass, pair[1]) {
					continue
				}
				if v, ok := isHookField(sel); ok {
					out = append(out, v)
				}
			}
		}
	}
	visit(cond)
	return out
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// terminatesFlow reports whether a block's last statement unconditionally
// leaves the enclosing scope: return, panic, continue, break, or goto.
func terminatesFlow(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
