// Package shard composes several sim.Engines into one conservatively
// synchronized parallel simulation under a single logical clock.
//
// The executor runs barrier-synchronous rounds. Each round it (1)
// drains every shard's mailbox — cross-shard events accumulated last
// round, sorted by their delivery key and injected with
// sim.ScheduleRemote so they land exactly where a shared engine would
// have put them; (2) computes the global horizon, the minimum next
// event time across all shards plus the lookahead (the fabric's
// minimum cross-shard latency); and (3) lets every shard execute its
// events strictly below the horizon, in parallel. Any event below the
// horizon can only be affected by cross-shard messages sent before
// (horizon - lookahead), and those were all delivered in step (1), so
// the rounds are race-free by construction and the composed run is
// bit-identical to the single-engine run for any shard or worker
// count. The determinism argument is spelled out in DESIGN.md §12.
//
// The package sits outside internal/sim's no-goroutine lint boundary
// on purpose: worker goroutines appear only here, between barriers,
// and each engine is touched by exactly one goroutine per round.
//
//lint:package goroutine barrier-synchronized workers; one engine per goroutine per round (DESIGN.md §12)
package shard

import (
	"fmt"
	"sort"
	"sync"

	"sais/internal/sim"
	"sais/internal/units"
)

// Msg is one cross-shard event: a callback to run on the destination
// shard at At, carrying the provenance key that makes same-instant
// delivery order layout-invariant. Ties are broken by the compound
// key (At, SentAt, Origin, Seq) — deterministic sequence numbers, not
// arrival order.
type Msg struct {
	At     units.Time // delivery time on the destination shard
	SentAt units.Time // when the source shard scheduled it
	Origin uint64     // source tie-break class (e.g. netsim FrameKey origin); nonzero
	Seq    uint64     // per-origin sequence at the source
	Fn     sim.Event
}

// msgLess is the canonical mailbox order, mirroring the engine's
// compound event key.
func msgLess(a, b Msg) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.SentAt != b.SentAt {
		return a.SentAt < b.SentAt
	}
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	return a.Seq < b.Seq
}

// Engine drives a set of sim.Engines as one simulation. Construct
// with New, wire cross-shard channels to Post, then call Run once.
type Engine struct {
	engs      []*sim.Engine
	lookahead units.Time
	workers   int

	// out[src][dst] buffers messages posted by shard src for shard dst
	// during the current round. Each row is written only by the worker
	// executing shard src, so no locking is needed; the coordinator
	// moves rows into inbox at the barrier.
	//saisvet:mailbox
	out [][][]Msg
	// inbox[dst] holds the messages collected for shard dst at the last
	// barrier, drained into its engine at the top of the next round.
	//saisvet:mailbox
	inbox [][]Msg

	stop    func() bool
	stopped bool
	rounds  uint64
	posted  uint64
}

// New builds an executor over engs. lookahead is the minimum
// simulated latency of any cross-shard message (the fabric switch
// latency); it must be positive when more than one engine is
// composed, because a zero lookahead admits no safe horizon. workers
// is clamped to [1, len(engs)].
func New(engs []*sim.Engine, lookahead units.Time, workers int) *Engine {
	if len(engs) == 0 {
		panic("shard: no engines")
	}
	if lookahead <= 0 && len(engs) > 1 {
		panic("shard: conservative execution needs a positive lookahead")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(engs) {
		workers = len(engs)
	}
	s := &Engine{
		engs:      engs,
		lookahead: lookahead,
		workers:   workers,
		out:       make([][][]Msg, len(engs)),
		inbox:     make([][]Msg, len(engs)),
	}
	for i := range s.out {
		//lint:shardsafety constructor wiring: the engine has not been published and no worker exists yet
		s.out[i] = make([][]Msg, len(engs))
	}
	return s
}

// Post enqueues a cross-shard message from shard src to shard dst.
// It must be called from an event executing on shard src during a
// round (the fabric's remote hook). The delivery time must respect
// the lookahead — the executor's safety rests on it.
//saisvet:allocfree
func (s *Engine) Post(src, dst int, m Msg) {
	if m.Origin == 0 {
		panic("shard: message without an origin")
	}
	if m.At < m.SentAt+s.lookahead {
		panic(fmt.Sprintf("shard: message delivery %v under lookahead (sent %v + %v)",
			m.At, m.SentAt, s.lookahead))
	}
	s.out[src][dst] = append(s.out[src][dst], m)
}

// SetStop installs a stop condition polled between rounds — the
// sharded counterpart of sim.Engine.SetStop, typically closing over a
// context and a progress callback. A nil cond removes it.
func (s *Engine) SetStop(cond func() bool) { s.stop = cond }

// Stopped reports whether the last Run returned because the stop
// condition fired rather than because every shard drained.
func (s *Engine) Stopped() bool { return s.stopped }

// Fired returns the total number of events executed across shards.
func (s *Engine) Fired() uint64 {
	var n uint64
	for _, e := range s.engs {
		n += e.Fired()
	}
	return n
}

// Live returns the number of live events queued across shards plus
// cross-shard messages awaiting delivery.
func (s *Engine) Live() int {
	n := 0
	for _, e := range s.engs {
		n += e.Live()
	}
	for _, box := range s.inbox {
		n += len(box)
	}
	return n
}

// Now returns the global safe clock: the minimum shard clock. Every
// event at or before this time has fired on every shard.
func (s *Engine) Now() units.Time {
	if len(s.engs) == 0 {
		return 0
	}
	min := s.engs[0].Now()
	for _, e := range s.engs[1:] {
		if t := e.Now(); t < min {
			min = t
		}
	}
	return min
}

// MaxNow returns the latest shard clock — after a full drain, the
// run's makespan.
func (s *Engine) MaxNow() units.Time {
	var max units.Time
	for _, e := range s.engs {
		if t := e.Now(); t > max {
			max = t
		}
	}
	return max
}

// Rounds returns the number of synchronization rounds executed.
func (s *Engine) Rounds() uint64 { return s.rounds }

// Posted returns the number of cross-shard messages carried.
func (s *Engine) Posted() uint64 { return s.posted }

// Run executes rounds until every shard is idle and no messages are
// in flight, or the stop condition fires. It returns the makespan
// (latest shard clock).
//saisvet:allocfree
func (s *Engine) Run() units.Time {
	s.stopped = false
	for {
		s.deliver()
		//lint:alloc caller-supplied stop condition, polled once per round
		if s.stop != nil && s.stop() {
			s.stopped = true
			return s.MaxNow()
		}
		horizon, ok := s.horizon()
		if !ok {
			return s.MaxNow()
		}
		s.round(horizon)
		s.collect()
		s.rounds++
	}
}

// deliver drains each shard's mailbox into its engine in canonical
// order. Injection order only matters for the engine's local seq,
// which sits last in the compound key; sorting makes delivery
// independent of which source shard posted first.
//saisvet:allocfree
func (s *Engine) deliver() {
	for dst, box := range s.inbox {
		if len(box) == 0 {
			continue
		}
		//lint:alloc per-round mailbox sort: one closure per non-empty box, amortized over the round's events
		sort.Slice(box, func(i, j int) bool { return msgLess(box[i], box[j]) })
		eng := s.engs[dst]
		for i := range box {
			m := box[i]
			eng.ScheduleRemote(m.At, m.SentAt, m.Origin, m.Fn)
			box[i] = Msg{}
		}
		s.posted += uint64(len(box))
		s.inbox[dst] = box[:0]
	}
}

// horizon returns the exclusive event-time bound of the next round:
// the earliest pending event anywhere plus the lookahead. ok is false
// when every shard is idle (mailboxes are empty here — deliver ran).
//saisvet:allocfree
func (s *Engine) horizon() (units.Time, bool) {
	var tmin units.Time
	found := false
	for _, e := range s.engs {
		if at, ok := e.PeekNextEventTime(); ok && (!found || at < tmin) {
			tmin, found = at, true
		}
	}
	if !found {
		return 0, false
	}
	h := tmin + s.lookahead
	if len(s.engs) == 1 {
		// A lone shard needs no conservative bound: run to idle-or-stop
		// in one round.
		h = units.Forever
	}
	if h < tmin { // overflow clamp
		h = units.Forever
	}
	return h, true
}

// round runs every shard up to (but excluding) horizon. With one
// worker the shards run inline; otherwise shard i is executed by
// worker i%workers, each engine touched by exactly one goroutine, and
// the WaitGroup barrier publishes all effects before collect reads
// the out buffers.
//saisvet:allocfree
func (s *Engine) round(horizon units.Time) {
	if s.workers == 1 {
		for _, e := range s.engs {
			e.RunBefore(horizon)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		w := w
		wg.Add(1)
		//lint:alloc one worker goroutine per round stripe, amortized over every event below the horizon
		go func() {
			defer wg.Done()
			for i := w; i < len(s.engs); i += s.workers {
				s.engs[i].RunBefore(horizon)
			}
		}()
	}
	wg.Wait()
}

// collect moves every out-buffer row into the destination mailboxes.
// Append order (by source shard) is irrelevant: deliver sorts.
//saisvet:allocfree
func (s *Engine) collect() {
	for src := range s.out {
		for dst, row := range s.out[src] {
			if len(row) == 0 {
				continue
			}
			s.inbox[dst] = append(s.inbox[dst], row...)
			for i := range row {
				row[i] = Msg{}
			}
			s.out[src][dst] = row[:0]
		}
	}
}
