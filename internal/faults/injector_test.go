package faults

import (
	"testing"

	"sais/internal/netsim"
	"sais/internal/pfs"
	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/units"
)

// rig is a minimal injectable cluster: one client NIC (node 1), a row
// of I/O servers from node 100, and node 200 free for the storm ghost.
type rig struct {
	eng    *sim.Engine
	fab    *netsim.Fabric
	client *netsim.NIC
	srvs   []*pfs.Server
	rx     []*netsim.Frame
}

func newRig(t testing.TB, servers int) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine()}
	r.fab = netsim.NewFabric(r.eng, 10*units.Microsecond)
	r.client = netsim.NewNIC(r.eng, 1, netsim.DefaultNICConfig(3*units.Gigabit))
	r.fab.Attach(r.client)
	r.client.SetInterruptHandler(func(units.Time) {
		r.rx = append(r.rx, r.client.Drain()...)
	})
	for i := 0; i < servers; i++ {
		scfg := pfs.DefaultServerConfig(units.Gigabit)
		scfg.Disk.RotationPeriod = 0 // deterministic service times
		r.srvs = append(r.srvs, pfs.NewServer(r.eng, r.fab, netsim.NodeID(100+i), scfg, rng.New(1)))
	}
	return r
}

func (r *rig) target(rand *rng.Source) Target {
	return Target{
		Engine:    r.eng,
		Fabric:    r.fab,
		Servers:   r.srvs,
		Clients:   []netsim.NodeID{1},
		StormNode: 200,
		Rand:      rand,
	}
}

// request asks server srv for n strips at simulated time at.
func (r *rig) request(at units.Time, srv, tag, n int) {
	pieces := make([]pfs.Piece, n)
	for i := range pieces {
		pieces[i] = pfs.Piece{GlobalStrip: i, ServerOffset: units.Bytes(i) * 64 * units.KiB, Size: 64 * units.KiB}
	}
	r.eng.At(at, func(units.Time) {
		r.client.Send(netsim.NodeID(100+srv), pfs.RequestSize, netsim.AffHint{}, &pfs.ReadRequest{
			File: 1, Tag: uint64(tag), Client: 1, Pieces: pieces,
		})
	})
}

// strips counts the data frames the client received.
func (r *rig) strips() int {
	n := 0
	for _, f := range r.rx {
		if _, ok := f.Body.(*pfs.StripData); ok {
			n++
		}
	}
	return n
}

func mustArm(t *testing.T, p *Plan, target Target) *Injector {
	t.Helper()
	inj, err := p.Arm(target)
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	return inj
}

func TestEmptyPlanArmsWithoutDrawingRandomness(t *testing.T) {
	r := newRig(t, 1)
	root := rng.New(7)
	inj := mustArm(t, nil, r.target(root))
	inj2 := mustArm(t, &Plan{}, r.target(root))
	if got, want := root.Uint64(), rng.New(7).Uint64(); got != want {
		t.Fatalf("empty Arm perturbed the rng: %d vs %d", got, want)
	}
	for _, i := range []*Injector{inj, inj2} {
		if st := i.Finish(units.Second); st.StallsInjected != 0 || st.Crashes != 0 || st.StormFrames != 0 {
			t.Errorf("no-op injector has stats %+v", st)
		}
	}
}

func TestArmRejectsInvalidPlanAndMissingTarget(t *testing.T) {
	r := newRig(t, 1)
	if _, err := (&Plan{Loss: 2}).Arm(r.target(rng.New(1))); err == nil {
		t.Error("invalid plan armed")
	}
	if _, err := (&Plan{Loss: 0.1}).Arm(Target{Rand: rng.New(1)}); err == nil {
		t.Error("plan armed without an engine or fabric")
	}
}

func TestLossHookDropsFramesDeterministically(t *testing.T) {
	run := func() (uint64, int) {
		r := newRig(t, 1)
		mustArm(t, &Plan{Loss: 0.3}, r.target(rng.New(42)))
		for i := 0; i < 20; i++ {
			r.request(units.Time(i)*units.Millisecond, 0, i+1, 1)
		}
		r.eng.RunUntilIdle()
		return r.fab.Dropped(), r.strips()
	}
	dropped, strips := run()
	if dropped == 0 {
		t.Fatal("30% loss dropped nothing")
	}
	if strips == 0 {
		t.Fatal("every frame dropped at 30% loss")
	}
	d2, s2 := run()
	if d2 != dropped || s2 != strips {
		t.Fatalf("same (plan, seed) diverged: %d/%d vs %d/%d drops/strips", dropped, strips, d2, s2)
	}
}

func TestCorruptionHookDamagesFrames(t *testing.T) {
	r := newRig(t, 1)
	mustArm(t, &Plan{Corrupt: 0.5}, r.target(rng.New(3)))
	for i := 0; i < 10; i++ {
		r.request(units.Time(i)*units.Millisecond, 0, i+1, 2)
	}
	r.eng.RunUntilIdle()
	if r.fab.Corrupted() == 0 {
		t.Fatal("50% corruption damaged nothing")
	}
	bad := 0
	for _, f := range r.rx {
		if _, _, err := netsim.UnmarshalIPv4(f.Header); err != nil {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("no received frame fails header validation despite corruption")
	}
}

func TestStallHookDelaysServerAndCounts(t *testing.T) {
	base := newRig(t, 1)
	base.request(0, 0, 1, 1)
	base.eng.RunUntilIdle()
	healthy := base.eng.Now()

	r := newRig(t, 1)
	inj := mustArm(t, &Plan{Stalls: []Stall{{Server: 0, Rate: 1, Mean: 5 * units.Millisecond}}},
		r.target(rng.New(1)))
	r.request(0, 0, 1, 1)
	r.eng.RunUntilIdle()
	if got := r.eng.Now() - healthy; got < 4*units.Millisecond {
		t.Errorf("stall added only %v", got)
	}
	if r.srvs[0].Stats().Stalled != 1 {
		t.Errorf("server stalled = %d, want 1", r.srvs[0].Stats().Stalled)
	}
	st := inj.Finish(r.eng.Now())
	if st.StallsInjected != 1 || st.StallTime < 4*units.Millisecond {
		t.Errorf("injector stall stats = %+v", st)
	}
}

func TestStallJitterDrawsStayBounded(t *testing.T) {
	r := newRig(t, 1)
	mean, jitter := units.Millisecond, 200*units.Microsecond
	inj := mustArm(t, &Plan{Stalls: []Stall{{Server: -1, Rate: 1, Mean: mean, Jitter: jitter}}},
		r.target(rng.New(9)))
	for i := 0; i < 8; i++ {
		r.request(units.Time(i)*20*units.Millisecond, 0, i+1, 1)
	}
	r.eng.RunUntilIdle()
	st := inj.Finish(r.eng.Now())
	if st.StallsInjected != 8 {
		t.Fatalf("stalls = %d, want 8", st.StallsInjected)
	}
	if st.StallTime <= 0 || st.StallTime > 8*(mean+4*jitter) {
		t.Errorf("total stall time %v outside the truncated range", st.StallTime)
	}
}

func TestCrashAndReviveTimeline(t *testing.T) {
	r := newRig(t, 2)
	crashAt, reviveAt := 2*units.Millisecond, 12*units.Millisecond
	inj := mustArm(t, &Plan{Timeline: []TimelineEvent{
		{At: crashAt, Kind: KindCrash, Server: 0},
		{At: reviveAt, Kind: KindRevive, Server: 0},
	}}, r.target(rng.New(1)))
	r.request(5*units.Millisecond, 0, 1, 1)  // lands while down: dropped
	r.request(20*units.Millisecond, 0, 2, 1) // after revival: served
	r.eng.RunUntilIdle()
	if got := r.strips(); got != 1 {
		t.Errorf("client got %d strips, want only the post-revive one", got)
	}
	st := inj.Finish(r.eng.Now())
	if st.Crashes != 1 {
		t.Errorf("crashes = %d", st.Crashes)
	}
	if st.Downtime[0] != reviveAt-crashAt || st.Downtime[1] != 0 {
		t.Errorf("downtime = %v", st.Downtime)
	}
	if st.LastReviveAt != reviveAt {
		t.Errorf("last revive = %v, want %v", st.LastReviveAt, reviveAt)
	}
}

func TestCrashIsIdempotentAndFinishClosesOpenOutage(t *testing.T) {
	r := newRig(t, 1)
	inj := mustArm(t, &Plan{Timeline: []TimelineEvent{
		{At: units.Millisecond, Kind: KindCrash, Server: 0},
		{At: 2 * units.Millisecond, Kind: KindCrash, Server: 0}, // double crash: one outage
		{At: 0, Kind: KindRevive, Server: 0},                    // revive while up: ignored
	}}, r.target(rng.New(1)))
	r.eng.RunUntilIdle()
	st := inj.Finish(10 * units.Millisecond)
	if st.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", st.Crashes)
	}
	if st.Downtime[0] != 9*units.Millisecond {
		t.Errorf("open outage closed to %v, want 9ms", st.Downtime[0])
	}
	if st.LastReviveAt != 0 {
		t.Errorf("revive recorded at %v for a server that never came back", st.LastReviveAt)
	}
}

func TestDegradeLinkScalesLatency(t *testing.T) {
	elapsed := func(factor float64) units.Time {
		r := newRig(t, 1)
		plan := &Plan{}
		if factor > 0 {
			plan.Timeline = []TimelineEvent{{At: 0, Kind: KindDegradeLink, Factor: factor}}
		}
		mustArm(t, plan, r.target(rng.New(1)))
		r.request(0, 0, 1, 1)
		r.eng.RunUntilIdle()
		return r.eng.Now()
	}
	healthy, degraded := elapsed(0), elapsed(10)
	// Two fabric crossings at 10 µs each, scaled 10×, add ≥ 180 µs.
	if degraded-healthy < 150*units.Microsecond {
		t.Errorf("10x degrade added only %v", degraded-healthy)
	}
	if restored := elapsed(1); restored != healthy {
		t.Errorf("factor 1 run took %v, healthy %v", restored, healthy)
	}
}

func TestStormSpraysAndStops(t *testing.T) {
	r := newRig(t, 1)
	period := 100 * units.Microsecond
	inj := mustArm(t, &Plan{Timeline: []TimelineEvent{
		{At: 0, Kind: KindStormStart, Client: -1, Period: period},
		{At: units.Millisecond, Kind: KindStormStop},
	}}, r.target(rng.New(1)))
	r.eng.RunUntilIdle() // must drain: the storm is bounded
	st := inj.Finish(r.eng.Now())
	if st.StormFrames != 10 { // ticks at 0, 100µs, ..., 900µs
		t.Errorf("storm frames = %d, want 10", st.StormFrames)
	}
	junk := 0
	for _, f := range r.rx {
		if f.Body == nil {
			junk++
		}
	}
	if junk != 10 {
		t.Errorf("client received %d junk frames, want 10", junk)
	}
}

func TestStormTargetsOneClient(t *testing.T) {
	r := newRig(t, 1)
	// A second client NIC that must stay quiet.
	other := netsim.NewNIC(r.eng, 2, netsim.DefaultNICConfig(3*units.Gigabit))
	r.fab.Attach(other)
	var otherRx int
	other.SetInterruptHandler(func(units.Time) { otherRx += len(other.Drain()) })
	target := r.target(rng.New(1))
	target.Clients = []netsim.NodeID{1, 2}
	mustArm(t, &Plan{Timeline: []TimelineEvent{
		{At: 0, Kind: KindStormStart, Client: 0, Period: 100 * units.Microsecond},
		{At: 500 * units.Microsecond, Kind: KindStormStop},
	}}, target)
	r.eng.RunUntilIdle()
	if len(r.rx) == 0 {
		t.Error("targeted client received nothing")
	}
	if otherRx != 0 {
		t.Errorf("untargeted client received %d frames", otherRx)
	}
}
