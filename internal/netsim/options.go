// Package netsim models the network path between PVFS I/O servers and
// the client: IPv4 packets carrying the SAIs affinity hint in the IP
// options field (the paper's Figure 4 wire format), NICs with a finite
// receive ring and interrupt coalescing, and a store-and-forward switch
// connecting node NICs.
package netsim

import (
	"errors"
	"fmt"
)

// MaxCores is the number of cores addressable by the 5-bit option
// number sub-field of the aff_core_id option (2^5, as the paper notes).
const MaxCores = 32

// Errors returned by the options codec.
var (
	ErrCoreRange  = errors.New("netsim: aff_core_id outside 0..31")
	ErrNotAffHint = errors.New("netsim: option byte is not an aff_core_id hint")
)

// The Figure-4 simple option layout:
//
//	bit 7    : copied flag, set to 1
//	bits 6-5 : option class, set to 1 (reserved/control per the paper)
//	bits 4-0 : option number = aff_core_id
const (
	copiedFlag  = 0x80
	classShift  = 5
	classValue  = 1
	numberMask  = 0x1f
	optionEOL   = 0x00
	headerByte  = copiedFlag | classValue<<classShift
	headerCheck = copiedFlag | 3<<classShift // copied+class mask
)

// EncodeAffOption packs aff_core_id into the single-byte IP option of
// Figure 4 (copied=1, class=1, number=core).
func EncodeAffOption(core int) (byte, error) {
	if core < 0 || core >= MaxCores {
		return 0, fmt.Errorf("%w: %d", ErrCoreRange, core)
	}
	return headerByte | byte(core), nil
}

// DecodeAffOption extracts aff_core_id from an option byte, validating
// the copied and class sub-fields.
func DecodeAffOption(b byte) (int, error) {
	if b&headerCheck != headerByte {
		return 0, fmt.Errorf("%w: %#02x", ErrNotAffHint, b)
	}
	return int(b & numberMask), nil
}

// AffHint is the parsed affinity hint carried by a packet. The zero
// value means "no hint" (Valid=false), the state of every packet in a
// non-SAIs configuration.
type AffHint struct {
	Core  int
	Valid bool
}

// Hint constructs a valid hint for core.
func Hint(core int) AffHint { return AffHint{Core: core, Valid: true} }

// String renders the hint for traces.
func (h AffHint) String() string {
	if !h.Valid {
		return "no-hint"
	}
	return fmt.Sprintf("aff_core=%d", h.Core)
}

// OptionsBytes returns the raw IP options field for the hint: the
// aff_core_id option terminated by EOL and padded to the 32-bit
// boundary the IP header requires, or nil when no hint is set.
func (h AffHint) OptionsBytes() ([]byte, error) {
	if !h.Valid {
		return nil, nil
	}
	op, err := EncodeAffOption(h.Core)
	if err != nil {
		return nil, err
	}
	// option + EOL, padded to 4 bytes.
	return []byte{op, optionEOL, optionEOL, optionEOL}, nil
}

// ParseOptions scans a raw IP options field for an aff_core_id hint,
// the SrcParser step of SAIs performed by the NIC driver. Unknown
// options are skipped per RFC 791 (single-byte options only in this
// model); a malformed field yields no hint rather than an error, as a
// driver must tolerate arbitrary traffic.
func ParseOptions(opts []byte) AffHint {
	for _, b := range opts {
		if b == optionEOL {
			break
		}
		if core, err := DecodeAffOption(b); err == nil {
			return Hint(core)
		}
	}
	return AffHint{}
}
