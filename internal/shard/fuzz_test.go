package shard

import (
	"fmt"
	"testing"

	"sais/internal/units"
)

// FuzzMailboxOrder feeds the mailbox a fuzz-chosen message set in a
// fuzz-chosen arrival order and asserts the execution order is the
// canonical (At, SentAt, Origin, Seq) sort — never the arrival order.
// This is the heart of the sharding determinism claim: two layouts
// deliver the same messages in different arrival orders, and the
// executor must erase that difference.
func FuzzMailboxOrder(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0xff, 0x00, 0x7f, 0x80, 0x01, 0xfe})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode up to 16 messages, 3 bytes each: at-offset, sentAt
		// fraction, origin. Seq is the decode index, which also makes
		// every key unique.
		n := len(data) / 3
		if n == 0 {
			return
		}
		if n > 16 {
			n = 16
		}
		msgs := make([]Msg, n)
		for i := 0; i < n; i++ {
			at := units.Time(data[3*i]%8) + 1 // delivery in [1, 8]
			sent := units.Time(data[3*i+1]) % at
			msgs[i] = Msg{
				At:     at,
				SentAt: sent,
				Origin: uint64(data[3*i+2]%5) + 1,
				Seq:    uint64(i),
			}
		}
		run := func(order func(i int) int) []string {
			engs := mkEngines(2)
			s := New(engs, 1, 1)
			var log []string
			for i := range msgs {
				m := msgs[order(i)]
				m.Fn = func(now units.Time) {
					log = append(log, fmt.Sprintf("%d/%d/%d@%d", m.SentAt, m.Origin, m.Seq, now))
				}
				s.inbox[1] = append(s.inbox[1], m)
			}
			s.Run()
			return log
		}
		fwd := run(func(i int) int { return i })
		rev := run(func(i int) int { return len(msgs) - 1 - i })
		// A third arrival order: even indices then odd.
		mix := run(func(i int) int {
			if 2*i < len(msgs) {
				return 2 * i
			}
			return 2*(i-(len(msgs)+1)/2) + 1
		})
		for i := range fwd {
			if fwd[i] != rev[i] || fwd[i] != mix[i] {
				t.Fatalf("arrival order leaked into execution:\nfwd %v\nrev %v\nmix %v", fwd, rev, mix)
			}
		}
		// And the log must be sorted by the canonical key.
		for i := 1; i < len(fwd); i++ {
			a, b := parseKey(t, fwd[i-1]), parseKey(t, fwd[i])
			if msgLess(b, a) {
				t.Fatalf("execution not in canonical order: %v before %v", fwd[i-1], fwd[i])
			}
		}
	})
}

// parseKey recovers the ordering key from a fuzz log entry.
func parseKey(t *testing.T, s string) Msg {
	t.Helper()
	var m Msg
	var at units.Time
	if _, err := fmt.Sscanf(s, "%d/%d/%d@%d", &m.SentAt, &m.Origin, &m.Seq, &at); err != nil {
		t.Fatalf("bad log entry %q: %v", s, err)
	}
	m.At = at
	return m
}
