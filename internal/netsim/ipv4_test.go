package netsim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	opts, _ := Hint(11).OptionsBytes()
	h := IPv4Header{
		TotalLen: 1500,
		ID:       42,
		TTL:      64,
		Protocol: 6,
		SrcIP:    0x0a000001,
		DstIP:    0x0a000002,
		Options:  opts,
	}
	b, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 24 {
		t.Errorf("header length = %d, want 24 (20 + 4 options)", len(b))
	}
	got, n, err := UnmarshalIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 24 {
		t.Errorf("consumed = %d, want 24", n)
	}
	if got.TotalLen != h.TotalLen || got.ID != h.ID || got.TTL != h.TTL ||
		got.Protocol != h.Protocol || got.SrcIP != h.SrcIP || got.DstIP != h.DstIP {
		t.Errorf("round trip mismatch: %+v vs %+v", got, h)
	}
	hint := ParseOptions(got.Options)
	if !hint.Valid || hint.Core != 11 {
		t.Errorf("hint after round trip = %v", hint)
	}
}

func TestHeaderNoOptions(t *testing.T) {
	h := IPv4Header{TotalLen: 100, TTL: 1, Protocol: 17}
	b, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != minHeaderLen {
		t.Errorf("length = %d, want 20", len(b))
	}
	got, _, err := UnmarshalIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Options != nil {
		t.Errorf("options = %v, want nil", got.Options)
	}
}

func TestMarshalRejectsBadOptions(t *testing.T) {
	h := IPv4Header{TotalLen: 100, Options: make([]byte, 44)}
	if _, err := h.Marshal(); !errors.Is(err, ErrOptionsLong) {
		t.Errorf("long options err = %v", err)
	}
	h = IPv4Header{TotalLen: 100, Options: make([]byte, 3)}
	if _, err := h.Marshal(); !errors.Is(err, ErrOptionsAlign) {
		t.Errorf("misaligned options err = %v", err)
	}
	h = IPv4Header{TotalLen: 10}
	if _, err := h.Marshal(); !errors.Is(err, ErrLengthField) {
		t.Errorf("short total err = %v", err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	h := IPv4Header{TotalLen: 200, TTL: 64}
	b, _ := h.Marshal()

	if _, _, err := UnmarshalIPv4(b[:10]); !errors.Is(err, ErrShortHeader) {
		t.Errorf("short buffer err = %v", err)
	}

	bad := append([]byte(nil), b...)
	bad[0] = 0x65 // version 6
	if _, _, err := UnmarshalIPv4(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version err = %v", err)
	}

	bad = append([]byte(nil), b...)
	bad[0] = 0x43 // IHL 3
	if _, _, err := UnmarshalIPv4(bad); !errors.Is(err, ErrBadIHL) {
		t.Errorf("bad IHL err = %v", err)
	}

	bad = append([]byte(nil), b...)
	bad[15] ^= 0xff // flip a source-IP byte
	if _, _, err := UnmarshalIPv4(bad); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupted header err = %v", err)
	}
}

func TestChecksumSelfVerifies(t *testing.T) {
	err := quick.Check(func(id uint16, src, dst uint32, ttl, proto uint8, core uint8) bool {
		var opts []byte
		if core%2 == 0 {
			opts, _ = Hint(int(core % MaxCores)).OptionsBytes()
		}
		h := IPv4Header{
			TotalLen: 576, ID: id, TTL: ttl, Protocol: proto,
			SrcIP: src, DstIP: dst, Options: opts,
		}
		b, err := h.Marshal()
		if err != nil {
			return false
		}
		if checksum(b) != 0 {
			return false
		}
		got, _, err := UnmarshalIPv4(b)
		return err == nil && got.SrcIP == src && got.DstIP == dst
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length buffers take the padding path; just ensure stability.
	b := []byte{0x01, 0x02, 0x03}
	if checksum(b) != checksum(b) {
		t.Error("checksum not deterministic on odd input")
	}
}

// Property: UnmarshalIPv4 never panics and never succeeds on random
// garbage whose checksum was not computed — a driver parsing arbitrary
// traffic must stay robust.
func TestUnmarshalRobustOnRandomBytes(t *testing.T) {
	err := quick.Check(func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("UnmarshalIPv4 panicked")
			}
		}()
		h, n, err := UnmarshalIPv4(raw)
		if err != nil {
			return h == nil && n == 0
		}
		// An accidental success must at least be self-consistent.
		return h != nil && n >= minHeaderLen && n <= len(raw)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

// Property: ParseHint on frames with corrupted headers yields no hint
// rather than an error or panic (SrcParser robustness).
func TestParseHintRobust(t *testing.T) {
	err := quick.Check(func(raw []byte) bool {
		f := &Frame{Header: raw, Payload: 64}
		h := ParseHint(f)
		return !h.Valid || (h.Core >= 0 && h.Core < MaxCores)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}
