// Fixture for the jsonstability analyzer: frozen required field sets
// under recorded signatures, the bootstrap path, schema drift, nested
// coverage, and the //lint:jsonstability hatch.
package main

// Good's required set is {Count, Name}: Extra is omitempty (additions
// are free), hidden is unexported, Skip is json:"-".
//
//saisvet:jsonstable sig=2fb26bbe
type Good struct {
	Name   string
	Count  int
	Extra  int `json:",omitempty"`
	hidden int
	Skip   int `json:"-"`
}

// Tagged serializes Inner under its json tag name; the signature hashes
// the wire name, so retagging is as loud as renaming.
//
//saisvet:jsonstable sig=6d310bc9
type Tagged struct {
	Inner string `json:"inner"`
}

//saisvet:jsonstable sig=00000000
type Drifted struct { // want `required serialized fields of jsonstable struct Drifted drifted from recorded sig=00000000`
	A int
}

//saisvet:jsonstable
type Boot struct { // want `//saisvet:jsonstable on Boot is missing its signature`
	A int
}

// Parent nests an unannotated module-local struct in a required field:
// drift inside Naked would be invisible to Parent's signature.
//
//saisvet:jsonstable sig=e3727b2d
type Parent struct {
	Child Naked // want `required field of jsonstable struct Parent nests sais/cluster.Naked`
}

type Naked struct{ A int }

// Parent2 nests Sibling, which is annotated *later in the file* — the
// analyzer must register every annotation before checking nesting.
//
//saisvet:jsonstable sig=e3727b2d
type Parent2 struct {
	Child Sibling // no finding: Sibling is jsonstable below
}

//saisvet:jsonstable sig=4ad0cf31
type Sibling struct{ B int }

// Waived shows the escape hatch on an intentionally unrecorded schema.
//
//saisvet:jsonstable sig=ffffffff
//lint:jsonstability schema under migration; re-freeze when PR lands
type Waived struct {
	A int
}

func main() {}
