// Command saisvet is the repository's static-analysis multichecker: it
// runs the internal/lint analyzers (simdeterminism, seedderive,
// unitsafety, closecheck, allocfree, shardsafety, hookcontract,
// jsonstability, and — under -strict-waivers — waiverhygiene) over one
// package at a time under the `go vet -vettool` protocol:
//
//	go build -o .bin/saisvet ./cmd/saisvet
//	go vet -vettool=.bin/saisvet ./...
//
// (`make lint` does exactly that, with -strict-waivers on.) The go
// command hands the tool a JSON config file describing a single
// type-checked package — source files plus export data for every
// dependency — and the tool prints findings to stderr in file:line:col
// form (or GitHub Actions annotation form under -format=github),
// exiting 2 when there are any.
//
// The vetx files the protocol threads between packages carry saisvet's
// cross-package facts: per-function taint sets and allocation-freedom
// proofs, plus annotated hook/mailbox fields and jsonstable types (see
// internal/lint/analysis.PackageFacts). Facts are computed for every
// package of the sais module — including pure dependency passes
// (VetxOnly), which still parse and type-check so their exports are
// real — while stdlib and foreign packages get a cheap no-facts marker.
//
// The protocol implementation mirrors x/tools' unitchecker but is
// built purely on the standard library's go/importer, because this
// module deliberately has no external dependencies.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"sort"
	"strings"

	"sais/internal/lint"
	"sais/internal/lint/analysis"
)

// vetConfig is the per-package configuration the go command writes for
// a -vettool. Field set and meaning follow cmd/go/internal/work.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// vetOptions are the analyzer flags saisvet accepts. The go command
// learns about them through the -flags endpoint and forwards them ahead
// of the .cfg argument.
type vetOptions struct {
	// StrictWaivers enables the waiverhygiene analyzer: every //lint:
	// waiver must suppress at least one finding. On in CI and `make
	// lint`; off by default so ad-hoc `go vet -vettool` runs during a
	// refactor don't fail on transiently unused waivers.
	StrictWaivers bool

	// Format selects the diagnostic rendering: "text" (file:line:col:
	// message) or "github" (::error ... GitHub Actions workflow
	// annotations, which surface inline on pull-request diffs).
	Format string
}

func main() {
	args := os.Args[1:]

	// Protocol endpoints the go command may probe before vetting.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion()
			return
		case args[0] == "-flags":
			printFlagDefs()
			return
		}
	}

	fs := flag.NewFlagSet("saisvet", flag.ContinueOnError)
	opts := vetOptions{Format: "text"}
	fs.BoolVar(&opts.StrictWaivers, "strict-waivers", false,
		"report //lint: waivers that no longer suppress any finding")
	fs.StringVar(&opts.Format, "format", "text",
		"diagnostic output format: text or github")
	usage := func() {
		fmt.Fprintf(os.Stderr, "usage: saisvet [-strict-waivers] [-format=text|github] <package>.cfg\n\n"+
			"saisvet is a go vet -vettool; run it through `make lint` or\n"+
			"`go vet -vettool=.bin/saisvet ./...`.\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	fs.Usage = usage
	if err := fs.Parse(args); err != nil {
		os.Exit(1)
	}
	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		usage()
		os.Exit(1)
	}
	if opts.Format != "text" && opts.Format != "github" {
		fmt.Fprintf(os.Stderr, "saisvet: unknown -format %q (want text or github)\n", opts.Format)
		os.Exit(1)
	}

	diags, err := checkPackage(fs.Arg(0), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "saisvet: %v\n", err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

// printVersion answers -V=full in the form cmd/go's buildID parser
// expects: "<tool> version devel ... buildID=<content-hash>". Hashing
// our own executable makes the go command re-vet cached packages
// whenever the tool's analyzers change.
func printVersion() {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f) // a short hash only weakens caching, not correctness
			_ = f.Close()        // read-only executable handle: closecheck exempts os.Open
		}
	}
	fmt.Printf("saisvet version devel buildID=%x\n", h.Sum(nil)[:16])
}

// printFlagDefs answers the -flags probe: a JSON array of the analyzer
// flags the tool accepts, in the shape cmd/go parses ({Name, Bool,
// Usage}). The go command validates `go vet -vettool` flags against
// this list and forwards them before the .cfg argument.
func printFlagDefs() {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	defs := []flagDef{
		{Name: "strict-waivers", Bool: true,
			Usage: "report //lint: waivers that no longer suppress any finding"},
		{Name: "format", Bool: false,
			Usage: "diagnostic output format: text or github"},
	}
	out, _ := json.Marshal(defs) // closed struct shape; cannot fail
	fmt.Println(string(out))
}

// saisModulePkg reports whether importPath belongs to the module whose
// invariants the analyzers enforce — the packages that get real facts.
// Everything else (stdlib, foreign modules) keeps the cheap no-facts
// marker so dependency-only passes stay parse-free.
func saisModulePkg(importPath string) bool {
	return importPath == "sais" || strings.HasPrefix(importPath, "sais/")
}

// checkPackage loads one vet config, type-checks the package it
// describes, runs every analyzer over it with the dependency facts
// from PackageVetx decoded into the pass, writes the facts the package
// exports to VetxOutput, and returns rendered diagnostics.
func checkPackage(cfgPath string, opts vetOptions) ([]string, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	factsPkg := saisModulePkg(cfg.ImportPath)
	if !factsPkg {
		// Foreign package: no facts to compute. Write the marker so the
		// go command's cache stays primed for dependents, and skip the
		// parse entirely on dependency-only passes.
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("saisvet-no-facts\n"), 0o666); err != nil {
				return nil, err
			}
		}
		if cfg.VetxOnly {
			return nil, nil
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a canonical package path; the go command supplies
		// export data for every import.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes: types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = version.Lang(cfg.GoVersion)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	// Decode the facts of every dependency the go command handed us.
	// Files with a foreign or marker prefix decode as absent, which the
	// analyzers treat as "exports no facts".
	deps := make(map[string]*analysis.PackageFacts)
	for path, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			continue // a missing dependency vetx only costs precision
		}
		if pf, ok := analysis.DecodeFacts(data); ok {
			deps[path] = pf
		}
	}

	// One directive index and one facts record are shared by the whole
	// suite: directive usage accumulates across analyzers (waiverhygiene
	// reads the union), and facts exported by an earlier analyzer are
	// visible to later ones.
	dirs := analysis.NewDirectives(fset, files)
	facts := &analysis.PackageFacts{}

	var diags []diagnostic
	for _, a := range lint.Analyzers {
		if a == lint.WaiverHygiene && !opts.StrictWaivers {
			continue
		}
		name := a.Name
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Dirs:      dirs,
			Deps:      deps,
			Facts:     facts,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, diagnostic{pos: fset.Position(d.Pos), msg: d.Message, analyzer: name})
			},
		}
		if cfg.VetxOnly {
			// Dependency-only pass: the dependents need this package's
			// facts, not its findings (those are reported when the
			// package is vetted in its own right).
			pass.Report = func(analysis.Diagnostic) {}
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	if factsPkg && cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, analysis.EncodeFacts(facts), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].less(diags[j]) })
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.render(opts.Format)
	}
	return out, nil
}

// diagnostic is one rendered-position finding.
type diagnostic struct {
	pos      token.Position
	msg      string
	analyzer string
}

func (d diagnostic) less(o diagnostic) bool {
	if d.pos.Filename != o.pos.Filename {
		return d.pos.Filename < o.pos.Filename
	}
	if d.pos.Line != o.pos.Line {
		return d.pos.Line < o.pos.Line
	}
	if d.pos.Column != o.pos.Column {
		return d.pos.Column < o.pos.Column
	}
	return d.msg < o.msg
}

// render formats the diagnostic. The github form is the GitHub Actions
// workflow-command syntax, which the runner turns into inline
// annotations on the pull-request diff; newlines in the message must be
// URL-style escaped per the workflow-command spec.
func (d diagnostic) render(format string) string {
	if format == "github" {
		msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").
			Replace(fmt.Sprintf("%s (%s)", d.msg, d.analyzer))
		return fmt.Sprintf("::error file=%s,line=%d,col=%d::%s",
			d.pos.Filename, d.pos.Line, d.pos.Column, msg)
	}
	return fmt.Sprintf("%s: %s (%s)", d.pos, d.msg, d.analyzer)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
