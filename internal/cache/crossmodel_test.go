package cache

import (
	"testing"
	"testing/quick"

	"sais/internal/rng"
	"sais/internal/units"
)

// TestBlockModelMatchesLineModel cross-validates the two cache
// substrates: for single-line blocks with no capacity pressure, the
// block-granularity System must classify every access exactly as the
// line-granularity MESI Directory does. This is the correctness anchor
// for using the fast block model in the cluster simulator.
func TestBlockModelMatchesLineModel(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		const cores = 4
		// Large caches: no evictions, so residency is purely a function
		// of the access sequence in both models.
		sys := NewSystem(cores, units.MiB, 64)
		dir := NewDirectory(cores, LineCacheConfig{Capacity: units.MiB, LineSize: 64, Ways: 16})

		const blocks = 32
		filled := map[BlockID]bool{}
		for i := 0; i < 300; i++ {
			core := r.Intn(cores)
			id := BlockID(r.Intn(blocks) + 1)
			addr := LineAddr(uint64(id) * 64)
			if !filled[id] || r.Bool(0.3) {
				// Deposit (softirq fill): Modified in both models.
				sys.Fill(core, id, 64)
				dir.FillModified(core, addr)
				filled[id] = true
				continue
			}
			want := dir.Read(core, addr)
			got := sys.Consume(core, id)
			// After a consume the block model treats the block as owned
			// by the consumer; mirror that in the line model by
			// re-filling ownership, matching Consume's move semantics.
			if got != want {
				t.Logf("seed %d step %d: block=%v line=%v", seed, i, got, want)
				return false
			}
			dir.FillModified(core, addr)
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}
