package lint_test

import (
	"path/filepath"
	"testing"

	"sais/internal/lint"
	"sais/internal/lint/analysistest"
)

var srcRoot = filepath.Join("testdata", "src")

// TestSimDeterminismInSimPackage checks the strict rule set under a
// deterministic package path: wall clocks, math/rand, goroutines, and
// map iteration are all findings, and both escape hatches
// (//lint:wallclock, //lint:maporder) are honored.
func TestSimDeterminismInSimPackage(t *testing.T) {
	analysistest.Run(t, lint.SimDeterminism, srcRoot, "simdeterminism", "sais/internal/sim")
}

// TestSimDeterminismOutsideSim checks the relaxed scope: wall clocks
// stay banned everywhere, but goroutines and map ranges are legal
// outside the deterministic packages.
func TestSimDeterminismOutsideSim(t *testing.T) {
	analysistest.Run(t, lint.SimDeterminism, srcRoot, "simdeterminism_cmd", "sais/cmd/faketool")
}

// TestSimDeterminismPackageWaiver checks the file-header
// //lint:package form: the waived directive (goroutine) is silent
// package-wide, the others still fire.
func TestSimDeterminismPackageWaiver(t *testing.T) {
	analysistest.Run(t, lint.SimDeterminism, srcRoot, "simdeterminism_pkg", "sais/internal/shard")
}

// TestSimDeterminismStrayPackageWaiver checks a //lint:package comment
// below the package clause is inert.
func TestSimDeterminismStrayPackageWaiver(t *testing.T) {
	analysistest.Run(t, lint.SimDeterminism, srcRoot, "simdeterminism_stray", "sais/internal/sim")
}

// TestSimDeterminismFlowsim pins the fluid-flow engine into the strict
// scope: flowsim stations scale service times inside the event loop,
// so the package must stay bit-reproducible like internal/sim.
func TestSimDeterminismFlowsim(t *testing.T) {
	analysistest.Run(t, lint.SimDeterminism, srcRoot, "simdeterminism_flowsim", "sais/internal/flowsim")
}

// TestSimDeterminismToeplitz pins the RSS hash into the strict scope:
// toeplitz hashes pick interrupt destinations inside the event loop,
// so the package must stay bit-reproducible like internal/sim.
func TestSimDeterminismToeplitz(t *testing.T) {
	analysistest.Run(t, lint.SimDeterminism, srcRoot, "simdeterminism_toeplitz", "sais/internal/toeplitz")
}

// TestSeedDerive checks the seed-arithmetic rule, including the
// historical cfg.Seed+i fan-out bug, and the //lint:seedarith hatch.
func TestSeedDerive(t *testing.T) {
	analysistest.Run(t, lint.SeedDerive, srcRoot, "seedderive", "sais/cluster")
}

// TestSeedDeriveScenarioGenerator checks the rule against the chaos
// generator's fan-out shapes: soak iteration pairs and fault-family
// streams must derive, never add, while stream-index arithmetic stays
// legal.
func TestSeedDeriveScenarioGenerator(t *testing.T) {
	analysistest.Run(t, lint.SeedDerive, srcRoot, "seedderive_scenario", "sais/internal/scenario")
}

// TestSeedDeriveExemptsRngPackage: the rng package implements Derive
// and is the one place seed-mixing arithmetic is legal. Its fixture
// contains raw seed arithmetic and zero want comments — the test fails
// if the analyzer reports anything under the .../rng path.
func TestSeedDeriveExemptsRngPackage(t *testing.T) {
	analysistest.Run(t, lint.SeedDerive, srcRoot, "seedderive_rng", "sais/internal/rng")
}

// TestUnitSafety checks dimension mixing through conversions and the
// raw-division-with-helper findings, plus the //lint:unitmix hatch.
func TestUnitSafety(t *testing.T) {
	analysistest.Run(t, lint.UnitSafety, srcRoot, "unitsafety", "sais/internal/pfs")
}

// TestCloseCheck checks discarded Close/Flush shapes, the os.Open
// read-only exemption, and the //lint:close hatch.
func TestCloseCheck(t *testing.T) {
	analysistest.Run(t, lint.CloseCheck, srcRoot, "closecheck", "sais/cmd/faketool")
}

// TestSimDeterminismTransitiveTaint checks the cross-package taint
// channel: a goroutine spawn inside a dependency (legal there) must
// surface as a finding at the deterministic call site, via the
// dependency's exported facts.
func TestSimDeterminismTransitiveTaint(t *testing.T) {
	analysistest.Run(t, lint.SimDeterminism, srcRoot, "simdeterminism_taint", "sais/internal/sim")
}

// TestAllocFree checks every allocating construct the //saisvet:allocfree
// contract forbids, the accepted evidence patterns (field-backed and
// parameter-backed appends, whitelisted math/sync, panic-only failure
// paths), intra-package proof propagation, and the //lint:alloc hatch.
func TestAllocFree(t *testing.T) {
	analysistest.Run(t, lint.AllocFree, srcRoot, "allocfree", "sais/internal/sim")
}

// TestAllocFreeCrossPackageFacts checks that a dependency's annotation
// and allocation proof status arrive through the facts channel.
func TestAllocFreeCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, lint.AllocFree, srcRoot, "allocfree_facts", "sais/internal/sim")
}

// TestShardSafety checks the mailbox-ownership rule (locally and via
// dependency facts) and the no-runtime-global-writes rule under a
// deterministic package path, plus both hatches.
func TestShardSafety(t *testing.T) {
	analysistest.Run(t, lint.ShardSafety, srcRoot, "shardsafety", "sais/internal/shard")
}

// TestHookContract checks the nil-guard obligation on //saisvet:nilhook
// calls: the guarded shapes stay silent, unguarded calls are findings
// (locally and via dependency facts), and //lint:nilhook suppresses.
func TestHookContract(t *testing.T) {
	analysistest.Run(t, lint.HookContract, srcRoot, "hookcontract", "sais/internal/cpu")
}

// TestJSONStability checks signature verification, the bootstrap
// diagnostic, drift reporting, nested coverage (including a sibling
// annotated later in the file), and the //lint:jsonstability hatch.
func TestJSONStability(t *testing.T) {
	analysistest.Run(t, lint.JSONStability, srcRoot, "jsonstability", "sais/cluster")
}

// TestWaiverHygiene runs the full analyzer suite the way the driver
// does — shared directive index, waiverhygiene last — over a fixture
// with one consumed waiver (silent), one stale line waiver, one stale
// package waiver, and one typoed directive name.
func TestWaiverHygiene(t *testing.T) {
	analysistest.RunSuite(t, lint.Analyzers, srcRoot, "waiverhygiene", "sais/internal/sim")
}
