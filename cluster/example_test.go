package cluster_test

import (
	"fmt"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/units"
)

// ExampleRun reproduces the paper's central comparison on a small
// configuration: the same parallel-read workload under irqbalance and
// under SAIs. Runs are deterministic, so the output is exact.
func ExampleRun() {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 16
	cfg.BytesPerProc = 8 * units.MiB

	base, err := cluster.Run(cfg.WithPolicy(irqsched.PolicyIrqbalance))
	if err != nil {
		panic(err)
	}
	sais, err := cluster.Run(cfg.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		panic(err)
	}

	fmt.Printf("irqbalance migrated lines: %d\n", base.RemoteLines)
	fmt.Printf("sais migrated lines:       %d\n", sais.RemoteLines)
	fmt.Printf("sais wins bandwidth:       %v\n", sais.Bandwidth > base.Bandwidth)
	fmt.Printf("sais lowers miss rate:     %v\n", sais.CacheMissRate < base.CacheMissRate)
	// Output:
	// irqbalance migrated lines: 198656
	// sais migrated lines:       0
	// sais wins bandwidth:       true
	// sais lowers miss rate:     true
}
