package cluster

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"sais/internal/faults"
	"sais/internal/units"
)

// chaosCfg is a small configuration with a crash-and-recover fault plan
// and enough retry budget to ride through the outage.
func chaosCfg() Config {
	cfg := quickCfg()
	cfg.BytesPerProc = 2 * units.MiB
	cfg.RetryTimeout = 20 * units.Millisecond
	cfg.MaxRetries = 12
	cfg.Faults = &faults.Plan{
		Loss: 0.005,
		Timeline: []faults.TimelineEvent{
			{At: 5 * units.Millisecond, Kind: faults.KindCrash, Server: 0},
			{At: 5 * units.Millisecond, Kind: faults.KindDegradeLink, Factor: 2},
			{At: 35 * units.Millisecond, Kind: faults.KindRevive, Server: 0},
			{At: 35 * units.Millisecond, Kind: faults.KindDegradeLink, Factor: 1},
		},
	}
	return cfg
}

// TestFaultPlanCrashRecoveryDeterministic is the ISSUE's acceptance
// criterion: a crash-and-recover scenario run twice with the same
// (plan, seed) must produce a byte-identical Result.
func TestFaultPlanCrashRecoveryDeterministic(t *testing.T) {
	run := func() []byte {
		res, err := Run(chaosCfg())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("identical (plan, seed) diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestFaultPlanMatchesLegacyKnobs pins the knob merge: the legacy
// scalar fields and the equivalent explicit plan must drive the exact
// same simulation.
func TestFaultPlanMatchesLegacyKnobs(t *testing.T) {
	legacy := quickCfg()
	legacy.BytesPerProc = 2 * units.MiB
	legacy.RetryTimeout = 20 * units.Millisecond
	legacy.MaxRetries = 12
	legacy.LossRate = 0.01
	legacy.CrashServer = 1
	legacy.CrashAt = 5 * units.Millisecond
	legacy.ReviveAt = 30 * units.Millisecond

	planned := legacy
	planned.LossRate = 0
	planned.CrashServer = -1
	planned.CrashAt = 0
	planned.ReviveAt = 0
	planned.Faults = &faults.Plan{
		Loss: 0.01,
		Timeline: []faults.TimelineEvent{
			{At: 5 * units.Millisecond, Kind: faults.KindCrash, Server: 1},
			{At: 30 * units.Millisecond, Kind: faults.KindRevive, Server: 1},
		},
	}
	a, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(planned)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Errorf("legacy knobs and explicit plan diverged:\n%s\nvs\n%s", aj, bj)
	}
}

// TestFaultReportRollup runs a plan exercising every injection hook and
// checks each section of Result.Faults is populated and consistent with
// the top-level counters.
func TestFaultReportRollup(t *testing.T) {
	cfg := quickCfg()
	cfg.BytesPerProc = 2 * units.MiB
	cfg.RetryTimeout = 20 * units.Millisecond
	cfg.MaxRetries = 12
	cfg.Faults = &faults.Plan{
		Loss:    0.01,
		Corrupt: 0.02,
		Stalls:  []faults.Stall{{Server: 0, Rate: 0.2, Mean: units.Millisecond}},
		Timeline: []faults.TimelineEvent{
			{At: 2 * units.Millisecond, Kind: faults.KindCrash, Server: 1},
			{At: 20 * units.Millisecond, Kind: faults.KindRevive, Server: 1},
			{At: 4 * units.Millisecond, Kind: faults.KindStormStart, Client: -1,
				Period: 100 * units.Microsecond, Payload: 64},
			{At: 8 * units.Millisecond, Kind: faults.KindStormStop},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Faults
	if f.FramesDropped == 0 || f.FramesDropped != res.NetDrops {
		t.Errorf("frames dropped = %d (NetDrops %d)", f.FramesDropped, res.NetDrops)
	}
	if f.FramesCorrupted == 0 {
		t.Error("no corrupted frames under 2% corruption")
	}
	if f.HeaderDrops != res.HeaderDrops || f.RingDrops != res.RingDrops {
		t.Errorf("drop mirrors diverged: %+v vs HeaderDrops=%d RingDrops=%d",
			f, res.HeaderDrops, res.RingDrops)
	}
	if f.StallsInjected == 0 {
		t.Error("no stalls injected at rate 0.2")
	}
	if f.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", f.Crashes)
	}
	if len(f.ServerDowntime) != cfg.Servers {
		t.Fatalf("downtime entries = %d, want %d", len(f.ServerDowntime), cfg.Servers)
	}
	if want := 18 * units.Millisecond; f.ServerDowntime[1] != want {
		t.Errorf("server 1 downtime = %v, want %v", f.ServerDowntime[1], want)
	}
	if f.LastReviveAt != 20*units.Millisecond {
		t.Errorf("last revive at %v", f.LastReviveAt)
	}
	if f.RecoveryTime != res.Duration-f.LastReviveAt {
		t.Errorf("recovery time %v with duration %v", f.RecoveryTime, res.Duration)
	}
	if f.StormFrames == 0 {
		t.Error("storm sprayed no frames")
	}
	if f.StripsRetried == 0 {
		t.Error("loss plus a crash triggered no strip retries")
	}
	if f.OfferedBytes != 4*units.MiB {
		t.Errorf("offered bytes = %v, want 4MiB", f.OfferedBytes)
	}
	// The retry budget rides through the outage: everything is delivered.
	if f.GoodputBytes != f.OfferedBytes {
		t.Errorf("goodput %v below offered %v", f.GoodputBytes, f.OfferedBytes)
	}
	if f.FailedOps != res.FailedTransfers {
		t.Errorf("failed ops %d != failed transfers %d", f.FailedOps, res.FailedTransfers)
	}
	if int(f.FailedOps) != len(f.OpErrors) {
		t.Errorf("op errors = %d for %d failed ops", len(f.OpErrors), f.FailedOps)
	}
}

// TestFailedOpsCarryTypedErrors pins satellite #1 at cluster level: a
// permanently dead server must surface every abandoned transfer as a
// typed OpError, and the abandoned operations' time-to-failure must
// appear in the latency books rather than silently vanish.
func TestFailedOpsCarryTypedErrors(t *testing.T) {
	cfg := quickCfg()
	cfg.BytesPerProc = 2 * units.MiB
	cfg.RetryTimeout = 20 * units.Millisecond
	cfg.MaxRetries = 2
	cfg.Faults = &faults.Plan{
		Timeline: []faults.TimelineEvent{{At: 0, Kind: faults.KindCrash, Server: 0}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedTransfers == 0 {
		t.Fatal("no transfers failed against a permanently dead server")
	}
	if len(res.Faults.OpErrors) != int(res.FailedTransfers) {
		t.Fatalf("op errors = %d, want %d", len(res.Faults.OpErrors), res.FailedTransfers)
	}
	for _, e := range res.Faults.OpErrors {
		if e.FailedAt <= e.IssuedAt {
			t.Errorf("op error %v has no elapsed time", e)
		}
		if e.Retries != cfg.MaxRetries {
			t.Errorf("op error retries = %d, want the exhausted budget %d", e.Retries, cfg.MaxRetries)
		}
		if e.Error() == "" {
			t.Error("empty error string")
		}
	}
	if res.Faults.GoodputBytes >= res.Faults.OfferedBytes {
		t.Errorf("goodput %v not below offered %v despite failures",
			res.Faults.GoodputBytes, res.Faults.OfferedBytes)
	}
	// Abandoned reads contribute their time-to-failure, which is at
	// least the full retry budget — the mean cannot sit below it.
	if res.LatencyMean < cfg.RetryTimeout {
		t.Errorf("latency mean %v below one retry timeout; failures dropped from the books", res.LatencyMean)
	}
}

// TestInvalidFaultPlanRejected checks plan validation runs inside
// Config.Validate with the config's shape.
func TestInvalidFaultPlanRejected(t *testing.T) {
	plans := []*faults.Plan{
		{Loss: -0.1},
		{Corrupt: 1.5},
		{Stalls: []faults.Stall{{Server: 99, Rate: 0.5, Mean: units.Millisecond}}},
		{Timeline: []faults.TimelineEvent{{At: 0, Kind: faults.KindCrash, Server: 99}}},
		{Timeline: []faults.TimelineEvent{{At: 0, Kind: faults.KindStormStart, Period: units.Microsecond, Client: 5}}},
		{Timeline: []faults.TimelineEvent{{At: 0, Kind: "meteor"}}},
	}
	for i, p := range plans {
		cfg := quickCfg()
		cfg.Faults = p
		if _, err := Run(cfg); err == nil {
			t.Errorf("plan %d accepted: %+v", i, p)
		}
	}
}

// TestConfigFaultPlanRoundTrip saves and reloads a config carrying a
// full fault plan and checks nothing is lost or reordered.
func TestConfigFaultPlanRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = &faults.Plan{
		Loss:    0.02,
		Corrupt: 0.001,
		Stalls:  []faults.Stall{{Server: -1, Rate: 0.1, Mean: 2 * units.Millisecond, Jitter: units.Millisecond}},
		Timeline: []faults.TimelineEvent{
			{At: units.Millisecond, Kind: faults.KindCrash, Server: 3},
			{At: 2 * units.Millisecond, Kind: faults.KindDegradeLink, Factor: 4},
			{At: 5 * units.Millisecond, Kind: faults.KindRevive, Server: 3},
			{At: 6 * units.Millisecond, Kind: faults.KindStormStart, Client: -1,
				Period: 50 * units.Microsecond, Payload: 128},
			{At: 7 * units.Millisecond, Kind: faults.KindStormStop},
		},
	}
	path := t.TempDir() + "/chaos.json"
	if err := SaveConfig(path, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Faults, cfg.Faults) {
		t.Errorf("plan round trip diverged:\n%+v\nvs\n%+v", got.Faults, cfg.Faults)
	}
}

// TestReadConfigFaultPlanTable is the satellite hardening check:
// unknown fields anywhere inside the nested plan are rejected, and so
// are out-of-range probabilities and malformed timelines — a config
// file cannot smuggle in a fault spec the injector would choke on.
func TestReadConfigFaultPlanTable(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantErr bool
	}{
		{"empty plan", `{"Faults": {}}`, false},
		{"null plan", `{"Faults": null}`, false},
		{"valid loss", `{"Faults": {"Loss": 0.05}}`, false},
		{"valid timeline", `{"Faults": {"Timeline": [
			{"At": 1000, "Kind": "crash", "Server": 0},
			{"At": 2000, "Kind": "revive", "Server": 0}]}}`, false},
		{"unknown plan field", `{"Faults": {"Bogus": 1}}`, true},
		{"unknown stall field", `{"Faults": {"Stalls": [{"Srv": 0}]}}`, true},
		{"unknown event field", `{"Faults": {"Timeline": [{"Att": 5}]}}`, true},
		{"negative loss", `{"Faults": {"Loss": -0.5}}`, true},
		{"loss of one", `{"Faults": {"Loss": 1}}`, true},
		{"negative corrupt", `{"Faults": {"Corrupt": -1}}`, true},
		{"stall rate above one", `{"Faults": {"Stalls": [{"Server": 0, "Rate": 2}]}}`, true},
		{"negative stall mean", `{"Faults": {"Stalls": [{"Server": 0, "Rate": 0.5, "Mean": -1}]}}`, true},
		{"crash out of range", `{"Faults": {"Timeline": [{"Kind": "crash", "Server": 99}]}}`, true},
		{"event at negative time", `{"Faults": {"Timeline": [{"At": -1, "Kind": "crash", "Server": 0}]}}`, true},
		{"unterminated storm", `{"Faults": {"Timeline": [{"Kind": "storm-start", "Period": 1000}]}}`, true},
		{"zero degrade factor", `{"Faults": {"Timeline": [{"Kind": "degrade-link", "Factor": 0}]}}`, true},
		{"unknown kind", `{"Faults": {"Timeline": [{"Kind": "meteor"}]}}`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadConfig(strings.NewReader(tc.src))
			if tc.wantErr && err == nil {
				t.Errorf("accepted %s", tc.src)
			}
			if !tc.wantErr && err != nil {
				t.Errorf("rejected %s: %v", tc.src, err)
			}
		})
	}
}
