// Fixture for the closecheck analyzer: discarded Close/Flush errors on
// writers — the silent-data-loss class fixed in PR 4 — versus read-only
// handles and properly captured teardown errors.
package main

import (
	"bufio"
	"errors"
	"io"
	"os"
)

// leakyCreate is the bug class from git history: defer f.Close() after
// os.Create reports success even when the close loses buffered data.
func leakyCreate(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `Close error discarded on writer f`
	_, err = f.Write([]byte("x"))
	return err
}

func discardShapes(w io.WriteCloser, bw *bufio.Writer) {
	w.Close()      // want `Close error discarded on writer w`
	_ = w.Close()  // want `Close error discarded on writer w`
	bw.Flush()     // want `Flush error discarded on writer bw`
	defer w.Close() // want `Close error discarded on writer w`
}

// checkedCreate captures the close error the sanctioned way.
func checkedCreate(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("x"))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// readOnly handles from os.Open carry no data-loss signal on close.
func readOnly(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // no finding: provably read-only
	var buf [16]byte
	_, err = f.Read(buf[:])
	return err
}

// readSide shows a plain io.ReadCloser is out of scope entirely.
func readSide(r io.ReadCloser) {
	r.Close() // no finding: not a writer
}

// flushReturned is checked by being returned.
func flushReturned(bw *bufio.Writer) error {
	return bw.Flush()
}

// deferredClosure launders the close through a deferred closure whose
// return value vanishes at the defer site.
func deferredClosure(w io.WriteCloser) {
	defer func() error {
		return w.Close() // want `Close error discarded on writer w`
	}()
}

// joined: discarding the Join discards every error folded into it.
func joined(w io.WriteCloser, err error) {
	_ = errors.Join(err, w.Close()) // want `Close error discarded on writer w`
}

// joinKept returns the joined error — the sanctioned use of Join.
func joinKept(w io.WriteCloser, err error) error {
	return errors.Join(err, w.Close())
}

// deferredCapture folds the close error into a named result: the error
// reaches the caller, so no finding.
func deferredCapture(w io.WriteCloser) (err error) {
	defer func() {
		err = errors.Join(err, w.Close())
	}()
	return nil
}

// reviewed shows the escape hatch.
func reviewed(w io.WriteCloser) {
	//lint:close best-effort teardown on the error path; primary error already reported
	w.Close()
}

func main() {}
