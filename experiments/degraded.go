package experiments

// Degraded-mode experiments: how each interrupt-scheduling policy
// behaves when the cluster is unhealthy. These do not reproduce a paper
// figure — the paper evaluates healthy clusters only — but they answer
// the natural robustness question: does source-aware steering still pay
// off when frames are being lost, and does it recover from a server
// crash as cleanly as the baselines?
//
// Two shapes are provided. DegradedSweep measures read latency (mean
// and P99) and goodput across a loss-rate × policy grid, with the
// client retry machinery absorbing the loss. ChaosScenario runs a
// scripted crash-and-recover timeline from a faults.Plan and reports
// the downtime and recovery accounting per policy. Both are
// deterministic functions of their configuration and seeds: rendering
// a report twice from the same spec yields byte-identical text.

import (
	"context"
	"fmt"
	"strings"

	"sais/cluster"
	"sais/internal/faults"
	"sais/internal/irqsched"
	"sais/internal/metrics"
	"sais/internal/runner"
	"sais/internal/units"
)

// DegradedPolicies is the policy set of the degraded-mode study: the
// paper's two protagonists plus naive round-robin as a floor.
var DegradedPolicies = []irqsched.PolicyKind{
	irqsched.PolicySourceAware,
	irqsched.PolicyIrqbalance,
	irqsched.PolicyRoundRobin,
}

// DegradedLossRates is the frame-loss grid of the sweep.
var DegradedLossRates = []float64{0, 0.001, 0.01, 0.05}

// DegradedSweep is a loss-rate × policy latency study.
type DegradedSweep struct {
	Title     string
	LossRates []float64
	Policies  []irqsched.PolicyKind
	// Config is the base cluster; loss rate, policy, and seed are
	// overridden per cell. It must enable retries, or lossy cells
	// cannot complete their transfers.
	Config   cluster.Config
	Seeds    int
	Parallel int
	Progress func(done, total int)
}

// DegradedCell is one (loss rate, policy) measurement, averaged over
// the seeds.
type DegradedCell struct {
	LossRate float64
	Policy   string
	// LatencyMean and LatencyP99 are read-transfer latencies in
	// milliseconds; abandoned transfers contribute their
	// time-to-failure.
	LatencyMean metrics.Summary
	LatencyP99  metrics.Summary
	// Bandwidth is goodput in MB/s.
	Bandwidth metrics.Summary
	// Goodput is delivered bytes over offered bytes, averaged.
	Goodput metrics.Summary
	// Totals across all seeded runs of the cell.
	FailedOps     uint64
	StripsRetried uint64
	FramesDropped uint64
}

// DegradedReport is a completed sweep.
type DegradedReport struct {
	Title string
	Cells []DegradedCell
}

// Degraded returns the default degraded-mode sweep: the §V testbed
// scaled down for turnaround, 8 servers, retries on, loss from 0 to 5 %
// across SAIs, irqbalance, and round-robin.
func Degraded() DegradedSweep {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 8
	cfg.TransferSize = 256 * units.KiB
	cfg.BytesPerProc = 2 * units.MiB
	// The timeout sits above the healthy P99 so the 0% row shows no
	// spurious retries; lossy rows still converge well within 12 tries.
	cfg.RetryTimeout = 40 * units.Millisecond
	cfg.MaxRetries = 12
	return DegradedSweep{
		Title:     "Degraded mode: read latency vs frame loss per policy",
		LossRates: DegradedLossRates,
		Policies:  DegradedPolicies,
		Config:    cfg,
		Seeds:     3,
	}
}

// Run executes the sweep.
func (d DegradedSweep) Run() (*DegradedReport, error) {
	return d.RunContext(context.Background())
}

// RunContext executes the sweep under ctx. Cells run on the shared
// runner engine, results landing at fixed indices, so the report is
// identical regardless of worker count.
func (d DegradedSweep) RunContext(ctx context.Context) (*DegradedReport, error) {
	if len(d.LossRates) == 0 || len(d.Policies) == 0 {
		return nil, fmt.Errorf("experiments: degraded sweep needs loss rates and policies")
	}
	seeds := d.Seeds
	if seeds < 1 {
		seeds = 3
	}
	n := len(d.LossRates) * len(d.Policies)
	//lint:goroutine runner.Map joins all workers and returns rows in point order; per-cell output is seed-deterministic
	cells, err := runner.Map(ctx, n,
		runner.Options{Workers: d.Parallel, OnProgress: d.Progress},
		func(ctx context.Context, i int) (DegradedCell, error) {
			loss := d.LossRates[i/len(d.Policies)]
			pol := d.Policies[i%len(d.Policies)]
			return d.runCell(ctx, loss, pol, seeds)
		})
	if err != nil {
		return nil, err
	}
	return &DegradedReport{Title: d.Title, Cells: cells}, nil
}

// runCell measures one (loss, policy) cell over the seeds.
func (d DegradedSweep) runCell(ctx context.Context, loss float64, pol irqsched.PolicyKind, seeds int) (DegradedCell, error) {
	cell := DegradedCell{LossRate: loss, Policy: pol.String()}
	for s := 0; s < seeds; s++ {
		cfg := d.Config
		cfg.Policy = pol
		cfg.Seed = uint64(s + 1)
		plan := cfg.Faults.Clone()
		if plan == nil {
			plan = &faults.Plan{}
		}
		plan.Loss = loss
		cfg.Faults = plan
		res, err := cluster.RunContext(ctx, cfg)
		if err != nil {
			return DegradedCell{}, fmt.Errorf("degraded loss=%g/%s: %w", loss, pol, err)
		}
		cell.LatencyMean.Add(float64(res.LatencyMean) / 1e6)
		cell.LatencyP99.Add(float64(res.LatencyP99) / 1e6)
		cell.Bandwidth.Add(float64(res.Bandwidth) / 1e6)
		if res.Faults.OfferedBytes > 0 {
			cell.Goodput.Add(float64(res.Faults.GoodputBytes) / float64(res.Faults.OfferedBytes))
		}
		cell.FailedOps += res.Faults.FailedOps
		cell.StripsRetried += res.Faults.StripsRetried
		cell.FramesDropped += res.Faults.FramesDropped
	}
	return cell, nil
}

// Table renders the sweep as a fixed-width text table, one row per
// (loss, policy) cell.
func (r *DegradedReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-8s %-12s %14s %14s %12s %9s %8s %9s\n",
		"loss", "policy", "mean lat (ms)", "P99 lat (ms)", "MB/s", "goodput", "failed", "retried")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-8s %-12s %14.3f %14.3f %12.1f %8.1f%% %8d %9d\n",
			fmt.Sprintf("%g%%", c.LossRate*100), c.Policy,
			c.LatencyMean.Mean(), c.LatencyP99.Mean(), c.Bandwidth.Mean(),
			c.Goodput.Mean()*100, c.FailedOps, c.StripsRetried)
	}
	return b.String()
}

// CSV renders the sweep as comma-separated rows with a header line.
func (r *DegradedReport) CSV() string {
	var b strings.Builder
	b.WriteString("loss_rate,policy,latency_mean_ms,latency_p99_ms,bandwidth_mbps,goodput,failed_ops,strips_retried,frames_dropped\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%g,%s,%.6f,%.6f,%.6f,%.6f,%d,%d,%d\n",
			c.LossRate, c.Policy, c.LatencyMean.Mean(), c.LatencyP99.Mean(),
			c.Bandwidth.Mean(), c.Goodput.Mean(), c.FailedOps, c.StripsRetried, c.FramesDropped)
	}
	return b.String()
}

// ChaosScenario is a scripted crash-and-recover run compared across
// policies: one faults.Plan timeline, identical seeds, one row of
// recovery accounting per policy.
type ChaosScenario struct {
	Title    string
	Plan     *faults.Plan
	Policies []irqsched.PolicyKind
	Config   cluster.Config
	Seed     uint64
	Parallel int
}

// ChaosRow is one policy's recovery accounting.
type ChaosRow struct {
	Policy        string
	Duration      units.Time
	Bandwidth     units.Rate
	Downtime      units.Time // total injected server downtime
	RecoveryTime  units.Time // run time past the last revive
	StripsRetried uint64
	FailedOps     uint64
	Crashes       int
}

// ChaosReport is a completed scenario.
type ChaosReport struct {
	Title string
	Rows  []ChaosRow
}

// CrashAndRecover returns the default chaos scenario: server 0 crashes
// shortly into the run and revives 30 ms later; clients ride through on
// retries. The plan also degrades the fabric 2× during the outage, the
// way a real switch behaves while rerouting around a dead port.
func CrashAndRecover() ChaosScenario {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 8
	cfg.TransferSize = 256 * units.KiB
	cfg.BytesPerProc = 2 * units.MiB
	cfg.RetryTimeout = 20 * units.Millisecond
	cfg.MaxRetries = 12
	crashAt := 5 * units.Millisecond
	reviveAt := crashAt + 30*units.Millisecond
	return ChaosScenario{
		Title: "Chaos: crash server 0 at 5ms, revive at 35ms, degraded fabric during the outage",
		Plan: &faults.Plan{
			Timeline: []faults.TimelineEvent{
				{At: crashAt, Kind: faults.KindCrash, Server: 0},
				{At: crashAt, Kind: faults.KindDegradeLink, Factor: 2},
				{At: reviveAt, Kind: faults.KindRevive, Server: 0},
				{At: reviveAt, Kind: faults.KindDegradeLink, Factor: 1},
			},
		},
		Policies: DegradedPolicies,
		Config:   cfg,
		Seed:     1,
	}
}

// Run executes the scenario.
func (c ChaosScenario) Run() (*ChaosReport, error) {
	return c.RunContext(context.Background())
}

// RunContext executes the scenario under ctx, one run per policy.
func (c ChaosScenario) RunContext(ctx context.Context) (*ChaosReport, error) {
	if len(c.Policies) == 0 {
		return nil, fmt.Errorf("experiments: chaos scenario needs policies")
	}
	//lint:goroutine runner.Map joins all workers and returns rows in point order; per-cell output is seed-deterministic
	rows, err := runner.Map(ctx, len(c.Policies),
		runner.Options{Workers: c.Parallel},
		func(ctx context.Context, i int) (ChaosRow, error) {
			cfg := c.Config
			cfg.Policy = c.Policies[i]
			cfg.Faults = c.Plan.Clone()
			cfg.Seed = c.Seed
			if cfg.Seed == 0 {
				cfg.Seed = 1
			}
			res, err := cluster.RunContext(ctx, cfg)
			if err != nil {
				return ChaosRow{}, fmt.Errorf("chaos/%s: %w", c.Policies[i], err)
			}
			var down units.Time
			for _, d := range res.Faults.ServerDowntime {
				down += d
			}
			return ChaosRow{
				Policy:        res.Policy,
				Duration:      res.Duration,
				Bandwidth:     res.Bandwidth,
				Downtime:      down,
				RecoveryTime:  res.Faults.RecoveryTime,
				StripsRetried: res.Faults.StripsRetried,
				FailedOps:     res.Faults.FailedOps,
				Crashes:       res.Faults.Crashes,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &ChaosReport{Title: c.Title, Rows: rows}, nil
}

// Table renders the scenario as a fixed-width text table.
func (r *ChaosReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-12s %12s %10s %12s %12s %8s %7s\n",
		"policy", "duration", "MB/s", "downtime", "recovery", "retried", "failed")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12v %10.1f %12v %12v %8d %7d\n",
			row.Policy, row.Duration, float64(row.Bandwidth)/1e6,
			row.Downtime, row.RecoveryTime, row.StripsRetried, row.FailedOps)
	}
	return b.String()
}

// CSV renders the scenario as comma-separated rows with a header line.
func (r *ChaosReport) CSV() string {
	var b strings.Builder
	b.WriteString("policy,duration_ns,bandwidth_mbps,downtime_ns,recovery_ns,strips_retried,failed_ops,crashes\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%.6f,%d,%d,%d,%d,%d\n",
			row.Policy, int64(row.Duration), float64(row.Bandwidth)/1e6,
			int64(row.Downtime), int64(row.RecoveryTime),
			row.StripsRetried, row.FailedOps, row.Crashes)
	}
	return b.String()
}
