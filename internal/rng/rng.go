// Package rng provides the simulator's deterministic random number
// source. Every stochastic component (disk positioning jitter, server
// think time, workload arrivals) draws from an explicitly seeded Source
// so that a run is a pure function of its configuration and seed —
// the global math/rand state is never used.
//
// The generator is splitmix64 feeding xoshiro256**, the same
// construction used by modern language runtimes; it is fast, has a
// 2^256-1 period, and passes BigCrush.
package rng

import "math"

// Source is a deterministic pseudo-random number generator. It is not
// safe for concurrent use; each simulated component owns its own Source
// (derived via Split) so event-ordering changes in one component do not
// perturb another's draws.
type Source struct {
	s [4]uint64

	// cached Zipf inverse-CDF table (see Zipf).
	zipfCDF []float64
	zipfN   int
	zipfS   float64
}

// splitmix64 advances a 64-bit state and returns a well-mixed output.
// It is used to expand seeds into xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive maps a (seed, stream) pair to an independent child seed with a
// splitmix64-style finalizer. Unlike naive `seed + stream`, adjacent
// (seed, stream) pairs never alias: Derive(s, i) != Derive(s+1, i-1),
// so repeat runs with consecutive root seeds stay uncorrelated.
func Derive(seed, stream uint64) uint64 {
	x := seed + (stream+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give
// independent-looking streams; the zero seed is valid.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the source as if created by New(seed).
func (r *Source) Reseed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
}

// Split derives a new independent Source from r, keyed by label so the
// same component always receives the same stream regardless of the
// order components are constructed in.
func (r *Source) Split(label string) *Source {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(h ^ r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	thresh := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= thresh {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Unit01 maps a well-mixed 64-bit value (e.g. a Derive output) to a
// uniform float64 in [0, 1) — the stateless counterpart of Float64,
// used for keyed decisions that must not depend on draw order.
func Unit01(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, via the polar Box-Muller transform.
func (r *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// TruncNormal returns a normal draw clamped to [lo, hi]. It is used for
// physical quantities (seek times, think times) that must stay bounded.
func (r *Source) TruncNormal(mean, stddev, lo, hi float64) float64 {
	v := r.Normal(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Perm returns a uniform random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes s in place.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Zipf returns a Zipf-distributed value in [0, n) with exponent s > 0:
// P(k) ∝ 1/(k+1)^s. It uses inverse-CDF sampling over a lazily built
// table, which is exact and fast for the bounded n a simulation uses
// (file-popularity skew, hot servers). The table is cached on the
// Source keyed by (n, s).
func (r *Source) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if s <= 0 {
		panic("rng: Zipf with non-positive exponent")
	}
	if r.zipfN != n || r.zipfS != s {
		cdf := make([]float64, n)
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += 1 / math.Pow(float64(k+1), s)
			cdf[k] = sum
		}
		for k := range cdf {
			cdf[k] /= sum
		}
		r.zipfCDF, r.zipfN, r.zipfS = cdf, n, s
	}
	u := r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if r.zipfCDF[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
