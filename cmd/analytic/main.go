// Command analytic prints the §III model's predictions for a cluster
// shape: the balanced-scheduling lower bound, the source-aware time,
// the guaranteed advantage (inequality 9), and the speed-up bound as TR
// varies — the closed-form companion to the simulator.
//
// Example:
//
//	analytic -cores 8 -servers 48 -requests 100 -P 20us -M 200us
package main

import (
	"flag"
	"fmt"
	"os"

	"sais/internal/analytic"
	"sais/internal/units"
)

func main() {
	var (
		cores    = flag.Int("cores", 8, "client cores (NC)")
		servers  = flag.Int("servers", 16, "I/O servers (NS, multiple of NC)")
		requests = flag.Int("requests", 100, "I/O requests (NR)")
		programs = flag.Int("programs", 2, "programs on the client (NP)")
		pUS      = flag.Float64("P", 20, "strip processing time in µs")
		mUS      = flag.Float64("M", 200, "strip migration time in µs")
		trMS     = flag.Float64("TR", 5, "network+server time in ms")
	)
	flag.Parse()

	p := analytic.Params{
		P:  units.Time(*pUS * float64(units.Microsecond)),
		M:  units.Time(*mUS * float64(units.Microsecond)),
		TR: units.Time(*trMS * float64(units.Millisecond)),
		NC: *cores,
		NS: *servers,
		NR: *requests,
		NP: *programs,
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "analytic:", err)
		os.Exit(1)
	}

	fmt.Printf("model inputs: NC=%d NS=%d (α=%d) NR=%d NP=%d  P=%v M=%v TR=%v\n",
		p.NC, p.NS, p.Alpha(), p.NR, p.NP, p.P, p.M, p.TR)
	if !p.MDominatesP() {
		fmt.Println("warning: M is not >> P; the paper's assumption is weak here")
	}
	fmt.Printf("T_balanced lower bound (eq 3/6): %v\n", p.TBalancedLower())
	fmt.Printf("T_source-aware (eq 4/5):         %v\n", p.TSourceAware())
	lo, hi := p.TSourceAwareMulti()
	fmt.Printf("T_source-aware, NP programs (8): [%v, %v]\n", lo, hi)
	fmt.Printf("guaranteed advantage (eq 9):     %v\n", p.AdvantageLower())
	fmt.Printf("speed-up bound:                  %.2f%%\n", p.SpeedupBound()*100)
	fmt.Printf("source-aware wins:               %v\n", p.SourceAwareWins())

	fmt.Println("\nspeed-up bound vs TR (the 1-Gbit compression effect):")
	for _, tr := range []units.Time{0, units.Millisecond, 10 * units.Millisecond,
		100 * units.Millisecond, units.Second} {
		q := p
		q.TR = tr
		fmt.Printf("  TR=%-8v -> %.2f%%\n", tr, q.SpeedupBound()*100)
	}
}
