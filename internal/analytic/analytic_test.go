package analytic

import (
	"testing"
	"testing/quick"

	"sais/internal/rng"
	"sais/internal/units"
)

func base() Params {
	return Params{
		P:  20 * units.Microsecond,
		M:  200 * units.Microsecond,
		TR: 5 * units.Millisecond,
		NC: 8,
		NS: 16,
		NR: 100,
		NP: 2,
	}
}

func TestValidate(t *testing.T) {
	if err := base().Validate(); err != nil {
		t.Errorf("base params rejected: %v", err)
	}
	mods := []func(*Params){
		func(p *Params) { p.P = 0 },
		func(p *Params) { p.M = -1 },
		func(p *Params) { p.TR = -1 },
		func(p *Params) { p.NC = 0 },
		func(p *Params) { p.NS = 0 },
		func(p *Params) { p.NR = 0 },
		func(p *Params) { p.NP = -1 },
		func(p *Params) { p.NS = 17 }, // not a multiple of NC
	}
	for i, mod := range mods {
		p := base()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAlphaAndDominance(t *testing.T) {
	p := base()
	if p.Alpha() != 2 {
		t.Errorf("alpha = %d, want 2", p.Alpha())
	}
	if !p.MDominatesP() {
		t.Error("M=10P should count as dominant")
	}
	p.M = 5 * p.P
	if p.MDominatesP() {
		t.Error("M=5P should not count as dominant")
	}
}

func TestEquations(t *testing.T) {
	p := base()
	// (3)/(6): TR + M·α·(NC−1)·NR = 5ms + 200µs·2·7·100 = 5ms + 280ms.
	if got, want := p.TBalancedLower(), 5*units.Millisecond+280*units.Millisecond; got != want {
		t.Errorf("TBalancedLower = %v, want %v", got, want)
	}
	// (4)/(5): TR + P·NS·NR = 5ms + 20µs·16·100 = 5ms + 32ms.
	if got, want := p.TSourceAware(), 5*units.Millisecond+32*units.Millisecond; got != want {
		t.Errorf("TSourceAware = %v, want %v", got, want)
	}
	// (9): (NC−1)·NR·α·(M−P) = 7·100·2·180µs = 252ms.
	if got, want := p.AdvantageLower(), 252*units.Millisecond; got != want {
		t.Errorf("AdvantageLower = %v, want %v", got, want)
	}
}

func TestMultiProgramBounds(t *testing.T) {
	p := base()
	lo, hi := p.TSourceAwareMulti()
	if hi != p.TSourceAware() {
		t.Errorf("upper bound %v != single-program time", hi)
	}
	// NP=2: lower = TR + P·NS·NR/2 = 5ms + 16ms.
	if want := 5*units.Millisecond + 16*units.Millisecond; lo != want {
		t.Errorf("lower bound = %v, want %v", lo, want)
	}
	// NP beyond NC clamps at NC.
	p.NP = 100
	lo, _ = p.TSourceAwareMulti()
	if want := 5*units.Millisecond + 4*units.Millisecond; lo != want {
		t.Errorf("clamped lower bound = %v, want %v", lo, want)
	}
	// NP <= 1 degenerates to the single-program time.
	p.NP = 0
	lo, hi = p.TSourceAwareMulti()
	if lo != hi || lo != p.TSourceAware() {
		t.Errorf("NP=0 bounds = %v, %v", lo, hi)
	}
}

// Property (the paper's central claim): whenever M > P and NC > 1, the
// balanced lower bound exceeds the source-aware time by at least
// AdvantageLower — i.e. T_balanced − T_sais ≥ (NC−1)·NR·α·(M−P) ≥ 0.
func TestOrderingProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		p := Params{
			P:  units.Time(r.Intn(100)+1) * units.Microsecond,
			TR: units.Time(r.Intn(20)) * units.Millisecond,
			NC: r.Intn(7) + 2, // ≥ 2
			NR: r.Intn(500) + 1,
			NP: r.Intn(8),
		}
		p.M = p.P + units.Time(r.Intn(400)+1)*units.Microsecond // M > P
		p.NS = p.NC * (r.Intn(6) + 1)
		if p.Validate() != nil {
			return false
		}
		if !p.SourceAwareWins() {
			return false
		}
		diff := p.TBalancedLower() - p.TSourceAware()
		adv := p.AdvantageLower()
		if adv <= 0 {
			return false
		}
		// The bound in the paper drops the α-vs-(NC-1)/NC slack, so the
		// realized difference must be at least adv minus the slack term
		// P·NS·NR − P·α·(NC−1)·NR = P·α·NR.
		slack := units.Time(int64(p.P) * int64(p.Alpha()) * int64(p.NR))
		return diff >= adv-slack
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestSpeedupBoundShrinksWithTR(t *testing.T) {
	small := base()
	big := base()
	big.TR = 500 * units.Millisecond
	if small.SpeedupBound() <= big.SpeedupBound() {
		t.Errorf("speedup bound %v should shrink as TR grows to %v",
			small.SpeedupBound(), big.SpeedupBound())
	}
	if s := small.SpeedupBound(); s <= 0 || s >= 1 {
		t.Errorf("speedup bound = %v outside (0,1)", s)
	}
}

func TestSpeedupBoundZeroWhenBalancedWins(t *testing.T) {
	p := base()
	p.M = p.P / 2 // migration cheaper than processing: model favors balance
	if got := p.SpeedupBound(); got != 0 {
		t.Errorf("speedup bound = %v, want 0", got)
	}
}

func TestMaxConcurrentRequests(t *testing.T) {
	// 375 MB/s, 1 MiB requests: ~357 requests/s regardless of NS.
	got := MaxConcurrentRequests(units.Rate(375e6), 16, units.MiB)
	if got < 350 || got > 360 {
		t.Errorf("request budget = %d, want ≈357", got)
	}
	if MaxConcurrentRequests(0, 16, units.MiB) != 0 {
		t.Error("zero bandwidth should give zero budget")
	}
	if MaxConcurrentRequests(units.Rate(1e6), 0, units.MiB) != 0 {
		t.Error("zero servers should give zero budget")
	}
}
