// Package analytic implements the quantitative model of the paper's
// §III: closed-form bounds on the completion time of balanced versus
// source-aware interrupt scheduling in terms of the strip-processing
// cost P, the strip-migration cost M, the network-and-server time TR,
// and the cluster shape (NC client cores, NS servers, NR requests, NP
// programs). The simulator is cross-checked against these bounds in
// tests; cmd/analytic prints them.
package analytic

import (
	"fmt"

	"sais/internal/units"
)

// Params are the model inputs. The paper assumes NS = α × NC for a
// positive integer α, and M >> P.
type Params struct {
	P  units.Time // processing time of one data strip
	M  units.Time // migration time of one strip between cores
	TR units.Time // network + server time, policy-independent
	NC int        // client cores
	NS int        // I/O server nodes
	NR int        // I/O requests issued by the client
	NP int        // concurrent programs on the client
}

// Validate checks the model's structural assumptions.
func (p Params) Validate() error {
	switch {
	case p.P <= 0 || p.M <= 0:
		return fmt.Errorf("analytic: P and M must be positive")
	case p.TR < 0:
		return fmt.Errorf("analytic: negative TR")
	case p.NC <= 0 || p.NS <= 0:
		return fmt.Errorf("analytic: NC and NS must be positive")
	case p.NR <= 0:
		return fmt.Errorf("analytic: NR must be positive")
	case p.NP < 0:
		return fmt.Errorf("analytic: negative NP")
	case p.NS%p.NC != 0:
		return fmt.Errorf("analytic: the model assumes NS = α×NC; %d %% %d != 0", p.NS, p.NC)
	}
	return nil
}

// Alpha returns α = NS / NC.
func (p Params) Alpha() int { return p.NS / p.NC }

// MDominatesP reports whether the paper's M >> P assumption plausibly
// holds (at least one decimal order of magnitude).
func (p Params) MDominatesP() bool { return p.M >= 10*p.P }

// TBalancedLower is inequality (3)/(6): the lower bound on balanced
// scheduling's completion time,
//
//	T_balanced ≥ TR + M × α × (NC−1) × NR.
func (p Params) TBalancedLower() units.Time {
	return p.TR + units.Time(int64(p.M)*int64(p.Alpha())*int64(p.NC-1)*int64(p.NR))
}

// TSourceAware is equation (4)/(5): the source-aware completion time
// with no migration cost,
//
//	T_source-aware = TR + P × NS × NR.
func (p Params) TSourceAware() units.Time {
	return p.TR + units.Time(int64(p.P)*int64(p.NS)*int64(p.NR))
}

// TSourceAwareMulti is inequality (8): with NP ≤ NC programs the
// source-aware time lies in
//
//	TR + P×NS×NR/NP ≤ T ≤ TR + P×NS×NR.
//
// It returns (lower, upper). With NP == 0 or 1 both bounds equal
// TSourceAware.
func (p Params) TSourceAwareMulti() (lo, hi units.Time) {
	hi = p.TSourceAware()
	np := p.NP
	if np <= 1 {
		return hi, hi
	}
	if np > p.NC {
		np = p.NC // at most NC interrupts handled concurrently
	}
	lo = p.TR + units.Time(int64(p.P)*int64(p.NS)*int64(p.NR)/int64(np))
	return lo, hi
}

// AdvantageLower is inequality (9): the lower bound on the completion
// time difference,
//
//	T_balanced − T_source-aware ≥ (NC−1) × NR × α × (M−P).
func (p Params) AdvantageLower() units.Time {
	d := int64(p.M) - int64(p.P)
	return units.Time(int64(p.NC-1) * int64(p.NR) * int64(p.Alpha()) * d)
}

// SourceAwareWins reports whether the model predicts a strict win for
// source-aware scheduling: AdvantageLower positive, which for NC > 1
// reduces to M > P.
func (p Params) SourceAwareWins() bool {
	return p.NC > 1 && p.M > p.P
}

// MaxConcurrentRequests is inequality (7): the largest NR such that
// NR × NS × sizeReq stays within the client bandwidth budget per unit
// time; beyond it, raising NS stops paying off because NR must drop.
func MaxConcurrentRequests(bandwidth units.Rate, ns int, sizeReq units.Bytes) int {
	if bandwidth <= 0 || ns <= 0 || sizeReq <= 0 {
		return 0
	}
	perSecond := float64(bandwidth)
	return int(perSecond / (float64(ns) * float64(sizeReq)) * float64(ns))
	// Note: NR here counts requests per second across the client; the
	// ns factor cancels — the constraint (7) binds NR×NS for fixed
	// request size, so we report the client-wide request budget.
}

// SpeedupBound returns the model's predicted relative improvement
// (T_balanced_lower − T_source-aware) / T_balanced_lower, clamped to
// [0, 1). It quantifies how the benefit shrinks as TR grows — the
// paper's explanation for the 1-Gigabit results.
func (p Params) SpeedupBound() float64 {
	tb := p.TBalancedLower()
	ts := p.TSourceAware()
	if tb <= 0 || ts >= tb {
		return 0
	}
	return float64(tb-ts) / float64(tb)
}
