// Command benchcheck records and compares Go benchmark results so the
// repository carries a perf trajectory (benchstat is not vendored; this
// covers the record/compare workflow with no dependencies).
//
// It reads `go test -bench` output on stdin. With -record it writes a
// JSON baseline (per-benchmark median ns/op plus allocation counters);
// with -baseline it compares the run against a committed baseline and
// prints a table of deltas. Comparison is warn-only by default; with
// -strict a regression beyond a benchmark's tolerance band (or any
// allocs/op growth) fails the build. Each baseline entry may carry its
// own "tolerance" — the relative ns/op slack before a run counts as a
// regression — so noisy macro-benchmarks can run with a wider band
// than steady hot-path microbenchmarks; entries without one use the
// 0.20 default. Re-recording preserves the tolerances already in the
// baseline file.
//
//	go test -bench EngineHot -benchmem -count 5 ./internal/sim | benchcheck -record BENCH_sim.json
//	go test -bench EngineHot -benchmem -count 5 ./internal/sim | benchcheck -baseline BENCH_sim.json -strict
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is the recorded shape of one benchmark.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`     // median across -count runs
	BytesPerOp  float64 `json:"bytes_per_op"`  // median B/op (with -benchmem)
	AllocsPerOp float64 `json:"allocs_per_op"` // median allocs/op
	Runs        int     `json:"runs"`          // samples aggregated
	// Tolerance is this benchmark's relative ns/op regression band;
	// 0 means the defaultTolerance. Hand-edit it in the baseline for
	// benchmarks whose run-to-run noise exceeds the default.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// Baseline is the committed JSON file.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// defaultTolerance is the relative ns/op regression that triggers a
// warning when the baseline entry carries no tolerance of its own.
const defaultTolerance = 0.20

func main() {
	record := flag.String("record", "", "write the parsed results as a JSON baseline to this file")
	baseline := flag.String("baseline", "", "compare the parsed results against this JSON baseline")
	strict := flag.Bool("strict", false, "exit non-zero when a comparison exceeds its tolerance band")
	flag.Parse()
	if (*record == "") == (*baseline == "") {
		fmt.Fprintln(os.Stderr, "benchcheck: exactly one of -record or -baseline is required")
		os.Exit(2)
	}

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *record != "" {
		// Re-recording keeps any hand-set tolerance bands.
		if old, err := load(*record); err == nil {
			for name, r := range results {
				if prev, ok := old.Benchmarks[name]; ok && prev.Tolerance != 0 {
					r.Tolerance = prev.Tolerance
					results[name] = r
				}
			}
		}
		b := Baseline{
			Note:       "Recorded by `make bench-record`; gated by `make bench-check` (strict, per-benchmark tolerance bands).",
			Benchmarks: results,
		}
		buf, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*record, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		fmt.Printf("benchcheck: recorded %d benchmarks to %s\n", len(results), *record)
		return
	}

	warned := compare(*baseline, results)
	if warned > 0 && *strict {
		fmt.Fprintf(os.Stderr, "benchcheck: %d regression(s) beyond tolerance; failing (-strict)\n", warned)
		os.Exit(1)
	}
}

// load reads a baseline file.
func load(path string) (Baseline, error) {
	var base Baseline
	buf, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	err = json.Unmarshal(buf, &base)
	return base, err
}

// compare prints per-benchmark deltas against the committed baseline
// and returns the number of out-of-tolerance findings.
func compare(path string, got map[string]Result) int {
	base, err := load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: no baseline (%v); run `make bench-record` to create one\n", err)
		return 0
	}
	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)
	warned := 0
	fmt.Printf("%-52s %12s %12s %8s\n", "benchmark", "base ns/op", "now ns/op", "delta")
	for _, name := range names {
		cur := got[name]
		old, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("%-52s %12s %12.1f %8s\n", name, "(new)", cur.NsPerOp, "")
			continue
		}
		tol := old.Tolerance
		if tol == 0 {
			tol = defaultTolerance
		}
		delta := (cur.NsPerOp - old.NsPerOp) / old.NsPerOp
		mark := ""
		if delta > tol {
			mark = fmt.Sprintf("  WARN: slower than baseline (tolerance %.0f%%)", tol*100)
			warned++
		}
		// Alloc growth: zero-alloc baselines are exact invariants (the
		// engine hot path must stay at 0 allocs/op); non-zero baselines
		// get the same relative band as ns/op.
		if (old.AllocsPerOp == 0 && cur.AllocsPerOp > 0) ||
			(old.AllocsPerOp > 0 && cur.AllocsPerOp > old.AllocsPerOp*(1+tol)) {
			mark += fmt.Sprintf("  WARN: allocs/op %.0f -> %.0f", old.AllocsPerOp, cur.AllocsPerOp)
			warned++
		}
		fmt.Printf("%-52s %12.1f %12.1f %+7.1f%%%s\n", name, old.NsPerOp, cur.NsPerOp, delta*100, mark)
	}
	if warned > 0 {
		fmt.Printf("benchcheck: %d warning(s)\n", warned)
	}
	return warned
}

// parse aggregates `go test -bench` output lines by benchmark name
// (GOMAXPROCS suffix stripped), taking the median of each metric.
func parse(f *os.File) (map[string]Result, error) {
	type samples struct{ ns, bytes, allocs []float64 }
	agg := map[string]*samples{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		s := agg[name]
		if s == nil {
			s = &samples{}
			agg[name] = s
		}
		s.ns = append(s.ns, ns)
		// Optional -benchmem columns: "N B/op  M allocs/op".
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "B/op":
				s.bytes = append(s.bytes, v)
			case "allocs/op":
				s.allocs = append(s.allocs, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]Result, len(agg))
	for name, s := range agg {
		out[name] = Result{
			NsPerOp:     median(s.ns),
			BytesPerOp:  median(s.bytes),
			AllocsPerOp: median(s.allocs),
			Runs:        len(s.ns),
		}
	}
	return out, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
