package analytic_test

import (
	"fmt"

	"sais/internal/analytic"
	"sais/internal/units"
)

// Example reproduces the §III comparison for a mid-sized cluster: with
// M an order of magnitude above P, the balanced lower bound dwarfs the
// source-aware completion time.
func Example() {
	p := analytic.Params{
		P:  20 * units.Microsecond,  // strip processing
		M:  200 * units.Microsecond, // strip migration (M >> P)
		TR: 5 * units.Millisecond,   // network + server time
		NC: 8,                       // client cores
		NS: 16,                      // I/O servers
		NR: 100,                     // requests
		NP: 2,                       // programs
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	fmt.Printf("alpha:             %d\n", p.Alpha())
	fmt.Printf("M >> P:            %v\n", p.MDominatesP())
	fmt.Printf("T_balanced  >=     %v\n", p.TBalancedLower())
	fmt.Printf("T_sais       =     %v\n", p.TSourceAware())
	fmt.Printf("advantage   >=     %v\n", p.AdvantageLower())
	fmt.Printf("sais wins:         %v\n", p.SourceAwareWins())
	// Output:
	// alpha:             2
	// M >> P:            true
	// T_balanced  >=     285ms
	// T_sais       =     37ms
	// advantage   >=     252ms
	// sais wins:         true
}
