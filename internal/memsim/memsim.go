// Package memsim reimplements the paper's §VI RAM-disk experiment as a
// real in-process memory benchmark (not a discrete-event simulation):
//
//   - Si-SAIs: one worker per application reads data strips from the
//     in-memory "server files" and merges them into the destination
//     buffer in a single pass — reader and combiner share an address
//     space and a cache, as the paper's thread pair does.
//
//   - Si-Irqbalance: the reader and the combiner are separate
//     goroutines connected by a channel; strips are staged through an
//     intermediate buffer, doubling the memory traffic — the extra
//     data movement that separate processes on separate cores incur.
//
// Both variants compute the same checksum over the merged data, so a
// correctness check distinguishes real work from dead-code elimination.
package memsim

import (
	"fmt"
	"time"

	"sais/internal/units"
)

// Config sizes the experiment.
type Config struct {
	Servers   int         // in-memory "I/O nodes" (distinct source buffers)
	StripSize units.Bytes // bytes per strip
	Transfer  units.Bytes // bytes per request (multiple of StripSize)
	Requests  int         // requests per application
	Apps      int         // concurrent application pairs
}

// DefaultConfig mirrors the paper's setup: 64 KiB strips, 1 MiB
// transfers (the paper's verified-best buffer size), 8 in-memory I/O
// nodes.
func DefaultConfig() Config {
	return Config{
		Servers:   8,
		StripSize: 64 * units.KiB,
		Transfer:  units.MiB,
		Requests:  64,
		Apps:      1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Servers <= 0:
		return fmt.Errorf("memsim: servers must be positive")
	case c.StripSize <= 0:
		return fmt.Errorf("memsim: strip size must be positive")
	case c.Transfer < c.StripSize || c.Transfer%c.StripSize != 0:
		return fmt.Errorf("memsim: transfer %v must be a positive multiple of strip %v", c.Transfer, c.StripSize)
	case c.Requests <= 0:
		return fmt.Errorf("memsim: requests must be positive")
	case c.Apps <= 0:
		return fmt.Errorf("memsim: apps must be positive")
	}
	return nil
}

// stripsPerRequest returns strips in one transfer.
func (c Config) stripsPerRequest() int { return int(c.Transfer / c.StripSize) }

// Result is one measured run.
type Result struct {
	Mode     string
	Bytes    units.Bytes
	Elapsed  time.Duration
	Rate     units.Rate
	Checksum uint64
}

// files builds the per-server source buffers ("files on the RAM disk"),
// filled with a deterministic pattern.
func (c Config) files() [][]byte {
	perServer := int(c.Transfer) / c.Servers * c.Requests
	if perServer < int(c.StripSize) {
		perServer = int(c.StripSize)
	}
	out := make([][]byte, c.Servers)
	for s := range out {
		buf := make([]byte, perServer)
		x := uint64(s)*0x9e3779b97f4a7c15 + 1
		for i := 0; i < len(buf); i += 8 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			for j := 0; j < 8 && i+j < len(buf); j++ {
				buf[i+j] = byte(x >> (8 * j))
			}
		}
		out[s] = buf
	}
	return out
}

// checksum folds a buffer into 64 bits (FNV-1a over 8-byte strides for
// speed; every byte still reaches the CPU via the copy paths).
func checksum(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i += 64 {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

// appSAIs runs one Si-SAIs application: strips are pulled from the
// server files and merged directly into dest — one pass, one cache.
func (c Config) appSAIs(app int, sum *uint64) units.Bytes {
	files := c.files()
	dest := make([]byte, c.Transfer)
	strips := c.stripsPerRequest()
	var total units.Bytes
	h := uint64(app)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	for r := 0; r < c.Requests; r++ {
		for s := 0; s < strips; s++ {
			src := files[s%c.Servers]
			off := (r*strips/c.Servers + s/c.Servers) * int(c.StripSize) % (len(src) - int(c.StripSize) + 1)
			copy(dest[s*int(c.StripSize):(s+1)*int(c.StripSize)], src[off:off+int(c.StripSize)])
		}
		h = h*1099511628211 ^ checksum(dest)
		total += c.Transfer
	}
	*sum = h
	return total
}

// appIrqbalance runs one Si-Irqbalance application: a reader goroutine
// stages strips into fresh intermediate buffers and hands them over a
// channel; the combiner copies them into dest. Twice the movement.
func (c Config) appIrqbalance(app int, sum *uint64) units.Bytes {
	files := c.files()
	dest := make([]byte, c.Transfer)
	strips := c.stripsPerRequest()
	type staged struct {
		idx int
		buf []byte
	}
	ch := make(chan staged, c.Servers)
	go func() {
		for r := 0; r < c.Requests; r++ {
			for s := 0; s < strips; s++ {
				src := files[s%c.Servers]
				off := (r*strips/c.Servers + s/c.Servers) * int(c.StripSize) % (len(src) - int(c.StripSize) + 1)
				tmp := make([]byte, c.StripSize)
				copy(tmp, src[off:off+int(c.StripSize)]) // movement 1
				ch <- staged{idx: s, buf: tmp}
			}
		}
		close(ch)
	}()
	var total units.Bytes
	h := uint64(app)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	received := 0
	for st := range ch {
		copy(dest[st.idx*int(c.StripSize):(st.idx+1)*int(c.StripSize)], st.buf) // movement 2
		received++
		if received == strips {
			h = h*1099511628211 ^ checksum(dest)
			total += c.Transfer
			received = 0
		}
	}
	*sum = h
	return total
}

// appSAIsPair is the paper's literal Si-SAIs construction: a *pair* of
// threads sharing one address space — the reader deposits strips
// directly into the shared destination buffer (no staging copy) and
// signals the combiner, which checksums the assembled transfer. The
// shared buffer is the in-process analogue of the shared cache the
// kernel-level SAIs provides.
func (c Config) appSAIsPair(app int, sum *uint64) units.Bytes {
	files := c.files()
	dest := make([]byte, c.Transfer)
	strips := c.stripsPerRequest()
	requestDone := make(chan struct{})
	ack := make(chan struct{})
	go func() {
		for r := 0; r < c.Requests; r++ {
			for s := 0; s < strips; s++ {
				src := files[s%c.Servers]
				off := (r*strips/c.Servers + s/c.Servers) * int(c.StripSize) % (len(src) - int(c.StripSize) + 1)
				// Single movement, directly into the shared buffer.
				copy(dest[s*int(c.StripSize):(s+1)*int(c.StripSize)], src[off:off+int(c.StripSize)])
			}
			requestDone <- struct{}{}
			<-ack // the combiner owns dest until it has checksummed
		}
		close(requestDone)
	}()
	var total units.Bytes
	h := uint64(app)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	for range requestDone {
		h = h*1099511628211 ^ checksum(dest)
		total += c.Transfer
		ack <- struct{}{}
	}
	*sum = h
	return total
}

// run executes apps concurrently with the given per-app body and times
// the whole batch.
func (c Config) run(mode string, body func(app int, sum *uint64) units.Bytes) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	sums := make([]uint64, c.Apps)
	totals := make([]units.Bytes, c.Apps)
	done := make(chan int, c.Apps)
	start := time.Now() //lint:wallclock memsim measures real host memory bandwidth
	for a := 0; a < c.Apps; a++ {
		a := a
		go func() {
			totals[a] = body(a, &sums[a])
			done <- a
		}()
	}
	for i := 0; i < c.Apps; i++ {
		<-done
	}
	elapsed := time.Since(start) //lint:wallclock memsim measures real host memory bandwidth
	res := &Result{Mode: mode, Elapsed: elapsed}
	for a := 0; a < c.Apps; a++ {
		res.Bytes += totals[a]
		res.Checksum ^= sums[a]
	}
	if elapsed > 0 {
		res.Rate = units.Rate(float64(res.Bytes) / elapsed.Seconds())
	}
	return res, nil
}

// RunSiSAIs measures the source-aware (shared address space) variant
// as a single-pass worker.
func RunSiSAIs(c Config) (*Result, error) { return c.run("si-sais", c.appSAIs) }

// RunSiSAIsPair measures the paper's literal thread-pair construction:
// shared address space, reader + combiner, no staging copy.
func RunSiSAIsPair(c Config) (*Result, error) { return c.run("si-sais-pair", c.appSAIsPair) }

// RunSiIrqbalance measures the split reader/combiner variant.
func RunSiIrqbalance(c Config) (*Result, error) { return c.run("si-irqbalance", c.appIrqbalance) }
