// Fixture for the seedderive analyzer, type-checked as
// sais/internal/scenario: the chaos generator derives every fault
// family's stream from one chaos seed, and the soak loop derives one
// (config, chaos) seed pair per iteration. Both fan-outs must go
// through Derive — the bug class is an iteration counter folded into
// the seed with arithmetic, which correlates adjacent soak runs.
package scenario

// ChaosSpec mirrors the real spec's seed field.
type ChaosSpec struct {
	Seed uint64
}

// Derive stands in for rng.Derive.
func Derive(root, stream uint64) uint64 {
	x := root + (stream+1)*0x9e3779b97f4a7c15
	return x ^ (x >> 31)
}

// badSoakFanOut is the hazard the scenario layer must avoid: soak
// iteration seeds built with raw arithmetic on the root seed.
func badSoakFanOut(spec ChaosSpec, runs int) []uint64 {
	out := make([]uint64, 0, runs)
	for i := 0; i < runs; i++ {
		out = append(out, spec.Seed+uint64(2*i)) // want "arithmetic on seed value Seed"
	}
	return out
}

// badChaosMix folds the fault-family index straight into the seed.
func badChaosMix(cfgSeed uint64, family uint64) uint64 {
	chaosSeed := cfgSeed ^ family // want "arithmetic on seed value cfgSeed"
	return chaosSeed
}

// goodSoakFanOut routes each iteration's pair through Derive; the
// stream index arithmetic (2i, 2i+1) is legal — only the seed itself
// is protected.
func goodSoakFanOut(spec ChaosSpec, runs int) [][2]uint64 {
	out := make([][2]uint64, 0, runs)
	for i := 0; i < runs; i++ {
		out = append(out, [2]uint64{
			Derive(spec.Seed, uint64(2*i)),
			Derive(spec.Seed, uint64(2*i+1)),
		})
	}
	return out
}

// goodChaosDefault mirrors the real generator: a zero spec seed
// derives the chaos stream from the config seed under a fixed label.
func goodChaosDefault(spec ChaosSpec, cfgSeed uint64) uint64 {
	if spec.Seed != 0 {
		return spec.Seed
	}
	return Derive(cfgSeed, 0xc4a05)
}
