package irqsched

// StragglerAware is SAIs steering plus the client-side scheduling of
// Tavakoli et al.: the interrupt side is source-aware (embedded
// SourceAware, so hints, Hinted(), and fallback behave identically),
// while the ReorderIssue trait makes the client issue each transfer's
// per-server strip requests slowest-server-first, so the straggler's
// service time overlaps the faster servers instead of trailing them.
// All the scheduling logic lives in the client (per-server EWMA of
// strip latency); this type exists so the policy is selectable and
// self-describing through the registry like every other baseline.
type StragglerAware struct {
	*SourceAware
}

// NewStragglerAware builds the policy with the default round-robin
// fallback for hint-less interrupts.
func NewStragglerAware() *StragglerAware {
	return &StragglerAware{SourceAware: NewSourceAware(nil)}
}

// Name implements apic.Router, shadowing the embedded SourceAware name.
func (s *StragglerAware) Name() string { return "straggler" }
