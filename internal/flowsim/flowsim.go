// Package flowsim is the analytic half of the hybrid-fidelity workload
// engine (DESIGN.md §14): millions of background users modeled as
// arrival-rate flow processes feeding fluid queues, instead of as
// simulated client nodes exchanging frames.
//
// A TenantShare describes one slice of the background population — its
// share of the users, the mean per-user offered rate, the rate curve
// shape (constant, diurnal, burst), and where its traffic lands (spread
// over the servers, concentrated on a hot subset, or colocated on the
// foreground clients' NICs). The cluster wiring resolves a tenant mix
// into per-station Flows and integrates each Station's fluid state
// forward in fixed rate-update steps.
//
// Determinism and layout invariance: a Station's trajectory is a pure
// function of simulated time. AdvanceTo only completes whole steps, so
// the state a query observes depends on the query's timestamp, never on
// how many queries happened in between — the property that keeps
// sharded runs bit-identical to single-engine runs (the query times
// themselves are layout-invariant, per DESIGN.md §12). All arithmetic
// is straight-line float64 with a fixed iteration order.
package flowsim

import (
	"errors"
	"fmt"
	"math"

	"sais/internal/units"
)

// Typed validation errors, matching the degrade-link<1 precedent:
// invalid hybrid configs are rejected uniformly — the same config is
// rejected at every shard count, so a shards=1 run can never silently
// accept what a sharded run of the same config would refuse.
var (
	// ErrNoTenantMix: BackgroundUsers > 0 with no TenantMix. The mix is
	// the contract that makes the per-shard tenant split explicit; an
	// implicit default would have to be invented at run time, so it is
	// required at every shard count, not just sharded ones.
	ErrNoTenantMix = errors.New("flowsim: background users need an explicit tenant mix")
	// ErrNegativeRate: a tenant's per-user rate is negative.
	ErrNegativeRate = errors.New("flowsim: negative per-user rate")
	// ErrBadShare: a tenant share outside [0, 1].
	ErrBadShare = errors.New("flowsim: tenant share outside [0, 1]")
	// ErrShareSum: the tenant shares do not sum to 1.
	ErrShareSum = errors.New("flowsim: tenant shares must sum to 1")
	// ErrBadShape: unknown rate-curve shape name.
	ErrBadShape = errors.New("flowsim: unknown rate shape")
	// ErrBadPeriod: a shaped (diurnal/burst) tenant without a positive
	// period.
	ErrBadPeriod = errors.New("flowsim: shaped tenant needs a positive period")
	// ErrBadAmplitude: diurnal amplitude outside [0, 1] (an amplitude
	// above 1 would swing the arrival rate negative).
	ErrBadAmplitude = errors.New("flowsim: diurnal amplitude outside [0, 1]")
	// ErrBadDuty: burst duty cycle outside (0, 1].
	ErrBadDuty = errors.New("flowsim: burst duty cycle outside (0, 1]")
	// ErrBadPhase: phase offset outside [0, 1).
	ErrBadPhase = errors.New("flowsim: phase outside [0, 1)")
	// ErrBadColocate: colocated fraction outside [0, 1].
	ErrBadColocate = errors.New("flowsim: colocate fraction outside [0, 1]")
	// ErrBadHotServers: negative hot-server count.
	ErrBadHotServers = errors.New("flowsim: negative hot-server count")
)

// shareSumEps is the tolerance on the tenant shares summing to 1 —
// generous enough for hand-written decimal mixes (0.3 + 0.3 + 0.4),
// tight enough to catch a forgotten tenant.
const shareSumEps = 1e-6

// Shape selects a tenant's rate curve. All shapes are mean-preserving:
// averaged over whole periods, the tenant offers Share × Users ×
// PerUserRate bytes per second regardless of shape.
type Shape int

const (
	// ShapeConstant offers the mean rate at every instant.
	ShapeConstant Shape = iota
	// ShapeDiurnal modulates the mean sinusoidally: rate(t) = mean ×
	// (1 + Amplitude·sin(2π(t/Period + Phase))).
	ShapeDiurnal
	// ShapeBurst is a square wave: the tenant offers mean/Duty during
	// the first Duty fraction of each period and nothing otherwise.
	ShapeBurst
)

// ParseShape maps a TenantShare.Shape string onto the enum. The empty
// string is constant.
func ParseShape(s string) (Shape, error) {
	switch s {
	case "", "constant":
		return ShapeConstant, nil
	case "diurnal":
		return ShapeDiurnal, nil
	case "burst":
		return ShapeBurst, nil
	default:
		return ShapeConstant, fmt.Errorf("%w: %q (want constant, diurnal, or burst)", ErrBadShape, s)
	}
}

// TenantShare is one serializable slice of the background population
// (cluster.Config.TenantMix). Shares must sum to 1 over the mix.
type TenantShare struct {
	// Name labels the tenant in reports.
	Name string
	// Share is this tenant's fraction of the background users.
	Share float64
	// PerUserRate is the mean offered load per user in bytes/second.
	PerUserRate units.Rate
	// Shape selects the rate curve: "", "constant", "diurnal", "burst".
	Shape string `json:",omitempty"`
	// Period is the shape's cycle length (required for diurnal/burst).
	Period units.Time `json:",omitempty"`
	// Amplitude is the diurnal swing in [0, 1].
	Amplitude float64 `json:",omitempty"`
	// Duty is the burst on-fraction in (0, 1].
	Duty float64 `json:",omitempty"`
	// Phase shifts the cycle by this fraction of a period, in [0, 1).
	Phase float64 `json:",omitempty"`
	// Colocate is the fraction of this tenant's traffic that lands on
	// the foreground clients' NICs and cores (noisy neighbors sharing
	// the measured nodes); the rest loads the servers.
	Colocate float64 `json:",omitempty"`
	// HotServers concentrates the tenant's server-side load on the
	// first HotServers servers instead of spreading it uniformly
	// (0 = uniform). Clamped to the server count at resolution time.
	HotServers int `json:",omitempty"`
}

// Validate checks one tenant in isolation. Mix-wide rules (share sum)
// live in ValidateMix.
func (t TenantShare) Validate() error {
	if t.Share < 0 || t.Share > 1 {
		return fmt.Errorf("%w: tenant %q share %v", ErrBadShare, t.Name, t.Share)
	}
	if t.PerUserRate < 0 {
		return fmt.Errorf("%w: tenant %q rate %v", ErrNegativeRate, t.Name, t.PerUserRate)
	}
	shape, err := ParseShape(t.Shape)
	if err != nil {
		return fmt.Errorf("tenant %q: %w", t.Name, err)
	}
	if shape != ShapeConstant && t.Period <= 0 {
		return fmt.Errorf("%w: tenant %q shape %q", ErrBadPeriod, t.Name, t.Shape)
	}
	if shape == ShapeDiurnal && (t.Amplitude < 0 || t.Amplitude > 1) {
		return fmt.Errorf("%w: tenant %q amplitude %v", ErrBadAmplitude, t.Name, t.Amplitude)
	}
	if shape == ShapeBurst && (t.Duty <= 0 || t.Duty > 1) {
		return fmt.Errorf("%w: tenant %q duty %v", ErrBadDuty, t.Name, t.Duty)
	}
	if t.Phase < 0 || t.Phase >= 1 {
		return fmt.Errorf("%w: tenant %q phase %v", ErrBadPhase, t.Name, t.Phase)
	}
	if t.Colocate < 0 || t.Colocate > 1 {
		return fmt.Errorf("%w: tenant %q colocate %v", ErrBadColocate, t.Name, t.Colocate)
	}
	if t.HotServers < 0 {
		return fmt.Errorf("%w: tenant %q hot servers %d", ErrBadHotServers, t.Name, t.HotServers)
	}
	return nil
}

// ValidateMix checks a whole tenant mix: every tenant individually,
// plus the shares summing to 1. An empty mix is ErrNoTenantMix — the
// caller invokes ValidateMix exactly when background users were
// requested.
func ValidateMix(mix []TenantShare) error {
	if len(mix) == 0 {
		return ErrNoTenantMix
	}
	sum := 0.0
	for _, t := range mix {
		if err := t.Validate(); err != nil {
			return err
		}
		sum += t.Share
	}
	if math.Abs(sum-1) > shareSumEps {
		return fmt.Errorf("%w: got %v", ErrShareSum, sum)
	}
	return nil
}

// MixMeanRate returns the aggregate mean offered rate of the mix at the
// given population, in bytes/second — the invariant checker's test for
// "this hybrid run was supposed to offer load".
func MixMeanRate(mix []TenantShare, users int) float64 {
	total := 0.0
	for _, t := range mix {
		total += float64(users) * t.Share * float64(t.PerUserRate)
	}
	return total
}

// Flow is one tenant's resolved arrival process at one station: the
// mean rate this station sees plus the shape parameters. A zero-Rate
// flow is legal (the tenant does not load this station) and keeps the
// flow index aligned with the tenant mix.
type Flow struct {
	Rate      float64 // mean arrival rate at this station, bytes/second
	Shape     Shape
	Period    units.Time
	Amplitude float64
	Duty      float64
	Phase     float64
}

// RateAt evaluates the arrival rate at simulated time t, in
// bytes/second. Pure and branch-stable: the trajectory every station
// integrates is a closed-form function of time.
//saisvet:allocfree
func (f Flow) RateAt(t units.Time) float64 {
	switch f.Shape {
	case ShapeDiurnal:
		pos := cyclePos(t, f.Period, f.Phase)
		return f.Rate * (1 + f.Amplitude*math.Sin(2*math.Pi*pos))
	case ShapeBurst:
		if cyclePos(t, f.Period, f.Phase) < f.Duty {
			return f.Rate / f.Duty
		}
		return 0
	default:
		return f.Rate
	}
}

// cyclePos returns the position inside the current cycle as a fraction
// in [0, 1).
//saisvet:allocfree
func cyclePos(t, period units.Time, phase float64) float64 {
	pos := float64(t)/float64(period) + phase
	return pos - math.Floor(pos)
}

// flowFor resolves the shape fields shared by every station the tenant
// touches; rate is filled by the caller.
func flowFor(t TenantShare, rate float64) Flow {
	shape, err := ParseShape(t.Shape)
	if err != nil {
		// Resolution runs after validation; an unknown shape here is a
		// wiring bug, not bad input.
		panic(err)
	}
	return Flow{
		Rate:      rate,
		Shape:     shape,
		Period:    t.Period,
		Amplitude: t.Amplitude,
		Duty:      t.Duty,
		Phase:     t.Phase,
	}
}

// ServerFlows resolves the mix into the per-tenant arrival processes at
// server index server of servers total: the tenant's server-directed
// fraction (1 − Colocate), spread uniformly over either all servers or
// its HotServers prefix. The returned slice is index-aligned with mix.
func ServerFlows(mix []TenantShare, users, server, servers int) []Flow {
	flows := make([]Flow, len(mix))
	for k, t := range mix {
		aggregate := float64(users) * t.Share * float64(t.PerUserRate) * (1 - t.Colocate)
		targets := servers
		if t.HotServers > 0 && t.HotServers < servers {
			targets = t.HotServers
		}
		rate := 0.0
		if server < targets && targets > 0 {
			rate = aggregate / float64(targets)
		}
		flows[k] = flowFor(t, rate)
	}
	return flows
}

// ClientFlows resolves the mix into the per-tenant colocated arrival
// processes at one foreground client of clients total: the tenant's
// Colocate fraction, spread uniformly over the foreground cohort. The
// returned slice is index-aligned with mix.
func ClientFlows(mix []TenantShare, users, clients int) []Flow {
	flows := make([]Flow, len(mix))
	for k, t := range mix {
		rate := 0.0
		if clients > 0 {
			rate = float64(users) * t.Share * float64(t.PerUserRate) * t.Colocate / float64(clients)
		}
		flows[k] = flowFor(t, rate)
	}
	return flows
}

// HasRate reports whether any flow in the slice carries load — the
// cluster wiring skips stations that would integrate zero forever.
func HasRate(flows []Flow) bool {
	for _, f := range flows {
		if f.Rate > 0 {
			return true
		}
	}
	return false
}

// maxLoad caps the utilization Slowdown converts, bounding the
// foreground service-time multiplier at 16× — a saturated fluid queue
// must slow the foreground badly, not wedge the run.
const maxLoad = 0.9375

// Slowdown converts a background utilization u into the foreground
// service-time multiplier of an M/G/1-style shared resource, 1/(1−u),
// clamped to [1, 16]. The clamp is the fidelity boundary of the fluid
// model: past ~94% background load the analytic queue would predict
// unbounded delay, which the full-fidelity path would resolve by
// backpressure the one-way coupling cannot express.
//saisvet:allocfree
func Slowdown(u float64) float64 {
	if u <= 0 {
		return 1
	}
	if u > maxLoad {
		u = maxLoad
	}
	return 1 / (1 - u)
}

// Station is one fluid queue: per-tenant arrival processes draining
// into a shared service capacity (a server NIC, a foreground client's
// ingress). State advances in fixed whole steps of the rate-update
// period; each step integrates arrivals at the step-start rate and
// serves up to capacity×step bytes, splitting service over the flows in
// proportion to their demand (fluid processor sharing).
type Station struct {
	capacity float64 // service capacity, bytes/second
	step     units.Time
	flows    []Flow

	lastT      units.Time
	q          []float64 // per-flow backlog, bytes
	lastServed []float64 // per-flow bytes served in the last completed step
	backlog    float64   // Σ q
	offered    float64   // cumulative arrivals, bytes
	served     float64   // cumulative service, bytes
	load       float64   // utilization over the last completed step
}

// NewStation builds a station. capacity and step must be positive.
func NewStation(capacity units.Rate, step units.Time, flows []Flow) *Station {
	if capacity <= 0 {
		panic("flowsim: non-positive station capacity")
	}
	if step <= 0 {
		panic("flowsim: non-positive rate-update step")
	}
	return &Station{
		capacity:   float64(capacity),
		step:       step,
		flows:      flows,
		q:          make([]float64, len(flows)),
		lastServed: make([]float64, len(flows)),
	}
}

// Step returns the rate-update period.
//saisvet:allocfree
func (st *Station) Step() units.Time { return st.step }

// AdvanceTo integrates the fluid state forward in whole steps, up to
// the last step boundary at or before now. The sub-step remainder stays
// pending, so the observed state is a pure function of now — not of how
// many times, or from which event, the station was queried. now values
// in the past are a no-op (queries arrive in whatever order the event
// pattern produces; the trajectory only moves forward).
//saisvet:allocfree
func (st *Station) AdvanceTo(now units.Time) {
	for st.lastT+st.step <= now {
		st.stepOnce(st.step)
	}
}

// Finalize integrates through now including the final partial step —
// called once at collection time so offered/served accounting covers
// the exact makespan. The station must not be advanced afterwards.
//saisvet:allocfree
func (st *Station) Finalize(now units.Time) {
	st.AdvanceTo(now)
	if now > st.lastT {
		st.stepOnce(now - st.lastT)
	}
}

// stepOnce integrates one interval of length dt starting at lastT.
//saisvet:allocfree
func (st *Station) stepOnce(dt units.Time) {
	sec := float64(dt) * 1e-9 // interval length in seconds
	capBytes := st.capacity * sec
	demand := 0.0
	for i := range st.flows {
		a := st.flows[i].RateAt(st.lastT) * sec
		st.offered += a
		st.q[i] += a
		demand += st.q[i]
	}
	if demand <= capBytes {
		// Underload: everything pending is served within the step.
		for i := range st.q {
			st.lastServed[i] = st.q[i]
			st.q[i] = 0
		}
		st.served += demand
		st.backlog = 0
		st.load = 0
		if capBytes > 0 {
			st.load = demand / capBytes
		}
	} else {
		// Overload: capacity is shared over the flows in proportion to
		// their demand, the remainder queues.
		frac := capBytes / demand
		for i := range st.q {
			s := st.q[i] * frac
			st.lastServed[i] = s
			st.q[i] -= s
		}
		st.served += capBytes
		st.backlog = demand - capBytes
		st.load = 1
	}
	st.lastT += dt
}

// Load returns the background utilization over the last completed step:
// the fraction of the station's capacity the fluid consumed, pinned to
// 1 while a backlog persists. Feed it through Slowdown to scale
// foreground service times.
//saisvet:allocfree
func (st *Station) Load() float64 { return st.load }

// ServedLastStep returns the bytes served for flow i during the last
// completed step — the per-tenant quantum the client wiring converts
// into aggregated interrupt pressure.
//saisvet:allocfree
func (st *Station) ServedLastStep(i int) float64 { return st.lastServed[i] }

// OfferedBytes returns cumulative arrivals, truncated to whole bytes.
func (st *Station) OfferedBytes() units.Bytes { return units.Bytes(st.offered) }

// ServedBytes returns cumulative service, truncated to whole bytes.
func (st *Station) ServedBytes() units.Bytes { return units.Bytes(st.served) }

// BacklogBytes returns the fluid still queued, truncated to whole
// bytes.
func (st *Station) BacklogBytes() units.Bytes { return units.Bytes(st.backlog) }
