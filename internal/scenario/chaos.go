package scenario

import (
	"fmt"

	"sais/internal/faults"
	"sais/internal/rng"
	"sais/internal/units"
)

// chaosStream is the label under which a scenario's chaos seed is
// derived from the config seed when the spec does not pin one.
const chaosStream uint64 = 0xc4a05

// ChaosSpec derives a randomized-but-deterministic fault timeline: the
// same (spec, seed) pair always generates the same faults.Plan, so a
// chaos scenario is as reproducible as a hand-written one — the spec
// describes the *distribution* of trouble, the seed picks the draw.
// Every knob is optional; the zero spec generates an empty plan.
type ChaosSpec struct {
	// Seed pins the chaos draw; 0 derives it from the config seed, so
	// sweeping config seeds sweeps chaos timelines too.
	Seed uint64 `json:",omitempty"`
	// Horizon bounds generated event times (default 40ms) — size it to
	// the expected run length so faults land mid-run, not after it.
	Horizon units.Time `json:",omitempty"`
	// Crashes is the number of crash/revive pairs to inject, each on a
	// randomly drawn server with downtime up to MaxDowntime (default
	// Horizon/4). Every crash gets a revive, so the cluster always
	// heals and the run drains.
	Crashes     int        `json:",omitempty"`
	MaxDowntime units.Time `json:",omitempty"`
	// Stragglers makes that many distinct servers slow: each gets a
	// stall distribution at StallRate (default 0.2) around StallMean
	// (default 1ms).
	Stragglers int        `json:",omitempty"`
	StallRate  float64    `json:",omitempty"`
	StallMean  units.Time `json:",omitempty"`
	// Storms injects that many bounded interrupt storms at StormPeriod
	// (default 50µs per frame), each targeting a randomly drawn client
	// (or all of them).
	Storms      int        `json:",omitempty"`
	StormPeriod units.Time `json:",omitempty"`
	// Degrades injects that many degrade-link episodes, each scaling
	// fabric latency by a factor in [1.5, 4) and then restoring it.
	Degrades int `json:",omitempty"`
	// Loss and Corrupt are passed through to the plan's scalar rates.
	Loss    float64 `json:",omitempty"`
	Corrupt float64 `json:",omitempty"`
}

// Validate checks the spec's ranges.
func (c *ChaosSpec) Validate() error {
	switch {
	case c.Horizon < 0 || c.MaxDowntime < 0 || c.StallMean < 0 || c.StormPeriod < 0:
		return fmt.Errorf("chaos: negative duration")
	case c.Crashes < 0 || c.Stragglers < 0 || c.Storms < 0 || c.Degrades < 0:
		return fmt.Errorf("chaos: negative event count")
	case c.StallRate < 0 || c.StallRate > 1:
		return fmt.Errorf("chaos: stall rate %v outside [0,1]", c.StallRate)
	case c.Loss < 0 || c.Loss >= 1:
		return fmt.Errorf("chaos: loss %v outside [0,1)", c.Loss)
	case c.Corrupt < 0 || c.Corrupt >= 1:
		return fmt.Errorf("chaos: corrupt %v outside [0,1)", c.Corrupt)
	}
	return nil
}

// Generate derives the plan for a cluster of the given shape. Each
// fault family draws from its own labelled sub-stream, so adding storm
// generation never changes which servers crash. The generated plan is
// validated against the shape before it is returned — a generator bug
// surfaces here, not at arm time.
func (c *ChaosSpec) Generate(cfgSeed uint64, servers, clients int) (*faults.Plan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if servers <= 0 || clients <= 0 {
		return nil, fmt.Errorf("chaos: cluster shape %d servers / %d clients", servers, clients)
	}
	seed := c.Seed
	if seed == 0 {
		seed = rng.Derive(cfgSeed, chaosStream)
	}
	root := rng.New(seed)
	horizon := c.Horizon
	if horizon <= 0 {
		horizon = 40 * units.Millisecond
	}
	p := &faults.Plan{Loss: c.Loss, Corrupt: c.Corrupt}

	// Crash/revive pairs. Crashes may overlap on one server — the
	// injector's idempotent semantics absorb that — but every crash is
	// bounded by a revive inside 2×Horizon.
	if c.Crashes > 0 {
		maxDown := c.MaxDowntime
		if maxDown <= 0 {
			maxDown = horizon / 4
		}
		if maxDown < 2 {
			maxDown = 2
		}
		rc := root.Split("chaos/crash")
		for i := 0; i < c.Crashes; i++ {
			srv := rc.Intn(servers)
			at := units.Time(rc.Int63n(int64(horizon)))
			down := 1 + units.Time(rc.Int63n(int64(maxDown)))
			p.Timeline = append(p.Timeline,
				faults.TimelineEvent{At: at, Kind: faults.KindCrash, Server: srv},
				faults.TimelineEvent{At: at + down, Kind: faults.KindRevive, Server: srv},
			)
		}
	}

	// Stragglers: distinct servers (plan validation forbids re-targeting
	// a stalled server), count clamped to the cluster size.
	if c.Stragglers > 0 {
		n := c.Stragglers
		if n > servers {
			n = servers
		}
		rate := c.StallRate
		if rate == 0 {
			rate = 0.2
		}
		mean := c.StallMean
		if mean <= 0 {
			mean = units.Millisecond
		}
		rs := root.Split("chaos/straggle")
		offset := rs.Intn(servers)
		for i := 0; i < n; i++ {
			p.Stalls = append(p.Stalls, faults.Stall{
				Server: (offset + i) % servers,
				Rate:   rate,
				Mean:   mean,
				Jitter: mean / 4,
			})
		}
	}

	// Storms occupy disjoint slots of the horizon so they never nest
	// (plan validation forbids overlapping storms).
	if c.Storms > 0 {
		period := c.StormPeriod
		if period <= 0 {
			period = 50 * units.Microsecond
		}
		rs := root.Split("chaos/storm")
		slot := horizon / units.Time(c.Storms)
		if slot < 4 {
			slot = 4
		}
		for i := 0; i < c.Storms; i++ {
			base := slot * units.Time(i)
			start := base + units.Time(rs.Int63n(int64(slot/2)))
			stop := start + 1 + units.Time(rs.Int63n(int64(slot/4+1)))
			target := rs.Intn(clients+1) - 1 // -1 storms every client
			p.Timeline = append(p.Timeline,
				faults.TimelineEvent{At: start, Kind: faults.KindStormStart,
					Client: target, Period: period},
				faults.TimelineEvent{At: stop, Kind: faults.KindStormStop},
			)
		}
	}

	// Degrade episodes likewise occupy disjoint slots; each scales the
	// fabric latency by a factor in [1.5, 4) and then restores it.
	if c.Degrades > 0 {
		rd := root.Split("chaos/degrade")
		slot := horizon / units.Time(c.Degrades)
		if slot < 4 {
			slot = 4
		}
		for i := 0; i < c.Degrades; i++ {
			base := slot * units.Time(i)
			start := base + units.Time(rd.Int63n(int64(slot/2)))
			end := start + 1 + units.Time(rd.Int63n(int64(slot/4+1)))
			factor := 1.5 + 2.5*rd.Float64()
			p.Timeline = append(p.Timeline,
				faults.TimelineEvent{At: start, Kind: faults.KindDegradeLink, Factor: factor},
				faults.TimelineEvent{At: end, Kind: faults.KindDegradeLink, Factor: 1},
			)
		}
	}

	// Generator sanity check: whatever was drawn must be a valid plan
	// for this cluster shape.
	if err := p.Validate(servers, clients); err != nil {
		return nil, fmt.Errorf("chaos: generated plan invalid: %w", err)
	}
	return p, nil
}
