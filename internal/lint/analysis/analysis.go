// Package analysis is a minimal, dependency-free core of the
// golang.org/x/tools/go/analysis API: an Analyzer owns a Run function
// that inspects one type-checked package through a Pass and reports
// Diagnostics.
//
// The repository cannot assume x/tools is available (the module has no
// external dependencies by policy), so this package re-creates the
// small surface the saisvet analyzers need. The shapes intentionally
// mirror x/tools so the analyzers could be ported to the real framework
// by changing one import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:
	// suppression directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph help text: first sentence states the
	// invariant, the rest explains why it exists and how to suppress.
	Doc string

	// Directives lists the //lint: suppression names this analyzer
	// honors. The union over a suite is the vocabulary waiverhygiene
	// accepts; anything else is a typo.
	Directives []string

	// Run applies the check to a single package.
	Run func(*Pass) (any, error)
}

// Pass presents one type-checked package to an Analyzer and collects
// its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills this in.
	Report func(Diagnostic)

	// Dirs is the package's //lint: suppression index. The driver
	// builds one per package and shares it across every analyzer's
	// Pass, so usage accumulates and stale waivers can be detected
	// after the whole suite has run.
	Dirs *Directives

	// Deps holds the decoded facts of every imported package, keyed by
	// package path. Entries exist only for packages analyzed by this
	// driver (the go command supplies their .vetx files); stdlib and
	// foreign packages are simply absent.
	Deps map[string]*PackageFacts

	// Facts accumulates the facts this package exports. Like Dirs it is
	// shared across the suite: analyzers run in registry order, so a
	// later analyzer may read facts an earlier one exported.
	Facts *PackageFacts
}

// Directives returns the pass's suppression index, building a private
// one on demand when the driver did not supply a shared index.
func (p *Pass) Directives() *Directives {
	if p.Dirs == nil {
		p.Dirs = NewDirectives(p.Fset, p.Files)
	}
	return p.Dirs
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}
