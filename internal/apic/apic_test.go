package apic

import (
	"testing"

	"sais/internal/sim"
	"sais/internal/units"
)

// pickRouter always routes to a fixed core.
type pickRouter struct{ core int }

func (p pickRouter) Route(Vector, int, uint64, []int, units.Time) int { return p.core }
func (p pickRouter) Name() string                                     { return "pick" }

// hintRouter routes to the hint, or core 0.
type hintRouter struct{}

func (hintRouter) Route(_ Vector, hint int, _ uint64, _ []int, _ units.Time) int {
	if hint == NoHint {
		return 0
	}
	return hint
}
func (hintRouter) Name() string { return "hint" }

func newSystem(t *testing.T, n int, latency units.Time) (*sim.Engine, *IOAPIC, []*LocalAPIC) {
	t.Helper()
	eng := sim.NewEngine()
	locals := make([]*LocalAPIC, n)
	for i := range locals {
		locals[i] = NewLocalAPIC(eng, i, latency)
	}
	return eng, NewIOAPIC(eng, locals), locals
}

func TestDeliveryWithLatency(t *testing.T) {
	eng, io, locals := newSystem(t, 2, 200)
	io.SetRouter(pickRouter{core: 1})
	var got []struct {
		vec  Vector
		core int
		at   units.Time
	}
	for i, l := range locals {
		i := i
		l.SetHandler(func(v Vector, now units.Time) {
			got = append(got, struct {
				vec  Vector
				core int
				at   units.Time
			}{v, i, now})
		})
	}
	eng.At(100, func(units.Time) {
		if dest := io.Raise(33, NoHint, 0); dest != 1 {
			t.Errorf("Raise routed to %d, want 1", dest)
		}
	})
	eng.RunUntilIdle()
	if len(got) != 1 || got[0].vec != 33 || got[0].core != 1 || got[0].at != 300 {
		t.Errorf("delivered = %+v", got)
	}
	if locals[1].Accepted() != 1 || locals[0].Accepted() != 0 {
		t.Error("accepted counters wrong")
	}
}

func TestHintRouting(t *testing.T) {
	eng, io, locals := newSystem(t, 4, 0)
	io.SetRouter(hintRouter{})
	counts := make([]int, 4)
	for i, l := range locals {
		i := i
		l.SetHandler(func(Vector, units.Time) { counts[i]++ })
	}
	eng.At(0, func(units.Time) {
		io.Raise(1, 2, 0)
		io.Raise(1, 2, 0)
		io.Raise(1, NoHint, 0)
	})
	eng.RunUntilIdle()
	if counts[2] != 2 || counts[0] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestRedirectionTableRestricts(t *testing.T) {
	eng, io, locals := newSystem(t, 4, 0)
	io.SetRouter(hintRouter{})
	io.Program(7, []int{1, 3})
	counts := make([]int, 4)
	for i, l := range locals {
		i := i
		l.SetHandler(func(Vector, units.Time) { counts[i]++ })
	}
	eng.At(0, func(units.Time) {
		io.Raise(7, 2, 0) // hint outside allowed set -> misroute fallback
		io.Raise(7, 3, 0) // allowed
	})
	eng.RunUntilIdle()
	if counts[1] != 1 || counts[3] != 1 || counts[2] != 0 {
		t.Errorf("counts = %v, want fallback to core 1 and direct to 3", counts)
	}
	if io.Stats().Misroutes != 1 {
		t.Errorf("misroutes = %d, want 1", io.Stats().Misroutes)
	}
	if io.Stats().Raised != 2 {
		t.Errorf("raised = %d, want 2", io.Stats().Raised)
	}
}

func TestProgramValidatesCores(t *testing.T) {
	_, io, _ := newSystem(t, 2, 0)
	defer func() {
		if recover() == nil {
			t.Error("Program with out-of-range core did not panic")
		}
	}()
	io.Program(1, []int{5})
}

func TestRaiseWithoutRouterPanics(t *testing.T) {
	_, io, _ := newSystem(t, 2, 0)
	defer func() {
		if recover() == nil {
			t.Error("Raise with no router did not panic")
		}
	}()
	io.Raise(1, NoHint, 0)
}

func TestMaskQueuesAndUnmaskFlushes(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLocalAPIC(eng, 0, 0)
	var got []Vector
	l.SetHandler(func(v Vector, _ units.Time) { got = append(got, v) })
	eng.At(0, func(units.Time) {
		l.Mask()
		l.Accept(1)
		l.Accept(2)
		if l.PendingCount() != 2 {
			t.Errorf("pending = %d, want 2", l.PendingCount())
		}
	})
	eng.At(10, func(units.Time) {
		if len(got) != 0 {
			t.Error("masked APIC delivered interrupts")
		}
		l.Unmask()
		l.Unmask() // idempotent
	})
	eng.RunUntilIdle()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("flushed = %v, want [1 2] in order", got)
	}
	if l.Masked() {
		t.Error("still masked")
	}
}

func TestEmptyLocalsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewIOAPIC with no locals did not panic")
		}
	}()
	NewIOAPIC(sim.NewEngine(), nil)
}

func TestNegativeLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative latency did not panic")
		}
	}()
	NewLocalAPIC(sim.NewEngine(), 0, -1)
}
