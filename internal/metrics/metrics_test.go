package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"sais/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.N() != 0 || s.Variance() != 0 {
		t.Error("zero summary not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Variance() != 0 || s.Stddev() != 0 {
		t.Error("variance of one observation must be 0")
	}
	if s.Min() != 42 || s.Max() != 42 {
		t.Error("min/max of single observation")
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(100) + 2
		var s Summary
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(1e9, 1e7) // large magnitude stresses stability
			s.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-3 &&
			math.Abs(s.Variance()-variance)/math.Max(variance, 1) < 1e-6
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestRelStddev(t *testing.T) {
	var s Summary
	if s.RelStddev() != 0 {
		t.Error("rel stddev of empty summary")
	}
	s.Add(10)
	s.Add(20)
	want := s.Stddev() / 15
	if math.Abs(s.RelStddev()-want) > 1e-12 {
		t.Errorf("RelStddev = %v", s.RelStddev())
	}
}

func TestSpeedupAndReduction(t *testing.T) {
	if got := Speedup(123.57, 100); math.Abs(got-0.2357) > 1e-12 {
		t.Errorf("Speedup = %v", got)
	}
	if got := Speedup(90, 100); math.Abs(got+0.1) > 1e-12 {
		t.Errorf("negative speedup = %v", got)
	}
	if Speedup(5, 0) != 0 {
		t.Error("zero baseline speedup")
	}
	if got := Reduction(49, 100); math.Abs(got-0.51) > 1e-12 {
		t.Errorf("Reduction = %v", got)
	}
	if Reduction(5, 0) != 0 {
		t.Error("zero baseline reduction")
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.2357); got != "+23.57%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(-0.05); got != "-5.00%" {
		t.Errorf("Percent = %q", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {62.5, 3.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated input")
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(3)
	if got := s.String(); got == "" {
		t.Error("empty String")
	}
}

func TestCI95(t *testing.T) {
	var s Summary
	if s.CI95() != 0 {
		t.Error("empty CI should be 0")
	}
	s.Add(10)
	if s.CI95() != 0 {
		t.Error("single-observation CI should be 0")
	}
	s.Add(12)
	s.Add(14)
	// n=3, mean 12, sd 2, t(2)=4.303 -> CI = 4.303*2/sqrt(3).
	want := 4.303 * 2 / math.Sqrt(3)
	if math.Abs(s.CI95()-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}
	// Large n switches to the normal approximation.
	var big Summary
	for i := 0; i < 100; i++ {
		big.Add(float64(i % 10))
	}
	want = 1.96 * big.Stddev() / 10
	if math.Abs(big.CI95()-want) > 1e-9 {
		t.Errorf("large-n CI = %v, want %v", big.CI95(), want)
	}
}
