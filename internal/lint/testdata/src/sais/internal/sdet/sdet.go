// Package sdet is a fixture dependency for simdeterminism's transitive
// taint: it is outside the deterministic set, so the goroutine spawn is
// legal here — but the taint is exported as a fact and must surface at
// deterministic call sites.
package sdet

// Spawn runs fn on its own goroutine.
func Spawn(fn func()) {
	go fn()
}

// Pure is untainted.
func Pure(x int) int { return x + 1 }
