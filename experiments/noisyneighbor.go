package experiments

// Noisy-neighbor study: what analytic background load costs the
// foreground cohort under each scheduling policy. The sweep scales the
// tenant mix's per-user rates from zero (a true classic baseline with
// no background population wired in at all) up through saturation and
// reports foreground strip-latency percentiles — the metric the
// hybrid-fidelity engine exists to keep honest. Background strips are
// never materialized, so the Result's strip histogram is exactly the
// foreground cohort's.

import (
	"context"
	"fmt"
	"strings"

	"sais/cluster"
	"sais/internal/flowsim"
	"sais/internal/irqsched"
	"sais/internal/runner"
	"sais/internal/units"
)

// NoisySweep is a background-load × policy study.
type NoisySweep struct {
	Title string
	// Loads are per-user-rate multipliers applied to the base mix.
	// 0 means the classic baseline: BackgroundUsers and TenantMix are
	// cleared entirely, not just silenced.
	Loads    []float64
	Policies []irqsched.PolicyKind
	// Config is the base cluster; it must carry BackgroundUsers and a
	// TenantMix for the nonzero load points.
	Config   cluster.Config
	Seed     uint64
	Parallel int
}

// NoisyRow is one (load, policy) cell.
type NoisyRow struct {
	Load              float64
	Policy            string
	Duration          units.Time
	Bandwidth         units.Rate
	StripP50          units.Time
	StripP95          units.Time
	StripP99          units.Time
	BackgroundOffered units.Bytes
	BackgroundServed  units.Bytes
}

// NoisyReport is a completed sweep.
type NoisyReport struct {
	Title string
	Rows  []NoisyRow
}

// NoisyNeighbor returns the default study: 4 foreground clients and 8
// servers sharing the cluster with half a million background users in
// a streaming-plus-burst mix, swept from silence to twice the nominal
// rate.
func NoisyNeighbor() NoisySweep {
	cfg := cluster.DefaultConfig()
	cfg.Clients = 4
	cfg.Servers = 8
	cfg.TransferSize = 256 * units.KiB
	cfg.BytesPerProc = 2 * units.MiB
	cfg.BackgroundUsers = 500000
	cfg.TenantMix = []flowsim.TenantShare{
		{Name: "stream", Share: 0.7, PerUserRate: 4000, Colocate: 0.15},
		{Name: "burst", Share: 0.3, PerUserRate: 5000, Shape: "burst",
			Period: 10 * units.Millisecond, Duty: 0.3, HotServers: 4},
	}
	return NoisySweep{
		Title:    "Noisy neighbor: background load vs foreground strip latency",
		Loads:    []float64{0, 0.5, 1, 2},
		Policies: DegradedPolicies,
		Config:   cfg,
		Seed:     1,
	}
}

// Run executes the sweep.
func (n NoisySweep) Run() (*NoisyReport, error) {
	return n.RunContext(context.Background())
}

// RunContext executes the sweep under ctx, one run per (load, policy)
// cell at fixed indices, so the report is identical regardless of
// worker count.
func (n NoisySweep) RunContext(ctx context.Context) (*NoisyReport, error) {
	if len(n.Loads) == 0 || len(n.Policies) == 0 {
		return nil, fmt.Errorf("experiments: noisy sweep needs loads and policies")
	}
	cells := len(n.Loads) * len(n.Policies)
	//lint:goroutine runner.Map joins all workers and returns rows in point order; per-cell output is seed-deterministic
	rows, err := runner.Map(ctx, cells,
		runner.Options{Workers: n.Parallel},
		func(ctx context.Context, i int) (NoisyRow, error) {
			load := n.Loads[i/len(n.Policies)]
			pol := n.Policies[i%len(n.Policies)]
			cfg := n.Config
			cfg.Policy = pol
			cfg.Seed = n.Seed
			if cfg.Seed == 0 {
				cfg.Seed = 1
			}
			if load == 0 {
				cfg.BackgroundUsers = 0
				cfg.TenantMix = nil
			} else {
				mix := make([]flowsim.TenantShare, len(n.Config.TenantMix))
				copy(mix, n.Config.TenantMix)
				for j := range mix {
					mix[j].PerUserRate = units.Rate(float64(mix[j].PerUserRate) * load)
				}
				cfg.TenantMix = mix
			}
			res, err := cluster.RunContext(ctx, cfg)
			if err != nil {
				return NoisyRow{}, fmt.Errorf("noisy load=%g/%s: %w", load, pol, err)
			}
			return NoisyRow{
				Load:              load,
				Policy:            res.Policy,
				Duration:          res.Duration,
				Bandwidth:         res.Bandwidth,
				StripP50:          res.StripLatencyP50,
				StripP95:          res.StripLatencyP95,
				StripP99:          res.StripLatencyP99,
				BackgroundOffered: res.BackgroundOfferedBytes,
				BackgroundServed:  res.BackgroundServedBytes,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &NoisyReport{Title: n.Title, Rows: rows}, nil
}

// Table renders the sweep as a fixed-width text table.
func (r *NoisyReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-6s %-12s %12s %10s %12s %12s %12s %12s %12s\n",
		"load", "policy", "duration", "MB/s", "strip p50", "strip p95", "strip p99", "bg offered", "bg served")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6g %-12s %12v %10.1f %12v %12v %12v %12v %12v\n",
			row.Load, row.Policy, row.Duration, float64(row.Bandwidth)/1e6,
			row.StripP50, row.StripP95, row.StripP99,
			row.BackgroundOffered, row.BackgroundServed)
	}
	return b.String()
}

// CSV renders the sweep as comma-separated rows with a header line.
func (r *NoisyReport) CSV() string {
	var b strings.Builder
	b.WriteString("load,policy,duration_ns,bandwidth_mbps,strip_p50_ns,strip_p95_ns,strip_p99_ns,bg_offered_bytes,bg_served_bytes\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%g,%s,%d,%.6f,%d,%d,%d,%d,%d\n",
			row.Load, row.Policy, int64(row.Duration),
			float64(row.Bandwidth)/1e6,
			int64(row.StripP50), int64(row.StripP95), int64(row.StripP99),
			int64(row.BackgroundOffered), int64(row.BackgroundServed))
	}
	return b.String()
}
