// Package cluster is the public API of the SAIs reproduction: it
// assembles a complete simulated parallel-I/O cluster — client nodes
// (multi-core CPU, private caches, NIC, APICs, interrupt-scheduling
// policy), a PVFS-style metadata server and I/O servers, and a switched
// fabric — runs an IOR-like read workload over it, and reports the
// paper's four metrics: bandwidth, L2 cache miss rate, CPU utilization,
// and CPU_CLK_UNHALTED.
//
// A minimal comparison of the paper's two main policies:
//
//	cfg := cluster.DefaultConfig()
//	cfg.Servers = 16
//	base, _ := cluster.Run(cfg.WithPolicy(irqsched.PolicyIrqbalance))
//	sais, _ := cluster.Run(cfg.WithPolicy(irqsched.PolicySourceAware))
//	fmt.Println(metrics.Speedup(float64(sais.Bandwidth), float64(base.Bandwidth)))
package cluster

import (
	"context"
	"fmt"

	"sais/internal/apic"
	"sais/internal/client"
	"sais/internal/cpu"
	"sais/internal/disk"
	"sais/internal/faults"
	"sais/internal/flowsim"
	"sais/internal/irqsched"
	"sais/internal/metrics"
	"sais/internal/netsim"
	"sais/internal/pfs"
	"sais/internal/rng"
	"sais/internal/shard"
	"sais/internal/sim"
	"sais/internal/trace"
	"sais/internal/units"
	"sais/internal/workload"
)

// Node-id layout of the simulated cluster.
const (
	mdsNode         netsim.NodeID = 90
	firstClientNode netsim.NodeID = 1
	firstServerNode netsim.NodeID = 100
)

// Config describes one experiment run. DefaultConfig returns the
// paper's testbed shape; the evaluation harness varies the fields each
// figure sweeps.
type Config struct {
	// Scheduling policy under test on every client.
	Policy irqsched.PolicyKind

	// Cluster shape.
	Clients        int
	Servers        int
	CoresPerClient int

	// Hardware rates. ClientNICRate is the aggregate client rate; with
	// ClientNICPorts > 1 it is split over that many bonded ports (the
	// testbed's "3-Gigabit NIC" is three bonded 1-Gigabit BCM5715C
	// ports) using ClientBondMode.
	ClientNICRate  units.Rate
	ClientNICPorts int
	ClientBondMode netsim.BondMode
	ServerNICRate  units.Rate
	ClientFreq     units.Hertz
	CachePerCore   units.Bytes
	LineSize       units.Bytes
	FabricLatency  units.Time

	// File system.
	StripSize units.Bytes

	// Workload (per client).
	ProcsPerClient int
	TransferSize   units.Bytes
	BytesPerProc   units.Bytes
	// SharedFiles makes every client read the same files (IOR's
	// shared-file mode) so the servers' buffer caches serve re-reads —
	// the multi-client regime of Figure 12. Default: file per process.
	SharedFiles bool
	// RandomAccess permutes transfer order per process (IOR's random
	// option) — an ablation that defeats server readahead.
	RandomAccess bool
	// Segmented selects IOR's shared-file segmented layout within each
	// client: all of a client's processes interleave through one file.
	Segmented bool
	// ThinkTime inserts a fixed delay between each process's transfers
	// (IOR's -d inter-test delay).
	ThinkTime units.Time
	// Aggregators > 0 runs MPI-IO-style two-phase collective reads with
	// that many aggregator processes per client (0 = independent I/O).
	Aggregators int
	// WriteWorkload runs parallel writes instead of reads — the case
	// the paper's §I excludes because returned packets (small acks)
	// carry no data to any particular core. Useful to verify that the
	// policies tie on writes.
	WriteWorkload bool

	// Knobs for ablations.
	Costs              client.CostModel
	Disk               disk.Config
	MigrateDuringBlock float64
	CoalesceFrames     int
	CoalesceDelay      units.Time
	IrqbalancePeriod   units.Time
	DedicatedCore      int
	CurrentCoreHint    bool // the paper's policy (ii): steer to the process's current core
	FragmentWire       bool // per-MTU frames instead of per-strip
	LossRate           float64
	CorruptRate        float64    // fraction of frames with damaged headers
	ServerStall        units.Time // injected per-request server delay
	ServerStallRate    float64    // fraction of requests stalled
	// TimesliceQuantum enables round-robin timeslicing of process work
	// on client cores (0 = run to completion).
	TimesliceQuantum units.Time
	// L3PerSocket attaches a shared per-socket victim L3 of this size to
	// each client (0 = disabled, the calibrated baseline).
	L3PerSocket units.Bytes
	// RSSQueues enables hardware receive-side scaling on the clients:
	// MSI-X queues statically pinned to cores, overriding Policy for
	// data interrupts (0 = disabled).
	RSSQueues int
	// BackgroundLoad runs OS-daemon-style busywork on every client core
	// at this utilization fraction (0..1) while the workload is active.
	// It raises absolute CPU utilization toward testbed levels and
	// feeds irqbalance's load statistics.
	BackgroundLoad float64
	// Crash injection: server index CrashServer (-1 = none) drops all
	// traffic during [CrashAt, ReviveAt). Combine with RetryTimeout to
	// observe recovery.
	CrashServer int
	CrashAt     units.Time
	ReviveAt    units.Time
	// RetryTimeout enables the client's lost-frame recovery: transfers
	// not complete after this long re-issue their missing parts, up to
	// MaxRetries times. Zero disables (lossless fabric by default).
	RetryTimeout units.Time
	MaxRetries   int
	// RetryBackoff grows the retry interval exponentially per attempt
	// (0 = the default factor 2, 1 = fixed interval); RetryBackoffCap
	// bounds the backed-off interval (0 = 8 × RetryTimeout). RetryJitter
	// shrinks each delay by a deterministic derived fraction in
	// [0, RetryJitter) so clients desynchronize their re-issues (0 = the
	// default 0.1, negative = disabled). See client.Config.
	RetryBackoff    float64
	RetryBackoffCap units.Time
	RetryJitter     float64
	// TransferDeadline bounds each transfer's total lifetime: at the
	// deadline the strips in hand are consumed and the operation
	// completes as a typed partial result instead of retrying forever
	// or abandoning everything. 0 disables; requires RetryTimeout > 0.
	TransferDeadline units.Time
	// RandomClients makes the first N clients use random access order
	// while the rest stay sequential — a mixed-tenant workload for
	// scenarios. RandomAccess=true still randomizes every client.
	RandomClients int

	// Hybrid-fidelity workload (DESIGN.md §14). ForegroundClients is an
	// explicit alias for Clients naming the full-fidelity measured
	// cohort; when positive it overrides Clients. BackgroundUsers adds
	// an analytic background population — arrival-rate flow processes
	// feeding fluid queues at every server NIC/CPU and (for colocated
	// tenants) every foreground client NIC — whose load slows the
	// foreground without materializing frames. BackgroundUsers > 0
	// requires a TenantMix whose shares sum to 1. RateUpdate is the
	// fluid integration step (default 1 ms).
	ForegroundClients int                   `json:",omitempty"`
	BackgroundUsers   int                   `json:",omitempty"`
	TenantMix         []flowsim.TenantShare `json:",omitempty"`
	RateUpdate        units.Time            `json:",omitempty"`

	// Faults is the declarative fault plan applied to the run: link
	// loss/corruption, per-server stall distributions, and a timeline
	// of crashes, revivals, link degradation, and interrupt storms.
	// The scalar knobs above (LossRate, CorruptRate, ServerStall*,
	// CrashServer/CrashAt/ReviveAt) are legacy shorthands merged into
	// this plan at run time; a run is driven by exactly one armed
	// faults.Injector. Nil plus zero legacy knobs means a healthy
	// cluster.
	Faults *faults.Plan

	// Shards partitions the cluster's nodes round-robin over this many
	// independent event engines, run under conservative synchronization
	// (internal/shard) with the fabric latency as lookahead. 0 or 1 is
	// the classic single-engine run. Results are bit-identical for any
	// shard count; Shards > 1 requires FabricLatency > 0 (zero
	// lookahead admits no safe horizon).
	Shards int
	// Workers is the number of goroutines driving the shards each
	// round, clamped to [1, Shards]. Like Shards it never changes the
	// result, only the wall-clock cost.
	Workers int

	Seed uint64

	// Progress, when set, is invoked at the engine's stop-poll cadence
	// (every few dozen events; between rounds when sharded) with the
	// events fired so far, the events still live in the queue, and the
	// simulated clock — the minimum shard clock on sharded runs. The
	// live count excludes cancelled timers — retry- and fault-heavy
	// runs cancel timers in bulk, and counting those corpses would
	// inflate the denominator of any progress estimate. It also counts
	// cross-shard messages awaiting delivery. Not serialized with the
	// config.
	//saisvet:nilhook
	Progress func(fired uint64, live int, now units.Time) `json:"-"`
}

// DefaultConfig is the paper's single-client testbed: 8 cores at
// 2.7 GHz with 512 KiB private L2, a 3-Gigabit client NIC, 3-Gigabit
// server NICs (three bonded 1-Gigabit ports), 64 KiB strips, and two
// IOR processes each reading 32 MiB in 1 MiB transfers. The per-proc
// byte budget is scaled down from the paper's 10 GB — rates converge
// long before that, and the simulator reports rates, not totals.
func DefaultConfig() Config {
	return Config{
		Policy:           irqsched.PolicyIrqbalance,
		CrashServer:      -1,
		Clients:          1,
		Servers:          16,
		CoresPerClient:   8,
		ClientNICRate:    3 * units.Gigabit,
		ServerNICRate:    3 * units.Gigabit,
		ClientFreq:       2700 * units.MHz,
		CachePerCore:     512 * units.KiB,
		LineSize:         64,
		FabricLatency:    20 * units.Microsecond,
		StripSize:        64 * units.KiB,
		ProcsPerClient:   2,
		TransferSize:     units.MiB,
		BytesPerProc:     32 * units.MiB,
		Costs:            client.DefaultCosts(),
		Disk:             disk.DefaultConfig(),
		CoalesceFrames:   1,
		IrqbalancePeriod: 10 * units.Millisecond,
		Seed:             1,
	}
}

// WithPolicy returns a copy of c under a different policy — the usual
// A/B pattern of the experiments.
func (c Config) WithPolicy(p irqsched.PolicyKind) Config {
	c.Policy = p
	return c
}

// normalized resolves the hybrid-mode aliases: ForegroundClients, when
// positive, is the authoritative full-fidelity cohort size and
// overrides Clients. Applied (idempotently) at the top of Validate,
// NodeLayout, and run so every consumer sees one canonical shape.
func (c Config) normalized() Config {
	if c.ForegroundClients > 0 {
		c.Clients = c.ForegroundClients
	}
	return c
}

// rateUpdate returns the fluid integration step, defaulting to 1 ms.
func (c Config) rateUpdate() units.Time {
	if c.RateUpdate > 0 {
		return c.RateUpdate
	}
	return units.Millisecond
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.normalized()
	switch {
	case c.Clients <= 0:
		return fmt.Errorf("cluster: clients %d must be positive", c.Clients)
	case c.Servers <= 0:
		return fmt.Errorf("cluster: servers %d must be positive", c.Servers)
	case c.CoresPerClient <= 0:
		return fmt.Errorf("cluster: cores %d must be positive", c.CoresPerClient)
	case c.ClientNICRate <= 0 || c.ServerNICRate <= 0:
		return fmt.Errorf("cluster: NIC rates must be positive")
	case c.StripSize <= 0:
		return fmt.Errorf("cluster: strip size must be positive")
	case c.ProcsPerClient <= 0:
		return fmt.Errorf("cluster: procs %d must be positive", c.ProcsPerClient)
	case c.TransferSize < c.StripSize:
		return fmt.Errorf("cluster: transfer %v below strip %v", c.TransferSize, c.StripSize)
	case c.BytesPerProc < c.TransferSize:
		return fmt.Errorf("cluster: per-proc bytes %v below one transfer", c.BytesPerProc)
	case c.LossRate < 0 || c.LossRate >= 1:
		return fmt.Errorf("cluster: loss rate %v outside [0,1)", c.LossRate)
	case c.CorruptRate < 0 || c.CorruptRate >= 1:
		return fmt.Errorf("cluster: corrupt rate %v outside [0,1)", c.CorruptRate)
	case c.ServerStallRate < 0 || c.ServerStallRate > 1:
		return fmt.Errorf("cluster: stall rate %v outside [0,1]", c.ServerStallRate)
	case c.RetryTimeout < 0:
		return fmt.Errorf("cluster: negative retry timeout")
	case c.MaxRetries < 0:
		return fmt.Errorf("cluster: negative max retries")
	case c.RetryBackoff != 0 && c.RetryBackoff < 1:
		return fmt.Errorf("cluster: retry backoff factor %v below 1", c.RetryBackoff)
	case c.RetryBackoffCap < 0:
		return fmt.Errorf("cluster: negative retry backoff cap")
	case c.RetryJitter >= 1:
		return fmt.Errorf("cluster: retry jitter %v must stay below 1", c.RetryJitter)
	case c.TransferDeadline < 0:
		return fmt.Errorf("cluster: negative transfer deadline")
	case c.TransferDeadline > 0 && c.RetryTimeout <= 0:
		return fmt.Errorf("cluster: transfer deadline needs RetryTimeout > 0")
	case c.RandomClients < 0 || c.RandomClients > c.Clients:
		return fmt.Errorf("cluster: random clients %d outside [0, %d]", c.RandomClients, c.Clients)
	case c.CrashServer >= c.Servers:
		return fmt.Errorf("cluster: crash server %d out of range", c.CrashServer)
	case c.BackgroundLoad < 0 || c.BackgroundLoad >= 1:
		return fmt.Errorf("cluster: background load %v outside [0,1)", c.BackgroundLoad)
	case c.Shards < 0:
		return fmt.Errorf("cluster: negative shard count %d", c.Shards)
	case c.Workers < 0:
		return fmt.Errorf("cluster: negative worker count %d", c.Workers)
	case c.Shards > 1 && c.FabricLatency <= 0:
		return fmt.Errorf("cluster: sharded execution needs a positive fabric latency (lookahead)")
	case c.ForegroundClients < 0:
		return fmt.Errorf("cluster: negative foreground clients %d", c.ForegroundClients)
	case c.BackgroundUsers < 0:
		return fmt.Errorf("cluster: negative background users %d", c.BackgroundUsers)
	case c.RateUpdate < 0:
		return fmt.Errorf("cluster: negative rate-update step")
	}
	// Hybrid tenant mixes are validated uniformly — the same typed
	// rejection at every shard count, like degrade-link<1 — so a
	// single-engine run can never accept a config a sharded run of the
	// same cluster would refuse. A mix without background users is
	// checked too: it is almost certainly a mistake worth surfacing.
	if c.BackgroundUsers > 0 || len(c.TenantMix) > 0 {
		if err := flowsim.ValidateMix(c.TenantMix); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
	}
	return c.FaultPlan().Validate(c.Servers, c.Clients)
}

// FaultPlan merges the legacy scalar fault knobs into the declarative
// plan, yielding the single specification the injector arms. Explicit
// plan values win over the scalars; the legacy crash triple becomes a
// crash/revive timeline pair, exactly as the old wiring behaved. The
// scenario engine's invariant checker uses the same merged view to
// reconstruct crash windows.
func (c Config) FaultPlan() *faults.Plan {
	p := c.Faults.Clone()
	if p == nil {
		p = &faults.Plan{}
	}
	if c.LossRate > 0 && p.Loss == 0 {
		p.Loss = c.LossRate
	}
	if c.CorruptRate > 0 && p.Corrupt == 0 {
		p.Corrupt = c.CorruptRate
	}
	if c.ServerStall > 0 && c.ServerStallRate > 0 {
		p.Stalls = append(p.Stalls, faults.Stall{
			Server: -1, Rate: c.ServerStallRate, Mean: c.ServerStall,
		})
	}
	if c.CrashServer >= 0 && c.ReviveAt > c.CrashAt {
		p.Timeline = append(p.Timeline,
			faults.TimelineEvent{At: c.CrashAt, Kind: faults.KindCrash, Server: c.CrashServer},
			faults.TimelineEvent{At: c.ReviveAt, Kind: faults.KindRevive, Server: c.CrashServer},
		)
	}
	return p
}

// NodeLayout returns the fabric node ids the run will assign: the
// client ids, the server ids (index-aligned with fault-plan server
// indices), and the MDS id. It is the single source of the layout rule
// run() builds from, exported so outside observers — the scenario
// invariant checker mapping fault-plan server indices onto the node
// ids that appear in trace spans — agree with the simulator exactly.
func (c Config) NodeLayout() (clients, servers []netsim.NodeID, mds netsim.NodeID) {
	c = c.normalized()
	// Clients sit at 1..Clients, MDS at 90, servers from 100. Clusters
	// with ≥ 90 clients outgrow the classic constants, so the MDS and
	// the server block shift past the client range; smaller clusters
	// keep the historical ids (and byte-identical results).
	mds = mdsNode
	firstServer := firstServerNode
	if firstClientNode+netsim.NodeID(c.Clients) > mdsNode {
		mds = firstClientNode + netsim.NodeID(c.Clients)
		firstServer = mds + 10
	}
	clients = make([]netsim.NodeID, c.Clients)
	for i := range clients {
		clients[i] = firstClientNode + netsim.NodeID(i)
	}
	servers = make([]netsim.NodeID, c.Servers)
	for i := range servers {
		servers[i] = firstServer + netsim.NodeID(i)
	}
	return clients, servers, mds
}

// Result is the roll-up of one run.
//saisvet:jsonstable sig=26de1777
type Result struct {
	Policy   string
	Duration units.Time

	// Bandwidth (the Figure 5/12/14 metric): aggregate consumed bytes
	// over the makespan.
	TotalBytes units.Bytes
	Bandwidth  units.Rate
	PerClient  []units.Rate

	// Cache behaviour (Figures 6/7).
	CacheMissRate float64
	LineAccesses  uint64
	LineMisses    uint64
	RemoteLines   uint64 // cache-to-cache migrations (cost M path)
	MemoryLines   uint64

	// CPU behaviour (Figures 8-11), aggregated over client cores.
	CPUUtilization float64
	UnhaltedCycles units.Cycles
	BusyByCategory map[string]units.Time

	// Interrupt path.
	Interrupts  uint64
	HintedIRQs  uint64
	RingDrops   uint64
	NetDrops    uint64 // frames lost in the fabric (loss injection)
	HeaderDrops uint64 // frames rejected by IPv4 validation (corruption)

	// Packet-reordering metric (the Wu et al. Flow Director pathology):
	// strip frames whose per-(transfer, server) sequence went backwards
	// at softirq completion, and the deepest regression seen. Both
	// omitempty — zero for every in-order policy — so classic-run JSON
	// stays byte-identical.
	ReorderedFrames uint64 `json:",omitempty"`
	ReorderDepthMax uint64 `json:",omitempty"`

	// PolicyStats carries the steering policy's self-describing
	// counters (irqsched.CounterReporter), summed over clients. Only
	// the literature-baseline policies export counters, so it is empty
	// (and omitted from JSON) for the classic comparison set.
	PolicyStats map[string]uint64 `json:",omitempty"`

	// Recovery path (loss injection with retries enabled).
	Retries         uint64
	FailedTransfers uint64

	// Read-transfer latency percentiles across all clients (zero for
	// write workloads), and the write-path equivalents. Abandoned
	// operations contribute their time-to-failure, so injected loss
	// cannot silently improve the distribution.
	LatencyMean     units.Time
	LatencyP50      units.Time
	LatencyP99      units.Time
	WriteLatencyP50 units.Time
	WriteLatencyP99 units.Time

	// Per-strip issue→arrival latency distribution, merged over all
	// clients: how long each individual strip took from the read() that
	// requested it to its softirq deposit into a core's cache. Finer
	// grained than the transfer latencies above — a transfer spans many
	// strips — and the tail columns the experiment tables report.
	StripCount       uint64
	StripLatencyMean units.Time
	StripLatencyP50  units.Time
	StripLatencyP95  units.Time
	StripLatencyP99  units.Time

	// Hybrid-mode accounting: analytic background traffic offered to,
	// drained by, and still queued at the fluid stations over the run.
	// The invariant checker enforces offered = served + backlog. All
	// omitempty so classic-run JSON stays byte-identical.
	BackgroundOfferedBytes units.Bytes `json:",omitempty"`
	BackgroundServedBytes  units.Bytes `json:",omitempty"`
	BackgroundBacklogBytes units.Bytes `json:",omitempty"`

	// Faults is the degraded-mode rollup: what the fault injector did
	// to the run and what the recovery paths did about it. All zero
	// for a healthy cluster.
	Faults FaultReport

	// ServerBytes is the payload each I/O server returned — striping
	// balance means these should be near-equal for aligned workloads.
	ServerBytes []units.Bytes

	// Gauges locate the bottleneck: busy fractions of the main shared
	// resources over the run (the §III regime question — NIC-bound,
	// disk-bound, or client-bound).
	ClientNICBusy float64 // mean client NIC ingress busy fraction
	DiskBusy      float64 // mean server disk busy fraction
	ServerCPUBusy float64 // mean server CPU busy fraction
}

// FaultReport is the Result section accounting for injected faults and
// the recovery they triggered.
//saisvet:jsonstable sig=3f2fa37c
type FaultReport struct {
	// Wire damage: frames dropped in the fabric (loss injection or
	// unroutable), frames whose headers were corrupted in flight, and
	// corrupted frames rejected by client IPv4 validation.
	FramesDropped   uint64
	FramesCorrupted uint64
	HeaderDrops     uint64
	// RingDrops are frames lost to full client rx rings — overload
	// loss the retry path must also absorb.
	RingDrops uint64
	// Recovery-path activity: strips re-requested or re-sent by
	// retries, and late duplicates discarded on arrival.
	StripsRetried   uint64
	DuplicateStrips uint64
	// FailedOps counts transfers abandoned after MaxRetries; PartialOps
	// counts transfers that degraded gracefully at their
	// TransferDeadline, delivering PartialBytes of their payload.
	// OpErrors carries the typed per-operation record of both kinds.
	FailedOps uint64
	// The partial counters are omitempty so healthy-run JSON stays
	// byte-identical to pre-deadline versions of the schema.
	PartialOps   uint64      `json:",omitempty"`
	PartialBytes units.Bytes `json:",omitempty"`
	OpErrors     []client.OpError
	// Server-side injection: requests delayed by stall injection and
	// crash/revive accounting. ServerDowntime is indexed by server;
	// RecoveryTime is the run time remaining after the last revive —
	// how long the cluster needed to finish once healthy again.
	StallsInjected uint64
	Crashes        int
	ServerDowntime []units.Time
	LastReviveAt   units.Time
	RecoveryTime   units.Time
	// StormFrames is the junk-frame count delivered by interrupt
	// storms.
	StormFrames uint64
	// Goodput vs offered load: bytes the workload asked for vs bytes
	// actually delivered to (or acknowledged for) the applications.
	OfferedBytes units.Bytes
	GoodputBytes units.Bytes
}

// Run executes one experiment and returns its metrics. Runs are
// deterministic functions of (Config, Seed).
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation and deadline support: the
// simulator polls ctx at event-loop granularity and stops promptly
// once it is done. A cancelled run returns ctx.Err() together with the
// metrics collected up to the stopping point, so callers can still
// report partial results; completed runs return a nil error.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return run(ctx, cfg, nil)
}

// run is the shared body of RunContext, RunTraced, and RunSpanned;
// instrument (optional) sees the client nodes and servers after
// construction, before the workload starts.
func run(ctx context.Context, cfg Config, instrument func([]*client.Node, []*pfs.Server)) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	// Shard layout: nodes are partitioned round-robin over per-shard
	// engines and fabrics. shards == 1 is the classic single-engine
	// path (engines[0] drives everything, no executor, no goroutines).
	// Component construction below is identical in both cases and in
	// the same global order — per-component rng streams are Split off
	// the root in construction order, so the draws every component
	// receives are layout-invariant.
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if max := cfg.Clients + cfg.Servers; shards > max {
		shards = max
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	engines := make([]*sim.Engine, shards)
	fabrics := make([]*netsim.Fabric, shards)
	for i := range engines {
		engines[i] = sim.NewEngine()
		fabrics[i] = netsim.NewFabric(engines[i], cfg.FabricLatency)
	}
	// The MDS (and a storm's ghost NIC) live on shard 0.
	eng, fab := engines[0], fabrics[0]
	clientShard := func(i int) int { return i % shards }
	serverShard := func(i int) int { return i % shards }
	// Node-id layout (see NodeLayout): clients at 1..Clients, MDS at
	// 90, servers from 100, shifting past the client range when it
	// outgrows the classic constants.
	clientIDs, servers, mds := cfg.NodeLayout()
	root := rng.New(cfg.Seed)
	layout := pfs.Layout{StripSize: cfg.StripSize, Servers: servers, Size: cfg.BytesPerProc}
	pfs.NewMetadataServer(eng, fab, mds, pfs.DefaultMetadataConfig(units.Gigabit),
		func(pfs.FileID) pfs.Layout { return layout })

	srvs := make([]*pfs.Server, cfg.Servers)
	for i := range srvs {
		scfg := pfs.DefaultServerConfig(cfg.ServerNICRate)
		scfg.Disk = cfg.Disk
		scfg.EchoHints = true // harmless for baselines: their requests carry no hint
		scfg.NIC.Fragment = cfg.FragmentWire
		srvs[i] = pfs.NewServer(engines[serverShard(i)], fabrics[serverShard(i)], servers[i], scfg, root)
	}

	// Clients with their workloads. Background busywork (if configured)
	// stops once the node's own workload has finished, so the run still
	// drains. (The stop condition is per-node, not global: a global
	// "any load still active" check would read cross-shard state whose
	// mid-round value depends on the layout.)
	nodes := make([]*client.Node, cfg.Clients)
	loads := make([]*workload.IOR, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		ccfg := client.DefaultConfig(clientIDs[i], cfg.ClientNICRate, cfg.Policy)
		ccfg.Cores = cfg.CoresPerClient
		ccfg.Freq = cfg.ClientFreq
		ccfg.CachePerCore = cfg.CachePerCore
		ccfg.LineSize = cfg.LineSize
		ccfg.Costs = cfg.Costs
		ccfg.MigrateDuringBlock = cfg.MigrateDuringBlock
		ccfg.CurrentCoreHint = cfg.CurrentCoreHint
		ccfg.RetryTimeout = cfg.RetryTimeout
		ccfg.MaxRetries = cfg.MaxRetries
		ccfg.RetryBackoff = cfg.RetryBackoff
		ccfg.RetryBackoffCap = cfg.RetryBackoffCap
		ccfg.RetryJitter = cfg.RetryJitter
		ccfg.TransferDeadline = cfg.TransferDeadline
		ccfg.TimesliceQuantum = cfg.TimesliceQuantum
		ccfg.L3PerSocket = cfg.L3PerSocket
		ccfg.RSSQueues = cfg.RSSQueues
		ccfg.IrqbalancePeriod = cfg.IrqbalancePeriod
		ccfg.DedicatedCore = cfg.DedicatedCore
		ccfg.MDS = mds
		// Child seeds are derived, not offset: cfg.Seed+i would make run
		// seed S node i draw the same stream as run seed S+1 node i-1,
		// correlating "independent" repeats (see rng.Derive).
		ccfg.Seed = rng.Derive(cfg.Seed, uint64(2*i))
		if cfg.ClientNICPorts > 1 {
			ccfg.NIC.Ports = cfg.ClientNICPorts
			ccfg.NIC.Rate = cfg.ClientNICRate / units.Rate(cfg.ClientNICPorts)
			ccfg.NIC.Bond = cfg.ClientBondMode
		}
		ccfg.NIC.CoalesceFrames = cfg.CoalesceFrames
		if ccfg.NIC.CoalesceFrames < 1 {
			ccfg.NIC.CoalesceFrames = 1
		}
		ccfg.NIC.CoalesceDelay = cfg.CoalesceDelay
		ccfg.NIC.Fragment = cfg.FragmentWire
		node, err := client.New(engines[clientShard(i)], fabrics[clientShard(i)], ccfg)
		if err != nil {
			return nil, err
		}
		nodes[i] = node

		firstFile := pfs.FileID(1 + i*cfg.ProcsPerClient)
		if cfg.SharedFiles {
			firstFile = 1
		}
		wcfg := workload.IORConfig{
			Procs:        cfg.ProcsPerClient,
			TransferSize: cfg.TransferSize,
			BytesPerProc: cfg.BytesPerProc,
			FirstFile:    firstFile,
			Stagger:      50 * units.Microsecond,
			Write:        cfg.WriteWorkload,
			RandomAccess: cfg.RandomAccess || i < cfg.RandomClients,
			Segmented:    cfg.Segmented,
			ThinkTime:    cfg.ThinkTime,
			Aggregators:  cfg.Aggregators,
			Seed:         rng.Derive(cfg.Seed, uint64(2*i+1)),
		}
		w, err := workload.NewIOR(node, wcfg, nil)
		if err != nil {
			return nil, err
		}
		loads[i] = w
		w.Start(engines[clientShard(i)])
	}

	// Cross-shard routing: a frame whose destination lives on another
	// shard is posted to that shard's mailbox, carrying its delivery
	// time and provenance key; the destination injects it with the
	// exact compound key a shared engine would have used. Frames
	// migrate between per-shard pools with their ownership.
	var se *shard.Engine
	if shards > 1 {
		se = shard.New(engines, cfg.FabricLatency, workers)
		nodeShard := make(map[netsim.NodeID]int, cfg.Clients+cfg.Servers+1)
		nodeShard[mds] = 0
		for i := range clientIDs {
			nodeShard[clientIDs[i]] = clientShard(i)
		}
		for i := range servers {
			nodeShard[servers[i]] = serverShard(i)
		}
		for i := range fabrics {
			src := i
			fabrics[i].SetRemote(func(fr *netsim.Frame, wire units.Bytes, sendAt, deliverAt units.Time, key netsim.FrameKey) bool {
				dst, ok := nodeShard[fr.Dst]
				if !ok {
					return false
				}
				df := fabrics[dst]
				se.Post(src, dst, shard.Msg{
					At: deliverAt, SentAt: sendAt, Origin: key.Origin(), Seq: key.Seq,
					Fn: func(units.Time) { df.InjectArrival(fr, wire) },
				})
				return true
			})
		}
	}

	// Arm the fault plan against the assembled cluster. The storm node
	// sits just past the last server in the id space, so it never
	// collides with a real node. An empty plan arms to a no-op without
	// drawing randomness, keeping healthy runs byte-identical.
	target := faults.Target{
		Engine:    eng,
		Fabric:    fab,
		Servers:   srvs,
		Clients:   clientIDs,
		StormNode: servers[cfg.Servers-1] + 1,
		Rand:      root,
	}
	if shards > 1 {
		target.Engines = engines
		target.Fabrics = fabrics
		target.ServerEngine = func(i int) *sim.Engine { return engines[serverShard(i)] }
	}
	inj, err := cfg.FaultPlan().Arm(target)
	if err != nil {
		return nil, err
	}

	// Hybrid-fidelity background population (DESIGN.md §14): fluid
	// stations at every loaded server and (for colocated tenants) every
	// foreground client. Server stations are demand-stepped — the
	// service-scale hooks advance them to the dispatch instant — so a
	// server pays nothing when idle; client stations are advanced by a
	// standing per-node rate-update tick that also converts the step's
	// served fluid into aggregated IRQ/softirq pressure on the core the
	// steering policy picks. Every hook and tick touches only its own
	// node's state and queries at node-local event times, which is what
	// keeps sharded layouts bit-identical (stations advance in whole
	// steps: state is a pure function of the query time).
	var stations []*flowsim.Station
	if cfg.BackgroundUsers > 0 {
		step := cfg.rateUpdate()
		for i := range srvs {
			flows := flowsim.ServerFlows(cfg.TenantMix, cfg.BackgroundUsers, i, cfg.Servers)
			if !flowsim.HasRate(flows) {
				continue
			}
			st := flowsim.NewStation(cfg.ServerNICRate, step, flows)
			stations = append(stations, st)
			scale := func(now units.Time) float64 {
				st.AdvanceTo(now)
				return flowsim.Slowdown(st.Load())
			}
			srvs[i].NIC().SetServiceScale(scale)
			srvs[i].SetCPUScale(scale)
		}
		cflows := flowsim.ClientFlows(cfg.TenantMix, cfg.BackgroundUsers, cfg.Clients)
		if flowsim.HasRate(cflows) {
			for i, node := range nodes {
				st := flowsim.NewStation(cfg.ClientNICRate, step, cflows)
				stations = append(stations, st)
				// The NIC hook samples the last completed step's load
				// without advancing — the tick owns the integration, so
				// the observed load is one step stale by construction,
				// identically in every layout.
				node.NIC().SetServiceScale(func(units.Time) float64 {
					return flowsim.Slowdown(st.Load())
				})
				// Per-tenant flow identities: stable functions of the
				// node id, so flow-hashing policies (RSS) spread tenants
				// over queues the same way in every layout.
				flowIDs := make([]uint64, len(cfg.TenantMix))
				for k := range flowIDs {
					flowIDs[k] = rng.Derive(uint64(clientIDs[i]), uint64(k))
				}
				n, w, ne := node, loads[i], engines[clientShard(i)]
				var tick func(units.Time)
				tick = func(now units.Time) {
					if w.Finished() != 0 {
						return // foreground done: stop loading this node
					}
					st.AdvanceTo(now)
					for k := range flowIDs {
						b := st.ServedLastStep(k)
						if b <= 0 {
							continue
						}
						// One routing decision per tenant per step: the
						// policy sees the tenant's flow with no hint
						// (background traffic carries no aff_core_id),
						// then the chosen core absorbs the step's
						// aggregated interrupt-entry and softirq cost.
						dest := n.IOAPIC().RouteFor(client.DataVector, apic.NoHint, flowIDs[k])
						core := n.CPU().Core(dest)
						irqs := b / float64(cfg.StripSize)
						core.Submit(cpu.PrioSoftirq, cpu.CatIRQ,
							units.Time(irqs*float64(cfg.Costs.IRQEntry)), nil)
						core.Submit(cpu.PrioSoftirq, cpu.CatSoftirq,
							units.Time(b*cfg.Costs.SoftirqPerByte), nil)
					}
					ne.After(step, tick)
				}
				ne.After(step, tick)
			}
		}
	}

	if cfg.BackgroundLoad > 0 {
		const period = units.Millisecond
		work := units.Time(float64(period) * cfg.BackgroundLoad)
		for i, node := range nodes {
			w := loads[i]
			ne := engines[clientShard(i)]
			for core := 0; core < cfg.CoresPerClient; core++ {
				c := node.CPU().Core(core)
				var tick func(units.Time)
				tick = func(units.Time) {
					if w.Finished() != 0 {
						return
					}
					c.Submit(cpu.PrioProcess, cpu.CatOther, work, nil)
					ne.After(period, tick)
				}
				ne.At(0, tick)
			}
		}
	}
	if instrument != nil {
		instrument(nodes, srvs)
	}
	cancellable := ctx != nil && ctx.Done() != nil
	var stopped bool
	if se != nil {
		if cancellable || cfg.Progress != nil {
			// One stop closure serves both jobs, polled between rounds:
			// cancellation check and the progress heartbeat with the
			// aggregate counters and the global (min-shard) clock.
			se.SetStop(func() bool {
				if cfg.Progress != nil {
					cfg.Progress(se.Fired(), se.Live(), se.Now())
				}
				return cancellable && ctx.Err() != nil
			})
		}
		se.Run()
		stopped = se.Stopped()
	} else {
		if cancellable || cfg.Progress != nil {
			// One stop-poll closure serves both jobs: cancellation check
			// and the progress heartbeat, at the engine's poll cadence.
			eng.SetStop(func() bool {
				if cfg.Progress != nil {
					cfg.Progress(eng.Fired(), eng.Live(), eng.Now())
				}
				return cancellable && ctx.Err() != nil
			})
		}
		eng.RunUntilIdle()
		stopped = eng.Stopped()
	}
	// Makespan and fabric totals aggregate over shards; on the classic
	// path they reduce to the lone engine and fabric.
	var end units.Time
	for _, e := range engines {
		if t := e.Now(); t > end {
			end = t
		}
	}
	var net netTotals
	for _, f := range fabrics {
		net.dropped += f.Dropped()
		net.corrupted += f.Corrupted()
	}
	res := collect(cfg, end, net, nodes, loads, srvs, inj, stations)
	if ctx != nil && stopped {
		return res, ctx.Err()
	}
	return res, nil
}

// netTotals is the fabric damage rollup summed over shards.
type netTotals struct {
	dropped   uint64
	corrupted uint64
}

// collect assembles the Result from the finished simulation. end is
// the makespan (latest shard clock) and net the fabric rollup.
func collect(cfg Config, end units.Time, net netTotals, nodes []*client.Node,
	loads []*workload.IOR, srvs []*pfs.Server, inj *faults.Injector,
	stations []*flowsim.Station) *Result {
	res := &Result{
		Policy:         cfg.Policy.String(),
		Duration:       end,
		BusyByCategory: make(map[string]units.Time),
	}
	catNames := []cpu.Category{cpu.CatIRQ, cpu.CatSoftirq, cpu.CatMigration,
		cpu.CatMemStall, cpu.CatCompute, cpu.CatSyscall, cpu.CatOther}

	var busy units.Time
	for i, n := range nodes {
		st := n.Stats()
		res.TotalBytes += st.BytesRead + st.BytesWritten
		res.HintedIRQs += st.HintedIRQs
		res.Interrupts += st.Interrupts
		res.Retries += st.Retries
		res.FailedTransfers += st.FailedTransfers
		res.HeaderDrops += st.HeaderDrops
		res.RingDrops += n.NIC().Stats().RingDrops
		res.Faults.StripsRetried += st.StripsRetried
		res.Faults.DuplicateStrips += st.DuplicateStrips
		res.Faults.PartialOps += st.PartialTransfers
		res.Faults.PartialBytes += st.PartialBytes
		res.Faults.OpErrors = append(res.Faults.OpErrors, n.OpErrors()...)
		res.ReorderedFrames += st.ReorderedFrames
		if st.ReorderDepthMax > res.ReorderDepthMax {
			res.ReorderDepthMax = st.ReorderDepthMax
		}
		if len(st.PolicyCounters) > 0 {
			if res.PolicyStats == nil {
				res.PolicyStats = make(map[string]uint64, len(st.PolicyCounters))
			}
			//lint:maporder summed merge is order-independent
			for k, v := range st.PolicyCounters {
				res.PolicyStats[k] += v
			}
		}

		agg := n.Caches().Aggregate()
		res.LineAccesses += agg.Accesses
		res.LineMisses += agg.Misses
		res.RemoteLines += agg.RemoteTransfers
		res.MemoryLines += agg.MemoryFills

		total := n.CPU().TotalStats()
		busy += total.Busy
		for _, c := range catNames {
			res.BusyByCategory[c.String()] += total.ByCategory[c]
		}
		res.UnhaltedCycles += n.CPU().UnhaltedCycles()

		dur := loads[i].Finished()
		if dur <= 0 {
			dur = end
		}
		res.PerClient = append(res.PerClient, units.Over(st.BytesRead+st.BytesWritten, dur))
	}
	if res.Duration > 0 {
		res.Bandwidth = units.Over(res.TotalBytes, res.Duration)
		coreNS := float64(res.Duration) * float64(cfg.Clients*cfg.CoresPerClient)
		res.CPUUtilization = float64(busy) / coreNS
	}
	if res.LineAccesses > 0 {
		res.CacheMissRate = float64(res.LineMisses) / float64(res.LineAccesses)
	}
	var lats, wlats []float64
	for _, n := range nodes {
		lats = append(lats, n.Latencies()...)
		wlats = append(wlats, n.WriteLatencies()...)
	}
	if len(lats) > 0 {
		var sum float64
		for _, l := range lats {
			sum += l
		}
		res.LatencyMean = units.Time(sum / float64(len(lats)))
		res.LatencyP50 = units.Time(metrics.Percentile(lats, 50))
		res.LatencyP99 = units.Time(metrics.Percentile(lats, 99))
	}
	if len(wlats) > 0 {
		res.WriteLatencyP50 = units.Time(metrics.Percentile(wlats, 50))
		res.WriteLatencyP99 = units.Time(metrics.Percentile(wlats, 99))
	}
	var strips metrics.Histogram
	for _, n := range nodes {
		strips.Merge(n.StripLatencies())
	}
	if strips.Count() > 0 {
		res.StripCount = strips.Count()
		res.StripLatencyMean = units.Time(strips.Mean())
		res.StripLatencyP50 = units.Time(strips.Percentile(50))
		res.StripLatencyP95 = units.Time(strips.Percentile(95))
		res.StripLatencyP99 = units.Time(strips.Percentile(99))
	}
	for _, s := range srvs {
		res.ServerBytes = append(res.ServerBytes, s.Stats().BytesSent+s.Stats().BytesWritten)
		res.Faults.StallsInjected += s.Stats().Stalled
	}

	// Fault rollup: wire damage from the fabric, recovery activity from
	// the clients (filled above), injection accounting from the armed
	// injector, and goodput against the workloads' offered load.
	res.NetDrops = net.dropped
	res.Faults.FramesDropped = net.dropped
	res.Faults.FramesCorrupted = net.corrupted
	res.Faults.HeaderDrops = res.HeaderDrops
	res.Faults.RingDrops = res.RingDrops
	res.Faults.FailedOps = res.FailedTransfers
	ist := inj.Finish(end)
	res.Faults.Crashes = ist.Crashes
	res.Faults.ServerDowntime = ist.Downtime
	res.Faults.LastReviveAt = ist.LastReviveAt
	res.Faults.StormFrames = ist.StormFrames
	if ist.LastReviveAt > 0 && res.Duration > ist.LastReviveAt {
		res.Faults.RecoveryTime = res.Duration - ist.LastReviveAt
	}
	for _, w := range loads {
		res.Faults.OfferedBytes += w.TotalBytes()
	}
	res.Faults.GoodputBytes = res.TotalBytes
	// Background fluid accounting: integrate every station through the
	// exact makespan (including the final partial step) and roll up.
	// Station order is fixed (servers then clients, construction order)
	// so the float sums are bit-stable across layouts.
	for _, st := range stations {
		st.Finalize(end)
		res.BackgroundOfferedBytes += st.OfferedBytes()
		res.BackgroundServedBytes += st.ServedBytes()
		res.BackgroundBacklogBytes += st.BacklogBytes()
	}
	if dur := float64(res.Duration); dur > 0 {
		var nicBusy float64
		for _, n := range nodes {
			nicBusy += float64(n.NICIngressBusy()) / dur
		}
		res.ClientNICBusy = nicBusy / float64(len(nodes))
		var diskBusy, cpuBusy float64
		for _, s := range srvs {
			diskBusy += float64(s.Disk().Stats().BusyTime) / dur
			cpuBusy += float64(s.CPUBusy()) / dur
		}
		res.DiskBusy = diskBusy / float64(len(srvs))
		res.ServerCPUBusy = cpuBusy / float64(len(srvs))
	}
	return res
}

// RunTraced is Run with a bounded event trace attached to the first
// client node; it returns the trace ring alongside the result. Useful
// for understanding a configuration's interrupt routing decisions
// (cmd/saisim -trace).
func RunTraced(cfg Config, traceCap int) (*Result, *trace.Ring, error) {
	return RunTracedContext(context.Background(), cfg, traceCap)
}

// RunTracedContext is RunTraced with RunContext's cancellation
// semantics.
func RunTracedContext(ctx context.Context, cfg Config, traceCap int) (*Result, *trace.Ring, error) {
	if traceCap <= 0 {
		traceCap = 64
	}
	ring := trace.NewRing(traceCap)
	res, err := run(ctx, cfg, func(nodes []*client.Node, _ []*pfs.Server) {
		nodes[0].SetTracer(ring)
	})
	return res, ring, err
}

// RunSpanned is Run with full per-strip lifecycle tracing: every client
// and server records typed spans (issue → service → fabric → ring →
// steer → irq → consume) plus per-core busy slices into one SpanLog,
// returned alongside the result for Chrome-trace export
// (cmd/saisim -trace-out).
func RunSpanned(cfg Config) (*Result, *trace.SpanLog, error) {
	return RunSpannedContext(context.Background(), cfg)
}

// RunSpannedContext is RunSpanned with RunContext's cancellation
// semantics.
func RunSpannedContext(ctx context.Context, cfg Config) (*Result, *trace.SpanLog, error) {
	log := trace.NewSpanLog()
	res, err := run(ctx, cfg, func(nodes []*client.Node, srvs []*pfs.Server) {
		for _, n := range nodes {
			n.SetSpanLog(log)
			id := int(n.Config().Node)
			n.CPU().SetSpanHook(func(core int, cat cpu.Category, start, end units.Time) {
				log.AddCoreSpan(trace.CoreSpan{Node: id, Core: core,
					Name: cat.String(), Start: start, End: end})
			})
		}
		for _, s := range srvs {
			s.SetSpanLog(log)
		}
	})
	return res, log, err
}
