// Tracing: observe the simulator's interrupt routing decisions — run a
// short SAIs configuration with the event trace attached, print the
// last events, and export the whole trace in Chrome's trace-event JSON
// (open chrome://tracing or https://ui.perfetto.dev and load the file).
//
// Run with:
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/units"
)

func main() {
	cfg := cluster.DefaultConfig()
	cfg.Policy = irqsched.PolicySourceAware
	cfg.Servers = 4
	cfg.BytesPerProc = 2 * units.MiB

	res, ring, err := cluster.RunTraced(cfg, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: %.1f MB/s under %s; %d trace events captured\n\n",
		float64(res.Bandwidth)/1e6, res.Policy, ring.Len())

	recs := ring.Records()
	if len(recs) > 10 {
		recs = recs[len(recs)-10:]
	}
	for _, r := range recs {
		fmt.Println(r)
	}

	out, err := os.CreateTemp("", "sais-trace-*.json")
	if err != nil {
		log.Fatal(err)
	}
	werr := ring.ExportChromeTrace(out)
	if cerr := out.Close(); werr == nil {
		werr = cerr // a dropped close error would hide a truncated trace
	}
	if werr != nil {
		log.Fatal(werr)
	}
	fmt.Printf("\nChrome trace written to %s (load in chrome://tracing)\n", out.Name())
}
