package rng

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed draw %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(99)
	a := root.Split("disk")
	root2 := New(99)
	b := root2.Split("disk")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split is not deterministic at draw %d", i)
		}
	}
	// Different labels must give different streams.
	c := New(99).Split("disk")
	d := New(99).Split("nic")
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("labels disk/nic produced %d/100 identical draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared sanity check over 8 buckets.
	r := New(1234)
	const buckets, draws = 8, 80000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[r.Uint64n(buckets)]++
	}
	expect := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range count {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// 7 degrees of freedom; 99.9th percentile ≈ 24.3.
	if chi2 > 24.3 {
		t.Errorf("chi-squared = %.2f, suspiciously non-uniform: %v", chi2, count)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(8)
	const mean, n = 250.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Errorf("Exp mean = %.2f, want ~%.2f", got, mean)
	}
	if r.Exp(0) != 0 || r.Exp(-1) != 0 {
		t.Error("Exp with non-positive mean should be 0")
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(9)
	const mean, sd, n = 40.0, 5.0, 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(mean, sd)
		sum += v
		sumsq += v * v
	}
	m := sum / n
	variance := sumsq/n - m*m
	if math.Abs(m-mean) > 0.1 {
		t.Errorf("Normal mean = %.3f, want ~%.1f", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.1 {
		t.Errorf("Normal stddev = %.3f, want ~%.1f", math.Sqrt(variance), sd)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(10)
	for i := 0; i < 10000; i++ {
		v := r.TruncNormal(10, 50, 2, 12)
		if v < 2 || v > 12 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(11)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	trues := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	frac := float64(trues) / 100000
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %.3f", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(13)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Errorf("Shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestMul64(t *testing.T) {
	hi, lo := mul64(math.MaxUint64, math.MaxUint64)
	if hi != math.MaxUint64-1 || lo != 1 {
		t.Errorf("mul64(max,max) = (%d,%d)", hi, lo)
	}
	hi, lo = mul64(1<<32, 1<<32)
	if hi != 1 || lo != 0 {
		t.Errorf("mul64(2^32,2^32) = (%d,%d), want (1,0)", hi, lo)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Exp(100)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(21)
	const n, draws = 16, 100000
	var count [n]int
	for i := 0; i < draws; i++ {
		v := r.Zipf(n, 1.0)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		count[v]++
	}
	// Rank 0 must dominate and counts must be monotonically
	// non-increasing within sampling noise.
	if count[0] < count[1] || count[1] < count[4] || count[4] < count[12] {
		t.Errorf("Zipf counts not skewed: %v", count)
	}
	// For s=1, P(0)/P(1) = 2 within tolerance.
	ratio := float64(count[0]) / float64(count[1])
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("rank ratio = %.2f, want ≈2", ratio)
	}
}

func TestZipfTableRebuilds(t *testing.T) {
	r := New(22)
	a := r.Zipf(8, 1.0)
	b := r.Zipf(32, 2.0) // different params rebuild the table
	if a < 0 || a >= 8 || b < 0 || b >= 32 {
		t.Errorf("values out of range: %d %d", a, b)
	}
}

func TestZipfValidation(t *testing.T) {
	r := New(23)
	for _, f := range []func(){
		func() { r.Zipf(0, 1) },
		func() { r.Zipf(8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDeriveNoDiagonalAliasing(t *testing.T) {
	// The bug Derive fixes: seed+stream addition makes run seed S,
	// stream i collide with run seed S+1, stream i-1. Check a grid.
	seen := map[uint64]string{}
	for seed := uint64(1); seed <= 8; seed++ {
		for stream := uint64(0); stream < 64; stream++ {
			d := Derive(seed, stream)
			if prev, ok := seen[d]; ok {
				t.Fatalf("Derive(%d,%d) collides with %s", seed, stream, prev)
			}
			seen[d] = fmt.Sprintf("Derive(%d,%d)", seed, stream)
			if naive := seed + stream; d == naive {
				t.Errorf("Derive(%d,%d) equals the naive sum %d", seed, stream, naive)
			}
		}
	}
}

func TestDeriveDeterministic(t *testing.T) {
	if Derive(42, 3) != Derive(42, 3) {
		t.Error("Derive is not a pure function")
	}
	if Derive(42, 3) == Derive(42, 4) || Derive(42, 3) == Derive(43, 3) {
		t.Error("adjacent inputs should map to distinct outputs")
	}
}
