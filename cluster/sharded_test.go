package cluster_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"sais/cluster"
	"sais/internal/faults"
	"sais/internal/irqsched"
	"sais/internal/units"
)

// shardedBase is a small but non-trivial multi-client cluster used by
// the differential tests: enough clients and servers that every shard
// count in {1..8} splits the node set unevenly, small enough byte
// budgets that a full run stays in the tens of milliseconds.
func shardedBase() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Clients = 3
	cfg.Servers = 5
	cfg.CoresPerClient = 4
	cfg.ProcsPerClient = 2
	cfg.BytesPerProc = 2 * units.MiB
	cfg.Policy = irqsched.PolicySourceAware
	return cfg
}

// resultJSON runs cfg and returns the marshalled Result — the byte
// string the sharding refactor promises is layout-invariant.
func resultJSON(t *testing.T, cfg cluster.Config) []byte {
	t.Helper()
	res, err := cluster.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// shardLayouts is the matrix every differential test sweeps. Shards=3
// divides 8 nodes unevenly; 8 shards on 8 nodes puts one node per
// engine; workers=4 exercises the parallel round path.
var shardLayouts = []struct{ shards, workers int }{
	{2, 1}, {3, 1}, {4, 4}, {8, 1}, {8, 4},
}

// TestShardedByteIdentity is the refactor's contract: the same
// cluster.Result bytes — bandwidth, cache stats, strip-latency
// percentiles, fault counters — for every shard and worker layout.
func TestShardedByteIdentity(t *testing.T) {
	variants := []struct {
		name string
		mut  func(*cluster.Config)
	}{
		{"read", func(cfg *cluster.Config) {}},
		{"write", func(cfg *cluster.Config) { cfg.WriteWorkload = true }},
		{"rss-bg", func(cfg *cluster.Config) {
			cfg.RSSQueues = 4
			cfg.BackgroundLoad = 0.15
			cfg.SharedFiles = true
		}},
		{"random-seg", func(cfg *cluster.Config) {
			cfg.RandomAccess = true
			cfg.Segmented = true
			cfg.Seed = 7
		}},
		{"collective", func(cfg *cluster.Config) {
			cfg.Aggregators = 1
			cfg.ProcsPerClient = 4
		}},
		{"faulty", func(cfg *cluster.Config) {
			cfg.LossRate = 0.01
			cfg.CorruptRate = 0.005
			cfg.RetryTimeout = 30 * units.Millisecond
			cfg.MaxRetries = 4
			cfg.ServerStall = 100 * units.Microsecond
			cfg.ServerStallRate = 0.2
			cfg.Faults = &faults.Plan{Timeline: []faults.TimelineEvent{
				{At: 2 * units.Millisecond, Kind: faults.KindCrash, Server: 1},
				{At: 6 * units.Millisecond, Kind: faults.KindRevive, Server: 1},
				{At: 3 * units.Millisecond, Kind: faults.KindDegradeLink, Factor: 4},
				{At: 5 * units.Millisecond, Kind: faults.KindDegradeLink, Factor: 1},
				{At: 4 * units.Millisecond, Kind: faults.KindStormStart,
					Client: 0, Period: 50 * units.Microsecond},
				{At: 4500 * units.Microsecond, Kind: faults.KindStormStop},
			}}
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := shardedBase()
			v.mut(&cfg)
			ref := resultJSON(t, cfg)
			for _, l := range shardLayouts {
				c := cfg
				c.Shards, c.Workers = l.shards, l.workers
				got := resultJSON(t, c)
				if !bytes.Equal(ref, got) {
					t.Errorf("shards=%d workers=%d diverged from single-engine run:\nref %s\ngot %s",
						l.shards, l.workers, ref, got)
				}
			}
		})
	}
}

// TestShardedTraceIdentity extends byte-identity to the full span log:
// same span count, same orphan count, and a byte-identical Chrome
// trace export for a sharded run under parallel workers.
func TestShardedTraceIdentity(t *testing.T) {
	cfg := shardedBase()
	run := func(shards, workers int) (int, uint64, []byte) {
		c := cfg
		c.Shards, c.Workers = shards, workers
		_, log, err := cluster.RunSpanned(c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := log.ExportChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return log.Len(), log.Orphans(), buf.Bytes()
	}
	spans, orphans, ref := run(0, 0)
	if spans == 0 {
		t.Fatal("reference run produced no spans")
	}
	for _, l := range shardLayouts {
		s, o, got := run(l.shards, l.workers)
		if s != spans || o != orphans {
			t.Fatalf("shards=%d workers=%d: %d spans / %d orphans, want %d / %d",
				l.shards, l.workers, s, o, spans, orphans)
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("shards=%d workers=%d: trace export diverged (%d vs %d bytes)",
				l.shards, l.workers, len(got), len(ref))
		}
	}
}

// TestShardedScale1000 is the issue's scale scenario: 1000 clients and
// 100 servers with tiny per-proc budgets, run once on a single engine
// and once on 8 shards × 4 workers. The run must complete and produce
// identical results — the point is that conservative synchronization
// holds up at three orders of magnitude more nodes than the testbed.
func TestShardedScale1000(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node scenario skipped in -short mode")
	}
	cfg := cluster.DefaultConfig()
	cfg.Clients = 1000
	cfg.Servers = 100
	cfg.CoresPerClient = 2
	cfg.ProcsPerClient = 1
	cfg.CachePerCore = 64 * units.KiB
	cfg.StripSize = 16 * units.KiB
	cfg.TransferSize = 64 * units.KiB
	cfg.BytesPerProc = 128 * units.KiB
	cfg.Policy = irqsched.PolicySourceAware
	ref := resultJSON(t, cfg)
	cfg.Shards, cfg.Workers = 8, 4
	got := resultJSON(t, cfg)
	if !bytes.Equal(ref, got) {
		t.Fatalf("1000-client run diverged:\nref %s\ngot %s", ref, got)
	}
	var res cluster.Result
	if err := json.Unmarshal(got, &res); err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth <= 0 {
		t.Fatalf("bandwidth %v, want positive", res.Bandwidth)
	}
}

// TestShardedProgress checks the aggregate progress callback fires on
// sharded runs and reports a non-decreasing global clock.
func TestShardedProgress(t *testing.T) {
	cfg := shardedBase()
	cfg.Shards, cfg.Workers = 4, 1
	var calls int
	var lastNow units.Time
	var lastFired uint64
	cfg.Progress = func(fired uint64, live int, now units.Time) {
		calls++
		if now < lastNow {
			t.Fatalf("global clock went backwards: %v after %v", now, lastNow)
		}
		if fired < lastFired {
			t.Fatalf("fired count went backwards: %d after %d", fired, lastFired)
		}
		if live < 0 {
			t.Fatalf("negative live count %d", live)
		}
		lastNow, lastFired = now, fired
	}
	if _, err := cluster.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never fired on a sharded run")
	}
}

// TestShardedValidate covers the new Config knobs' error paths.
func TestShardedValidate(t *testing.T) {
	cfg := shardedBase()
	cfg.Shards = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative shards accepted")
	}
	cfg = shardedBase()
	cfg.Workers = -2
	if err := cfg.Validate(); err == nil {
		t.Error("negative workers accepted")
	}
	cfg = shardedBase()
	cfg.Shards = 2
	cfg.FabricLatency = 0
	if err := cfg.Validate(); err == nil {
		t.Error("sharded run with zero fabric latency accepted")
	}
	// More shards than nodes is legal — it clamps.
	cfg = shardedBase()
	cfg.Shards = 500
	cfg.Workers = 16
	if err := cfg.Validate(); err != nil {
		t.Errorf("oversized shard count rejected: %v", err)
	}
	if _, err := cluster.Run(cfg); err != nil {
		t.Errorf("oversized shard count failed at run time: %v", err)
	}
}

// TestShardedDegradeLinkRejected documents the degrade-link floor:
// shrinking the fabric latency below the lookahead would break the
// sharded executor's conservative horizon, so factors < 1 are rejected
// at plan validation — uniformly, for every shard count, so shards=1
// runs can never silently diverge from sharded runs of the same plan.
func TestShardedDegradeLinkRejected(t *testing.T) {
	cfg := shardedBase()
	cfg.Shards = 2
	cfg.Faults = &faults.Plan{Timeline: []faults.TimelineEvent{
		{At: units.Millisecond, Kind: faults.KindDegradeLink, Factor: 0.5},
	}}
	if _, err := cluster.Run(cfg); err == nil {
		t.Fatal("speed-up degrade-link accepted on a sharded run")
	}
	cfg.Shards = 0
	if _, err := cluster.Run(cfg); err == nil {
		t.Fatal("speed-up degrade-link accepted on a single-engine run; validation must be uniform")
	}
}
