package lint

import (
	"sort"
	"strings"

	"sais/internal/lint/analysis"
)

// WaiverHygiene keeps the suppression vocabulary honest. A //lint:
// waiver is an audit record — "a human reviewed this site and the
// invariant holds for this stated reason" — and a waiver that no longer
// suppresses anything is a stale audit record: the hazardous code it
// covered was refactored away, or the directive name is a typo that
// never matched a finding in the first place (the worst case, because a
// typoed waiver silently fails to suppress and silently never expires).
//
// The analyzer must run last, over the same shared directive index
// every other analyzer consulted; an entry nobody marked used is
// reported as stale, and an entry whose name is outside the registered
// vocabulary as unknown. The check runs under `saisvet -strict-waivers`
// (on in CI and `make lint`); there is deliberately no suppression
// directive for it — the fix for a stale waiver is deleting the waiver.
var WaiverHygiene = &analysis.Analyzer{
	Name: "waiverhygiene",
	Doc: "//lint: waivers must suppress at least one finding and use a " +
		"registered directive name (fix by deleting the stale waiver)",
}

// Run is attached in an init function: runWaiverHygiene consults
// KnownDirectives, which ranges over Analyzers, which contains this
// analyzer — a static initialization cycle if expressed as a literal.
func init() { WaiverHygiene.Run = runWaiverHygiene }

func runWaiverHygiene(pass *analysis.Pass) (any, error) {
	known := KnownDirectives()
	for _, e := range pass.Directives().Stale(known) {
		switch {
		case e.Unknown:
			pass.Reportf(e.Pos, "unknown lint directive //lint:%s (known: %s): a typoed waiver suppresses nothing, silently", e.Name, knownDirectiveList(known))
		case e.PkgWide:
			pass.Reportf(e.Pos, "stale package waiver //lint:package %s: no %s finding in this package needed it; delete the waiver so the analyzer regains its leverage", e.Name, e.Name)
		default:
			pass.Reportf(e.Pos, "stale waiver //lint:%s: it no longer suppresses any finding; delete it so the audit trail stays truthful", e.Name)
		}
	}
	return nil, nil
}

// knownDirectiveList renders the registered directive vocabulary for
// the unknown-directive diagnostic.
func knownDirectiveList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
