package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sais/internal/lint/analysis"
)

// SimDeterminism enforces the replayability ground rules. Three of its
// checks apply to all non-test code in the module, two only to the
// deterministic packages:
//
//   - wall clock (everywhere): calls to time.Now, time.Sleep,
//     time.Since, and friends make output depend on host timing.
//     Suppress a legitimate site (a stderr progress heartbeat, a
//     host-benchmark stopwatch) with //lint:wallclock.
//   - global math/rand (everywhere): the global generator is shared
//     mutable state outside the seed tree; all randomness must come
//     from sais/internal/rng Sources. Suppress with //lint:globalrand.
//   - go statements (deterministic packages only): goroutines
//     interleave nondeterministically; concurrency belongs in
//     internal/runner, above the simulator. Suppress with
//     //lint:goroutine, or — for a package whose design is built on a
//     controlled concurrency discipline, like internal/shard's
//     barrier-synchronized workers — with a file-header
//     //lint:package goroutine waiver.
//   - map range (deterministic packages only): map iteration order is
//     randomized per run, so any state mutation or output emitted from
//     such a loop can differ between replays. Sort the keys or keep a
//     slice; a loop whose body is genuinely order-independent (pure
//     commutative accumulation) may be annotated //lint:maporder with
//     the reason.
//   - tainted calls (deterministic packages only): a function is
//     tainted when it transitively reaches any of the hazards above —
//     computed per package and exported as facts through the vetx
//     channel, so the call graph is followed across package
//     boundaries. A deterministic package calling a tainted helper in
//     a non-deterministic package (the laundering path: a relaxed-scope
//     wrapper around a goroutine spawn or map range) is flagged at the
//     call site and suppressed with the hazard's own directive. A
//     //lint:-waived hazard does not taint: the waiver is the audit
//     that the invariant holds there.
var SimDeterminism = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall clocks, global math/rand, goroutines, map-ordered iteration, " +
		"and calls to transitively nondeterministic functions in the deterministic " +
		"simulator packages (suppress: //lint:wallclock, //lint:globalrand, " +
		"//lint:goroutine, //lint:maporder)",
	Directives: []string{"wallclock", "globalrand", "goroutine", "maporder"},
	Run:        runSimDeterminism,
}

// wallClockFuncs are the time package entry points that observe or wait
// on the host clock. Pure constructors and constants (time.Duration,
// time.Millisecond) stay legal: the hazard is reading the clock, not
// naming a unit.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// taintKinds orders the hazard kinds for deterministic diagnostics.
var taintKinds = []string{"wallclock", "globalrand", "goroutine", "maporder"}

// callSite records one static call edge out of a declared function.
type callSite struct {
	callee *types.Func
	pos    token.Pos
}

func runSimDeterminism(pass *analysis.Pass) (any, error) {
	dirs := pass.Directives()
	deterministic := isDeterministicPkg(pass.Pkg.Path())

	// taints[fn][kind] = provenance description. Seeded with the
	// unsuppressed direct hazards of this package's functions, then
	// propagated along static call edges to a fixpoint (cross-package
	// edges consult imported facts, so the propagation is transitive
	// over the whole dependency graph).
	taints := make(map[*types.Func]map[string]string)
	calls := make(map[*types.Func][]callSite)
	var fnOrder []*types.Func

	taint := func(fn *types.Func, kind, via string) {
		if fn == nil {
			return
		}
		m := taints[fn]
		if m == nil {
			m = make(map[string]string)
			taints[fn] = m
		}
		if _, ok := m[kind]; !ok {
			m[kind] = via
		}
	}

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			var fn *types.Func
			if isFunc {
				fn, _ = pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn != nil {
					fnOrder = append(fnOrder, fn)
				}
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ImportSpec:
					path := importPath(n)
					if path == "math/rand" || path == "math/rand/v2" {
						if !dirs.Suppressed(n.Pos(), "globalrand") {
							pass.Reportf(n.Pos(), "import of %s: use sais/internal/rng so every draw hangs off an explicit seed", path)
						}
					}
				case *ast.SelectorExpr:
					obj := pass.TypesInfo.Uses[n.Sel]
					if obj == nil {
						return true
					}
					pkg := obj.Pkg()
					if pkg == nil {
						return true
					}
					switch {
					case pkg.Path() == "time" && wallClockFuncs[n.Sel.Name]:
						if !dirs.Suppressed(n.Pos(), "wallclock") {
							pass.Reportf(n.Pos(), "time.%s reads the wall clock: simulated time must come from the event engine (suppress a legitimate site with //lint:wallclock)", n.Sel.Name)
							taint(fn, "wallclock", fmt.Sprintf("uses time.%s at %s", n.Sel.Name, pass.Fset.Position(n.Pos())))
						}
					case pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2":
						if !dirs.Suppressed(n.Pos(), "globalrand") {
							taint(fn, "globalrand", fmt.Sprintf("uses %s.%s at %s", pkg.Path(), n.Sel.Name, pass.Fset.Position(n.Pos())))
						}
					}
				case *ast.GoStmt:
					if deterministic && !dirs.Suppressed(n.Pos(), "goroutine") {
						pass.Reportf(n.Pos(), "go statement in deterministic package %s: goroutine interleaving is not replayable; hoist concurrency into internal/runner", pass.Pkg.Path())
						taint(fn, "goroutine", fmt.Sprintf("spawns a goroutine at %s", pass.Fset.Position(n.Pos())))
					} else if !deterministic && !dirs.Suppressed(n.Pos(), "goroutine") {
						taint(fn, "goroutine", fmt.Sprintf("spawns a goroutine at %s", pass.Fset.Position(n.Pos())))
					}
				case *ast.RangeStmt:
					if n.X == nil {
						return true
					}
					t := pass.TypeOf(n.X)
					if t == nil {
						return true
					}
					if _, ok := t.Underlying().(*types.Map); !ok {
						return true
					}
					if deterministic {
						if !dirs.Suppressed(n.Pos(), "maporder") {
							pass.Reportf(n.Pos(), "range over map in deterministic package %s: iteration order varies per run; sort the keys first or keep a slice (//lint:maporder if provably order-independent)", pass.Pkg.Path())
							taint(fn, "maporder", fmt.Sprintf("ranges over a map at %s", pass.Fset.Position(n.Pos())))
						}
					} else if !dirs.Suppressed(n.Pos(), "maporder") {
						taint(fn, "maporder", fmt.Sprintf("ranges over a map at %s", pass.Fset.Position(n.Pos())))
					}
				case *ast.CallExpr:
					if fn == nil {
						return true
					}
					if callee := staticCallee(pass, n); callee != nil && callee != fn {
						calls[fn] = append(calls[fn], callSite{callee: callee, pos: n.Pos()})
					}
				}
				return true
			})
		}
	}

	// Seed cross-package taint from imported facts, then iterate the
	// same-package edges to a fixpoint. Functions are visited in source
	// order and a (fn, kind) pair keeps its first provenance, so the
	// exported facts are deterministic.
	calleeTaints := func(callee *types.Func) map[string]string {
		if callee.Pkg() == pass.Pkg {
			return taints[callee]
		}
		if fact, ok := pass.DepFunctionFact(callee); ok {
			return fact.Taints
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fnOrder {
			for _, cs := range calls[fn] {
				for _, kind := range taintKinds {
					via, tainted := calleeTaints(cs.callee)[kind]
					if !tainted {
						continue
					}
					if _, have := taints[fn][kind]; have {
						continue
					}
					taint(fn, kind, fmt.Sprintf("calls %s (%s)", calleeName(cs.callee), via))
					changed = true
				}
			}
		}
	}

	// Export the taint facts for dependent packages.
	for _, fn := range fnOrder {
		if m := taints[fn]; len(m) > 0 {
			fact := pass.Facts.Fact(fn.FullName())
			if fact.Taints == nil {
				fact.Taints = make(map[string]string)
			}
			for k, v := range m {
				fact.Taints[k] = clipVia(v)
			}
		}
	}

	// Transitive findings: a deterministic package calling a tainted
	// function declared in a non-deterministic package. Calls into
	// other deterministic packages are not re-reported here — an
	// unwaived hazard there is already a finding in its own package.
	if deterministic {
		var sites []callSite
		for _, fn := range fnOrder {
			sites = append(sites, calls[fn]...)
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		for _, cs := range sites {
			pkg := cs.callee.Pkg()
			if pkg == nil || pkg == pass.Pkg || isDeterministicPkg(pkg.Path()) {
				continue
			}
			if !strings.HasPrefix(pkg.Path(), "sais/") && pkg.Path() != "sais" {
				continue // stdlib and foreign packages export no facts
			}
			fact, ok := pass.DepFunctionFact(cs.callee)
			if !ok {
				continue
			}
			for _, kind := range taintKinds {
				via, tainted := fact.Taints[kind]
				if !tainted || dirs.Suppressed(cs.pos, kind) {
					continue
				}
				pass.Reportf(cs.pos, "call from deterministic package %s to %s-tainted %s: %s (suppress a reviewed site with //lint:%s)",
					pass.Pkg.Path(), kind, calleeName(cs.callee), via, kind)
			}
		}
	}
	return nil, nil
}

// calleeName renders a function for diagnostics: package-qualified,
// with the receiver kept for methods.
func calleeName(fn *types.Func) string {
	return fn.FullName()
}

// clipVia bounds a provenance chain so deeply nested call paths don't
// balloon the facts file or the diagnostic line.
func clipVia(via string) string {
	const max = 240
	if len(via) <= max {
		return via
	}
	return via[:max] + "...)"
}

// importPath returns the unquoted import path of spec.
func importPath(spec *ast.ImportSpec) string {
	p := spec.Path.Value
	if len(p) >= 2 && p[0] == '"' && p[len(p)-1] == '"' {
		return p[1 : len(p)-1]
	}
	return p
}
