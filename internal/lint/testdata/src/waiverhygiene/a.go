// Fixture for the waiverhygiene analyzer, run under the full suite the
// way the saisvet driver runs it: waivers consumed by earlier analyzers
// are silent, waivers that suppress nothing are stale, and names
// outside the registered vocabulary are typos. Expectations for
// diagnostics on the //lint: comments themselves use the block-comment
// expectation form, since a line comment consumes the rest of its line.
//
/* want `stale package waiver //lint:package goroutine` */ //lint:package goroutine legacy worker pool was removed in a refactor
package main

import "time"

// used: the waiver below suppresses a real simdeterminism finding, so
// waiverhygiene stays silent about it.
func used() int64 {
	//lint:wallclock fixture exercises a consumed waiver
	return time.Now().UnixNano()
}

func clean() int {
	/* want `stale waiver //lint:maporder` */ //lint:maporder the map range here was refactored away
	return 1
}

func typo() int {
	/* want `unknown lint directive //lint:wallclok` */ //lint:wallclok misspelled directive
	return 2
}

func main() {}
