package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"sais/internal/lint/analysis"
)

// CloseCheck enforces that buffered-output teardown errors reach the
// caller. A dropped error from Close or Flush on a writer is silent
// data loss: the OS reports short writes and full disks at close time,
// so `defer f.Close()` after os.Create can leave a truncated file on
// disk while the program reports success — the bug class PR 4 fixed in
// SaveConfig, SavePlan, and the profile writers.
//
// The analyzer flags any statement that discards the error result of
// Close or Flush — an expression statement, a defer, or a blank
// assignment — when the receiver is a writer: its static type
// implements io.WriteCloser (for Flush: has Flush() error), and it is
// not provably a read-only handle. A *os.File whose every definition in
// the enclosing function comes from os.Open is read-only and exempt;
// one from os.Create/os.OpenFile is not. Route the error through the
// `if cerr := f.Close(); err == nil { err = cerr }` pattern or a named
// helper. Suppress with //lint:close and a reason.
var CloseCheck = &analysis.Analyzer{
	Name: "closecheck",
	Doc: "Close/Flush errors on writers must be checked, not discarded " +
		"(suppress: //lint:close)",
	Run: runCloseCheck,
}

// writeCloser is io.WriteCloser, constructed directly so the analyzer
// does not depend on the "io" package being in the import graph of the
// package under analysis.
var writeCloser = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	sig := func(params, results []*types.Var) *types.Signature {
		return types.NewSignatureType(nil, nil, nil,
			types.NewTuple(params...), types.NewTuple(results...), false)
	}
	v := func(name string, t types.Type) *types.Var {
		return types.NewVar(token.NoPos, nil, name, t)
	}
	iface := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Write", sig(
			[]*types.Var{v("p", byteSlice)},
			[]*types.Var{v("n", types.Typ[types.Int]), v("err", errType)})),
		types.NewFunc(token.NoPos, nil, "Close", sig(nil,
			[]*types.Var{v("err", errType)})),
	}, nil)
	iface.Complete()
	return iface
}()

func runCloseCheck(pass *analysis.Pass) (any, error) {
	dirs := newDirectiveIndex(pass.Fset, pass.Files)

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			case *ast.AssignStmt:
				if n.Tok == token.ASSIGN && len(n.Rhs) == 1 && allBlank(n.Lhs) {
					call, _ = n.Rhs[0].(*ast.CallExpr)
				}
			}
			if call == nil {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Close" && name != "Flush" {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !isErrOnlySignature(fn) {
				return true
			}
			recv := pass.TypeOf(sel.X)
			if recv == nil {
				return true
			}
			if name == "Close" {
				if !types.Implements(recv, writeCloser) &&
					!types.Implements(types.NewPointer(recv), writeCloser) {
					return true // read-side closer: error carries no data loss
				}
				if openedReadOnly(pass, file, sel.X) {
					return true
				}
			}
			if dirs.suppressed(n.Pos(), "close") {
				return true
			}
			pass.Reportf(call.Pos(), "%s error discarded on writer %s: a failed %s is silent data loss; capture it (if cerr := x.%s(); err == nil { err = cerr })",
				name, types.ExprString(sel.X), name, name)
			return true
		})
	}
	return nil, nil
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// isErrOnlySignature reports whether fn is func() error.
func isErrOnlySignature(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	t, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && t.Obj().Pkg() == nil && t.Obj().Name() == "error"
}

// openedReadOnly reports whether x is a local variable whose every
// definition in file comes from os.Open — a read-only handle whose
// Close error carries no data-loss signal.
func openedReadOnly(pass *analysis.Pass, file *ast.File, x ast.Expr) bool {
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	sawOpen := false
	sawOther := false
	ast.Inspect(file, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || pass.TypesInfo.ObjectOf(lid) != obj {
				continue
			}
			if len(assign.Rhs) == 1 && isOsOpenCall(pass, assign.Rhs[0]) {
				sawOpen = true
			} else {
				sawOther = true
			}
		}
		return true
	})
	return sawOpen && !sawOther
}

// isOsOpenCall reports whether e is a call to os.Open (the read-only
// constructor; os.Create and os.OpenFile do not qualify).
func isOsOpenCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Open" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "os"
}
