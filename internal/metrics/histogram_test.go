package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"sais/internal/rng"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Errorf("empty histogram not all-zero: n=%d mean=%v p50=%v", h.Count(), h.Mean(), h.Percentile(50))
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for v := 1.0; v <= 100; v++ {
		h.Add(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5 exactly (sum is tracked)", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %v, want min", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Errorf("p100 = %v, want max", got)
	}
	p50 := h.Percentile(50)
	if math.Abs(p50-50.5) > 0.05*50.5 {
		t.Errorf("p50 = %v, want ≈50.5", p50)
	}
}

func TestHistogramClampsBadInputs(t *testing.T) {
	var h Histogram
	h.Add(-5)
	h.Add(math.NaN())
	h.Add(3)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 {
		t.Errorf("min = %v, want 0 (negatives and NaN clamp)", h.Min())
	}
	if got := h.Percentile(100); got != 3 {
		t.Errorf("p100 = %v", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for v := 1.0; v <= 50; v++ {
		a.Add(v)
		whole.Add(v)
	}
	for v := 51.0; v <= 100; v++ {
		b.Add(v)
		whole.Add(v)
	}
	a.Merge(&b)
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged n/min/max = %d/%v/%v, want %d/%v/%v",
			a.Count(), a.Min(), a.Max(), whole.Count(), whole.Min(), whole.Max())
	}
	for _, p := range []float64{25, 50, 95, 99} {
		if got, want := a.Percentile(p), whole.Percentile(p); got != want {
			t.Errorf("p%v: merged %v != whole %v", p, got, want)
		}
	}
}

// TestHistogramMatchesPercentile is the property test required by the
// issue: histogram percentiles must agree with metrics.Percentile on
// the raw slice within the bucket resolution.
func TestHistogramMatchesPercentile(t *testing.T) {
	check := func(seedLo uint32, scaleExp uint8, count uint16) bool {
		r := rng.New(uint64(seedLo) | 1)
		n := int(count%2000) + 1
		scale := math.Ldexp(1, int(scaleExp%40)) // spans ns..hours in float units
		xs := make([]float64, n)
		var h Histogram
		for i := range xs {
			v := r.Exp(scale)
			xs[i] = v
			h.Add(v)
		}
		for _, p := range []float64{0, 1, 25, 50, 75, 90, 95, 99, 100} {
			exact := Percentile(xs, p)
			est := h.Percentile(p)
			if math.Abs(est-exact) > math.Max(1.0, 0.05*math.Abs(exact)) {
				t.Logf("n=%d scale=%v p%v: est %v vs exact %v", n, scale, p, est, exact)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHistogramWideGapInterpolation(t *testing.T) {
	// Two samples orders of magnitude apart: rank interpolation must
	// mirror Percentile's convention, not snap to a bucket.
	var h Histogram
	h.Add(1)
	h.Add(1e9)
	exact := Percentile([]float64{1, 1e9}, 50)
	got := h.Percentile(50)
	if math.Abs(got-exact) > 0.05*exact {
		t.Errorf("p50 = %v, want ≈%v", got, exact)
	}
}
