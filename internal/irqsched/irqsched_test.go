package irqsched

import (
	"errors"
	"testing"

	"sais/internal/apic"
	"sais/internal/units"
)

// fakeLoads is a scriptable LoadReader.
type fakeLoads struct {
	busy  []units.Time
	queue []int
}

func (f *fakeLoads) NumCores() int             { return len(f.busy) }
func (f *fakeLoads) CoreBusy(i int) units.Time { return f.busy[i] }
func (f *fakeLoads) CoreQueue(i int) int       { return f.queue[i] }

func allowed(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	return a
}

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, p.Route(1, apic.NoHint, 0, allowed(4), 0))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinRestrictedSet(t *testing.T) {
	p := NewRoundRobin()
	set := []int{2, 5}
	if a, b := p.Route(1, apic.NoHint, 0, set, 0), p.Route(1, apic.NoHint, 0, set, 0); a != 2 || b != 5 {
		t.Errorf("restricted rr = %d,%d, want 2,5", a, b)
	}
}

func TestDedicated(t *testing.T) {
	p := NewDedicated(3)
	if got := p.Route(1, 0, 0, allowed(8), 0); got != 3 {
		t.Errorf("dedicated routed to %d, want 3 (ignoring hint)", got)
	}
	// Dedicated core not in allowed set falls back to first allowed.
	if got := p.Route(1, apic.NoHint, 0, []int{1, 2}, 0); got != 1 {
		t.Errorf("fallback = %d, want 1", got)
	}
}

func TestSourceAwareFollowsHint(t *testing.T) {
	p := NewSourceAware(nil)
	for hint := 0; hint < 4; hint++ {
		if got := p.Route(1, hint, 0, allowed(4), 0); got != hint {
			t.Errorf("hint %d routed to %d", hint, got)
		}
	}
	if p.Hinted() != 4 || p.Unhinted() != 0 {
		t.Errorf("hinted=%d unhinted=%d", p.Hinted(), p.Unhinted())
	}
}

func TestSourceAwareFallsBack(t *testing.T) {
	p := NewSourceAware(NewDedicated(2))
	if got := p.Route(1, apic.NoHint, 0, allowed(4), 0); got != 2 {
		t.Errorf("no-hint fallback = %d, want dedicated 2", got)
	}
	// Hint outside the allowed set also falls back.
	if got := p.Route(1, 7, 0, []int{1, 2}, 0); got != 2 {
		t.Errorf("disallowed hint fallback = %d, want 2", got)
	}
	if p.Unhinted() != 2 {
		t.Errorf("unhinted = %d, want 2", p.Unhinted())
	}
}

func TestIrqbalancePicksLeastLoaded(t *testing.T) {
	loads := &fakeLoads{
		busy:  []units.Time{1000, 10, 5000, 10},
		queue: make([]int, 4),
	}
	p := NewIrqbalance(loads, 10*units.Millisecond)
	// First route triggers a resample at t=period.
	got := p.Route(1, apic.NoHint, 0, allowed(4), 10*units.Millisecond)
	if got != 1 && got != 3 {
		t.Errorf("routed to %d, want a least-loaded core (1 or 3)", got)
	}
}

func TestIrqbalanceSpreadsAcrossEqualCores(t *testing.T) {
	loads := &fakeLoads{busy: make([]units.Time, 4), queue: make([]int, 4)}
	p := NewIrqbalance(loads, 10*units.Millisecond)
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		seen[p.Route(1, apic.NoHint, 0, allowed(4), 0)] = true
	}
	if len(seen) < 3 {
		t.Errorf("equal-load routing used only cores %v; should spread", seen)
	}
}

func TestIrqbalanceUsesQueuePressure(t *testing.T) {
	loads := &fakeLoads{busy: make([]units.Time, 2), queue: []int{50, 0}}
	p := NewIrqbalance(loads, 10*units.Millisecond)
	for i := 0; i < 4; i++ {
		if got := p.Route(1, apic.NoHint, 0, allowed(2), 0); got != 1 {
			t.Errorf("route %d = %d, want 1 (core 0 has deep queue)", i, got)
		}
	}
}

func TestIrqbalanceResamplesPerPeriod(t *testing.T) {
	loads := &fakeLoads{busy: []units.Time{0, 0}, queue: []int{0, 0}}
	p := NewIrqbalance(loads, units.Millisecond)
	p.Route(1, apic.NoHint, 0, allowed(2), units.Millisecond) // sample 1
	// Core 0 accumulates load; before the next period the policy must
	// not see it...
	loads.busy[0] = 500 * units.Microsecond
	mid := p.delta[0]
	p.Route(1, apic.NoHint, 0, allowed(2), units.Millisecond+1)
	if p.delta[0] != mid {
		t.Error("delta changed within a sampling period")
	}
	// ...after the period it must.
	p.Route(1, apic.NoHint, 0, allowed(2), 2*units.Millisecond+1)
	if p.delta[0] != 500*units.Microsecond {
		t.Errorf("delta after resample = %v, want 500us", p.delta[0])
	}
}

func TestIrqbalancePeriodValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewIrqbalance(&fakeLoads{busy: []units.Time{0}, queue: []int{0}}, 0)
}

func TestPolicyKindString(t *testing.T) {
	if PolicySourceAware.String() != "sais" || PolicyIrqbalance.String() != "irqbalance" {
		t.Error("policy names wrong")
	}
	if PolicyKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]PolicyKind{
		"roundrobin":  PolicyRoundRobin,
		"dedicated":   PolicyDedicated,
		"irqbalance":  PolicyIrqbalance,
		"sais":        PolicySourceAware,
		"flowhash":    PolicyFlowHash,
		"hybrid":      PolicyHybrid,
		"sais-socket": PolicySocketAware,
		"rss":         PolicyHardwareRSS,
	} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy parsed")
	}
}

func TestNewConstructor(t *testing.T) {
	loads := &fakeLoads{busy: []units.Time{0}, queue: []int{0}}
	for _, k := range Kinds() {
		r, err := New(k, Options{Loads: loads, Period: units.Millisecond})
		if err != nil || r == nil {
			t.Errorf("New(%v) = %v, %v", k, r, err)
		}
	}
	// Zero-valued Options must still construct every parseable policy
	// (nil loads, zero period, zero cores): New is total, no panics.
	for _, name := range Names() {
		k, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		r, err := New(k, Options{})
		if err != nil || r == nil {
			t.Errorf("New(%v, zero Options) = %v, %v", k, r, err)
			continue
		}
		// The router must be immediately usable.
		if got := r.Route(64, apic.NoHint, 7, allowed(4), 0); got < 0 || got > 3 {
			t.Errorf("New(%v) router routed outside allowed: %d", k, got)
		}
	}
	r, err := New(PolicyKind(42), Options{})
	if r != nil || err == nil {
		t.Fatalf("New(42) = %v, %v, want UnknownPolicyError", r, err)
	}
	var upe *UnknownPolicyError
	if !errors.As(err, &upe) || upe.Kind != PolicyKind(42) {
		t.Errorf("error = %v, want *UnknownPolicyError{42}", err)
	}
}

func TestHintMessager(t *testing.T) {
	off := HintMessager{}
	h, err := off.Annotate(3)
	if err != nil || h.Valid {
		t.Errorf("disabled messager = %v, %v", h, err)
	}
	on := HintMessager{Enabled: true}
	h, err = on.Annotate(3)
	if err != nil || !h.Valid || h.Core != 3 {
		t.Errorf("enabled messager = %v, %v", h, err)
	}
	if _, err = on.Annotate(32); err == nil {
		t.Error("core 32 should not be addressable")
	}
	if _, err = on.Annotate(-1); err == nil {
		t.Error("negative core should error")
	}
}

func TestHintCapsuler(t *testing.T) {
	req, _ := HintMessager{Enabled: true}.Annotate(5)
	if got := (HintCapsuler{Enabled: true}).Echo(req); !got.Valid || got.Core != 5 {
		t.Errorf("enabled capsuler = %v", got)
	}
	if got := (HintCapsuler{}).Echo(req); got.Valid {
		t.Errorf("disabled capsuler leaked hint %v", got)
	}
}

func TestFlowHashStickyPerFlow(t *testing.T) {
	p := NewFlowHash()
	for flow := uint64(100); flow < 120; flow++ {
		first := p.Route(1, apic.NoHint, flow, allowed(8), 0)
		for i := 0; i < 5; i++ {
			if got := p.Route(1, apic.NoHint, flow, allowed(8), 0); got != first {
				t.Fatalf("flow %d moved: %d then %d", flow, first, got)
			}
		}
	}
}

func TestFlowHashSpreadsFlows(t *testing.T) {
	p := NewFlowHash()
	seen := map[int]bool{}
	for flow := uint64(0); flow < 64; flow++ {
		seen[p.Route(1, apic.NoHint, flow, allowed(8), 0)] = true
	}
	if len(seen) < 6 {
		t.Errorf("64 flows landed on only %d of 8 cores", len(seen))
	}
}

func TestFlowHashIgnoresHint(t *testing.T) {
	p := NewFlowHash()
	a := p.Route(1, 3, 42, allowed(8), 0)
	b := p.Route(1, 5, 42, allowed(8), 0)
	if a != b {
		t.Error("flowhash must depend only on the flow, not the hint")
	}
}

func TestHybridFollowsHintWhenIdle(t *testing.T) {
	loads := &fakeLoads{busy: make([]units.Time, 4), queue: make([]int, 4)}
	p := NewHybrid(loads, units.Millisecond, 4)
	if got := p.Route(1, 2, 0, allowed(4), 0); got != 2 {
		t.Errorf("idle hinted core not followed: %d", got)
	}
	if p.Followed() != 1 || p.Diverted() != 0 {
		t.Errorf("followed=%d diverted=%d", p.Followed(), p.Diverted())
	}
}

func TestHybridDivertsFromSaturatedCore(t *testing.T) {
	loads := &fakeLoads{busy: make([]units.Time, 4), queue: []int{0, 0, 50, 0}}
	p := NewHybrid(loads, units.Millisecond, 4)
	got := p.Route(1, 2, 0, allowed(4), 0)
	if got == 2 {
		t.Error("interrupt delivered to a saturated core")
	}
	if p.Diverted() != 1 {
		t.Errorf("diverted = %d", p.Diverted())
	}
}

func TestHybridNoHintBalances(t *testing.T) {
	loads := &fakeLoads{busy: make([]units.Time, 4), queue: make([]int, 4)}
	p := NewHybrid(loads, units.Millisecond, 4)
	if got := p.Route(1, apic.NoHint, 0, allowed(4), 0); got < 0 || got > 3 {
		t.Errorf("route = %d", got)
	}
	if p.Diverted() != 1 {
		t.Error("hint-less interrupt should count as diverted")
	}
}

func TestHybridThresholdValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero threshold did not panic")
		}
	}()
	NewHybrid(&fakeLoads{busy: []units.Time{0}, queue: []int{0}}, units.Millisecond, 0)
}

func TestSocketAwareStaysOnSocket(t *testing.T) {
	loads := &fakeLoads{busy: make([]units.Time, 8), queue: []int{0, 5, 0, 0, 0, 0, 0, 0}}
	p := NewSocketAware(loads, 4, nil)
	// Hint core 1 (socket 0): must pick a socket-0 core, preferring the
	// least-queued one (core 0, 2 or 3 — not 1 with queue 5).
	got := p.Route(1, 1, 0, allowed(8), 0)
	if got/4 != 0 {
		t.Errorf("routed to core %d on socket %d, want socket 0", got, got/4)
	}
	if got == 1 {
		t.Error("picked the queued core despite idle siblings")
	}
	// Hint core 6 (socket 1).
	if got := p.Route(1, 6, 0, allowed(8), 0); got/4 != 1 {
		t.Errorf("routed to core %d, want socket 1", got)
	}
}

func TestSocketAwareFallsBackWithoutHint(t *testing.T) {
	loads := &fakeLoads{busy: make([]units.Time, 8), queue: make([]int, 8)}
	p := NewSocketAware(loads, 4, NewDedicated(7))
	if got := p.Route(1, apic.NoHint, 0, allowed(8), 0); got != 7 {
		t.Errorf("no-hint fallback = %d, want 7", got)
	}
}

func TestSocketAwareValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero socket size accepted")
		}
	}()
	NewSocketAware(nil, 0, nil)
}

func TestStaticTable(t *testing.T) {
	p := NewStaticTable(map[apic.Vector]int{64: 2, 65: 3}, NewDedicated(0))
	if got := p.Route(64, apic.NoHint, 0, allowed(4), 0); got != 2 {
		t.Errorf("vector 64 -> %d, want 2", got)
	}
	if got := p.Route(65, 1, 0, allowed(4), 0); got != 3 {
		t.Errorf("vector 65 -> %d, want 3 (hints ignored)", got)
	}
	// Unmapped vector falls back.
	if got := p.Route(99, apic.NoHint, 0, allowed(4), 0); got != 0 {
		t.Errorf("unmapped vector -> %d, want fallback 0", got)
	}
	// A mapped core outside the allowed set falls back too.
	if got := p.Route(64, apic.NoHint, 0, []int{0, 1}, 0); got != 0 {
		t.Errorf("restricted set -> %d, want fallback", got)
	}
	if p.Name() != "static-table" {
		t.Errorf("name = %q", p.Name())
	}
}
