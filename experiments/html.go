package experiments

import (
	"fmt"
	"html/template"
	"io"
)

// htmlReport is the template context for WriteHTML.
type htmlReport struct {
	Generated string
	Reports   []*htmlFigure
}

type htmlFigure struct {
	ID        string
	Title     string
	Metric    string
	Baseline  string
	Treatment string
	PaperNote string
	Peak      string
	Rows      []htmlRow
}

type htmlRow struct {
	Label         string
	Baseline      string
	Treatment     string
	Change        string
	ChangePercent float64
	BarBase       float64 // bar widths in % of the row maximum
	BarTreat      float64
}

var reportTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>SAIs reproduction report</title>
<style>
 body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #222; }
 h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2.2rem; }
 .meta { color: #666; font-size: .85rem; }
 table { border-collapse: collapse; width: 100%; margin-top: .6rem; }
 th, td { text-align: left; padding: .3rem .6rem; border-bottom: 1px solid #e3e3e3; font-size: .9rem; }
 th { color: #555; font-weight: 600; }
 .bar { display: inline-block; height: .7rem; border-radius: 2px; vertical-align: middle; margin-right: .4rem; }
 .base  { background: #9aa7b1; }
 .treat { background: #2f7d4f; }
 .pos { color: #2f7d4f; font-weight: 600; } .neg { color: #a33; font-weight: 600; }
 .note { color: #666; font-size: .85rem; margin: .2rem 0 .6rem; }
</style>
</head>
<body>
<h1>SAIs — Source-aware Interrupt Scheduling: reproduction report</h1>
<p class="meta">Generated {{.Generated}} by cmd/experiments. Baseline vs treatment per figure;
bars are scaled per row pair. See EXPERIMENTS.md for paper-vs-measured commentary.</p>
{{range .Reports}}
<h2>{{.ID}} — {{.Title}}</h2>
<p class="note">metric: {{.Metric}} · baseline: {{.Baseline}} · treatment: {{.Treatment}}<br>
paper: {{.PaperNote}}<br>peak change: <span class="pos">{{.Peak}}</span></p>
<table>
<tr><th>cell</th><th>{{.Baseline}}</th><th>{{.Treatment}}</th><th>change</th></tr>
{{$b := .Baseline}}{{$t := .Treatment}}
{{range .Rows}}
<tr>
 <td>{{.Label}}</td>
 <td><span class="bar base" style="width:{{printf "%.0f" .BarBase}}px"></span>{{.Baseline}}</td>
 <td><span class="bar treat" style="width:{{printf "%.0f" .BarTreat}}px"></span>{{.Treatment}}</td>
 <td class="{{if ge .ChangePercent 0.0}}pos{{else}}neg{{end}}">{{.Change}}</td>
</tr>
{{end}}
</table>
{{end}}
</body>
</html>
`))

// WriteHTML renders the reports as one self-contained HTML document.
// generated is the caller-supplied report timestamp (cmd/experiments
// passes the wall clock, tests pass a constant): keeping the clock out
// of this package makes the report byte-stable for a given input, the
// same property every other simulator output has.
func WriteHTML(w io.Writer, reports []*Report, generated string) error {
	ctx := htmlReport{Generated: generated}
	const barMax = 180.0
	for _, r := range reports {
		fig := &htmlFigure{
			ID:        r.ID,
			Title:     r.Title,
			Metric:    r.Metric.String(),
			Baseline:  r.Baseline,
			Treatment: r.Treatment,
			PaperNote: r.PaperNote,
		}
		peak, label := r.BestChange()
		fig.Peak = fmt.Sprintf("%+.2f%% at %s", peak*100, label)
		maxVal := 0.0
		for _, c := range r.Cells {
			if v := c.Baseline.Mean(); v > maxVal {
				maxVal = v
			}
			if v := c.Treatment.Mean(); v > maxVal {
				maxVal = v
			}
		}
		for _, c := range r.Cells {
			row := htmlRow{
				Label:         c.Label,
				Baseline:      fmt.Sprintf("%.4g ± %.2g", c.Baseline.Mean(), c.Baseline.CI95()),
				Treatment:     fmt.Sprintf("%.4g ± %.2g", c.Treatment.Mean(), c.Treatment.CI95()),
				Change:        fmt.Sprintf("%+.2f%%", c.Change*100),
				ChangePercent: c.Change * 100,
			}
			if maxVal > 0 {
				row.BarBase = c.Baseline.Mean() / maxVal * barMax
				row.BarTreat = c.Treatment.Mean() / maxVal * barMax
			}
			fig.Rows = append(fig.Rows, row)
		}
		ctx.Reports = append(ctx.Reports, fig)
	}
	return reportTemplate.Execute(w, &ctx)
}
