package client

import (
	"testing"

	"sais/internal/irqsched"
	"sais/internal/netsim"
	"sais/internal/pfs"
	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/trace"
	"sais/internal/units"
)

// rig is a minimal cluster: one client, one MDS, ns I/O servers.
type rig struct {
	eng     *sim.Engine
	fab     *netsim.Fabric
	node    *Node
	servers []*pfs.Server
	layout  pfs.Layout
}

func newRig(t *testing.T, policy irqsched.PolicyKind, ns int) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine()}
	r.fab = netsim.NewFabric(r.eng, 20*units.Microsecond)

	cfg := DefaultConfig(1, 3*units.Gigabit, policy)
	cfg.MDS = 50
	r.node = MustNew(r.eng, r.fab, cfg)

	servers := make([]netsim.NodeID, ns)
	rnd := rng.New(7)
	for i := 0; i < ns; i++ {
		id := netsim.NodeID(100 + i)
		servers[i] = id
		scfg := pfs.DefaultServerConfig(units.Gigabit)
		scfg.EchoHints = true // servers always echo; baselines simply send no hint
		scfg.Disk.RotationPeriod = 0
		// Fast media keeps the rig client-bound: these tests exercise
		// the client's interrupt path, not the storage substrate.
		scfg.Disk.MediaRate = units.Rate(400 * units.MBps)
		r.servers = append(r.servers, pfs.NewServer(r.eng, r.fab, id, scfg, rnd))
	}
	r.layout = pfs.Layout{StripSize: 64 * units.KiB, Servers: servers}
	pfs.NewMetadataServer(r.eng, r.fab, 50, pfs.DefaultMetadataConfig(units.Gigabit),
		func(pfs.FileID) pfs.Layout { return r.layout })
	return r
}

func TestSingleReadCompletes(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 4)
	p := r.node.NewProc(0, 2)
	var doneAt units.Time
	r.eng.At(0, func(units.Time) {
		p.Read(1, 0, units.MiB, func(now units.Time) { doneAt = now })
	})
	r.eng.RunUntilIdle()
	if doneAt == 0 {
		t.Fatal("read never completed")
	}
	st := r.node.Stats()
	if st.BytesRead != units.MiB || st.Transfers != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.MetadataTrips != 1 {
		t.Errorf("metadata trips = %d, want 1", st.MetadataTrips)
	}
}

func TestSAIsKeepsStripsLocal(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 4)
	p := r.node.NewProc(0, 3)
	r.eng.At(0, func(units.Time) {
		p.Read(1, 0, units.MiB, nil)
	})
	r.eng.RunUntilIdle()
	agg := r.node.Caches().Aggregate()
	if agg.RemoteTransfers != 0 {
		t.Errorf("SAIs produced %d remote line transfers, want 0", agg.RemoteTransfers)
	}
	if agg.Hits == 0 {
		t.Error("SAIs produced no local hits")
	}
	// All strip interrupts must have carried the hint.
	if got := r.node.Stats().HintedIRQs; got == 0 {
		t.Error("no hinted IRQs recorded")
	}
	// All strips were consumed on core 3; its stats carry the accesses.
	if r.node.Caches().Stats(3).Accesses == 0 {
		t.Error("consuming core has no accesses")
	}
}

func TestBalancedPoliciesMigrate(t *testing.T) {
	for _, pol := range []irqsched.PolicyKind{irqsched.PolicyRoundRobin, irqsched.PolicyIrqbalance} {
		r := newRig(t, pol, 4)
		p := r.node.NewProc(0, 3)
		r.eng.At(0, func(units.Time) { p.Read(1, 0, units.MiB, nil) })
		r.eng.RunUntilIdle()
		agg := r.node.Caches().Aggregate()
		if agg.RemoteTransfers == 0 && agg.MemoryFills == 0 {
			t.Errorf("%v: no migration or memory traffic; strips were all handled on the consuming core", pol)
		}
		if agg.MissRate() <= 0 {
			t.Errorf("%v: zero miss rate", pol)
		}
	}
}

func TestDedicatedPolicy(t *testing.T) {
	r := newRig(t, irqsched.PolicyDedicated, 2)
	p := r.node.NewProc(0, 3)
	r.eng.At(0, func(units.Time) { p.Read(1, 0, 256*units.KiB, nil) })
	r.eng.RunUntilIdle()
	// All softirq work must have landed on core 0 (the default
	// dedicated core).
	for i := 1; i < 8; i++ {
		if got := r.node.CPU().Core(i).Stats().ByCategory[1]; got != 0 && i != 3 {
			t.Errorf("core %d did softirq work under dedicated policy", i)
		}
	}
	if r.node.CPU().Core(0).Stats().ByCategory[1] == 0 {
		t.Error("dedicated core 0 did no softirq work")
	}
}

func TestSAIsFasterThanBalanced(t *testing.T) {
	// The headline claim at micro scale: identical workload, the
	// source-aware run finishes sooner.
	run := func(policy irqsched.PolicyKind) units.Time {
		r := newRig(t, policy, 8)
		procs := 4
		var remaining = procs * 8 // transfers
		for i := 0; i < procs; i++ {
			p := r.node.NewProc(i, i)
			var loop func(k int) sim.Event
			loop = func(k int) sim.Event {
				return func(units.Time) {
					remaining--
					if k < 7 {
						p.Read(pfs.FileID(i+1), units.Bytes(k+1)*units.MiB, units.MiB, loop(k+1))
					}
				}
			}
			i := i
			r.eng.At(0, func(units.Time) {
				p.Read(pfs.FileID(i+1), 0, units.MiB, loop(0))
			})
		}
		return r.eng.RunUntilIdle()
	}
	sais := run(irqsched.PolicySourceAware)
	balanced := run(irqsched.PolicyIrqbalance)
	if sais >= balanced {
		t.Errorf("SAIs makespan %v not better than irqbalance %v", sais, balanced)
	}
}

func TestLayoutFetchedOncePerFile(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 2)
	p := r.node.NewProc(0, 0)
	q := r.node.NewProc(1, 1)
	r.eng.At(0, func(units.Time) {
		p.Read(1, 0, 128*units.KiB, nil)
		q.Read(1, 128*units.KiB, 128*units.KiB, nil) // same file, parked behind open
	})
	r.eng.RunUntilIdle()
	st := r.node.Stats()
	if st.MetadataTrips != 1 {
		t.Errorf("metadata trips = %d, want 1 (second read parks)", st.MetadataTrips)
	}
	if st.Transfers != 2 {
		t.Errorf("transfers = %d, want 2", st.Transfers)
	}
}

func TestMigrateDuringBlockDefeatsHints(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 4)
	// Force migration on every wake.
	cfg := r.node.cfg
	cfg.MigrateDuringBlock = 1
	r.node.cfg = cfg
	p := r.node.NewProc(0, 3)
	r.eng.At(0, func(units.Time) { p.Read(1, 0, units.MiB, nil) })
	r.eng.RunUntilIdle()
	if p.Core() == 3 {
		t.Error("process did not migrate")
	}
	agg := r.node.Caches().Aggregate()
	if agg.RemoteTransfers == 0 {
		t.Error("migrated process should pull strips from the old core")
	}
}

func TestConservationBytesRequestedEqualsConsumed(t *testing.T) {
	r := newRig(t, irqsched.PolicyRoundRobin, 4)
	p := r.node.NewProc(0, 0)
	const transfers = 5
	size := 512 * units.KiB
	issued := 0
	var loop sim.Event
	loop = func(units.Time) {
		issued++
		if issued < transfers {
			p.Read(1, units.Bytes(issued)*size, size, loop)
		}
	}
	r.eng.At(0, func(units.Time) { p.Read(1, 0, size, loop) })
	r.eng.RunUntilIdle()
	want := units.Bytes(transfers) * size
	if got := r.node.Stats().BytesRead; got != want {
		t.Errorf("consumed %v, want %v", got, want)
	}
	// Server-side sent bytes match too.
	var sent units.Bytes
	for _, s := range r.servers {
		sent += s.Stats().BytesSent
	}
	if sent != want {
		t.Errorf("servers sent %v, want %v", sent, want)
	}
}

func TestDeterminismFullStack(t *testing.T) {
	run := func() (units.Time, uint64) {
		r := newRig(t, irqsched.PolicyIrqbalance, 4)
		for i := 0; i < 3; i++ {
			p := r.node.NewProc(i, i)
			i := i
			r.eng.At(0, func(units.Time) {
				p.Read(pfs.FileID(i+1), 0, units.MiB, nil)
			})
		}
		end := r.eng.RunUntilIdle()
		return end, r.eng.Fired()
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Errorf("runs differ: (%v,%d) vs (%v,%d)", t1, f1, t2, f2)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	fab := netsim.NewFabric(eng, 0)
	bad := DefaultConfig(1, units.Gigabit, irqsched.PolicySourceAware)
	bad.Cores = 0
	if _, err := New(eng, fab, bad); err == nil {
		t.Error("zero cores accepted")
	}
	bad = DefaultConfig(2, units.Gigabit, irqsched.PolicySourceAware)
	bad.Cores = 64
	if _, err := New(eng, fab, bad); err == nil {
		t.Error("SAIs with 64 cores accepted (5-bit hint limit)")
	}
	bad = DefaultConfig(3, units.Gigabit, irqsched.PolicyRoundRobin)
	bad.MigrateDuringBlock = 2
	if _, err := New(eng, fab, bad); err == nil {
		t.Error("MigrateDuringBlock out of range accepted")
	}
}

func TestNewProcValidation(t *testing.T) {
	r := newRig(t, irqsched.PolicyRoundRobin, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range proc core did not panic")
		}
	}()
	r.node.NewProc(0, 99)
}

func TestCPUAccountingMatchesWork(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 4)
	p := r.node.NewProc(0, 1)
	r.eng.At(0, func(units.Time) { p.Read(1, 0, units.MiB, nil) })
	r.eng.RunUntilIdle()
	total := r.node.CPU().TotalStats()
	// 16 strips: softirq, irq, compute must all be nonzero; migration
	// must be zero under SAIs with no wake migration.
	if total.ByCategory[0] == 0 || total.ByCategory[1] == 0 || total.ByCategory[4] == 0 {
		t.Errorf("categories = %v", total.ByCategory)
	}
	if total.ByCategory[2] != 0 {
		t.Errorf("SAIs accrued migration stall %v", total.ByCategory[2])
	}
}

func TestCurrentCoreHintRescuesMigratedProcess(t *testing.T) {
	// Policy (ii): when the process migrates during the block, the
	// driver re-resolves the hint to the process's current core, so
	// strips still land where they will be consumed.
	run := func(currentCore bool) uint64 {
		r := newRig(t, irqsched.PolicySourceAware, 4)
		cfg := r.node.cfg
		cfg.MigrateDuringBlock = 1
		cfg.CurrentCoreHint = currentCore
		r.node.cfg = cfg
		p := r.node.NewProc(0, 3)
		r.eng.At(0, func(units.Time) { p.Read(1, 0, units.MiB, nil) })
		r.eng.RunUntilIdle()
		return r.node.Caches().Aggregate().RemoteTransfers
	}
	policy1 := run(false)
	policy2 := run(true)
	if policy2 != 0 {
		t.Errorf("policy (ii) still migrated %d lines", policy2)
	}
	if policy1 == 0 {
		t.Error("policy (i) with forced migration should migrate lines")
	}
}

func TestWriteCompletes(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 4)
	p := r.node.NewProc(0, 2)
	var doneAt units.Time
	r.eng.At(0, func(units.Time) {
		p.Write(1, 0, units.MiB, func(now units.Time) { doneAt = now })
	})
	r.eng.RunUntilIdle()
	if doneAt == 0 {
		t.Fatal("write never completed")
	}
	st := r.node.Stats()
	if st.BytesWritten != units.MiB || st.WriteTransfers != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Every strip reached a server and was flushed to its disk.
	var written units.Bytes
	var flushed uint64
	for _, s := range r.servers {
		written += s.Stats().BytesWritten
		flushed += s.Disk().Stats().Writes
	}
	if written != units.MiB {
		t.Errorf("servers absorbed %v, want 1MiB", written)
	}
	if flushed == 0 {
		t.Error("no asynchronous platter flushes")
	}
}

func TestWritesCauseNoDataMigration(t *testing.T) {
	// The paper's §I claim: the write path has no interrupt-locality
	// issue. Acks are tiny; no strip data lands in any client cache.
	for _, pol := range []irqsched.PolicyKind{irqsched.PolicyIrqbalance, irqsched.PolicySourceAware} {
		r := newRig(t, pol, 4)
		p := r.node.NewProc(0, 3)
		r.eng.At(0, func(units.Time) { p.Write(1, 0, units.MiB, nil) })
		r.eng.RunUntilIdle()
		agg := r.node.Caches().Aggregate()
		if agg.RemoteTransfers != 0 {
			t.Errorf("%v: writes migrated %d lines", pol, agg.RemoteTransfers)
		}
	}
}

func TestMixedReadWrite(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 4)
	p := r.node.NewProc(0, 1)
	var phase int
	r.eng.At(0, func(units.Time) {
		p.Write(1, 0, 512*units.KiB, func(units.Time) {
			phase = 1
			p.Read(1, 0, 512*units.KiB, func(units.Time) { phase = 2 })
		})
	})
	r.eng.RunUntilIdle()
	if phase != 2 {
		t.Fatalf("phase = %d, want write-then-read completion", phase)
	}
	st := r.node.Stats()
	if st.BytesRead != 512*units.KiB || st.BytesWritten != 512*units.KiB {
		t.Errorf("stats = %+v", st)
	}
}

func TestIRQAffinityMaskRestrictsDelivery(t *testing.T) {
	// Pin the NIC vector to cores 0-1 (the smp_affinity mask); under
	// round-robin all softirq work must land there, and under SAIs a
	// hint pointing outside the mask is misrouted.
	r := newRig(t, irqsched.PolicyRoundRobin, 4)
	cfg := DefaultConfig(2, 3*units.Gigabit, irqsched.PolicyRoundRobin)
	cfg.MDS = 50
	cfg.AllowedIRQCores = []int{0, 1}
	node := MustNew(r.eng, r.fab, cfg)
	p := node.NewProc(0, 3)
	r.eng.At(0, func(units.Time) { p.Read(1, 0, units.MiB, nil) })
	r.eng.RunUntilIdle()
	for core := 2; core < 8; core++ {
		if got := node.CPU().Core(core).Stats().ByCategory[1]; got != 0 {
			t.Errorf("core %d did softirq work outside the affinity mask", core)
		}
	}
	if node.CPU().Core(0).Stats().ByCategory[1] == 0 && node.CPU().Core(1).Stats().ByCategory[1] == 0 {
		t.Error("no softirq work on the masked cores")
	}
}

func TestIRQAffinityMaskDefeatsSAIsHints(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 4)
	cfg := DefaultConfig(2, 3*units.Gigabit, irqsched.PolicySourceAware)
	cfg.MDS = 50
	cfg.AllowedIRQCores = []int{0}
	node := MustNew(r.eng, r.fab, cfg)
	p := node.NewProc(0, 3) // hint points at core 3, outside the mask
	r.eng.At(0, func(units.Time) { p.Read(1, 0, units.MiB, nil) })
	r.eng.RunUntilIdle()
	// The hint (core 3) is outside the mask, so the source-aware router
	// falls back within the allowed set: every strip lands on core 0
	// and must migrate to the consumer — SAIs is defeated by the mask.
	if node.Stats().HintedIRQs != 0 {
		t.Errorf("%d hints honored despite the mask", node.Stats().HintedIRQs)
	}
	if node.Caches().Aggregate().RemoteTransfers == 0 {
		t.Error("masked SAIs should migrate strips like a dedicated-core policy")
	}
}

func TestBadIRQMaskRejected(t *testing.T) {
	eng := sim.NewEngine()
	fab := netsim.NewFabric(eng, 0)
	cfg := DefaultConfig(1, units.Gigabit, irqsched.PolicyRoundRobin)
	cfg.AllowedIRQCores = []int{99}
	if _, err := New(eng, fab, cfg); err == nil {
		t.Error("out-of-range IRQ mask accepted")
	}
}

func TestRetryRecoversLostStrips(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 4)
	cfg := r.node.cfg
	cfg.RetryTimeout = 50 * units.Millisecond
	cfg.MaxRetries = 5
	r.node.cfg = cfg
	p := r.node.NewProc(0, 1)
	var doneAt units.Time
	r.eng.At(0, func(units.Time) {
		// Warm-up read resolves the layout before loss is injected.
		p.Read(1, 0, 64*units.KiB, func(units.Time) {
			dropped := 0
			r.fab.SetLoss(func(netsim.FrameKey) bool {
				if dropped < 3 {
					dropped++
					return true
				}
				return false
			})
			p.Read(1, 0, units.MiB, func(now units.Time) { doneAt = now })
		})
	})
	r.eng.RunUntilIdle()
	if doneAt == 0 {
		t.Fatal("read never completed despite retries")
	}
	st := r.node.Stats()
	if st.Retries == 0 {
		t.Error("no retries recorded")
	}
	if want := units.MiB + 64*units.KiB; st.BytesRead != want { // incl. warm-up
		t.Errorf("bytes = %v, want %v", st.BytesRead, want)
	}
	if st.FailedTransfers != 0 {
		t.Errorf("failed = %d", st.FailedTransfers)
	}
}

func TestRetryGivesUpAfterMaxRetries(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 2)
	cfg := r.node.cfg
	cfg.RetryTimeout = 20 * units.Millisecond
	cfg.MaxRetries = 2
	r.node.cfg = cfg
	p := r.node.NewProc(0, 0)
	completed := false
	r.eng.At(0, func(units.Time) {
		// Warm-up read resolves the layout; then total blackout.
		p.Read(1, 0, 64*units.KiB, func(units.Time) {
			r.fab.SetLoss(func(netsim.FrameKey) bool { return true })
			p.Read(1, 0, 128*units.KiB, func(units.Time) { completed = true })
		})
	})
	r.eng.RunUntilIdle()
	if completed {
		t.Error("read completed under total loss")
	}
	st := r.node.Stats()
	if st.FailedTransfers != 1 {
		t.Errorf("failed transfers = %d, want 1", st.FailedTransfers)
	}
	if st.Retries != 2 {
		t.Errorf("retries = %d, want 2", st.Retries)
	}
}

func TestWriteRetryRecovers(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 2)
	cfg := r.node.cfg
	cfg.RetryTimeout = 50 * units.Millisecond
	cfg.MaxRetries = 5
	r.node.cfg = cfg
	p := r.node.NewProc(0, 0)
	done := false
	r.eng.At(0, func(units.Time) {
		p.Read(1, 0, 64*units.KiB, func(units.Time) { // warm the layout
			dropped := 0
			r.fab.SetLoss(func(netsim.FrameKey) bool {
				if dropped < 2 {
					dropped++
					return true
				}
				return false
			})
			p.Write(1, 0, 256*units.KiB, func(units.Time) { done = true })
		})
	})
	r.eng.RunUntilIdle()
	if !done {
		t.Fatal("write never completed despite retries")
	}
	if r.node.Stats().BytesWritten != 256*units.KiB {
		t.Errorf("bytes written = %v", r.node.Stats().BytesWritten)
	}
}

func TestMissingPlans(t *testing.T) {
	plans := []pfs.ServerPlan{
		{ServerIdx: 0, Server: 100, Pieces: []pfs.Piece{
			{GlobalStrip: 0, Size: 64 * units.KiB},
			{GlobalStrip: 2, Size: 64 * units.KiB},
		}},
		{ServerIdx: 1, Server: 101, Pieces: []pfs.Piece{
			{GlobalStrip: 1, Size: 64 * units.KiB},
		}},
	}
	got := map[int]bool{0: true, 1: true}
	missing := missingPlans(plans, got)
	if len(missing) != 1 || missing[0].ServerIdx != 0 {
		t.Fatalf("missing = %+v", missing)
	}
	if len(missing[0].Pieces) != 1 || missing[0].Pieces[0].GlobalStrip != 2 {
		t.Errorf("pieces = %+v", missing[0].Pieces)
	}
	// Nothing missing -> no plans.
	got[2] = true
	if m := missingPlans(plans, got); len(m) != 0 {
		t.Errorf("complete transfer still has %d plans", len(m))
	}
}

func TestTransferBetween(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 2)
	var sameDone, nearDone, farDone units.Time
	r.eng.At(0, func(units.Time) {
		r.node.TransferBetween(1, 1, 64*units.KiB, func(now units.Time) { sameDone = now })
	})
	r.eng.RunUntilIdle()
	start := r.eng.Now()
	r.eng.At(start, func(units.Time) {
		r.node.TransferBetween(0, 1, 64*units.KiB, func(now units.Time) { nearDone = now - start })
	})
	r.eng.RunUntilIdle()
	start2 := r.eng.Now()
	r.eng.At(start2, func(units.Time) {
		r.node.TransferBetween(0, 6, 64*units.KiB, func(now units.Time) { farDone = now - start2 })
	})
	r.eng.RunUntilIdle()
	if sameDone <= 0 || nearDone <= 0 || farDone <= 0 {
		t.Fatalf("transfers did not run: %v %v %v", sameDone, nearDone, farDone)
	}
	// Cross-socket (cores 0 and 6 with socket size 4) costs more than
	// intra-socket, which costs more than a local pass.
	if !(farDone > nearDone && nearDone > sameDone) {
		t.Errorf("cost ordering violated: same=%v near=%v far=%v", sameDone, nearDone, farDone)
	}
	if r.node.Caches().Aggregate().RemoteTransfers == 0 {
		t.Error("no remote lines charged")
	}
}

func TestTransferBetweenValidation(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 2)
	for _, f := range []func(){
		func() { r.node.TransferBetween(0, 1, 0, nil) },
		func() { r.node.TransferBetween(-1, 1, units.KiB, nil) },
		func() { r.node.TransferBetween(0, 99, units.KiB, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAccessorsAndTracer(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 2)
	if r.node.NIC() == nil || r.node.IOAPIC() == nil {
		t.Error("nil accessors")
	}
	if r.node.Config().Cores != 8 {
		t.Errorf("config cores = %d", r.node.Config().Cores)
	}
	ring := trace.NewRing(16)
	r.node.SetTracer(ring)
	p := r.node.NewProc(7, 2)
	if p.ID() != 7 {
		t.Errorf("proc id = %d", p.ID())
	}
	r.eng.At(0, func(units.Time) { p.Read(1, 0, 128*units.KiB, nil) })
	r.eng.RunUntilIdle()
	if ring.Len() == 0 {
		t.Error("tracer recorded nothing")
	}
	if len(r.node.Latencies()) != 1 {
		t.Errorf("latencies = %d", len(r.node.Latencies()))
	}
}

func TestHardwareRSSPinsFlowsToCores(t *testing.T) {
	r := newRig(t, irqsched.PolicyIrqbalance, 4)
	cfg := DefaultConfig(2, 3*units.Gigabit, irqsched.PolicyHardwareRSS)
	cfg.MDS = 50
	cfg.RSSQueues = 4
	node := MustNew(r.eng, r.fab, cfg)
	p := node.NewProc(0, 5)
	r.eng.At(0, func(units.Time) { p.Read(1, 0, units.MiB, nil) })
	r.eng.RunUntilIdle()
	if node.Stats().BytesRead != units.MiB {
		t.Fatalf("bytes = %v", node.Stats().BytesRead)
	}
	// RSS pins each server's flow to one of cores 0..3; none of the
	// data lands on the consuming core 5, so every strip migrates or is
	// refetched — static affinity is not request affinity.
	agg := node.Caches().Aggregate()
	if agg.RemoteTransfers == 0 && agg.MemoryFills == 0 {
		t.Error("no migration traffic under hardware RSS")
	}
	for core := 4; core < 8; core++ {
		if got := node.CPU().Core(core).Stats().ByCategory[1]; got != 0 {
			t.Errorf("core %d did softirq work outside the RSS vector set", core)
		}
	}
	if node.NIC().RxQueueCount() != 4 {
		t.Errorf("rx queues = %d", node.NIC().RxQueueCount())
	}
}

func TestHardwareRSSFlowStability(t *testing.T) {
	// Each server's strips must always land on the same core — the RSS
	// invariant. Run two transfers and compare per-core softirq counts:
	// only the statically mapped cores may have any.
	r := newRig(t, irqsched.PolicyIrqbalance, 4)
	cfg := DefaultConfig(2, 3*units.Gigabit, irqsched.PolicyHardwareRSS)
	cfg.MDS = 50
	cfg.RSSQueues = 2
	node := MustNew(r.eng, r.fab, cfg)
	p := node.NewProc(0, 7)
	r.eng.At(0, func(units.Time) {
		p.Read(1, 0, 512*units.KiB, func(units.Time) {
			p.Read(1, 512*units.KiB, 512*units.KiB, nil)
		})
	})
	r.eng.RunUntilIdle()
	active := 0
	for core := 0; core < 8; core++ {
		if node.CPU().Core(core).Stats().ByCategory[1] > 0 {
			active++
			if core >= 2 {
				t.Errorf("softirq on core %d with 2 RSS queues", core)
			}
		}
	}
	if active == 0 || active > 2 {
		t.Errorf("active softirq cores = %d, want 1..2", active)
	}
}

func TestAbandonedReadReleasesBlocks(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 4)
	cfg := r.node.cfg
	cfg.RetryTimeout = 20 * units.Millisecond
	cfg.MaxRetries = 1
	r.node.cfg = cfg
	p := r.node.NewProc(0, 0)
	r.eng.At(0, func(units.Time) {
		// Warm the layout, then drop a strict subset of frames so some
		// strips land (and occupy cache) before the transfer fails.
		p.Read(1, 0, 64*units.KiB, func(units.Time) {
			n := 0
			r.fab.SetLoss(func(netsim.FrameKey) bool {
				n++
				return n%2 == 0 // half the strips vanish forever
			})
			p.Read(1, 0, units.MiB, nil)
		})
	})
	r.eng.RunUntilIdle()
	if r.node.Stats().FailedTransfers == 0 {
		t.Fatal("transfer did not fail")
	}
	// Every block of the failed transfer must have been released: the
	// consuming caches hold nothing.
	var used units.Bytes
	for core := 0; core < 8; core++ {
		used += r.node.Caches().Used(core)
	}
	if used != 0 {
		t.Errorf("abandoned transfer left %v resident in caches", used)
	}
}

func TestCorruptedHeadersDroppedAndRecovered(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 4)
	cfg := r.node.cfg
	cfg.RetryTimeout = 50 * units.Millisecond
	cfg.MaxRetries = 5
	r.node.cfg = cfg
	p := r.node.NewProc(0, 1)
	var done bool
	r.eng.At(0, func(units.Time) {
		p.Read(1, 0, 64*units.KiB, func(units.Time) { // warm layout
			n := 0
			r.fab.SetCorruption(func(f *netsim.Frame, _ netsim.FrameKey) bool {
				if f.Payload < 32*units.KiB {
					return false // target data strips only
				}
				n++
				return n <= 2 // damage the first two data frames
			})
			p.Read(1, 0, units.MiB, func(units.Time) { done = true })
		})
	})
	r.eng.RunUntilIdle()
	if !done {
		t.Fatal("read never completed despite retries")
	}
	st := r.node.Stats()
	if st.HeaderDrops == 0 {
		t.Error("no header drops counted")
	}
	if st.Retries == 0 {
		t.Error("corruption did not trigger a retry")
	}
	if r.fab.Corrupted() == 0 {
		t.Error("fabric counted no corrupted frames")
	}
	if want := units.MiB + 64*units.KiB; st.BytesRead != want {
		t.Errorf("bytes = %v, want %v", st.BytesRead, want)
	}
}

func TestRingDropRecovery(t *testing.T) {
	// A two-descriptor rx ring behind a coalescing window: strips from
	// four servers overrun the ring while the interrupt is held back, so
	// frames are lost at the NIC rather than on the wire — and the retry
	// machinery must absorb that loss exactly like fabric loss.
	eng := sim.NewEngine()
	fab := netsim.NewFabric(eng, 20*units.Microsecond)
	cfg := DefaultConfig(1, 3*units.Gigabit, irqsched.PolicySourceAware)
	cfg.MDS = 50
	cfg.NIC.RingSize = 2
	cfg.NIC.CoalesceFrames = 8
	cfg.NIC.CoalesceDelay = 500 * units.Microsecond
	cfg.RetryTimeout = 50 * units.Millisecond
	cfg.MaxRetries = 10
	node := MustNew(eng, fab, cfg)

	servers := make([]netsim.NodeID, 4)
	rnd := rng.New(7)
	for i := range servers {
		id := netsim.NodeID(100 + i)
		servers[i] = id
		scfg := pfs.DefaultServerConfig(units.Gigabit)
		scfg.Disk.RotationPeriod = 0
		scfg.Disk.MediaRate = units.Rate(400 * units.MBps)
		pfs.NewServer(eng, fab, id, scfg, rnd)
	}
	layout := pfs.Layout{StripSize: 64 * units.KiB, Servers: servers}
	pfs.NewMetadataServer(eng, fab, 50, pfs.DefaultMetadataConfig(units.Gigabit),
		func(pfs.FileID) pfs.Layout { return layout })

	p := node.NewProc(0, 1)
	var doneAt units.Time
	eng.At(0, func(units.Time) {
		p.Read(1, 0, units.MiB, func(now units.Time) { doneAt = now })
	})
	eng.RunUntilIdle()
	if node.NIC().Stats().RingDrops == 0 {
		t.Fatal("rx ring never overflowed; the scenario exercises nothing")
	}
	if doneAt == 0 {
		t.Fatal("read never completed despite retries over ring drops")
	}
	st := node.Stats()
	if st.BytesRead != units.MiB {
		t.Errorf("bytes = %v, want 1MiB", st.BytesRead)
	}
	if st.Retries == 0 || st.StripsRetried == 0 {
		t.Errorf("ring drops recovered without retries: retries=%d strips=%d",
			st.Retries, st.StripsRetried)
	}
	if st.FailedTransfers != 0 {
		t.Errorf("failed transfers = %d", st.FailedTransfers)
	}
}

func TestAbandonRecordsOpErrorAndLatency(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 2)
	cfg := r.node.cfg
	cfg.RetryTimeout = 20 * units.Millisecond
	cfg.MaxRetries = 2
	r.node.cfg = cfg
	p := r.node.NewProc(0, 0)
	var issuedAt units.Time
	r.eng.At(0, func(units.Time) {
		p.Read(1, 0, 64*units.KiB, func(now units.Time) { // warm the layout
			issuedAt = now
			r.fab.SetLoss(func(netsim.FrameKey) bool { return true })
			p.Read(1, 0, 128*units.KiB, nil)
		})
	})
	lats := len(r.node.Latencies())
	r.eng.RunUntilIdle()
	errs := r.node.OpErrors()
	if len(errs) != 1 {
		t.Fatalf("op errors = %d, want 1", len(errs))
	}
	e := errs[0]
	if e.Write || e.File != 1 || e.Retries != 2 {
		t.Errorf("op error = %+v", e)
	}
	if e.IssuedAt < issuedAt {
		t.Errorf("issued at %v, before the op was even requested at %v", e.IssuedAt, issuedAt)
	}
	if e.FailedAt <= e.IssuedAt {
		t.Errorf("failed at %v not after issue at %v", e.FailedAt, e.IssuedAt)
	}
	// The abandoned read's time-to-failure lands in the latency books
	// (the silent-data-loss fix): one warm-up latency plus the failure.
	got := r.node.Latencies()
	if len(got) != lats+2 {
		t.Fatalf("latencies = %d, want %d (warm-up + failure)", len(got), lats+2)
	}
	if want := float64(e.FailedAt - e.IssuedAt); got[len(got)-1] != want {
		t.Errorf("failure latency = %v, want %v", got[len(got)-1], want)
	}
}

func TestOpenRetryRecoversLostLayout(t *testing.T) {
	// Drop the first metadata exchange entirely: without open retries the
	// transfer would park forever with zero failures — the silent-loss
	// bug. The client must re-request the layout and complete.
	r := newRig(t, irqsched.PolicySourceAware, 2)
	cfg := r.node.cfg
	cfg.RetryTimeout = 20 * units.Millisecond
	cfg.MaxRetries = 5
	r.node.cfg = cfg
	dropped := 0
	r.fab.SetLoss(func(netsim.FrameKey) bool {
		if dropped < 1 { // the very first frame is the LayoutRequest
			dropped++
			return true
		}
		return false
	})
	p := r.node.NewProc(0, 1)
	var doneAt units.Time
	r.eng.At(0, func(units.Time) {
		p.Read(1, 0, 128*units.KiB, func(now units.Time) { doneAt = now })
	})
	r.eng.RunUntilIdle()
	if doneAt == 0 {
		t.Fatal("read never completed after a lost layout request")
	}
	st := r.node.Stats()
	if st.MetadataTrips < 2 {
		t.Errorf("metadata trips = %d, want the retry to re-request the layout", st.MetadataTrips)
	}
	if st.Retries == 0 {
		t.Error("no retry recorded for the lost open")
	}
	if st.BytesRead != 128*units.KiB {
		t.Errorf("bytes = %v", st.BytesRead)
	}
}

func TestOpenRetryExhaustionFailsParkedOps(t *testing.T) {
	// Total blackout from t=0: the open can never resolve. Every parked
	// operation must fail loudly — typed OpError, failure counted, and
	// the elapsed time in the latency distribution.
	r := newRig(t, irqsched.PolicySourceAware, 2)
	cfg := r.node.cfg
	cfg.RetryTimeout = 20 * units.Millisecond
	cfg.MaxRetries = 2
	r.node.cfg = cfg
	r.fab.SetLoss(func(netsim.FrameKey) bool { return true })
	p := r.node.NewProc(0, 0)
	completed := false
	r.eng.At(0, func(units.Time) {
		p.Read(1, 0, 64*units.KiB, func(units.Time) { completed = true })
		p.Read(1, 64*units.KiB, 64*units.KiB, func(units.Time) { completed = true })
	})
	r.eng.RunUntilIdle()
	if completed {
		t.Fatal("read completed under total loss")
	}
	st := r.node.Stats()
	if st.FailedTransfers != 2 {
		t.Errorf("failed transfers = %d, want both parked ops", st.FailedTransfers)
	}
	if got := len(r.node.OpErrors()); got != 2 {
		t.Fatalf("op errors = %d, want 2", got)
	}
	for _, e := range r.node.OpErrors() {
		if e.Retries != 2 || e.FailedAt <= e.IssuedAt {
			t.Errorf("op error = %+v", e)
		}
	}
	if got := len(r.node.Latencies()); got != 2 {
		t.Errorf("latencies = %d, want the two failures' time-to-failure", got)
	}
	// The engine drained with the file half-open; nothing may leak into
	// a later successful open.
	if len(r.node.opening) != 0 || len(r.node.opens) != 0 {
		t.Errorf("open state leaked: opening=%d opens=%d", len(r.node.opening), len(r.node.opens))
	}
}

// TestRetryDelaySchedule pins the backoff schedule as a pure function
// of (Seed, tag, attempt): attempt 0 waits exactly RetryTimeout, later
// attempts grow exponentially to the cap, and the whole schedule is
// reproducible call over call.
func TestRetryDelaySchedule(t *testing.T) {
	base := 10 * units.Millisecond
	cfg := Config{RetryTimeout: base, RetryJitter: -1, Seed: 42}
	if got := cfg.RetryDelay(7, 0); got != base {
		t.Errorf("attempt 0 delay = %v, want RetryTimeout %v", got, base)
	}
	want := []units.Time{base, 2 * base, 4 * base, 8 * base, 8 * base, 8 * base}
	for attempt, w := range want {
		if got := cfg.RetryDelay(7, attempt); got != w {
			t.Errorf("attempt %d delay = %v, want %v (default cap 8×)", attempt, got, w)
		}
	}
	// An explicit cap clips the curve where it says.
	cfg.RetryBackoffCap = 30 * units.Millisecond
	if got := cfg.RetryDelay(7, 5); got != 30*units.Millisecond {
		t.Errorf("capped delay = %v, want 30ms", got)
	}
	// Factor 1 restores the legacy fixed interval.
	cfg.RetryBackoff, cfg.RetryBackoffCap = 1, 0
	for attempt := 0; attempt < 4; attempt++ {
		if got := cfg.RetryDelay(7, attempt); got != base {
			t.Errorf("fixed-interval attempt %d = %v, want %v", attempt, got, base)
		}
	}
	// Disabled retries never delay.
	if got := (Config{}).RetryDelay(7, 3); got != 0 {
		t.Errorf("RetryDelay without RetryTimeout = %v, want 0", got)
	}
}

// TestRetryDelayJitterDesynchronizes checks the derived jitter: each
// delay is deterministic per (seed, tag, attempt), bounded by the
// jitter fraction, and differs across seeds and tags — so clients that
// lost frames in the same burst do not re-issue in lockstep.
func TestRetryDelayJitterDesynchronizes(t *testing.T) {
	base := 10 * units.Millisecond
	cfg := Config{RetryTimeout: base, Seed: 1} // default jitter 0.1
	for attempt := 1; attempt <= 4; attempt++ {
		d1 := cfg.RetryDelay(5, attempt)
		if d2 := cfg.RetryDelay(5, attempt); d2 != d1 {
			t.Fatalf("attempt %d not deterministic: %v then %v", attempt, d1, d2)
		}
		bare := Config{RetryTimeout: base, RetryJitter: -1, Seed: 1}.RetryDelay(5, attempt)
		if d1 > bare || float64(d1) < 0.9*float64(bare) {
			t.Errorf("attempt %d jittered delay %v outside (0.9×%v, %v]", attempt, d1, bare, bare)
		}
	}
	other := cfg
	other.Seed = 2
	if cfg.RetryDelay(5, 2) == other.RetryDelay(5, 2) {
		t.Error("two seeds produced the same jittered delay — clients would retry in sync")
	}
	if cfg.RetryDelay(5, 2) == cfg.RetryDelay(6, 2) {
		t.Error("two tags produced the same jittered delay")
	}
}

// TestBackoffConfigValidation covers the new knobs' error paths.
func TestBackoffConfigValidation(t *testing.T) {
	base := DefaultConfig(1, units.Gigabit, irqsched.PolicySourceAware)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"backoff below one", func(c *Config) { c.RetryBackoff = 0.5 }},
		{"negative cap", func(c *Config) { c.RetryBackoffCap = -1 }},
		{"jitter of one", func(c *Config) { c.RetryJitter = 1 }},
		{"negative deadline", func(c *Config) { c.TransferDeadline = -1 }},
		{"deadline without retries", func(c *Config) { c.TransferDeadline = units.Second }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			if err := cfg.validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestTransferDeadlinePartialRead is the graceful-degradation contract:
// with one of two servers permanently down, a deadline-bound read
// completes at its deadline with the strips that arrived — the process
// wakes, consumes the partial payload, and a typed Partial record (not
// an abandonment) documents the gap.
func TestTransferDeadlinePartialRead(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 2)
	cfg := r.node.cfg
	cfg.RetryTimeout = 10 * units.Millisecond
	cfg.MaxRetries = 100
	cfg.TransferDeadline = 200 * units.Millisecond
	r.node.cfg = cfg
	p := r.node.NewProc(0, 1)
	var doneAt units.Time
	r.eng.At(0, func(units.Time) {
		p.Read(1, 0, 64*units.KiB, func(units.Time) { // warm the layout
			r.servers[1].SetDown(true)
			p.Read(1, 0, 256*units.KiB, func(now units.Time) { doneAt = now })
		})
	})
	r.eng.RunUntilIdle()
	if doneAt == 0 {
		t.Fatal("deadline-bound read never completed")
	}
	st := r.node.Stats()
	if st.PartialTransfers != 1 || st.PartialBytes != 128*units.KiB {
		t.Errorf("partial = %d transfers / %v bytes, want 1 / 128KiB", st.PartialTransfers, st.PartialBytes)
	}
	if st.FailedTransfers != 0 {
		t.Errorf("failed = %d, want 0 (partial is not abandonment)", st.FailedTransfers)
	}
	if st.Transfers != 1 { // the warm-up only
		t.Errorf("complete transfers = %d, want 1", st.Transfers)
	}
	if want := 64*units.KiB + 128*units.KiB; st.BytesRead != want {
		t.Errorf("bytes read = %v, want %v (partial bytes reach the application)", st.BytesRead, want)
	}
	errs := r.node.OpErrors()
	if len(errs) != 1 {
		t.Fatalf("op errors = %d, want 1", len(errs))
	}
	e := errs[0]
	if !e.Partial || e.Write || e.BytesDelivered != 128*units.KiB || e.StripsMissing != 2 {
		t.Errorf("op error = %+v", e)
	}
	if e.Client != 1 {
		t.Errorf("op error client = %d, want 1", e.Client)
	}
	if e.FailedAt-e.IssuedAt < cfg.TransferDeadline {
		t.Errorf("partial resolved at %v after issue, before the %v deadline", e.FailedAt-e.IssuedAt, cfg.TransferDeadline)
	}
	if got := len(r.node.Latencies()); got != 2 {
		t.Errorf("latencies = %d, want warm-up + partial", got)
	}
}

// TestTransferDeadlinePartialWrite mirrors the read contract for the
// push path: acknowledged strips count as written, the rest are typed.
func TestTransferDeadlinePartialWrite(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 2)
	cfg := r.node.cfg
	cfg.RetryTimeout = 10 * units.Millisecond
	cfg.MaxRetries = 100
	cfg.TransferDeadline = 200 * units.Millisecond
	r.node.cfg = cfg
	p := r.node.NewProc(0, 0)
	done := false
	r.eng.At(0, func(units.Time) {
		p.Read(1, 0, 64*units.KiB, func(units.Time) { // warm the layout
			r.servers[1].SetDown(true)
			p.Write(1, 0, 256*units.KiB, func(units.Time) { done = true })
		})
	})
	r.eng.RunUntilIdle()
	if !done {
		t.Fatal("deadline-bound write never completed")
	}
	st := r.node.Stats()
	if st.PartialTransfers != 1 || st.PartialBytes != 128*units.KiB {
		t.Errorf("partial = %d transfers / %v bytes, want 1 / 128KiB", st.PartialTransfers, st.PartialBytes)
	}
	if st.BytesWritten != 128*units.KiB {
		t.Errorf("bytes written = %v, want the acked half", st.BytesWritten)
	}
	if st.WriteTransfers != 0 || st.FailedTransfers != 0 {
		t.Errorf("write transfers = %d, failed = %d; partial is neither", st.WriteTransfers, st.FailedTransfers)
	}
	errs := r.node.OpErrors()
	if len(errs) != 1 || !errs[0].Partial || !errs[0].Write || errs[0].StripsMissing != 2 {
		t.Fatalf("op errors = %+v", errs)
	}
	if got := len(r.node.WriteLatencies()); got != 1 {
		t.Errorf("write latencies = %d, want the partial's elapsed time", got)
	}
}

// TestTransferDeadlineAbandonsEmptyRead: a deadline with nothing in
// hand is still an abandonment — there is no empty partial result.
func TestTransferDeadlineAbandonsEmptyRead(t *testing.T) {
	r := newRig(t, irqsched.PolicySourceAware, 2)
	cfg := r.node.cfg
	cfg.RetryTimeout = 10 * units.Millisecond
	cfg.MaxRetries = 100
	cfg.TransferDeadline = 100 * units.Millisecond
	r.node.cfg = cfg
	p := r.node.NewProc(0, 0)
	completed := false
	r.eng.At(0, func(units.Time) {
		p.Read(1, 0, 64*units.KiB, func(units.Time) { // warm the layout
			for _, s := range r.servers {
				s.SetDown(true)
			}
			p.Read(1, 0, 128*units.KiB, func(units.Time) { completed = true })
		})
	})
	r.eng.RunUntilIdle()
	if completed {
		t.Error("read completed with every server down")
	}
	st := r.node.Stats()
	if st.FailedTransfers != 1 || st.PartialTransfers != 0 {
		t.Errorf("failed = %d, partial = %d; want 1 / 0", st.FailedTransfers, st.PartialTransfers)
	}
	// The deadline bounds the failure: well before 100 retries' worth.
	if e := r.node.OpErrors()[0]; e.FailedAt-e.IssuedAt > 2*cfg.TransferDeadline {
		t.Errorf("abandoned %v after issue; deadline %v did not bound it", e.FailedAt-e.IssuedAt, cfg.TransferDeadline)
	}
}
