package cache

import (
	"testing"
	"testing/quick"

	"sais/internal/rng"
	"sais/internal/units"
)

func newSys() *System { return NewSystem(4, 512*units.KiB, 64) }

func TestFillThenLocalConsume(t *testing.T) {
	s := newSys()
	s.Fill(2, 1, 64*units.KiB)
	if got := s.Resident(1); got != 2 {
		t.Fatalf("Resident = %d, want 2", got)
	}
	if k := s.Consume(2, 1); k != HitLocal {
		t.Errorf("consume on filling core = %v, want local-hit", k)
	}
	st := s.Stats(2)
	wantLines := uint64(64 * 1024 / 64)
	if st.Accesses != wantLines || st.Hits != wantLines || st.Misses != 0 {
		t.Errorf("stats = %+v, want %d hits", st, wantLines)
	}
}

func TestRemoteConsumeMigrates(t *testing.T) {
	s := newSys()
	s.Fill(1, 7, 64*units.KiB)
	if k := s.Consume(3, 7); k != HitRemote {
		t.Errorf("cross-core consume = %v, want remote-hit", k)
	}
	if got := s.Resident(7); got != 3 {
		t.Errorf("after consume block resident on %d, want 3", got)
	}
	st := s.Stats(3)
	wantLines := uint64(1024)
	if st.RemoteTransfers != wantLines || st.Misses != wantLines {
		t.Errorf("stats = %+v", st)
	}
	if s.Stats(1).Accesses != 0 {
		t.Error("filling core should not be charged consumer accesses")
	}
}

func TestConsumeFromMemory(t *testing.T) {
	s := newSys()
	s.Fill(0, 9, 64*units.KiB)
	// Evict it by filling core 0 beyond capacity.
	for i := BlockID(100); i < 110; i++ {
		s.Fill(0, i, 64*units.KiB)
	}
	if s.Resident(9) != -1 {
		t.Fatal("block 9 should have been evicted")
	}
	if k := s.Consume(0, 9); k != MissMemory {
		t.Errorf("consume of evicted block = %v, want memory-miss", k)
	}
	if s.Stats(0).MemoryFills != 1024 {
		t.Errorf("memory fills = %d, want 1024", s.Stats(0).MemoryFills)
	}
}

func TestCapacityEviction(t *testing.T) {
	s := newSys() // 512 KiB per core = 8 strips of 64 KiB
	for i := BlockID(0); i < 9; i++ {
		s.Fill(0, i, 64*units.KiB)
	}
	if s.Resident(0) != -1 {
		t.Error("LRU block 0 should be evicted by ninth fill")
	}
	if s.Resident(8) != 0 {
		t.Error("newest block must be resident")
	}
	if s.Used(0) != 512*units.KiB {
		t.Errorf("used = %v, want full", s.Used(0))
	}
	if s.Stats(0).EvictedBlocks != 1 {
		t.Errorf("evictions = %d, want 1", s.Stats(0).EvictedBlocks)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestOversizedBlockBypasses(t *testing.T) {
	s := newSys()
	s.Fill(0, 1, units.MiB) // larger than 512 KiB cache
	if s.Resident(1) != -1 {
		t.Error("oversized block should bypass the cache")
	}
	if k := s.Consume(0, 1); k != MissMemory {
		t.Errorf("consume of bypassed block = %v, want memory-miss", k)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRefillMovesBlock(t *testing.T) {
	s := newSys()
	s.Fill(0, 5, 64*units.KiB)
	s.Fill(2, 5, 64*units.KiB) // fresh deposit elsewhere
	if got := s.Resident(5); got != 2 {
		t.Errorf("Resident = %d, want 2", got)
	}
	if s.Used(0) != 0 {
		t.Errorf("core 0 still accounts %v", s.Used(0))
	}
}

func TestRelease(t *testing.T) {
	s := newSys()
	s.Fill(1, 3, 64*units.KiB)
	s.Release(3)
	if s.Resident(3) != -1 {
		t.Error("released block still resident")
	}
	if s.Used(1) != 0 {
		t.Errorf("used = %v after release", s.Used(1))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestTouchRefreshesLRU(t *testing.T) {
	s := newSys()
	for i := BlockID(0); i < 8; i++ {
		s.Fill(0, i, 64*units.KiB)
	}
	s.Touch(0) // block 0 becomes MRU; next eviction should take block 1
	s.Fill(0, 99, 64*units.KiB)
	if s.Resident(0) != 0 {
		t.Error("touched block was evicted")
	}
	if s.Resident(1) != -1 {
		t.Error("expected block 1 to be the victim")
	}
}

func TestConsumeUnknownPanics(t *testing.T) {
	s := newSys()
	defer func() {
		if recover() == nil {
			t.Error("Consume of unknown block did not panic")
		}
	}()
	s.Consume(0, 12345)
}

func TestAggregateMatchesSum(t *testing.T) {
	s := newSys()
	s.Fill(0, 1, 64*units.KiB)
	s.Fill(1, 2, 64*units.KiB)
	s.Consume(0, 1)
	s.Consume(0, 2)
	var sum BlockStats
	for c := 0; c < s.Cores(); c++ {
		sum.add(s.Stats(c))
	}
	if sum != s.Aggregate() {
		t.Errorf("aggregate %+v != sum %+v", s.Aggregate(), sum)
	}
}

// Property: invariants hold and hits+misses==accesses under random use.
func TestSystemInvariantsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		s := NewSystem(3, 256*units.KiB, 64)
		live := []BlockID{}
		next := BlockID(1)
		for i := 0; i < 400; i++ {
			switch {
			case len(live) == 0 || r.Bool(0.4):
				size := units.Bytes(r.Intn(4)+1) * 32 * units.KiB
				s.Fill(r.Intn(3), next, size)
				live = append(live, next)
				next++
			case r.Bool(0.7):
				s.Consume(r.Intn(3), live[r.Intn(len(live))])
			default:
				k := r.Intn(len(live))
				s.Release(live[k])
				live = append(live[:k], live[k+1:]...)
			}
			if s.CheckInvariants() != nil {
				return false
			}
		}
		a := s.Aggregate()
		return a.Hits+a.Misses == a.Accesses &&
			a.Misses == a.RemoteTransfers+a.MemoryFills
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestBlockMissRate(t *testing.T) {
	var st BlockStats
	if st.MissRate() != 0 {
		t.Error("empty MissRate should be 0")
	}
	st = BlockStats{Accesses: 200, Misses: 50}
	if st.MissRate() != 0.25 {
		t.Errorf("MissRate = %v", st.MissRate())
	}
}

func TestNewSystemValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSystem(0, units.KiB, 64) },
		func() { NewSystem(2, 0, 64) },
		func() { NewSystem(2, units.KiB, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic from invalid NewSystem")
				}
			}()
			f()
		}()
	}
}

func TestChargeAccounting(t *testing.T) {
	s := newSys()
	s.ChargeHits(1, 100)
	s.ChargeRemote(1, 40)
	s.ChargeBackground(1, 30, 10)
	st := s.Stats(1)
	if st.Accesses != 180 {
		t.Errorf("accesses = %d, want 180", st.Accesses)
	}
	if st.Hits != 130 {
		t.Errorf("hits = %d, want 130", st.Hits)
	}
	if st.RemoteTransfers != 40 || st.MemoryFills != 10 {
		t.Errorf("remote=%d mem=%d", st.RemoteTransfers, st.MemoryFills)
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Error("hit+miss != accesses after explicit charges")
	}
	if got := s.Aggregate(); got != st {
		t.Errorf("aggregate %+v != core stats %+v", got, st)
	}
	if s.LineSize() != 64 {
		t.Errorf("line size = %v", s.LineSize())
	}
}

func TestConsumeFromReportsSupplier(t *testing.T) {
	s := newSys()
	s.Fill(2, 11, 64*units.KiB)
	kind, supplier := s.ConsumeFrom(0, 11)
	if kind != HitRemote || supplier != 2 {
		t.Errorf("ConsumeFrom = %v, %d; want remote from core 2", kind, supplier)
	}
	// Local and memory outcomes report no supplier.
	kind, supplier = s.ConsumeFrom(0, 11)
	if kind != HitLocal || supplier != -1 {
		t.Errorf("local = %v, %d", kind, supplier)
	}
	s.Release(11)
	s.Fill(1, 12, units.MiB) // bypasses (oversized)
	kind, supplier = s.ConsumeFrom(0, 12)
	if kind != MissMemory || supplier != -1 {
		t.Errorf("memory = %v, %d", kind, supplier)
	}
}

func TestL3VictimCache(t *testing.T) {
	s := newSys() // 4 cores, 512 KiB each
	s.ConfigureL3(2, units.MiB)
	// Fill 16 strips into core 0: the first 8 evict to socket 0's L3.
	for i := BlockID(1); i <= 16; i++ {
		s.Fill(0, i, 64*units.KiB)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Consuming an evicted block hits the socket L3, not memory.
	kind, supplier := s.ConsumeFrom(0, 1)
	if kind != HitL3 {
		t.Fatalf("evicted block came from %v, want l3-hit", kind)
	}
	if supplier != 0 {
		t.Errorf("supplier = %d, want socket-0 core", supplier)
	}
	st := s.Stats(0)
	if st.L3Transfers != 1024 {
		t.Errorf("L3 transfers = %d, want 1024", st.L3Transfers)
	}
	// A resident block still hits locally.
	if kind, _ := s.ConsumeFrom(0, 16); kind != HitLocal {
		t.Errorf("resident block = %v", kind)
	}
	// Consuming from the other socket is still an L3 hit, with the
	// supplier identifying socket 0.
	kind, supplier = s.ConsumeFrom(3, 2)
	if kind != HitL3 || supplier != 0 {
		t.Errorf("cross-socket L3 = %v from %d", kind, supplier)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestL3CapacityDisplacement(t *testing.T) {
	s := NewSystem(2, 128*units.KiB, 64) // 2 strips per private cache
	s.ConfigureL3(2, 128*units.KiB)      // 2 strips of L3
	for i := BlockID(1); i <= 6; i++ {
		s.Fill(0, i, 64*units.KiB)
	}
	// Private holds {5,6}; L3 holds the last two victims {3,4}; 1 and 2
	// were displaced from the L3 to memory.
	if k, _ := s.ConsumeFrom(0, 1); k != MissMemory {
		t.Errorf("block 1 = %v, want memory-miss", k)
	}
	if k, _ := s.ConsumeFrom(1, 4); k != HitL3 {
		t.Errorf("block 4 = %v, want l3-hit", k)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestL3ConfigValidation(t *testing.T) {
	s := newSys()
	for _, f := range []func(){
		func() { s.ConfigureL3(0, units.MiB) },
		func() { s.ConfigureL3(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad L3 config accepted")
				}
			}()
			f()
		}()
	}
}

func BenchmarkSystemFillConsume(b *testing.B) {
	s := NewSystem(8, 512*units.KiB, 64)
	for i := 0; i < b.N; i++ {
		id := BlockID(i + 1)
		s.Fill(i%8, id, 64*units.KiB)
		s.Consume((i+1)%8, id)
		s.Release(id)
	}
}
