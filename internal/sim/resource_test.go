package sim

import (
	"testing"

	"sais/internal/units"
)

func TestServerSerializesJobs(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "nic")
	var done []units.Time
	e.At(0, func(units.Time) {
		s.Submit(10, func(now units.Time) { done = append(done, now) })
		s.Submit(5, func(now units.Time) { done = append(done, now) })
		s.Submit(1, func(now units.Time) { done = append(done, now) })
	})
	e.RunUntilIdle()
	want := []units.Time{10, 15, 16}
	if len(done) != 3 {
		t.Fatalf("done = %v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("job %d completed at %v, want %v", i, done[i], want[i])
		}
	}
}

func TestServerIdleGap(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "disk")
	var second units.Time
	e.At(0, func(units.Time) { s.Submit(10, nil) })
	e.At(100, func(units.Time) {
		s.Submit(10, func(now units.Time) { second = now })
	})
	e.RunUntilIdle()
	if second != 110 {
		t.Errorf("job after idle gap finished at %v, want 110", second)
	}
	if s.BusyTime() != 20 {
		t.Errorf("BusyTime = %v, want 20", s.BusyTime())
	}
}

func TestServerReturnsCompletionTime(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "x")
	e.At(0, func(units.Time) {
		if got := s.Submit(7, nil); got != 7 {
			t.Errorf("first Submit returned %v, want 7", got)
		}
		if got := s.Submit(3, nil); got != 10 {
			t.Errorf("second Submit returned %v, want 10", got)
		}
		if got := s.Drain(); got != 10 {
			t.Errorf("Drain = %v, want 10", got)
		}
	})
	e.RunUntilIdle()
}

func TestServerStats(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "x")
	e.At(0, func(units.Time) {
		s.Submit(10, nil)
		s.Submit(10, nil)
		s.Submit(10, nil)
	})
	e.RunUntilIdle()
	if s.Served() != 3 {
		t.Errorf("Served = %d, want 3", s.Served())
	}
	if s.MaxQueue() != 3 {
		t.Errorf("MaxQueue = %d, want 3", s.MaxQueue())
	}
	// Jobs 2 and 3 waited 10 and 20.
	if s.WaitTime() != 30 {
		t.Errorf("WaitTime = %v, want 30", s.WaitTime())
	}
	if s.QueueLen() != 0 {
		t.Errorf("QueueLen = %d, want 0 after drain", s.QueueLen())
	}
}

func TestSubmitFuncSeesDispatchTime(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "x")
	var dispatchAt units.Time = -1
	e.At(0, func(units.Time) {
		s.Submit(25, nil)
		s.SubmitFunc(func(start units.Time) units.Time {
			dispatchAt = start
			return 5
		}, nil)
	})
	e.RunUntilIdle()
	if dispatchAt != 25 {
		t.Errorf("costAt saw dispatch time %v, want 25", dispatchAt)
	}
}

func TestNegativeCostClamped(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "x")
	e.At(0, func(units.Time) {
		fin := s.SubmitFunc(func(units.Time) units.Time { return -5 }, nil)
		if fin != 0 {
			t.Errorf("negative cost finish = %v, want 0", fin)
		}
	})
	e.RunUntilIdle()
}

func TestBusy(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "x")
	e.At(0, func(units.Time) {
		s.Submit(10, nil)
		if !s.Busy() {
			t.Error("server should be busy right after Submit")
		}
	})
	e.At(11, func(units.Time) {
		if s.Busy() {
			t.Error("server should be idle after work drains")
		}
	})
	e.RunUntilIdle()
}
