package sim

import (
	"testing"
	"testing/quick"

	"sais/internal/rng"
	"sais/internal/units"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func(units.Time) { order = append(order, 3) })
	e.At(10, func(units.Time) { order = append(order, 1) })
	e.At(20, func(units.Time) { order = append(order, 2) })
	e.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("final time = %v, want 30", e.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(units.Time) { order = append(order, i) })
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of submission order: %v", order)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var hits []units.Time
	e.At(5, func(now units.Time) {
		hits = append(hits, now)
		e.After(7, func(now units.Time) { hits = append(hits, now) })
	})
	e.RunUntilIdle()
	if len(hits) != 2 || hits[0] != 5 || hits[1] != 12 {
		t.Errorf("hits = %v", hits)
	}
}

func TestImmediatelyRunsAtSameInstantAfterPeers(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(10, func(units.Time) {
		order = append(order, "a")
		e.Immediately(func(now units.Time) {
			if now != 10 {
				t.Errorf("Immediately fired at %v, want 10", now)
			}
			order = append(order, "c")
		})
	})
	e.At(10, func(units.Time) { order = append(order, "b") })
	e.RunUntilIdle()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("order = %v", order)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func(units.Time) {})
	e.RunUntilIdle()
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past did not panic")
		}
	}()
	e.At(50, func(units.Time) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func(units.Time) {})
}

func TestNilEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	e.At(1, nil)
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(10, func(units.Time) { fired = true })
	if !tm.Pending() {
		t.Error("timer should be pending before firing")
	}
	if !tm.Cancel() {
		t.Error("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Error("second Cancel should report false")
	}
	e.RunUntilIdle()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	tm := e.At(10, func(units.Time) {})
	e.RunUntilIdle()
	if tm.Pending() {
		t.Error("fired timer still pending")
	}
	if tm.Cancel() {
		t.Error("Cancel after fire should report false")
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(units.Time(i), func(units.Time) {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.RunUntilIdle()
	if count != 3 {
		t.Errorf("executed %d events after Halt, want 3", count)
	}
	// A subsequent Run resumes.
	e.RunUntilIdle()
	if count != 10 {
		t.Errorf("after resume count = %d, want 10", count)
	}
}

func TestRunDeadline(t *testing.T) {
	e := NewEngine()
	var fired []units.Time
	for _, at := range []units.Time{5, 15, 25} {
		e.At(at, func(now units.Time) { fired = append(fired, now) })
	}
	end := e.Run(20)
	if end != 20 {
		t.Errorf("Run returned %v, want 20", end)
	}
	if len(fired) != 2 {
		t.Errorf("fired %v, want events at 5 and 15 only", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.RunUntilIdle()
	if len(fired) != 3 {
		t.Errorf("event at 25 lost after deadline resume: %v", fired)
	}
}

func TestStepEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue reported work")
	}
}

// Property: with N randomly-timed events, execution order is a stable
// sort of (time, submission order).
func TestHeapOrderingProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%200) + 1
		e := NewEngine()
		times := make([]units.Time, n)
		var got []int
		for i := 0; i < n; i++ {
			times[i] = units.Time(r.Intn(50)) // dense: many ties
			i := i
			e.At(times[i], func(units.Time) { got = append(got, i) })
		}
		e.RunUntilIdle()
		if len(got) != n {
			return false
		}
		for k := 1; k < n; k++ {
			a, b := got[k-1], got[k]
			if times[a] > times[b] {
				return false
			}
			if times[a] == times[b] && a > b {
				return false // tie broken against submission order
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(units.Time(i), func(units.Time) {})
	}
	tm := e.At(10, func(units.Time) {})
	tm.Cancel()
	e.RunUntilIdle()
	if e.Fired() != 5 {
		t.Errorf("Fired = %d, want 5 (cancelled events do not count)", e.Fired())
	}
}

func BenchmarkEngine10kEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		r := rng.New(1)
		var chain func(now units.Time)
		count := 0
		chain = func(now units.Time) {
			count++
			if count < 10000 {
				e.After(units.Time(r.Intn(100)+1), chain)
			}
		}
		for j := 0; j < 64; j++ {
			e.At(units.Time(r.Intn(100)), chain)
		}
		e.RunUntilIdle()
	}
}

func TestStopConditionEndsRun(t *testing.T) {
	e := NewEngine()
	var fired int
	var chain func(now units.Time)
	chain = func(now units.Time) {
		fired++
		e.After(1, chain)
	}
	e.At(0, chain)
	stop := false
	e.SetStop(func() bool { return stop })

	e.Run(units.Time(10))
	if e.Stopped() {
		t.Fatal("Stopped() true before the condition fired")
	}
	stop = true
	e.Run(units.Forever)
	if !e.Stopped() {
		t.Fatal("Stopped() false after the condition fired")
	}
	// The self-rescheduling chain never drains, so only the stop
	// condition can have ended the second Run; it is polled on entry,
	// then every stopPollInterval events.
	if got := e.Fired(); got > uint64(fired) {
		t.Errorf("Fired = %d after stop, events observed %d", got, fired)
	}
}

func TestStopConditionPolledAtInterval(t *testing.T) {
	e := NewEngine()
	var fired int
	var chain func(now units.Time)
	chain = func(now units.Time) {
		fired++
		e.After(1, chain)
	}
	e.At(0, chain)
	// Arm the condition to fire once some events have run: the loop
	// must notice within one poll interval, not run forever.
	e.SetStop(func() bool { return fired >= 10 })
	e.Run(units.Forever)
	if !e.Stopped() {
		t.Fatal("run loop did not stop")
	}
	if fired < 10 || fired > 10+stopPollInterval {
		t.Errorf("fired = %d events; want within one poll interval past 10", fired)
	}
}

func TestStopConditionClearedRunsToDeadline(t *testing.T) {
	e := NewEngine()
	e.SetStop(func() bool { return true })
	e.At(5, func(units.Time) {})
	e.Run(units.Forever)
	if !e.Stopped() || e.Fired() != 0 {
		t.Fatalf("armed stop: stopped=%v fired=%d, want immediate stop", e.Stopped(), e.Fired())
	}
	e.SetStop(nil)
	e.RunUntilIdle()
	if e.Stopped() || e.Fired() != 1 {
		t.Errorf("cleared stop: stopped=%v fired=%d, want normal drain", e.Stopped(), e.Fired())
	}
}
