// Package analysistest runs a lint analyzer over a fixture package and
// checks its diagnostics against expectations written in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	time.Sleep(1) // want "wall clock"
//
// Each string after "// want" is a regular expression that must match
// the message of one diagnostic reported on that line; diagnostics with
// no matching expectation, and expectations with no matching
// diagnostic, fail the test.
//
// Fixture packages live under a src root (conventionally
// internal/lint/testdata/src/<fixture>). Imports are resolved first
// against sibling directories of that root (so a fixture can import a
// stand-in "units" package), then from the standard library via the
// source importer — no compiled export data required.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"sais/internal/lint/analysis"
)

// Run type-checks the fixture package in srcRoot/pkg under the package
// path importPath, applies a, and reports expectation mismatches as
// test errors. importPath matters: analyzers scope rules by package
// path (e.g. simdeterminism's strict set only fires inside the
// deterministic simulator packages).
func Run(t *testing.T, a *analysis.Analyzer, srcRoot, pkg, importPath string) {
	t.Helper()
	RunSuite(t, []*analysis.Analyzer{a}, srcRoot, pkg, importPath)
}

// RunSuite runs several analyzers over one fixture package the way the
// saisvet driver does: a shared suppression-directive index (so a
// waiver consumed by one analyzer counts as used when waiverhygiene
// runs later) and a shared facts record. Fixture-local dependency
// packages are put through the same suite first, with diagnostics
// discarded, so their exported facts reach the package under test
// through Pass.Deps exactly as dependency .vetx files would in a real
// `go vet -vettool` run. Expectations from every analyzer share the
// fixture's "// want" comments.
func RunSuite(t *testing.T, suite []*analysis.Analyzer, srcRoot, pkg, importPath string) {
	t.Helper()

	fset := token.NewFileSet()
	ld := &loader{
		fset:     fset,
		srcRoot:  srcRoot,
		packages: make(map[string]*types.Package),
		checked:  make(map[string]*checkedPkg),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	files, tpkg, info, err := ld.check(filepath.Join(srcRoot, pkg), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}

	// Compute the facts of every fixture-local dependency, transitively,
	// dependencies first. The nil placeholder guards against import
	// cycles (impossible in valid Go, but a corrupted fixture should not
	// hang the test).
	facts := make(map[string]*analysis.PackageFacts)
	var factsFor func(p *types.Package)
	factsFor = func(p *types.Package) {
		path := p.Path()
		if _, done := facts[path]; done {
			return
		}
		c, ok := ld.checked[path]
		if !ok {
			return // stdlib: exports no facts
		}
		facts[path] = nil
		for _, imp := range p.Imports() {
			factsFor(imp)
		}
		pf := &analysis.PackageFacts{}
		dirs := analysis.NewDirectives(fset, c.files)
		for _, a := range suite {
			pass := &analysis.Pass{
				Analyzer: a, Fset: fset, Files: c.files, Pkg: c.pkg, TypesInfo: c.info,
				Dirs: dirs, Deps: facts, Facts: pf,
				Report: func(analysis.Diagnostic) {},
			}
			if _, err := a.Run(pass); err != nil {
				t.Fatalf("analyzer %s on dependency %s: %v", a.Name, path, err)
			}
		}
		facts[path] = pf
	}
	for _, imp := range tpkg.Imports() {
		factsFor(imp)
	}

	dirs := analysis.NewDirectives(fset, files)
	shared := &analysis.PackageFacts{}
	var diags []analysis.Diagnostic
	for _, a := range suite {
		pass := &analysis.Pass{
			Analyzer: a, Fset: fset, Files: files, Pkg: tpkg, TypesInfo: info,
			Dirs: dirs, Deps: facts, Facts: shared,
			Report: func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
	}

	checkExpectations(t, fset, files, diags)
}

// expectation is one "// want" regexp awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Both comment forms carry expectations. The block form
				// (`/* want ... */`) exists for diagnostics reported *on a
				// line comment itself* — e.g. waiverhygiene flagging a
				// stale //lint: directive — where a trailing line comment
				// cannot share the line.
				text := strings.TrimPrefix(c.Text, "//")
				if strings.HasPrefix(text, "/*") {
					text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				}
				i := strings.Index(text, "want ")
				if i < 0 || strings.TrimSpace(text[:i]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				res, err := parseWants(text[i+len("want "):])
				if err != nil {
					t.Errorf("%s: malformed want comment: %v", pos, err)
					continue
				}
				for _, re := range res {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the quoted regexps from the tail of a want
// comment. Both "double-quoted" and `backquoted` forms are accepted.
func parseWants(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		lit, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
		s = s[len(q):]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no regexps in want comment")
	}
	return out, nil
}

// loader type-checks fixture packages, resolving imports from the src
// root first and the real standard library second.
type loader struct {
	fset     *token.FileSet
	srcRoot  string
	packages map[string]*types.Package
	checked  map[string]*checkedPkg
	fallback types.Importer
}

// checkedPkg retains the syntax and type information of a fixture-local
// package so RunSuite can compute its exported facts.
type checkedPkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// Import implements types.Importer for fixture-local packages.
func (ld *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.packages[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		_, pkg, _, err := ld.check(dir, path)
		if err != nil {
			return nil, err
		}
		ld.packages[path] = pkg
		return pkg, nil
	}
	return ld.fallback.Import(path)
}

// check parses and type-checks every .go file in dir as the package
// importPath.
func (ld *loader) check(dir, importPath string) ([]*ast.File, *types.Package, *types.Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	if ld.checked != nil {
		ld.checked[importPath] = &checkedPkg{files: files, pkg: pkg, info: info}
	}
	return files, pkg, info, nil
}
