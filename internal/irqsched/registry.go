package irqsched

import (
	"fmt"
	"sort"
	"strings"

	"sais/internal/apic"
	"sais/internal/units"
)

// Descriptor is a policy's registry entry: the parseable name, the
// constructor, and the traits consumers need to wire the datapath
// without kind-specific switches.
type Descriptor struct {
	Kind PolicyKind
	// Name is the identifier accepted by ParsePolicy and printed by
	// PolicyKind.String.
	Name string
	// New builds the router from Options. Constructors are total: every
	// zero-valued Options field is replaced by a safe default.
	New func(Options) (apic.Router, error)
	// UsesHints means the client should attach SAIs affinity hints to
	// requests (HintMessager) and size validation to MaxCores.
	UsesHints bool
	// MSIX means the client wires per-queue MSI-X vectors and programs
	// the I/O APIC redirection table to match the router's static map.
	MSIX bool
	// TxSteered means the router learns from transmissions (implements
	// TxObserver) rather than from a static function of the flow.
	TxSteered bool
	// ReorderIssue means the client reorders strip issue order by
	// observed per-server latency (straggler-aware scheduling).
	ReorderIssue bool
}

// TxObserver is implemented by routers that sample the transmit path —
// Flow Director's last-transmitting-core table and A-TFC's staged
// affinity. The client calls it from the send side of the datapath.
type TxObserver interface {
	NoteTransmit(flow uint64, core int)
}

// FlowIdleObserver is implemented by routers that defer affinity
// updates to flow-idle boundaries (A-TFC). The client calls it when a
// flow's outstanding strips drain to zero.
type FlowIdleObserver interface {
	NoteFlowIdle(flow uint64)
}

// CounterReporter lets a policy export self-describing counters into
// the run Result (Result.PolicyStats). Keys should be short and
// prefixed with the policy name (e.g. "fd_evictions").
type CounterReporter interface {
	Counters() map[string]uint64
}

var registry = map[PolicyKind]Descriptor{}

// Register adds a policy descriptor. Duplicate kinds or names panic at
// init time — registration is a build-time act, not a runtime one.
func Register(d Descriptor) {
	if d.New == nil {
		panic("irqsched: Register with nil constructor")
	}
	if _, dup := registry[d.Kind]; dup {
		panic(fmt.Sprintf("irqsched: duplicate policy kind %d", int(d.Kind)))
	}
	//lint:maporder order-independent duplicate-name check
	for _, e := range registry {
		if e.Name == d.Name {
			panic(fmt.Sprintf("irqsched: duplicate policy name %q", d.Name))
		}
	}
	//lint:globalstate registration table is sealed by package init, before any engine runs
	registry[d.Kind] = d
}

// Describe returns the registry entry for kind.
func Describe(kind PolicyKind) (Descriptor, bool) {
	d, ok := registry[kind]
	return d, ok
}

// Kinds returns all registered kinds in ascending order.
func Kinds() []PolicyKind {
	ks := make([]PolicyKind, 0, len(registry))
	//lint:maporder sorted immediately below
	for k := range registry {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Names returns all registered policy names, sorted.
func Names() []string {
	ns := make([]string, 0, len(registry))
	//lint:maporder sorted immediately below
	for _, d := range registry {
		ns = append(ns, d.Name)
	}
	sort.Strings(ns)
	return ns
}

func nameList() string { return strings.Join(Names(), "|") }

// UnknownPolicyError reports a PolicyKind with no registry entry —
// only reachable with a kind that ParsePolicy cannot produce.
type UnknownPolicyError struct {
	Kind PolicyKind
}

func (e *UnknownPolicyError) Error() string {
	return fmt.Sprintf("irqsched: unknown policy kind %d (registered: %s)", int(e.Kind), nameList())
}

// zeroLoads is the nil-LoadReader default: a flat, idle machine. The
// core count is an upper bound — routers index it only with core ids
// from their allowed set, so oversizing is harmless.
type zeroLoads struct{ n int }

func (z zeroLoads) NumCores() int           { return z.n }
func (z zeroLoads) CoreBusy(int) units.Time { return 0 }
func (z zeroLoads) CoreQueue(int) int       { return 0 }

func loadsOr(opts Options) LoadReader {
	if opts.Loads != nil {
		return opts.Loads
	}
	return zeroLoads{n: 1024}
}

func periodOr(opts Options) units.Time {
	if opts.Period > 0 {
		return opts.Period
	}
	return 10 * units.Millisecond
}

func coresOr(opts Options) int {
	if opts.Cores > 0 {
		return opts.Cores
	}
	return 1
}

// RSSTable builds the hardware-RSS redirection map: queue q's vector
// (base+q) pins to core q mod cores. The client programs the I/O APIC
// from the same map so router and hardware agree.
func RSSTable(cores, queues int, base apic.Vector) map[apic.Vector]int {
	if cores < 1 {
		cores = 1
	}
	if queues < 1 {
		queues = cores
	}
	table := make(map[apic.Vector]int, queues)
	for q := 0; q < queues; q++ {
		table[base+apic.Vector(q)] = q % cores
	}
	return table
}

func init() {
	Register(Descriptor{
		Kind: PolicyRoundRobin, Name: "roundrobin",
		New: func(Options) (apic.Router, error) { return NewRoundRobin(), nil },
	})
	Register(Descriptor{
		Kind: PolicyDedicated, Name: "dedicated",
		New: func(o Options) (apic.Router, error) { return NewDedicated(o.DedicatedCore), nil },
	})
	Register(Descriptor{
		Kind: PolicyIrqbalance, Name: "irqbalance",
		New: func(o Options) (apic.Router, error) {
			return NewIrqbalance(loadsOr(o), periodOr(o)), nil
		},
	})
	Register(Descriptor{
		Kind: PolicySourceAware, Name: "sais", UsesHints: true,
		New: func(Options) (apic.Router, error) { return NewSourceAware(nil), nil },
	})
	Register(Descriptor{
		Kind: PolicyFlowHash, Name: "flowhash",
		New: func(Options) (apic.Router, error) { return NewFlowHash(), nil },
	})
	Register(Descriptor{
		Kind: PolicyHybrid, Name: "hybrid", UsesHints: true,
		New: func(o Options) (apic.Router, error) {
			q := o.HybridQueue
			if q < 1 {
				q = 16
			}
			return NewHybrid(loadsOr(o), periodOr(o), q), nil
		},
	})
	Register(Descriptor{
		Kind: PolicySocketAware, Name: "sais-socket", UsesHints: true,
		New: func(o Options) (apic.Router, error) {
			ss := o.SocketSize
			if ss < 1 {
				ss = 4
			}
			return NewSocketAware(o.Loads, ss, nil), nil
		},
	})
	Register(Descriptor{
		Kind: PolicyHardwareRSS, Name: "rss", MSIX: true,
		New: func(o Options) (apic.Router, error) {
			return NewStaticTable(RSSTable(coresOr(o), o.RSSQueues, o.RSSBaseVector), nil), nil
		},
	})
	Register(Descriptor{
		Kind: PolicyFlowDirector, Name: "flowdirector", TxSteered: true,
		New: func(o Options) (apic.Router, error) {
			cap := o.FlowTable
			if cap < 1 {
				cap = 1024
			}
			return NewFlowDirector(cap), nil
		},
	})
	Register(Descriptor{
		Kind: PolicyToeplitz, Name: "toeplitz",
		New: func(o Options) (apic.Router, error) { return NewToeplitz(coresOr(o)), nil },
	})
	Register(Descriptor{
		Kind: PolicyATFC, Name: "atfc", TxSteered: true,
		New: func(Options) (apic.Router, error) { return NewATFC(), nil },
	})
	Register(Descriptor{
		Kind: PolicyStragglerAware, Name: "straggler", UsesHints: true, ReorderIssue: true,
		New: func(Options) (apic.Router, error) { return NewStragglerAware(), nil },
	})
}
