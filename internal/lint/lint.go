// Package lint hosts the saisvet analyzers: mechanical enforcement of
// the simulator's determinism, allocation-freedom, sharding, hook,
// schema-stability, unit-safety, and error-handling invariants. See
// DESIGN.md §11 and §16 for the rationale behind each check.
//
// Every analyzer honors a line-scoped suppression directive of the form
//
//	//lint:<name> optional reason
//
// placed on the flagged line or the line directly above it, where
// <name> is the directive listed in the analyzer's Doc (wallclock,
// maporder, goroutine, globalrand, seedarith, unitmix, close, alloc,
// shardsafety, globalstate, nilhook, jsonstability). The reason is free
// text; write one — the annotation is the audit trail for why the
// invariant does not apply at that site. The waiverhygiene analyzer
// reports waivers that no longer suppress anything, so a stale reason
// cannot linger.
//
// A package may waive one directive wholesale with
//
//	//lint:package <name> reason
//
// placed in a file's header (on or above its package clause). The
// package-level form exists for packages whose design is built around
// a controlled instance of the hazard — internal/shard runs
// barrier-synchronized worker goroutines, so a per-line //lint:goroutine
// at every go statement would be noise, not an audit trail. Use it
// sparingly: a package waiver removes the analyzer's leverage for the
// whole package, so the reason must argue why the invariant holds
// globally (typically with a DESIGN.md reference).
//
// Positive contracts are opted into with //saisvet: annotations on the
// declaration they govern:
//
//	//saisvet:allocfree            — function must not allocate (allocfree)
//	//saisvet:mailbox              — struct field writable only by its
//	                                 owning type's methods (shardsafety)
//	//saisvet:nilhook              — optional hook field; every call must
//	                                 be nil-guarded (hookcontract)
//	//saisvet:jsonstable sig=HHHH  — serialized struct whose required
//	                                 field set is frozen (jsonstability)
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sais/internal/lint/analysis"
)

// Analyzers is the full saisvet suite, in the order the multichecker
// runs them. Fact-exporting analyzers come first so later analyzers of
// the same package can read their exports; waiverhygiene must run last,
// after every other analyzer has consulted the shared directive index.
var Analyzers = []*analysis.Analyzer{
	SimDeterminism,
	SeedDerive,
	UnitSafety,
	CloseCheck,
	AllocFree,
	ShardSafety,
	HookContract,
	JSONStability,
	WaiverHygiene,
}

// KnownDirectives returns the union of suppression-directive names the
// suite owns — the vocabulary waiverhygiene accepts.
func KnownDirectives() map[string]bool {
	known := make(map[string]bool)
	for _, a := range Analyzers {
		for _, d := range a.Directives {
			known[d] = true
		}
	}
	return known
}

// deterministicPkgs are the packages whose observable behavior must be
// a pure function of (Config, Seed): the discrete-event core, every
// simulated component, and the experiment/sweep layers whose output
// ordering feeds the paper's figures. simdeterminism applies its
// strictest rules (no goroutines, no map-ordered iteration, no calls
// to transitively tainted functions) only here, and shardsafety's
// shared-mutable-global rule has the same scope.
var deterministicPkgs = map[string]bool{
	"sais/cluster":             true,
	"sais/experiments":         true,
	"sais/internal/sim":        true,
	"sais/internal/netsim":     true,
	"sais/internal/apic":       true,
	"sais/internal/cpu":        true,
	"sais/internal/cache":      true,
	"sais/internal/disk":       true,
	"sais/internal/pfs":        true,
	"sais/internal/client":     true,
	"sais/internal/irqsched":   true,
	"sais/internal/toeplitz":   true,
	"sais/internal/faults":     true,
	"sais/internal/workload":   true,
	"sais/internal/collective": true,
	"sais/internal/sweep":      true,
	"sais/internal/shard":      true,
	"sais/internal/scenario":   true,
	"sais/internal/flowsim":    true,
}

// isDeterministicPkg reports whether path is one of the packages whose
// behavior must be bit-reproducible. Test variants ("sais/cluster
// [sais/cluster.test]" style IDs never reach here; go vet passes the
// plain import path) share their base package's classification.
func isDeterministicPkg(path string) bool {
	return deterministicPkgs[path]
}

// isTestFile reports whether the file containing pos is a _test.go
// file. The invariants are about shipped simulator code; tests are free
// to use wall clocks, goroutines, and map iteration.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// annotationPrefix introduces a positive-contract annotation. Unlike
// //lint: waivers (which relax a check), //saisvet: annotations opt a
// declaration into a stricter contract.
const annotationPrefix = "//saisvet:"

// annotation scans a declaration's doc/comment group for a
// //saisvet:<name> annotation and returns its argument tail ("" when
// the annotation is bare) and whether it was found.
func annotation(groups []*ast.CommentGroup, name string) (args string, ok bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, annotationPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, annotationPrefix)
			head := rest
			if i := strings.IndexAny(head, " \t"); i >= 0 {
				head = head[:i]
			}
			if head == name {
				return strings.TrimSpace(rest[len(head):]), true
			}
		}
	}
	return "", false
}

// funcDeclsByObject maps every declared function/method object in the
// package to its declaration — the skeleton the fact-computing
// analyzers walk.
func funcDeclsByObject(pass *analysis.Pass) map[*ast.FuncDecl]*ast.File {
	decls := make(map[*ast.FuncDecl]*ast.File)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[fd] = f
			}
		}
	}
	return decls
}

// staticCallee resolves the callee of a call expression to its
// *types.Func: a named function or a method called through a concrete
// (non-interface) receiver. It returns nil for builtins, conversions,
// func values, and interface-method calls — the dynamic cases that have
// no single static body to consult.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	if fn == nil {
		fn, _ = pass.TypesInfo.Defs[id].(*types.Func)
	}
	return fn
}
