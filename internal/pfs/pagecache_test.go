package pfs

import (
	"testing"
	"testing/quick"

	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/units"
)

func newCache(capacity units.Bytes) (*sim.Engine, *PageCache) {
	eng := sim.NewEngine()
	return eng, NewPageCache(eng, capacity, 256*units.KiB)
}

// fetchAfter returns a fetch function that completes after d.
func fetchAfter(eng *sim.Engine, d units.Time, count *int) func(sim.Event) {
	return func(done sim.Event) {
		*count++
		eng.After(d, done)
	}
}

func TestMissThenHitThenLRU(t *testing.T) {
	eng, pc := newCache(512 * units.KiB) // 2 windows
	fetches := 0
	var readyTimes []units.Time
	get := func(win int64) {
		pc.Get(1, win, func(now units.Time) { readyTimes = append(readyTimes, now) },
			fetchAfter(eng, units.Millisecond, &fetches))
	}
	eng.At(0, func(units.Time) { get(0) })
	eng.At(2*units.Millisecond, func(units.Time) { get(0) }) // hit
	eng.At(3*units.Millisecond, func(units.Time) { get(1) }) // miss, fills
	eng.At(5*units.Millisecond, func(units.Time) { get(2) }) // miss, evicts win 0
	eng.At(7*units.Millisecond, func(units.Time) { get(0) }) // miss again
	eng.RunUntilIdle()
	if fetches != 4 {
		t.Errorf("fetches = %d, want 4 (one hit)", fetches)
	}
	if pc.Hits() != 1 || pc.Misses() != 4 {
		t.Errorf("hits=%d misses=%d", pc.Hits(), pc.Misses())
	}
	if err := pc.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// The hit at t=2ms must be immediate (same instant).
	if readyTimes[1] != 2*units.Millisecond {
		t.Errorf("hit ready at %v, want 2ms", readyTimes[1])
	}
}

func TestInflightMerging(t *testing.T) {
	eng, pc := newCache(units.MiB)
	fetches := 0
	ready := 0
	eng.At(0, func(units.Time) {
		for i := 0; i < 5; i++ {
			pc.Get(1, 7, func(units.Time) { ready++ }, fetchAfter(eng, units.Millisecond, &fetches))
		}
	})
	eng.RunUntilIdle()
	if fetches != 1 {
		t.Errorf("fetches = %d, want 1 (merged)", fetches)
	}
	if ready != 5 {
		t.Errorf("ready callbacks = %d, want 5", ready)
	}
	if pc.Merged() != 4 {
		t.Errorf("merged = %d, want 4", pc.Merged())
	}
}

func TestZeroCapacityNeverStores(t *testing.T) {
	eng, pc := newCache(0)
	fetches := 0
	eng.At(0, func(units.Time) {
		pc.Get(1, 0, func(units.Time) {}, fetchAfter(eng, units.Millisecond, &fetches))
	})
	eng.RunUntilIdle()
	eng.At(eng.Now(), func(units.Time) {
		pc.Get(1, 0, func(units.Time) {}, fetchAfter(eng, units.Millisecond, &fetches))
	})
	eng.RunUntilIdle()
	if fetches != 2 {
		t.Errorf("fetches = %d, want 2 (nothing cached)", fetches)
	}
	if pc.Len() != 0 || pc.Used() != 0 {
		t.Errorf("len=%d used=%v", pc.Len(), pc.Used())
	}
}

func TestWindowsMapping(t *testing.T) {
	_, pc := newCache(units.MiB)
	first, last := pc.Windows(0, 256*units.KiB)
	if first != 0 || last != 0 {
		t.Errorf("exact window = [%d,%d]", first, last)
	}
	first, last = pc.Windows(200*units.KiB, 128*units.KiB)
	if first != 0 || last != 1 {
		t.Errorf("straddling = [%d,%d]", first, last)
	}
	off, size := pc.WindowExtent(3)
	if off != 768*units.KiB || size != 256*units.KiB {
		t.Errorf("extent(3) = %v,%v", off, size)
	}
}

func TestDistinctFilesDistinctWindows(t *testing.T) {
	eng, pc := newCache(units.MiB)
	fetches := 0
	eng.At(0, func(units.Time) {
		pc.Get(1, 0, func(units.Time) {}, fetchAfter(eng, units.Millisecond, &fetches))
		pc.Get(2, 0, func(units.Time) {}, fetchAfter(eng, units.Millisecond, &fetches))
	})
	eng.RunUntilIdle()
	if fetches != 2 {
		t.Errorf("fetches = %d; files must not alias", fetches)
	}
}

func TestBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero window did not panic")
		}
	}()
	NewPageCache(sim.NewEngine(), units.MiB, 0)
}

// Property: under random Get sequences the cache never exceeds capacity,
// list and map stay consistent, and hits+misses+merged equals requests.
func TestPageCacheInvariantsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		eng := sim.NewEngine()
		capWindows := r.Intn(6) + 1
		pc := NewPageCache(eng, units.Bytes(capWindows)*64*units.KiB, 64*units.KiB)
		requests := 0
		n := r.Intn(200) + 1
		for i := 0; i < n; i++ {
			at := units.Time(r.Intn(1000)) * units.Microsecond
			file := FileID(r.Intn(3))
			win := int64(r.Intn(10))
			d := units.Time(r.Intn(50)) * units.Microsecond
			eng.At(at, func(units.Time) {
				requests++
				pc.Get(file, win, func(units.Time) {}, func(done sim.Event) {
					eng.After(d, done)
				})
			})
		}
		eng.RunUntilIdle()
		if pc.CheckInvariants() != nil {
			return false
		}
		if pc.Len() > capWindows {
			return false
		}
		return pc.Hits()+pc.Misses()+pc.Merged() == uint64(requests)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkPageCacheGet(b *testing.B) {
	eng := sim.NewEngine()
	pc := NewPageCache(eng, units.GiB, 256*units.KiB)
	noop := func(units.Time) {}
	fetch := func(done sim.Event) { eng.Immediately(done) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc.Get(FileID(i%4), int64(i%512), noop, fetch)
		if i%256 == 255 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
}
