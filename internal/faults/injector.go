package faults

import (
	"fmt"
	"sync/atomic"

	"sais/internal/netsim"
	"sais/internal/pfs"
	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/units"
)

// Target is the built cluster an Injector arms against.
//
// Single-engine runs fill Engine and Fabric only. Sharded runs
// (cluster.Config.Shards > 1) additionally list every shard's engine
// and fabric — index-aligned, with Engines[0]/Fabrics[0] hosting the
// timeline clock and the storm ghost NIC — and supply ServerEngine so
// crash/revive events fire on the engine the target server lives on.
type Target struct {
	Engine  *sim.Engine
	Fabric  *netsim.Fabric
	Engines []*sim.Engine
	Fabrics []*netsim.Fabric
	// ServerEngine returns the engine server i runs on; nil means
	// every server shares Engine.
	ServerEngine func(i int) *sim.Engine
	Servers      []*pfs.Server
	// Clients are the fabric ids of the client nodes, for storms.
	Clients []netsim.NodeID
	// StormNode is a free fabric id the injector may claim for its
	// ghost NIC when the plan contains a storm.
	StormNode netsim.NodeID
	// Rand is the run's root randomness; the injector derives labelled
	// sub-streams from it so arming order never perturbs other
	// components' draws.
	Rand *rng.Source
}

// engines returns the full engine list (falling back to the single
// Engine), and fabrics likewise.
func (t *Target) engines() []*sim.Engine {
	if len(t.Engines) > 0 {
		return t.Engines
	}
	return []*sim.Engine{t.Engine}
}

func (t *Target) fabrics() []*netsim.Fabric {
	if len(t.Fabrics) > 0 {
		return t.Fabrics
	}
	return []*netsim.Fabric{t.Fabric}
}

// Stats counts what the injector actually did to the run.
type Stats struct {
	// StallsInjected is the number of server requests delayed, and
	// StallTime the total delay injected.
	StallsInjected uint64
	StallTime      units.Time
	// StormFrames is the number of junk frames sprayed at clients.
	StormFrames uint64
	// Crashes counts crash events applied to an up server.
	Crashes int
	// Downtime accumulates, per server index, the time spent down.
	// Open intervals are closed by Finish.
	Downtime []units.Time
	// LastReviveAt is the time of the last revive event (0 = none).
	LastReviveAt units.Time
}

// Injector is an armed Plan. Arm installs every hook and schedules the
// timeline; Finish closes open fault intervals and returns the stats.
//
// Under sharded execution, stall hooks on different shards run
// concurrently within a round, so the shared tallies are atomics.
// Crash/revive state is per-server (each server's events run on its
// own shard, and distinct slice slots never race); storm state is
// touched only by shard 0's events, whose rounds are ordered by the
// executor's barriers.
type Injector struct {
	plan *Plan
	eng  *sim.Engine // timeline host (shard 0)
	srvs []*pfs.Server

	stalls      atomic.Uint64
	stallTime   atomic.Int64
	stormFrames uint64

	// Per-server crash bookkeeping, indexed by server.
	down       []bool
	downSince  []units.Time
	downtime   []units.Time
	crashes    []int
	lastRevive []units.Time
}

// storm is one armed storm interval.
type storm struct {
	targets []netsim.NodeID
	period  units.Time
	payload units.Bytes
	stopAt  units.Time
}

// Arm validates p against the target shape and installs it: fabric
// loss/corruption predicates, per-server stall sources, and one engine
// event per timeline entry. It must be called before the run starts
// (events are scheduled at absolute plan times). A nil or empty plan
// arms to a no-op injector without touching the target or drawing any
// randomness, so fault-free runs stay byte-identical to an unarmed
// simulator.
func (p *Plan) Arm(t Target) (*Injector, error) {
	n := len(t.Servers)
	inj := &Injector{
		plan:       p,
		eng:        t.Engine,
		srvs:       t.Servers,
		down:       make([]bool, n),
		downSince:  make([]units.Time, n),
		downtime:   make([]units.Time, n),
		crashes:    make([]int, n),
		lastRevive: make([]units.Time, n),
	}
	if p.Empty() {
		return inj, nil
	}
	engines, fabrics := t.engines(), t.fabrics()
	if len(engines) == 0 || engines[0] == nil || len(fabrics) == 0 || fabrics[0] == nil {
		return nil, fmt.Errorf("faults: Arm needs an engine and a fabric")
	}
	inj.eng = engines[0]
	serverEngine := t.ServerEngine
	if serverEngine == nil {
		serverEngine = func(int) *sim.Engine { return engines[0] }
	}
	if err := p.Validate(len(t.Servers), len(t.Clients)); err != nil {
		return nil, err
	}

	// Loss and corruption are keyed decisions: a hash of (stream seed,
	// source node, per-source frame sequence) compared against the
	// rate. Unlike a shared sequential stream, the outcome for a given
	// frame does not depend on how many other frames were examined
	// first, so the set of dropped frames is identical across shard
	// layouts and worker counts.
	if p.Loss > 0 {
		seed := t.Rand.Split("faults/loss").Uint64()
		rate := p.Loss
		pred := func(k netsim.FrameKey) bool {
			return rng.Unit01(rng.Derive(rng.Derive(seed, uint64(k.Src)), k.Seq)) < rate
		}
		for _, fab := range fabrics {
			fab.SetLoss(pred)
		}
	}
	if p.Corrupt > 0 {
		seed := t.Rand.Split("faults/corrupt").Uint64()
		rate := p.Corrupt
		pred := func(_ *netsim.Frame, k netsim.FrameKey) bool {
			return rng.Unit01(rng.Derive(rng.Derive(seed, uint64(k.Src)), k.Seq)) < rate
		}
		for _, fab := range fabrics {
			fab.SetCorruption(pred)
		}
	}
	for _, s := range p.Stalls {
		lo, hi := s.Server, s.Server
		if s.Server == -1 {
			lo, hi = 0, len(t.Servers)-1
		}
		for srv := lo; srv <= hi; srv++ {
			inj.armStall(t.Servers[srv], s, t.Rand.Split(fmt.Sprintf("faults/stall%d", srv)))
		}
	}

	timeline := p.sortedTimeline()
	var ghost *netsim.NIC
	for _, ev := range timeline {
		if ev.Kind == KindStormStart {
			ghost = netsim.NewNIC(engines[0], t.StormNode, netsim.DefaultNICConfig(10*units.Gigabit))
			fabrics[0].Attach(ghost)
			break
		}
	}
	for i, ev := range timeline {
		switch ev.Kind {
		case KindCrash:
			srv := ev.Server
			serverEngine(srv).At(ev.At, func(now units.Time) { inj.crash(srv, now) })
		case KindRevive:
			srv := ev.Server
			serverEngine(srv).At(ev.At, func(now units.Time) { inj.revive(srv, now) })
		case KindDegradeLink:
			// Factors below 1 are rejected uniformly by Plan.Validate
			// above, so the sharded executor's lookahead is always safe.
			factor := ev.Factor
			// Every shard owns a fabric; each applies the new scale on
			// its own clock at the same simulated instant.
			for s := range engines {
				fab := fabrics[s]
				engines[s].At(ev.At, func(units.Time) { fab.SetLatencyScale(factor) })
			}
		case KindStormStart:
			st := &storm{period: ev.Period, payload: ev.Payload}
			if ev.Client == -1 {
				st.targets = append(st.targets, t.Clients...)
			} else {
				st.targets = []netsim.NodeID{t.Clients[ev.Client]}
			}
			// Validate guarantees a later storm-stop exists.
			for _, later := range timeline[i+1:] {
				if later.Kind == KindStormStop {
					st.stopAt = later.At
					break
				}
			}
			nic := ghost
			engines[0].At(ev.At, func(now units.Time) { inj.stormTick(nic, st, now) })
		case KindStormStop:
			// The storm's tick loop checks stopAt itself; nothing to
			// schedule.
		}
	}
	return inj, nil
}

// armStall installs one stall distribution on one server. The counter
// updates are atomic because the hook runs on the server's shard,
// concurrently with other shards' stall hooks.
func (inj *Injector) armStall(srv *pfs.Server, s Stall, rnd *rng.Source) {
	srv.SetStall(func() units.Time {
		if !rnd.Bool(s.Rate) {
			return 0
		}
		d := s.Mean
		if s.Jitter > 0 {
			hi := s.Mean + 4*s.Jitter
			if hi < s.Mean { // int64 overflow on extreme plans
				hi = units.Forever
			}
			d = units.Time(rnd.TruncNormal(float64(s.Mean), float64(s.Jitter), 0, float64(hi)))
		}
		if d > 0 {
			inj.stalls.Add(1)
			inj.stallTime.Add(int64(d))
		}
		return d
	})
}

// crash takes server srv down and opens its downtime interval.
func (inj *Injector) crash(srv int, now units.Time) {
	if inj.down[srv] {
		return // idempotent: already down
	}
	inj.down[srv] = true
	inj.downSince[srv] = now
	inj.crashes[srv]++
	inj.srvs[srv].SetDown(true)
}

// revive brings server srv back and closes its downtime interval.
func (inj *Injector) revive(srv int, now units.Time) {
	if !inj.down[srv] {
		return // idempotent: not down
	}
	inj.down[srv] = false
	inj.downtime[srv] += now - inj.downSince[srv]
	inj.lastRevive[srv] = now
	inj.srvs[srv].SetDown(false)
}

// stormTick sprays one junk frame per target and re-arms until stopAt.
// The frames carry no hint and no body: the victim NIC raises an
// interrupt per frame and the client's softirq path discards them as
// stray traffic — pure overhead, exactly what an interrupt storm is.
func (inj *Injector) stormTick(nic *netsim.NIC, st *storm, now units.Time) {
	if now >= st.stopAt {
		return
	}
	for _, dst := range st.targets {
		nic.Send(dst, st.payload, netsim.AffHint{}, nil)
		inj.stormFrames++
	}
	inj.eng.After(st.period, func(at units.Time) { inj.stormTick(nic, st, at) })
}

// snapshot assembles a Stats view from the per-server bookkeeping.
func (inj *Injector) snapshot() Stats {
	st := Stats{
		StallsInjected: inj.stalls.Load(),
		StallTime:      units.Time(inj.stallTime.Load()),
		StormFrames:    inj.stormFrames,
		Downtime:       make([]units.Time, len(inj.downtime)),
	}
	copy(st.Downtime, inj.downtime)
	for srv := range inj.crashes {
		st.Crashes += inj.crashes[srv]
		if inj.lastRevive[srv] > st.LastReviveAt {
			st.LastReviveAt = inj.lastRevive[srv]
		}
	}
	return st
}

// Finish closes the downtime of servers still down at now (a crash
// without a revive) and returns the final stats. Call it once, after
// the run drains.
func (inj *Injector) Finish(now units.Time) Stats {
	for srv := range inj.down {
		if inj.down[srv] {
			inj.downtime[srv] += now - inj.downSince[srv]
			inj.down[srv] = false
		}
	}
	return inj.snapshot()
}

// Stats returns a snapshot of the counters without closing intervals.
func (inj *Injector) Stats() Stats { return inj.snapshot() }
