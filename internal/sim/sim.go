// Package sim implements the discrete-event simulation engine that every
// SAIs subsystem runs on.
//
// The engine is a single-threaded binary-heap event queue over a virtual
// nanosecond clock (units.Time). Determinism is a hard requirement —
// the paper's experiments are reproduced as exact functions of (config,
// seed) — so ties in event time are broken by a monotonically increasing
// sequence number: two events scheduled for the same instant always fire
// in the order they were scheduled.
package sim

import (
	"fmt"

	"sais/internal/units"
)

// Event is a callback scheduled to run at a point in simulated time.
type Event func(now units.Time)

// item is a scheduled event in the heap.
type item struct {
	at   units.Time
	seq  uint64
	fn   Event
	dead bool // cancelled
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ it *item }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. It reports whether the event was
// still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.it == nil || t.it.dead {
		return false
	}
	t.it.dead = true
	t.it.fn = nil
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (t *Timer) Pending() bool { return t != nil && t.it != nil && !t.it.dead }

// stopPollInterval is how many events Run executes between polls of
// the stop condition. Polling per event would put a closure call (for
// context cancellation, an atomic load behind a mutexed Err) on the
// hot path; 64 events keeps the overhead unmeasurable while still
// bounding cancellation latency to a sliver of simulated work.
const stopPollInterval = 64

// Engine is the event queue and clock. The zero value is not usable;
// call NewEngine.
type Engine struct {
	now     units.Time
	seq     uint64
	heap    []*item
	fired   uint64
	halted  bool
	stop    func() bool
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{heap: make([]*item, 0, 1024)}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Fired returns the number of events executed so far; useful as a
// progress measure and a determinism check in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue, including
// cancelled ones not yet popped.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a modelling bug, and silently clamping
// would hide causality violations.
func (e *Engine) At(at units.Time, fn Event) *Timer {
	if fn == nil {
		panic("sim: nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (now=%v at=%v)", e.now, at))
	}
	it := &item{at: at, seq: e.seq, fn: fn}
	e.seq++
	e.push(it)
	return &Timer{it: it}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d units.Time, fn Event) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Immediately schedules fn to run at the current instant, after all
// events already scheduled for this instant.
func (e *Engine) Immediately(fn Event) *Timer { return e.At(e.now, fn) }

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// SetStop installs a stop condition polled by Run at event-loop
// granularity (once on entry, then every stopPollInterval events).
// When cond returns true the loop returns early and Stopped reports
// true. The canonical use is context cancellation:
//
//	eng.SetStop(func() bool { return ctx.Err() != nil })
//
// A nil cond removes the condition.
func (e *Engine) SetStop(cond func() bool) { e.stop = cond }

// Stopped reports whether the most recent Run returned because the
// stop condition fired (as opposed to draining the queue, hitting the
// deadline, or Halt).
func (e *Engine) Stopped() bool { return e.stopped }

// Step pops and executes the single earliest pending event. It reports
// whether an event was executed (false means the queue was empty).
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		it := e.pop()
		if it.dead {
			continue
		}
		if it.at < e.now {
			panic("sim: heap produced an event from the past")
		}
		e.now = it.at
		fn := it.fn
		it.dead = true
		it.fn = nil
		e.fired++
		fn(e.now)
		return true
	}
	return false
}

// Run executes events until the queue is empty, Halt is called, the
// stop condition installed by SetStop fires, or the clock passes
// deadline (units.Forever for no deadline). It returns the time at
// which the loop stopped.
func (e *Engine) Run(deadline units.Time) units.Time {
	e.halted = false
	e.stopped = false
	sincePoll := 0
	for !e.halted {
		if e.stop != nil && sincePoll == 0 && e.stop() {
			e.stopped = true
			return e.now
		}
		if sincePoll++; sincePoll == stopPollInterval {
			sincePoll = 0
		}
		if len(e.heap) == 0 {
			return e.now
		}
		if e.peek().at > deadline {
			e.now = deadline
			return e.now
		}
		e.Step()
	}
	return e.now
}

// RunUntilIdle executes events until the queue is empty.
func (e *Engine) RunUntilIdle() units.Time { return e.Run(units.Forever) }

// --- binary heap ordered by (at, seq) ---

func (e *Engine) less(i, j int) bool {
	a, b := e.heap[i], e.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(it *item) {
	e.heap = append(e.heap, it)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) peek() *item { return e.heap[0] }

func (e *Engine) pop() *item {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap[last] = nil
	e.heap = e.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(e.heap) && e.less(l, smallest) {
			smallest = l
		}
		if r < len(e.heap) && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
	return top
}
