package experiments

// Graceful-degradation study: what a permanent server loss costs under
// each failure-handling posture. A server crashes early and never
// revives; the sweep compares the hard-fail posture (no per-transfer
// deadline — transfers burn their whole retry budget and are
// abandoned) against per-transfer deadlines of increasing patience,
// where the client returns a typed partial result carrying every strip
// that did land. The question the table answers: how many bytes does
// each posture salvage, and what does the salvage cost in run time?

import (
	"context"
	"fmt"
	"strings"

	"sais/cluster"
	"sais/internal/faults"
	"sais/internal/irqsched"
	"sais/internal/runner"
	"sais/internal/units"
)

// GracefulSweep is a deadline × policy study under a permanent server
// loss.
type GracefulSweep struct {
	Title string
	// Deadlines is the per-transfer deadline grid; 0 means no deadline
	// (the hard-fail posture).
	Deadlines []units.Time
	Policies  []irqsched.PolicyKind
	// Config is the base cluster; deadline, policy, and seed are
	// overridden per cell. It must enable retries, and its fault plan
	// should include an unrecovered crash — a healthy cluster makes
	// every posture look identical.
	Config   cluster.Config
	Seed     uint64
	Parallel int
}

// GracefulRow is one (deadline, policy) cell.
type GracefulRow struct {
	Deadline     units.Time
	Policy       string
	Duration     units.Time
	Bandwidth    units.Rate
	Goodput      float64 // delivered bytes / offered bytes
	FailedOps    uint64
	PartialOps   uint64
	PartialBytes units.Bytes
	Retries      uint64
}

// GracefulReport is a completed sweep.
type GracefulReport struct {
	Title string
	Rows  []GracefulRow
}

// GracefulDegradation returns the default study: 8 servers, server 0
// lost for good at 2 ms, exponential backoff with jitter, and a
// deadline grid from hard-fail to 80 ms of patience.
func GracefulDegradation() GracefulSweep {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 8
	cfg.TransferSize = 256 * units.KiB
	cfg.BytesPerProc = 2 * units.MiB
	cfg.RetryTimeout = 10 * units.Millisecond
	cfg.MaxRetries = 8
	cfg.RetryBackoff = 2
	cfg.RetryJitter = 0.1
	cfg.Faults = &faults.Plan{Timeline: []faults.TimelineEvent{
		{At: 2 * units.Millisecond, Kind: faults.KindCrash, Server: 0},
	}}
	return GracefulSweep{
		Title:     "Graceful degradation: permanent server loss, hard-fail vs per-transfer deadlines",
		Deadlines: []units.Time{0, 40 * units.Millisecond, 80 * units.Millisecond},
		Policies:  DegradedPolicies,
		Config:    cfg,
		Seed:      1,
	}
}

// Run executes the sweep.
func (g GracefulSweep) Run() (*GracefulReport, error) {
	return g.RunContext(context.Background())
}

// RunContext executes the sweep under ctx, one run per (deadline,
// policy) cell at fixed indices, so the report is identical regardless
// of worker count.
func (g GracefulSweep) RunContext(ctx context.Context) (*GracefulReport, error) {
	if len(g.Deadlines) == 0 || len(g.Policies) == 0 {
		return nil, fmt.Errorf("experiments: graceful sweep needs deadlines and policies")
	}
	n := len(g.Deadlines) * len(g.Policies)
	//lint:goroutine runner.Map joins all workers and returns rows in point order; per-cell output is seed-deterministic
	rows, err := runner.Map(ctx, n,
		runner.Options{Workers: g.Parallel},
		func(ctx context.Context, i int) (GracefulRow, error) {
			dl := g.Deadlines[i/len(g.Policies)]
			pol := g.Policies[i%len(g.Policies)]
			cfg := g.Config
			cfg.Policy = pol
			cfg.TransferDeadline = dl
			cfg.Faults = g.Config.Faults.Clone()
			cfg.Seed = g.Seed
			if cfg.Seed == 0 {
				cfg.Seed = 1
			}
			res, err := cluster.RunContext(ctx, cfg)
			if err != nil {
				return GracefulRow{}, fmt.Errorf("graceful deadline=%v/%s: %w", dl, pol, err)
			}
			row := GracefulRow{
				Deadline:     dl,
				Policy:       res.Policy,
				Duration:     res.Duration,
				Bandwidth:    res.Bandwidth,
				FailedOps:    res.Faults.FailedOps,
				PartialOps:   res.Faults.PartialOps,
				PartialBytes: res.Faults.PartialBytes,
				Retries:      res.Retries,
			}
			if res.Faults.OfferedBytes > 0 {
				row.Goodput = float64(res.Faults.GoodputBytes) / float64(res.Faults.OfferedBytes)
			}
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	return &GracefulReport{Title: g.Title, Rows: rows}, nil
}

// Table renders the sweep as a fixed-width text table.
func (r *GracefulReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-10s %-12s %12s %10s %9s %7s %8s %14s %8s\n",
		"deadline", "policy", "duration", "MB/s", "goodput", "failed", "partial", "partial bytes", "retries")
	for _, row := range r.Rows {
		dl := "none"
		if row.Deadline > 0 {
			dl = fmt.Sprintf("%v", row.Deadline)
		}
		fmt.Fprintf(&b, "%-10s %-12s %12v %10.1f %8.1f%% %7d %8d %14v %8d\n",
			dl, row.Policy, row.Duration, float64(row.Bandwidth)/1e6,
			row.Goodput*100, row.FailedOps, row.PartialOps, row.PartialBytes, row.Retries)
	}
	return b.String()
}

// CSV renders the sweep as comma-separated rows with a header line.
func (r *GracefulReport) CSV() string {
	var b strings.Builder
	b.WriteString("deadline_ns,policy,duration_ns,bandwidth_mbps,goodput,failed_ops,partial_ops,partial_bytes,retries\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d,%s,%d,%.6f,%.6f,%d,%d,%d,%d\n",
			int64(row.Deadline), row.Policy, int64(row.Duration),
			float64(row.Bandwidth)/1e6, row.Goodput,
			row.FailedOps, row.PartialOps, int64(row.PartialBytes), row.Retries)
	}
	return b.String()
}
