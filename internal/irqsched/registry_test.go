package irqsched

import (
	"strings"
	"testing"

	"sais/internal/apic"
)

func TestRegistryRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		if strings.HasPrefix(name, "PolicyKind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
		got, err := ParsePolicy(name)
		if err != nil || got != k {
			t.Errorf("ParsePolicy(%v.String()) = %v, %v", k, got, err)
		}
		d, ok := Describe(k)
		if !ok || d.Name != name || d.Kind != k {
			t.Errorf("Describe(%v) = %+v, %v", k, d, ok)
		}
	}
	if len(Kinds()) != len(Names()) {
		t.Errorf("Kinds/Names size mismatch: %d vs %d", len(Kinds()), len(Names()))
	}
}

func TestParsePolicyErrorListsEveryName(t *testing.T) {
	_, err := ParsePolicy("bogus")
	if err == nil {
		t.Fatal("bogus policy parsed")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q omits registered policy %q", err, name)
		}
	}
}

func TestRouterNamesMatchRegistry(t *testing.T) {
	for _, k := range Kinds() {
		r, err := New(k, Options{Cores: 4})
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		// rss constructs a StaticTable, whose generic name is the one
		// exception to router.Name() == registry name.
		if k == PolicyHardwareRSS {
			continue
		}
		if r.Name() != k.String() {
			t.Errorf("router name %q != registry name %q", r.Name(), k.String())
		}
	}
}

func TestRSSTable(t *testing.T) {
	table := RSSTable(4, 8, 64)
	if len(table) != 8 {
		t.Fatalf("table size = %d, want 8", len(table))
	}
	for q := 0; q < 8; q++ {
		if got := table[64+apic.Vector(q)]; got != q%4 {
			t.Errorf("queue %d -> core %d, want %d", q, got, q%4)
		}
	}
	// Degenerate inputs still produce a usable table.
	if got := RSSTable(0, 0, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("RSSTable(0,0,0) = %v", got)
	}
}

func TestSocketAwareRotatesEqualCores(t *testing.T) {
	// Nil loads: every intra-socket core ties at queue 0. The fixed
	// scan of the old code pinned all of these on core 0; the rotation
	// must spread them over the whole socket.
	p := NewSocketAware(nil, 4, nil)
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		c := p.Route(1, 1, 0, allowed(8), 0)
		if c/4 != 0 {
			t.Fatalf("left the hinted socket: core %d", c)
		}
		seen[c] = true
	}
	if len(seen) != 4 {
		t.Errorf("equal-queue routing used only cores %v; want all of socket 0", seen)
	}
}

func TestFlowDirectorFollowsLastTransmit(t *testing.T) {
	p := NewFlowDirector(16)
	p.NoteTransmit(7, 3)
	for i := 0; i < 4; i++ {
		if got := p.Route(1, apic.NoHint, 7, allowed(8), 0); got != 3 {
			t.Fatalf("flow 7 routed to %d, want last-tx core 3", got)
		}
	}
	// The reordering race: a transmit from another core retargets the
	// flow immediately, while receives may still be in flight.
	p.NoteTransmit(7, 5)
	if got := p.Route(1, apic.NoHint, 7, allowed(8), 0); got != 5 {
		t.Fatalf("after migration flow 7 routed to %d, want 5", got)
	}
	c := p.Counters()
	if c["fd_inserts"] != 1 || c["fd_updates"] != 1 || c["fd_hits"] != 5 {
		t.Errorf("counters = %v", c)
	}
}

func TestFlowDirectorEvictsOldest(t *testing.T) {
	p := NewFlowDirector(2)
	p.NoteTransmit(1, 1)
	p.NoteTransmit(2, 2)
	p.NoteTransmit(3, 3) // evicts flow 1
	if p.Counters()["fd_evictions"] != 1 {
		t.Fatalf("counters = %v", p.Counters())
	}
	// Flow 1 now misses to the hash fallback; flows 2 and 3 still hit.
	if got := p.Route(1, apic.NoHint, 2, allowed(8), 0); got != 2 {
		t.Errorf("flow 2 -> %d, want 2", got)
	}
	if got := p.Route(1, apic.NoHint, 3, allowed(8), 0); got != 3 {
		t.Errorf("flow 3 -> %d, want 3", got)
	}
	p.Route(1, apic.NoHint, 1, allowed(8), 0)
	if p.Counters()["fd_misses"] != 1 {
		t.Errorf("counters = %v", p.Counters())
	}
}

func TestFlowDirectorDeterministic(t *testing.T) {
	run := func() []int {
		p := NewFlowDirector(8)
		var got []int
		for i := 0; i < 32; i++ {
			flow := uint64(i % 12)
			if i%3 == 0 {
				p.NoteTransmit(flow, i%4)
			}
			got = append(got, p.Route(1, apic.NoHint, flow, allowed(8), 0))
		}
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestATFCStagesAffinityChanges(t *testing.T) {
	p := NewATFC()
	// First sighting binds immediately.
	p.NoteTransmit(9, 2)
	if got := p.Route(1, apic.NoHint, 9, allowed(8), 0); got != 2 {
		t.Fatalf("flow 9 -> %d, want 2", got)
	}
	// A migration is staged: receives keep landing on the old core.
	p.NoteTransmit(9, 6)
	if got := p.Route(1, apic.NoHint, 9, allowed(8), 0); got != 2 {
		t.Fatalf("staged change applied early: %d", got)
	}
	// Quiescence promotes it.
	p.NoteFlowIdle(9)
	if got := p.Route(1, apic.NoHint, 9, allowed(8), 0); got != 6 {
		t.Fatalf("after idle flow 9 -> %d, want 6", got)
	}
	c := p.Counters()
	if c["atfc_immediate"] != 1 || c["atfc_staged"] != 1 || c["atfc_promoted"] != 1 {
		t.Errorf("counters = %v", c)
	}
}

func TestATFCTransmitFromActiveCoreCancelsStage(t *testing.T) {
	p := NewATFC()
	p.NoteTransmit(9, 2)
	p.NoteTransmit(9, 6) // staged
	p.NoteTransmit(9, 2) // back on the active core: cancel
	p.NoteFlowIdle(9)
	if got := p.Route(1, apic.NoHint, 9, allowed(8), 0); got != 2 {
		t.Fatalf("cancelled stage still promoted: %d", got)
	}
	if p.Counters()["atfc_promoted"] != 0 {
		t.Errorf("counters = %v", p.Counters())
	}
}

func TestToeplitzStickyAndSpreads(t *testing.T) {
	p := NewToeplitz(8)
	seen := map[int]bool{}
	for flow := uint64(0); flow < 64; flow++ {
		first := p.Route(1, apic.NoHint, flow, allowed(8), 0)
		if got := p.Route(1, 3, flow, allowed(8), 0); got != first {
			t.Fatalf("flow %d moved (or followed a hint): %d then %d", flow, first, got)
		}
		seen[first] = true
	}
	if len(seen) < 6 {
		t.Errorf("64 flows landed on only %d of 8 cores", len(seen))
	}
}

func TestToeplitzRestrictedAllowedSet(t *testing.T) {
	p := NewToeplitz(8)
	set := []int{2, 5}
	for flow := uint64(0); flow < 16; flow++ {
		got := p.Route(1, apic.NoHint, flow, set, 0)
		if got != 2 && got != 5 {
			t.Fatalf("flow %d routed outside allowed set: %d", flow, got)
		}
	}
}

func TestStragglerAwareInheritsSourceAware(t *testing.T) {
	p := NewStragglerAware()
	if p.Name() != "straggler" {
		t.Fatalf("name = %q", p.Name())
	}
	if got := p.Route(1, 3, 0, allowed(8), 0); got != 3 {
		t.Fatalf("hint 3 routed to %d", got)
	}
	if p.Hinted() != 1 {
		t.Errorf("Hinted() = %d", p.Hinted())
	}
	d, _ := Describe(PolicyStragglerAware)
	if !d.UsesHints || !d.ReorderIssue {
		t.Errorf("descriptor traits = %+v", d)
	}
}

func TestTxSteeredTraitMatchesInterface(t *testing.T) {
	for _, k := range Kinds() {
		d, _ := Describe(k)
		r, err := New(k, Options{Cores: 4})
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		if _, ok := r.(TxObserver); ok != d.TxSteered {
			t.Errorf("%v: TxObserver=%v but TxSteered=%v", k, ok, d.TxSteered)
		}
	}
}
