// Command saisweep runs the Cartesian product of user-specified
// dimensions over the default cluster configuration and emits one CSV
// row per point — the free-form companion to cmd/experiments' fixed
// figures.
//
// Examples:
//
//	saisweep servers=8,16,32,48 policy=irqbalance,sais
//	saisweep transfer=128KiB,1MiB nic=1,3 policy=sais
//	saisweep -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sais/cluster"
	"sais/internal/sweep"
	"sais/internal/units"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list sweepable dimensions and exit")
		bytes = flag.String("bytes", "16MiB", "per-process byte budget for every point")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(sweep.Names(), "\n"))
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "saisweep: no dimensions given (try 'saisweep servers=8,16 policy=irqbalance,sais')")
		os.Exit(1)
	}

	var dims []sweep.Dim
	for _, spec := range flag.Args() {
		d, err := sweep.ParseDim(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "saisweep:", err)
			os.Exit(1)
		}
		dims = append(dims, d)
	}

	base := cluster.DefaultConfig()
	if b, err := units.ParseBytes(*bytes); err == nil {
		base.BytesPerProc = b
	} else {
		fmt.Fprintln(os.Stderr, "saisweep:", err)
		os.Exit(1)
	}

	points, err := sweep.Product(base, dims)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saisweep:", err)
		os.Exit(1)
	}
	fmt.Println(sweep.CSVHeader(dims))
	for _, p := range points {
		row, err := sweep.CSVRow(dims, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "saisweep:", err)
			os.Exit(1)
		}
		fmt.Println(row)
	}
}
