// Package sweep turns command-line dimension specifications like
//
//	servers=8,16,32 policy=irqbalance,sais transfer=128KiB,1MiB
//
// into the Cartesian product of cluster configurations and runs them,
// producing one CSV row per point — the general-purpose companion to
// the fixed per-figure sweeps in the experiments package.
package sweep

import (
	"context"
	"fmt"
	"maps"
	"sort"
	"strconv"
	"strings"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/runner"
	"sais/internal/units"
)

// Dim is one swept dimension: a settable field name and its values.
type Dim struct {
	Name   string
	Values []string
}

// ParseDim parses "name=v1,v2,v3".
func ParseDim(spec string) (Dim, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" || rest == "" {
		return Dim{}, fmt.Errorf("sweep: bad dimension %q (want name=v1,v2,...)", spec)
	}
	if _, known := setters[name]; !known {
		return Dim{}, fmt.Errorf("sweep: unknown dimension %q (have %s)", name, strings.Join(Names(), ", "))
	}
	var values []string
	for _, v := range strings.Split(rest, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			return Dim{}, fmt.Errorf("sweep: empty value in %q", spec)
		}
		values = append(values, v)
	}
	return Dim{Name: name, Values: values}, nil
}

// setter applies one string value to a configuration.
type setter func(cfg *cluster.Config, value string) error

func intSetter(apply func(*cluster.Config, int)) setter {
	return func(cfg *cluster.Config, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("sweep: %q is not an integer", v)
		}
		apply(cfg, n)
		return nil
	}
}

func floatSetter(apply func(*cluster.Config, float64)) setter {
	return func(cfg *cluster.Config, v string) error {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("sweep: %q is not a number", v)
		}
		apply(cfg, f)
		return nil
	}
}

func bytesSetter(apply func(*cluster.Config, units.Bytes)) setter {
	return func(cfg *cluster.Config, v string) error {
		b, err := units.ParseBytes(v)
		if err != nil {
			return err
		}
		apply(cfg, b)
		return nil
	}
}

func boolSetter(apply func(*cluster.Config, bool)) setter {
	return func(cfg *cluster.Config, v string) error {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("sweep: %q is not a bool", v)
		}
		apply(cfg, b)
		return nil
	}
}

// setters maps dimension names to field mutators.
var setters = map[string]setter{
	"policy": func(cfg *cluster.Config, v string) error {
		p, err := irqsched.ParsePolicy(v)
		if err != nil {
			return err
		}
		cfg.Policy = p
		return nil
	},
	"servers":  intSetter(func(c *cluster.Config, n int) { c.Servers = n }),
	"clients":  intSetter(func(c *cluster.Config, n int) { c.Clients = n }),
	"procs":    intSetter(func(c *cluster.Config, n int) { c.ProcsPerClient = n }),
	"cores":    intSetter(func(c *cluster.Config, n int) { c.CoresPerClient = n }),
	"nicports": intSetter(func(c *cluster.Config, n int) { c.ClientNICPorts = n }),
	"rss":      intSetter(func(c *cluster.Config, n int) { c.RSSQueues = n }),
	"coalesce": intSetter(func(c *cluster.Config, n int) { c.CoalesceFrames = n }),
	"aggs":     intSetter(func(c *cluster.Config, n int) { c.Aggregators = n }),
	"seed":     intSetter(func(c *cluster.Config, n int) { c.Seed = uint64(n) }),
	"nic": floatSetter(func(c *cluster.Config, f float64) {
		c.ClientNICRate = units.Rate(f) * units.Gigabit
	}),
	"servernic": floatSetter(func(c *cluster.Config, f float64) {
		c.ServerNICRate = units.Rate(f) * units.Gigabit
	}),
	"migrate":     floatSetter(func(c *cluster.Config, f float64) { c.MigrateDuringBlock = f }),
	"loss":        floatSetter(func(c *cluster.Config, f float64) { c.LossRate = f }),
	"transfer":    bytesSetter(func(c *cluster.Config, b units.Bytes) { c.TransferSize = b }),
	"strip":       bytesSetter(func(c *cluster.Config, b units.Bytes) { c.StripSize = b }),
	"bytes":       bytesSetter(func(c *cluster.Config, b units.Bytes) { c.BytesPerProc = b }),
	"cache":       bytesSetter(func(c *cluster.Config, b units.Bytes) { c.CachePerCore = b }),
	"shared":      boolSetter(func(c *cluster.Config, b bool) { c.SharedFiles = b }),
	"write":       boolSetter(func(c *cluster.Config, b bool) { c.WriteWorkload = b }),
	"random":      boolSetter(func(c *cluster.Config, b bool) { c.RandomAccess = b }),
	"segmented":   boolSetter(func(c *cluster.Config, b bool) { c.Segmented = b }),
	"currentcore": boolSetter(func(c *cluster.Config, b bool) { c.CurrentCoreHint = b }),
	"quantum": func(cfg *cluster.Config, v string) error {
		d, err := units.ParseTime(v)
		if err != nil {
			return err
		}
		cfg.TimesliceQuantum = d
		return nil
	},
	"remoteline": func(cfg *cluster.Config, v string) error {
		d, err := units.ParseTime(v)
		if err != nil {
			return err
		}
		cfg.Costs.RemoteLine = d
		return nil
	},
}

// Names lists the settable dimension names, sorted.
func Names() []string {
	out := make([]string, 0, len(setters))
	//lint:maporder key collection only; sorted on the next line
	for n := range setters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Point is one configuration in the product, with its dimension values.
type Point struct {
	Values map[string]string
	Config cluster.Config
}

// Product expands the Cartesian product of dims over base.
func Product(base cluster.Config, dims []Dim) ([]Point, error) {
	points := []Point{{Values: map[string]string{}, Config: base}}
	for _, d := range dims {
		set, ok := setters[d.Name]
		if !ok {
			return nil, fmt.Errorf("sweep: unknown dimension %q", d.Name)
		}
		var next []Point
		for _, p := range points {
			for _, v := range d.Values {
				cfg := p.Config
				if err := set(&cfg, v); err != nil {
					return nil, fmt.Errorf("sweep: %s=%s: %w", d.Name, v, err)
				}
				vals := make(map[string]string, len(p.Values)+1)
				maps.Copy(vals, p.Values)
				vals[d.Name] = v
				next = append(next, Point{Values: vals, Config: cfg})
			}
		}
		points = next
	}
	return points, nil
}

// CSVHeader returns the header row for the given dimensions.
func CSVHeader(dims []Dim) string {
	names := make([]string, len(dims))
	for i, d := range dims {
		names[i] = d.Name
	}
	return strings.Join(append(names,
		"bandwidth_MBps", "miss_rate", "cpu_util", "unhalted_cycles",
		"migrated_lines", "nic_busy", "disk_busy"), ",")
}

// Rows runs every point — up to parallel at once on the shared
// internal/runner engine — and returns one CSV row per point, in point
// order regardless of completion order. The first point error or a
// cancelled ctx stops in-flight runs promptly and skips queued points;
// the returned slice then still holds every row completed so far
// (unfinished slots are empty strings), so interrupted sweeps can
// print partial results.
func Rows(ctx context.Context, dims []Dim, points []Point, parallel int) ([]string, error) {
	//lint:goroutine runner.Map joins all workers and returns rows in point order; per-cell output is seed-deterministic
	return runner.Map(ctx, len(points), runner.Options{Workers: parallel},
		func(ctx context.Context, i int) (string, error) {
			return csvRow(ctx, dims, points[i])
		})
}

// CSVRow runs one point and formats its result row.
func CSVRow(dims []Dim, p Point) (string, error) {
	return csvRow(context.Background(), dims, p)
}

func csvRow(ctx context.Context, dims []Dim, p Point) (string, error) {
	res, err := cluster.RunContext(ctx, p.Config)
	if err != nil {
		return "", err
	}
	fields := make([]string, 0, len(dims)+7)
	for _, d := range dims {
		fields = append(fields, p.Values[d.Name])
	}
	fields = append(fields,
		fmt.Sprintf("%.2f", float64(res.Bandwidth)/1e6),
		fmt.Sprintf("%.5f", res.CacheMissRate),
		fmt.Sprintf("%.5f", res.CPUUtilization),
		strconv.FormatInt(int64(res.UnhaltedCycles), 10),
		strconv.FormatUint(res.RemoteLines, 10),
		fmt.Sprintf("%.4f", res.ClientNICBusy),
		fmt.Sprintf("%.4f", res.DiskBusy),
	)
	return strings.Join(fields, ","), nil
}
