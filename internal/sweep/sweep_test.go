package sweep

import (
	"context"
	"errors"
	"strings"
	"testing"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/units"
)

func TestParseDim(t *testing.T) {
	d, err := ParseDim("servers=8,16,32")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "servers" || len(d.Values) != 3 || d.Values[2] != "32" {
		t.Errorf("dim = %+v", d)
	}
	bad := []string{"", "servers", "=8", "servers=", "servers=8,,16", "bogus=1"}
	for _, s := range bad {
		if _, err := ParseDim(s); err == nil {
			t.Errorf("ParseDim(%q) accepted", s)
		}
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(setters) {
		t.Errorf("Names() = %d entries, setters = %d", len(names), len(setters))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted at %d: %v", i, names)
		}
	}
}

func TestProductExpands(t *testing.T) {
	base := cluster.DefaultConfig()
	dims := []Dim{
		{Name: "servers", Values: []string{"8", "16"}},
		{Name: "policy", Values: []string{"irqbalance", "sais"}},
	}
	points, err := Product(base, dims)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	seen := map[string]bool{}
	for _, p := range points {
		key := p.Values["servers"] + "/" + p.Values["policy"]
		seen[key] = true
		if p.Values["servers"] == "16" && p.Config.Servers != 16 {
			t.Errorf("servers not applied: %+v", p.Values)
		}
		if p.Values["policy"] == "sais" && p.Config.Policy != irqsched.PolicySourceAware {
			t.Errorf("policy not applied: %+v", p.Values)
		}
	}
	if len(seen) != 4 {
		t.Errorf("combinations = %v", seen)
	}
	// Base must be untouched.
	if base.Servers != cluster.DefaultConfig().Servers {
		t.Error("Product mutated the base config")
	}
}

func TestSettersApplyTypedValues(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cases := []struct {
		dim, val string
		check    func() bool
	}{
		{"transfer", "512KiB", func() bool { return cfg.TransferSize == 512*units.KiB }},
		{"nic", "1", func() bool { return cfg.ClientNICRate == units.Gigabit }},
		{"migrate", "0.25", func() bool { return cfg.MigrateDuringBlock == 0.25 }},
		{"shared", "true", func() bool { return cfg.SharedFiles }},
		{"write", "true", func() bool { return cfg.WriteWorkload }},
		{"quantum", "2ms", func() bool { return cfg.TimesliceQuantum == 2*units.Millisecond }},
		{"remoteline", "300ns", func() bool { return cfg.Costs.RemoteLine == 300 }},
		{"seed", "9", func() bool { return cfg.Seed == 9 }},
	}
	for _, c := range cases {
		if err := setters[c.dim](&cfg, c.val); err != nil {
			t.Fatalf("%s=%s: %v", c.dim, c.val, err)
		}
		if !c.check() {
			t.Errorf("%s=%s not applied", c.dim, c.val)
		}
	}
	// Type errors surface.
	if err := setters["servers"](&cfg, "eight"); err == nil {
		t.Error("non-integer accepted")
	}
	if err := setters["policy"](&cfg, "bogus"); err == nil {
		t.Error("bad policy accepted")
	}
	if err := setters["shared"](&cfg, "maybe"); err == nil {
		t.Error("bad bool accepted")
	}
}

func TestCSVEndToEnd(t *testing.T) {
	base := cluster.DefaultConfig()
	base.Servers = 8
	base.BytesPerProc = 4 * units.MiB
	dims := []Dim{{Name: "policy", Values: []string{"irqbalance", "sais"}}}
	points, err := Product(base, dims)
	if err != nil {
		t.Fatal(err)
	}
	header := CSVHeader(dims)
	if !strings.HasPrefix(header, "policy,bandwidth_MBps") {
		t.Errorf("header = %q", header)
	}
	wantCols := strings.Count(header, ",") + 1
	for _, p := range points {
		row, err := CSVRow(dims, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Count(row, ",") + 1; got != wantCols {
			t.Errorf("row has %d columns, header %d: %q", got, wantCols, row)
		}
		if !strings.HasPrefix(row, p.Values["policy"]+",") {
			t.Errorf("row = %q", row)
		}
	}
}

func TestProductNoDims(t *testing.T) {
	points, err := Product(cluster.DefaultConfig(), nil)
	if err != nil || len(points) != 1 {
		t.Errorf("empty product = %d points, %v", len(points), err)
	}
}

// smallPoints builds a fast 2×2 product for orchestration tests.
func smallPoints(t *testing.T) ([]Dim, []Point) {
	t.Helper()
	base := cluster.DefaultConfig()
	base.BytesPerProc = 4 * units.MiB
	dims := []Dim{
		{Name: "servers", Values: []string{"4", "8"}},
		{Name: "policy", Values: []string{"irqbalance", "sais"}},
	}
	points, err := Product(base, dims)
	if err != nil {
		t.Fatal(err)
	}
	return dims, points
}

func TestRowsParallelMatchesSerial(t *testing.T) {
	dims, points := smallPoints(t)
	serial, err := Rows(context.Background(), dims, points, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(points) {
		t.Fatalf("rows = %d, want %d", len(serial), len(points))
	}
	for i, row := range serial {
		want, err := CSVRow(dims, points[i])
		if err != nil {
			t.Fatal(err)
		}
		if row != want {
			t.Errorf("row %d = %q, want the serial CSVRow %q", i, row, want)
		}
	}
	parallel, err := Rows(context.Background(), dims, points, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if parallel[i] != serial[i] {
			t.Errorf("parallel row %d differs:\n%q\nvs\n%q", i, parallel[i], serial[i])
		}
	}
}

func TestRowsCancelled(t *testing.T) {
	dims, points := smallPoints(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := Rows(ctx, dims, points, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range rows {
		if r != "" {
			t.Errorf("row %d = %q after pre-cancelled context", i, r)
		}
	}
}
