// Package apic models the x86 interrupt-delivery hardware the paper
// programs: one I/O APIC (shared by the node's devices) routing
// interrupt messages to per-core Local APICs. The I/O APIC consults a
// redirection table to learn which cores may handle a vector and asks
// an installed Router (the scheduling policy — irqbalance, round-robin,
// dedicated, or SAIs' source-aware IMComposer) to choose among them.
package apic

import (
	"fmt"

	"sais/internal/sim"
	"sais/internal/units"
)

// Vector is an interrupt vector number.
type Vector uint8

// NoHint is the hint value meaning "no affinity information" — a packet
// without an aff_core_id option.
const NoHint = -1

// Message is a composed interrupt message headed for a Local APIC.
type Message struct {
	Vector Vector
	Dest   int // destination core
}

// Router chooses the destination core for an interrupt. hint carries
// the parsed aff_core_id (or NoHint); flow identifies the traffic
// source (the sending node — what RSS-style policies hash); allowed is
// the redirection-table candidate set, never empty. Implementations
// must return one of the allowed cores.
type Router interface {
	Route(vec Vector, hint int, flow uint64, allowed []int, now units.Time) int
	Name() string
}

// Handler receives delivered interrupts on a core.
type Handler func(vec Vector, now units.Time)

// LocalAPIC is one core's interrupt acceptance unit.
type LocalAPIC struct {
	core     int
	eng      *sim.Engine
	latency  units.Time
	handler  Handler
	masked   bool
	pending  []Vector
	accepted uint64
}

// NewLocalAPIC builds the local APIC for a core; latency is the
// message-delivery delay before the handler runs.
func NewLocalAPIC(eng *sim.Engine, core int, latency units.Time) *LocalAPIC {
	if latency < 0 {
		panic("apic: negative delivery latency")
	}
	return &LocalAPIC{core: core, eng: eng, latency: latency}
}

// Core returns the core this local APIC belongs to.
func (l *LocalAPIC) Core() int { return l.core }

// Accepted returns the number of interrupts delivered to the handler.
func (l *LocalAPIC) Accepted() uint64 { return l.accepted }

// SetHandler installs the interrupt handler (the kernel's do_IRQ).
func (l *LocalAPIC) SetHandler(h Handler) { l.handler = h }

// Mask stops delivery; incoming vectors queue as pending.
func (l *LocalAPIC) Mask() { l.masked = true }

// Unmask resumes delivery, flushing pending vectors in arrival order.
func (l *LocalAPIC) Unmask() {
	if !l.masked {
		return
	}
	l.masked = false
	pend := l.pending
	l.pending = nil
	for _, v := range pend {
		l.Accept(v)
	}
}

// Masked reports the mask state.
func (l *LocalAPIC) Masked() bool { return l.masked }

// PendingCount returns the number of vectors queued behind a mask.
func (l *LocalAPIC) PendingCount() int { return len(l.pending) }

// Accept takes an interrupt message destined for this core.
func (l *LocalAPIC) Accept(vec Vector) {
	if l.masked {
		l.pending = append(l.pending, vec)
		return
	}
	l.eng.After(l.latency, func(now units.Time) {
		l.accepted++
		if l.handler != nil {
			l.handler(vec, now)
		}
	})
}

// RedirEntry is one redirection-table row: the cores allowed to handle
// a vector.
type RedirEntry struct {
	Allowed []int
}

// IOAPICStats counts routing activity.
type IOAPICStats struct {
	Raised    uint64
	Misroutes uint64 // router returned a core outside the allowed set
}

// IOAPIC routes raised vectors to local APICs.
type IOAPIC struct {
	eng    *sim.Engine
	locals []*LocalAPIC
	redir  map[Vector]RedirEntry
	router Router
	stats  IOAPICStats
	routed []uint64 // interrupts steered to each core
}

// NewIOAPIC builds an I/O APIC over the given local APICs.
func NewIOAPIC(eng *sim.Engine, locals []*LocalAPIC) *IOAPIC {
	if len(locals) == 0 {
		panic("apic: IOAPIC needs at least one local APIC")
	}
	return &IOAPIC{
		eng: eng, locals: locals,
		redir:  make(map[Vector]RedirEntry),
		routed: make([]uint64, len(locals)),
	}
}

// SetRouter installs the scheduling policy.
func (io *IOAPIC) SetRouter(r Router) { io.router = r }

// Router returns the installed policy.
func (io *IOAPIC) Router() Router { return io.router }

// Stats returns a copy of the counters.
func (io *IOAPIC) Stats() IOAPICStats { return io.stats }

// RoutedPerCore returns how many interrupts were steered to each core —
// the observable distribution of the installed policy's decisions.
func (io *IOAPIC) RoutedPerCore() []uint64 {
	return append([]uint64(nil), io.routed...)
}

// Program writes a redirection-table entry for vec. An empty allowed
// set means "any core".
func (io *IOAPIC) Program(vec Vector, allowed []int) {
	for _, c := range allowed {
		if c < 0 || c >= len(io.locals) {
			panic(fmt.Sprintf("apic: core %d out of range in redirection entry", c))
		}
	}
	io.redir[vec] = RedirEntry{Allowed: append([]int(nil), allowed...)}
}

// allowedFor resolves the candidate set for a vector.
func (io *IOAPIC) allowedFor(vec Vector) []int {
	if e, ok := io.redir[vec]; ok && len(e.Allowed) > 0 {
		return e.Allowed
	}
	all := make([]int, len(io.locals))
	for i := range all {
		all[i] = i
	}
	return all
}

// RouteFor runs the steering decision for an interrupt without raising
// it: the installed policy picks a core from the vector's redirection
// entry, misroutes fall back to the first allowed core, and the
// per-core routing counter advances. The hybrid workload engine uses it
// to charge aggregated background interrupt load to the core the policy
// would have chosen, without a per-frame Accept.
func (io *IOAPIC) RouteFor(vec Vector, hint int, flow uint64) int {
	if io.router == nil {
		panic("apic: route with no router installed")
	}
	allowed := io.allowedFor(vec)
	dest := io.router.Route(vec, hint, flow, allowed, io.eng.Now())
	ok := false
	for _, c := range allowed {
		if c == dest {
			ok = true
			break
		}
	}
	if !ok {
		io.stats.Misroutes++
		dest = allowed[0]
	}
	io.routed[dest]++
	return dest
}

// Raise routes an interrupt with the given affinity hint (NoHint if the
// packet carried none) and flow identity, and delivers it to the chosen
// core's local APIC. It returns the destination core.
func (io *IOAPIC) Raise(vec Vector, hint int, flow uint64) int {
	dest := io.RouteFor(vec, hint, flow)
	io.stats.Raised++
	io.locals[dest].Accept(vec)
	return dest
}
