package pfs

import (
	"sais/internal/netsim"
	"sais/internal/sim"
	"sais/internal/units"
)

// MetadataConfig sizes the metadata server.
type MetadataConfig struct {
	NIC        netsim.NICConfig
	RequestCPU units.Time // per layout query
}

// DefaultMetadataConfig models the head-node metadata service.
func DefaultMetadataConfig(rate units.Rate) MetadataConfig {
	return MetadataConfig{
		NIC:        netsim.DefaultNICConfig(rate),
		RequestCPU: 200 * units.Microsecond,
	}
}

// MetadataServer answers layout queries at file open — the MDS hop that
// contributes to TR, the paper's network-and-server time.
type MetadataServer struct {
	eng     *sim.Engine
	node    netsim.NodeID
	nic     *netsim.NIC
	cpu     *sim.Server
	layout  func(FileID) Layout
	serve   func(*LayoutRequest)
	queries uint64
}

// NewMetadataServer builds the MDS on node id; layout resolves a file's
// striping (the simulator's stand-in for the PVFS metadata store).
func NewMetadataServer(eng *sim.Engine, fab *netsim.Fabric, id netsim.NodeID, cfg MetadataConfig, layout func(FileID) Layout) *MetadataServer {
	m := &MetadataServer{
		eng:    eng,
		node:   id,
		nic:    netsim.NewNIC(eng, id, cfg.NIC),
		cpu:    sim.NewServer(eng, "mds-cpu"),
		layout: layout,
	}
	fab.Attach(m.nic)
	m.nic.SetInterruptHandler(m.onInterrupt)
	reqCPU := cfg.RequestCPU
	m.serve = func(q *LayoutRequest) {
		m.cpu.Submit(reqCPU, func(units.Time) {
			m.queries++
			m.nic.Send(q.Client, LayoutReplySize, netsim.AffHint{}, &LayoutReply{
				Tag:    q.Tag,
				File:   q.File,
				Layout: m.layout(q.File),
			})
		})
	}
	return m
}

// Node returns the MDS fabric id.
func (m *MetadataServer) Node() netsim.NodeID { return m.node }

// Queries returns the number of layout queries served.
func (m *MetadataServer) Queries() uint64 { return m.queries }

func (m *MetadataServer) onInterrupt(units.Time) {
	for _, f := range m.nic.Drain() {
		if q, ok := f.Body.(*LayoutRequest); ok {
			m.serve(q)
		}
		m.nic.Free(f)
	}
}
