// Package irqsched implements the interrupt-scheduling policies the
// paper compares (Figure 1 and §III) — round-robin, dedicated-core,
// irqbalance-style load balancing, and SAIs' source-aware scheduling —
// plus the steering baselines from the related literature: Toeplitz
// RSS, Intel Flow Director (with its packet-reordering pathology),
// A-TFC transport-friendly steering, and client-side straggler-aware
// issue scheduling. Each policy is an apic.Router registered in a
// descriptor registry (see registry.go); the I/O APIC consults the
// router per raised interrupt, and every consumer — cluster, scenario,
// sweep, saisim -policy — resolves policies through the one registry.
//
// The package also houses the SAIs protocol components that live
// outside the APIC: HintMessager (client request side), HintCapsuler
// (server reply side), and the SrcParser step is netsim.ParseHint.
package irqsched

import (
	"fmt"
	"maps"

	"sais/internal/apic"
	"sais/internal/units"
)

// PolicyKind enumerates the implemented policies.
type PolicyKind int

// Policies. The first four are the paper's comparison set; FlowHash is
// an RSS/RFS-style static flow-affinity baseline, Hybrid is the
// paper's future-work integration of source-aware placement with
// load-aware fallback, and the kinds past PolicyHardwareRSS are the
// literature baselines (Wu et al. on Flow Director and A-TFC,
// Microsoft's Toeplitz RSS, Tavakoli et al.'s straggler-aware client).
const (
	PolicyRoundRobin PolicyKind = iota
	PolicyDedicated
	PolicyIrqbalance
	PolicySourceAware
	PolicyFlowHash
	PolicyHybrid
	PolicySocketAware
	// PolicyHardwareRSS steers with MSI-X queues whose vectors are
	// statically pinned via the redirection table; New builds the
	// matching StaticTable router (the client additionally programs the
	// I/O APIC vectors and enables per-queue NIC interrupts).
	PolicyHardwareRSS
	// PolicyFlowDirector models Intel Flow Director's per-flow
	// last-transmitting-core table, whose immediate table updates
	// reproduce the Wu et al. packet-reordering pathology.
	PolicyFlowDirector
	// PolicyToeplitz is receive-side scaling with the real Microsoft
	// Toeplitz hash and a 128-entry indirection table.
	PolicyToeplitz
	// PolicyATFC is the A-TFC transport-friendly NIC: affinity updates
	// are staged and applied only at flow-idle boundaries, so an
	// in-flight stream never splits across cores.
	PolicyATFC
	// PolicyStragglerAware is SAIs steering plus Tavakoli et al.'s
	// client-side issue scheduling: the client reorders per-server strip
	// requests so the slowest server receives its request first.
	PolicyStragglerAware
)

// String returns the policy's registered name.
func (k PolicyKind) String() string {
	if d, ok := registry[k]; ok {
		return d.Name
	}
	return fmt.Sprintf("PolicyKind(%d)", int(k))
}

// ParsePolicy resolves a policy name (as used by command-line tools)
// against the registry. The error's want-list is derived from the
// registered names, sorted, so new policies can never drift out of it.
func ParsePolicy(name string) (PolicyKind, error) {
	//lint:maporder order-independent lookup: names are unique, at most one key matches
	for k, d := range registry {
		if d.Name == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("irqsched: unknown policy %q (want %s)", name, nameList())
}

// LoadReader exposes the per-core load information irqbalance samples.
// cpu.CPU is adapted to this interface by the client node.
type LoadReader interface {
	NumCores() int
	// CoreBusy returns cumulative busy time of core i since boot.
	CoreBusy(i int) units.Time
	// CoreQueue returns the current number of queued work items on i.
	CoreQueue(i int) int
}

// RoundRobin delivers interrupts to cores in turn — the Linux default
// on the paper's Intel configuration (Figure 1a).
type RoundRobin struct {
	next int
}

// NewRoundRobin returns the policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements apic.Router.
func (r *RoundRobin) Name() string { return "roundrobin" }

// Route implements apic.Router.
func (r *RoundRobin) Route(_ apic.Vector, _ int, _ uint64, allowed []int, _ units.Time) int {
	c := allowed[r.next%len(allowed)]
	r.next++
	return c
}

// Dedicated delivers every interrupt to one fixed core — the Linux
// lowest-priority default on the paper's AMD configuration (Figure 1b).
type Dedicated struct {
	core int
}

// NewDedicated returns the policy pinned to core.
func NewDedicated(core int) *Dedicated { return &Dedicated{core: core} }

// Name implements apic.Router.
func (d *Dedicated) Name() string { return "dedicated" }

// Route implements apic.Router.
func (d *Dedicated) Route(_ apic.Vector, _ int, _ uint64, allowed []int, _ units.Time) int {
	for _, c := range allowed {
		if c == d.core {
			return c
		}
	}
	return allowed[0]
}

// Irqbalance spreads interrupts over cores by load, re-sampling core
// utilization every Period like the irqbalance daemon. Between samples
// it ranks cores by (sampled busy delta, current queue length) and
// routes each interrupt to the least-loaded allowed core, breaking ties
// round-robin — the "balanced" baseline of the paper's analysis.
type Irqbalance struct {
	loads    LoadReader
	period   units.Time
	lastAt   units.Time
	lastBusy []units.Time
	delta    []units.Time
	rr       int
}

// NewIrqbalance builds the policy over the given load source. period is
// the sampling interval (the daemon's default is 10 s; interrupt-heavy
// deployments run at 10 ms, which is what the experiments use).
func NewIrqbalance(loads LoadReader, period units.Time) *Irqbalance {
	if period <= 0 {
		panic("irqsched: irqbalance period must be positive")
	}
	n := loads.NumCores()
	return &Irqbalance{
		loads:    loads,
		period:   period,
		lastBusy: make([]units.Time, n),
		delta:    make([]units.Time, n),
	}
}

// Name implements apic.Router.
func (b *Irqbalance) Name() string { return "irqbalance" }

func (b *Irqbalance) resample(now units.Time) {
	for i := range b.delta {
		busy := b.loads.CoreBusy(i)
		b.delta[i] = busy - b.lastBusy[i]
		b.lastBusy[i] = busy
	}
	b.lastAt = now
}

// Route implements apic.Router.
func (b *Irqbalance) Route(_ apic.Vector, _ int, _ uint64, allowed []int, now units.Time) int {
	if now-b.lastAt >= b.period {
		b.resample(now)
	}
	best, bestScore := -1, int64(0)
	for k := 0; k < len(allowed); k++ {
		// Rotate the scan start so equal loads spread round-robin.
		c := allowed[(k+b.rr)%len(allowed)]
		score := int64(b.delta[c]) + int64(b.loads.CoreQueue(c))*int64(units.Microsecond)
		if best == -1 || score < bestScore {
			best, bestScore = c, score
		}
	}
	b.rr++
	return best
}

// SourceAware is the SAIs policy: deliver to the aff_core_id carried in
// the packet; interrupts without a hint fall back to a secondary policy
// (non-PFS traffic still needs a home).
type SourceAware struct {
	fallback apic.Router
	hinted   uint64
	unhinted uint64
}

// NewSourceAware builds the policy with the given fallback for
// hint-less interrupts; a nil fallback defaults to round-robin.
func NewSourceAware(fallback apic.Router) *SourceAware {
	if fallback == nil {
		fallback = NewRoundRobin()
	}
	return &SourceAware{fallback: fallback}
}

// Name implements apic.Router.
func (s *SourceAware) Name() string { return "sais" }

// Hinted returns how many interrupts carried a usable hint.
func (s *SourceAware) Hinted() uint64 { return s.hinted }

// Unhinted returns how many interrupts fell back.
func (s *SourceAware) Unhinted() uint64 { return s.unhinted }

// Route implements apic.Router.
func (s *SourceAware) Route(vec apic.Vector, hint int, flow uint64, allowed []int, now units.Time) int {
	if hint != apic.NoHint {
		for _, c := range allowed {
			if c == hint {
				s.hinted++
				return c
			}
		}
	}
	s.unhinted++
	return s.fallback.Route(vec, hint, flow, allowed, now)
}

// FlowHash is an RSS/receive-flow-steering style baseline: each flow
// (source node) hashes to a fixed core, so one server's strips always
// land on the same core. It preserves per-flow cache locality for the
// protocol state but not for the paper's scenario — the strips of one
// request come from many flows, so the request's data is still spread
// over the cores and must migrate to the consumer.
type FlowHash struct{}

// NewFlowHash returns the policy.
func NewFlowHash() *FlowHash { return &FlowHash{} }

// Name implements apic.Router.
func (f *FlowHash) Name() string { return "flowhash" }

// Route implements apic.Router.
func (f *FlowHash) Route(_ apic.Vector, _ int, flow uint64, allowed []int, _ units.Time) int {
	x := flow
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return allowed[x%uint64(len(allowed))]
}

// Hybrid is the future-work integration sketched in the paper's §VIII:
// follow the source-aware hint while the target core is responsive, but
// fall back to the least-loaded core when the hinted core's queue
// exceeds a threshold — trading a migration for not stalling behind a
// saturated core.
type Hybrid struct {
	loads     LoadReader
	balance   *Irqbalance
	threshold int
	followed  uint64
	diverted  uint64
}

// NewHybrid builds the policy. threshold is the hinted core's queue
// depth beyond which the interrupt is diverted (≥ 1).
func NewHybrid(loads LoadReader, period units.Time, threshold int) *Hybrid {
	if threshold < 1 {
		panic("irqsched: hybrid threshold must be >= 1")
	}
	return &Hybrid{
		loads:     loads,
		balance:   NewIrqbalance(loads, period),
		threshold: threshold,
	}
}

// Name implements apic.Router.
func (h *Hybrid) Name() string { return "hybrid" }

// Followed returns interrupts delivered to their hinted core.
func (h *Hybrid) Followed() uint64 { return h.followed }

// Diverted returns interrupts diverted by the load threshold.
func (h *Hybrid) Diverted() uint64 { return h.diverted }

// Route implements apic.Router.
func (h *Hybrid) Route(vec apic.Vector, hint int, flow uint64, allowed []int, now units.Time) int {
	if hint != apic.NoHint {
		for _, c := range allowed {
			if c == hint {
				if h.loads.CoreQueue(c) < h.threshold {
					h.followed++
					return c
				}
				break
			}
		}
	}
	h.diverted++
	return h.balance.Route(vec, hint, flow, allowed, now)
}

// SocketAware is the hint-precision ablation: instead of the exact
// aff_core_id, the scheduler honours only the hinted core's *socket*
// (as a 2-3 bit hint could encode), delivering to the least-queued
// core there. Strips stay on the consumer's socket — migrations remain
// but become the cheap intra-socket kind.
type SocketAware struct {
	loads      LoadReader
	socketSize int
	fallback   apic.Router
	rr         int
}

// NewSocketAware builds the policy. socketSize is cores per socket.
func NewSocketAware(loads LoadReader, socketSize int, fallback apic.Router) *SocketAware {
	if socketSize < 1 {
		panic("irqsched: socket size must be >= 1")
	}
	if fallback == nil {
		fallback = NewRoundRobin()
	}
	return &SocketAware{loads: loads, socketSize: socketSize, fallback: fallback}
}

// Name implements apic.Router.
func (s *SocketAware) Name() string { return "sais-socket" }

// Route implements apic.Router.
func (s *SocketAware) Route(vec apic.Vector, hint int, flow uint64, allowed []int, now units.Time) int {
	if hint != apic.NoHint {
		socket := hint / s.socketSize
		best, bestQ := -1, 0
		// Rotate the scan start like Irqbalance.rr: with equal queue
		// depths (always, when loads is nil) a fixed scan order would
		// pin every intra-socket interrupt to the lowest core id.
		n := len(allowed)
		for k := 0; k < n; k++ {
			c := allowed[(k+s.rr)%n]
			if c/s.socketSize != socket {
				continue
			}
			q := 0
			if s.loads != nil {
				q = s.loads.CoreQueue(c)
			}
			if best == -1 || q < bestQ {
				best, bestQ = c, q
			}
		}
		if best >= 0 {
			s.rr++
			return best
		}
	}
	return s.fallback.Route(vec, hint, flow, allowed, now)
}

// StaticTable routes each vector to a fixed core — the model of MSI-X
// vectors programmed once via the redirection table (hardware RSS:
// queue q's vector pins to core q). Unknown vectors fall back.
type StaticTable struct {
	table    map[apic.Vector]int
	fallback apic.Router
}

// NewStaticTable builds the router; fallback (nil = round-robin)
// handles unmapped vectors.
func NewStaticTable(table map[apic.Vector]int, fallback apic.Router) *StaticTable {
	if fallback == nil {
		fallback = NewRoundRobin()
	}
	return &StaticTable{table: maps.Clone(table), fallback: fallback}
}

// Name implements apic.Router.
func (s *StaticTable) Name() string { return "static-table" }

// Route implements apic.Router.
func (s *StaticTable) Route(vec apic.Vector, hint int, flow uint64, allowed []int, now units.Time) int {
	if core, ok := s.table[vec]; ok {
		for _, c := range allowed {
			if c == core {
				return c
			}
		}
	}
	return s.fallback.Route(vec, hint, flow, allowed, now)
}

// Options collects the policy constructor inputs; zero values are valid
// for policies that do not use them — every registry constructor
// substitutes a safe default, so New is total over parseable kinds.
type Options struct {
	Loads         LoadReader
	Period        units.Time // irqbalance/hybrid sampling period (default 10 ms)
	DedicatedCore int
	SocketSize    int         // sais-socket granularity (default 4)
	HybridQueue   int         // hybrid divert threshold (default 16)
	Cores         int         // core count for table-building policies (rss/toeplitz)
	RSSQueues     int         // MSI-X queue count for rss (default Cores)
	RSSBaseVector apic.Vector // first per-queue vector for rss
	FlowTable     int         // flowdirector table capacity (default 1024)
}

// New constructs a policy by kind through the registry. Every kind a
// successful ParsePolicy can return constructs a usable router; an
// unregistered kind yields *UnknownPolicyError, never a panic.
func New(kind PolicyKind, opts Options) (apic.Router, error) {
	d, ok := registry[kind]
	if !ok {
		return nil, &UnknownPolicyError{Kind: kind}
	}
	return d.New(opts)
}
