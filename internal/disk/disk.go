// Package disk models the rotational drives behind each PVFS I/O
// server: positioning time (seek + rotational latency), media transfer
// rate, a bounded elevator scheduler that shortens seeks under queue
// depth, and a readahead buffer that makes stream-sequential strip
// reads cheap. These mechanics are what shape the paper's Figure 12:
// per-server throughput improves as concurrent clients deepen the
// queue, until interleaving turns every access into a seek.
package disk

import (
	"fmt"
	"math"

	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/units"
)

// Config describes one drive. The defaults model the compute nodes'
// 250 GB 7200-RPM SATA disk.
type Config struct {
	MediaRate      units.Rate  // sustained transfer rate off the platter
	TrackToTrack   units.Time  // minimum seek
	FullSeek       units.Time  // end-to-end seek
	RotationPeriod units.Time  // one revolution (8.33 ms at 7200 RPM)
	Span           units.Bytes // addressable capacity, for seek scaling
	ReadAhead      units.Bytes // buffer-cache readahead window
	ElevatorWindow int         // queued requests the scheduler may reorder
}

// DefaultConfig returns the 7.2K-RPM SATA model.
func DefaultConfig() Config {
	return Config{
		MediaRate:      units.Rate(60 * units.MBps),
		TrackToTrack:   500 * units.Microsecond,
		FullSeek:       8 * units.Millisecond,
		RotationPeriod: 8333 * units.Microsecond,
		Span:           250 * units.GiB,
		ReadAhead:      512 * units.KiB,
		ElevatorWindow: 8,
	}
}

func (c Config) validate() error {
	switch {
	case c.MediaRate <= 0:
		return fmt.Errorf("disk: media rate %v must be positive", c.MediaRate)
	case c.TrackToTrack < 0 || c.FullSeek < c.TrackToTrack:
		return fmt.Errorf("disk: seek range [%v, %v] invalid", c.TrackToTrack, c.FullSeek)
	case c.RotationPeriod < 0:
		return fmt.Errorf("disk: negative rotation period")
	case c.Span <= 0:
		return fmt.Errorf("disk: span must be positive")
	case c.ReadAhead < 0:
		return fmt.Errorf("disk: negative readahead")
	case c.ElevatorWindow < 1:
		return fmt.Errorf("disk: elevator window must be >= 1")
	}
	return nil
}

// Request is one I/O against the drive.
type request struct {
	lba   units.Bytes
	size  units.Bytes
	write bool
	done  sim.Event
}

// Stats counts drive activity.
type Stats struct {
	Requests   uint64
	Writes     uint64
	Sequential uint64 // served from the readahead window, no positioning
	Seeks      uint64
	BusyTime   units.Time
	SeekTime   units.Time
	Bytes      units.Bytes
	BytesOut   units.Bytes // written
}

// Disk is one drive instance.
type Disk struct {
	cfg     Config
	eng     *sim.Engine
	rotSeed uint64
	queue   []request
	busy    bool
	// head is the LBA after the last media access; raEnd is the end of
	// the readahead window filled by it.
	head  units.Bytes
	raEnd units.Bytes
	stats Stats
}

// New builds an idle disk. rnd seeds the per-request rotational-latency
// sequence. It panics on invalid configuration.
func New(eng *sim.Engine, cfg Config, rnd *rng.Source) *Disk {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Disk{cfg: cfg, eng: eng, rotSeed: rnd.Uint64()}
}

// Stats returns a copy of the counters.
func (d *Disk) Stats() Stats { return d.stats }

// QueueLen returns the number of requests waiting (excluding the one in
// service).
func (d *Disk) QueueLen() int { return len(d.queue) }

// Read enqueues a read of size bytes at lba; done fires at completion.
func (d *Disk) Read(lba, size units.Bytes, done sim.Event) {
	d.enqueue(lba, size, false, done)
}

// Write enqueues a write of size bytes at lba; done fires when the
// bytes are on the platter. Positioning mechanics match reads.
func (d *Disk) Write(lba, size units.Bytes, done sim.Event) {
	d.enqueue(lba, size, true, done)
}

func (d *Disk) enqueue(lba, size units.Bytes, write bool, done sim.Event) {
	if size <= 0 {
		panic(fmt.Sprintf("disk: request size %d", size))
	}
	if lba < 0 || lba+size > d.cfg.Span {
		panic(fmt.Sprintf("disk: request [%d,%d) outside span %d", lba, lba+size, d.cfg.Span))
	}
	d.queue = append(d.queue, request{lba: lba, size: size, write: write, done: done})
	if !d.busy {
		d.dispatch()
	}
}

// dispatch starts the best queued request per the elevator policy.
func (d *Disk) dispatch() {
	if len(d.queue) == 0 {
		d.busy = false
		return
	}
	d.busy = true
	idx := d.pick()
	req := d.queue[idx]
	d.queue = append(d.queue[:idx], d.queue[idx+1:]...)

	cost := d.serviceTime(req)
	d.stats.Requests++
	if req.write {
		d.stats.Writes++
		d.stats.BytesOut += req.size
	} else {
		d.stats.Bytes += req.size
	}
	d.stats.BusyTime += cost
	d.eng.After(cost, func(now units.Time) {
		if req.done != nil {
			req.done(now)
		}
		d.dispatch()
	})
}

// pick selects the request with the shortest head movement among the
// first ElevatorWindow queued — a bounded shortest-seek-first that
// cannot starve (the window slides with the FIFO).
func (d *Disk) pick() int {
	limit := d.cfg.ElevatorWindow
	if limit > len(d.queue) {
		limit = len(d.queue)
	}
	best, bestDist := 0, units.Bytes(-1)
	for i := 0; i < limit; i++ {
		dist := d.queue[i].lba - d.head
		if dist < 0 {
			dist = -dist
		}
		if bestDist < 0 || dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

// serviceTime computes and applies the physical cost of one request.
func (d *Disk) serviceTime(req request) units.Time {
	var cost units.Time
	if req.lba >= d.head && req.lba+req.size <= d.raEnd {
		// Whole request inside the readahead window: buffer hit, media
		// already streamed it; charge only transfer time.
		d.stats.Sequential++
		cost = d.cfg.MediaRate.TimeFor(req.size)
		d.head = req.lba + req.size
		return cost
	}
	dist := req.lba - d.head
	if dist < 0 {
		dist = -dist
	}
	if dist > 0 {
		frac := float64(dist) / float64(d.cfg.Span)
		seek := d.cfg.TrackToTrack +
			units.Time(float64(d.cfg.FullSeek-d.cfg.TrackToTrack)*math.Sqrt(frac))
		// Rotational latency: uniform over one revolution, derived from
		// the request ordinal rather than a shared stream so that two
		// runs issuing the same access sequence (e.g. the two policies
		// of a paired experiment) pay identical rotational costs even
		// if event interleaving differs.
		var rot units.Time
		if d.cfg.RotationPeriod > 0 {
			// The inline mix below is a full murmur3 finalizer over
			// (rotSeed, ordinal) — the same avalanche quality as
			// rng.Derive, kept verbatim because swapping the constants
			// would reshuffle every rotation-enabled figure baseline.
			x := d.rotSeed + d.stats.Requests //lint:seedarith murmur3 finalizer applied on the next lines
			x ^= x >> 33
			x *= 0xff51afd7ed558ccd
			x ^= x >> 33
			rot = units.Time(x % uint64(d.cfg.RotationPeriod))
		}
		cost += seek + rot
		d.stats.Seeks++
		d.stats.SeekTime += seek + rot
	}
	// Media transfer for the request plus readahead fill.
	fill := req.size + d.cfg.ReadAhead
	cost += d.cfg.MediaRate.TimeFor(req.size) // caller waits for its bytes only
	d.head = req.lba + req.size
	d.raEnd = req.lba + fill
	if d.raEnd > d.cfg.Span {
		d.raEnd = d.cfg.Span
	}
	return cost
}
