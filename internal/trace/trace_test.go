package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sais/internal/units"
)

func TestAddAndRecords(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Add(units.Time(i), "nic", "frame %d", i)
	}
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	if recs[0].Message != "frame 0" || recs[2].Message != "frame 2" {
		t.Errorf("records = %v", recs)
	}
}

func TestWrapKeepsNewest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 7; i++ {
		r.Add(units.Time(i), "x", "e%d", i)
	}
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	want := []string{"e4", "e5", "e6"}
	for i, w := range want {
		if recs[i].Message != w {
			t.Errorf("recs[%d] = %q, want %q (oldest-first)", i, recs[i].Message, w)
		}
	}
}

func TestFilter(t *testing.T) {
	r := NewRing(8)
	r.SetFilter(func(c string) bool { return c == "apic" })
	r.Add(1, "nic", "skip")
	r.Add(2, "apic", "keep")
	if r.Len() != 1 || r.Dropped() != 1 {
		t.Errorf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	if r.Records()[0].Component != "apic" {
		t.Error("wrong record kept")
	}
}

func TestRender(t *testing.T) {
	r := NewRing(2)
	r.Add(1500, "irq", "vector %d to core %d", 64, 3)
	out := r.Render()
	if !strings.Contains(out, "vector 64 to core 3") || !strings.Contains(out, "irq") {
		t.Errorf("render = %q", out)
	}
	if strings.Contains(out, "\n") {
		t.Error("single record should not have a newline")
	}
	r.Add(2500, "irq", "next")
	if got := len(strings.Split(r.Render(), "\n")); got != 2 {
		t.Errorf("lines = %d", got)
	}
}

func TestEvictedCountsWrap(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 7; i++ {
		r.Add(units.Time(i), "x", "e%d", i)
	}
	if got := r.Evicted(); got != 4 {
		t.Errorf("Evicted() = %d, want 4", got)
	}
	if got := r.Dropped(); got != 0 {
		t.Errorf("Dropped() = %d, want 0 (evictions must not count as filter drops)", got)
	}
	out := r.Render()
	if !strings.Contains(out, "4 evicted by capacity") {
		t.Errorf("render footer missing eviction count:\n%s", out)
	}
}

func TestRenderFooterReportsDropsAndEvictions(t *testing.T) {
	r := NewRing(2)
	r.SetFilter(func(c string) bool { return c != "noisy" })
	r.Add(1, "noisy", "rejected")
	r.Add(2, "nic", "a")
	r.Add(3, "nic", "b")
	r.Add(4, "nic", "c") // evicts "a"
	out := r.Render()
	if !strings.Contains(out, "(1 records filtered, 1 evicted by capacity)") {
		t.Errorf("footer = %q", out)
	}
	// A quiet ring renders no footer at all (TestRender relies on this).
	quiet := NewRing(4)
	quiet.Add(1, "nic", "only")
	if strings.Contains(quiet.Render(), "filtered") {
		t.Errorf("quiet ring grew a footer: %q", quiet.Render())
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestExportChromeTrace(t *testing.T) {
	r := NewRing(8)
	r.Add(1500, "apic", "frame to core 3")
	r.Add(2500, "client", "transfer complete")
	var buf bytes.Buffer
	if err := r.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0]["cat"] != "apic" || events[0]["ph"] != "i" {
		t.Errorf("event = %v", events[0])
	}
	if events[0]["ts"].(float64) != 1.5 {
		t.Errorf("ts = %v, want 1.5us", events[0]["ts"])
	}
	// Distinct components get distinct thread ids.
	if events[0]["tid"] == events[1]["tid"] {
		t.Error("components share a tid")
	}
}
