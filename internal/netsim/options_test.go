package netsim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeAffOption(t *testing.T) {
	for core := 0; core < MaxCores; core++ {
		b, err := EncodeAffOption(core)
		if err != nil {
			t.Fatalf("encode %d: %v", core, err)
		}
		if b&copiedFlag == 0 {
			t.Errorf("core %d: copied bit clear", core)
		}
		if (b>>classShift)&3 != classValue {
			t.Errorf("core %d: option class = %d, want 1", core, (b>>classShift)&3)
		}
		got, err := DecodeAffOption(b)
		if err != nil {
			t.Fatalf("decode %#02x: %v", b, err)
		}
		if got != core {
			t.Errorf("round trip %d -> %d", core, got)
		}
	}
}

func TestEncodeAffOptionRange(t *testing.T) {
	for _, core := range []int{-1, 32, 100} {
		if _, err := EncodeAffOption(core); !errors.Is(err, ErrCoreRange) {
			t.Errorf("EncodeAffOption(%d) err = %v, want ErrCoreRange", core, err)
		}
	}
}

func TestDecodeRejectsNonHint(t *testing.T) {
	for _, b := range []byte{0x00, 0x1f, 0x40, 0xc3} {
		if _, err := DecodeAffOption(b); !errors.Is(err, ErrNotAffHint) {
			t.Errorf("DecodeAffOption(%#02x) err = %v, want ErrNotAffHint", b, err)
		}
	}
}

func TestHintOptionsBytesRoundTrip(t *testing.T) {
	err := quick.Check(func(coreRaw uint8) bool {
		core := int(coreRaw % MaxCores)
		opts, err := Hint(core).OptionsBytes()
		if err != nil || len(opts)%4 != 0 {
			return false
		}
		h := ParseOptions(opts)
		return h.Valid && h.Core == core
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestNoHintOptions(t *testing.T) {
	opts, err := (AffHint{}).OptionsBytes()
	if err != nil || opts != nil {
		t.Errorf("no-hint OptionsBytes = %v, %v", opts, err)
	}
	if h := ParseOptions(nil); h.Valid {
		t.Error("ParseOptions(nil) produced a hint")
	}
	if h := ParseOptions([]byte{optionEOL, 0xaa}); h.Valid {
		t.Error("hint after EOL should be ignored")
	}
}

func TestParseOptionsSkipsUnknown(t *testing.T) {
	op, _ := EncodeAffOption(7)
	h := ParseOptions([]byte{0x44, op, optionEOL}) // unknown option first
	if !h.Valid || h.Core != 7 {
		t.Errorf("ParseOptions = %v, want aff_core=7", h)
	}
}

func TestAffHintString(t *testing.T) {
	if (AffHint{}).String() != "no-hint" {
		t.Error("zero hint string")
	}
	if Hint(5).String() != "aff_core=5" {
		t.Errorf("Hint(5).String() = %q", Hint(5).String())
	}
}
