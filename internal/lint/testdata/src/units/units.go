// Package units is the fixture stand-in for sais/internal/units: the
// unitsafety analyzer recognizes any package whose import path is
// "units" or ends in "/units", so fixtures can exercise dimension
// mixing without importing the real module.
package units

type (
	Time   int64
	Bytes  int64
	Rate   float64
	Hertz  float64
	Cycles int64
)

// TimeFor and Duration exist so the fixture mirrors the real API; the
// raw conversions inside this package are exempt by design.
func (r Rate) TimeFor(n Bytes) Time {
	if r <= 0 {
		return 0
	}
	return Time(float64(n) / float64(r) * 1e9)
}

func (f Hertz) Duration(c Cycles) Time {
	if f <= 0 {
		return 0
	}
	return Time(float64(c) / float64(f) * 1e9)
}

func Over(n Bytes, t Time) Rate {
	if t <= 0 {
		return 0
	}
	return Rate(float64(n) / float64(t) * 1e9)
}
