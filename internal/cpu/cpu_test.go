package cpu

import (
	"testing"
	"testing/quick"

	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/units"
)

func newCore(t *testing.T) (*sim.Engine, *Core) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, NewCore(eng, 0, 2700*units.MHz)
}

func TestFIFOWithinPriority(t *testing.T) {
	eng, c := newCore(t)
	var done []units.Time
	eng.At(0, func(units.Time) {
		c.Submit(PrioProcess, CatCompute, 10, func(now units.Time) { done = append(done, now) })
		c.Submit(PrioProcess, CatCompute, 5, func(now units.Time) { done = append(done, now) })
	})
	eng.RunUntilIdle()
	if len(done) != 2 || done[0] != 10 || done[1] != 15 {
		t.Errorf("done = %v, want [10 15]", done)
	}
}

func TestSoftirqPreemptsProcess(t *testing.T) {
	eng, c := newCore(t)
	var procDone, irqDone units.Time
	eng.At(0, func(units.Time) {
		c.Submit(PrioProcess, CatCompute, 100, func(now units.Time) { procDone = now })
	})
	eng.At(30, func(units.Time) {
		c.Submit(PrioSoftirq, CatSoftirq, 10, func(now units.Time) { irqDone = now })
	})
	eng.RunUntilIdle()
	if irqDone != 40 {
		t.Errorf("softirq done at %v, want 40 (immediate preemption)", irqDone)
	}
	if procDone != 110 {
		t.Errorf("process done at %v, want 110 (resumed with 70 left)", procDone)
	}
	if c.Stats().Preempts != 1 {
		t.Errorf("preempts = %d, want 1", c.Stats().Preempts)
	}
}

func TestSoftirqDoesNotPreemptSoftirq(t *testing.T) {
	eng, c := newCore(t)
	var order []int
	eng.At(0, func(units.Time) {
		c.Submit(PrioSoftirq, CatSoftirq, 50, func(units.Time) { order = append(order, 1) })
	})
	eng.At(10, func(units.Time) {
		c.Submit(PrioSoftirq, CatSoftirq, 5, func(units.Time) { order = append(order, 2) })
	})
	eng.RunUntilIdle()
	if len(order) != 2 || order[0] != 1 {
		t.Errorf("order = %v: same-priority work must not preempt", order)
	}
	if c.Stats().Preempts != 0 {
		t.Errorf("preempts = %d, want 0", c.Stats().Preempts)
	}
}

func TestBusyAccountingExact(t *testing.T) {
	eng, c := newCore(t)
	eng.At(0, func(units.Time) {
		c.Submit(PrioProcess, CatCompute, 100, nil)
	})
	eng.At(30, func(units.Time) {
		c.Submit(PrioSoftirq, CatSoftirq, 20, nil)
	})
	eng.RunUntilIdle()
	s := c.Stats()
	if s.Busy != 120 {
		t.Errorf("busy = %v, want 120", s.Busy)
	}
	if s.ByCategory[CatCompute] != 100 || s.ByCategory[CatSoftirq] != 20 {
		t.Errorf("categories = %v", s.ByCategory)
	}
	// Idle gap then more work: busy should not count the gap.
	eng.At(eng.Now()+1000, func(units.Time) {
		c.Submit(PrioProcess, CatSyscall, 7, nil)
	})
	eng.RunUntilIdle()
	if got := c.Stats().Busy; got != 127 {
		t.Errorf("busy after idle gap = %v, want 127", got)
	}
}

func TestMidRunStatsChargeInFlight(t *testing.T) {
	eng, c := newCore(t)
	eng.At(0, func(units.Time) { c.Submit(PrioProcess, CatCompute, 100, nil) })
	eng.At(40, func(units.Time) {
		if got := c.Stats().Busy; got != 40 {
			t.Errorf("mid-run busy = %v, want 40", got)
		}
	})
	eng.RunUntilIdle()
}

func TestZeroDurationWork(t *testing.T) {
	eng, c := newCore(t)
	fired := false
	eng.At(5, func(units.Time) {
		c.Submit(PrioProcess, CatOther, 0, func(now units.Time) {
			fired = true
			if now != 5 {
				t.Errorf("zero work completed at %v, want 5", now)
			}
		})
	})
	eng.RunUntilIdle()
	if !fired {
		t.Error("zero-duration work never completed")
	}
}

func TestSubmitCycles(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCore(eng, 0, 1*units.GHz)
	var done units.Time
	eng.At(0, func(units.Time) {
		c.SubmitCycles(PrioProcess, CatCompute, 1000, func(now units.Time) { done = now })
	})
	eng.RunUntilIdle()
	if done != 1000 { // 1000 cycles at 1 GHz = 1000 ns
		t.Errorf("done at %v, want 1000ns", done)
	}
}

func TestBusyAndQueueLen(t *testing.T) {
	eng, c := newCore(t)
	eng.At(0, func(units.Time) {
		if c.Busy() {
			t.Error("idle core reported busy")
		}
		c.Submit(PrioProcess, CatCompute, 10, nil)
		c.Submit(PrioProcess, CatCompute, 10, nil)
		if !c.Busy() {
			t.Error("core with work reported idle")
		}
		if c.QueueLen() != 1 {
			t.Errorf("queue = %d, want 1 (one running, one waiting)", c.QueueLen())
		}
	})
	eng.RunUntilIdle()
	if c.Busy() {
		t.Error("drained core reported busy")
	}
}

func TestInvalidSubmits(t *testing.T) {
	eng, c := newCore(t)
	_ = eng
	for _, f := range []func(){
		func() { c.Submit(Priority(-1), CatOther, 1, nil) },
		func() { c.Submit(numPriorities, CatOther, 1, nil) },
		func() { c.Submit(PrioProcess, CatOther, -1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCPUAggregates(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, 4, 2*units.GHz)
	eng.At(0, func(units.Time) {
		p.Core(0).Submit(PrioProcess, CatCompute, 100, nil)
		p.Core(1).Submit(PrioProcess, CatCompute, 300, nil)
	})
	eng.RunUntilIdle()
	total := p.TotalStats()
	if total.Busy != 400 {
		t.Errorf("total busy = %v, want 400", total.Busy)
	}
	// Wall clock is 300; 4 cores → 1200 core-ns available, 400 busy.
	want := 400.0 / 1200.0
	if got := p.Utilization(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("utilization = %v, want %v", got, want)
	}
	if got := p.UnhaltedCycles(); got != 800 { // 400ns at 2GHz
		t.Errorf("unhalted = %d cycles, want 800", got)
	}
}

func TestUtilizationAtTimeZero(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, 2, units.GHz)
	if p.Utilization() != 0 {
		t.Error("utilization before any time passes should be 0")
	}
}

// Property: total busy time equals the sum of submitted durations once
// everything drains, regardless of priorities and arrival pattern, and
// never exceeds wall-clock time.
func TestConservationOfWork(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		eng := sim.NewEngine()
		c := NewCore(eng, 0, units.GHz)
		if r.Bool(0.5) {
			c.SetQuantum(units.Time(r.Intn(20) + 1))
		}
		var submitted units.Time
		n := r.Intn(40) + 1
		for i := 0; i < n; i++ {
			at := units.Time(r.Intn(500))
			d := units.Time(r.Intn(50))
			prio := Priority(r.Intn(int(numPriorities)))
			cat := Category(r.Intn(int(numCategories)))
			submitted += d
			eng.At(at, func(units.Time) { c.Submit(prio, cat, d, nil) })
		}
		eng.RunUntilIdle()
		s := c.Stats()
		if s.Busy != submitted {
			return false
		}
		var byCat units.Time
		for _, v := range s.ByCategory {
			byCat += v
		}
		return byCat == s.Busy && s.Completed == uint64(n) && s.Busy <= eng.Now()
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(sim.NewEngine(), 0, units.GHz) },
		func() { NewCore(sim.NewEngine(), 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCategoryString(t *testing.T) {
	if CatMigration.String() != "migration" {
		t.Errorf("CatMigration = %q", CatMigration.String())
	}
	if Category(99).String() == "" {
		t.Error("unknown category should render")
	}
}

func TestTimesliceRotation(t *testing.T) {
	eng, c := newCore(t)
	c.SetQuantum(10)
	var done []int
	eng.At(0, func(units.Time) {
		c.Submit(PrioProcess, CatCompute, 25, func(units.Time) { done = append(done, 1) })
		c.Submit(PrioProcess, CatCompute, 5, func(units.Time) { done = append(done, 2) })
	})
	eng.RunUntilIdle()
	// Task 1 runs 10, rotates; task 2 runs 5 and finishes first.
	if len(done) != 2 || done[0] != 2 || done[1] != 1 {
		t.Errorf("completion order = %v, want short task first under timeslicing", done)
	}
	if c.Stats().Rotations == 0 {
		t.Error("no rotations counted")
	}
	if got := c.Stats().Busy; got != 30 {
		t.Errorf("busy = %v, want 30 (work conserved)", got)
	}
}

func TestNoRotationWhenAlone(t *testing.T) {
	eng, c := newCore(t)
	c.SetQuantum(10)
	var doneAt units.Time
	eng.At(0, func(units.Time) {
		c.Submit(PrioProcess, CatCompute, 100, func(now units.Time) { doneAt = now })
	})
	eng.RunUntilIdle()
	if doneAt != 100 {
		t.Errorf("lone task finished at %v, want 100 (no pointless slicing)", doneAt)
	}
	if c.Stats().Rotations != 0 {
		t.Errorf("rotations = %d for a lone task", c.Stats().Rotations)
	}
}

func TestSoftirqNotTimesliced(t *testing.T) {
	eng, c := newCore(t)
	c.SetQuantum(10)
	var order []int
	eng.At(0, func(units.Time) {
		c.Submit(PrioSoftirq, CatSoftirq, 50, func(units.Time) { order = append(order, 1) })
		c.Submit(PrioSoftirq, CatSoftirq, 5, func(units.Time) { order = append(order, 2) })
	})
	eng.RunUntilIdle()
	if len(order) != 2 || order[0] != 1 {
		t.Errorf("softirq order = %v; softirq work must run to completion", order)
	}
}

func TestNegativeQuantumPanics(t *testing.T) {
	_, c := newCore(t)
	defer func() {
		if recover() == nil {
			t.Error("negative quantum accepted")
		}
	}()
	c.SetQuantum(-1)
}

func TestTimesliceFairness(t *testing.T) {
	// Two long tasks share the core; at any mid-point their consumed
	// time must be within one quantum of each other.
	eng, c := newCore(t)
	c.SetQuantum(10)
	var doneA, doneB units.Time
	eng.At(0, func(units.Time) {
		c.Submit(PrioProcess, CatCompute, 100, func(now units.Time) { doneA = now })
		c.Submit(PrioProcess, CatCompute, 100, func(now units.Time) { doneB = now })
	})
	eng.RunUntilIdle()
	if doneB-doneA > 10 {
		t.Errorf("completions %v and %v not interleaved fairly", doneA, doneB)
	}
}
