// Package trace provides a bounded in-memory event trace for debugging
// simulation runs: components append one-line records, the ring keeps
// the most recent N, and the renderer prints them with simulated
// timestamps. cmd/saisim -trace wires it into the client node.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"sais/internal/units"
)

// Record is one traced event.
type Record struct {
	At        units.Time
	Component string
	Message   string
}

// String renders the record as a log line.
func (r Record) String() string {
	return fmt.Sprintf("%12v %-10s %s", r.At, r.Component, r.Message)
}

// Ring is a fixed-capacity trace buffer. The zero value is unusable;
// call NewRing.
type Ring struct {
	buf     []Record
	next    int
	wrapped bool
	dropped uint64
	evicted uint64
	filter  func(component string) bool
}

// NewRing builds a ring holding the most recent capacity records.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Ring{buf: make([]Record, 0, capacity)}
}

// SetFilter installs a component predicate; records from components for
// which it returns false are counted as dropped instead of stored. A
// nil filter stores everything.
func (r *Ring) SetFilter(f func(component string) bool) { r.filter = f }

// Add appends a record, evicting the oldest when full.
func (r *Ring) Add(at units.Time, component, format string, args ...any) {
	if r.filter != nil && !r.filter(component) {
		r.dropped++
		return
	}
	rec := Record{At: at, Component: component, Message: fmt.Sprintf(format, args...)}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % cap(r.buf)
	r.wrapped = true
	r.evicted++
}

// Len returns the number of stored records.
func (r *Ring) Len() int { return len(r.buf) }

// Dropped returns records rejected by the filter.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Evicted returns records overwritten because the ring was full — a
// non-zero value means the rendered trace is a suffix of the run, not
// the whole story.
func (r *Ring) Evicted() uint64 { return r.evicted }

// Records returns the stored records oldest-first.
func (r *Ring) Records() []Record {
	if !r.wrapped {
		return append([]Record(nil), r.buf...)
	}
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Render returns the whole trace as a newline-joined string. When any
// records were filtered out or overwritten, a footer line reports both
// counts so a truncated trace is never mistaken for a complete one.
func (r *Ring) Render() string {
	recs := r.Records()
	lines := make([]string, len(recs), len(recs)+1)
	for i, rec := range recs {
		lines[i] = rec.String()
	}
	if r.dropped > 0 || r.evicted > 0 {
		lines = append(lines, fmt.Sprintf("(%d records filtered, %d evicted by capacity)", r.dropped, r.evicted))
	}
	return strings.Join(lines, "\n")
}

// chromeEvent is one record in Chrome's trace-event JSON format
// (chrome://tracing, Perfetto).
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// ExportChromeTrace writes the ring's records as Chrome trace-event
// JSON: each component becomes a thread of instant events, so a run can
// be inspected in chrome://tracing or Perfetto.
func (r *Ring) ExportChromeTrace(w io.Writer) error {
	recs := r.Records()
	events := make([]chromeEvent, 0, len(recs))
	tids := map[string]int{}
	for _, rec := range recs {
		tid, ok := tids[rec.Component]
		if !ok {
			tid = len(tids) + 1
			tids[rec.Component] = tid
		}
		events = append(events, chromeEvent{
			Name: rec.Message,
			Cat:  rec.Component,
			Ph:   "i", // instant
			TS:   float64(rec.At) / 1000,
			PID:  1,
			TID:  tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
