// Package client models the I/O client node — the machine whose
// interrupt scheduling the paper changes. It wires together the
// multi-core CPU, per-core caches, the NIC, the APIC pair, and an
// interrupt-scheduling policy, and implements the full life cycle of a
// parallel read:
//
//	syscall → HintMessager stamps aff_core_id → per-server requests →
//	strip data frames → NIC interrupt → policy picks handling core →
//	softirq protocol processing deposits the strip in that core's cache →
//	last strip wakes the process → the process consumes every strip
//	(local hit, cache-to-cache migration, or memory fill) and computes.
package client

import (
	"fmt"
	"sort"

	"sais/internal/apic"
	"sais/internal/cache"
	"sais/internal/cpu"
	"sais/internal/irqsched"
	"sais/internal/metrics"
	"sais/internal/netsim"
	"sais/internal/pfs"
	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/trace"
	"sais/internal/units"
)

// DataVector is the interrupt vector of the client NIC.
const DataVector apic.Vector = 64

// CostModel holds the client-side per-operation costs. The defaults
// (DefaultCosts) are calibrated to the paper's hardware: strip
// processing P is tens of microseconds while strip migration M is over
// a hundred — the M >> P regime of §III.A.
type CostModel struct {
	IRQEntry       units.Time // interrupt entry/dispatch, per interrupt
	SoftirqPerByte float64    // ns/B protocol processing on the handling core
	SyscallTime    units.Time // per read() submission
	WakeIPI        units.Time // inter-core wakeup signal handling
	LocalLine      units.Time // per-line read, local L2 hit
	RemoteLine     units.Time // per-line same-socket cache-to-cache stall
	RemoteLineFar  units.Time // per-line cross-socket stall (0 = same as RemoteLine)
	L3Line         units.Time // per-line same-socket shared-L3 hit
	MemLine        units.Time // per-line DRAM fill stall
	// SocketSize is the number of cores per socket for NUMA pricing;
	// 0 means a uniform topology (every remote line costs RemoteLine).
	SocketSize     int
	ComputePerByte float64 // ns/B application compute (IOR's encrypt step)
	// ComputeAccessesPerLine is how many additional local cache accesses
	// the compute phase performs per consumed data line (working-set
	// re-touches); it dilutes the strip miss rate toward the levels a
	// hardware counter reports.
	ComputeAccessesPerLine float64
	// BackgroundMissRate is the fraction of those compute accesses that
	// miss anyway (cold code, metadata, TLB walks) — the floor a real L2
	// miss counter never drops below, independent of interrupt
	// scheduling.
	BackgroundMissRate float64
}

// DefaultCosts returns the Opteron-2384-calibrated model.
func DefaultCosts() CostModel {
	return CostModel{
		IRQEntry:       2 * units.Microsecond,
		SoftirqPerByte: 0.25,
		SyscallTime:    3 * units.Microsecond,
		WakeIPI:        2 * units.Microsecond,
		LocalLine:      6,
		// Dual-socket Opteron: HyperTransport probe + transfer is about
		// 140 ns within a socket and 240 ns across; with a consumer
		// sharing its socket with 3 of the 7 peers, the expected uniform
		// equivalent is ≈197 ns — matching the flat calibration.
		RemoteLine:             140,
		RemoteLineFar:          240,
		SocketSize:             4,
		MemLine:                120,
		ComputePerByte:         1.5,
		ComputeAccessesPerLine: 2,
		BackgroundMissRate:     0.05,
	}
}

// Config describes one client node.
type Config struct {
	Node             netsim.NodeID
	Cores            int
	Freq             units.Hertz
	CachePerCore     units.Bytes
	LineSize         units.Bytes
	NIC              netsim.NICConfig
	Policy           irqsched.PolicyKind
	IrqbalancePeriod units.Time
	DedicatedCore    int
	LAPICLatency     units.Time
	Costs            CostModel
	// MigrateDuringBlock is the probability that the scheduler migrates
	// a process to the least-loaded core while it is blocked on an I/O
	// — the scenario behind the paper's policy-(i)-vs-(ii) distinction.
	// SAIs bundles processes to their request core, so the default is 0
	// and §III argues such migrations are rare in I/O-intensive systems.
	MigrateDuringBlock float64
	// CurrentCoreHint selects the paper's scheduling policy (ii): the
	// NIC driver overrides the packet's aff_core_id with the issuing
	// process's *current* core at delivery time (kernel-side knowledge
	// the prototype did not use). The default is policy (i): follow the
	// core recorded at request time. The two differ only when processes
	// migrate during an I/O block, which §III argues is rare.
	CurrentCoreHint bool
	// RSSQueues sizes the MSI-X queue set used by PolicyHardwareRSS
	// (default: one queue per core). Each queue's vector is statically
	// programmed via the redirection table to core q mod Cores, exactly
	// as the Intel 82575/82599 static assignment the paper's related
	// work discusses.
	RSSQueues int
	// L3PerSocket attaches a shared victim L3 of this capacity to each
	// socket (the Opteron 2384's 6 MB L3). Zero disables it; strips
	// evicted from a private L2 then cost a full DRAM fill, as in the
	// calibrated baseline.
	L3PerSocket units.Bytes
	// AllowedIRQCores restricts the NIC vector's redirection-table entry
	// to these cores (the /proc/irq/N/smp_affinity mask a sysadmin
	// would set). Empty means all cores. Hints pointing outside the
	// mask are misrouted to the first allowed core, as hardware would.
	AllowedIRQCores []int
	// TimesliceQuantum enables kernel-style round-robin timeslicing of
	// process work on each core (0 = run to completion). Relevant when
	// applications outnumber cores (the paper's §VI saturation study).
	TimesliceQuantum units.Time
	// RetryTimeout re-issues the unfinished parts of a transfer that has
	// not completed after this long — the recovery path for dropped
	// frames. Zero disables retries (the default; the simulated fabric
	// is lossless unless loss injection is enabled).
	RetryTimeout units.Time
	// MaxRetries bounds re-issues per transfer before it is abandoned
	// and counted in Stats.FailedTransfers.
	MaxRetries int
	// RetryBackoff is the exponential growth factor applied to the retry
	// interval after each unsuccessful attempt: attempt k waits
	// RetryTimeout × RetryBackoff^k (before jitter and cap). 0 selects
	// the default factor 2; 1 restores the fixed interval. Values in
	// (0, 1) are invalid — retries never speed up.
	RetryBackoff float64
	// RetryBackoffCap bounds the backed-off interval; 0 selects
	// 8 × RetryTimeout.
	RetryBackoffCap units.Time
	// RetryJitter shrinks each backed-off delay by a deterministic
	// per-(seed, tag, attempt) derived fraction in [0, RetryJitter), so
	// clients that lost frames in the same burst spread their re-issues
	// instead of hammering the recovering server in lockstep. 0 selects
	// the default 0.1; negative disables jitter. Must stay below 1.
	RetryJitter float64
	// TransferDeadline bounds the total lifetime of one transfer. A
	// transfer that cannot complete by its deadline degrades gracefully:
	// the strips that did arrive are consumed and the operation finishes
	// as a typed partial result (OpError with Partial set, counted in
	// Stats.PartialTransfers) instead of being abandoned wholesale —
	// the difference between "the file server is slow" and "my job
	// hangs forever because one server stayed crashed". 0 disables;
	// enforcement rides the retry timer, so it requires RetryTimeout > 0.
	TransferDeadline units.Time
	Seed             uint64
	MDS              netsim.NodeID
}

// Backoff-schedule defaults, applied when the corresponding Config
// field is zero.
const (
	defaultRetryBackoff       = 2.0
	defaultRetryJitter        = 0.1
	defaultBackoffCapMultiple = 8
)

// RetryDelay returns the delay armed before attempt's re-issue of the
// transfer with the given tag (attempt 0 is the initial timer armed at
// issue, which always waits exactly RetryTimeout). The schedule is
// exponential with a cap and subtractive derived jitter — a pure
// function of (Seed, tag, attempt), so it is deterministic per seed,
// layout-invariant under sharding, and distinct across clients (their
// seeds are independently derived), which keeps loss bursts from
// turning into synchronized retry storms.
func (c Config) RetryDelay(tag uint64, attempt int) units.Time {
	if c.RetryTimeout <= 0 {
		return 0
	}
	if attempt <= 0 {
		return c.RetryTimeout
	}
	factor := c.RetryBackoff
	if factor == 0 {
		factor = defaultRetryBackoff
	}
	limit := c.RetryBackoffCap
	if limit <= 0 {
		limit = defaultBackoffCapMultiple * c.RetryTimeout
	}
	if limit < c.RetryTimeout {
		limit = c.RetryTimeout
	}
	d := float64(c.RetryTimeout)
	for i := 0; i < attempt && d < float64(limit); i++ {
		d *= factor
	}
	if d > float64(limit) {
		d = float64(limit)
	}
	if jf := c.RetryJitter; jf >= 0 {
		if jf == 0 {
			jf = defaultRetryJitter
		}
		u := rng.Unit01(rng.Derive(rng.Derive(c.Seed, tag), uint64(attempt)))
		d *= 1 - jf*u
	}
	if d < 1 {
		d = 1
	}
	return units.Time(d)
}

// DefaultConfig returns the head-node client: 8 cores at 2.7 GHz,
// 512 KiB private L2 per core, the given NIC rate, and the requested
// policy.
func DefaultConfig(node netsim.NodeID, nicRate units.Rate, policy irqsched.PolicyKind) Config {
	return Config{
		Node:             node,
		Cores:            8,
		Freq:             2700 * units.MHz,
		CachePerCore:     512 * units.KiB,
		LineSize:         64,
		NIC:              netsim.DefaultNICConfig(nicRate),
		Policy:           policy,
		IrqbalancePeriod: 10 * units.Millisecond,
		LAPICLatency:     200 * units.Nanosecond,
		Costs:            DefaultCosts(),
		Seed:             1,
	}
}

func (c Config) validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("client: cores %d must be positive", c.Cores)
	}
	desc, ok := irqsched.Describe(c.Policy)
	if !ok {
		return fmt.Errorf("client: %w", &irqsched.UnknownPolicyError{Kind: c.Policy})
	}
	if desc.UsesHints && c.Cores > netsim.MaxCores {
		return fmt.Errorf("client: SAIs addresses at most %d cores, got %d", netsim.MaxCores, c.Cores)
	}
	if c.CachePerCore <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("client: cache geometry invalid")
	}
	if c.MigrateDuringBlock < 0 || c.MigrateDuringBlock > 1 {
		return fmt.Errorf("client: MigrateDuringBlock %v outside [0,1]", c.MigrateDuringBlock)
	}
	for _, core := range c.AllowedIRQCores {
		if core < 0 || core >= c.Cores {
			return fmt.Errorf("client: IRQ affinity core %d out of range", core)
		}
	}
	if c.RetryBackoff != 0 && c.RetryBackoff < 1 {
		return fmt.Errorf("client: retry backoff factor %v below 1 (retries never speed up)", c.RetryBackoff)
	}
	if c.RetryBackoffCap < 0 {
		return fmt.Errorf("client: negative retry backoff cap")
	}
	if c.RetryJitter >= 1 {
		return fmt.Errorf("client: retry jitter %v must stay below 1", c.RetryJitter)
	}
	if c.TransferDeadline < 0 {
		return fmt.Errorf("client: negative transfer deadline")
	}
	if c.TransferDeadline > 0 && c.RetryTimeout <= 0 {
		return fmt.Errorf("client: transfer deadline needs RetryTimeout > 0 (the deadline is enforced by the retry timer)")
	}
	return nil
}

// Stats is the client-node roll-up the experiments report.
type Stats struct {
	BytesRead       units.Bytes
	Transfers       uint64
	BytesWritten    units.Bytes
	WriteTransfers  uint64
	Interrupts      uint64
	HintedIRQs      uint64
	MetadataTrips   uint64
	Retries         uint64
	FailedTransfers uint64
	// StripsRetried counts the strips re-requested (reads) or re-sent
	// (writes) by the timeout recovery path.
	StripsRetried uint64
	// DuplicateStrips counts late strips and write acks discarded
	// because a retry had already delivered them.
	DuplicateStrips uint64
	// HeaderDrops counts frames rejected because their IPv4 header
	// failed validation — the stack drops them before any protocol
	// processing, exactly like wire loss.
	HeaderDrops uint64
	// PartialTransfers counts transfers that hit their TransferDeadline
	// (or retry budget, with the deadline enabled) and completed with
	// only the strips that had arrived; PartialBytes is what those
	// transfers actually delivered. Partial bytes also count in
	// BytesRead/BytesWritten — they reached the application.
	PartialTransfers uint64
	PartialBytes     units.Bytes
	// ReorderedFrames counts strip-data frames that completed softirq
	// processing with a per-(transfer, server) sequence lower than one
	// already seen — the Wu et al. Flow Director pathology made visible.
	// ReorderDepthMax is the largest observed sequence regression.
	ReorderedFrames uint64
	ReorderDepthMax uint64
	// PolicyCounters carries the router's self-describing counters
	// (CounterReporter); nil for policies that export none.
	PolicyCounters map[string]uint64
}

// OpError is the typed per-operation record of a transfer that did not
// complete normally: either abandoned after exhausting MaxRetries, or
// degraded to a partial result at its TransferDeadline. Neither outcome
// is silent: each record is surfaced through Node.OpErrors (and from
// there into the cluster Result's fault rollup), and the operation's
// elapsed time still lands in the latency distribution.
//saisvet:jsonstable sig=e3566ab0
type OpError struct {
	Write bool
	// Client is the node id of the issuing client; tags are unique only
	// per client, so (Client, Tag) is the transfer's global identity.
	Client   netsim.NodeID
	File     pfs.FileID
	Tag      uint64
	Retries  int
	IssuedAt units.Time
	FailedAt units.Time
	// Partial marks graceful degradation: the transfer completed at its
	// deadline with BytesDelivered of its payload, StripsMissing strips
	// short. Abandoned transfers (Partial false) delivered nothing.
	Partial        bool
	BytesDelivered units.Bytes
	StripsMissing  int
}

// Error implements the error interface.
func (e OpError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	if e.Partial {
		return fmt.Sprintf("client %d: %s of file %d (tag %d) degraded to partial at deadline: %v delivered, %d strips missing after %d retries (%v in flight)",
			e.Client, op, e.File, e.Tag, e.BytesDelivered, e.StripsMissing, e.Retries, e.FailedAt-e.IssuedAt)
	}
	return fmt.Sprintf("client %d: %s of file %d (tag %d) abandoned after %d retries (%v in flight)",
		e.Client, op, e.File, e.Tag, e.Retries, e.FailedAt-e.IssuedAt)
}

// read tracks one in-flight transfer.
type read struct {
	proc     *Proc
	issuedAt units.Time
	file     pfs.FileID
	tag      uint64
	plans    []pfs.ServerPlan
	hint     netsim.AffHint
	localEOF func(serverIdx int) units.Bytes
	got      map[int]bool // arrived strips, for dedupe and resend
	// lastSeq is the highest Frame.FlowSeq accepted per server within
	// this transfer — the receive-side reorder detector.
	lastSeq map[netsim.NodeID]uint64
	// srvLeft counts this transfer's outstanding strips per server, for
	// the flow-idle bookkeeping (maintained only when the router wants
	// NoteFlowIdle callbacks).
	srvLeft   map[netsim.NodeID]int
	remaining int
	bytes     units.Bytes
	blocks    []blockRef
	retries   int
	partial   bool // deadline hit with strips in hand: consume what arrived
	timer     sim.Timer
	done      sim.Event
}

type blockRef struct {
	id    cache.BlockID
	size  units.Bytes
	strip int // global strip index, for span identity
}

// writeOp tracks one in-flight write transfer: strips are pushed to the
// servers and the operation completes when every strip is acknowledged.
type writeOp struct {
	proc      *Proc
	issuedAt  units.Time
	file      pfs.FileID
	tag       uint64
	plans     []pfs.ServerPlan
	hint      netsim.AffHint
	acked     map[int]bool
	remaining int
	bytes     units.Bytes
	retries   int
	timer     sim.Timer
	done      sim.Event
}

// pendingOpen queues operations issued before the file's layout arrived.
type pendingOpen struct {
	offset  units.Bytes
	length  units.Bytes
	isWrite bool
	proc    *Proc
	done    sim.Event
}

// openState tracks the in-flight metadata request for one file, so a
// lost layout request or reply is retried instead of parking the file's
// operations forever.
type openState struct {
	tag      uint64
	retries  int
	issuedAt units.Time
	timer    sim.Timer
}

// Node is the client node instance.
type Node struct {
	cfg    Config
	eng    *sim.Engine
	cpu    *cpu.CPU
	caches *cache.System
	nic    *netsim.NIC
	ioapic *apic.IOAPIC
	locals []*apic.LocalAPIC
	router apic.Router
	msgr   irqsched.HintMessager
	rnd    *rng.Source
	// txObs/idleObs are the router's optional learning hooks (Flow
	// Director, A-TFC); nil for static policies.
	txObs   irqsched.TxObserver
	idleObs irqsched.FlowIdleObserver
	// flowOut counts outstanding read strips per server across all
	// transfers; a flow's drop to zero fires NoteFlowIdle. Allocated
	// only when idleObs is set.
	flowOut map[netsim.NodeID]int
	// reorderIssue enables straggler-aware issue scheduling: srvLat is
	// the per-server EWMA of strip issue→arrival latency (ns) and
	// sendReadRequests issues slowest-first.
	reorderIssue bool
	srvLat       map[netsim.NodeID]float64

	layouts   map[pfs.FileID]pfs.Layout
	opening   map[pfs.FileID][]pendingOpen
	opens     map[pfs.FileID]*openState
	openTags  map[uint64]pfs.FileID
	reads     map[uint64]*read
	writes    map[uint64]*writeOp
	nextTag   uint64
	nextBlock cache.BlockID
	// freeReads/freeWrites recycle transfer records (and their interior
	// map/slice capacity): one record per strip-bearing transfer is the
	// client's highest allocation churn after frames. A record is freed
	// only at the end of its final event (completion compute closure or
	// retry-exhaustion abandon), when no timer or closure references it.
	freeReads  []*read
	freeWrites []*writeOp
	// frameq holds frames routed to each core, consumed by the local
	// APIC handler in FIFO order.
	frameq [][]*netsim.Frame
	stats  Stats
	// latencies holds completed read-transfer latencies in nanoseconds,
	// for percentile reporting; writeLatencies the same for writes.
	// Abandoned operations contribute their time-to-failure so loss
	// never silently improves the distribution.
	latencies      []float64
	writeLatencies []float64
	opErrors       []OpError
	tracer         *trace.Ring
	// spans, when non-nil, records the full lifecycle of every strip.
	spans *trace.SpanLog
	// stripHist accumulates per-strip issue→arrival latency (ns); it is
	// always on — the fixed-shape histogram costs one array index per
	// strip.
	stripHist metrics.Histogram
}

// Latencies returns the completed read-transfer latencies (ns).
func (n *Node) Latencies() []float64 { return n.latencies }

// WriteLatencies returns the completed write-transfer latencies (ns).
func (n *Node) WriteLatencies() []float64 { return n.writeLatencies }

// OpErrors returns the typed failure record of every transfer that
// exhausted its retries.
func (n *Node) OpErrors() []OpError { return n.opErrors }

// SetTracer installs an optional event trace; nil disables tracing.
func (n *Node) SetTracer(tr *trace.Ring) { n.tracer = tr }

// SetSpanLog attaches the lifecycle span recorder; nil (the default)
// disables span tracing entirely — no allocation on any hot path.
func (n *Node) SetSpanLog(l *trace.SpanLog) { n.spans = l }

// StripLatencies returns the per-strip issue→arrival latency histogram
// (nanoseconds).
func (n *Node) StripLatencies() *metrics.Histogram { return &n.stripHist }

func (n *Node) tracef(component, format string, args ...any) {
	if n.tracer != nil {
		n.tracer.Add(n.eng.Now(), component, format, args...)
	}
}

// loadAdapter exposes core load to the irqbalance policy.
type loadAdapter struct{ c *cpu.CPU }

func (l loadAdapter) NumCores() int             { return l.c.NumCores() }
func (l loadAdapter) CoreBusy(i int) units.Time { return l.c.Core(i).Stats().Busy }
func (l loadAdapter) CoreQueue(i int) int       { return l.c.Core(i).QueueLen() }

// New builds a client node and attaches it to fab. It returns an error
// on invalid configuration.
func New(eng *sim.Engine, fab *netsim.Fabric, cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	desc, _ := irqsched.Describe(cfg.Policy) // validate() vouched for the kind
	rssQueues := 0
	if desc.MSIX {
		rssQueues = cfg.RSSQueues
		if rssQueues < 1 {
			rssQueues = cfg.Cores
		}
		cfg.NIC.RxQueues = rssQueues
	}
	n := &Node{
		cfg:      cfg,
		eng:      eng,
		cpu:      cpu.New(eng, cfg.Cores, cfg.Freq),
		caches:   cache.NewSystem(cfg.Cores, cfg.CachePerCore, cfg.LineSize),
		nic:      netsim.NewNIC(eng, cfg.Node, cfg.NIC),
		rnd:      rng.New(cfg.Seed).Split(fmt.Sprintf("client%d", cfg.Node)),
		layouts:  make(map[pfs.FileID]pfs.Layout),
		opening:  make(map[pfs.FileID][]pendingOpen),
		opens:    make(map[pfs.FileID]*openState),
		openTags: make(map[uint64]pfs.FileID),
		reads:    make(map[uint64]*read),
		writes:   make(map[uint64]*writeOp),
		frameq:   make([][]*netsim.Frame, cfg.Cores),
	}
	fab.Attach(n.nic)
	if cfg.L3PerSocket > 0 {
		ss := cfg.Costs.SocketSize
		if ss < 1 {
			ss = cfg.Cores
		}
		n.caches.ConfigureL3(ss, cfg.L3PerSocket)
	}
	if cfg.TimesliceQuantum > 0 {
		n.cpu.SetQuantum(cfg.TimesliceQuantum)
	}

	n.locals = make([]*apic.LocalAPIC, cfg.Cores)
	for i := range n.locals {
		l := apic.NewLocalAPIC(eng, i, cfg.LAPICLatency)
		core := i
		l.SetHandler(func(_ apic.Vector, now units.Time) { n.handleIRQ(core, now) })
		n.locals[i] = l
	}
	n.ioapic = apic.NewIOAPIC(eng, n.locals)
	if len(cfg.AllowedIRQCores) > 0 {
		n.ioapic.Program(DataVector, cfg.AllowedIRQCores)
	}
	router, err := irqsched.New(cfg.Policy, irqsched.Options{
		Loads:         loadAdapter{n.cpu},
		Period:        cfg.IrqbalancePeriod,
		DedicatedCore: cfg.DedicatedCore,
		SocketSize:    cfg.Costs.SocketSize,
		Cores:         cfg.Cores,
		RSSQueues:     rssQueues,
		RSSBaseVector: DataVector,
	})
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	n.router = router
	if desc.MSIX {
		// Hardware RSS: one vector per queue, statically pinned via the
		// redirection table — the same map the StaticTable router holds.
		for q := 0; q < rssQueues; q++ {
			n.ioapic.Program(DataVector+apic.Vector(q), []int{q % cfg.Cores})
		}
	}
	n.ioapic.SetRouter(n.router)
	n.msgr = irqsched.HintMessager{Enabled: desc.UsesHints}
	n.txObs, _ = n.router.(irqsched.TxObserver)
	n.idleObs, _ = n.router.(irqsched.FlowIdleObserver)
	if n.idleObs != nil {
		n.flowOut = make(map[netsim.NodeID]int)
	}
	n.reorderIssue = desc.ReorderIssue
	if n.reorderIssue {
		n.srvLat = make(map[netsim.NodeID]float64)
	}
	if desc.MSIX {
		n.nic.SetQueueHandler(n.onNICQueueInterrupt)
	} else {
		n.nic.SetInterruptHandler(n.onNICInterrupt)
	}
	return n, nil
}

// MustNew is New for configurations known valid (tests, examples).
func MustNew(eng *sim.Engine, fab *netsim.Fabric, cfg Config) *Node {
	n, err := New(eng, fab, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// CPU exposes the processor for metric collection.
func (n *Node) CPU() *cpu.CPU { return n.cpu }

// Caches exposes the cache system for metric collection.
func (n *Node) Caches() *cache.System { return n.caches }

// NIC exposes the network interface for metric collection.
func (n *Node) NIC() *netsim.NIC { return n.nic }

// IOAPIC exposes the interrupt controller for metric collection.
func (n *Node) IOAPIC() *apic.IOAPIC { return n.ioapic }

// Config returns the node configuration.
func (n *Node) Config() Config { return n.cfg }

// Stats returns a copy of the roll-up counters.
func (n *Node) Stats() Stats {
	s := n.stats
	s.Interrupts = n.nic.Stats().Interrupts
	if h, ok := n.router.(interface{ Hinted() uint64 }); ok {
		s.HintedIRQs = h.Hinted()
	}
	if cr, ok := n.router.(irqsched.CounterReporter); ok {
		s.PolicyCounters = cr.Counters()
	}
	return s
}

// Proc is an application process pinned to a core (until an explicit
// wake-time migration).
type Proc struct {
	id   int
	core int
	node *Node
}

// NewProc creates a process on the given core.
func (n *Node) NewProc(id, core int) *Proc {
	if core < 0 || core >= n.cfg.Cores {
		panic(fmt.Sprintf("client: proc core %d out of range", core))
	}
	return &Proc{id: id, core: core, node: n}
}

// Core returns the core the process currently runs on.
func (p *Proc) Core() int { return p.core }

// ID returns the process id.
func (p *Proc) ID() int { return p.id }

// Read issues a synchronous parallel read of [offset, offset+length)
// from file; done fires on the process's core once the data has been
// consumed (merged and computed over). This is one IOR loop iteration.
func (p *Proc) Read(file pfs.FileID, offset, length units.Bytes, done sim.Event) {
	n := p.node
	n.cpu.Core(p.core).Submit(cpu.PrioProcess, cpu.CatSyscall, n.cfg.Costs.SyscallTime, func(units.Time) {
		n.startOp(p, file, offset, length, false, done)
	})
}

// Write issues a synchronous parallel write of [offset, offset+length)
// to file; done fires once every strip has been acknowledged by its
// server. The process first produces the data (the compute charge), so
// the strips leave from its own cache — there is no interrupt-locality
// question on the way out, which is the paper's reason for studying
// reads only.
func (p *Proc) Write(file pfs.FileID, offset, length units.Bytes, done sim.Event) {
	n := p.node
	produce := n.cfg.Costs.SyscallTime + units.Time(float64(length)*n.cfg.Costs.ComputePerByte)
	n.cpu.Core(p.core).Submit(cpu.PrioProcess, cpu.CatCompute, produce, func(units.Time) {
		n.startOp(p, file, offset, length, true, done)
	})
}

// startOp runs after the syscall cost; it resolves the layout (via the
// MDS on first touch) and fans the operation out to the I/O servers.
func (n *Node) startOp(p *Proc, file pfs.FileID, offset, length units.Bytes, isWrite bool, done sim.Event) {
	if _, ok := n.layouts[file]; !ok {
		n.opening[file] = append(n.opening[file], pendingOpen{offset: offset, length: length, isWrite: isWrite, proc: p, done: done})
		if len(n.opening[file]) == 1 {
			n.nextTag++
			tag := n.nextTag
			n.openTags[tag] = file
			st := &openState{tag: tag, issuedAt: n.eng.Now()}
			n.opens[file] = st
			n.sendLayoutRequest(file, tag)
			n.armOpenTimer(file, st)
		}
		return
	}
	if isWrite {
		n.issueWrite(p, file, offset, length, done)
	} else {
		n.issue(p, file, offset, length, done)
	}
}

// sendLayoutRequest asks the MDS for file's layout.
func (n *Node) sendLayoutRequest(file pfs.FileID, tag uint64) {
	n.stats.MetadataTrips++
	n.nic.Send(n.cfg.MDS, pfs.LayoutRequestSize, netsim.AffHint{}, &pfs.LayoutRequest{
		File: file, Tag: tag, Client: n.cfg.Node,
	})
}

// armOpenTimer schedules the metadata retry timeout, if enabled. Layout
// requests follow the same backoff schedule as data transfers but carry
// no deadline — an open is tiny and its retry budget bounds it alone.
func (n *Node) armOpenTimer(file pfs.FileID, st *openState) {
	if n.cfg.RetryTimeout <= 0 {
		return
	}
	st.timer = n.eng.After(n.cfg.RetryDelay(st.tag, st.retries), func(units.Time) {
		n.retryOpen(file, st)
	})
}

// retryOpen re-sends a layout request whose reply never came; after
// MaxRetries every operation parked on the file is abandoned with a
// typed error, so a lost open never strands transfers silently.
func (n *Node) retryOpen(file pfs.FileID, st *openState) {
	if n.opens[file] != st {
		return
	}
	if st.retries >= n.cfg.MaxRetries {
		delete(n.opens, file)
		delete(n.openTags, st.tag)
		parked := n.opening[file]
		delete(n.opening, file)
		for _, po := range parked {
			n.abandon(OpError{Write: po.isWrite, Client: n.cfg.Node, File: file, Tag: st.tag,
				Retries: st.retries, IssuedAt: st.issuedAt, FailedAt: n.eng.Now()})
		}
		return
	}
	st.retries++
	n.stats.Retries++
	n.tracef("client", "open file=%d retry %d: no layout reply", file, st.retries)
	n.sendLayoutRequest(file, st.tag)
	n.armOpenTimer(file, st)
}

// issueWrite pushes a transfer's strips to their servers and waits for
// acknowledgements.
func (n *Node) issueWrite(p *Proc, file pfs.FileID, offset, length units.Bytes, done sim.Event) {
	layout := n.layouts[file]
	plans, err := layout.Extents(offset, length)
	if err != nil {
		panic(fmt.Sprintf("client: extents: %v", err))
	}
	hint, err := n.msgr.Annotate(p.core)
	if err != nil {
		panic(fmt.Sprintf("client: hint: %v", err))
	}
	n.nextTag++
	tag := n.nextTag
	w := n.newWrite()
	w.proc, w.issuedAt, w.file, w.tag = p, n.eng.Now(), file, tag
	w.plans, w.hint, w.done = plans, hint, done
	for _, plan := range plans {
		w.remaining += len(plan.Pieces)
		for _, piece := range plan.Pieces {
			w.bytes += piece.Size
		}
	}
	n.writes[tag] = w
	n.sendWriteStrips(w, plans)
	n.armWriteTimer(w)
}

// sendWriteStrips pushes the strips covered by plans to their servers.
func (n *Node) sendWriteStrips(w *writeOp, plans []pfs.ServerPlan) {
	for _, plan := range plans {
		for _, piece := range plan.Pieces {
			n.nic.Send(plan.Server, piece.Size, w.hint, &pfs.StripWrite{
				File: w.file, Tag: w.tag, Client: n.cfg.Node,
				GlobalStrip: piece.GlobalStrip, ServerOffset: piece.ServerOffset,
				Size: piece.Size,
			})
		}
		if n.txObs != nil {
			n.txObs.NoteTransmit(uint64(plan.Server), w.proc.core)
		}
	}
}

// armWriteTimer schedules the write retry timeout, if enabled.
func (n *Node) armWriteTimer(w *writeOp) {
	if n.cfg.RetryTimeout <= 0 {
		return
	}
	w.timer = n.eng.After(n.retryDelayFor(w.tag, w.retries, w.issuedAt), func(units.Time) {
		n.retryWrite(w)
	})
}

// retryDelayFor is RetryDelay clamped so the timer never sleeps past
// the transfer deadline: the attempt that would cross it fires exactly
// at the deadline and resolves the transfer there instead.
func (n *Node) retryDelayFor(tag uint64, attempt int, issuedAt units.Time) units.Time {
	d := n.cfg.RetryDelay(tag, attempt)
	if dl := n.cfg.TransferDeadline; dl > 0 {
		if rem := issuedAt + dl - n.eng.Now(); rem > 0 && rem < d {
			d = rem
		}
	}
	return d
}

// retryWrite re-pushes unacknowledged strips. After MaxRetries — or,
// with a TransferDeadline configured, once the deadline passes — the
// write resolves: partially if any strips were acknowledged (graceful
// degradation), abandoned otherwise.
func (n *Node) retryWrite(w *writeOp) {
	if _, live := n.writes[w.tag]; !live {
		return
	}
	now := n.eng.Now()
	pastDeadline := n.cfg.TransferDeadline > 0 && now-w.issuedAt >= n.cfg.TransferDeadline
	if w.retries >= n.cfg.MaxRetries || pastDeadline {
		delete(n.writes, w.tag)
		if acked := ackedBytes(w.plans, w.acked); n.cfg.TransferDeadline > 0 && acked > 0 {
			n.completePartialWrite(w, acked)
			return
		}
		n.abandon(OpError{Write: true, Client: n.cfg.Node, File: w.file, Tag: w.tag, Retries: w.retries,
			IssuedAt: w.issuedAt, FailedAt: now})
		n.freeWrite(w)
		return
	}
	w.retries++
	n.stats.Retries++
	missing := missingPlans(w.plans, w.acked)
	n.countRetriedStrips(missing)
	n.sendWriteStrips(w, missing)
	n.armWriteTimer(w)
}

// completePartialWrite finishes a deadline-bound write with only its
// acknowledged strips: the typed partial record joins the failure list,
// the acknowledged bytes count as written, and the process wakes so the
// workload continues past the degraded operation.
func (n *Node) completePartialWrite(w *writeOp, acked units.Bytes) {
	p := w.proc
	missing := w.remaining
	n.tracef("client", "write tag=%d degrading to partial: %v acked, %d strips missing after %d retries",
		w.tag, acked, missing, w.retries)
	n.cpu.Core(p.core).Submit(cpu.PrioSoftirq, cpu.CatIRQ, n.cfg.Costs.WakeIPI, func(now units.Time) {
		n.stats.BytesWritten += acked
		n.stats.PartialTransfers++
		n.stats.PartialBytes += acked
		n.writeLatencies = append(n.writeLatencies, float64(now-w.issuedAt))
		n.opErrors = append(n.opErrors, OpError{Write: true, Client: n.cfg.Node, File: w.file,
			Tag: w.tag, Retries: w.retries, Partial: true, BytesDelivered: acked,
			StripsMissing: missing, IssuedAt: w.issuedAt, FailedAt: now})
		if w.done != nil {
			w.done(now)
		}
		n.freeWrite(w)
	})
}

// ackedBytes sums the payload of the strips already acknowledged.
func ackedBytes(plans []pfs.ServerPlan, acked map[int]bool) units.Bytes {
	var b units.Bytes
	for _, plan := range plans {
		for _, piece := range plan.Pieces {
			if acked[piece.GlobalStrip] {
				b += piece.Size
			}
		}
	}
	return b
}

// issue sends the per-server read requests for a transfer.
func (n *Node) issue(p *Proc, file pfs.FileID, offset, length units.Bytes, done sim.Event) {
	layout := n.layouts[file]
	plans, err := layout.Extents(offset, length)
	if err != nil {
		panic(fmt.Sprintf("client: extents: %v", err))
	}
	hint, err := n.msgr.Annotate(p.core)
	if err != nil {
		panic(fmt.Sprintf("client: hint: %v", err))
	}
	// The request has been stamped with the issuing core; if the
	// scheduler migrates the blocked process now, policy (i)'s hint goes
	// stale while policy (ii) (CurrentCoreHint) re-resolves it.
	if n.cfg.MigrateDuringBlock > 0 && n.rnd.Bool(n.cfg.MigrateDuringBlock) {
		p.core = n.leastLoadedCore(p.core)
	}
	n.nextTag++
	tag := n.nextTag
	rd := n.newRead()
	rd.proc, rd.issuedAt, rd.file, rd.tag = p, n.eng.Now(), file, tag
	rd.plans, rd.hint, rd.done = plans, hint, done
	rd.localEOF = func(idx int) units.Bytes { return layout.LocalBytes(idx) }
	for _, plan := range plans {
		rd.remaining += len(plan.Pieces)
	}
	if n.idleObs != nil {
		// Count the expected strips once, at issue: retries re-request
		// strips that are still outstanding, so they add nothing.
		for _, plan := range plans {
			rd.srvLeft[plan.Server] += len(plan.Pieces)
			n.flowOut[plan.Server] += len(plan.Pieces)
		}
	}
	if n.spans != nil {
		// The issue span opens here (post-migration, so the recorded core
		// is the one the request actually left from) and is closed by the
		// server when the request arrives.
		for _, plan := range plans {
			for _, piece := range plan.Pieces {
				n.spans.Begin(trace.PhaseIssue, rd.issuedAt,
					int(n.cfg.Node), int(plan.Server), tag, piece.GlobalStrip, p.core)
			}
		}
	}
	n.reads[tag] = rd
	n.sendReadRequests(rd, plans)
	n.armReadTimer(rd)
}

// sendReadRequests issues the per-server requests covering plans. With
// straggler-aware scheduling the requests go out slowest-server-first
// (by the EWMA of observed strip latency), so the straggler's service
// time overlaps the faster servers. The transmit observer, when set,
// samples each request's (flow, core) — the NIC tx path Flow Director
// and A-TFC learn from.
func (n *Node) sendReadRequests(rd *read, plans []pfs.ServerPlan) {
	if n.reorderIssue && len(plans) > 1 {
		ordered := append(make([]pfs.ServerPlan, 0, len(plans)), plans...)
		sort.SliceStable(ordered, func(i, j int) bool {
			return n.srvLat[ordered[i].Server] > n.srvLat[ordered[j].Server]
		})
		plans = ordered
	}
	for _, plan := range plans {
		n.nic.Send(plan.Server, pfs.RequestSize, rd.hint, &pfs.ReadRequest{
			File: rd.file, Tag: rd.tag, Client: n.cfg.Node, Pieces: plan.Pieces,
			LocalEOF: rd.localEOF(plan.ServerIdx),
		})
		if n.txObs != nil {
			n.txObs.NoteTransmit(uint64(plan.Server), rd.proc.core)
		}
	}
}

// armReadTimer schedules the retry timeout for rd, if enabled.
func (n *Node) armReadTimer(rd *read) {
	if n.cfg.RetryTimeout <= 0 {
		return
	}
	rd.timer = n.eng.After(n.retryDelayFor(rd.tag, rd.retries, rd.issuedAt), func(units.Time) {
		n.retryRead(rd)
	})
}

// retryRead re-issues requests covering strips that have not arrived.
// After MaxRetries — or, with a TransferDeadline configured, once the
// deadline passes — the transfer resolves: if any strips landed and the
// deadline is enabled it degrades to a partial result (the process
// consumes what arrived), otherwise it is abandoned.
func (n *Node) retryRead(rd *read) {
	if _, live := n.reads[rd.tag]; !live {
		return
	}
	now := n.eng.Now()
	pastDeadline := n.cfg.TransferDeadline > 0 && now-rd.issuedAt >= n.cfg.TransferDeadline
	if rd.retries >= n.cfg.MaxRetries || pastDeadline {
		delete(n.reads, rd.tag)
		// The missing strips will never be accepted (the tag is gone):
		// release their flow-idle accounting now.
		n.releaseFlows(rd)
		if n.cfg.TransferDeadline > 0 && len(rd.blocks) > 0 {
			rd.partial = true
			n.tracef("client", "read tag=%d degrading to partial: %v arrived, %d strips missing after %d retries",
				rd.tag, rd.bytes, rd.remaining, rd.retries)
			n.wake(rd, now)
			return
		}
		// Free the strips that did arrive; nobody will consume them.
		for _, b := range rd.blocks {
			n.caches.Release(b.id)
		}
		n.abandon(OpError{Client: n.cfg.Node, File: rd.file, Tag: rd.tag, Retries: rd.retries,
			IssuedAt: rd.issuedAt, FailedAt: now})
		n.freeRead(rd)
		return
	}
	rd.retries++
	n.stats.Retries++
	missing := missingPlans(rd.plans, rd.got)
	n.countRetriedStrips(missing)
	n.tracef("client", "read tag=%d retry %d: %d servers incomplete", rd.tag, rd.retries, len(missing))
	n.sendReadRequests(rd, missing)
	n.armReadTimer(rd)
}

// releaseFlows zeroes a resolving transfer's outstanding-strip counts,
// firing NoteFlowIdle for flows that drain to zero. It iterates the
// plan list (not the map) so the callback order is deterministic.
func (n *Node) releaseFlows(rd *read) {
	if n.idleObs == nil {
		return
	}
	for _, plan := range rd.plans {
		rem := rd.srvLeft[plan.Server]
		if rem <= 0 {
			continue
		}
		rd.srvLeft[plan.Server] = 0
		n.flowOut[plan.Server] -= rem
		if n.flowOut[plan.Server] == 0 {
			n.idleObs.NoteFlowIdle(uint64(plan.Server))
		}
	}
}

// abandon records a transfer that exhausted its retries: the typed
// error joins the node's failure list and the elapsed time joins the
// latency distribution, so the loss is accounted for rather than
// silently dropped.
func (n *Node) abandon(e OpError) {
	n.stats.FailedTransfers++
	n.opErrors = append(n.opErrors, e)
	elapsed := float64(e.FailedAt - e.IssuedAt)
	if e.Write {
		n.writeLatencies = append(n.writeLatencies, elapsed)
	} else {
		n.latencies = append(n.latencies, elapsed)
	}
	n.tracef("client", "%v", e)
}

// countRetriedStrips adds the pieces of the re-issued plans to the
// strip-retry counter.
func (n *Node) countRetriedStrips(plans []pfs.ServerPlan) {
	for _, plan := range plans {
		n.stats.StripsRetried += uint64(len(plan.Pieces))
	}
}

// missingPlans filters plans down to the pieces whose strips have not
// arrived/acked yet.
func missingPlans(plans []pfs.ServerPlan, got map[int]bool) []pfs.ServerPlan {
	var out []pfs.ServerPlan
	for _, plan := range plans {
		var pieces []pfs.Piece
		for _, piece := range plan.Pieces {
			if !got[piece.GlobalStrip] {
				pieces = append(pieces, piece)
			}
		}
		if len(pieces) > 0 {
			cp := plan
			cp.Pieces = pieces
			out = append(out, cp)
		}
	}
	return out
}

// onNICQueueInterrupt is the MSI-X per-queue interrupt line (hardware
// RSS): the queue's vector is raised and the redirection table — not a
// software policy — decides the core. Hints are ignored, as static
// vector assignment cannot follow them.
func (n *Node) onNICQueueInterrupt(q int, now units.Time) {
	for _, f := range n.nic.DrainQueue(q) {
		if !n.headerOK(f) {
			n.nic.Free(f)
			continue
		}
		dest := n.ioapic.Raise(DataVector+apic.Vector(q), apic.NoHint, uint64(f.Src))
		n.recordTransit(f, now, dest)
		n.frameq[dest] = append(n.frameq[dest], f)
		n.tracef("apic", "msix q%d frame from node %d routed to core %d", q, f.Src, dest)
	}
}

// onNICInterrupt is the NIC interrupt line: for every drained frame the
// I/O APIC (under the installed policy) picks a handling core, and the
// frame is queued for that core's local-APIC delivery.
func (n *Node) onNICInterrupt(now units.Time) {
	for _, f := range n.nic.Drain() {
		if !n.headerOK(f) {
			n.nic.Free(f)
			continue
		}
		hint := netsim.ParseHint(f)
		h := apic.NoHint
		if hint.Valid && hint.Core < n.cfg.Cores {
			h = hint.Core
		}
		if n.cfg.CurrentCoreHint && h != apic.NoHint {
			// Policy (ii): re-resolve the hint against the process's
			// current core (it may have been migrated while blocked).
			if sd, ok := f.Body.(*pfs.StripData); ok {
				if rd, live := n.reads[sd.Tag]; live {
					h = rd.proc.core
				}
			}
		}
		dest := n.ioapic.Raise(DataVector, h, uint64(f.Src))
		n.recordTransit(f, now, dest)
		n.frameq[dest] = append(n.frameq[dest], f)
		n.tracef("apic", "frame from node %d (%v) routed to core %d", f.Src, hint, dest)
	}
}

// recordTransit emits the frame's fabric and ring-dwell spans (from the
// stamps the NIC layer left on it) and opens the steering span, which
// the local-APIC delivery closes. Only strip data is tracked — layout
// and ack traffic has no per-strip identity.
func (n *Node) recordTransit(f *netsim.Frame, now units.Time, dest int) {
	if n.spans == nil {
		return
	}
	sd, ok := f.Body.(*pfs.StripData)
	if !ok {
		return
	}
	cl, srv := int(n.cfg.Node), int(f.Src)
	n.spans.Emit(trace.Span{Phase: trace.PhaseFabric, Start: f.SentAt, End: f.DeliveredAt,
		Client: cl, Server: srv, Tag: sd.Tag, Strip: sd.GlobalStrip, Core: -1})
	n.spans.Emit(trace.Span{Phase: trace.PhaseRing, Start: f.DeliveredAt, End: now,
		Client: cl, Server: srv, Tag: sd.Tag, Strip: sd.GlobalStrip, Core: -1})
	n.spans.Begin(trace.PhaseSteer, now, cl, srv, sd.Tag, sd.GlobalStrip, dest)
}

// headerOK validates the frame's IPv4 header; a corrupted header is
// dropped at the stack entrance and counted.
func (n *Node) headerOK(f *netsim.Frame) bool {
	if _, _, err := netsim.UnmarshalIPv4(f.Header); err != nil {
		n.stats.HeaderDrops++
		n.tracef("driver", "dropping frame from node %d: %v", f.Src, err)
		return false
	}
	return true
}

// handleIRQ runs when a local APIC delivers the vector to a core: pop
// one frame and process it in interrupt context on that core.
func (n *Node) handleIRQ(core int, now units.Time) {
	if len(n.frameq[core]) == 0 {
		return // spurious (frame dropped by ring overflow)
	}
	f := n.frameq[core][0]
	n.frameq[core] = n.frameq[core][1:]

	c := n.cpu.Core(core)
	c.Submit(cpu.PrioSoftirq, cpu.CatIRQ, n.cfg.Costs.IRQEntry, nil)
	switch body := f.Body.(type) {
	case *pfs.StripData:
		if n.spans != nil {
			// The local APIC has delivered: the steering decision is
			// realized, interrupt handling starts.
			cl := int(n.cfg.Node)
			n.spans.End(trace.PhaseSteer, now, cl, body.Tag, body.GlobalStrip, core)
			n.spans.Begin(trace.PhaseIRQ, now, cl, int(f.Src), body.Tag, body.GlobalStrip, core)
		}
		cost := units.Time(float64(f.Payload) * n.cfg.Costs.SoftirqPerByte)
		src, seq := f.Src, f.FlowSeq // captured: the frame is freed below
		c.Submit(cpu.PrioSoftirq, cpu.CatSoftirq, cost, func(now units.Time) {
			n.stripArrived(core, src, seq, body, now)
		})
	case *pfs.WriteAck:
		c.Submit(cpu.PrioSoftirq, cpu.CatSoftirq, units.Microsecond, func(now units.Time) {
			n.ackArrived(body, now)
		})
	case *pfs.LayoutReply:
		c.Submit(cpu.PrioSoftirq, cpu.CatSoftirq, 2*units.Microsecond, func(units.Time) {
			n.layoutArrived(body)
		})
	default:
		// Mid-strip fragments (Fragment wire mode) and stray traffic:
		// protocol processing proportional to the bytes carried.
		cost := units.Microsecond + units.Time(float64(f.Payload)*n.cfg.Costs.SoftirqPerByte)
		c.Submit(cpu.PrioSoftirq, cpu.CatSoftirq, cost, nil)
	}
	// The body pointer and payload size were captured above; the frame
	// itself is consumed and can be recycled.
	n.nic.Free(f)
}

// stripArrived deposits the strip into the handling core's cache and
// completes the transfer when it was the last one. The block size is
// the strip's declared size: in Fragment wire mode the descriptor rides
// the final fragment, but the whole strip has landed by then. src and
// seq identify the delivering frame's flow and sender-side sequence;
// a sequence regression within one (transfer, server) stream means two
// frames of the flow completed softirq processing out of send order —
// the reordering the Flow Director pathology produces.
func (n *Node) stripArrived(core int, src netsim.NodeID, seq uint64, sd *pfs.StripData, now units.Time) {
	rd, ok := n.reads[sd.Tag]
	if !ok {
		return // transfer already complete or abandoned
	}
	if rd.got[sd.GlobalStrip] {
		n.stats.DuplicateStrips++
		return // duplicate from a retry race
	}
	rd.got[sd.GlobalStrip] = true
	if last, ok := rd.lastSeq[src]; ok && seq < last {
		n.stats.ReorderedFrames++
		if depth := last - seq; depth > n.stats.ReorderDepthMax {
			n.stats.ReorderDepthMax = depth
		}
	} else {
		rd.lastSeq[src] = seq
	}
	if n.spans != nil {
		n.spans.End(trace.PhaseIRQ, now, int(n.cfg.Node), sd.Tag, sd.GlobalStrip, core)
	}
	n.stripHist.Add(float64(now - rd.issuedAt))
	if n.reorderIssue {
		// Per-server latency EWMA for straggler-aware issue ordering.
		sample := float64(now - rd.issuedAt)
		if prev, ok := n.srvLat[src]; ok {
			n.srvLat[src] = 0.8*prev + 0.2*sample
		} else {
			n.srvLat[src] = sample
		}
	}
	if n.idleObs != nil {
		rd.srvLeft[src]--
		n.flowOut[src]--
		if n.flowOut[src] == 0 {
			n.idleObs.NoteFlowIdle(uint64(src))
		}
	}
	n.nextBlock++
	id := n.nextBlock
	n.caches.Fill(core, id, sd.Size)
	rd.blocks = append(rd.blocks, blockRef{id: id, size: sd.Size, strip: sd.GlobalStrip})
	rd.bytes += sd.Size
	rd.remaining--
	if rd.remaining == 0 {
		delete(n.reads, sd.Tag)
		rd.timer.Cancel()
		n.tracef("client", "transfer tag=%d complete (%v), waking proc %d on core %d",
			sd.Tag, rd.bytes, rd.proc.id, rd.proc.core)
		n.wake(rd, now)
	}
}

// ackArrived completes one written strip; the last acknowledgement
// wakes the writing process.
func (n *Node) ackArrived(ack *pfs.WriteAck, _ units.Time) {
	w, ok := n.writes[ack.Tag]
	if !ok {
		return
	}
	if w.acked[ack.GlobalStrip] {
		n.stats.DuplicateStrips++
		return // duplicate ack from a retried strip
	}
	w.acked[ack.GlobalStrip] = true
	w.remaining--
	if w.remaining > 0 {
		return
	}
	delete(n.writes, ack.Tag)
	w.timer.Cancel()
	p := w.proc
	n.tracef("client", "write tag=%d complete (%v) on core %d", ack.Tag, w.bytes, p.core)
	n.cpu.Core(p.core).Submit(cpu.PrioSoftirq, cpu.CatIRQ, n.cfg.Costs.WakeIPI, func(now units.Time) {
		n.stats.BytesWritten += w.bytes
		n.stats.WriteTransfers++
		n.writeLatencies = append(n.writeLatencies, float64(now-w.issuedAt))
		if w.done != nil {
			w.done(now)
		}
		n.freeWrite(w)
	})
}

// layoutArrived installs a layout and issues the reads parked on it.
func (n *Node) layoutArrived(rep *pfs.LayoutReply) {
	file, ok := n.openTags[rep.Tag]
	if !ok {
		return
	}
	delete(n.openTags, rep.Tag)
	if st := n.opens[file]; st != nil {
		st.timer.Cancel()
		delete(n.opens, file)
	}
	n.layouts[file] = rep.Layout
	parked := n.opening[file]
	delete(n.opening, file)
	for _, po := range parked {
		if po.isWrite {
			n.issueWrite(po.proc, file, po.offset, po.length, po.done)
		} else {
			n.issue(po.proc, file, po.offset, po.length, po.done)
		}
	}
}

// newRead returns a recycled (or fresh) read record.
func (n *Node) newRead() *read {
	if k := len(n.freeReads); k > 0 {
		rd := n.freeReads[k-1]
		n.freeReads = n.freeReads[:k-1]
		return rd
	}
	return &read{
		got:     make(map[int]bool),
		lastSeq: make(map[netsim.NodeID]uint64),
		srvLeft: make(map[netsim.NodeID]int),
	}
}

// freeRead recycles a finished read record, keeping its map and slice
// capacity. Callers guarantee no timer or pending closure still refers
// to it: the transfer is out of n.reads and its retry timer has fired
// or been cancelled.
func (n *Node) freeRead(rd *read) {
	clear(rd.got)
	clear(rd.lastSeq)
	clear(rd.srvLeft)
	got, lastSeq, srvLeft, blocks := rd.got, rd.lastSeq, rd.srvLeft, rd.blocks[:0]
	*rd = read{got: got, lastSeq: lastSeq, srvLeft: srvLeft, blocks: blocks}
	n.freeReads = append(n.freeReads, rd)
}

// newWrite returns a recycled (or fresh) write record.
func (n *Node) newWrite() *writeOp {
	if k := len(n.freeWrites); k > 0 {
		w := n.freeWrites[k-1]
		n.freeWrites = n.freeWrites[:k-1]
		return w
	}
	return &writeOp{acked: make(map[int]bool)}
}

// freeWrite recycles a finished write record under the same contract
// as freeRead.
func (n *Node) freeWrite(w *writeOp) {
	clear(w.acked)
	acked := w.acked
	*w = writeOp{acked: acked}
	n.freeWrites = append(n.freeWrites, w)
}

// wake delivers the wakeup IPI to the process's core and schedules
// consumption.
func (n *Node) wake(rd *read, _ units.Time) {
	p := rd.proc
	c := n.cpu.Core(p.core)
	c.Submit(cpu.PrioSoftirq, cpu.CatIRQ, n.cfg.Costs.WakeIPI, func(units.Time) {
		n.consume(rd)
	})
}

// consume models the process reading every strip of the completed
// transfer on its core: stall costs depend on where each strip resides,
// then the per-byte compute runs, then the transfer's done event fires.
func (n *Node) consume(rd *read) {
	p := rd.proc
	c := n.cpu.Core(p.core)
	consumeStart := n.eng.Now()
	lineSize := n.caches.LineSize()
	var remoteLines, farLines, l3Lines, l3FarLines, memLines, localLines int64
	for _, b := range rd.blocks {
		lines := int64((b.size + lineSize - 1) / lineSize)
		kind, supplier := n.caches.ConsumeFrom(p.core, b.id)
		switch kind {
		case cache.HitLocal:
			localLines += lines
		case cache.HitRemote:
			if n.sameSocket(p.core, supplier) {
				remoteLines += lines
			} else {
				farLines += lines
			}
		case cache.HitL3:
			if n.sameSocket(p.core, supplier) {
				l3Lines += lines
			} else {
				l3FarLines += lines
			}
		case cache.MissMemory:
			memLines += lines
		}
		n.caches.Release(b.id)
	}
	costs := n.cfg.Costs
	// Compute-phase working-set accesses: mostly hits, with a small
	// scheduling-independent background miss floor.
	totalLines := localLines + remoteLines + farLines + l3Lines + l3FarLines + memLines
	if extra := uint64(float64(totalLines) * costs.ComputeAccessesPerLine); extra > 0 {
		bgMisses := uint64(float64(extra) * costs.BackgroundMissRate)
		n.caches.ChargeBackground(p.core, extra-bgMisses, bgMisses)
		memLines += int64(bgMisses)
	}
	far := costs.RemoteLineFar
	if far <= 0 {
		far = costs.RemoteLine
	}
	if d := units.Time(remoteLines)*costs.RemoteLine + units.Time(farLines)*far; d > 0 {
		c.Submit(cpu.PrioProcess, cpu.CatMigration, d, nil)
	}
	memStall := units.Time(memLines) * costs.MemLine
	memStall += units.Time(l3Lines) * costs.L3Line
	memStall += units.Time(l3FarLines) * far // cross-socket L3 rides HT
	if memStall > 0 {
		c.Submit(cpu.PrioProcess, cpu.CatMemStall, memStall, nil)
	}
	compute := units.Time(localLines)*costs.LocalLine +
		units.Time(float64(rd.bytes)*costs.ComputePerByte)
	c.Submit(cpu.PrioProcess, cpu.CatCompute, compute, func(now units.Time) {
		n.stats.BytesRead += rd.bytes
		if rd.partial {
			// Graceful degradation: the strips in hand reached the
			// application, but the transfer is recorded as a typed partial
			// result, not a completed one.
			n.stats.PartialTransfers++
			n.stats.PartialBytes += rd.bytes
			n.opErrors = append(n.opErrors, OpError{Client: n.cfg.Node, File: rd.file,
				Tag: rd.tag, Retries: rd.retries, Partial: true, BytesDelivered: rd.bytes,
				StripsMissing: rd.remaining, IssuedAt: rd.issuedAt, FailedAt: now})
		} else {
			n.stats.Transfers++
		}
		n.latencies = append(n.latencies, float64(now-rd.issuedAt))
		if n.spans != nil {
			// The whole transfer is consumed as one batch; every strip's
			// consume span covers the wake→compute-done window on the
			// process's core.
			for _, b := range rd.blocks {
				n.spans.Emit(trace.Span{Phase: trace.PhaseConsume,
					Start: consumeStart, End: now,
					Client: int(n.cfg.Node), Server: -1, Tag: rd.tag,
					Strip: b.strip, Core: p.core})
			}
		}
		if rd.done != nil {
			rd.done(now)
		}
		n.freeRead(rd)
	})
}

// sameSocket reports whether cores a and b share a socket under the
// configured topology (always true for SocketSize 0 — uniform).
func (n *Node) sameSocket(a, b int) bool {
	ss := n.cfg.Costs.SocketSize
	if ss <= 0 || b < 0 {
		return true
	}
	return a/ss == b/ss
}

// TransferBetween models an intra-node hand-off of bytes from the
// cache of srcCore to dstCore — the redistribution step of collective
// I/O (or any shared-memory exchange between co-located processes).
// The destination core pays per-line migration stalls priced by socket
// distance; a same-core transfer costs only local re-reads. done fires
// when the destination has absorbed the bytes.
func (n *Node) TransferBetween(srcCore, dstCore int, bytes units.Bytes, done sim.Event) {
	if bytes <= 0 {
		panic("client: TransferBetween with non-positive bytes")
	}
	if srcCore < 0 || srcCore >= n.cfg.Cores || dstCore < 0 || dstCore >= n.cfg.Cores {
		panic("client: TransferBetween core out of range")
	}
	costs := n.cfg.Costs
	lines := int64((bytes + n.caches.LineSize() - 1) / n.caches.LineSize())
	c := n.cpu.Core(dstCore)
	if srcCore == dstCore {
		n.caches.ChargeHits(dstCore, uint64(lines))
		c.Submit(cpu.PrioProcess, cpu.CatCompute, units.Time(lines)*costs.LocalLine, done)
		return
	}
	perLine := costs.RemoteLine
	if !n.sameSocket(srcCore, dstCore) && costs.RemoteLineFar > 0 {
		perLine = costs.RemoteLineFar
	}
	n.caches.ChargeRemote(dstCore, uint64(lines))
	c.Submit(cpu.PrioProcess, cpu.CatMigration, units.Time(lines)*perLine, done)
}

// leastLoadedCore returns the core with the smallest busy time,
// preferring any core other than exclude.
func (n *Node) leastLoadedCore(exclude int) int {
	best, bestBusy := exclude, units.Time(-1)
	for i := 0; i < n.cfg.Cores; i++ {
		if i == exclude {
			continue
		}
		busy := n.cpu.Core(i).Stats().Busy
		if bestBusy < 0 || busy < bestBusy {
			best, bestBusy = i, busy
		}
	}
	return best
}

// NICIngressBusy returns cumulative busy time of the NIC's receive
// serializer — the gauge for "is the client NIC the bottleneck".
func (n *Node) NICIngressBusy() units.Time { return n.nic.IngressBusy() }
