package netsim

import (
	"fmt"

	"sais/internal/sim"
	"sais/internal/units"
)

// NodeID identifies a node (client or server) attached to the fabric.
type NodeID int

// Frame is one transfer unit on the wire. In the default configuration
// a frame carries a whole strip (per-MTU header overhead is accounted
// arithmetically and the NIC raises one interrupt per strip, matching
// hardware interrupt coalescing); with Fragment=true the NIC emits one
// frame per MTU and coalescing is explicit.
type Frame struct {
	Src, Dst NodeID
	Payload  units.Bytes // upper-layer payload bytes
	Hint     AffHint     // aff_core_id carried in the IP options
	Header   []byte      // marshaled IPv4 header (wire truth for the hint)
	Body     any         // opaque upper-layer descriptor (strip, request)
	// FlowSeq is the sender-local per-destination sequence number,
	// stamped at frame assembly. Receivers compare FlowSeq within one
	// (source, stream) to detect out-of-order completion — the metric
	// behind the Flow Director reordering pathology. Like fwdSeq it
	// advances only with the sender's own progress, so it is identical
	// across shard layouts.
	FlowSeq uint64

	// Lifecycle stamps for span tracing: when the frame entered the
	// sender's egress queue and when it landed in the receiver's rx
	// ring. Two plain stores per frame; consumed only when a SpanLog is
	// attached downstream.
	SentAt      units.Time
	DeliveredAt units.Time
}

// WireBytes returns the bytes the frame occupies on the wire given the
// per-packet overhead and MTU of the transmitting NIC.
func wireBytes(payload units.Bytes, mtu, overhead units.Bytes) units.Bytes {
	if payload <= 0 {
		return overhead
	}
	packets := (payload + mtu - 1) / mtu
	return payload + packets*overhead
}

// BondMode selects how frames spread over a multi-port NIC.
type BondMode int

// Bonding modes, mirroring the Linux bonding driver's balance-rr and
// 802.3ad (flow-hash) behaviours.
const (
	BondRoundRobin BondMode = iota // spray frames across ports
	BondFlowHash                   // pin each peer's traffic to one port
)

// NICConfig sizes one network interface.
type NICConfig struct {
	Rate     units.Rate  // per-port serialization rate (e.g. 1 Gbit)
	Ports    int         // bonded ports; 0/1 = single port
	Bond     BondMode    // how frames spread over the ports
	MTU      units.Bytes // payload bytes per packet
	Overhead units.Bytes // per-packet header bytes (Ethernet+IP+TCP)
	RingSize int         // rx descriptor ring capacity (per queue), in frames
	Fragment bool        // emit one frame per MTU instead of per message
	// RxQueues is the number of MSI-X receive queues; incoming frames
	// are flow-hashed over them and each queue raises its own interrupt
	// (hardware RSS). 0/1 = a single queue.
	RxQueues int
	// Coalescing: an interrupt fires when CoalesceFrames frames are
	// pending or CoalesceDelay after the first pending frame, whichever
	// comes first. CoalesceFrames <= 1 with zero delay means one
	// interrupt per frame.
	CoalesceFrames int
	CoalesceDelay  units.Time
}

// DefaultNICConfig returns a BCM5715C-like configuration at the given
// rate: 1500-byte MTU, 78 bytes of Ethernet+IP+TCP overhead per packet,
// a 512-descriptor ring, and per-message interrupts.
func DefaultNICConfig(rate units.Rate) NICConfig {
	return NICConfig{
		Rate:           rate,
		MTU:            1500,
		Overhead:       78,
		RingSize:       512,
		CoalesceFrames: 1,
	}
}

func (c NICConfig) validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("netsim: NIC rate %v must be positive", c.Rate)
	}
	if c.MTU <= 0 {
		return fmt.Errorf("netsim: MTU %d must be positive", c.MTU)
	}
	if c.Overhead < 0 {
		return fmt.Errorf("netsim: negative overhead")
	}
	if c.RingSize <= 0 {
		return fmt.Errorf("netsim: ring size %d must be positive", c.RingSize)
	}
	if c.CoalesceFrames < 1 {
		return fmt.Errorf("netsim: coalesce frames %d must be >= 1", c.CoalesceFrames)
	}
	if c.Ports < 0 {
		return fmt.Errorf("netsim: negative port count")
	}
	if c.RxQueues < 0 {
		return fmt.Errorf("netsim: negative rx queue count")
	}
	return nil
}

// rxQueues returns the effective receive-queue count.
func (c NICConfig) rxQueues() int {
	if c.RxQueues < 1 {
		return 1
	}
	return c.RxQueues
}

// ports returns the effective port count.
func (c NICConfig) ports() int {
	if c.Ports < 1 {
		return 1
	}
	return c.Ports
}

// NICStats counts traffic through one NIC.
type NICStats struct {
	TxFrames   uint64
	TxWire     units.Bytes // wire bytes including per-packet overhead
	TxPayload  units.Bytes
	RxFrames   uint64
	RxPayload  units.Bytes
	RingDrops  uint64 // frames lost to a full rx ring
	Interrupts uint64
}

// NIC is one node's network interface: an egress serializer, an ingress
// serializer (its half of the switch port), a receive ring, and an
// interrupt line.
type NIC struct {
	id      NodeID
	cfg     NICConfig
	eng     *sim.Engine
	fab     *Fabric
	egress  []*sim.Server // one serializer per bonded port
	ingress []*sim.Server
	txNext  int // round-robin bonding state
	rxNext  int
	// fwdSeq counts frames this NIC has handed to the switch — the
	// per-source sequence in FrameKey. It advances with the source
	// node's own progress only, so it is identical across shard
	// layouts.
	fwdSeq uint64
	// txSeq numbers outbound frames per destination for Frame.FlowSeq.
	txSeq map[NodeID]uint64
	// Per-receive-queue state: descriptor ring and coalescing.
	rings      [][]*Frame
	pending    []int
	coalesceTm []sim.Timer
	drainBuf   []*Frame // reused backing store for Drain/DrainQueue
	stats      NICStats

	raise      func(now units.Time)        // single-queue interrupt line
	raiseQueue func(q int, now units.Time) // MSI-X per-queue line

	// svcScale, when set, multiplies every serialization cost by a
	// load-dependent factor sampled at dispatch time — the hybrid
	// engine's analytic background traffic contending for this NIC's
	// ports (DESIGN.md §14). nil means the classic fixed-cost path.
	//saisvet:nilhook
	svcScale func(now units.Time) float64

	nextIPID uint16
	optBuf   [4]byte // scratch for the aff_core_id options field
}

// NewNIC builds a NIC for node id. It panics on invalid configuration.
func NewNIC(eng *sim.Engine, id NodeID, cfg NICConfig) *NIC {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	n := &NIC{id: id, cfg: cfg, eng: eng, txSeq: make(map[NodeID]uint64)}
	for p := 0; p < cfg.ports(); p++ {
		n.egress = append(n.egress, sim.NewServer(eng, fmt.Sprintf("nic%d-tx%d", id, p)))
		n.ingress = append(n.ingress, sim.NewServer(eng, fmt.Sprintf("nic%d-rx%d", id, p)))
	}
	q := cfg.rxQueues()
	n.rings = make([][]*Frame, q)
	n.pending = make([]int, q)
	n.coalesceTm = make([]sim.Timer, q)
	return n
}

// RxQueueCount returns the number of receive queues.
func (n *NIC) RxQueueCount() int { return len(n.rings) }

// queueFor flow-hashes a source onto a receive queue.
func (n *NIC) queueFor(src NodeID) int {
	if len(n.rings) == 1 {
		return 0
	}
	x := uint64(src)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(len(n.rings)))
}

// pickPort selects the bonded port for traffic to/from peer.
func (n *NIC) pickPort(servers []*sim.Server, peer NodeID, rr *int) *sim.Server {
	if len(servers) == 1 {
		return servers[0]
	}
	switch n.cfg.Bond {
	case BondFlowHash:
		x := uint64(peer)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		return servers[x%uint64(len(servers))]
	default: // BondRoundRobin
		s := servers[*rr%len(servers)]
		*rr++
		return s
	}
}

// ID returns the node this NIC belongs to.
func (n *NIC) ID() NodeID { return n.id }

// Config returns the NIC configuration.
func (n *NIC) Config() NICConfig { return n.cfg }

// Stats returns a copy of the traffic counters.
func (n *NIC) Stats() NICStats { return n.stats }

// RingLen returns the number of frames waiting across all rx rings.
func (n *NIC) RingLen() int {
	total := 0
	for _, r := range n.rings {
		total += len(r)
	}
	return total
}

// SetInterruptHandler installs the interrupt line callback — in the
// full client model this is the MSI raise into the I/O APIC. With
// multiple rx queues it fires for any queue; use SetQueueHandler to
// learn which one.
func (n *NIC) SetInterruptHandler(fn func(now units.Time)) { n.raise = fn }

// SetQueueHandler installs a per-queue (MSI-X) interrupt callback;
// it takes precedence over the single handler when set.
func (n *NIC) SetQueueHandler(fn func(q int, now units.Time)) { n.raiseQueue = fn }

// SetServiceScale installs a load-dependent service-time multiplier:
// every tx/rx serialization cost is scaled by fn(dispatchTime). The
// hybrid workload engine uses it to let analytic background flows slow
// this NIC without materializing their frames. fn must be ≥ 1,
// deterministic, and depend only on this node's state (layout
// invariance). nil restores the fixed-cost path.
func (n *NIC) SetServiceScale(fn func(now units.Time) float64) { n.svcScale = fn }

// serialize submits one wire transfer to a port serializer, applying
// the service-scale hook when installed. The classic path (no hook)
// stays on the fixed-cost Submit so its event pattern — and therefore
// every byte of classic-run output — is untouched.
func (n *NIC) serialize(port *sim.Server, wire units.Bytes, done sim.Event) {
	base := n.cfg.Rate.TimeFor(wire)
	if n.svcScale == nil {
		port.Submit(base, done)
		return
	}
	port.SubmitFunc(func(start units.Time) units.Time {
		return units.Time(float64(base) * n.svcScale(start))
	}, done)
}

// buildHeader marshals an IPv4 header carrying the hint into buf
// (reusing a recycled frame's Header capacity); the simulator treats
// the bytes as the authoritative carrier of aff_core_id (SrcParser
// re-parses them on receive).
func (n *NIC) buildHeader(buf []byte, payload units.Bytes, hint AffHint) []byte {
	if hint.Valid {
		op, err := EncodeAffOption(hint.Core)
		if err != nil {
			panic(err) // hint cores are validated upstream
		}
		n.optBuf = [4]byte{op, optionEOL, optionEOL, optionEOL}
	}
	total := payload
	if max := units.Bytes(65535 - 60); total > max {
		total = max // header field is 16-bit; size accounting uses Payload
	}
	h := IPv4Header{
		ID:       n.nextIPID,
		TTL:      64,
		Protocol: 6, // TCP
		SrcIP:    0x0a000000 | uint32(n.id),
		DstIP:    0x0a000000,
	}
	if hint.Valid {
		h.Options = n.optBuf[:]
	}
	h.TotalLen = uint16(int(total) + h.HeaderLen())
	n.nextIPID++
	b, err := h.MarshalAppend(buf)
	if err != nil {
		panic(err)
	}
	return b
}

// Send transmits payload bytes to dst with the given hint and opaque
// descriptor. Frames are serialized at the NIC rate and handed to the
// fabric. In Fragment mode the payload is split into MTU-sized frames,
// each carrying its own header copy of the hint (HintCapsuler puts
// aff_core_id into every return packet).
func (n *NIC) Send(dst NodeID, payload units.Bytes, hint AffHint, body any) {
	if n.fab == nil {
		panic("netsim: NIC not attached to a fabric")
	}
	if payload < 0 {
		panic("netsim: negative payload")
	}
	if !n.cfg.Fragment {
		n.sendFrame(n.newFrame(dst, payload, hint, body))
		return
	}
	remaining := payload
	for remaining > 0 {
		sz := remaining
		if sz > n.cfg.MTU {
			sz = n.cfg.MTU
		}
		remaining -= sz
		var b any
		if remaining == 0 {
			b = body // descriptor rides on the final fragment
		}
		n.sendFrame(n.newFrame(dst, sz, hint, b))
	}
	if payload == 0 {
		n.sendFrame(n.newFrame(dst, 0, hint, body))
	}
}

// newFrame assembles an outbound frame from the fabric pool.
func (n *NIC) newFrame(dst NodeID, payload units.Bytes, hint AffHint, body any) *Frame {
	f := n.fab.NewFrame()
	f.Src, f.Dst, f.Payload, f.Hint, f.Body = n.id, dst, payload, hint, body
	f.Header = n.buildHeader(f.Header[:0], payload, hint)
	f.SentAt = n.eng.Now()
	f.FlowSeq = n.txSeq[dst]
	n.txSeq[dst]++
	return f
}

// Free returns a consumed frame to the fabric pool. The NIC driver's
// rx loop calls it once the frame's body has been dispatched; the
// frame must not be referenced afterwards. A nil fabric (unattached
// NIC) or nil frame is a no-op.
func (n *NIC) Free(f *Frame) {
	if n.fab != nil && f != nil {
		n.fab.FreeFrame(f)
	}
}

func (n *NIC) sendFrame(f *Frame) {
	wire := wireBytes(f.Payload, n.cfg.MTU, n.cfg.Overhead)
	n.stats.TxFrames++
	n.stats.TxWire += wire
	n.stats.TxPayload += f.Payload
	port := n.pickPort(n.egress, f.Dst, &n.txNext)
	n.serialize(port, wire, func(units.Time) {
		n.fab.forward(f, wire)
	})
}

// receive is called by the fabric once the frame has crossed the switch;
// the ingress server models this NIC's port serialization.
func (n *NIC) receive(f *Frame, wire units.Bytes) {
	port := n.pickPort(n.ingress, f.Src, &n.rxNext)
	n.serialize(port, wire, func(now units.Time) {
		n.deliver(f, now)
	})
}

func (n *NIC) deliver(f *Frame, now units.Time) {
	q := n.queueFor(f.Src)
	if len(n.rings[q]) >= n.cfg.RingSize {
		n.stats.RingDrops++
		n.fab.FreeFrame(f)
		return
	}
	f.DeliveredAt = now
	n.rings[q] = append(n.rings[q], f)
	n.stats.RxFrames++
	n.stats.RxPayload += f.Payload
	n.pending[q]++
	if n.pending[q] >= n.cfg.CoalesceFrames {
		n.fire(q, now)
		return
	}
	if !n.coalesceTm[q].Pending() {
		n.coalesceTm[q] = n.eng.After(n.cfg.CoalesceDelay, func(at units.Time) {
			n.fire(q, at)
		})
	}
}

func (n *NIC) fire(q int, now units.Time) {
	if n.pending[q] == 0 {
		return
	}
	n.coalesceTm[q].Cancel()
	n.pending[q] = 0
	n.stats.Interrupts++
	if n.raiseQueue != nil {
		n.raiseQueue(q, now)
		return
	}
	if n.raise != nil {
		n.raise(now)
	}
}

// Drain removes and returns every frame across all rx rings — the NIC
// driver's rx loop. Parsing the hint out of the header bytes (the
// SrcParser step) is the caller's job via ParseHint. The returned
// slice is reused: it is valid only until the next Drain/DrainQueue
// call on this NIC.
func (n *NIC) Drain() []*Frame {
	out := n.drainBuf[:0]
	for q := range n.rings {
		out = append(out, n.rings[q]...)
		n.rings[q] = n.rings[q][:0]
		n.pending[q] = 0
	}
	n.drainBuf = out
	return out
}

// DrainQueue removes and returns the frames of one rx queue. The
// returned slice is reused, like Drain's.
func (n *NIC) DrainQueue(q int) []*Frame {
	out := append(n.drainBuf[:0], n.rings[q]...)
	n.rings[q] = n.rings[q][:0]
	n.pending[q] = 0
	n.drainBuf = out
	return out
}

// ParseHint recovers the affinity hint from the frame's marshaled IPv4
// header — the client-side SrcParser. It returns no hint for frames
// with unparseable headers rather than failing: the driver must
// tolerate any traffic.
func ParseHint(f *Frame) AffHint {
	h, _, err := UnmarshalIPv4(f.Header)
	if err != nil {
		return AffHint{}
	}
	return ParseOptions(h.Options)
}

// IngressBusy returns the cumulative busy time of the receive-side
// serializers, summed over bonded ports.
func (n *NIC) IngressBusy() units.Time {
	var t units.Time
	for _, p := range n.ingress {
		t += p.BusyTime()
	}
	return t
}
