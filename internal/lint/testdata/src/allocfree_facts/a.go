// Fixture for allocfree's cross-package facts: the dependency's
// annotation and proof status arrive through Pass.Deps exactly as a
// dependency .vetx file would carry them.
package main

import "sais/internal/afdep"

//saisvet:allocfree
func hot(x int) int {
	afdep.Fast(x) // no finding: annotated allocation-free in its own package
	afdep.Slow()  // want `call to sais/internal/afdep.Slow, which is not allocation-free .slice literal`
	return x
}

func main() {}
