package cache

import "fmt"

// Directory is a MESI-lite coherence directory over a set of per-core
// LineCaches. A read on one core that hits another core's Modified copy
// is the "data migration" the paper measures: the line is transferred
// cache-to-cache, downgrading the owner to Shared.
//
// Access outcomes are classified so the caller can assign the right
// latency to each (local hit, remote cache-to-cache transfer, memory
// fill).
type Directory struct {
	caches []*LineCache
	stats  DirectoryStats
}

// AccessKind classifies where a requested line was found.
type AccessKind uint8

// Access outcomes.
const (
	// HitLocal: the line was in the requesting core's own cache.
	HitLocal AccessKind = iota
	// HitRemote: another core's cache supplied the line
	// (cache-to-cache migration — the expensive case, cost M).
	HitRemote
	// MissMemory: no cache held the line; filled from memory.
	MissMemory
	// HitL3: supplied by a shared last-level (victim) cache — cheaper
	// than DRAM, dearer than a local hit. Only produced by a System
	// configured with an L3.
	HitL3
)

func (k AccessKind) String() string {
	switch k {
	case HitLocal:
		return "local-hit"
	case HitRemote:
		return "remote-hit"
	case MissMemory:
		return "memory-miss"
	case HitL3:
		return "l3-hit"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// DirectoryStats aggregates coherence traffic.
type DirectoryStats struct {
	LocalHits       uint64
	RemoteTransfers uint64
	MemoryFills     uint64
	Invalidations   uint64
	WriteBacks      uint64
}

// NewDirectory builds a directory over n cores with identical geometry.
func NewDirectory(n int, cfg LineCacheConfig) *Directory {
	if n <= 0 {
		panic("cache: directory needs at least one core")
	}
	caches := make([]*LineCache, n)
	for i := range caches {
		caches[i] = NewLineCache(i, cfg)
	}
	return &Directory{caches: caches}
}

// Cores returns the number of private caches.
func (d *Directory) Cores() int { return len(d.caches) }

// Cache returns core's private cache for inspection.
func (d *Directory) Cache(core int) *LineCache { return d.caches[core] }

// Stats returns a copy of the coherence counters.
func (d *Directory) Stats() DirectoryStats { return d.stats }

// Read performs a coherent read of addr by core. It returns where the
// data came from.
func (d *Directory) Read(core int, addr LineAddr) AccessKind {
	own := d.caches[core]
	if own.Lookup(addr) != Invalid {
		d.stats.LocalHits++
		return HitLocal
	}
	// Local miss already counted by Lookup. Search peers.
	for i, c := range d.caches {
		if i == core {
			continue
		}
		if c.Contains(addr) {
			// Cache-to-cache transfer; both copies end Shared.
			set := c.setFor(addr)
			for j := range set {
				if set[j].state != Invalid && set[j].addr == addr {
					if set[j].state == Modified {
						d.stats.WriteBacks++
					}
					set[j].state = Shared
					break
				}
			}
			d.insertEvict(core, addr, Shared)
			d.stats.RemoteTransfers++
			return HitRemote
		}
	}
	d.insertEvict(core, addr, Shared)
	d.stats.MemoryFills++
	return MissMemory
}

// Write performs a coherent write of addr by core, invalidating every
// other copy (the MESI upgrade). It returns where the data came from.
func (d *Directory) Write(core int, addr LineAddr) AccessKind {
	own := d.caches[core]
	kind := MissMemory
	hit := own.Lookup(addr) != Invalid
	if hit {
		kind = HitLocal
		d.stats.LocalHits++
	}
	remote := false
	for i, c := range d.caches {
		if i == core {
			continue
		}
		if c.Invalidate(addr) {
			d.stats.Invalidations++
			remote = true
		}
	}
	if !hit {
		if remote {
			kind = HitRemote
			d.stats.RemoteTransfers++
		} else {
			d.stats.MemoryFills++
		}
	}
	d.insertEvict(core, addr, Modified)
	return kind
}

// FillModified installs addr into core's cache in Modified state
// without a lookup — the model of DMA + softirq protocol processing
// depositing fresh strip data into the handling core's cache.
func (d *Directory) FillModified(core int, addr LineAddr) {
	for i, c := range d.caches {
		if i == core {
			continue
		}
		if c.Invalidate(addr) {
			d.stats.Invalidations++
		}
	}
	d.insertEvict(core, addr, Modified)
}

// insertEvict inserts and accounts a write-back if a Modified victim is
// evicted.
func (d *Directory) insertEvict(core int, addr LineAddr, st LineState) {
	c := d.caches[core]
	set := c.setFor(addr)
	// Check the prospective victim's state for write-back accounting.
	victimModified := false
	if !c.Contains(addr) {
		free := false
		lruIdx, lruStamp := -1, ^uint64(0)
		for i := range set {
			if set[i].state == Invalid {
				free = true
				break
			}
			if set[i].lru < lruStamp {
				lruStamp = set[i].lru
				lruIdx = i
			}
		}
		if !free && lruIdx >= 0 && set[lruIdx].state == Modified {
			victimModified = true
		}
	}
	if _, evicted := c.Insert(addr, st); evicted && victimModified {
		d.stats.WriteBacks++
	}
}

// Owners returns the cores currently holding addr, for invariants in
// tests.
func (d *Directory) Owners(addr LineAddr) []int {
	var owners []int
	for i, c := range d.caches {
		if c.Contains(addr) {
			owners = append(owners, i)
		}
	}
	return owners
}

// CheckCoherence verifies the single-writer/multi-reader invariant for
// addr: at most one Modified copy, and a Modified copy excludes all
// others. It returns an error describing any violation.
func (d *Directory) CheckCoherence(addr LineAddr) error {
	modified, shared := 0, 0
	for _, c := range d.caches {
		set := c.setFor(addr)
		for j := range set {
			if set[j].state != Invalid && set[j].addr == addr {
				switch set[j].state {
				case Modified:
					modified++
				case Shared:
					shared++
				}
			}
		}
	}
	if modified > 1 {
		return fmt.Errorf("cache: %d Modified copies of line %#x", modified, uint64(addr))
	}
	if modified == 1 && shared > 0 {
		return fmt.Errorf("cache: line %#x Modified alongside %d Shared copies", uint64(addr), shared)
	}
	return nil
}
