// Fixture for the package-level waiver, type-checked under a
// deterministic package path: the header directive below waives the
// goroutine rule for the whole package, the way internal/shard does
// for its barrier-synchronized workers. The other strict rules must
// keep firing — a waiver names exactly one directive.
//
//lint:package goroutine barrier-synchronized workers, joined every round
package shard

type state struct {
	counts map[int]int
}

// round may spawn workers freely under the package waiver.
func round(fns []func()) {
	done := make(chan struct{})
	for _, fn := range fns {
		fn := fn
		go func() { fn(); done <- struct{}{} }()
	}
	for range fns {
		<-done
	}
}

// merge shows the waiver is scoped to its named directive: map
// iteration is still a finding here.
func merge(s state) int {
	sum := 0
	for k, v := range s.counts { // want "range over map in deterministic package"
		sum += k + v
	}
	return sum
}
