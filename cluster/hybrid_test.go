package cluster_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"sais/cluster"
	"sais/internal/flowsim"
	"sais/internal/irqsched"
	"sais/internal/metrics"
	"sais/internal/trace"
	"sais/internal/units"
)

// hybridBase is the hybrid-mode differential configuration: a sharded
// test cluster (mirroring shardedBase) carrying 100k analytic
// background users in a two-tenant mix that exercises every flowsim
// path — a colocated diurnal tenant loading the foreground client NICs
// and a bursty tenant concentrated on a hot-server subset.
func hybridBase() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Clients = 3
	cfg.Servers = 5
	cfg.CoresPerClient = 4
	cfg.ProcsPerClient = 2
	cfg.BytesPerProc = 2 * units.MiB
	cfg.Policy = irqsched.PolicySourceAware
	cfg.BackgroundUsers = 100000
	cfg.TenantMix = []flowsim.TenantShare{
		{Name: "diurnal", Share: 0.6, PerUserRate: 8000, Shape: "diurnal",
			Period: 8 * units.Millisecond, Amplitude: 0.8, Colocate: 0.3},
		{Name: "burst", Share: 0.4, PerUserRate: 10000, Shape: "burst",
			Period: 5 * units.Millisecond, Duty: 0.3, HotServers: 2},
	}
	return cfg
}

// hybridLayouts is the shard × worker matrix the hybrid differentials
// sweep (the issue's {1,2,4} × {1,4}; the reference run is {1,1}).
var hybridLayouts = []struct{ shards, workers int }{
	{2, 1}, {2, 4}, {4, 1}, {4, 4},
}

// TestHybridShardedByteIdentity: the analytic background engine must
// not break the sharding contract — same Result bytes (including the
// Background* rollups) for every layout.
func TestHybridShardedByteIdentity(t *testing.T) {
	variants := []struct {
		name string
		mut  func(*cluster.Config)
	}{
		{"two-tenant", func(cfg *cluster.Config) {}},
		{"rss", func(cfg *cluster.Config) { cfg.RSSQueues = 4 }},
		{"server-only", func(cfg *cluster.Config) {
			cfg.TenantMix = []flowsim.TenantShare{
				{Name: "bulk", Share: 1, PerUserRate: 12000},
			}
		}},
		{"overload", func(cfg *cluster.Config) {
			// Push the hot servers past saturation so the backlog and
			// slowdown-clamp paths are exercised across layouts too.
			cfg.TenantMix = []flowsim.TenantShare{
				{Name: "diurnal", Share: 0.5, PerUserRate: 20000, Shape: "diurnal",
					Period: 8 * units.Millisecond, Amplitude: 0.8, Colocate: 0.3},
				{Name: "hot", Share: 0.5, PerUserRate: 40000, HotServers: 1},
			}
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := hybridBase()
			v.mut(&cfg)
			ref := resultJSON(t, cfg)
			var res cluster.Result
			if err := json.Unmarshal(ref, &res); err != nil {
				t.Fatal(err)
			}
			if res.BackgroundOfferedBytes <= 0 || res.BackgroundServedBytes <= 0 {
				t.Fatalf("no background traffic accounted: %s", ref)
			}
			for _, l := range hybridLayouts {
				c := cfg
				c.Shards, c.Workers = l.shards, l.workers
				got := resultJSON(t, c)
				if !bytes.Equal(ref, got) {
					t.Errorf("shards=%d workers=%d diverged from single-engine run:\nref %s\ngot %s",
						l.shards, l.workers, ref, got)
				}
			}
		})
	}
}

// TestHybridTraceIdentity: the foreground cohort's span log — the part
// of the run that keeps full fidelity — exports byte-identically across
// layouts under hybrid load.
func TestHybridTraceIdentity(t *testing.T) {
	cfg := hybridBase()
	run := func(shards, workers int) (int, uint64, []byte) {
		c := cfg
		c.Shards, c.Workers = shards, workers
		_, log, err := cluster.RunSpanned(c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := log.ExportChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return log.Len(), log.Orphans(), buf.Bytes()
	}
	spans, orphans, ref := run(0, 0)
	if spans == 0 {
		t.Fatal("reference run produced no spans")
	}
	for _, l := range hybridLayouts {
		s, o, got := run(l.shards, l.workers)
		if s != spans || o != orphans {
			t.Fatalf("shards=%d workers=%d: %d spans / %d orphans, want %d / %d",
				l.shards, l.workers, s, o, spans, orphans)
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("shards=%d workers=%d: trace export diverged (%d vs %d bytes)",
				l.shards, l.workers, len(got), len(ref))
		}
	}
}

// TestHybridValidationUniform (satellite 2): every invalid hybrid
// config is rejected with the same typed error at every shard count —
// the degrade-link<1 uniformity precedent. A shards=1 run must never
// accept a config a sharded run would refuse.
func TestHybridValidationUniform(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*cluster.Config)
		want error
	}{
		{"users without mix", func(c *cluster.Config) {
			c.TenantMix = nil
		}, flowsim.ErrNoTenantMix},
		{"negative rate", func(c *cluster.Config) {
			c.TenantMix = []flowsim.TenantShare{{Name: "a", Share: 1, PerUserRate: -5}}
		}, flowsim.ErrNegativeRate},
		{"shares not summing", func(c *cluster.Config) {
			c.TenantMix = []flowsim.TenantShare{
				{Name: "a", Share: 0.5, PerUserRate: 100},
				{Name: "b", Share: 0.3, PerUserRate: 100},
			}
		}, flowsim.ErrShareSum},
		{"bad shape", func(c *cluster.Config) {
			c.TenantMix = []flowsim.TenantShare{{Name: "a", Share: 1, PerUserRate: 100, Shape: "sawtooth"}}
		}, flowsim.ErrBadShape},
		{"diurnal without period", func(c *cluster.Config) {
			c.TenantMix = []flowsim.TenantShare{{Name: "a", Share: 1, PerUserRate: 100, Shape: "diurnal"}}
		}, flowsim.ErrBadPeriod},
		{"mix without users", func(c *cluster.Config) {
			// A stray mix with no population is validated too: shares
			// that don't sum must be surfaced, not silently ignored.
			c.BackgroundUsers = 0
			c.TenantMix = []flowsim.TenantShare{{Name: "a", Share: 0.25, PerUserRate: 100}}
		}, flowsim.ErrShareSum},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, shards := range []int{0, 2, 4} {
				cfg := hybridBase()
				cfg.Shards = shards
				tc.mut(&cfg)
				_, err := cluster.Run(cfg)
				if !errors.Is(err, tc.want) {
					t.Errorf("shards=%d: Run err = %v, want errors.Is %v", shards, err, tc.want)
				}
			}
		})
	}
}

// TestForegroundClientsAlias: ForegroundClients is an explicit alias
// for Clients — the two spellings produce byte-identical results.
func TestForegroundClientsAlias(t *testing.T) {
	cfg := hybridBase()
	ref := resultJSON(t, cfg)
	alias := cfg
	alias.Clients = 1 // overridden by the alias
	alias.ForegroundClients = cfg.Clients
	got := resultJSON(t, alias)
	// The configs differ (the alias field serializes), but the results
	// must not.
	if !bytes.Equal(ref, got) {
		t.Fatalf("ForegroundClients alias diverged:\nref %s\ngot %s", ref, got)
	}
}

// TestClassicResultOmitsBackground: a classic (non-hybrid) run's Result
// JSON must not mention the background fields at all — the schema
// addition is invisible to existing consumers, byte for byte.
func TestClassicResultOmitsBackground(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 2
	cfg.BytesPerProc = 2 * units.MiB
	b := resultJSON(t, cfg)
	if bytes.Contains(b, []byte("Background")) {
		t.Fatalf("classic-run JSON mentions background fields: %s", b)
	}
}

// foregroundStripLatencies reconstructs per-strip issue→IRQ latencies
// for the first fg clients from a span log — the foreground cohort's
// distribution, computable identically whether the background load is
// simulated clients (full fidelity) or analytic flows (hybrid).
func foregroundStripLatencies(log *trace.SpanLog, cfg cluster.Config, fg int) []float64 {
	clientIDs, _, _ := cfg.NodeLayout()
	foreground := make(map[int]bool, fg)
	for _, id := range clientIDs[:fg] {
		foreground[int(id)] = true
	}
	type stripKey struct {
		client int
		tag    uint64
		strip  int
	}
	issue := make(map[stripKey]units.Time)
	var lats []float64
	for _, s := range log.Spans() {
		if !foreground[s.Client] {
			continue
		}
		k := stripKey{s.Client, s.Tag, s.Strip}
		switch s.Phase {
		case trace.PhaseIssue:
			issue[k] = s.Start
		case trace.PhaseIRQ:
			if start, ok := issue[k]; ok {
				lats = append(lats, float64(s.End-start))
			}
		}
	}
	return lats
}

// TestHybridCalibration is the tentpole's fidelity contract: at a
// population both modes can execute, the hybrid engine's foreground
// strip-latency percentiles agree with a full-fidelity run (background
// modeled as real client nodes) within 1.5× on p50 and p95, and the
// analytic background demonstrably degrades the foreground median
// relative to an unloaded baseline.
//
// The comparison runs in the NIC/CPU-bound regime (shared files, warm
// server page cache) — the regime the fluid model is built for. In
// disk-seek-bound configurations (many distinct files per server) the
// two modes diverge by design: the analytic population imposes no seek
// pressure, a documented fidelity boundary (DESIGN.md §14).
func TestHybridCalibration(t *testing.T) {
	const (
		fg = 2 // measured cohort, full fidelity in both modes
		bg = 6 // background clients in the full-fidelity run
	)
	base := cluster.DefaultConfig()
	base.Servers = 4
	base.CoresPerClient = 4
	base.ProcsPerClient = 2
	base.BytesPerProc = 4 * units.MiB
	base.SharedFiles = true
	base.Policy = irqsched.PolicySourceAware

	// Full fidelity: fg+bg real clients, every strip simulated.
	full := base
	full.Clients = fg + bg
	fullRes, fullLog, err := cluster.RunSpanned(full)
	if err != nil {
		t.Fatal(err)
	}
	fullLats := foregroundStripLatencies(fullLog, full, fg)
	if len(fullLats) == 0 {
		t.Fatal("full-fidelity run produced no foreground strips")
	}

	// Hybrid: the same fg cohort, with the bg clients replaced by an
	// analytic population offering the rate the real bg clients
	// achieved (self-calibrated from the full run). Colocate is 0: the
	// full run's background lives on separate nodes, not on the
	// foreground NICs.
	var bgRate float64
	for _, r := range fullRes.PerClient[fg:] {
		bgRate += float64(r)
	}
	const users = 1000 * bg
	hybrid := base
	hybrid.Clients = fg
	hybrid.BackgroundUsers = users
	hybrid.TenantMix = []flowsim.TenantShare{
		{Name: "bg", Share: 1, PerUserRate: units.Rate(bgRate / users)},
	}
	_, hybridLog, err := cluster.RunSpanned(hybrid)
	if err != nil {
		t.Fatal(err)
	}
	hybridLats := foregroundStripLatencies(hybridLog, hybrid, fg)
	if len(hybridLats) == 0 {
		t.Fatal("hybrid run produced no foreground strips")
	}

	// Unloaded baseline for the directional check.
	alone := base
	alone.Clients = fg
	_, aloneLog, err := cluster.RunSpanned(alone)
	if err != nil {
		t.Fatal(err)
	}
	aloneLats := foregroundStripLatencies(aloneLog, alone, fg)

	check := func(name string, pct float64, tol float64) {
		fullP := metrics.Percentile(fullLats, pct)
		hybP := metrics.Percentile(hybridLats, pct)
		aloneP := metrics.Percentile(aloneLats, pct)
		t.Logf("%s: full=%v hybrid=%v alone=%v", name,
			units.Time(fullP), units.Time(hybP), units.Time(aloneP))
		if hybP < fullP/tol || hybP > fullP*tol {
			t.Errorf("%s: hybrid %v outside %gx of full-fidelity %v",
				name, units.Time(hybP), tol, units.Time(fullP))
		}
	}
	check("p50", 50, 1.5)
	check("p95", 95, 1.5)
	// Directional: the analytic background must hurt the foreground
	// median, like the real background does. (The tail is dominated by
	// first-pass page-cache misses in all three runs, so the
	// directional check is meaningful at the median only.)
	if hybP50, aloneP50 := metrics.Percentile(hybridLats, 50), metrics.Percentile(aloneLats, 50); hybP50 <= aloneP50 {
		t.Errorf("p50: hybrid %v not above unloaded baseline %v",
			units.Time(hybP50), units.Time(aloneP50))
	}
}
