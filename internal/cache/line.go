// Package cache models the client's private per-core caches — the
// hardware substrate whose behaviour the paper's whole argument rests
// on: a strip handled by the wrong core lands in the wrong private
// cache and must later migrate to the consumer (cost M), whereas
// source-aware delivery keeps the strip local (cost of a hit).
//
// Two models are provided:
//
//   - LineCache / Directory: a line-granularity set-associative LRU
//     cache with a MESI-style ownership directory. This is the precise
//     model; it is used by unit and property tests and by small-scale
//     micro experiments.
//
//   - System (block granularity, see block.go): tracks whole strips as
//     resident in at most one private cache, with per-core capacity and
//     LRU eviction. The cluster simulator uses this model because the
//     paper's experiments move tens of gigabytes and per-line
//     simulation would be needlessly slow; miss/access counts are
//     derived from line arithmetic so reported rates are equivalent.
package cache

import (
	"fmt"

	"sais/internal/units"
)

// LineAddr identifies a cache line by its aligned byte address.
type LineAddr uint64

// LineState is the coherence state of a line in one cache, a simplified
// MESI (no Exclusive; Modified and Shared are what the model needs).
type LineState uint8

// Coherence states.
const (
	Invalid LineState = iota
	Shared
	Modified
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("LineState(%d)", uint8(s))
	}
}

// LineCacheConfig sizes a private cache.
type LineCacheConfig struct {
	Capacity units.Bytes // total data capacity
	LineSize units.Bytes // bytes per line (power of two)
	Ways     int         // associativity
}

// DefaultL2 is the Opteron 2384's per-core L2: 512 KiB, 64 B lines,
// 16-way.
func DefaultL2() LineCacheConfig {
	return LineCacheConfig{Capacity: 512 * units.KiB, LineSize: 64, Ways: 16}
}

func (c LineCacheConfig) validate() error {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d is not a positive power of two", c.LineSize)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: associativity %d must be positive", c.Ways)
	}
	lines := c.Capacity / c.LineSize
	if lines <= 0 {
		return fmt.Errorf("cache: capacity %v below one line", c.Capacity)
	}
	if int(lines)%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c LineCacheConfig) Sets() int { return int(c.Capacity/c.LineSize) / c.Ways }

// way is one slot of a set.
type way struct {
	addr  LineAddr
	state LineState
	lru   uint64 // last-touch stamp; higher = more recent
}

// LineStats counts the events the paper's figures are built from.
type LineStats struct {
	Accesses  uint64 // total lookups
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Fills     uint64
}

// MissRate returns Misses/Accesses, the paper's L2 miss-rate metric.
func (s LineStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// LineCache is one core's private set-associative LRU cache.
type LineCache struct {
	cfg   LineCacheConfig
	sets  [][]way
	stamp uint64
	stats LineStats
	owner int // core id, for diagnostics
}

// NewLineCache builds a cache for core owner. It panics on an invalid
// configuration: cache geometry is fixed at construction and an invalid
// geometry is a programming error, not a runtime condition.
func NewLineCache(owner int, cfg LineCacheConfig) *LineCache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	sets := make([][]way, cfg.Sets())
	for i := range sets {
		sets[i] = make([]way, cfg.Ways)
	}
	return &LineCache{cfg: cfg, sets: sets, owner: owner}
}

// Config returns the geometry.
func (c *LineCache) Config() LineCacheConfig { return c.cfg }

// Stats returns a copy of the counters.
func (c *LineCache) Stats() LineStats { return c.stats }

// Align maps a byte address to its line address.
func (c *LineCache) Align(addr uint64) LineAddr {
	return LineAddr(addr &^ uint64(c.cfg.LineSize-1))
}

func (c *LineCache) setFor(addr LineAddr) []way {
	idx := (uint64(addr) / uint64(c.cfg.LineSize)) % uint64(len(c.sets))
	return c.sets[idx]
}

// Lookup probes for addr without changing contents; a hit refreshes LRU
// and is counted. It returns the line's state (Invalid on miss).
func (c *LineCache) Lookup(addr LineAddr) LineState {
	c.stats.Accesses++
	set := c.setFor(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].addr == addr {
			c.stamp++
			set[i].lru = c.stamp
			c.stats.Hits++
			return set[i].state
		}
	}
	c.stats.Misses++
	return Invalid
}

// Contains probes without touching any counter or LRU state.
func (c *LineCache) Contains(addr LineAddr) bool {
	set := c.setFor(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].addr == addr {
			return true
		}
	}
	return false
}

// Insert fills addr in the given state, evicting the set's LRU victim
// if needed. It returns the evicted line address and whether an
// eviction of a valid line occurred.
func (c *LineCache) Insert(addr LineAddr, st LineState) (victim LineAddr, evicted bool) {
	if st == Invalid {
		panic("cache: inserting an Invalid line")
	}
	set := c.setFor(addr)
	c.stamp++
	// Upgrade in place if present.
	for i := range set {
		if set[i].state != Invalid && set[i].addr == addr {
			set[i].state = st
			set[i].lru = c.stamp
			return 0, false
		}
	}
	// Free slot?
	slot := -1
	for i := range set {
		if set[i].state == Invalid {
			slot = i
			break
		}
	}
	if slot == -1 {
		slot = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[slot].lru {
				slot = i
			}
		}
		victim, evicted = set[slot].addr, true
		c.stats.Evictions++
	}
	set[slot] = way{addr: addr, state: st, lru: c.stamp}
	c.stats.Fills++
	return victim, evicted
}

// Invalidate drops addr if present, reporting whether it was resident.
func (c *LineCache) Invalidate(addr LineAddr) bool {
	set := c.setFor(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].addr == addr {
			set[i].state = Invalid
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid lines.
func (c *LineCache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for _, w := range set {
			if w.state != Invalid {
				n++
			}
		}
	}
	return n
}
