package cache

import (
	"testing"
	"testing/quick"

	"sais/internal/rng"
	"sais/internal/units"
)

func smallCfg() LineCacheConfig {
	return LineCacheConfig{Capacity: 4 * units.KiB, LineSize: 64, Ways: 4}
}

func TestConfigValidation(t *testing.T) {
	bad := []LineCacheConfig{
		{Capacity: 1024, LineSize: 60, Ways: 4},  // line size not power of two
		{Capacity: 1024, LineSize: 64, Ways: 0},  // zero ways
		{Capacity: 32, LineSize: 64, Ways: 1},    // capacity below one line
		{Capacity: 1024, LineSize: 64, Ways: 5},  // lines not divisible by ways
		{Capacity: 1024, LineSize: -64, Ways: 4}, // negative line
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, cfg)
		}
	}
	if err := DefaultL2().validate(); err != nil {
		t.Errorf("DefaultL2 invalid: %v", err)
	}
	if got := DefaultL2().Sets(); got != 512 {
		t.Errorf("DefaultL2 sets = %d, want 512", got)
	}
}

func TestNewLineCachePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLineCache with bad config did not panic")
		}
	}()
	NewLineCache(0, LineCacheConfig{Capacity: 1, LineSize: 3, Ways: 1})
}

func TestAlign(t *testing.T) {
	c := NewLineCache(0, smallCfg())
	if got := c.Align(130); got != 128 {
		t.Errorf("Align(130) = %d, want 128", got)
	}
	if got := c.Align(64); got != 64 {
		t.Errorf("Align(64) = %d, want 64", got)
	}
}

func TestMissThenHit(t *testing.T) {
	c := NewLineCache(0, smallCfg())
	addr := LineAddr(0x1000)
	if st := c.Lookup(addr); st != Invalid {
		t.Errorf("first lookup = %v, want Invalid", st)
	}
	c.Insert(addr, Shared)
	if st := c.Lookup(addr); st != Shared {
		t.Errorf("second lookup = %v, want Shared", st)
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestInsertUpgradesInPlace(t *testing.T) {
	c := NewLineCache(0, smallCfg())
	addr := LineAddr(0x40)
	c.Insert(addr, Shared)
	if _, ev := c.Insert(addr, Modified); ev {
		t.Error("upgrade caused eviction")
	}
	if st := c.Lookup(addr); st != Modified {
		t.Errorf("state = %v, want Modified", st)
	}
	if c.Occupancy() != 1 {
		t.Errorf("occupancy = %d, want 1", c.Occupancy())
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := smallCfg() // 4 ways, 16 sets, 64B lines
	c := NewLineCache(0, cfg)
	sets := uint64(cfg.Sets())
	line := uint64(cfg.LineSize)
	// Fill one set (same index, different tags).
	addrs := make([]LineAddr, 5)
	for i := range addrs {
		addrs[i] = LineAddr(uint64(i) * sets * line)
	}
	for _, a := range addrs[:4] {
		c.Insert(a, Shared)
	}
	// Touch addr[0] so addr[1] becomes LRU.
	c.Lookup(addrs[0])
	victim, evicted := c.Insert(addrs[4], Shared)
	if !evicted {
		t.Fatal("expected eviction from full set")
	}
	if victim != addrs[1] {
		t.Errorf("victim = %#x, want %#x (LRU)", uint64(victim), uint64(addrs[1]))
	}
	if c.Contains(addrs[1]) {
		t.Error("evicted line still present")
	}
	if !c.Contains(addrs[0]) || !c.Contains(addrs[4]) {
		t.Error("wrong lines evicted")
	}
}

func TestInvalidate(t *testing.T) {
	c := NewLineCache(0, smallCfg())
	addr := LineAddr(0x80)
	c.Insert(addr, Modified)
	if !c.Invalidate(addr) {
		t.Error("Invalidate of resident line reported false")
	}
	if c.Invalidate(addr) {
		t.Error("Invalidate of absent line reported true")
	}
	if c.Contains(addr) {
		t.Error("line present after Invalidate")
	}
}

func TestInsertInvalidPanics(t *testing.T) {
	c := NewLineCache(0, smallCfg())
	defer func() {
		if recover() == nil {
			t.Error("Insert(Invalid) did not panic")
		}
	}()
	c.Insert(0, Invalid)
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	cfg := smallCfg()
	maxLines := int(cfg.Capacity / cfg.LineSize)
	err := quick.Check(func(seed uint64, nRaw uint16) bool {
		r := rng.New(seed)
		c := NewLineCache(0, cfg)
		n := int(nRaw%500) + 1
		for i := 0; i < n; i++ {
			addr := c.Align(uint64(r.Intn(1 << 16)))
			switch r.Intn(3) {
			case 0:
				c.Insert(addr, Shared)
			case 1:
				c.Insert(addr, Modified)
			default:
				c.Invalidate(addr)
			}
			if c.Occupancy() > maxLines {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestHitsPlusMissesEqualsAccesses(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		c := NewLineCache(0, smallCfg())
		for i := 0; i < 300; i++ {
			addr := c.Align(uint64(r.Intn(1 << 14)))
			if r.Bool(0.5) {
				c.Lookup(addr)
			} else {
				c.Insert(addr, Shared)
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestMissRate(t *testing.T) {
	var s LineStats
	if s.MissRate() != 0 {
		t.Error("empty stats miss rate should be 0")
	}
	s = LineStats{Accesses: 10, Misses: 3}
	if got := s.MissRate(); got != 0.3 {
		t.Errorf("MissRate = %v, want 0.3", got)
	}
}

func TestLineStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Error("LineState strings wrong")
	}
	if LineState(9).String() == "" {
		t.Error("unknown state should still render")
	}
}

func TestLineCacheConfigAccessor(t *testing.T) {
	c := NewLineCache(0, smallCfg())
	if c.Config() != smallCfg() {
		t.Errorf("Config() = %+v", c.Config())
	}
}

func BenchmarkLineCacheLookup(b *testing.B) {
	c := NewLineCache(0, DefaultL2())
	for i := 0; i < 4096; i++ {
		c.Insert(LineAddr(i*64), Shared)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(LineAddr((i % 8192) * 64))
	}
}
