package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{Microsecond, "1us"},
		{1500 * Nanosecond, "1.5us"},
		{Millisecond, "1ms"},
		{2500 * Microsecond, "2.5ms"},
		{Second, "1s"},
		{-Second, "-1s"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KiB, "1KiB"},
		{64 * KiB, "64KiB"},
		{MiB, "1MiB"},
		{10 * GiB, "10GiB"},
		{-KiB, "-1KiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRateTimeFor(t *testing.T) {
	// 1 Gbit/s moves 125 MB in exactly one second.
	if got := Gigabit.TimeFor(Bytes(125e6)); got != Second {
		t.Errorf("Gigabit.TimeFor(125MB) = %v, want 1s", got)
	}
	if got := Rate(0).TimeFor(KiB); got != Forever {
		t.Errorf("zero rate should take forever, got %v", got)
	}
	if got := Gigabit.TimeFor(0); got != 0 {
		t.Errorf("zero bytes should take zero time, got %v", got)
	}
	if got := Gigabit.TimeFor(-KiB); got != 0 {
		t.Errorf("negative bytes should take zero time, got %v", got)
	}
	// Tiny transfers still advance the clock.
	if got := Gigabit.TimeFor(1); got <= 0 {
		t.Errorf("1 byte at 1Gbit should take positive time, got %v", got)
	}
}

func TestRateTimeForRoundTrip(t *testing.T) {
	// TimeFor and Over are approximate inverses for non-trivial sizes.
	err := quick.Check(func(n uint32, rExp uint8) bool {
		bytes := Bytes(n%(1<<30)) + MiB // at least 1 MiB
		rate := Rate(1+float64(rExp%60)) * MBps
		tt := rate.TimeFor(bytes)
		back := Over(bytes, tt)
		rel := math.Abs(float64(back-rate)) / float64(rate)
		return rel < 1e-6
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestHertzDuration(t *testing.T) {
	f := 2 * GHz
	if got := f.Duration(2e9); got != Second {
		t.Errorf("2GHz for 2e9 cycles = %v, want 1s", got)
	}
	if got := f.Duration(0); got != 0 {
		t.Errorf("zero cycles should be zero time, got %v", got)
	}
	if got := f.Duration(1); got <= 0 {
		t.Errorf("one cycle must advance time, got %v", got)
	}
	if got := Hertz(0).Duration(5); got != Forever {
		t.Errorf("zero frequency should take forever, got %v", got)
	}
}

func TestCyclesInInverse(t *testing.T) {
	f := 2700 * MHz
	err := quick.Check(func(n uint32) bool {
		c := Cycles(n) + 1000
		d := f.Duration(c)
		back := f.CyclesIn(d)
		diff := back - c
		if diff < 0 {
			diff = -diff
		}
		return float64(diff) <= math.Max(4, float64(c)*1e-6)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDegenerateDenominators(t *testing.T) {
	nan := Rate(math.NaN())
	cases := []struct {
		name string
		got  Time
		want Time
	}{
		{"NaN rate", nan.TimeFor(KiB), Forever},
		{"negative rate", Rate(-1).TimeFor(KiB), Forever},
		{"overflowing transfer", Rate(math.SmallestNonzeroFloat64).TimeFor(GiB), Forever},
		{"NaN frequency", Hertz(math.NaN()).Duration(100), Forever},
		{"negative frequency", Hertz(-2e9).Duration(100), Forever},
		{"overflowing duration", Hertz(math.SmallestNonzeroFloat64).Duration(1), Forever},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v (%d), want %v", c.name, c.got, int64(c.got), c.want)
		}
	}
	if got := Hertz(math.NaN()).CyclesIn(Second); got != 0 {
		t.Errorf("NaN frequency CyclesIn = %d, want 0", got)
	}
	if got := Hertz(-1).CyclesIn(Second); got != 0 {
		t.Errorf("negative frequency CyclesIn = %d, want 0", got)
	}
	if got := Hertz(math.Inf(1)).CyclesIn(Second); got != Cycles(math.MaxInt64) {
		t.Errorf("Inf frequency CyclesIn = %d, want saturation at MaxInt64", got)
	}
	if got := Over(KiB, -Second); got != 0 {
		t.Errorf("Over with negative time = %v, want 0", got)
	}
}

func TestOver(t *testing.T) {
	if got := Over(Bytes(250e6), 2*Second); got != Rate(125e6) {
		t.Errorf("Over(250MB, 2s) = %v, want 125MB/s", got)
	}
	if got := Over(KiB, 0); got != 0 {
		t.Errorf("Over with zero time = %v, want 0", got)
	}
}

func TestMiBps(t *testing.T) {
	r := Rate(float64(64 * MiB))
	if got := r.MiBps(); math.Abs(got-64) > 1e-9 {
		t.Errorf("MiBps = %v, want 64", got)
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]Bytes{
		"1500":   1500,
		"64KiB":  64 * KiB,
		"64K":    64 * KiB,
		"1MiB":   MiB,
		"2M":     2 * MiB,
		"1GiB":   GiB,
		"0.5MiB": 512 * KiB,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "1XB", "-5KiB"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) accepted", bad)
		}
	}
}

func TestParseTime(t *testing.T) {
	cases := map[string]Time{
		"500ns": 500,
		"2us":   2 * Microsecond,
		"10ms":  10 * Millisecond,
		"1.5s":  1500 * Millisecond,
	}
	for in, want := range cases {
		got, err := ParseTime(in)
		if err != nil || got != want {
			t.Errorf("ParseTime(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "5", "3h", "-1ms"} {
		if _, err := ParseTime(bad); err == nil {
			t.Errorf("ParseTime(%q) accepted", bad)
		}
	}
}
