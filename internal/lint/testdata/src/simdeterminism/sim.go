// Fixture for the simdeterminism analyzer, type-checked under the
// deterministic package path sais/internal/sim: wall clocks, global
// math/rand, goroutines, and map-ordered iteration are all hazards
// here. The annotated sites at the bottom exercise the escape hatches.
package sim

import (
	"math/rand" // want "use sais/internal/rng"
	"time"
)

type state struct {
	counts map[int]int
}

// tick is the wall-clock-in-the-sim-path bug class: host time leaking
// into an event-driven component.
func tick() int64 {
	t0 := time.Now() // want "wall clock"
	time.Sleep(1)    // want "wall clock"
	return time.Since(t0).Nanoseconds() // want "wall clock"
}

func spawn(s state) int {
	go tick() // want "go statement in deterministic package"
	sum := 0
	for k, v := range s.counts { // want "range over map in deterministic package"
		sum += k + v
	}
	sum += rand.Int()
	return sum
}

// durationConstant shows that naming time units is fine; only reading
// the clock is forbidden.
func durationConstant() time.Duration {
	return 500 * time.Millisecond
}

// heartbeat is the legitimate-wall-clock shape (saisim's -progress
// throttle): annotated, so no finding.
func heartbeat() time.Time {
	return time.Now() //lint:wallclock stderr-only progress heartbeat
}

// drain shows an annotated commutative map loop.
func drain(s state) int {
	sum := 0
	//lint:maporder pure commutative accumulation
	for _, v := range s.counts {
		sum += v
	}
	return sum
}
