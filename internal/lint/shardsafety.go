package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"sais/internal/lint/analysis"
)

// ShardSafety enforces the sharded executor's ownership discipline —
// the structural rules that make internal/shard's conservative
// parallelism safe without locks:
//
//   - mailbox ownership: a struct field annotated //saisvet:mailbox is
//     a cross-engine transfer buffer owned by its declaring type. Only
//     methods of that type may write it (assign, append back, index
//     store, delete); everything else must route cross-engine traffic
//     through the sanctioned channels, sim.Engine.ScheduleRemote and
//     the fabric's RemoteForward hook. The annotation travels as a
//     fact, so a write from another package is flagged too. Suppress
//     with //lint:shardsafety.
//   - no runtime writes to package-level state in the deterministic
//     packages: two engines running the same package's code in
//     parallel shards must not communicate through a package global,
//     and replay determinism forbids order-dependent global mutation.
//     Writes inside init functions and package-level initializers are
//     setup, not runtime, and stay legal. Suppress a reviewed site (a
//     registration table that is sealed before any engine starts) with
//     //lint:globalstate.
var ShardSafety = &analysis.Analyzer{
	Name: "shardsafety",
	Doc: "mailbox fields are written only by their owning type's methods, and " +
		"deterministic packages do not mutate package-level state at runtime " +
		"(suppress: //lint:shardsafety, //lint:globalstate)",
	Directives: []string{"shardsafety", "globalstate"},
	Run:        runShardSafety,
}

func runShardSafety(pass *analysis.Pass) (any, error) {
	dirs := pass.Directives()
	deterministic := isDeterministicPkg(pass.Pkg.Path())

	// Collect this package's annotated mailbox fields and export them.
	mailbox := make(map[*types.Var]*types.TypeName)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					continue
				}
				for _, field := range st.Fields.List {
					if _, ok := annotation([]*ast.CommentGroup{field.Doc, field.Comment}, "mailbox"); !ok {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							mailbox[v] = tn
							if pass.Facts.HookFields == nil {
								pass.Facts.HookFields = make(map[string]string)
							}
							pass.Facts.HookFields[qualifiedField(tn, name.Name)] = "mailbox"
						}
					}
				}
			}
		}
	}

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc {
				continue // package-level initializers are setup, not runtime
			}
			recv := receiverTypeName(pass, fd)
			isInit := fd.Recv == nil && fd.Name.Name == "init"

			checkWrite := func(lhs ast.Expr, pos token.Pos) {
				root := writeRoot(lhs)
				switch root := root.(type) {
				case *ast.SelectorExpr:
					sel, ok := pass.TypesInfo.Selections[root]
					if !ok || sel.Kind() != types.FieldVal {
						break
					}
					v, _ := sel.Obj().(*types.Var)
					if v == nil {
						break
					}
					ownerNamed := namedOwner(sel.Recv())
					if ownerNamed == nil {
						break
					}
					ownerName := ownerNamed.Obj()
					isMailbox := false
					if tn, ok := mailbox[v]; ok {
						isMailbox = true
						ownerName = tn
					} else if kind, ok := pass.DepHookField(qualifiedField(ownerName, v.Name())); ok && kind == "mailbox" {
						isMailbox = true
					}
					if !isMailbox {
						break
					}
					if recv != nil && recv == ownerName {
						return // the owning type's own method
					}
					if !dirs.Suppressed(pos, "shardsafety") {
						pass.Reportf(pos, "write to mailbox field %s outside its owning type's methods: cross-engine traffic must go through sim.Engine.ScheduleRemote or the fabric RemoteForward hook (suppress a reviewed site with //lint:shardsafety)",
							types.ExprString(root))
					}
				case *ast.Ident:
					if !deterministic || isInit {
						break
					}
					v, ok := pass.TypesInfo.ObjectOf(root).(*types.Var)
					if !ok || v.Pkg() != pass.Pkg {
						break
					}
					if v.Parent() != pass.Pkg.Scope() {
						break // local or field shorthand, not package state
					}
					if !dirs.Suppressed(pos, "globalstate") {
						pass.Reportf(pos, "runtime write to package-level %s in deterministic package %s: parallel shard engines and replay determinism forbid shared mutable globals; move the state onto the engine or node (suppress a reviewed setup-only site with //lint:globalstate)",
							v.Name(), pass.Pkg.Path())
					}
				}
			}

			ast.Inspect(fd, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkWrite(lhs, n.Pos())
					}
				case *ast.IncDecStmt:
					checkWrite(n.X, n.Pos())
				case *ast.CallExpr:
					// delete(m, k) mutates its map argument.
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
						if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(n.Args) > 0 {
							checkWrite(n.Args[0], n.Pos())
						}
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// writeRoot unwraps an assignment target to the expression that names
// the stored-into object: e.out[i][j] -> e.out, (*p).x -> x's selector,
// registry[k] -> registry.
func writeRoot(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return x
		}
	}
}

// namedOwner returns the named type a field selection's receiver
// resolves to, looking through one level of pointer.
func namedOwner(recv types.Type) *types.Named {
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, _ := recv.(*types.Named)
	return n
}

// receiverTypeName resolves a method declaration's receiver to its
// *types.TypeName, or nil for plain functions.
func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := ast.Unparen(t).(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			tn, _ := pass.TypesInfo.Uses[x].(*types.TypeName)
			return tn
		default:
			return nil
		}
	}
}

// qualifiedField renders the facts key for a field: "pkgpath.Type.Field".
func qualifiedField(tn *types.TypeName, field string) string {
	return tn.Pkg().Path() + "." + tn.Name() + "." + field
}
