// Package sdep is a fixture dependency for the shardsafety
// cross-package tests: its mailbox annotation is exported as a
// HookFields fact and must bind writers in other packages.
package sdep

// Box owns a mailbox slice.
type Box struct {
	// Slots is written only by Box methods.
	//saisvet:mailbox
	Slots []int
}

// Put is the owning type's sanctioned writer.
func (b *Box) Put(v int) { b.Slots = append(b.Slots, v) }
