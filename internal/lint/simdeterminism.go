package lint

import (
	"go/ast"
	"go/types"

	"sais/internal/lint/analysis"
)

// SimDeterminism enforces the replayability ground rules. Three of its
// checks apply to all non-test code in the module, one only to the
// deterministic packages:
//
//   - wall clock (everywhere): calls to time.Now, time.Sleep,
//     time.Since, and friends make output depend on host timing.
//     Suppress a legitimate site (a stderr progress heartbeat, a
//     host-benchmark stopwatch) with //lint:wallclock.
//   - global math/rand (everywhere): the global generator is shared
//     mutable state outside the seed tree; all randomness must come
//     from sais/internal/rng Sources. Suppress with //lint:globalrand.
//   - go statements (deterministic packages only): goroutines
//     interleave nondeterministically; concurrency belongs in
//     internal/runner, above the simulator. Suppress with
//     //lint:goroutine, or — for a package whose design is built on a
//     controlled concurrency discipline, like internal/shard's
//     barrier-synchronized workers — with a file-header
//     //lint:package goroutine waiver.
//   - map range (deterministic packages only): map iteration order is
//     randomized per run, so any state mutation or output emitted from
//     such a loop can differ between replays. Sort the keys or keep a
//     slice; a loop whose body is genuinely order-independent (pure
//     commutative accumulation) may be annotated //lint:maporder with
//     the reason.
var SimDeterminism = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall clocks, global math/rand, goroutines, and map-ordered iteration " +
		"in the deterministic simulator packages (suppress: //lint:wallclock, " +
		"//lint:globalrand, //lint:goroutine, //lint:maporder)",
	Run: runSimDeterminism,
}

// wallClockFuncs are the time package entry points that observe or wait
// on the host clock. Pure constructors and constants (time.Duration,
// time.Millisecond) stay legal: the hazard is reading the clock, not
// naming a unit.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

func runSimDeterminism(pass *analysis.Pass) (any, error) {
	dirs := newDirectiveIndex(pass.Fset, pass.Files)
	deterministic := isDeterministicPkg(pass.Pkg.Path())

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				path := importPath(n)
				if path == "math/rand" || path == "math/rand/v2" {
					if !dirs.suppressed(n.Pos(), "globalrand") {
						pass.Reportf(n.Pos(), "import of %s: use sais/internal/rng so every draw hangs off an explicit seed", path)
					}
				}
			case *ast.SelectorExpr:
				if obj := pass.TypesInfo.Uses[n.Sel]; obj != nil {
					if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "time" && wallClockFuncs[n.Sel.Name] {
						if !dirs.suppressed(n.Pos(), "wallclock") {
							pass.Reportf(n.Pos(), "time.%s reads the wall clock: simulated time must come from the event engine (suppress a legitimate site with //lint:wallclock)", n.Sel.Name)
						}
					}
				}
			case *ast.GoStmt:
				if deterministic && !dirs.suppressed(n.Pos(), "goroutine") {
					pass.Reportf(n.Pos(), "go statement in deterministic package %s: goroutine interleaving is not replayable; hoist concurrency into internal/runner", pass.Pkg.Path())
				}
			case *ast.RangeStmt:
				if deterministic && n.X != nil {
					if t := pass.TypeOf(n.X); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							if !dirs.suppressed(n.Pos(), "maporder") {
								pass.Reportf(n.Pos(), "range over map in deterministic package %s: iteration order varies per run; sort the keys first or keep a slice (//lint:maporder if provably order-independent)", pass.Pkg.Path())
							}
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// importPath returns the unquoted import path of spec.
func importPath(spec *ast.ImportSpec) string {
	p := spec.Path.Value
	if len(p) >= 2 && p[0] == '"' && p[len(p)-1] == '"' {
		return p[1 : len(p)-1]
	}
	return p
}
