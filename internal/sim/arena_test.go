package sim

// Tests for the arena engine's safety properties: generation-checked
// handles across slot reuse, Live vs Pending accounting, cancellation
// compaction, the mid-run stop-poll fix, and a differential test that
// drives the engine against a brute-force reference queue on fuzzed
// schedule/cancel/step mixes.

import (
	"testing"

	"sais/internal/rng"
	"sais/internal/units"
)

// TestStaleGenerationHandle pins the core arena-safety property: a
// handle kept across its event's firing must not be able to cancel the
// slot's next tenant.
func TestStaleGenerationHandle(t *testing.T) {
	e := NewEngine()
	old := e.At(1, func(units.Time) {})
	e.RunUntilIdle()

	// The freed slot is recycled for the next schedule (LIFO free list).
	fired := false
	fresh := e.At(2, func(units.Time) { fired = true })
	if old.idx != fresh.idx {
		t.Fatalf("free list did not recycle slot %d (got %d); test assumption broken", old.idx, fresh.idx)
	}
	if old.Pending() {
		t.Error("stale handle reports Pending on a reused slot")
	}
	if old.Cancel() {
		t.Error("stale handle cancelled the slot's new tenant")
	}
	if !fresh.Pending() {
		t.Error("fresh handle lost pending state after stale Cancel")
	}
	e.RunUntilIdle()
	if !fired {
		t.Error("new tenant did not fire")
	}
}

func TestZeroTimerIsInert(t *testing.T) {
	var tm Timer
	if tm.Pending() {
		t.Error("zero Timer reports Pending")
	}
	if tm.Cancel() {
		t.Error("zero Timer Cancel reported true")
	}
}

func TestLiveExcludesCancelled(t *testing.T) {
	e := NewEngine()
	timers := make([]Timer, 10)
	for i := range timers {
		timers[i] = e.At(units.Time(i+1), func(units.Time) {})
	}
	for i := 0; i < 4; i++ {
		timers[i].Cancel()
	}
	if e.Pending() != 10 {
		t.Errorf("Pending = %d, want 10 (includes cancelled)", e.Pending())
	}
	if e.Live() != 6 {
		t.Errorf("Live = %d, want 6", e.Live())
	}
	e.RunUntilIdle()
	if e.Live() != 0 || e.Pending() != 0 {
		t.Errorf("after drain Live=%d Pending=%d, want 0/0", e.Live(), e.Pending())
	}
}

// TestCompactionReapsCancelled checks that bulk cancellation shrinks
// the queue instead of leaving corpses until their nominal expiry.
func TestCompactionReapsCancelled(t *testing.T) {
	e := NewEngine()
	n := 4 * compactMin
	timers := make([]Timer, n)
	for i := range timers {
		timers[i] = e.At(units.Time(i+1), func(units.Time) {})
	}
	for i := 0; i < n; i++ {
		if i%4 != 0 { // cancel 3 of every 4 → dead outnumber live
			timers[i].Cancel()
		}
	}
	// Without compaction Pending would still be n; the policy guarantees
	// dead items never exceed half the queue by more than the floor.
	if dead := e.Pending() - e.Live(); dead > e.Live()+compactMin {
		t.Errorf("dead = %d with %d live after bulk cancel; compaction did not run", dead, e.Live())
	}
	if e.Pending() > n/2 {
		t.Errorf("Pending = %d after bulk cancel, want ≤ %d (compacted)", e.Pending(), n/2)
	}
	if e.Live() != n/4 {
		t.Errorf("Live = %d, want %d", e.Live(), n/4)
	}
	// Order must survive compaction's re-heapify.
	var last units.Time
	fired := 0
	for e.Step() {
		if e.Now() < last {
			t.Fatalf("post-compaction order violated: %v after %v", e.Now(), last)
		}
		last = e.Now()
		fired++
	}
	if fired != n/4 {
		t.Errorf("fired %d events, want %d", fired, n/4)
	}
}

// TestSetStopMidRunPollsImmediately pins the stop-poll fix: a condition
// installed from inside an event must be polled at the next loop
// iteration, not up to stopPollInterval events later.
func TestSetStopMidRunPollsImmediately(t *testing.T) {
	e := NewEngine()
	var fired int
	var chain Event
	chain = func(units.Time) {
		fired++
		e.After(1, chain)
		if fired == 3 {
			e.SetStop(func() bool { return true })
		}
	}
	e.At(0, chain)
	e.Run(units.Forever)
	if !e.Stopped() {
		t.Fatal("run loop did not stop")
	}
	if fired != 3 {
		t.Errorf("fired = %d events; condition installed after event 3 must stop the loop before event 4", fired)
	}
}

// refQueue is a brute-force reference for the differential test: a flat
// slice popped by linear min-scan over (at, seq).
type refItem struct {
	at   units.Time
	seq  uint64
	id   int
	dead bool
}

type refQueue struct {
	items []refItem
	seq   uint64
}

func (q *refQueue) add(at units.Time, id int) int {
	q.items = append(q.items, refItem{at: at, seq: q.seq, id: id})
	q.seq++
	return len(q.items) - 1
}

func (q *refQueue) popMin() (refItem, bool) {
	best := -1
	for i, it := range q.items {
		if it.dead {
			continue
		}
		if best < 0 || it.at < q.items[best].at ||
			(it.at == q.items[best].at && it.seq < q.items[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return refItem{}, false
	}
	it := q.items[best]
	q.items[best].dead = true
	return it, true
}

// TestDifferentialAgainstReference drives random schedule / cancel /
// step mixes (including same-instant schedules from inside callbacks,
// which land on the FIFO fast path) through the engine and the
// reference queue, asserting the fire sequences are identical.
func TestDifferentialAgainstReference(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		r := rng.New(seed)
		e := NewEngine()
		ref := &refQueue{}
		var live []Timer
		var liveRef []int
		nextID := 0

		var check func(id int) Event
		check = func(id int) Event {
			return func(now units.Time) {
				exp, ok := ref.popMin()
				if !ok {
					t.Fatalf("seed %d: engine fired id %d, reference empty", seed, id)
				}
				if exp.id != id || exp.at != now {
					t.Fatalf("seed %d: engine fired (id=%d at=%v), reference expects (id=%d at=%v)",
						seed, id, now, exp.id, exp.at)
				}
				// Sometimes chain a same-instant child — the FIFO path.
				if r.Intn(4) == 0 {
					cid := nextID
					nextID++
					e.Immediately(check(cid))
					ref.add(now, cid)
				}
			}
		}

		for op := 0; op < 400; op++ {
			switch r.Intn(6) {
			case 0, 1, 2: // schedule
				at := e.Now() + units.Time(r.Intn(20))
				id := nextID
				nextID++
				tm := e.At(at, check(id))
				ri := ref.add(at, id)
				live = append(live, tm)
				liveRef = append(liveRef, ri)
			case 3: // cancel a random timer (possibly already fired)
				if len(live) > 0 {
					k := r.Intn(len(live))
					if live[k].Cancel() {
						ref.items[liveRef[k]].dead = true
					}
					live = append(live[:k], live[k+1:]...)
					liveRef = append(liveRef[:k], liveRef[k+1:]...)
				}
			default: // step
				e.Step()
			}
		}
		// Drain; every remaining fire is checked inside the callbacks.
		e.RunUntilIdle()
		if _, ok := ref.popMin(); ok {
			t.Fatalf("seed %d: reference has live events after engine drained", seed)
		}
	}
}

// FuzzEngineOrder asserts that for arbitrary schedule times and cancel
// picks, the engine's pop order equals a stable sort by (at, seq).
func FuzzEngineOrder(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6})
	f.Add([]byte{0, 0, 0, 0, 255, 255})
	f.Add([]byte{7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 512 {
			t.Skip()
		}
		e := NewEngine()
		n := len(data)
		times := make([]units.Time, n)
		var got []int
		timers := make([]Timer, n)
		for i, b := range data {
			times[i] = units.Time(b % 32) // dense: many ties
			i := i
			timers[i] = e.At(times[i], func(units.Time) { got = append(got, i) })
		}
		// Cancel a data-dependent subset.
		cancelled := make([]bool, n)
		for i, b := range data {
			if b>>5 == 7 {
				timers[i].Cancel()
				cancelled[i] = true
			}
		}
		e.RunUntilIdle()
		want := 0
		for i := range cancelled {
			if !cancelled[i] {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("fired %d events, want %d", len(got), want)
		}
		for k := 1; k < len(got); k++ {
			a, b := got[k-1], got[k]
			if times[a] > times[b] || (times[a] == times[b] && a > b) {
				t.Fatalf("pop order violates (at, seq): event %d (t=%v) before %d (t=%v)",
					a, times[a], b, times[b])
			}
		}
	})
}
