// Package toeplitz implements the Toeplitz hash used by receive-side
// scaling (RSS) NICs, as specified in Microsoft's "RSS hashing types"
// verification suite: a 32-bit sliding window over the secret key is
// XORed into the result for every set bit of the input. Hardware
// computes it over the packet 4-tuple; the simulator hashes the flow
// identity the steering layer already carries.
//
// The hash is a pure function of (key, input) — no state, no
// allocation — which is what lets the Toeplitz steering policy stay
// bit-reproducible across shard layouts.
package toeplitz

import "encoding/binary"

// KeySize is the RSS secret-key length in bytes (320 bits: enough
// window for a 36-byte IPv6 4-tuple plus the 32-bit result width).
const KeySize = 40

// DefaultKey is the verification key from the Microsoft RSS
// specification — the one every RSS-capable NIC ships its test vectors
// against.
var DefaultKey = [KeySize]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// Hash computes the Toeplitz hash of data under key. The first 4 key
// bytes seed the 32-bit window; each consumed input bit shifts the
// window left by one, pulling the next key bit in from the right.
// Inputs longer than key length minus 4 bytes wrap the key, matching
// the common hardware behaviour for oversized inputs.
func Hash(key, data []byte) uint32 {
	if len(key) < 8 {
		panic("toeplitz: key shorter than 8 bytes")
	}
	window := binary.BigEndian.Uint32(key)
	var result uint32
	next := 4 // index of the key byte feeding the window's right edge
	var feed byte
	var feedBits int
	for _, b := range data {
		for bit := 7; bit >= 0; bit-- {
			if b&(1<<uint(bit)) != 0 {
				result ^= window
			}
			if feedBits == 0 {
				feed = key[next%len(key)]
				next++
				feedBits = 8
			}
			window = window<<1 | uint32(feed>>7)
			feed <<= 1
			feedBits--
		}
	}
	return result
}

// HashUint64 hashes an 8-byte big-endian encoding of v under
// DefaultKey — the form the steering policy uses for flow identities.
func HashUint64(v uint64) uint32 {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return Hash(DefaultKey[:], buf[:])
}
