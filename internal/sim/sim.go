// Package sim implements the discrete-event simulation engine that every
// SAIs subsystem runs on.
//
// The engine is a single-threaded event queue over a virtual nanosecond
// clock (units.Time). Determinism is a hard requirement — the paper's
// experiments are reproduced as exact functions of (config, seed) — so
// ties in event time are broken by the compound key (at, schedAt,
// origin, seq): for plain local events this reduces to scheduling
// order (two events scheduled for the same instant fire in the order
// they were scheduled), while origin-tagged events (frame deliveries)
// order by their source so the tie-break survives engine composition
// (internal/shard).
//
// The hot path is allocation-free in steady state. Scheduled events
// live by value in a slab arena recycled through a free list; the
// binary heap orders int32 arena indices, not pointers; and events
// scheduled for the current instant (the Immediately chains of
// NIC→APIC→core hand-offs) bypass the heap entirely through a FIFO
// ring. Timers are generation-checked {index, generation} handles, so
// Cancel is O(1) and safe across slot reuse; cancelled events are
// removed lazily and compacted in bulk once they outnumber the live
// ones. See DESIGN.md §9 for the layout and the determinism argument.
package sim

import (
	"fmt"

	"sais/internal/units"
)

// Event is a callback scheduled to run at a point in simulated time.
type Event func(now units.Time)

// item is a scheduled event in the arena slab.
//
// Ordering is by the compound key (at, schedAt, origin, seq). For
// events scheduled locally (schedAt = now at scheduling time, origin
// 0) this is exactly the historical (at, seq) order, because seq is
// monotone in scheduling time. The two extra fields exist so an event
// can carry provenance that is invariant under engine composition:
// when the cluster is sharded, an event injected from another shard
// keeps the schedAt/origin it would have had on a single engine, and
// the compound key makes same-instant ties fire in the same order
// regardless of how nodes were partitioned. See DESIGN.md §12.
type item struct {
	at      units.Time
	schedAt units.Time // when the event was scheduled (≤ at)
	seq     uint64
	origin  uint64 // composition tie-break class; 0 = plain local event
	fn      Event
	gen     uint32
	dead    bool // cancelled (still queued) or freed
}

// Timer is a handle to a scheduled event that can be cancelled. It is a
// value: copy it freely, the zero value is an inert handle. A handle
// holds the arena slot and the generation observed at scheduling time,
// so a handle kept across its event's firing (and the slot's reuse)
// can never cancel the slot's next tenant.
type Timer struct {
	eng *Engine
	idx int32
	gen uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer — or the zero Timer — is a no-op. It reports
// whether the event was still pending. Cancellation is O(1): the arena
// slot is marked dead and reaped lazily (or in bulk by compaction).
//saisvet:allocfree
func (t Timer) Cancel() bool {
	e := t.eng
	if e == nil {
		return false
	}
	it := &e.arena[t.idx]
	if it.gen != t.gen || it.dead {
		return false
	}
	it.dead = true
	it.fn = nil
	e.deadCount++
	e.maybeCompact()
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (t Timer) Pending() bool {
	if t.eng == nil {
		return false
	}
	it := &t.eng.arena[t.idx]
	return it.gen == t.gen && !it.dead
}

// stopPollInterval is how many events Run executes between polls of
// the stop condition. Polling per event would put a closure call (for
// context cancellation, an atomic load behind a mutexed Err) on the
// hot path; 64 events keeps the overhead unmeasurable while still
// bounding cancellation latency to a sliver of simulated work.
const stopPollInterval = 64

// compactMin is the dead-item floor below which compaction never runs:
// rebuilding a tiny queue costs more than lazily skipping its corpses.
const compactMin = 64

// Engine is the event queue and clock. The zero value is not usable;
// call NewEngine.
type Engine struct {
	now units.Time
	seq uint64

	// arena is the slab of scheduled events; free lists its recyclable
	// slots. heap orders arena indices by (at, seq). fifo is the
	// same-instant fast path: events scheduled for exactly the current
	// instant are appended here (seq order = FIFO order) and never
	// touch the heap. fifoHead is the ring's consume cursor.
	arena    []item
	free     []int32
	heap     []int32
	fifo     []int32
	fifoHead int
	// deadCount tracks cancelled events still occupying heap or fifo
	// slots, awaiting lazy removal or compaction.
	deadCount int

	fired   uint64
	halted  bool
	stop    func() bool
	pollNow bool // poll the stop condition at the next loop iteration
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		arena: make([]item, 0, 1024),
		heap:  make([]int32, 0, 1024),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Fired returns the number of events executed so far; useful as a
// progress measure and a determinism check in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events occupying queue slots, including
// cancelled events that have not been lazily removed or compacted yet.
// It is a capacity gauge, not a work gauge — use Live for the number of
// events that will actually fire.
func (e *Engine) Pending() int { return len(e.heap) + len(e.fifo) - e.fifoHead }

// Live returns the number of events that are scheduled and not
// cancelled — Pending minus the cancelled events awaiting removal.
// Progress estimates should use Live: a retry/fault-heavy run cancels
// timers in bulk, and counting those corpses inflates the denominator.
func (e *Engine) Live() int { return e.Pending() - e.deadCount }

// alloc claims an arena slot for (at, fn) and returns its index.
//saisvet:allocfree
func (e *Engine) alloc(at units.Time, fn Event) int32 {
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.arena = append(e.arena, item{})
		idx = int32(len(e.arena) - 1)
	}
	it := &e.arena[idx]
	it.at = at
	it.schedAt = e.now
	it.seq = e.seq
	it.origin = 0
	it.fn = fn
	it.dead = false
	e.seq++
	return idx
}

// release returns an arena slot to the free list, bumping its
// generation so stale Timer handles can never touch the next tenant.
//saisvet:allocfree
func (e *Engine) release(idx int32) {
	it := &e.arena[idx]
	it.fn = nil
	it.dead = true
	it.gen++
	e.free = append(e.free, idx)
}

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a modelling bug, and silently clamping
// would hide causality violations.
//saisvet:allocfree
func (e *Engine) At(at units.Time, fn Event) Timer {
	if fn == nil {
		panic("sim: nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (now=%v at=%v)", e.now, at))
	}
	idx := e.alloc(at, fn)
	if at == e.now {
		// Same-instant fast path: seq order is FIFO order, and the
		// fifo ring drains before the clock can advance, so the heap
		// never sees these events at all.
		e.fifo = append(e.fifo, idx)
	} else {
		e.heapPush(idx)
	}
	return Timer{eng: e, idx: idx, gen: e.arena[idx].gen}
}

// After schedules fn to run d after the current time.
//saisvet:allocfree
func (e *Engine) After(d units.Time, fn Event) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Immediately schedules fn to run at the current instant, after all
// events already scheduled for this instant.
func (e *Engine) Immediately(fn Event) Timer { return e.At(e.now, fn) }

// AtOrigin schedules fn at absolute time at, tagged with a nonzero
// origin key. Origin-tagged events at the same (at, schedAt) fire in
// origin order rather than scheduling order, which makes the firing
// order a function of the event's provenance instead of the engine's
// call sequence — the property sharded composition needs (frame
// deliveries are tagged with their source node, so two NICs whose
// frames collide on one instant order identically whether they share
// an engine or not). Tagged events always take the heap path, never
// the same-instant fifo ring: at equal (at, schedAt) the untagged
// fifo events (origin 0) still fire first, preserving a single total
// order.
//saisvet:allocfree
func (e *Engine) AtOrigin(at units.Time, origin uint64, fn Event) Timer {
	if origin == 0 {
		panic("sim: AtOrigin requires a nonzero origin")
	}
	if fn == nil {
		panic("sim: nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (now=%v at=%v)", e.now, at))
	}
	idx := e.alloc(at, fn)
	e.arena[idx].origin = origin
	e.heapPush(idx)
	return Timer{eng: e, idx: idx, gen: e.arena[idx].gen}
}

// ScheduleRemote injects an event that was logically scheduled at
// schedAt on another engine for delivery here at at. The full
// compound key (at, schedAt, origin) is supplied by the caller, so
// the event sorts exactly where it would have sorted had both nodes
// shared one engine. schedAt must not exceed at (causality) and
// origin must be nonzero (remote events are never in the local
// scheduling-order class).
//saisvet:allocfree
func (e *Engine) ScheduleRemote(at, schedAt units.Time, origin uint64, fn Event) Timer {
	if origin == 0 {
		panic("sim: ScheduleRemote requires a nonzero origin")
	}
	if schedAt > at {
		panic(fmt.Sprintf("sim: remote event violates causality (schedAt=%v at=%v)", schedAt, at))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (now=%v at=%v)", e.now, at))
	}
	idx := e.alloc(at, fn)
	it := &e.arena[idx]
	it.schedAt = schedAt
	it.origin = origin
	e.heapPush(idx)
	return Timer{eng: e, idx: idx, gen: it.gen}
}

// Halt stops the run loop after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// SetStop installs a stop condition polled by Run at event-loop
// granularity (immediately at the next loop iteration — even when
// installed mid-run from inside an event — then every
// stopPollInterval events). When cond returns true the loop returns
// early and Stopped reports true. The canonical use is context
// cancellation:
//
//	eng.SetStop(func() bool { return ctx.Err() != nil })
//
// A nil cond removes the condition.
func (e *Engine) SetStop(cond func() bool) {
	e.stop = cond
	e.pollNow = cond != nil
}

// Stopped reports whether the most recent Run returned because the
// stop condition fired (as opposed to draining the queue, hitting the
// deadline, or Halt).
func (e *Engine) Stopped() bool { return e.stopped }

// next locates the earliest live event without removing it, lazily
// discarding cancelled entries at the queue fronts. It reports whether
// the event sits in the fifo ring (true) or the heap (false), and
// whether any live event exists at all.
//saisvet:allocfree
func (e *Engine) next() (fromFifo, ok bool) {
	for e.fifoHead < len(e.fifo) {
		idx := e.fifo[e.fifoHead]
		if !e.arena[idx].dead {
			break
		}
		e.fifoHead++
		e.deadCount--
		e.release(idx)
	}
	if e.fifoHead == len(e.fifo) && len(e.fifo) > 0 {
		e.fifo = e.fifo[:0]
		e.fifoHead = 0
	}
	for len(e.heap) > 0 {
		idx := e.heap[0]
		if !e.arena[idx].dead {
			break
		}
		e.heapPop()
		e.deadCount--
		e.release(idx)
	}
	hasFifo := e.fifoHead < len(e.fifo)
	hasHeap := len(e.heap) > 0
	switch {
	case !hasFifo && !hasHeap:
		return false, false
	case !hasFifo:
		return false, true
	case !hasHeap:
		return true, true
	}
	f, h := &e.arena[e.fifo[e.fifoHead]], &e.arena[e.heap[0]]
	if keyLess(h, f) {
		return false, true
	}
	return true, true
}

// nextAt returns the (at) of the live event next() located; call only
// after next() reported ok.
//saisvet:allocfree
func (e *Engine) nextAt(fromFifo bool) units.Time {
	if fromFifo {
		return e.arena[e.fifo[e.fifoHead]].at
	}
	return e.arena[e.heap[0]].at
}

// fire pops and executes the live event next() located.
//saisvet:allocfree
func (e *Engine) fire(fromFifo bool) {
	var idx int32
	if fromFifo {
		idx = e.fifo[e.fifoHead]
		e.fifoHead++
		if e.fifoHead == len(e.fifo) {
			e.fifo = e.fifo[:0]
			e.fifoHead = 0
		}
	} else {
		idx = e.heapPop()
	}
	it := &e.arena[idx]
	if it.at < e.now {
		panic("sim: queue produced an event from the past")
	}
	e.now = it.at
	fn := it.fn
	e.release(idx)
	e.fired++
	// The slot is already recycled: fn may schedule freely (growing the
	// arena) without invalidating anything we still hold.
	//lint:alloc event-callback invocation: the callback's allocations belong to its owner's budget, not the loop's
	fn(e.now)
}

// Step pops and executes the single earliest pending event. It reports
// whether an event was executed (false means no live event remained).
//saisvet:allocfree
func (e *Engine) Step() bool {
	fromFifo, ok := e.next()
	if !ok {
		return false
	}
	e.fire(fromFifo)
	return true
}

// --- step primitives ---
//
// These decompose Run's loop so an external executor (internal/shard)
// can drive several engines under one logical clock: peek each
// engine's next event time, compute a safe horizon, and process
// events below it. They share next()'s lazy dead-event discard, so
// peeking has the same amortized cost as running.

// HasPendingEvents reports whether any live (non-cancelled) event
// remains queued.
func (e *Engine) HasPendingEvents() bool {
	_, ok := e.next()
	return ok
}

// PeekNextEventTime returns the time of the earliest live event
// without executing it. ok is false when the queue holds no live
// events.
func (e *Engine) PeekNextEventTime() (at units.Time, ok bool) {
	fromFifo, ok := e.next()
	if !ok {
		return 0, false
	}
	return e.nextAt(fromFifo), true
}

// ProcessNextEvent pops and executes the earliest live event,
// reporting whether one existed. It is Step under the name the
// executor layer uses; both exist because Step predates the sharding
// work and external callers depend on it.
func (e *Engine) ProcessNextEvent() bool { return e.Step() }

// RunBefore executes every event with time strictly below horizon and
// returns the number executed. The clock is left at the last executed
// event (not advanced to horizon): a later RunBefore or an injected
// remote event may still schedule work in [now, horizon). RunBefore
// ignores the Halt flag and stop condition — under sharded execution
// those belong to the composing executor, which checks them between
// rounds.
//saisvet:allocfree
func (e *Engine) RunBefore(horizon units.Time) int {
	n := 0
	for {
		fromFifo, ok := e.next()
		if !ok || e.nextAt(fromFifo) >= horizon {
			return n
		}
		e.fire(fromFifo)
		n++
	}
}

// Run executes events until the queue is empty, Halt is called, the
// stop condition installed by SetStop fires, or the clock passes
// deadline (units.Forever for no deadline). It returns the time at
// which the loop stopped.
//saisvet:allocfree
func (e *Engine) Run(deadline units.Time) units.Time {
	e.halted = false
	e.stopped = false
	sincePoll := 0
	for !e.halted {
		if e.stop != nil && (sincePoll == 0 || e.pollNow) {
			e.pollNow = false
			sincePoll = 0
			//lint:alloc caller-supplied stop condition, polled every 64 events — off the per-event path
			if e.stop() {
				e.stopped = true
				return e.now
			}
		}
		if sincePoll++; sincePoll == stopPollInterval {
			sincePoll = 0
		}
		fromFifo, ok := e.next()
		if !ok {
			return e.now
		}
		if e.nextAt(fromFifo) > deadline {
			e.now = deadline
			return e.now
		}
		e.fire(fromFifo)
	}
	return e.now
}

// RunUntilIdle executes events until the queue is empty.
func (e *Engine) RunUntilIdle() units.Time { return e.Run(units.Forever) }

// --- cancellation compaction ---

// maybeCompact triggers a bulk sweep of cancelled events once they
// outnumber the live ones (and exceed a floor that keeps tiny queues
// lazy). Retry- and fault-heavy runs cancel timers wholesale; without
// compaction those corpses deepen the heap and linger until their
// nominal expiry wanders to the front.
//saisvet:allocfree
func (e *Engine) maybeCompact() {
	if e.deadCount < compactMin || e.deadCount*2 <= e.Pending() {
		return
	}
	e.compact()
}

// compact removes every cancelled event from the heap and fifo in one
// O(n) pass and restores the heap property.
//saisvet:allocfree
func (e *Engine) compact() {
	live := e.heap[:0]
	for _, idx := range e.heap {
		if e.arena[idx].dead {
			e.release(idx)
		} else {
			live = append(live, idx)
		}
	}
	e.heap = live
	for i := len(e.heap)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
	out := e.fifo[:0]
	for _, idx := range e.fifo[e.fifoHead:] {
		if e.arena[idx].dead {
			e.release(idx)
		} else {
			out = append(out, idx)
		}
	}
	e.fifo = out
	e.fifoHead = 0
	e.deadCount = 0
}

// --- binary heap of arena indices ordered by (at, schedAt, origin, seq) ---

// keyLess is the engine's total event order. at first (time), then
// schedAt (events scheduled earlier fire first within an instant —
// for local events this is implied by seq and changes nothing), then
// origin (the composition tie-break class), then seq (local FIFO).
func keyLess(x, y *item) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	if x.schedAt != y.schedAt {
		return x.schedAt < y.schedAt
	}
	if x.origin != y.origin {
		return x.origin < y.origin
	}
	return x.seq < y.seq
}

func (e *Engine) less(a, b int32) bool {
	return keyLess(&e.arena[a], &e.arena[b])
}

//saisvet:allocfree
func (e *Engine) heapPush(idx int32) {
	e.heap = append(e.heap, idx)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

//saisvet:allocfree
func (e *Engine) heapPop() int32 {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		e.siftDown(0)
	}
	return top
}

//saisvet:allocfree
func (e *Engine) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(e.heap) && e.less(e.heap[l], e.heap[smallest]) {
			smallest = l
		}
		if r < len(e.heap) && e.less(e.heap[r], e.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
}
