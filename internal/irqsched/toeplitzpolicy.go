package irqsched

import (
	"sais/internal/apic"
	"sais/internal/toeplitz"
	"sais/internal/units"
)

// Toeplitz is receive-side scaling as real NICs implement it: the
// Microsoft Toeplitz hash of the flow identity indexes a 128-entry
// indirection table whose slots are filled round-robin over the cores
// at configuration time. Unlike FlowHash's ad-hoc integer mix, the
// hash and table sizes match the hardware spec, so steering skew
// (flows colliding on a slot) shows up at realistic magnitudes.
type Toeplitz struct {
	indir [128]int
	hits  uint64
	moved uint64 // target core absent from allowed; folded into allowed
}

// NewToeplitz builds the policy for a machine with cores cores
// (< 1 means 1). The indirection table is i mod cores — the default
// every OS programs before any rebalancing.
func NewToeplitz(cores int) *Toeplitz {
	if cores < 1 {
		cores = 1
	}
	t := &Toeplitz{}
	for i := range t.indir {
		t.indir[i] = i % cores
	}
	return t
}

// Name implements apic.Router.
func (t *Toeplitz) Name() string { return "toeplitz" }

// Route implements apic.Router.
func (t *Toeplitz) Route(_ apic.Vector, _ int, flow uint64, allowed []int, _ units.Time) int {
	target := t.indir[toeplitz.HashUint64(flow)&127]
	for _, c := range allowed {
		if c == target {
			t.hits++
			return c
		}
	}
	t.moved++
	return allowed[target%len(allowed)]
}

// Counters implements CounterReporter.
func (t *Toeplitz) Counters() map[string]uint64 {
	return map[string]uint64{
		"toeplitz_hits":  t.hits,
		"toeplitz_moved": t.moved,
	}
}
