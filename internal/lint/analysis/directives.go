package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directives indexes every //lint: suppression directive in a package
// and tracks which of them actually suppressed a finding. The driver
// builds one Directives per package and shares it across every
// analyzer's Pass, so after all analyzers have run, the entries that
// were never consulted positively are exactly the stale waivers the
// waiverhygiene analyzer reports.
type Directives struct {
	fset    *token.FileSet
	entries []*directiveEntry
	lines   map[string]map[int][]*directiveEntry // filename -> line -> entries
	pkg     map[string][]*directiveEntry         // directive name -> package-wide entries
}

// directiveEntry is one //lint: occurrence in the source.
type directiveEntry struct {
	name     string // directive name ("wallclock", "close", ...)
	pos      token.Pos
	pkgWide  bool // declared via //lint:package <name> in a file header
	used     bool // suppressed at least one finding
	testFile bool // lives in a _test.go file (analyzers never report there)
}

// NewDirectives scans every comment in files for //lint:<name>
// directives. The special name "package" declares a package-wide
// waiver: "//lint:package <name> reason" in a file header (on or above
// the package clause) suppresses <name> findings in every file of the
// package. A //lint:package comment below the package clause is inert —
// waivers must be visible where a reader looks for them.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	idx := &Directives{
		fset:  fset,
		lines: make(map[string]map[int][]*directiveEntry),
		pkg:   make(map[string][]*directiveEntry),
	}
	for _, f := range files {
		pkgLine := fset.Position(f.Package).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//lint:") {
					continue
				}
				rest := strings.TrimPrefix(text, "//lint:")
				name := rest
				if i := strings.IndexAny(name, " \t"); i >= 0 {
					name = name[:i]
				}
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				isTest := strings.HasSuffix(pos.Filename, "_test.go")
				if name == "package" {
					if pos.Filename == fset.Position(f.Package).Filename && pos.Line <= pkgLine {
						if fields := strings.Fields(rest); len(fields) >= 2 {
							e := &directiveEntry{name: fields[1], pos: c.Pos(), pkgWide: true, testFile: isTest}
							idx.entries = append(idx.entries, e)
							idx.pkg[fields[1]] = append(idx.pkg[fields[1]], e)
						}
					}
					continue
				}
				e := &directiveEntry{name: name, pos: c.Pos(), testFile: isTest}
				idx.entries = append(idx.entries, e)
				byLine := idx.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*directiveEntry)
					idx.lines[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], e)
			}
		}
	}
	return idx
}

// Suppressed reports whether a finding of kind name at pos is waived by
// a //lint:name directive on the same line or the line directly above,
// or by a package-wide //lint:package name header waiver. A positive
// answer marks the waiver as used for stale-waiver accounting.
func (idx *Directives) Suppressed(pos token.Pos, name string) bool {
	if es := idx.pkg[name]; len(es) > 0 {
		for _, e := range es {
			e.used = true
		}
		return true
	}
	p := idx.fset.Position(pos)
	byLine := idx.lines[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, e := range byLine[line] {
			if e.name == name {
				e.used = true
				return true
			}
		}
	}
	return false
}

// StaleEntry is one waiver that suppressed nothing, or a directive
// whose name no analyzer owns (usually a typo).
type StaleEntry struct {
	Pos     token.Pos
	Name    string
	PkgWide bool
	Unknown bool // the name is not a registered directive
}

// Stale returns, in position order, every directive that never
// suppressed a finding. known is the set of directive names the
// analyzer suite owns; a directive outside it is reported as unknown
// rather than stale (a typoed waiver suppresses nothing silently,
// which is worse than a stale one). Directives inside _test.go files
// are skipped: analyzers never report in tests, so waivers there are
// always inert and handled by the same unknown/stale diagnostics when
// they appear in shipped code instead.
func (idx *Directives) Stale(known map[string]bool) []StaleEntry {
	var out []StaleEntry
	for _, e := range idx.entries {
		if e.used || e.testFile {
			continue
		}
		out = append(out, StaleEntry{Pos: e.pos, Name: e.name, PkgWide: e.pkgWide, Unknown: !known[e.name]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
