package scenario

import (
	"fmt"
	"sort"

	"sais/cluster"
	"sais/internal/faults"
	"sais/internal/flowsim"
	"sais/internal/trace"
	"sais/internal/units"
)

// Violation is one broken runtime invariant: which rule, and the
// concrete evidence.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// stripID is the global identity of one strip's journey.
type stripID struct {
	client int
	tag    uint64
	strip  int
}

// opID identifies a transfer across the OpErrors rollup.
type opID struct {
	client int
	tag    uint64
}

// CheckInvariants verifies the structural properties every run must
// satisfy, whatever the configuration:
//
//	monotonic-clock  every span sits inside [0, Duration] with Start ≤ End
//	strip-terminal   every strip that appears in the span log reaches a
//	                 terminal account: a consume span, or a typed
//	                 OpError (abandoned or partial) for its transfer
//	strip-histogram  completed IRQ spans == the strip-latency histogram
//	                 count (every deposited strip was timed, once)
//	retry-budget     no retries with retries disabled; no OpError
//	                 beyond MaxRetries
//	crash-silence    no service span starts while its server is crashed
//	conservation     goodput never exceeds offered load, and equals it
//	                 on a healthy, lossless, retry-free run
//	clean-run        a healthy run has no duplicates, orphans, open
//	                 spans, failed or partial ops
//
// log may be nil (an unspanned run); span-based rules are skipped.
// The returned slice is empty when every invariant holds.
func CheckInvariants(cfg cluster.Config, res *cluster.Result, log *trace.SpanLog) []Violation {
	var vs []Violation
	add := func(inv, format string, args ...any) {
		vs = append(vs, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
	}

	plan := cfg.FaultPlan()
	healthy := plan.Empty() && res.Retries == 0 && cfg.RetryTimeout == 0

	// retry-budget.
	if cfg.RetryTimeout == 0 && res.Retries != 0 {
		add("retry-budget", "%d retries recorded with RetryTimeout disabled", res.Retries)
	}
	for _, e := range res.Faults.OpErrors {
		if e.Retries > cfg.MaxRetries {
			add("retry-budget", "op error %v spent %d retries, budget %d", e, e.Retries, cfg.MaxRetries)
		}
	}

	// conservation.
	if res.Faults.GoodputBytes > res.Faults.OfferedBytes {
		add("conservation", "goodput %v exceeds offered load %v",
			res.Faults.GoodputBytes, res.Faults.OfferedBytes)
	}
	if healthy && res.Faults.RingDrops == 0 && res.Faults.GoodputBytes != res.Faults.OfferedBytes {
		add("conservation", "healthy run delivered %v of %v offered",
			res.Faults.GoodputBytes, res.Faults.OfferedBytes)
	}

	// background-conservation: analytic load cannot be silently
	// dropped. Served never exceeds offered; offered balances served
	// plus backlog (fluid truncation leaves at most one byte per
	// station plus float rounding); a hybrid run whose mix carries any
	// mean rate must have offered something; and a classic run must
	// report no background bytes at all.
	if cfg.BackgroundUsers > 0 {
		off, srv, bck := res.BackgroundOfferedBytes, res.BackgroundServedBytes, res.BackgroundBacklogBytes
		if srv > off {
			add("background-conservation", "background served %v exceeds offered %v", srv, off)
		}
		// One truncated byte per station (bounded by nodes) plus float
		// rounding on the cumulative sums.
		slack := units.KiB + off/1000000
		if gap := off - srv - bck; gap < -slack || gap > slack {
			add("background-conservation", "offered %v != served %v + backlog %v (gap %v, slack %v)",
				off, srv, bck, gap, slack)
		}
		if res.Duration > 0 && off == 0 &&
			flowsim.MixMeanRate(cfg.TenantMix, cfg.BackgroundUsers) > 0 {
			add("background-conservation", "%d background users with a live mix offered no bytes over %v",
				cfg.BackgroundUsers, res.Duration)
		}
	} else if res.BackgroundOfferedBytes != 0 || res.BackgroundServedBytes != 0 || res.BackgroundBacklogBytes != 0 {
		add("background-conservation", "classic run reports background bytes: offered %v served %v backlog %v",
			res.BackgroundOfferedBytes, res.BackgroundServedBytes, res.BackgroundBacklogBytes)
	}

	// clean-run.
	if healthy {
		if res.Faults.DuplicateStrips != 0 {
			add("clean-run", "%d duplicate strips on a healthy run", res.Faults.DuplicateStrips)
		}
		if res.Faults.FailedOps != 0 || res.Faults.PartialOps != 0 {
			add("clean-run", "healthy run has %d failed / %d partial ops",
				res.Faults.FailedOps, res.Faults.PartialOps)
		}
		if log != nil {
			if o := log.Orphans(); o != 0 {
				add("clean-run", "%d orphan span ends on a healthy run", o)
			}
			if n := log.OpenCount(); n != 0 {
				add("clean-run", "%d spans still open on a healthy run", n)
			}
		}
	}

	if log == nil {
		return vs
	}
	spans := log.Spans()
	//lint:maporder PendingSpans sorts its snapshot by full span key before returning
	pending := log.PendingSpans()

	// monotonic-clock.
	badClock := 0
	var firstBad trace.Span
	for _, s := range spans {
		if s.Start < 0 || s.End < s.Start || s.End > res.Duration {
			if badClock == 0 {
				firstBad = s
			}
			badClock++
		}
	}
	if badClock > 0 {
		add("monotonic-clock", "%d spans outside [0, %v]; first: %s [%v, %v]",
			badClock, res.Duration, firstBad.Phase, firstBad.Start, firstBad.End)
	}

	// strip-terminal and strip-histogram.
	terminal := make(map[opID]bool, len(res.Faults.OpErrors))
	for _, e := range res.Faults.OpErrors {
		terminal[opID{int(e.Client), e.Tag}] = true
	}
	consumed := make(map[stripID]bool)
	var irqSpans uint64
	for _, s := range spans {
		switch s.Phase {
		case trace.PhaseConsume:
			consumed[stripID{s.Client, s.Tag, s.Strip}] = true
		case trace.PhaseIRQ:
			irqSpans++
		}
	}
	if irqSpans != res.StripCount {
		add("strip-histogram", "%d completed irq spans vs %d strips in the latency histogram",
			irqSpans, res.StripCount)
	}
	seen := make(map[stripID]bool)
	collectStrip := func(s trace.Span) {
		if s.Phase == trace.PhaseConsume {
			return // consume spans are the terminal account itself
		}
		seen[stripID{s.Client, s.Tag, s.Strip}] = true
	}
	for _, s := range spans {
		collectStrip(s)
	}
	for _, s := range pending {
		collectStrip(s)
	}
	ids := make([]stripID, 0, len(seen))
	//lint:maporder sorted immediately below
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a.client != b.client {
			return a.client < b.client
		}
		if a.tag != b.tag {
			return a.tag < b.tag
		}
		return a.strip < b.strip
	})
	lost := 0
	var firstLost stripID
	for _, id := range ids {
		if consumed[id] || terminal[opID{id.client, id.tag}] {
			continue
		}
		if lost == 0 {
			firstLost = id
		}
		lost++
	}
	if lost > 0 {
		add("strip-terminal", "%d strips issued but neither consumed nor accounted by an OpError; first: client %d tag %d strip %d",
			lost, firstLost.client, firstLost.tag, firstLost.strip)
	}

	// crash-silence: replay the plan's timeline into per-server crash
	// windows (idempotent crash/revive, like the injector) and demand no
	// service span starts inside one.
	windows := crashWindows(cfg)
	if len(windows) > 0 {
		silent := 0
		var firstNoisy trace.Span
		for _, s := range spans {
			if s.Phase != trace.PhaseService {
				continue
			}
			for _, w := range windows[s.Server] {
				if s.Start > w.from && s.Start < w.to {
					if silent == 0 {
						firstNoisy = s
					}
					silent++
					break
				}
			}
		}
		if silent > 0 {
			add("crash-silence", "%d service spans started inside a crash window; first: server %d at %v",
				silent, firstNoisy.Server, firstNoisy.Start)
		}
	}
	return vs
}

// window is one [from, to) downtime interval.
type window struct{ from, to units.Time }

// crashWindows replays the config's merged fault timeline into
// downtime intervals keyed by server *node id* (the id service spans
// carry), using the same idempotent crash/revive semantics as the
// injector. A crash without a revive stays down forever.
func crashWindows(cfg cluster.Config) map[int][]window {
	plan := cfg.FaultPlan()
	if plan.Empty() {
		return nil
	}
	events := append([]faults.TimelineEvent(nil), plan.Timeline...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	_, serverIDs, _ := cfg.NodeLayout()
	out := make(map[int][]window)
	downSince := make(map[int]units.Time)
	down := make(map[int]bool)
	for _, ev := range events {
		switch ev.Kind {
		case faults.KindCrash:
			if !down[ev.Server] {
				down[ev.Server] = true
				downSince[ev.Server] = ev.At
			}
		case faults.KindRevive:
			if down[ev.Server] {
				down[ev.Server] = false
				id := int(serverIDs[ev.Server])
				out[id] = append(out[id], window{from: downSince[ev.Server], to: ev.At})
			}
		}
	}
	//lint:maporder order-independent: each server contributes at most one open window, to its own key
	for srv, isDown := range down {
		if isDown {
			id := int(serverIDs[srv])
			out[id] = append(out[id], window{from: downSince[srv], to: units.Forever})
		}
	}
	return out
}
