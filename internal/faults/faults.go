// Package faults is the unified, deterministic fault-injection
// subsystem of the SAIs reproduction. A Plan is a declarative,
// serializable chaos specification — per-link loss and corruption
// probabilities, per-server stall distributions, and a timeline of
// scheduled events (server crashes and revivals, link degradation,
// interrupt storms). An Injector arms a Plan against a built cluster by
// installing the primitives the simulator already exposes
// (Fabric.SetLoss/SetCorruption, pfs.Server.SetDown/SetStall) and
// registering sim.Engine events for the timeline, so identical
// (plan, seed) pairs replay byte-identically.
//
// The package deliberately knows nothing about the cluster package:
// it operates on the fabric, the servers, and the engine directly, and
// cluster wires it in. Every random draw comes from a labelled Split of
// the run's seeded rng.Source, never from global state.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"sais/internal/units"
)

// Kind names one timeline event type. Kinds are strings so plan files
// stay readable and diffable.
type Kind string

// The timeline event vocabulary.
const (
	// KindCrash takes Server down at At: the node drops every frame it
	// receives until revived.
	KindCrash Kind = "crash"
	// KindRevive brings Server back at At.
	KindRevive Kind = "revive"
	// KindDegradeLink scales the fabric's forwarding latency by Factor
	// from At on (Factor 1 restores the healthy switch).
	KindDegradeLink Kind = "degrade-link"
	// KindStormStart begins an interrupt storm at At: a ghost node
	// sprays junk frames of Payload bytes at the target client (Client
	// index, -1 = every client) every Period until the matching
	// storm-stop. Each frame costs the victim an interrupt plus stray
	// protocol processing — the classic receive-livelock ingredient.
	KindStormStart Kind = "storm-start"
	// KindStormStop ends the most recently started storm.
	KindStormStop Kind = "storm-stop"
)

// TimelineEvent is one scheduled fault. Fields beyond At/Kind are
// interpreted per kind; unused fields must be zero.
type TimelineEvent struct {
	At   units.Time
	Kind Kind
	// Server is the target server index for crash/revive.
	Server int
	// Client is the target client index for storm-start; -1 storms
	// every client.
	Client int
	// Factor scales the fabric latency for degrade-link; must be > 0.
	Factor float64
	// Period is the inter-frame gap of a storm; must be > 0.
	Period units.Time
	// Payload is the junk-frame payload of a storm (0 = header-only
	// frames, which still cost an interrupt each).
	Payload units.Bytes
}

// Stall describes a per-server service-delay distribution: a fraction
// Rate of requests is delayed by a truncated-normal draw around Mean
// with standard deviation Jitter (Jitter 0 = the fixed Mean).
type Stall struct {
	// Server is the target server index; -1 applies to every server.
	Server int
	Rate   float64
	Mean   units.Time
	Jitter units.Time
}

// Plan is a complete, serializable fault specification. The zero Plan
// injects nothing.
type Plan struct {
	// Loss is the per-frame drop probability on the fabric, [0, 1).
	Loss float64
	// Corrupt is the per-frame header-corruption probability, [0, 1).
	// Corrupted frames reach the receiver but fail IPv4 validation.
	Corrupt float64
	// Stalls are per-server service-delay distributions.
	Stalls []Stall
	// Timeline is the scheduled fault sequence. It is normalized to
	// non-decreasing At order (stably) before validation and arming.
	Timeline []TimelineEvent
}

// Clone returns a deep copy of p (nil-safe).
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	cp := &Plan{Loss: p.Loss, Corrupt: p.Corrupt}
	cp.Stalls = append([]Stall(nil), p.Stalls...)
	cp.Timeline = append([]TimelineEvent(nil), p.Timeline...)
	return cp
}

// Empty reports whether the plan injects nothing (nil-safe).
func (p *Plan) Empty() bool {
	return p == nil || (p.Loss == 0 && p.Corrupt == 0 && len(p.Stalls) == 0 && len(p.Timeline) == 0)
}

// Merge overlays extra onto base, returning a new plan (nil-safe on
// both sides): scalar rates take the larger value, stall distributions
// and timeline events concatenate. The scenario engine uses it to
// combine a hand-written base plan with a generated chaos timeline;
// the merged plan still has to pass Validate when it meets a cluster.
func Merge(base, extra *Plan) *Plan {
	if extra.Empty() {
		return base.Clone()
	}
	if base.Empty() {
		return extra.Clone()
	}
	m := base.Clone()
	if extra.Loss > m.Loss {
		m.Loss = extra.Loss
	}
	if extra.Corrupt > m.Corrupt {
		m.Corrupt = extra.Corrupt
	}
	m.Stalls = append(m.Stalls, extra.Stalls...)
	m.Timeline = append(m.Timeline, extra.Timeline...)
	return m
}

// sortedTimeline returns the timeline stably ordered by At.
func (p *Plan) sortedTimeline() []TimelineEvent {
	tl := append([]TimelineEvent(nil), p.Timeline...)
	sort.SliceStable(tl, func(i, j int) bool { return tl[i].At < tl[j].At })
	return tl
}

// Validate checks the plan against a cluster of the given shape. It is
// nil-safe: a nil plan is valid.
func (p *Plan) Validate(servers, clients int) error {
	if p == nil {
		return nil
	}
	if p.Loss < 0 || p.Loss >= 1 {
		return fmt.Errorf("faults: loss %v outside [0,1)", p.Loss)
	}
	if p.Corrupt < 0 || p.Corrupt >= 1 {
		return fmt.Errorf("faults: corrupt %v outside [0,1)", p.Corrupt)
	}
	stalled := make(map[int]bool)
	for i, s := range p.Stalls {
		if s.Server < -1 || s.Server >= servers {
			return fmt.Errorf("faults: stall %d targets server %d of %d", i, s.Server, servers)
		}
		if s.Rate < 0 || s.Rate > 1 {
			return fmt.Errorf("faults: stall %d rate %v outside [0,1]", i, s.Rate)
		}
		if s.Mean < 0 || s.Jitter < 0 {
			return fmt.Errorf("faults: stall %d has negative delay", i)
		}
		lo, hi := s.Server, s.Server
		if s.Server == -1 {
			lo, hi = 0, servers-1
		}
		for srv := lo; srv <= hi; srv++ {
			if stalled[srv] {
				return fmt.Errorf("faults: stall %d re-targets server %d", i, srv)
			}
			stalled[srv] = true
		}
	}
	stormOpen := false
	for i, ev := range p.sortedTimeline() {
		if ev.At < 0 {
			return fmt.Errorf("faults: event %d at negative time %v", i, ev.At)
		}
		switch ev.Kind {
		case KindCrash, KindRevive:
			if ev.Server < 0 || ev.Server >= servers {
				return fmt.Errorf("faults: %s event %d targets server %d of %d", ev.Kind, i, ev.Server, servers)
			}
		case KindDegradeLink:
			// Factors below 1 would shrink the fabric latency under the
			// sharded executor's lookahead; the rule is uniform — shards=1
			// used to accept them silently and diverge from sharded runs of
			// the same plan. The upper bound keeps the scaled latency far
			// from int64 overflow for any sane fabric.
			if ev.Factor < 1 || ev.Factor > 1e6 {
				return fmt.Errorf("faults: degrade-link event %d factor %v outside [1, 1e6] (a degraded link is slower, never faster)", i, ev.Factor)
			}
		case KindStormStart:
			if stormOpen {
				return fmt.Errorf("faults: storm-start event %d while a storm is active", i)
			}
			if ev.Period <= 0 {
				return fmt.Errorf("faults: storm-start event %d period %v must be positive", i, ev.Period)
			}
			if ev.Payload < 0 {
				return fmt.Errorf("faults: storm-start event %d negative payload", i)
			}
			if ev.Client < -1 || ev.Client >= clients {
				return fmt.Errorf("faults: storm-start event %d targets client %d of %d", i, ev.Client, clients)
			}
			stormOpen = true
		case KindStormStop:
			if !stormOpen {
				return fmt.Errorf("faults: storm-stop event %d without an active storm", i)
			}
			stormOpen = false
		default:
			return fmt.Errorf("faults: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	if stormOpen {
		// An unterminated storm would tick forever and the engine would
		// never drain; every storm must be bounded.
		return fmt.Errorf("faults: storm-start without a matching storm-stop")
	}
	return nil
}

// WritePlan serializes p as indented JSON.
func WritePlan(w io.Writer, p *Plan) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadPlan parses a fault plan, rejecting unknown fields so typos in
// hand-written chaos specs surface immediately. Shape validation
// (server/client ranges) happens when the plan meets a cluster config.
func ReadPlan(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	p := &Plan{}
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("faults: parsing plan: %w", err)
	}
	return p, nil
}

// LoadPlan reads a fault-plan file.
func LoadPlan(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPlan(f)
}

// SavePlan writes a fault-plan file. The close error is checked so a
// truncated plan (full disk) is reported instead of silently saved.
func SavePlan(path string, p *Plan) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return WritePlan(f, p)
}
