package experiments

// Policy-matrix experiment: every registered steering policy crossed
// with a small workload family. This is the registry's showcase — the
// policy list is taken from the irqsched registry, not hard-coded, so a
// newly registered baseline appears in the matrix without touching this
// file. The columns surface what the literature baselines differ on:
// strip-latency percentiles (the per-strip softirq service distribution,
// where Flow Director's splits and irqbalance's migrations show up) and
// the reorder metric (the Wu et al. pathology counter, which must be
// zero for every policy that keeps a flow on one core).

import (
	"context"
	"fmt"
	"strings"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/runner"
	"sais/internal/units"
)

// MatrixWorkload is one named workload shape of the matrix: a mutation
// applied to the base cluster config.
type MatrixWorkload struct {
	Name string
	Mut  func(*cluster.Config)
}

// MatrixWorkloads is the default workload family: the healthy
// sequential read, the readahead-defeating random read, a stalling
// server (the straggler-aware client's target case), and the parallel
// write (where returned acks carry no data and the policies should tie).
var MatrixWorkloads = []MatrixWorkload{
	{Name: "seq-read", Mut: func(c *cluster.Config) {}},
	{Name: "rand-read", Mut: func(c *cluster.Config) { c.RandomAccess = true }},
	{Name: "stall", Mut: func(c *cluster.Config) {
		c.ServerStall = 2 * units.Millisecond
		c.ServerStallRate = 0.25
	}},
	{Name: "write", Mut: func(c *cluster.Config) { c.WriteWorkload = true }},
}

// PolicyMatrixSweep is a policy × workload study.
type PolicyMatrixSweep struct {
	Title     string
	Policies  []irqsched.PolicyKind
	Workloads []MatrixWorkload
	// Config is the base cluster; policy, workload mutation, and seed
	// are applied per cell.
	Config   cluster.Config
	Seed     uint64
	Parallel int
	Progress func(done, total int)
}

// MatrixCell is one (workload, policy) measurement.
type MatrixCell struct {
	Workload string
	Policy   string
	// Bandwidth is goodput in MB/s.
	Bandwidth float64
	// Strip-latency percentiles in microseconds: the issue-to-arrival
	// distribution of individual strips.
	StripP50 float64
	StripP95 float64
	StripP99 float64
	// Reordered and ReorderDepth are the Wu et al. pathology counters:
	// strip frames that completed softirq processing out of send order,
	// and the worst observed sequence regression.
	Reordered    uint64
	ReorderDepth uint64
}

// MatrixReport is a completed sweep.
type MatrixReport struct {
	Title string
	Cells []MatrixCell
}

// PolicyMatrix returns the default matrix: every registered policy
// against MatrixWorkloads on the §V testbed scaled down for turnaround.
func PolicyMatrix() PolicyMatrixSweep {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 8
	cfg.TransferSize = 256 * units.KiB
	cfg.BytesPerProc = 2 * units.MiB
	return PolicyMatrixSweep{
		Title:     "Policy matrix: strip latency and reordering per policy and workload",
		Policies:  irqsched.Kinds(),
		Workloads: MatrixWorkloads,
		Config:    cfg,
		Seed:      1,
	}
}

// Run executes the sweep.
func (m PolicyMatrixSweep) Run() (*MatrixReport, error) {
	return m.RunContext(context.Background())
}

// RunContext executes the sweep under ctx. Cells run on the shared
// runner engine, results landing at fixed indices, so the report is
// identical regardless of worker count.
func (m PolicyMatrixSweep) RunContext(ctx context.Context) (*MatrixReport, error) {
	if len(m.Policies) == 0 || len(m.Workloads) == 0 {
		return nil, fmt.Errorf("experiments: policy matrix needs policies and workloads")
	}
	n := len(m.Workloads) * len(m.Policies)
	//lint:goroutine runner.Map joins all workers and returns rows in point order; per-cell output is seed-deterministic
	cells, err := runner.Map(ctx, n,
		runner.Options{Workers: m.Parallel, OnProgress: m.Progress},
		func(ctx context.Context, i int) (MatrixCell, error) {
			wl := m.Workloads[i/len(m.Policies)]
			pol := m.Policies[i%len(m.Policies)]
			cfg := m.Config
			wl.Mut(&cfg)
			cfg.Policy = pol
			cfg.Seed = m.Seed
			if cfg.Seed == 0 {
				cfg.Seed = 1
			}
			res, err := cluster.RunContext(ctx, cfg)
			if err != nil {
				return MatrixCell{}, fmt.Errorf("policymatrix %s/%s: %w", wl.Name, pol, err)
			}
			return MatrixCell{
				Workload:     wl.Name,
				Policy:       res.Policy,
				Bandwidth:    float64(res.Bandwidth) / float64(units.MBps),
				StripP50:     float64(res.StripLatencyP50) / float64(units.Microsecond),
				StripP95:     float64(res.StripLatencyP95) / float64(units.Microsecond),
				StripP99:     float64(res.StripLatencyP99) / float64(units.Microsecond),
				Reordered:    res.ReorderedFrames,
				ReorderDepth: res.ReorderDepthMax,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &MatrixReport{Title: m.Title, Cells: cells}, nil
}

// Table renders the sweep as a fixed-width text table, one row per
// (workload, policy) cell.
func (r *MatrixReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-10s %-12s %10s %12s %12s %12s %10s %7s\n",
		"workload", "policy", "MB/s", "P50 (µs)", "P95 (µs)", "P99 (µs)", "reordered", "depth")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-10s %-12s %10.1f %12.1f %12.1f %12.1f %10d %7d\n",
			c.Workload, c.Policy, c.Bandwidth,
			c.StripP50, c.StripP95, c.StripP99, c.Reordered, c.ReorderDepth)
	}
	return b.String()
}

// CSV renders the sweep as comma-separated rows with a header line.
func (r *MatrixReport) CSV() string {
	var b strings.Builder
	b.WriteString("workload,policy,bandwidth_mbps,strip_p50_us,strip_p95_us,strip_p99_us,reordered_frames,reorder_depth_max\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%s,%s,%.6f,%.6f,%.6f,%.6f,%d,%d\n",
			c.Workload, c.Policy, c.Bandwidth,
			c.StripP50, c.StripP95, c.StripP99, c.Reordered, c.ReorderDepth)
	}
	return b.String()
}
