package textplot

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func sample() *Chart {
	return &Chart{
		Title:  "bandwidth",
		Labels: []string{"8 nodes", "16 nodes"},
		Series: []Series{
			{Name: "irqbalance", Values: []float64{190, 210}},
			{Name: "sais", Values: []float64{205, 255}},
		},
		Width: 20,
	}
}

func TestRenderBasics(t *testing.T) {
	out, err := sample().Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bandwidth", "8 nodes", "16 nodes", "irqbalance", "sais", "255"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+4 { // title + 2 labels × 2 series
		t.Errorf("lines = %d, want 5", len(lines))
	}
}

func TestBarsScaleToMax(t *testing.T) {
	c := sample()
	out, _ := c.Render()
	// The max value (255) must render a full-width bar; 190 shorter.
	countBar := func(line string, glyph rune) int {
		n := 0
		for _, r := range line {
			if r == glyph {
				n++
			}
		}
		return n
	}
	var full, small int
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "255") {
			full = countBar(line, '░')
		}
		if strings.Contains(line, "190") {
			small = countBar(line, '█')
		}
	}
	if full != 20 {
		t.Errorf("max bar = %d glyphs, want full width 20", full)
	}
	if small >= full || small < 1 {
		t.Errorf("smaller bar = %d glyphs vs max %d", small, full)
	}
}

func TestValidation(t *testing.T) {
	bad := []*Chart{
		{},
		{Labels: []string{"a"}},
		{Labels: []string{"a"}, Series: []Series{{Name: "x", Values: []float64{1, 2}}}},
	}
	for i, c := range bad {
		if _, err := c.Render(); err == nil {
			t.Errorf("case %d rendered", i)
		}
	}
}

func TestNonPositiveValues(t *testing.T) {
	c := &Chart{
		Labels: []string{"a"},
		Series: []Series{{Name: "x", Values: []float64{-5}}},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-5") {
		t.Errorf("negative value not shown: %s", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if utf8.RuneCountInString(s) != 8 {
		t.Errorf("sparkline runes = %d", utf8.RuneCountInString(s))
	}
	if !strings.HasPrefix(s, "▁") || !strings.HasSuffix(s, "█") {
		t.Errorf("sparkline = %q, want rising ramp", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
	// Constant values: all the same glyph, no panic.
	flat := Sparkline([]float64{3, 3, 3})
	if utf8.RuneCountInString(flat) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestDefaultWidth(t *testing.T) {
	c := sample()
	c.Width = 0
	out, err := c.Render()
	if err != nil || out == "" {
		t.Fatalf("render failed: %v", err)
	}
}
