package pfs

import (
	"testing"
	"testing/quick"

	"sais/internal/netsim"
	"sais/internal/rng"
	"sais/internal/units"
)

func testLayout(ns int) Layout {
	servers := make([]netsim.NodeID, ns)
	for i := range servers {
		servers[i] = netsim.NodeID(100 + i)
	}
	return Layout{StripSize: 64 * units.KiB, Servers: servers}
}

func TestLayoutValidate(t *testing.T) {
	if err := testLayout(4).Validate(); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
	bad := []Layout{
		{StripSize: 0, Servers: []netsim.NodeID{1}},
		{StripSize: 64 * units.KiB},
		{StripSize: 64 * units.KiB, Servers: []netsim.NodeID{1, 1}},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: bad layout accepted", i)
		}
	}
}

func TestExtentsAlignedTransfer(t *testing.T) {
	l := testLayout(4)
	// 1 MiB transfer at offset 0 = 16 strips over 4 servers, 4 each.
	plans, err := l.Extents(0, units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 4 {
		t.Fatalf("plans for %d servers, want 4", len(plans))
	}
	for si, p := range plans {
		if len(p.Pieces) != 4 {
			t.Errorf("server %d has %d pieces, want 4", si, len(p.Pieces))
		}
		for j, piece := range p.Pieces {
			if piece.Size != 64*units.KiB {
				t.Errorf("piece size = %v", piece.Size)
			}
			wantStrip := si + 4*j
			if piece.GlobalStrip != wantStrip {
				t.Errorf("server %d piece %d strip = %d, want %d", si, j, piece.GlobalStrip, wantStrip)
			}
			wantLocal := units.Bytes(j) * 64 * units.KiB
			if piece.ServerOffset != wantLocal {
				t.Errorf("server %d piece %d local offset = %v, want %v", si, j, piece.ServerOffset, wantLocal)
			}
		}
	}
}

func TestExtentsWithOffset(t *testing.T) {
	l := testLayout(2)
	// Transfer starting at strip 3 (offset 192 KiB), length 128 KiB:
	// strips 3 (server 1, local 1*64K) and 4 (server 0, local 2*64K).
	plans, err := l.Extents(192*units.KiB, 128*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans = %d", len(plans))
	}
	var s0, s1 *ServerPlan
	for i := range plans {
		switch plans[i].ServerIdx {
		case 0:
			s0 = &plans[i]
		case 1:
			s1 = &plans[i]
		}
	}
	if s1 == nil || s1.Pieces[0].GlobalStrip != 3 || s1.Pieces[0].ServerOffset != 64*units.KiB {
		t.Errorf("server1 plan = %+v", s1)
	}
	if s0 == nil || s0.Pieces[0].GlobalStrip != 4 || s0.Pieces[0].ServerOffset != 128*units.KiB {
		t.Errorf("server0 plan = %+v", s0)
	}
}

func TestExtentsUnaligned(t *testing.T) {
	l := testLayout(2)
	// 100 KiB starting 10 KiB into strip 0: piece A = 54 KiB of strip 0,
	// piece B = 46 KiB of strip 1.
	plans, err := l.Extents(10*units.KiB, 100*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	var total units.Bytes
	for _, p := range plans {
		for _, piece := range p.Pieces {
			total += piece.Size
		}
	}
	if total != 100*units.KiB {
		t.Errorf("pieces sum to %v, want 100KiB", total)
	}
}

func TestExtentsErrors(t *testing.T) {
	l := testLayout(2)
	if _, err := l.Extents(-1, 10); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := l.Extents(0, 0); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := (Layout{}).Extents(0, 10); err == nil {
		t.Error("invalid layout accepted")
	}
}

func TestStripCount(t *testing.T) {
	l := testLayout(4)
	if got := l.StripCount(0, units.MiB); got != 16 {
		t.Errorf("StripCount(0,1MiB) = %d, want 16", got)
	}
	if got := l.StripCount(63*units.KiB, 2*units.KiB); got != 2 {
		t.Errorf("straddling count = %d, want 2", got)
	}
	if got := l.StripCount(0, 0); got != 0 {
		t.Errorf("zero length count = %d", got)
	}
}

// Property: extents partition the byte range exactly — sizes sum to
// length, pieces are disjoint, and local offsets are consistent with
// the round-robin distribution.
func TestExtentsPartitionProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		ns := r.Intn(8) + 1
		l := testLayout(ns)
		offset := units.Bytes(r.Int63n(int64(4 * units.MiB)))
		length := units.Bytes(r.Int63n(int64(4*units.MiB))) + 1
		plans, err := l.Extents(offset, length)
		if err != nil {
			return false
		}
		var total units.Bytes
		seen := map[int]bool{}
		for _, p := range plans {
			var prevOff units.Bytes = -1
			for _, piece := range p.Pieces {
				if piece.Size <= 0 || piece.Size > l.StripSize {
					return false
				}
				if piece.GlobalStrip%ns != p.ServerIdx {
					return false
				}
				if seen[piece.GlobalStrip] {
					return false // a strip may appear at most once
				}
				seen[piece.GlobalStrip] = true
				if piece.ServerOffset <= prevOff {
					return false // ascending local order
				}
				prevOff = piece.ServerOffset
				total += piece.Size
			}
		}
		return total == length && len(seen) == l.StripCount(offset, length)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestReadRequestTotalBytes(t *testing.T) {
	r := ReadRequest{Pieces: []Piece{{Size: 10}, {Size: 20}}}
	if r.TotalBytes() != 30 {
		t.Errorf("TotalBytes = %d", r.TotalBytes())
	}
}

func TestLocalBytes(t *testing.T) {
	l := testLayout(4)
	l.Size = units.MiB // 16 strips over 4 servers: 4 each
	for i := 0; i < 4; i++ {
		if got := l.LocalBytes(i); got != 256*units.KiB {
			t.Errorf("server %d local = %v, want 256KiB", i, got)
		}
	}
	// 17 strips: the extra one lands on server 0.
	l.Size = units.MiB + 1
	if got := l.LocalBytes(0); got != 320*units.KiB {
		t.Errorf("server 0 local = %v, want 320KiB", got)
	}
	if got := l.LocalBytes(1); got != 256*units.KiB {
		t.Errorf("server 1 local = %v", got)
	}
	// Unknown size disables the computation.
	l.Size = 0
	if l.LocalBytes(0) != 0 {
		t.Error("zero size should report 0")
	}
}
