package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckPackageFindsViolation drives the unitchecker entry point
// directly: a hand-built vet.cfg describing a one-file package with a
// seed+i bug must produce a seedderive diagnostic and an (empty) vetx
// facts file.
func TestCheckPackageFindsViolation(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	const code = `package p

func fanOut(seed uint64, i uint64) uint64 { return seed + i }
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "vet.out")
	cfg := vetConfig{
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "sais/internal/sim",
		GoFiles:    []string{src},
		ImportMap:  map[string]string{},
		VetxOutput: vetx,
	}
	js, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, js, 0o666); err != nil {
		t.Fatal(err)
	}

	diags, err := checkPackage(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0], "seedderive") || !strings.Contains(diags[0], "rng.Derive") {
		t.Errorf("diagnostics = %q, want one seedderive finding suggesting rng.Derive", diags)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx facts file not written: %v", err)
	}
}

// TestCheckPackageVetxOnly: dependency-only invocations must write the
// facts file and report nothing, without even parsing the package.
func TestCheckPackageVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "vet.out")
	cfg := vetConfig{
		Compiler:   "gc",
		ImportPath: "sais/internal/sim",
		GoFiles:    []string{filepath.Join(dir, "does-not-exist.go")},
		VetxOnly:   true,
		VetxOutput: vetx,
	}
	js, _ := json.Marshal(cfg)
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, js, 0o666); err != nil {
		t.Fatal(err)
	}
	diags, err := checkPackage(cfgPath)
	if err != nil || len(diags) != 0 {
		t.Errorf("VetxOnly run: diags=%v err=%v, want none", diags, err)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx facts file not written: %v", err)
	}
}

// TestVetToolCleanOnRepo is the acceptance smoke test: build saisvet
// and run it through the real `go vet -vettool` protocol over the whole
// module, which must be finding-free. This also exercises the -V=full
// buildID handshake, the per-package cfg runs, and the export-data
// importer against every package in the tree.
func TestVetToolCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module go vet in -short mode")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "saisvet")

	build := exec.Command("go", "build", "-o", bin, "./cmd/saisvet")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building saisvet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = repoRoot
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool reported findings or failed: %v\n%s", err, out)
	}
}
