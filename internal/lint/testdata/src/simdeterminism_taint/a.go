// Fixture for simdeterminism's transitive taint analysis: a
// deterministic package calling a function whose goroutine hazard lives
// in a dependency — and is only visible through the dependency's
// exported facts — plus an untainted dependency call and the
// //lint:goroutine hatch.
package main

import "sais/internal/sdet"

func tick() {
	sdet.Spawn(func() {}) // want `call from deterministic package sais/internal/sim to goroutine-tainted sais/internal/sdet.Spawn`
}

func fine(x int) int {
	return sdet.Pure(x) // no finding: the dependency function is untainted
}

func reviewed() {
	//lint:goroutine fixture: the spawn joins before return
	sdet.Spawn(func() {})
}

func main() {}
