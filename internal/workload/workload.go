// Package workload generates the IOR-like access pattern of the
// paper's evaluation: N application processes, each pinned to a core,
// each performing synchronous sequential reads of a fixed transfer size
// over its file until a byte budget is exhausted — with the added
// per-request compute ("encrypt") that the client's cost model charges.
package workload

import (
	"fmt"

	"sais/internal/client"
	"sais/internal/collective"
	"sais/internal/pfs"
	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/units"
)

// IORConfig describes one client's process set.
type IORConfig struct {
	Procs        int         // application processes on the client
	TransferSize units.Bytes // bytes per read()/write() call
	BytesPerProc units.Bytes // total bytes each process transfers
	FirstFile    pfs.FileID  // process i uses FirstFile + i
	FirstCore    int         // process i is pinned to (FirstCore+i) mod cores
	Stagger      units.Time  // start offset between processes
	Write        bool        // run the write workload instead of reads
	// RandomAccess permutes each process's transfer order (IOR's random
	// option), defeating server-side readahead. Seed controls the
	// permutation.
	RandomAccess bool
	// Segmented selects IOR's shared-file segmented layout: all
	// processes read ONE file (FirstFile) in which transfer k of
	// process i lives at offset (k*Procs + i) * TransferSize — the
	// interleaving that makes per-process streams stride across the
	// file. Default: one private file per process, contiguous.
	Segmented bool
	// ThinkTime inserts a fixed delay between a process's transfers
	// (IOR's inter-test delay, -d) — a knob for duty-cycle studies.
	ThinkTime units.Time
	// Aggregators > 0 switches to MPI-IO-style collective reads: each
	// round, the processes read one shared-file stripe of
	// Procs×TransferSize bytes through that many aggregators (two-phase
	// I/O), instead of issuing independent transfers.
	Aggregators int
	Seed        uint64
}

// Validate checks the workload is runnable.
func (c IORConfig) Validate() error {
	switch {
	case c.Procs <= 0:
		return fmt.Errorf("workload: procs %d must be positive", c.Procs)
	case c.TransferSize <= 0:
		return fmt.Errorf("workload: transfer size must be positive")
	case c.BytesPerProc < c.TransferSize:
		return fmt.Errorf("workload: per-proc bytes %v below one transfer %v", c.BytesPerProc, c.TransferSize)
	case c.Stagger < 0:
		return fmt.Errorf("workload: negative stagger")
	case c.ThinkTime < 0:
		return fmt.Errorf("workload: negative think time")
	case c.Aggregators < 0:
		return fmt.Errorf("workload: negative aggregator count")
	case c.Aggregators > 0 && c.Write:
		return fmt.Errorf("workload: collective mode implements reads only")
	}
	return nil
}

// Transfers returns the number of read() calls each process makes.
func (c IORConfig) Transfers() int {
	return int(c.BytesPerProc / c.TransferSize)
}

// IOR drives the processes of one client node.
type IOR struct {
	cfg       IORConfig
	node      *client.Node
	remaining int
	finished  units.Time
	onDone    sim.Event
	perProc   []units.Time // completion time of each process
}

// NewIOR builds the workload over node. onDone (optional) fires when
// every process has consumed its full byte budget.
func NewIOR(node *client.Node, cfg IORConfig, onDone sim.Event) (*IOR, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &IOR{
		cfg:     cfg,
		node:    node,
		onDone:  onDone,
		perProc: make([]units.Time, cfg.Procs),
	}, nil
}

// Start schedules the process loops on eng beginning at the current
// time.
func (w *IOR) Start(eng *sim.Engine) {
	if w.cfg.Aggregators > 0 {
		w.startCollective(eng)
		return
	}
	w.remaining = w.cfg.Procs
	cores := w.node.Config().Cores
	for i := 0; i < w.cfg.Procs; i++ {
		i := i
		core := (w.cfg.FirstCore + i) % cores
		p := w.node.NewProc(i, core)
		file := w.cfg.FirstFile + pfs.FileID(i)
		if w.cfg.Segmented {
			file = w.cfg.FirstFile
		}
		transfers := w.cfg.Transfers()
		op := p.Read
		if w.cfg.Write {
			op = p.Write
		}
		// order[k] is the transfer index of the k-th request: identity
		// for sequential IOR, a seeded permutation for random mode.
		order := make([]int, transfers)
		for k := range order {
			order[k] = k
		}
		if w.cfg.RandomAccess {
			r := rng.New(rng.Derive(w.cfg.Seed, uint64(i)))
			r.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		}
		offset := func(k int) units.Bytes {
			if w.cfg.Segmented {
				return units.Bytes(order[k]*w.cfg.Procs+i) * w.cfg.TransferSize
			}
			return units.Bytes(order[k]) * w.cfg.TransferSize
		}
		var step func(k int) sim.Event
		step = func(k int) sim.Event {
			return func(now units.Time) {
				if k >= transfers {
					w.perProc[i] = now
					w.remaining--
					if w.remaining == 0 {
						w.finished = now
						if w.onDone != nil {
							w.onDone(now)
						}
					}
					return
				}
				next := func(units.Time) {
					op(file, offset(k), w.cfg.TransferSize, step(k+1))
				}
				if w.cfg.ThinkTime > 0 {
					eng.After(w.cfg.ThinkTime, next)
				} else {
					next(now)
				}
			}
		}
		eng.After(units.Time(i)*w.cfg.Stagger, func(units.Time) {
			op(file, offset(0), w.cfg.TransferSize, step(1))
		})
	}
}

// Finished returns the completion time of the last process (zero while
// running).
func (w *IOR) Finished() units.Time { return w.finished }

// ProcFinished returns the completion time of process i.
func (w *IOR) ProcFinished(i int) units.Time { return w.perProc[i] }

// TotalBytes returns the byte budget across all processes.
func (w *IOR) TotalBytes() units.Bytes {
	return units.Bytes(w.cfg.Procs*w.cfg.Transfers()) * w.cfg.TransferSize
}

// startCollective runs the workload as rounds of two-phase collective
// reads: round k covers the shared-file stripe
// [k*Procs*TransferSize, (k+1)*Procs*TransferSize), with process i
// owning the i-th transfer of the stripe. All processes advance in
// lockstep, as MPI-IO collectives do.
func (w *IOR) startCollective(eng *sim.Engine) {
	w.remaining = 1
	procs := make([]*client.Proc, w.cfg.Procs)
	cores := w.node.Config().Cores
	for i := range procs {
		procs[i] = w.node.NewProc(i, (w.cfg.FirstCore+i)%cores)
	}
	rounds := w.cfg.Transfers()
	cfg := collective.Config{Aggregators: w.cfg.Aggregators}
	var round func(k int) func(*collective.Result)
	round = func(k int) func(*collective.Result) {
		return func(*collective.Result) {
			now := eng.Now()
			if k >= rounds {
				for i := range procs {
					w.perProc[i] = now
				}
				w.remaining = 0
				w.finished = now
				if w.onDone != nil {
					w.onDone(now)
				}
				return
			}
			stripe := units.Bytes(w.cfg.Procs) * w.cfg.TransferSize
			err := collective.Read(eng, w.node, procs, w.cfg.FirstFile,
				units.Bytes(k)*stripe, w.cfg.TransferSize, cfg,
				round(k+1))
			if err != nil {
				panic(fmt.Sprintf("workload: collective: %v", err))
			}
		}
	}
	eng.Immediately(func(units.Time) { round(0)(nil) })
}
