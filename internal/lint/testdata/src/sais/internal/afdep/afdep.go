// Package afdep is a fixture dependency for the allocfree
// cross-package tests: one annotated allocation-free function and one
// allocating function whose proof status travels as an AllocWhy fact.
package afdep

//saisvet:allocfree
func Fast(x int) int { return x + 1 }

// Slow allocates. No finding here (it is unannotated), but annotated
// callers in other packages must not call it.
func Slow() []int { return []int{1} }
