package shard

import (
	"fmt"
	"testing"

	"sais/internal/sim"
	"sais/internal/units"
)

// mkEngines returns n fresh engines.
func mkEngines(n int) []*sim.Engine {
	engs := make([]*sim.Engine, n)
	for i := range engs {
		engs[i] = sim.NewEngine()
	}
	return engs
}

func TestSingleShardRunsToIdle(t *testing.T) {
	engs := mkEngines(1)
	var fired []units.Time
	for _, at := range []units.Time{30, 10, 20} {
		engs[0].At(at, func(now units.Time) { fired = append(fired, now) })
	}
	s := New(engs, 0, 1) // zero lookahead is legal for one shard
	end := s.Run()
	if end != 30 || len(fired) != 3 {
		t.Fatalf("end=%v fired=%v", end, fired)
	}
	if s.Stopped() {
		t.Fatal("Stopped true after drain")
	}
}

// TestPingPong bounces a message between two shards and checks the
// causal chain executes with exact timestamps.
func TestPingPong(t *testing.T) {
	const lookahead = units.Time(5)
	engs := mkEngines(2)
	s := New(engs, lookahead, 2)
	var log []string
	const hops = 4
	var hop func(shard int, k int) sim.Event
	hop = func(shardIdx, k int) sim.Event {
		return func(now units.Time) {
			log = append(log, fmt.Sprintf("s%d@%d", shardIdx, now))
			if k >= hops {
				return
			}
			peer := 1 - shardIdx
			s.Post(shardIdx, peer, Msg{
				At: now + lookahead, SentAt: now, Origin: uint64(shardIdx) + 1, Seq: uint64(k),
				Fn: hop(peer, k+1),
			})
		}
	}
	engs[0].At(0, hop(0, 0))
	end := s.Run()
	want := []string{"s0@0", "s1@5", "s0@10", "s1@15", "s0@20"}
	if len(log) != len(want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log %v, want %v", log, want)
		}
	}
	if end != 20 {
		t.Fatalf("makespan %v, want 20", end)
	}
	if s.Posted() != hops {
		t.Fatalf("posted %d, want %d", s.Posted(), hops)
	}
}

// runMatrix executes one synthetic workload on a given shard/worker
// layout and returns the global fire log. Every shard logs each event
// with its shard id and timestamp; cross-shard messages fan out in a
// deterministic pattern derived from pure arithmetic.
func runMatrix(t *testing.T, shards, workers int) []string {
	t.Helper()
	const lookahead = units.Time(7)
	engs := mkEngines(shards)
	s := New(engs, lookahead, workers)
	var logs = make([][]string, shards)
	var ev func(sh int, id uint64, depth int) sim.Event
	ev = func(sh int, id uint64, depth int) sim.Event {
		return func(now units.Time) {
			logs[sh] = append(logs[sh], fmt.Sprintf("n%d@%d", id, now))
			if depth == 0 {
				return
			}
			// Deterministic fan-out: two children, one local, one on
			// the next shard (self-post when only one shard exists).
			child := id*3 + 1
			engs[sh].At(now+units.Time(child%11)+1, ev(sh, child, depth-1))
			peer := (sh + 1) % shards
			child2 := id*3 + 2
			m := Msg{
				At:     now + lookahead + units.Time(child2%13),
				SentAt: now,
				Origin: id + 1,
				Seq:    child2,
				Fn:     ev(peer, child2, depth-1),
			}
			if peer == sh {
				// Same-shard: schedule directly with the same key.
				engs[sh].ScheduleRemote(m.At, m.SentAt, m.Origin, m.Fn)
			} else {
				s.Post(sh, peer, m)
			}
		}
	}
	for n := 0; n < 6; n++ {
		sh := n % shards
		engs[sh].At(units.Time(n), ev(sh, uint64(100*n), 5))
	}
	s.Run()
	// Merge per-shard logs by node id ownership: each logical node id
	// fires on a layout-dependent shard, so compare the union sorted
	// content-wise instead.
	var all []string
	for _, l := range logs {
		all = append(all, l...)
	}
	return all
}

// TestLayoutInvariance checks the same logical workload produces the
// same multiset of (event, time) observations for every shard and
// worker count. (Cluster-level byte-identity is asserted in package
// cluster; here the synthetic workload's node→shard mapping moves
// with the layout, so we compare contents.)
func TestLayoutInvariance(t *testing.T) {
	base := runMatrix(t, 1, 1)
	seen := map[string]int{}
	for _, e := range base {
		seen[e]++
	}
	for _, shards := range []int{2, 3, 4} {
		for _, workers := range []int{1, 4} {
			got := runMatrix(t, shards, workers)
			if len(got) != len(base) {
				t.Fatalf("shards=%d workers=%d fired %d events, want %d", shards, workers, len(got), len(base))
			}
			diff := map[string]int{}
			for _, e := range got {
				diff[e]++
			}
			for k, v := range seen {
				if diff[k] != v {
					t.Fatalf("shards=%d workers=%d event %q count %d, want %d", shards, workers, k, diff[k], v)
				}
			}
		}
	}
}

// TestMailboxOrderIsCanonical posts the same message set in two
// different arrival orders and checks the destination executes them
// identically.
func TestMailboxOrderIsCanonical(t *testing.T) {
	run := func(perm []int) []string {
		engs := mkEngines(2)
		s := New(engs, 1, 1)
		var log []string
		msgs := []Msg{
			{At: 10, SentAt: 2, Origin: 3, Seq: 1},
			{At: 10, SentAt: 2, Origin: 1, Seq: 9},
			{At: 10, SentAt: 1, Origin: 7, Seq: 4},
			{At: 11, SentAt: 0, Origin: 2, Seq: 2},
		}
		for i := range msgs {
			m := msgs[perm[i]]
			m.Fn = func(now units.Time) {
				log = append(log, fmt.Sprintf("o%d@%d", m.Origin, now))
			}
			s.inbox[1] = append(s.inbox[1], m)
		}
		s.Run()
		return log
	}
	a := run([]int{0, 1, 2, 3})
	b := run([]int{3, 2, 1, 0})
	want := []string{"o7@10", "o1@10", "o3@10", "o2@11"}
	for i := range want {
		if a[i] != want[i] || b[i] != want[i] {
			t.Fatalf("a=%v b=%v want=%v", a, b, want)
		}
	}
}

// TestStopCondition checks the executor stops between rounds and
// reports it.
func TestStopCondition(t *testing.T) {
	engs := mkEngines(2)
	s := New(engs, 1, 1)
	rounds := 0
	s.SetStop(func() bool { rounds++; return rounds > 3 })
	// Endless self-rescheduling tick on each shard.
	var tick func(sh int) sim.Event
	tick = func(sh int) sim.Event {
		return func(now units.Time) { engs[sh].After(1, tick(sh)) }
	}
	engs[0].At(0, tick(0))
	engs[1].At(0, tick(1))
	s.Run()
	if !s.Stopped() {
		t.Fatal("Stopped false after stop condition fired")
	}
}

// TestPostGuards checks the lookahead and origin panics.
func TestPostGuards(t *testing.T) {
	engs := mkEngines(2)
	s := New(engs, 10, 1)
	for name, m := range map[string]Msg{
		"under lookahead": {At: 5, SentAt: 0, Origin: 1, Fn: func(units.Time) {}},
		"zero origin":     {At: 20, SentAt: 0, Origin: 0, Fn: func(units.Time) {}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			s.Post(0, 1, m)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero lookahead multi-shard: no panic")
			}
		}()
		New(mkEngines(2), 0, 1)
	}()
}
