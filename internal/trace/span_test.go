package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"sais/internal/units"
)

func TestSpanBeginEnd(t *testing.T) {
	l := NewSpanLog()
	l.Begin(PhaseIssue, 100, 1, 100, 7, 3, 0)
	if l.OpenCount() != 1 || l.Len() != 0 {
		t.Fatalf("open=%d len=%d after Begin", l.OpenCount(), l.Len())
	}
	l.End(PhaseIssue, 250, 1, 7, 3, -1)
	if l.OpenCount() != 0 || l.Len() != 1 {
		t.Fatalf("open=%d len=%d after End", l.OpenCount(), l.Len())
	}
	s := l.Spans()[0]
	if s.Start != 100 || s.End != 250 || s.Server != 100 || s.Tag != 7 || s.Strip != 3 {
		t.Errorf("span = %+v", s)
	}
	if s.Core != 0 {
		t.Errorf("core = %d, want the Begin core preserved when End passes -1", s.Core)
	}
}

func TestSpanEndOverridesCore(t *testing.T) {
	l := NewSpanLog()
	l.Begin(PhaseSteer, 10, 2, 101, 9, 0, -1)
	l.End(PhaseSteer, 20, 2, 9, 0, 5)
	if got := l.Spans()[0].Core; got != 5 {
		t.Errorf("core = %d, want 5 (steering destination resolved at End)", got)
	}
}

func TestSpanOrphanEnd(t *testing.T) {
	l := NewSpanLog()
	l.End(PhaseIRQ, 50, 1, 1, 0, 2)
	if l.Orphans() != 1 || l.Len() != 0 {
		t.Errorf("orphans=%d len=%d", l.Orphans(), l.Len())
	}
}

func TestSpanPhaseNames(t *testing.T) {
	want := map[Phase]string{
		PhaseIssue: "issue", PhaseService: "service", PhaseFabric: "fabric",
		PhaseRing: "ring", PhaseSteer: "steer", PhaseIRQ: "irq", PhaseConsume: "consume",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), name)
		}
	}
	if Phase(200).String() != "unknown" {
		t.Errorf("out-of-range phase = %q", Phase(200).String())
	}
}

func TestExportChrome(t *testing.T) {
	l := NewSpanLog()
	// One full chain for strip 0, client 1, server 100.
	l.Begin(PhaseIssue, 0, 1, 100, 1, 0, 0)
	l.End(PhaseIssue, 10*units.Microsecond, 1, 1, 0, -1)
	l.Begin(PhaseService, 10*units.Microsecond, 1, 100, 1, 0, -1)
	l.End(PhaseService, 30*units.Microsecond, 1, 1, 0, -1)
	l.Emit(Span{Phase: PhaseFabric, Start: 30 * units.Microsecond, End: 45 * units.Microsecond,
		Client: 1, Server: 100, Tag: 1, Strip: 0, Core: -1})
	l.Emit(Span{Phase: PhaseRing, Start: 45 * units.Microsecond, End: 47 * units.Microsecond,
		Client: 1, Server: 100, Tag: 1, Strip: 0, Core: -1})
	l.Begin(PhaseSteer, 47*units.Microsecond, 1, 100, 1, 0, -1)
	l.End(PhaseSteer, 48*units.Microsecond, 1, 1, 0, 3)
	l.Begin(PhaseIRQ, 48*units.Microsecond, 1, 100, 1, 0, 3)
	l.End(PhaseIRQ, 52*units.Microsecond, 1, 1, 0, 3)
	l.Emit(Span{Phase: PhaseConsume, Start: 52 * units.Microsecond, End: 60 * units.Microsecond,
		Client: 1, Server: -1, Tag: 1, Strip: 0, Core: 0})
	l.AddCoreSpan(CoreSpan{Node: 1, Core: 3, Name: "softirq", Start: 48 * units.Microsecond, End: 52 * units.Microsecond})

	var buf bytes.Buffer
	if err := l.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var spans, meta int
	lastTS := map[[2]int]float64{}
	for _, ev := range out.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
			continue
		case "X":
			spans++
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
		track := [2]int{int(ev["pid"].(float64)), int(ev["tid"].(float64))}
		ts := ev["ts"].(float64)
		if last, ok := lastTS[track]; ok && ts < last {
			t.Errorf("track %v not monotonic: %v after %v", track, ts, last)
		}
		lastTS[track] = ts
		if ev["dur"].(float64) < 0 {
			t.Errorf("negative duration in %v", ev)
		}
	}
	if spans != 8 { // 7 strip phases + 1 core span
		t.Errorf("span events = %d, want 8", spans)
	}
	if meta == 0 {
		t.Error("no metadata (process/thread name) events")
	}
	if l.OpenCount() != 0 {
		t.Errorf("open spans leaked: %d", l.OpenCount())
	}
}
