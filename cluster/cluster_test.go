package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"

	"sais/internal/analytic"
	"sais/internal/irqsched"
	"sais/internal/netsim"
	"sais/internal/trace"
	"sais/internal/units"
)

// quickCfg returns a small, fast configuration for unit tests.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Servers = 8
	cfg.BytesPerProc = 8 * units.MiB
	return cfg
}

func TestRunProducesConsistentResult(t *testing.T) {
	res, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 16*units.MiB {
		t.Errorf("total bytes = %v, want 16MiB (2 procs x 8MiB)", res.TotalBytes)
	}
	if res.Duration <= 0 || res.Bandwidth <= 0 {
		t.Errorf("duration=%v bandwidth=%v", res.Duration, res.Bandwidth)
	}
	if res.CacheMissRate <= 0 || res.CacheMissRate >= 1 {
		t.Errorf("miss rate = %v", res.CacheMissRate)
	}
	if res.CPUUtilization <= 0 || res.CPUUtilization >= 1 {
		t.Errorf("utilization = %v", res.CPUUtilization)
	}
	if res.UnhaltedCycles <= 0 {
		t.Error("no unhalted cycles")
	}
	if res.Interrupts == 0 {
		t.Error("no interrupts counted")
	}
	if res.RingDrops != 0 {
		t.Errorf("ring drops = %d in a healthy run", res.RingDrops)
	}
	if len(res.PerClient) != 1 {
		t.Errorf("per-client entries = %d", len(res.PerClient))
	}
	if res.LineMisses != res.RemoteLines+res.MemoryLines {
		t.Errorf("misses %d != remote %d + memory %d", res.LineMisses, res.RemoteLines, res.MemoryLines)
	}
}

func TestHeadlineResultSAIsBeatsIrqbalance(t *testing.T) {
	cfg := quickCfg()
	cfg.Servers = 16
	base, err := Run(cfg.WithPolicy(irqsched.PolicyIrqbalance))
	if err != nil {
		t.Fatal(err)
	}
	sais, err := Run(cfg.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	if sais.Bandwidth <= base.Bandwidth {
		t.Errorf("SAIs %v not faster than irqbalance %v", sais.Bandwidth, base.Bandwidth)
	}
	if sais.CacheMissRate >= base.CacheMissRate {
		t.Errorf("SAIs miss rate %.3f not below irqbalance %.3f", sais.CacheMissRate, base.CacheMissRate)
	}
	if sais.UnhaltedCycles >= base.UnhaltedCycles {
		t.Errorf("SAIs unhalted %d not below irqbalance %d", sais.UnhaltedCycles, base.UnhaltedCycles)
	}
	if sais.RemoteLines != 0 {
		t.Errorf("SAIs produced %d migrated lines", sais.RemoteLines)
	}
	if base.RemoteLines == 0 {
		t.Error("irqbalance produced no migrated lines")
	}
	if sais.HintedIRQs == 0 {
		t.Error("SAIs recorded no hinted interrupts")
	}
	if base.HintedIRQs != 0 {
		t.Errorf("irqbalance recorded %d hinted interrupts", base.HintedIRQs)
	}
}

func TestOneGigabitNICBottleneckCompressesGain(t *testing.T) {
	cfg := quickCfg()
	cfg.Servers = 16
	g3 := cfg
	g1 := cfg
	g1.ClientNICRate = units.Gigabit

	gain := func(c Config) float64 {
		base, err := Run(c.WithPolicy(irqsched.PolicyIrqbalance))
		if err != nil {
			t.Fatal(err)
		}
		sais, err := Run(c.WithPolicy(irqsched.PolicySourceAware))
		if err != nil {
			t.Fatal(err)
		}
		return float64(sais.Bandwidth)/float64(base.Bandwidth) - 1
	}
	gain1, gain3 := gain(g1), gain(g3)
	if gain1 >= gain3 {
		t.Errorf("1-Gbit gain %.3f not below 3-Gbit gain %.3f (NIC bottleneck must compress it)", gain1, gain3)
	}
	if gain1 > 0.10 {
		t.Errorf("1-Gbit gain %.3f implausibly large", gain1)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.UnhaltedCycles != b.UnhaltedCycles ||
		a.LineAccesses != b.LineAccesses || a.Interrupts != b.Interrupts {
		t.Errorf("identical configs diverged: %+v vs %+v", a, b)
	}
	// A different seed changes the microdynamics but not the totals.
	c := quickCfg()
	c.Seed = 99
	r2, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r2.TotalBytes != a.TotalBytes {
		t.Errorf("seed changed conservation: %v vs %v", r2.TotalBytes, a.TotalBytes)
	}
}

func TestAllPoliciesRun(t *testing.T) {
	for _, p := range irqsched.Kinds() {
		res, err := Run(quickCfg().WithPolicy(p))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.TotalBytes != 16*units.MiB {
			t.Errorf("%v: bytes = %v", p, res.TotalBytes)
		}
	}
}

// TestReorderMetricZeroForInOrderPolicies pins the reorder counters to
// zero for every policy that keeps each flow's frames on one core while
// they are in flight: per-core FIFO softirq processing then preserves
// send order, so any nonzero count would be a steering or accounting
// bug. Flow Director is excluded — its mid-stream table updates are the
// one sanctioned source of reordering (scenarios/flow-director-reorder
// asserts the positive case).
func TestReorderMetricZeroForInOrderPolicies(t *testing.T) {
	for _, p := range irqsched.Kinds() {
		if p == irqsched.PolicyFlowDirector {
			continue
		}
		res, err := Run(quickCfg().WithPolicy(p))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.ReorderedFrames != 0 || res.ReorderDepthMax != 0 {
			t.Errorf("%v: reordered=%d depth=%d, want 0/0",
				p, res.ReorderedFrames, res.ReorderDepthMax)
		}
	}
}

func TestMultiClientSharedFiles(t *testing.T) {
	cfg := quickCfg()
	cfg.Clients = 4
	cfg.Servers = 8
	cfg.SharedFiles = true
	cfg.BytesPerProc = 4 * units.MiB
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := units.Bytes(4*2) * 4 * units.MiB
	if res.TotalBytes != want {
		t.Errorf("total bytes = %v, want %v", res.TotalBytes, want)
	}
	if len(res.PerClient) != 4 {
		t.Errorf("per-client = %d", len(res.PerClient))
	}
	// Shared files must outperform private files on the same cluster:
	// the servers' buffer caches absorb the re-reads.
	cfg2 := cfg
	cfg2.SharedFiles = false
	priv, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth <= priv.Bandwidth {
		t.Errorf("shared %v not above private %v", res.Bandwidth, priv.Bandwidth)
	}
}

func TestFailureInjectionLoss(t *testing.T) {
	cfg := quickCfg()
	cfg.LossRate = 0.001
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Lost strips mean some transfers never complete; the run must
	// still terminate and deliver whatever arrived.
	if res.TotalBytes > 16*units.MiB {
		t.Errorf("delivered more than requested: %v", res.TotalBytes)
	}
	if res.Duration <= 0 {
		t.Error("run did not progress")
	}
}

func TestFailureInjectionServerStall(t *testing.T) {
	base, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.ServerStall = 20 * units.Millisecond
	cfg.ServerStallRate = 0.2
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Bandwidth >= base.Bandwidth {
		t.Errorf("stalled cluster %v not slower than healthy %v", slow.Bandwidth, base.Bandwidth)
	}
	if slow.TotalBytes != base.TotalBytes {
		t.Errorf("stalls lost data: %v vs %v", slow.TotalBytes, base.TotalBytes)
	}
}

func TestFragmentWireMode(t *testing.T) {
	cfg := quickCfg()
	cfg.BytesPerProc = 2 * units.MiB
	cfg.FragmentWire = true
	cfg.CoalesceFrames = 16
	cfg.CoalesceDelay = 100 * units.Microsecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 4*units.MiB {
		t.Errorf("fragmented run bytes = %v", res.TotalBytes)
	}
}

func TestMigrateDuringBlockHurtsSAIs(t *testing.T) {
	cfg := quickCfg()
	cfg.Servers = 16
	sais, err := Run(cfg.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	cfg.MigrateDuringBlock = 1
	migr, err := Run(cfg.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	if migr.RemoteLines == 0 {
		t.Error("forced migration produced no cache-to-cache traffic")
	}
	if migr.Bandwidth >= sais.Bandwidth {
		t.Errorf("migrating SAIs %v not below pinned SAIs %v", migr.Bandwidth, sais.Bandwidth)
	}
}

func TestConfigValidation(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Clients = 0 },
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.CoresPerClient = 0 },
		func(c *Config) { c.ClientNICRate = 0 },
		func(c *Config) { c.StripSize = 0 },
		func(c *Config) { c.ProcsPerClient = 0 },
		func(c *Config) { c.TransferSize = units.KiB },
		func(c *Config) { c.BytesPerProc = units.KiB },
		func(c *Config) { c.LossRate = 1 },
		func(c *Config) { c.ServerStallRate = 2 },
	}
	for i, mod := range mods {
		cfg := DefaultConfig()
		mod(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestWriteWorkloadPoliciesTie(t *testing.T) {
	// The paper studies reads because writes have no interrupt-locality
	// issue; under the write workload the policies must land within a
	// few percent of each other.
	cfg := quickCfg()
	cfg.WriteWorkload = true
	base, err := Run(cfg.WithPolicy(irqsched.PolicyIrqbalance))
	if err != nil {
		t.Fatal(err)
	}
	sais, err := Run(cfg.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalBytes != 16*units.MiB || sais.TotalBytes != 16*units.MiB {
		t.Fatalf("bytes: %v vs %v", base.TotalBytes, sais.TotalBytes)
	}
	gap := float64(sais.Bandwidth)/float64(base.Bandwidth) - 1
	if gap > 0.05 || gap < -0.05 {
		t.Errorf("write-path gap %.2f%%; policies should tie", gap*100)
	}
	if sais.RemoteLines != 0 || base.RemoteLines != 0 {
		t.Errorf("write workload migrated lines: %d / %d", sais.RemoteLines, base.RemoteLines)
	}
}

func TestLossWithRetriesDeliversEverything(t *testing.T) {
	cfg := quickCfg()
	cfg.LossRate = 0.01
	cfg.RetryTimeout = 150 * units.Millisecond
	cfg.MaxRetries = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 16*units.MiB {
		t.Errorf("delivered %v with retries enabled, want all 16MiB", res.TotalBytes)
	}
	if res.Retries == 0 {
		t.Error("1% loss should have triggered retries")
	}
	if res.FailedTransfers != 0 {
		t.Errorf("%d transfers failed despite generous retry budget", res.FailedTransfers)
	}
}

func TestHeavyLossAbandonsTransfers(t *testing.T) {
	cfg := quickCfg()
	cfg.BytesPerProc = 2 * units.MiB
	cfg.LossRate = 0.5
	cfg.RetryTimeout = 50 * units.Millisecond
	cfg.MaxRetries = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedTransfers == 0 {
		t.Error("50% loss with one retry should abandon some transfers")
	}
	if res.TotalBytes >= 4*units.MiB {
		t.Errorf("delivered %v under 50%% loss", res.TotalBytes)
	}
}

func TestWriteLossWithRetries(t *testing.T) {
	cfg := quickCfg()
	cfg.WriteWorkload = true
	cfg.LossRate = 0.01
	cfg.RetryTimeout = 150 * units.Millisecond
	cfg.MaxRetries = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 16*units.MiB {
		t.Errorf("acked %v with retries enabled, want all 16MiB", res.TotalBytes)
	}
}

func TestAnalyticOrderingHoldsInSimulation(t *testing.T) {
	// Cross-check the §III model against the simulator: with the
	// default cost model (M >> P), the analytic prediction is that
	// source-aware beats balanced; the simulator must agree, and the
	// simulated migration stall must be of the order the model's M
	// accounts for.
	cfg := quickCfg()
	cfg.Servers = 16
	base, err := Run(cfg.WithPolicy(irqsched.PolicyIrqbalance))
	if err != nil {
		t.Fatal(err)
	}
	sais, err := Run(cfg.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	p := analytic.Params{
		P:  20 * units.Microsecond,
		M:  200 * units.Microsecond,
		TR: 5 * units.Millisecond,
		NC: cfg.CoresPerClient,
		NS: cfg.Servers,
		NR: int(cfg.BytesPerProc / cfg.TransferSize),
		NP: cfg.ProcsPerClient,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.SourceAwareWins() {
		t.Fatal("model misconfigured: M <= P")
	}
	if sais.Duration >= base.Duration {
		t.Errorf("simulator contradicts the model: sais %v vs balanced %v", sais.Duration, base.Duration)
	}
	// The simulated per-strip migration stall is lines × RemoteLine =
	// 1024 × 200ns ≈ 205µs — the model's M. Check the books agree.
	strips := base.RemoteLines / 1024
	if strips == 0 {
		t.Fatal("no migrated strips under the balanced policy")
	}
	perStrip := base.BusyByCategory["migration"] / units.Time(strips)
	if perStrip < 150*units.Microsecond || perStrip > 250*units.Microsecond {
		t.Errorf("measured per-strip migration cost %v outside the model's M ≈ 200µs", perStrip)
	}
}

func TestBondedClientNIC(t *testing.T) {
	// The testbed's 3-Gigabit NIC is three bonded 1-Gbit ports. A
	// round-robin bond should behave close to the single 3-Gbit model;
	// a flow-hashed bond may do slightly worse (per-flow 1-Gbit cap).
	single := quickCfg()
	single.Servers = 16
	bonded := single
	bonded.ClientNICPorts = 3
	a, err := Run(single.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(bonded.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(b.Bandwidth) / float64(a.Bandwidth)
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("bonded/single bandwidth ratio %.2f out of range (%v vs %v)", ratio, b.Bandwidth, a.Bandwidth)
	}
	flow := bonded
	flow.ClientBondMode = netsim.BondFlowHash
	c, err := Run(flow.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalBytes != a.TotalBytes {
		t.Errorf("flow-hash bond lost data: %v", c.TotalBytes)
	}
}

func TestRandomAccessSlowerThanSequential(t *testing.T) {
	// Random transfer order defeats server readahead, so the same byte
	// budget takes longer — and the SAIs gain survives, since it lives
	// on the client side.
	seq := quickCfg()
	rnd := seq
	rnd.RandomAccess = true
	a, err := Run(seq.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rnd.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalBytes != a.TotalBytes {
		t.Fatalf("random mode lost data: %v vs %v", b.TotalBytes, a.TotalBytes)
	}
	if b.Bandwidth >= a.Bandwidth {
		t.Errorf("random %v not slower than sequential %v", b.Bandwidth, a.Bandwidth)
	}
	base, err := Run(rnd.WithPolicy(irqsched.PolicyIrqbalance))
	if err != nil {
		t.Fatal(err)
	}
	if b.Bandwidth <= base.Bandwidth {
		t.Errorf("SAIs gain vanished under random access: %v vs %v", b.Bandwidth, base.Bandwidth)
	}
}

func TestSocketAwarePolicyBetweenBaselines(t *testing.T) {
	// The hint-precision ablation: socket-granular hints keep strips on
	// the consumer's socket (cheap intra-socket migrations only), so
	// sais-socket should land between irqbalance and exact sais.
	cfg := quickCfg()
	cfg.Servers = 16
	irqb, err := Run(cfg.WithPolicy(irqsched.PolicyIrqbalance))
	if err != nil {
		t.Fatal(err)
	}
	sock, err := Run(cfg.WithPolicy(irqsched.PolicySocketAware))
	if err != nil {
		t.Fatal(err)
	}
	sais, err := Run(cfg.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	if sock.Bandwidth <= irqb.Bandwidth {
		t.Errorf("sais-socket %v not above irqbalance %v", sock.Bandwidth, irqb.Bandwidth)
	}
	if sock.Bandwidth > sais.Bandwidth {
		t.Errorf("sais-socket %v above exact sais %v", sock.Bandwidth, sais.Bandwidth)
	}
	// All its migrations must be intra-socket: under the NUMA price
	// model, its per-line migration cost equals the near cost.
	if sock.RemoteLines == 0 {
		t.Error("sais-socket should still migrate within the socket")
	}
	perLine := float64(sock.BusyByCategory["migration"]) / float64(sock.RemoteLines)
	if perLine > 150 {
		t.Errorf("per-line migration %.0f ns suggests cross-socket traffic (near=140)", perLine)
	}
}

func TestServerCrashAndRecovery(t *testing.T) {
	healthy := quickCfg()
	healthy.RetryTimeout = 100 * units.Millisecond
	healthy.MaxRetries = 20
	base, err := Run(healthy)
	if err != nil {
		t.Fatal(err)
	}

	crash := healthy
	crash.CrashServer = 2
	crash.CrashAt = 20 * units.Millisecond
	crash.ReviveAt = 250 * units.Millisecond
	res, err := Run(crash)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != base.TotalBytes {
		t.Errorf("crash lost data despite retries: %v vs %v", res.TotalBytes, base.TotalBytes)
	}
	if res.Duration <= base.Duration {
		t.Errorf("outage did not slow the run: %v vs %v", res.Duration, base.Duration)
	}
	if res.Retries == 0 {
		t.Error("no retries recorded around the outage")
	}
}

func TestPermanentCrashFailsTransfers(t *testing.T) {
	cfg := quickCfg()
	cfg.BytesPerProc = 2 * units.MiB
	cfg.RetryTimeout = 50 * units.Millisecond
	cfg.MaxRetries = 2
	cfg.CrashServer = 0
	cfg.CrashAt = 0
	cfg.ReviveAt = units.Forever
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedTransfers == 0 {
		t.Error("a permanently dead server should fail transfers")
	}
}

func TestBottleneckGauges(t *testing.T) {
	// At 8 servers the disks work hard; at a 1-Gbit NIC the client link
	// saturates. The gauges must point at the right resource.
	diskBound := quickCfg()
	diskBound.Servers = 8
	a, err := Run(diskBound)
	if err != nil {
		t.Fatal(err)
	}
	if a.DiskBusy <= 0.3 {
		t.Errorf("8-server run disk busy = %.2f; expected substantial disk pressure", a.DiskBusy)
	}
	nicBound := quickCfg()
	nicBound.Servers = 32
	nicBound.ClientNICRate = units.Gigabit
	b, err := Run(nicBound)
	if err != nil {
		t.Fatal(err)
	}
	if b.ClientNICBusy <= 0.7 {
		t.Errorf("1-Gbit run NIC busy = %.2f; expected a saturated link", b.ClientNICBusy)
	}
	if b.DiskBusy >= a.DiskBusy {
		t.Errorf("32-server disks (%.2f) busier than 8-server disks (%.2f)", b.DiskBusy, a.DiskBusy)
	}
	for _, g := range []float64{a.ClientNICBusy, a.DiskBusy, a.ServerCPUBusy} {
		if g < 0 || g > 1.01 {
			t.Errorf("gauge %v outside [0,1]", g)
		}
	}
}

func TestLatencyPercentiles(t *testing.T) {
	cfg := quickCfg()
	cfg.Servers = 16
	base, err := Run(cfg.WithPolicy(irqsched.PolicyIrqbalance))
	if err != nil {
		t.Fatal(err)
	}
	sais, err := Run(cfg.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	if base.LatencyP50 <= 0 || base.LatencyP99 < base.LatencyP50 {
		t.Errorf("percentiles inconsistent: p50=%v p99=%v", base.LatencyP50, base.LatencyP99)
	}
	if sais.LatencyP50 >= base.LatencyP50 {
		t.Errorf("SAIs median latency %v not below irqbalance %v", sais.LatencyP50, base.LatencyP50)
	}
	// Writes report no read latencies.
	w := cfg
	w.WriteWorkload = true
	wres, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if wres.LatencyP50 != 0 {
		t.Errorf("write workload reported read latency %v", wres.LatencyP50)
	}
}

func TestBackgroundLoadRaisesUtilization(t *testing.T) {
	quiet := quickCfg()
	a, err := Run(quiet)
	if err != nil {
		t.Fatal(err)
	}
	noisy := quiet
	noisy.BackgroundLoad = 0.10
	b, err := Run(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if b.CPUUtilization <= a.CPUUtilization+0.05 {
		t.Errorf("background load did not show: %.3f vs %.3f", b.CPUUtilization, a.CPUUtilization)
	}
	if b.TotalBytes != a.TotalBytes {
		t.Errorf("background load lost data: %v vs %v", b.TotalBytes, a.TotalBytes)
	}
	// The run must still terminate (the daemon work stops with the
	// workload) — RunUntilIdle returning at all proves it, but the
	// makespan must stay within reason.
	if b.Duration > 3*a.Duration {
		t.Errorf("background load tripled the makespan: %v vs %v", b.Duration, a.Duration)
	}
	// SAIs still wins under noise.
	sais, err := Run(noisy.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	if sais.Bandwidth <= b.Bandwidth {
		t.Errorf("SAIs %v not above irqbalance %v under background load", sais.Bandwidth, b.Bandwidth)
	}
	bad := quiet
	bad.BackgroundLoad = 1
	if _, err := Run(bad); err == nil {
		t.Error("background load 1.0 accepted")
	}
}

func TestL3SoftensEvictionCost(t *testing.T) {
	// With the Opteron's shared L3 enabled, strips evicted from a
	// private L2 before consumption come back from the L3 instead of
	// DRAM — SAIs (whose large transfers self-evict) gains most.
	base := quickCfg()
	base.Servers = 16
	noL3, err := Run(base.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	withL3 := base
	withL3.L3PerSocket = 6 * units.MiB
	l3, err := Run(withL3.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		t.Fatal(err)
	}
	if l3.Bandwidth <= noL3.Bandwidth {
		t.Errorf("L3 did not help SAIs: %v vs %v", l3.Bandwidth, noL3.Bandwidth)
	}
	if l3.MemoryLines >= noL3.MemoryLines {
		t.Errorf("memory lines %d not reduced from %d", l3.MemoryLines, noL3.MemoryLines)
	}
	if l3.TotalBytes != noL3.TotalBytes {
		t.Errorf("L3 changed delivered bytes: %v vs %v", l3.TotalBytes, noL3.TotalBytes)
	}
}

func TestLongRunSoak(t *testing.T) {
	// A longer steady-state run: rates must stabilize (the second half
	// is no slower than 70% of the full-run average) and every counter
	// must stay self-consistent at scale.
	if testing.Short() {
		t.Skip("soak")
	}
	cfg := DefaultConfig()
	cfg.Servers = 16
	cfg.BytesPerProc = 128 * units.MiB
	cfg.Policy = irqsched.PolicySourceAware
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 256*units.MiB {
		t.Fatalf("bytes = %v", res.TotalBytes)
	}
	if res.LineMisses != res.RemoteLines+res.MemoryLines {
		t.Error("miss books do not balance at scale")
	}
	if res.RingDrops != 0 || res.FailedTransfers != 0 {
		t.Errorf("drops=%d failed=%d in a clean soak", res.RingDrops, res.FailedTransfers)
	}
	rate := float64(res.Bandwidth) / 1e6
	if rate < 150 || rate > 400 {
		t.Errorf("steady-state rate %.1f MB/s outside the calibrated band", rate)
	}
	if res.LatencyP99 > 20*res.LatencyP50 {
		t.Errorf("latency tail blew up: p50=%v p99=%v", res.LatencyP50, res.LatencyP99)
	}
}

func TestSegmentedLayoutRuns(t *testing.T) {
	cfg := quickCfg()
	cfg.Segmented = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 16*units.MiB {
		t.Errorf("bytes = %v", res.TotalBytes)
	}
	// Two processes interleaving one shared file are *globally*
	// sequential, so shared readahead serves both: segmented should be
	// at least as fast as private files here, and within 2x of them.
	priv, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.Bandwidth) / float64(priv.Bandwidth)
	if ratio < 0.9 || ratio > 2 {
		t.Errorf("segmented/private ratio %.2f outside [0.9, 2] (%v vs %v)",
			ratio, res.Bandwidth, priv.Bandwidth)
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Servers = 48
	cfg.Policy = irqsched.PolicySourceAware
	cfg.TransferSize = 2 * units.MiB
	cfg.SharedFiles = true
	cfg.Costs.RemoteLine = 250
	path := t.TempDir() + "/cfg.json"
	if err := SaveConfig(path, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Servers != 48 || got.Policy != irqsched.PolicySourceAware ||
		got.TransferSize != 2*units.MiB || !got.SharedFiles ||
		got.Costs.RemoteLine != 250 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	// The loaded config runs identically to the original.
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(got)
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.UnhaltedCycles != b.UnhaltedCycles {
		t.Error("loaded config diverged from original")
	}
}

// errWriter fails every write — the io.Writer a full disk looks like.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWriteConfigPropagatesWriterError(t *testing.T) {
	if err := WriteConfig(errWriter{}, DefaultConfig()); err == nil {
		t.Error("WriteConfig to a failing writer returned nil")
	}
}

func TestSaveConfigReportsWriteFailure(t *testing.T) {
	// /dev/full accepts the open and fails every write with ENOSPC —
	// the exact failure SaveConfig used to swallow via `defer f.Close()`.
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	if err := SaveConfig("/dev/full", DefaultConfig()); err == nil {
		t.Error("SaveConfig to a full disk returned nil")
	}
}

func TestReadConfigRejectsGarbage(t *testing.T) {
	if _, err := ReadConfig(strings.NewReader(`{"Servers": 0}`)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := ReadConfig(strings.NewReader(`{"NoSuchField": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ReadConfig(strings.NewReader(`not json`)); err == nil {
		t.Error("non-JSON accepted")
	}
	// Partial configs inherit defaults.
	got, err := ReadConfig(strings.NewReader(`{"Servers": 32}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Servers != 32 || got.CoresPerClient != 8 {
		t.Errorf("partial config = %+v", got)
	}
}

func TestCollectiveWorkloadMode(t *testing.T) {
	cfg := quickCfg()
	cfg.BytesPerProc = 4 * units.MiB
	cfg.Aggregators = 1 // one aggregator serves both processes
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 8*units.MiB {
		t.Errorf("collective bytes = %v, want 8MiB", res.TotalBytes)
	}
	// Phase-2 redistribution appears as cache-to-cache traffic even
	// under irqbalance: the non-aggregator's half moves every round.
	if res.RemoteLines == 0 {
		t.Error("collective mode produced no redistribution traffic")
	}
	// With every process its own aggregator, no bytes move in phase 2
	// and throughput improves (reads of one shared file are globally
	// sequential).
	all := cfg
	all.Aggregators = 2
	res2, err := Run(all)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Bandwidth <= res.Bandwidth {
		t.Errorf("self-aggregating collective %v not above single-aggregator %v",
			res2.Bandwidth, res.Bandwidth)
	}
	if res2.TotalBytes != 8*units.MiB {
		t.Errorf("bytes = %v", res2.TotalBytes)
	}
}

func TestStripingBalance(t *testing.T) {
	// Round-robin striping with aligned transfers must load every
	// server identically.
	cfg := quickCfg()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ServerBytes) != cfg.Servers {
		t.Fatalf("server bytes entries = %d", len(res.ServerBytes))
	}
	first := res.ServerBytes[0]
	if first == 0 {
		t.Fatal("server 0 served nothing")
	}
	for i, b := range res.ServerBytes {
		if b != first {
			t.Errorf("server %d served %v, server 0 served %v — striping imbalance", i, b, first)
		}
	}
}

func TestWriteLatencyPercentiles(t *testing.T) {
	cfg := quickCfg()
	cfg.WriteWorkload = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteLatencyP50 <= 0 || res.WriteLatencyP99 < res.WriteLatencyP50 {
		t.Errorf("write percentiles: p50=%v p99=%v", res.WriteLatencyP50, res.WriteLatencyP99)
	}
	if res.LatencyP50 != 0 {
		t.Errorf("read latency %v reported for a write workload", res.LatencyP50)
	}
}

func TestCorruptionWithRetries(t *testing.T) {
	cfg := quickCfg()
	cfg.CorruptRate = 0.01
	cfg.RetryTimeout = 150 * units.Millisecond
	cfg.MaxRetries = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HeaderDrops == 0 {
		t.Error("1% corruption produced no header drops")
	}
	if res.TotalBytes != 16*units.MiB {
		t.Errorf("delivered %v with retries, want all 16MiB", res.TotalBytes)
	}
	bad := cfg
	bad.CorruptRate = 1
	if _, err := Run(bad); err == nil {
		t.Error("corrupt rate 1.0 accepted")
	}
}

func TestNetDropsReported(t *testing.T) {
	cfg := quickCfg()
	cfg.LossRate = 0.02
	cfg.RetryTimeout = 150 * units.Millisecond
	cfg.MaxRetries = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NetDrops == 0 {
		t.Error("fabric drops not surfaced in the result")
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, quickCfg())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Duration != 0 {
		t.Errorf("pre-cancelled run simulated %v, want 0", res.Duration)
	}
}

// pollLimitCtx cancels itself after its Err method has been polled a
// fixed number of times — a deterministic stand-in for a user hitting
// Ctrl-C mid-simulation.
type pollLimitCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (c *pollLimitCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func TestRunContextCancelledMidRun(t *testing.T) {
	full, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	parent, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx := &pollLimitCtx{Context: parent, left: 8}
	res, err := RunContext(ctx, quickCfg())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("interrupted run returned no partial result")
	}
	if res.Duration <= 0 || res.Duration >= full.Duration {
		t.Errorf("interrupted run simulated %v; want strictly inside (0, %v)", res.Duration, full.Duration)
	}
}

func TestRunContextCompleteRunMatchesRun(t *testing.T) {
	plain, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := RunContext(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Duration != withCtx.Duration || plain.Bandwidth != withCtx.Bandwidth ||
		plain.LineAccesses != withCtx.LineAccesses || plain.UnhaltedCycles != withCtx.UnhaltedCycles {
		t.Errorf("context plumbing changed the simulation: %+v vs %+v", plain, withCtx)
	}
}

// spanTestCfg is a small lossless run with a known strip population:
// 2 procs x 2MiB / 1MiB transfers striped at 64KiB over 4 servers
// = 64 strips, no retries, no faults — every strip completes exactly
// one lifecycle chain.
func spanTestCfg() Config {
	cfg := DefaultConfig()
	cfg.Servers = 4
	cfg.BytesPerProc = 2 * units.MiB
	cfg.TransferSize = units.MiB
	return cfg
}

func TestRunSpannedRecordsFullLifecycle(t *testing.T) {
	res, spans, err := RunSpanned(spanTestCfg())
	if err != nil {
		t.Fatal(err)
	}
	const wantStrips = 64 // 2 procs x 2MiB/64KiB strips
	if res.StripCount != wantStrips {
		t.Fatalf("StripCount = %d, want %d", res.StripCount, wantStrips)
	}
	if got := spans.OpenCount(); got != 0 {
		t.Errorf("%d spans still open after a lossless run", got)
	}
	if got := spans.Orphans(); got != 0 {
		t.Errorf("%d orphan End calls", got)
	}
	// Every phase appears exactly once per strip.
	perPhase := make(map[trace.Phase]int)
	chains := make(map[[3]int][]trace.Span) // (client, tag-less strip key) -> spans
	for _, s := range spans.Spans() {
		perPhase[s.Phase]++
		k := [3]int{s.Client, int(s.Tag), s.Strip}
		chains[k] = append(chains[k], s)
		if s.End < s.Start {
			t.Errorf("span %v ends before it starts: %v < %v", s.Phase, s.End, s.Start)
		}
	}
	for p := trace.PhaseIssue; p < trace.NumPhases; p++ {
		if perPhase[p] != wantStrips {
			t.Errorf("phase %v has %d spans, want %d", p, perPhase[p], wantStrips)
		}
	}
	// Each strip's chain is gap-free through the handoff points:
	// issue.End == service.Start, service.End == fabric.Start,
	// fabric.End == ring.Start, ring.End == steer.Start,
	// steer.End == irq.Start.
	for k, chain := range chains {
		by := make(map[trace.Phase]trace.Span)
		for _, s := range chain {
			by[s.Phase] = s
		}
		links := [][2]trace.Phase{
			{trace.PhaseIssue, trace.PhaseService},
			{trace.PhaseService, trace.PhaseFabric},
			{trace.PhaseFabric, trace.PhaseRing},
			{trace.PhaseRing, trace.PhaseSteer},
			{trace.PhaseSteer, trace.PhaseIRQ},
		}
		for _, l := range links {
			a, aok := by[l[0]]
			b, bok := by[l[1]]
			if !aok || !bok {
				t.Fatalf("strip %v missing phase %v or %v", k, l[0], l[1])
			}
			if a.End != b.Start {
				t.Errorf("strip %v: %v.End %v != %v.Start %v", k, l[0], a.End, l[1], b.Start)
			}
		}
		// Consumption happens at or after IRQ completion.
		if by[trace.PhaseConsume].Start < by[trace.PhaseIRQ].End {
			t.Errorf("strip %v consumed before its IRQ finished", k)
		}
	}
}

func TestRunSpannedChromeExport(t *testing.T) {
	_, spans, err := RunSpanned(spanTestCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := spans.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var complete int
	lastTS := make(map[[2]int]float64)
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			if e.Dur < 0 {
				t.Errorf("event %q has negative duration %v", e.Name, e.Dur)
			}
			k := [2]int{e.PID, e.TID}
			if e.TS < lastTS[k] {
				t.Errorf("track %v not monotonic: %v after %v", k, e.TS, lastTS[k])
			}
			lastTS[k] = e.TS
		case "M":
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	// 64 strips x 7 lifecycle phases, plus the client core-activity spans.
	if complete < 64*7 {
		t.Errorf("%d complete events, want at least %d", complete, 64*7)
	}
}
