package pfs

import (
	"sais/internal/netsim"
	"sais/internal/units"
)

// Message bodies exchanged between client and file-system nodes. They
// ride as the opaque Body of netsim frames; the affinity hint travels
// separately in the frame's IP options (the wire truth), exactly as in
// the prototype.

// RequestSize is the on-wire payload size of a read request message.
const RequestSize = 128 * units.Byte

// LayoutRequestSize is the payload size of a metadata (open) query.
const LayoutRequestSize = 64 * units.Byte

// LayoutReplySize is the payload size of a metadata reply.
const LayoutReplySize = 256 * units.Byte

// ReadRequest asks one I/O server for the pieces of a transfer it
// holds.
type ReadRequest struct {
	File   FileID
	Tag    uint64 // client-chosen id of the whole transfer
	Client netsim.NodeID
	Pieces []Piece // local pieces to return, ascending offset
	// LocalEOF is the size of this server's local portion of the file,
	// bounding readahead. Zero disables server-side prefetch.
	LocalEOF units.Bytes
}

// TotalBytes sums the piece sizes.
func (r *ReadRequest) TotalBytes() units.Bytes {
	var n units.Bytes
	for _, p := range r.Pieces {
		n += p.Size
	}
	return n
}

// StripData is one returned strip piece. The data bytes themselves are
// represented by the frame payload size.
type StripData struct {
	File        FileID
	Tag         uint64
	GlobalStrip int
	Size        units.Bytes
}

// StripWrite carries one strip of write data to an I/O server; the
// frame payload is the strip's bytes.
type StripWrite struct {
	File         FileID
	Tag          uint64
	Client       netsim.NodeID
	GlobalStrip  int
	ServerOffset units.Bytes
	Size         units.Bytes
}

// WriteAck acknowledges one written strip back to the client. Writes
// are acknowledged from the server's buffer cache (write-back); the
// platter flush happens asynchronously.
type WriteAck struct {
	File        FileID
	Tag         uint64
	GlobalStrip int
	Size        units.Bytes
}

// WriteAckSize is the on-wire payload size of a write acknowledgement.
const WriteAckSize = 64 * units.Byte

// LayoutRequest is the metadata query issued at file open.
type LayoutRequest struct {
	File   FileID
	Tag    uint64
	Client netsim.NodeID
}

// LayoutReply returns the file's striping layout.
type LayoutReply struct {
	Tag    uint64
	File   FileID
	Layout Layout
}
