package pfs

import (
	"fmt"

	"sais/internal/disk"
	"sais/internal/irqsched"
	"sais/internal/netsim"
	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/trace"
	"sais/internal/units"
)

// ServerConfig sizes one I/O server node.
type ServerConfig struct {
	NIC         netsim.NICConfig
	Disk        disk.Config
	RequestCPU  units.Time  // request parse/dispatch cost
	PerStripCPU units.Time  // per returned strip send-path cost
	EchoHints   bool        // run the HintCapsuler (SAIs server component)
	CacheBytes  units.Bytes // buffer (page) cache capacity; 0 disables
	ReadAhead   units.Bytes // page-cache window read per miss
	// PrefetchDepth is how many upcoming windows the server fetches in
	// the background when it serves a window — Linux-style asynchronous
	// readahead. 0 disables prefetch (every window fill is demand-paged
	// and sits on the request's critical path).
	PrefetchDepth int
}

// DefaultServerConfig models a Sun-Fire X2200 I/O server with the given
// NIC rate: an 8 GB node of which 4 GiB serves as buffer cache, with a
// 256 KiB readahead window (Linux's default is 128 KiB; PVFS servers
// typically double it).
func DefaultServerConfig(rate units.Rate) ServerConfig {
	return ServerConfig{
		NIC:           netsim.DefaultNICConfig(rate),
		Disk:          disk.DefaultConfig(),
		RequestCPU:    120 * units.Microsecond,
		PerStripCPU:   25 * units.Microsecond,
		CacheBytes:    4 * units.GiB,
		ReadAhead:     256 * units.KiB,
		PrefetchDepth: 1,
	}
}

// ServerStats counts server activity.
type ServerStats struct {
	Requests      uint64
	StripsSent    uint64
	BytesSent     units.Bytes
	StripsWritten uint64
	BytesWritten  units.Bytes
	Stalled       uint64 // requests delayed by fault injection
}

// Server is one PVFS I/O server node: NIC + request-processing CPU +
// disk. Its interrupt handling is a single dedicated path (server-side
// scheduling is not the paper's subject), modeled as a FIFO CPU.
type Server struct {
	cfg      ServerConfig
	eng      *sim.Engine
	node     netsim.NodeID
	nic      *netsim.NIC
	cpu      *sim.Server
	dsk      *disk.Disk
	pages    *PageCache
	capsuler irqsched.HintCapsuler
	stats    ServerStats
	// placement maps a file to the base LBA of this server's local
	// portion.
	placement func(FileID) units.Bytes
	// stall injects a per-request service delay for failure testing.
	stall func() units.Time
	// down makes the server drop all traffic (crash injection).
	down bool
	// cpuScale, when set, multiplies every CPU charge by a
	// load-dependent factor sampled at dispatch time — analytic
	// background requests contending for this server's CPU (hybrid
	// workload engine, DESIGN.md §14).
	//saisvet:nilhook
	cpuScale func(now units.Time) float64
	// spans, when non-nil, records the service phase of every strip.
	spans *trace.SpanLog
}

// NewServer builds a server on node id and attaches its NIC to fab.
func NewServer(eng *sim.Engine, fab *netsim.Fabric, id netsim.NodeID, cfg ServerConfig, rnd *rng.Source) *Server {
	window := cfg.ReadAhead
	if window <= 0 {
		window = 64 * units.KiB
	}
	s := &Server{
		cfg:      cfg,
		eng:      eng,
		node:     id,
		nic:      netsim.NewNIC(eng, id, cfg.NIC),
		cpu:      sim.NewServer(eng, fmt.Sprintf("pfs%d-cpu", id)),
		dsk:      disk.New(eng, cfg.Disk, rnd.Split(fmt.Sprintf("disk%d", id))),
		pages:    NewPageCache(eng, cfg.CacheBytes, window),
		capsuler: irqsched.HintCapsuler{Enabled: cfg.EchoHints},
	}
	s.placement = s.defaultPlacement
	fab.Attach(s.nic)
	s.nic.SetInterruptHandler(s.onInterrupt)
	return s
}

// Node returns the server's fabric id.
func (s *Server) Node() netsim.NodeID { return s.node }

// NIC returns the server's NIC, for statistics.
func (s *Server) NIC() *netsim.NIC { return s.nic }

// Disk returns the server's disk, for statistics.
func (s *Server) Disk() *disk.Disk { return s.dsk }

// Pages returns the server's buffer cache, for statistics.
func (s *Server) Pages() *PageCache { return s.pages }

// Stats returns a copy of the counters.
func (s *Server) Stats() ServerStats { return s.stats }

// SetStall installs a per-request extra-delay source for failure
// injection; nil disables.
func (s *Server) SetStall(fn func() units.Time) { s.stall = fn }

// SetDown crashes (true) or revives (false) the server: while down it
// drops every received frame, as a dead node would.
func (s *Server) SetDown(down bool) { s.down = down }

// Down reports the crash state.
func (s *Server) Down() bool { return s.down }

// SetSpanLog attaches the lifecycle span recorder; nil disables.
func (s *Server) SetSpanLog(l *trace.SpanLog) { s.spans = l }

// SetCPUScale installs a load-dependent CPU service-time multiplier:
// every request/strip CPU charge is scaled by fn(dispatchTime). fn must
// be ≥ 1, deterministic, and depend only on this node's state. nil
// restores the fixed-cost path.
func (s *Server) SetCPUScale(fn func(now units.Time) float64) { s.cpuScale = fn }

// chargeCPU submits one unit of request-processing work, applying the
// CPU-scale hook when installed. Without a hook the classic fixed-cost
// Submit runs, keeping classic-run output byte-identical.
func (s *Server) chargeCPU(cost units.Time, done sim.Event) {
	if s.cpuScale == nil {
		s.cpu.Submit(cost, done)
		return
	}
	s.cpu.SubmitFunc(func(start units.Time) units.Time {
		return units.Time(float64(cost) * s.cpuScale(start))
	}, done)
}

// defaultPlacement spreads files across the disk deterministically,
// 1 MiB aligned, so different files force real seeks.
func (s *Server) defaultPlacement(f FileID) units.Bytes {
	const align = units.MiB
	span := s.cfg.Disk.Span / 2
	h := uint64(f)*0x9e3779b97f4a7c15 + uint64(s.node)*0x517cc1b727220a95
	return units.Bytes(h%uint64(span/align)) * align
}

// onInterrupt is the server NIC rx path.
func (s *Server) onInterrupt(units.Time) {
	frames := s.nic.Drain()
	if s.down {
		for _, f := range frames {
			s.nic.Free(f) // crashed: everything received is lost
		}
		return
	}
	for _, f := range frames {
		switch body := f.Body.(type) {
		case *ReadRequest:
			s.handle(body, netsim.ParseHint(f))
		case *StripWrite:
			s.handleWrite(body, netsim.ParseHint(f))
		default:
			// stray traffic
		}
		s.nic.Free(f)
	}
}

// handleWrite accepts one strip of write data: CPU to copy it into the
// buffer cache, an immediate acknowledgement (write-back semantics),
// and an asynchronous flush to the platter. No strip ever needs to be
// delivered to a particular client core, which is why the paper finds
// no interrupt-locality issue on the write path.
func (s *Server) handleWrite(w *StripWrite, hint netsim.AffHint) {
	s.chargeCPU(s.cfg.PerStripCPU, func(units.Time) {
		s.stats.StripsWritten++
		s.stats.BytesWritten += w.Size
		echo := s.capsuler.Echo(hint)
		s.nic.Send(w.Client, WriteAckSize, echo, &WriteAck{
			File: w.File, Tag: w.Tag, GlobalStrip: w.GlobalStrip, Size: w.Size,
		})
		// The written bytes are now cache-resident: a subsequent read of
		// this range must not touch the disk.
		first, last := s.pages.Windows(w.ServerOffset, w.Size)
		for win := first; win <= last; win++ {
			s.pages.Put(w.File, win)
		}
		// Asynchronous write-back to the platter.
		lba := s.placement(w.File) + w.ServerOffset
		size := w.Size
		if lba+size > s.cfg.Disk.Span {
			size = s.cfg.Disk.Span - lba
		}
		if size > 0 {
			s.dsk.Write(lba, size, nil)
		}
	})
}

// handle services one read request: request CPU, then per-piece disk
// reads, each followed by send-path CPU and the data frame carrying the
// echoed hint.
func (s *Server) handle(req *ReadRequest, hint netsim.AffHint) {
	s.stats.Requests++
	var extra units.Time
	if s.stall != nil {
		if d := s.stall(); d > 0 {
			extra = d
			s.stats.Stalled++
		}
	}
	if s.spans != nil {
		// The request has arrived: close each strip's issue span and open
		// its service span at the same instant so the chain is gap-free.
		now := s.eng.Now()
		for _, p := range req.Pieces {
			s.spans.End(trace.PhaseIssue, now, int(req.Client), req.Tag, p.GlobalStrip, -1)
			s.spans.Begin(trace.PhaseService, now, int(req.Client), int(s.node), req.Tag, p.GlobalStrip, -1)
		}
	}
	s.chargeCPU(s.cfg.RequestCPU+extra, func(units.Time) {
		echo := s.capsuler.Echo(hint)
		for _, p := range req.Pieces {
			p := p
			s.readPiece(req.File, p, req.LocalEOF, func(units.Time) {
				s.chargeCPU(s.cfg.PerStripCPU, func(now units.Time) {
					s.stats.StripsSent++
					s.stats.BytesSent += p.Size
					if s.spans != nil {
						s.spans.End(trace.PhaseService, now, int(req.Client), req.Tag, p.GlobalStrip, -1)
					}
					s.nic.Send(req.Client, p.Size, echo, &StripData{
						File:        req.File,
						Tag:         req.Tag,
						GlobalStrip: p.GlobalStrip,
						Size:        p.Size,
					})
				})
			})
		}
	})
}

// readPiece makes the piece's bytes memory-resident: every page-cache
// window the piece overlaps is either already cached, being fetched (we
// join the wait), or read from disk as a whole readahead window. ready
// fires when all windows are resident.
func (s *Server) readPiece(file FileID, p Piece, localEOF units.Bytes, ready sim.Event) {
	first, last := s.pages.Windows(p.ServerOffset, p.Size)
	pending := int(last-first) + 1
	done := func(now units.Time) {
		pending--
		if pending == 0 {
			ready(now)
		}
	}
	for w := first; w <= last; w++ {
		s.fetchWindow(file, w, done)
	}
	// Asynchronous readahead: warm the windows a sequential stream will
	// need next, without anyone waiting on them. Bounded by the local
	// portion's EOF so the disk never reads bytes no request can want.
	if localEOF > 0 {
		lastWindow := int64((localEOF - 1) / s.pages.Window())
		for d := int64(1); d <= int64(s.cfg.PrefetchDepth); d++ {
			if last+d > lastWindow {
				break
			}
			s.fetchWindow(file, last+d, func(units.Time) {})
		}
	}
}

// fetchWindow makes window w of file resident via the page cache,
// demand-reading it from disk on a miss.
func (s *Server) fetchWindow(file FileID, w int64, done sim.Event) {
	s.pages.Get(file, w, done, func(fetched sim.Event) {
		off, size := s.pages.WindowExtent(w)
		lba := s.placement(file) + off
		if lba+size > s.cfg.Disk.Span {
			size = s.cfg.Disk.Span - lba
		}
		if size <= 0 {
			// Window starts past the end of the disk (placement
			// pathology); treat as instantaneous.
			s.eng.Immediately(fetched)
			return
		}
		s.dsk.Read(lba, size, fetched)
	})
}

// CPUBusy returns the server CPU's cumulative busy time.
func (s *Server) CPUBusy() units.Time { return s.cpu.BusyTime() }
