package cache

import (
	"testing"
	"testing/quick"

	"sais/internal/rng"
)

func newDir(n int) *Directory { return NewDirectory(n, smallCfg()) }

func TestDirectoryReadClassification(t *testing.T) {
	d := newDir(4)
	addr := LineAddr(0x1000)
	if k := d.Read(0, addr); k != MissMemory {
		t.Errorf("cold read = %v, want memory-miss", k)
	}
	if k := d.Read(0, addr); k != HitLocal {
		t.Errorf("warm read = %v, want local-hit", k)
	}
	if k := d.Read(1, addr); k != HitRemote {
		t.Errorf("cross-core read = %v, want remote-hit", k)
	}
	// Now both cores hold it Shared.
	if k := d.Read(1, addr); k != HitLocal {
		t.Errorf("re-read on core 1 = %v, want local-hit", k)
	}
	s := d.Stats()
	if s.RemoteTransfers != 1 || s.MemoryFills != 1 || s.LocalHits != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDirectoryWriteInvalidates(t *testing.T) {
	d := newDir(3)
	addr := LineAddr(0x40)
	d.Read(0, addr)
	d.Read(1, addr)
	d.Read(2, addr)
	if k := d.Write(1, addr); k != HitLocal {
		t.Errorf("write on sharer = %v, want local-hit", k)
	}
	owners := d.Owners(addr)
	if len(owners) != 1 || owners[0] != 1 {
		t.Errorf("owners after write = %v, want [1]", owners)
	}
	if err := d.CheckCoherence(addr); err != nil {
		t.Error(err)
	}
	if d.Stats().Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", d.Stats().Invalidations)
	}
}

func TestWriteMissRemote(t *testing.T) {
	d := newDir(2)
	addr := LineAddr(0x80)
	d.Write(0, addr)
	if k := d.Write(1, addr); k != HitRemote {
		t.Errorf("write hitting remote Modified = %v, want remote-hit", k)
	}
	if err := d.CheckCoherence(addr); err != nil {
		t.Error(err)
	}
}

func TestFillModifiedDisplacesPeers(t *testing.T) {
	d := newDir(2)
	addr := LineAddr(0x100)
	d.Read(0, addr)
	d.FillModified(1, addr)
	owners := d.Owners(addr)
	if len(owners) != 1 || owners[0] != 1 {
		t.Errorf("owners = %v, want [1]", owners)
	}
	if err := d.CheckCoherence(addr); err != nil {
		t.Error(err)
	}
}

func TestReadDowngradesModifiedOwner(t *testing.T) {
	d := newDir(2)
	addr := LineAddr(0x140)
	d.Write(0, addr) // core 0 holds Modified
	if k := d.Read(1, addr); k != HitRemote {
		t.Errorf("read of remote Modified = %v, want remote-hit", k)
	}
	if err := d.CheckCoherence(addr); err != nil {
		t.Error(err)
	}
	if d.Stats().WriteBacks == 0 {
		t.Error("downgrade of Modified should count a write-back")
	}
}

func TestDirectoryPanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDirectory(0) did not panic")
		}
	}()
	NewDirectory(0, smallCfg())
}

// Property: after any random sequence of reads/writes/fills, every
// touched line obeys the MESI single-writer invariant.
func TestCoherencePropertyUnderRandomTraffic(t *testing.T) {
	cfg := smallCfg()
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		d := NewDirectory(4, cfg)
		touched := map[LineAddr]bool{}
		for i := 0; i < 500; i++ {
			core := r.Intn(4)
			addr := LineAddr(uint64(r.Intn(64)) * 64)
			touched[addr] = true
			switch r.Intn(3) {
			case 0:
				d.Read(core, addr)
			case 1:
				d.Write(core, addr)
			default:
				d.FillModified(core, addr)
			}
		}
		for a := range touched {
			if d.CheckCoherence(a) != nil {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

// The SAIs scenario in miniature: strip deposited on the consuming core
// is a local hit; deposited elsewhere it costs a remote transfer.
func TestSourceAwareVersusBalancedMicro(t *testing.T) {
	// Source-aware: fill and consume on core 0.
	d1 := newDir(4)
	for i := 0; i < 32; i++ {
		addr := LineAddr(uint64(i) * 64)
		d1.FillModified(0, addr)
		if k := d1.Read(0, addr); k != HitLocal {
			t.Fatalf("source-aware read %d = %v", i, k)
		}
	}
	if d1.Stats().RemoteTransfers != 0 {
		t.Errorf("source-aware remote transfers = %d, want 0", d1.Stats().RemoteTransfers)
	}

	// Balanced: fills round-robin across cores 1..3, consumed on core 0.
	d2 := newDir(4)
	remote := 0
	for i := 0; i < 32; i++ {
		addr := LineAddr(uint64(i) * 64)
		d2.FillModified(1+i%3, addr)
		if d2.Read(0, addr) == HitRemote {
			remote++
		}
	}
	if remote != 32 {
		t.Errorf("balanced scheduling produced %d remote transfers, want 32", remote)
	}
}

func TestDirectoryAccessors(t *testing.T) {
	d := newDir(3)
	if d.Cores() != 3 {
		t.Errorf("Cores = %d", d.Cores())
	}
	if d.Cache(1) == nil {
		t.Error("nil cache")
	}
	for _, k := range []AccessKind{HitLocal, HitRemote, MissMemory, AccessKind(9)} {
		if k.String() == "" {
			t.Errorf("empty string for %d", k)
		}
	}
}
