// Package sais holds the top-level benchmark harness: one testing.B
// benchmark per table/figure of the paper's evaluation. Each benchmark
// runs the corresponding experiment (baseline vs SAIs over the figure's
// sweep) and reports the peak relative change as a custom metric
// (`peak_change_%`), alongside the usual ns/op — so `go test -bench=.`
// regenerates the paper's headline numbers. Ablation benchmarks cover
// the design choices DESIGN.md calls out.
package sais

import (
	"fmt"
	"runtime"
	"testing"

	"sais/cluster"
	"sais/experiments"
	"sais/internal/irqsched"
	"sais/internal/memsim"
	"sais/internal/netsim"
	"sais/internal/units"
)

// runExperiment executes one figure with a single seed per iteration
// and reports its peak change.
func runExperiment(b *testing.B, e experiments.Experiment) {
	b.Helper()
	e.Seeds = 1
	var peak float64
	for i := 0; i < b.N; i++ {
		rep, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		peak, _ = rep.BestChange()
	}
	b.ReportMetric(peak*100, "peak_change_%")
}

// BenchmarkFigure5 regenerates the 3-Gigabit bandwidth comparison
// (paper: peak speed-up 23.57 % at 48 servers).
func BenchmarkFigure5(b *testing.B) { runExperiment(b, experiments.Figure5()) }

// BenchmarkFigure5Parallel is BenchmarkFigure5 fanned out over all
// cores by the internal/runner orchestration layer — the ns/op ratio
// to the serial benchmark is the figure-suite speed-up from -parallel.
func BenchmarkFigure5Parallel(b *testing.B) {
	e := experiments.Figure5()
	e.Parallel = runtime.GOMAXPROCS(0)
	runExperiment(b, e)
}

// BenchmarkBandwidth1G regenerates the §V.C 1-Gigabit bandwidth result
// (paper: peak speed-up 6.05 %, NIC-bound).
func BenchmarkBandwidth1G(b *testing.B) { runExperiment(b, experiments.Figure5OneGig()) }

// BenchmarkFigure6 regenerates the 1-Gigabit L2 miss-rate comparison.
func BenchmarkFigure6(b *testing.B) { runExperiment(b, experiments.Figure6()) }

// BenchmarkFigure7 regenerates the 3-Gigabit L2 miss-rate comparison
// (paper: ≈40 % reduction).
func BenchmarkFigure7(b *testing.B) { runExperiment(b, experiments.Figure7()) }

// BenchmarkFigure8 regenerates the 1-Gigabit CPU utilization figure.
func BenchmarkFigure8(b *testing.B) { runExperiment(b, experiments.Figure8()) }

// BenchmarkFigure9 regenerates the 3-Gigabit CPU utilization figure.
func BenchmarkFigure9(b *testing.B) { runExperiment(b, experiments.Figure9()) }

// BenchmarkFigure10 regenerates the 1-Gigabit CPU_CLK_UNHALTED figure
// (paper: up to 27.14 % improvement).
func BenchmarkFigure10(b *testing.B) { runExperiment(b, experiments.Figure10()) }

// BenchmarkFigure11 regenerates the 3-Gigabit CPU_CLK_UNHALTED figure
// (paper: up to 48.57 % improvement).
func BenchmarkFigure11(b *testing.B) { runExperiment(b, experiments.Figure11()) }

// BenchmarkFigure12 regenerates the multi-client scalability figure
// (paper: +20.46 % at 8 clients decaying to +1.39 % at 56).
func BenchmarkFigure12(b *testing.B) { runExperiment(b, experiments.Figure12()) }

// BenchmarkFigure14 regenerates the §VI no-NIC-bottleneck figure
// (paper: peak +53.23 %, convergence once apps ≥ cores).
func BenchmarkFigure14(b *testing.B) { runExperiment(b, experiments.Figure14()) }

// BenchmarkMemSim runs the real-execution §VI companion (Si-SAIs vs
// Si-Irqbalance memory streams) and reports the measured speed-up.
func BenchmarkMemSim(b *testing.B) {
	cfg := memsim.DefaultConfig()
	cfg.Requests = 32
	var speedup float64
	for i := 0; i < b.N; i++ {
		s, err := memsim.RunSiSAIs(cfg)
		if err != nil {
			b.Fatal(err)
		}
		irqb, err := memsim.RunSiIrqbalance(cfg)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(s.Rate)/float64(irqb.Rate) - 1
	}
	b.ReportMetric(speedup*100, "peak_change_%")
}

// BenchmarkShardedScaling measures the sharded executor on a 256-node
// cluster (224 clients, 32 servers) across shard/worker layouts. Every
// layout computes the identical result (asserted by the cluster
// package's differential tests); the benchmark tracks what the layouts
// cost. Worker counts above GOMAXPROCS cannot buy wall-clock speedup —
// on a single-CPU host the parallel rounds only measure coordination
// overhead — so treat the workers>1 numbers as overhead ceilings, not
// speedups, unless the host has cores to spare.
func BenchmarkShardedScaling(b *testing.B) {
	cfg := cluster.DefaultConfig()
	cfg.Clients = 224
	cfg.Servers = 32
	cfg.CoresPerClient = 2
	cfg.ProcsPerClient = 1
	cfg.CachePerCore = 64 * units.KiB
	cfg.StripSize = 16 * units.KiB
	cfg.TransferSize = 64 * units.KiB
	cfg.BytesPerProc = 256 * units.KiB
	cfg.Policy = irqsched.PolicySourceAware
	layouts := []struct{ shards, workers int }{
		{1, 1}, {4, 1}, {8, 1}, {4, 4}, {8, 4},
	}
	for _, l := range layouts {
		l := l
		b.Run(fmt.Sprintf("shards=%d/workers=%d", l.shards, l.workers), func(b *testing.B) {
			c := cfg
			c.Shards, c.Workers = l.shards, l.workers
			var bw units.Rate
			for i := 0; i < b.N; i++ {
				res, err := cluster.Run(c)
				if err != nil {
					b.Fatal(err)
				}
				bw = res.Bandwidth
			}
			b.ReportMetric(float64(bw)/1e6, "sim_MB/s")
		})
	}
}

// --- ablation benchmarks (DESIGN.md §6) ---

// abCfg is the shared ablation configuration.
func abCfg() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Servers = 32
	cfg.BytesPerProc = 16 * units.MiB
	return cfg
}

// pairSpeedup runs irqbalance vs SAIs once and returns the bandwidth
// speed-up.
func pairSpeedup(b *testing.B, cfg cluster.Config) float64 {
	b.Helper()
	base, err := cluster.Run(cfg.WithPolicy(irqsched.PolicyIrqbalance))
	if err != nil {
		b.Fatal(err)
	}
	sais, err := cluster.Run(cfg.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		b.Fatal(err)
	}
	return float64(sais.Bandwidth)/float64(base.Bandwidth) - 1
}

// BenchmarkAblationMPRatio sweeps the migration cost M — the knob the
// paper's M >> P assumption hinges on. The reported metric is the
// speed-up at the crossover-adjacent low-M point; the full sweep is in
// examples/ablation.
func BenchmarkAblationMPRatio(b *testing.B) {
	for _, remote := range []struct {
		name string
		cost units.Time
	}{{"M~P", 20}, {"M=5P", 110}, {"M=10P", 200}, {"M=20P", 400}} {
		remote := remote
		b.Run(remote.name, func(b *testing.B) {
			cfg := abCfg()
			cfg.Costs.RemoteLine = remote.cost
			var s float64
			for i := 0; i < b.N; i++ {
				s = pairSpeedup(b, cfg)
			}
			b.ReportMetric(s*100, "peak_change_%")
		})
	}
}

// BenchmarkAblationCoalescing verifies the gain survives interrupt
// coalescing (placement, not interrupt count, is what matters).
func BenchmarkAblationCoalescing(b *testing.B) {
	for _, frames := range []int{1, 8, 32} {
		frames := frames
		b.Run(map[int]string{1: "per-frame", 8: "x8", 32: "x32"}[frames], func(b *testing.B) {
			cfg := abCfg()
			cfg.CoalesceFrames = frames
			cfg.CoalesceDelay = 100 * units.Microsecond
			var s float64
			for i := 0; i < b.N; i++ {
				s = pairSpeedup(b, cfg)
			}
			b.ReportMetric(s*100, "peak_change_%")
		})
	}
}

// BenchmarkAblationWakeMigration quantifies the paper's policy (i) vs
// (ii) distinction: how much of the gain survives when processes hop
// cores on wake.
func BenchmarkAblationWakeMigration(b *testing.B) {
	for _, p := range []struct {
		name string
		prob float64
	}{{"pinned", 0}, {"migrate-5pct", 0.05}, {"migrate-always", 1}} {
		p := p
		b.Run(p.name, func(b *testing.B) {
			cfg := abCfg()
			cfg.MigrateDuringBlock = p.prob
			var s float64
			for i := 0; i < b.N; i++ {
				s = pairSpeedup(b, cfg)
			}
			b.ReportMetric(s*100, "peak_change_%")
		})
	}
}

// BenchmarkAblationIrqbalancePeriod sweeps the daemon's rebalance
// period; faster rebalancing does not recover locality.
func BenchmarkAblationIrqbalancePeriod(b *testing.B) {
	for _, period := range []struct {
		name string
		d    units.Time
	}{{"1ms", units.Millisecond}, {"10ms", 10 * units.Millisecond}, {"100ms", 100 * units.Millisecond}} {
		period := period
		b.Run(period.name, func(b *testing.B) {
			cfg := abCfg()
			cfg.IrqbalancePeriod = period.d
			var s float64
			for i := 0; i < b.N; i++ {
				s = pairSpeedup(b, cfg)
			}
			b.ReportMetric(s*100, "peak_change_%")
		})
	}
}

// BenchmarkAblationStripSize sweeps the PVFS strip size around the
// testbed's 64 KiB.
func BenchmarkAblationStripSize(b *testing.B) {
	for _, strip := range []units.Bytes{16 * units.KiB, 64 * units.KiB, 256 * units.KiB} {
		strip := strip
		b.Run(strip.String(), func(b *testing.B) {
			cfg := abCfg()
			cfg.StripSize = strip
			var s float64
			for i := 0; i < b.N; i++ {
				s = pairSpeedup(b, cfg)
			}
			b.ReportMetric(s*100, "peak_change_%")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// bytes per wall-clock second for the default configuration, the
// metric that bounds how large an experiment is practical.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := cluster.DefaultConfig()
	cfg.BytesPerProc = 8 * units.MiB
	var bytes int64
	for i := 0; i < b.N; i++ {
		res, err := cluster.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bytes += int64(res.TotalBytes)
	}
	b.SetBytes(bytes / int64(b.N))
}

// BenchmarkAblationBondedNIC compares the single-3-Gbit-port model with
// the testbed's physical 3×1-Gbit bond under both bonding modes.
func BenchmarkAblationBondedNIC(b *testing.B) {
	for _, mode := range []struct {
		name  string
		ports int
		bond  netsim.BondMode
	}{
		{"single-3G", 1, netsim.BondRoundRobin},
		{"bond-rr-3x1G", 3, netsim.BondRoundRobin},
		{"bond-hash-3x1G", 3, netsim.BondFlowHash},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			cfg := abCfg()
			cfg.ClientNICPorts = mode.ports
			cfg.ClientBondMode = mode.bond
			var s float64
			for i := 0; i < b.N; i++ {
				s = pairSpeedup(b, cfg)
			}
			b.ReportMetric(s*100, "peak_change_%")
		})
	}
}

// BenchmarkAblationPolicyII compares the paper's scheduling policy (i)
// — follow the request-time hint — with policy (ii) — follow the
// process's current core — under forced mid-block migration. Without
// migration the two are identical (§III calls the difference trivial).
func BenchmarkAblationPolicyII(b *testing.B) {
	for _, v := range []struct {
		name    string
		migrate float64
		current bool
	}{
		{"pinned-policy-i", 0, false},
		{"migrating-policy-i", 0.25, false},
		{"migrating-policy-ii", 0.25, true},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			cfg := abCfg()
			cfg.MigrateDuringBlock = v.migrate
			cfg.CurrentCoreHint = v.current
			var s float64
			for i := 0; i < b.N; i++ {
				s = pairSpeedup(b, cfg)
			}
			b.ReportMetric(s*100, "peak_change_%")
		})
	}
}

// BenchmarkAblationL3 measures the effect of the Opteron's shared
// per-socket L3 victim cache on the SAIs-vs-irqbalance comparison.
// The calibrated baseline runs without it (evictions cost a DRAM
// fill); enabling it softens SAIs' self-eviction penalty on transfers
// larger than the private L2.
func BenchmarkAblationL3(b *testing.B) {
	for _, l3 := range []struct {
		name string
		size units.Bytes
	}{{"no-L3", 0}, {"6MiB-L3", 6 * units.MiB}} {
		l3 := l3
		b.Run(l3.name, func(b *testing.B) {
			cfg := abCfg()
			cfg.L3PerSocket = l3.size
			var s float64
			for i := 0; i < b.N; i++ {
				s = pairSpeedup(b, cfg)
			}
			b.ReportMetric(s*100, "peak_change_%")
		})
	}
}

// BenchmarkAblationSocketHints compares exact-core hints against
// socket-granular hints and no hints at all — the hint-precision axis.
func BenchmarkAblationSocketHints(b *testing.B) {
	run := func(b *testing.B, treatment irqsched.PolicyKind) {
		cfg := abCfg()
		var s float64
		for i := 0; i < b.N; i++ {
			base, err := cluster.Run(cfg.WithPolicy(irqsched.PolicyIrqbalance))
			if err != nil {
				b.Fatal(err)
			}
			treat, err := cluster.Run(cfg.WithPolicy(treatment))
			if err != nil {
				b.Fatal(err)
			}
			s = float64(treat.Bandwidth)/float64(base.Bandwidth) - 1
		}
		b.ReportMetric(s*100, "peak_change_%")
	}
	b.Run("exact-core", func(b *testing.B) { run(b, irqsched.PolicySourceAware) })
	b.Run("socket-only", func(b *testing.B) { run(b, irqsched.PolicySocketAware) })
	b.Run("flow-hash", func(b *testing.B) { run(b, irqsched.PolicyFlowHash) })
}
