package scenario

import (
	"context"
	"testing"

	"sais/cluster"
	"sais/internal/flowsim"
	"sais/internal/units"
)

// hybridCfg is quickCfg carrying an analytic background population.
func hybridCfg() cluster.Config {
	cfg := quickCfg()
	cfg.BackgroundUsers = 50000
	cfg.TenantMix = []flowsim.TenantShare{
		{Name: "stream", Share: 0.7, PerUserRate: 4000, Colocate: 0.2},
		{Name: "burst", Share: 0.3, PerUserRate: 6000, Shape: "burst",
			Period: 5 * units.Millisecond, Duty: 0.4, HotServers: 2},
	}
	return cfg
}

// TestHybridRunPassesInvariants: a healthy hybrid scenario satisfies
// every invariant — including the new background-conservation rule —
// on one engine and on four.
func TestHybridRunPassesInvariants(t *testing.T) {
	for _, shards := range []int{0, 4} {
		cfg := hybridCfg()
		cfg.Shards = shards
		s := &Scenario{
			Name:   "hybrid",
			Config: cfg,
			Assertions: []Assertion{
				{Metric: "background_offered_bytes", Op: ">", Value: 0},
				{Metric: "background_served_fraction", Op: ">", Value: 0.5},
			},
		}
		rep, err := Run(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Passed() {
			t.Fatalf("shards=%d: hybrid scenario failed:\n%s", shards, rep.Summary())
		}
	}
}

// TestBadBackgroundConservationFails is the satellite-1 seeded
// fixture: doctored Results that drop or invent analytic load must be
// caught by the background-conservation invariant — the checker proves
// it can actually fail, not just that healthy runs pass.
func TestBadBackgroundConservationFails(t *testing.T) {
	cfg := hybridCfg()
	res, err := cluster.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckInvariants(cfg, res, nil); len(vs) != 0 {
		t.Fatalf("honest hybrid result flagged: %+v", vs)
	}

	expectViolation := func(name string, doctor func(*cluster.Result)) {
		t.Helper()
		bad := *res
		doctor(&bad)
		found := false
		for _, v := range CheckInvariants(cfg, &bad, nil) {
			if v.Invariant == "background-conservation" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: doctored result passed the checker", name)
		}
	}
	// Served bytes invented out of nothing.
	expectViolation("served exceeds offered", func(r *cluster.Result) {
		r.BackgroundServedBytes = r.BackgroundOfferedBytes + units.MiB
	})
	// A megabyte of offered load silently dropped from the books.
	expectViolation("dropped load", func(r *cluster.Result) {
		r.BackgroundServedBytes -= units.MiB
	})
	// Hybrid run reporting no offered load at all.
	expectViolation("nothing offered", func(r *cluster.Result) {
		r.BackgroundOfferedBytes = 0
		r.BackgroundServedBytes = 0
		r.BackgroundBacklogBytes = 0
	})

	// And the inverse fixture: a classic config whose result claims
	// background bytes.
	classic := quickCfg()
	classicRes, err := cluster.Run(classic)
	if err != nil {
		t.Fatal(err)
	}
	classicRes.BackgroundOfferedBytes = units.MiB
	found := false
	for _, v := range CheckInvariants(classic, classicRes, nil) {
		if v.Invariant == "background-conservation" {
			found = true
		}
	}
	if !found {
		t.Error("classic result with background bytes passed the checker")
	}
}
