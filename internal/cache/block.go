package cache

import (
	"fmt"

	"sais/internal/units"
)

// BlockID names a strip-sized region of memory tracked at block
// granularity. The cluster simulator allocates one BlockID per data
// strip in flight.
type BlockID uint64

// System is the block-granularity cache model used by the cluster
// simulator. Each core has a private cache of fixed byte capacity
// holding whole blocks (strips) under LRU. A block is resident in at
// most one private cache: strips are deposited by softirq processing in
// Modified state and consumed by exactly one application process, so
// the single-owner invariant matches the workload (and keeps the model
// O(1) per strip rather than O(lines)).
//
// Line-level counters (accesses, hits, misses) are derived
// arithmetically from block sizes and the configured line size, so the
// reported L2 miss rates are directly comparable with the paper's
// Oprofile numbers.
type System struct {
	lineSize units.Bytes
	cores    []coreCache
	where    map[BlockID]int // block -> core holding it
	sizes    map[BlockID]units.Bytes
	stats    []BlockStats
	agg      BlockStats

	// Optional shared per-socket L3 victim cache: blocks evicted from a
	// private cache by capacity pressure park here until consumed or
	// displaced. Zero capacity disables it.
	l3         []coreCache // one per socket
	l3Where    map[BlockID]int
	socketSize int
}

type coreCache struct {
	capacity units.Bytes
	used     units.Bytes
	// LRU list, most recent at the back.
	order []BlockID
}

// BlockStats counts line-level cache events for one core (or the
// aggregate).
type BlockStats struct {
	Accesses        uint64 // line accesses by consuming processes
	Hits            uint64 // lines found in the local private cache
	Misses          uint64 // lines not local (remote, L3, or memory)
	RemoteTransfers uint64 // lines migrated cache-to-cache (cost M path)
	L3Transfers     uint64 // lines supplied by the shared victim L3
	MemoryFills     uint64 // lines filled from DRAM
	EvictedBlocks   uint64 // whole blocks evicted by capacity pressure
}

// MissRate returns Misses/Accesses, the figure-6/7 metric.
func (s BlockStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

func (s *BlockStats) add(o BlockStats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.RemoteTransfers += o.RemoteTransfers
	s.L3Transfers += o.L3Transfers
	s.MemoryFills += o.MemoryFills
	s.EvictedBlocks += o.EvictedBlocks
}

// NewSystem builds a block-granularity cache system with nCores private
// caches of perCore bytes each and the given line size.
func NewSystem(nCores int, perCore, lineSize units.Bytes) *System {
	if nCores <= 0 {
		panic("cache: System needs at least one core")
	}
	if perCore <= 0 || lineSize <= 0 {
		panic("cache: non-positive capacity or line size")
	}
	s := &System{
		lineSize: lineSize,
		cores:    make([]coreCache, nCores),
		where:    make(map[BlockID]int),
		sizes:    make(map[BlockID]units.Bytes),
		stats:    make([]BlockStats, nCores),
	}
	for i := range s.cores {
		s.cores[i].capacity = perCore
	}
	return s
}

// ConfigureL3 attaches a shared victim L3 of perSocket bytes to every
// group of socketSize cores. Must be called before any traffic.
func (s *System) ConfigureL3(socketSize int, perSocket units.Bytes) {
	if socketSize < 1 || perSocket <= 0 {
		panic("cache: L3 needs socketSize >= 1 and positive capacity")
	}
	sockets := (len(s.cores) + socketSize - 1) / socketSize
	s.l3 = make([]coreCache, sockets)
	for i := range s.l3 {
		s.l3[i].capacity = perSocket
	}
	s.l3Where = make(map[BlockID]int)
	s.socketSize = socketSize
}

// socketOf maps a core to its socket index (0 when no L3 configured).
func (s *System) socketOf(core int) int {
	if s.socketSize < 1 {
		return 0
	}
	return core / s.socketSize
}

// Cores returns the number of private caches.
func (s *System) Cores() int { return len(s.cores) }

// LineSize returns the configured line size.
func (s *System) LineSize() units.Bytes { return s.lineSize }

// Stats returns the counters for one core.
func (s *System) Stats(core int) BlockStats { return s.stats[core] }

// Aggregate returns counters summed over all cores.
func (s *System) Aggregate() BlockStats { return s.agg }

// lines converts a byte size to a line count, rounding up.
func (s *System) lines(size units.Bytes) uint64 {
	return uint64((size + s.lineSize - 1) / s.lineSize)
}

// Resident reports which core holds the block, or -1 if it is only in
// memory.
func (s *System) Resident(id BlockID) int {
	if c, ok := s.where[id]; ok {
		return c
	}
	return -1
}

// Used returns bytes currently resident in core's cache.
func (s *System) Used(core int) units.Bytes { return s.cores[core].used }

// Fill deposits block id of the given size into core's private cache —
// the model of DMA plus softirq protocol processing on that core. Any
// previous copy elsewhere is dropped (the deposit is a fresh write).
// Blocks larger than the cache bypass it and stay memory-resident, as
// a streaming transfer larger than L2 would.
func (s *System) Fill(core int, id BlockID, size units.Bytes) {
	if size <= 0 {
		panic(fmt.Sprintf("cache: Fill with size %d", size))
	}
	s.drop(id)
	s.l3Drop(id)
	s.sizes[id] = size
	if size > s.cores[core].capacity {
		// Bypass: resident nowhere.
		return
	}
	s.makeRoom(core, size)
	cc := &s.cores[core]
	cc.order = append(cc.order, id)
	cc.used += size
	s.where[id] = core
}

// Consume models the application process on core reading the whole
// block. The outcome classifies the dominant source; line counters are
// charged to the consuming core. After Consume the block is resident in
// the consuming core's cache (it was just read).
func (s *System) Consume(core int, id BlockID) AccessKind {
	kind, _ := s.ConsumeFrom(core, id)
	return kind
}

// ConsumeFrom is Consume plus the identity of the core that supplied a
// remote hit (-1 otherwise) — the information a NUMA cost model needs
// to price the migration by socket distance.
func (s *System) ConsumeFrom(core int, id BlockID) (AccessKind, int) {
	size, ok := s.sizes[id]
	if !ok {
		panic(fmt.Sprintf("cache: Consume of unknown block %d", id))
	}
	n := s.lines(size)
	st := &s.stats[core]
	st.Accesses += n
	s.agg.Accesses += n

	holder, resident := s.where[id]
	supplier := -1
	var kind AccessKind
	switch {
	case resident && holder == core:
		st.Hits += n
		s.agg.Hits += n
		kind = HitLocal
		s.touch(core, id)
		return kind, supplier
	case resident:
		supplier = holder
		// Cache-to-cache migration of every line.
		st.Misses += n
		st.RemoteTransfers += n
		s.agg.Misses += n
		s.agg.RemoteTransfers += n
		kind = HitRemote
		s.drop(id)
	default:
		if socket, inL3 := s.l3Lookup(id); inL3 {
			st.Misses += n
			st.L3Transfers += n
			s.agg.Misses += n
			s.agg.L3Transfers += n
			kind = HitL3
			// The supplier is reported as the first core of the L3's
			// socket, so callers can price the hop by socket distance.
			supplier = socket * s.socketSize
			s.l3Drop(id)
			break
		}
		st.Misses += n
		st.MemoryFills += n
		s.agg.Misses += n
		s.agg.MemoryFills += n
		kind = MissMemory
	}
	// Install into the consumer's cache.
	if size <= s.cores[core].capacity {
		s.makeRoom(core, size)
		cc := &s.cores[core]
		cc.order = append(cc.order, id)
		cc.used += size
		s.where[id] = core
	}
	return kind, supplier
}

// ChargeHits adds n line accesses that hit core's private cache — the
// model of the application touching already-resident working-set data
// (its own buffers, stack, code) during the compute phase. These dilute
// the strip-consumption misses exactly as they do in hardware counters.
func (s *System) ChargeHits(core int, n uint64) {
	s.stats[core].Accesses += n
	s.stats[core].Hits += n
	s.agg.Accesses += n
	s.agg.Hits += n
}

// ChargeRemote adds n line accesses that miss locally and are supplied
// cache-to-cache from a peer core — an explicit intra-node data
// exchange (collective redistribution) outside the block directory.
func (s *System) ChargeRemote(core int, n uint64) {
	st := &s.stats[core]
	st.Accesses += n
	st.Misses += n
	st.RemoteTransfers += n
	s.agg.Accesses += n
	s.agg.Misses += n
	s.agg.RemoteTransfers += n
}

// ChargeBackground adds compute-phase accesses with an explicit miss
// split: misses are charged as memory fills (scheduling-independent
// background misses — cold code, metadata, TLB walks).
func (s *System) ChargeBackground(core int, hits, misses uint64) {
	s.ChargeHits(core, hits)
	st := &s.stats[core]
	st.Accesses += misses
	st.Misses += misses
	st.MemoryFills += misses
	s.agg.Accesses += misses
	s.agg.Misses += misses
	s.agg.MemoryFills += misses
}

// Touch marks the block most-recently-used on the core that holds it,
// used by re-reads that should not be treated as fresh consumption.
func (s *System) Touch(id BlockID) {
	if c, ok := s.where[id]; ok {
		s.touch(c, id)
	}
}

// Release forgets a block entirely — the strip buffer has been freed
// after the application merged it into its destination buffer.
func (s *System) Release(id BlockID) {
	s.drop(id)
	s.l3Drop(id)
	delete(s.sizes, id)
}

// l3Lookup reports which socket's L3 holds id.
func (s *System) l3Lookup(id BlockID) (int, bool) {
	if s.l3 == nil {
		return 0, false
	}
	socket, ok := s.l3Where[id]
	return socket, ok
}

// drop removes id from whatever cache holds it (no stat changes).
func (s *System) drop(id BlockID) {
	core, ok := s.where[id]
	if !ok {
		return
	}
	cc := &s.cores[core]
	for i, b := range cc.order {
		if b == id {
			cc.order = append(cc.order[:i], cc.order[i+1:]...)
			break
		}
	}
	cc.used -= s.sizes[id]
	delete(s.where, id)
}

// touch moves id to the MRU position of core's list.
func (s *System) touch(core int, id BlockID) {
	cc := &s.cores[core]
	for i, b := range cc.order {
		if b == id {
			cc.order = append(cc.order[:i], cc.order[i+1:]...)
			cc.order = append(cc.order, id)
			return
		}
	}
}

// makeRoom evicts LRU blocks from core until size fits; with an L3
// configured, victims park in the core's socket L3.
func (s *System) makeRoom(core int, size units.Bytes) {
	cc := &s.cores[core]
	for cc.used+size > cc.capacity && len(cc.order) > 0 {
		victim := cc.order[0]
		cc.order = cc.order[1:]
		cc.used -= s.sizes[victim]
		delete(s.where, victim)
		s.stats[core].EvictedBlocks++
		s.agg.EvictedBlocks++
		if s.l3 != nil {
			s.l3Insert(s.socketOf(core), victim)
		}
	}
}

// l3Insert parks a victim block in socket's L3, displacing LRU blocks.
func (s *System) l3Insert(socket int, id BlockID) {
	size := s.sizes[id]
	l := &s.l3[socket]
	if size > l.capacity {
		return
	}
	s.l3Drop(id)
	for l.used+size > l.capacity && len(l.order) > 0 {
		old := l.order[0]
		l.order = l.order[1:]
		l.used -= s.sizes[old]
		delete(s.l3Where, old)
	}
	l.order = append(l.order, id)
	l.used += size
	s.l3Where[id] = socket
}

// l3Drop removes id from whatever L3 holds it.
func (s *System) l3Drop(id BlockID) {
	if s.l3 == nil {
		return
	}
	socket, ok := s.l3Where[id]
	if !ok {
		return
	}
	l := &s.l3[socket]
	for i, b := range l.order {
		if b == id {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
	l.used -= s.sizes[id]
	delete(s.l3Where, id)
}

// CheckInvariants validates internal consistency: occupancy sums match,
// every resident block is in exactly one LRU list, and no cache exceeds
// its capacity. Intended for tests.
func (s *System) CheckInvariants() error {
	seen := make(map[BlockID]int)
	for ci := range s.cores {
		cc := &s.cores[ci]
		var sum units.Bytes
		for _, id := range cc.order {
			if prev, dup := seen[id]; dup {
				return fmt.Errorf("cache: block %d in caches %d and %d", id, prev, ci)
			}
			seen[id] = ci
			if s.where[id] != ci {
				return fmt.Errorf("cache: block %d listed on core %d but directory says %d", id, ci, s.where[id])
			}
			sum += s.sizes[id]
		}
		if sum != cc.used {
			return fmt.Errorf("cache: core %d used=%v but list sums to %v", ci, cc.used, sum)
		}
		if cc.used > cc.capacity {
			return fmt.Errorf("cache: core %d over capacity: %v > %v", ci, cc.used, cc.capacity)
		}
	}
	//lint:maporder order-independent invariant sweep: every entry must hold, any violation fails
	for id, c := range s.where {
		if seen[id] != c {
			return fmt.Errorf("cache: directory block %d on core %d missing from list", id, c)
		}
	}
	for si := range s.l3 {
		l := &s.l3[si]
		var sum units.Bytes
		for _, id := range l.order {
			if s.l3Where[id] != si {
				return fmt.Errorf("cache: L3 block %d listed on socket %d but map says %d", id, si, s.l3Where[id])
			}
			if _, private := s.where[id]; private {
				return fmt.Errorf("cache: block %d in both a private cache and L3", id)
			}
			sum += s.sizes[id]
		}
		if sum != l.used {
			return fmt.Errorf("cache: L3 socket %d used=%v but list sums to %v", si, l.used, sum)
		}
		if l.used > l.capacity {
			return fmt.Errorf("cache: L3 socket %d over capacity", si)
		}
	}
	return nil
}
