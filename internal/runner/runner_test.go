package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedSlots(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 16} {
		got, err := Map(context.Background(), 50, Options{Workers: workers},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	render := func(workers int) string {
		rows, err := Map(context.Background(), 20, Options{Workers: workers},
			func(_ context.Context, i int) (string, error) {
				return fmt.Sprintf("row-%02d", i), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(rows, "\n")
	}
	serial := render(1)
	for _, w := range []int{2, 8} {
		if par := render(w); par != serial {
			t.Errorf("workers=%d output differs from serial:\n%s\nvs\n%s", w, par, serial)
		}
	}
}

func TestFirstErrorCancelsQueuedJobs(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	const n, workers = 100, 4
	err := Run(context.Background(), n, Options{Workers: workers},
		func(ctx context.Context, i int) error {
			started.Add(1)
			if i == 0 {
				return boom
			}
			// Every other job parks until the batch is cancelled, so no
			// worker can loop around and start extra jobs first.
			<-ctx.Done()
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if got := started.Load(); got > workers {
		t.Errorf("%d jobs started after first error; at most %d workers should have", got, workers)
	}
}

func TestSerialFirstErrorSkipsRest(t *testing.T) {
	var started int
	boom := errors.New("boom")
	err := Run(context.Background(), 10, Options{Workers: 1},
		func(_ context.Context, i int) error {
			started++
			if i == 2 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if started != 3 {
		t.Errorf("started = %d jobs, want 3 (0, 1, and the failing 2)", started)
	}
}

func TestPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), 8, Options{Workers: workers},
			func(_ context.Context, i int) (int, error) {
				if i == 3 {
					panic("kaboom")
				}
				return i, nil
			})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 3 || pe.Value != "kaboom" || pe.Stack == "" {
			t.Errorf("workers=%d: panic error = {%d %v stack:%d bytes}", workers, pe.Index, pe.Value, len(pe.Stack))
		}
	}
}

func TestContextCancellationStopsBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	var once sync.Once
	err := Run(ctx, 100, Options{Workers: 2}, func(ctx context.Context, i int) error {
		done.Add(1)
		once.Do(cancel)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := done.Load(); got > 3 {
		t.Errorf("%d jobs ran after cancellation", got)
	}
}

func TestDeadlineReported(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := Run(ctx, 10, Options{Workers: 2}, func(ctx context.Context, i int) error {
		<-ctx.Done()
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestPartialResultsSurviveError(t *testing.T) {
	boom := errors.New("boom")
	got, err := Map(context.Background(), 5, Options{Workers: 1},
		func(_ context.Context, i int) (string, error) {
			if i == 3 {
				return "", boom
			}
			return fmt.Sprintf("ok-%d", i), nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	want := []string{"ok-0", "ok-1", "ok-2", "", ""}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("slot %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestProgressCallback(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var seen []int
		_, err := Map(context.Background(), 10, Options{
			Workers: workers,
			OnProgress: func(done, total int) {
				if total != 10 {
					t.Errorf("total = %d, want 10", total)
				}
				mu.Lock()
				seen = append(seen, done)
				mu.Unlock()
			},
		}, func(_ context.Context, i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 10 {
			t.Fatalf("workers=%d: %d progress calls, want 10", workers, len(seen))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Errorf("workers=%d: progress %d = %d, want %d (strictly increasing)", workers, i, d, i+1)
			}
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	got, err := Map(context.Background(), 0, Options{Workers: 8},
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}
