// Package sais is a Go reproduction of "A Source-aware Interrupt
// Scheduling for Modern Parallel I/O Systems" (Zou, Sun, Ma, Duan —
// IPPS 2012): a deterministic discrete-event simulation of a PVFS-style
// parallel I/O cluster whose client-side interrupt scheduling can be
// switched between the paper's policies (round-robin, dedicated-core,
// irqbalance, and the source-aware SAIs) plus several extensions.
//
// The public entry points are the cluster package (assemble and run a
// simulated cluster) and the experiments package (regenerate each of
// the paper's figures). The root package holds the benchmark harness:
// one testing.B benchmark per paper figure and a set of ablation
// benchmarks over the design's load-bearing parameters.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results.
package sais
