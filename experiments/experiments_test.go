package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/units"
)

func TestAllFiguresDefined(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("defined %d experiments, want 15 (10 paper + 5 extensions)", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.PaperNote == "" {
			t.Errorf("experiment %+v missing identity fields", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if len(e.Cells) == 0 {
			t.Errorf("%s has no cells", e.ID)
		}
		if e.Seeds < 3 {
			t.Errorf("%s averages %d seeds; the paper used at least 3", e.ID, e.Seeds)
		}
		for _, c := range e.Cells {
			if err := c.Config.Validate(); err != nil {
				t.Errorf("%s/%s: invalid config: %v", e.ID, c.Label, err)
			}
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("figure12")
	if err != nil || e.ID != "figure12" {
		t.Errorf("ByID(figure12) = %v, %v", e.ID, err)
	}
	if _, err := ByID("figure99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestGridShape(t *testing.T) {
	e := Figure5()
	if len(e.Cells) != 16 {
		t.Fatalf("figure5 cells = %d, want 16 (4 transfers × 4 server counts)", len(e.Cells))
	}
	// Each transfer size appears with each server count.
	labels := map[string]bool{}
	for _, c := range e.Cells {
		labels[c.Label] = true
	}
	for _, want := range []string{"128KiB/8 nodes", "2MiB/48 nodes", "1MiB/32 nodes"} {
		if !labels[want] {
			t.Errorf("missing cell %q", want)
		}
	}
}

func TestMetricDirections(t *testing.T) {
	if !MetricBandwidth.HigherIsBetter() {
		t.Error("bandwidth direction")
	}
	for _, m := range []MetricKind{MetricMissRate, MetricUtilization, MetricUnhalted} {
		if m.HigherIsBetter() {
			t.Errorf("%v should be lower-is-better", m)
		}
	}
}

// runSlice runs a reduced version of an experiment (one seed, the 1MiB
// transfer row) — full figures run in the benchmark harness.
func runSlice(t *testing.T, e Experiment, lo, hi int) *Report {
	t.Helper()
	e.Seeds = 1
	if hi > len(e.Cells) {
		hi = len(e.Cells)
	}
	e.Cells = e.Cells[lo:hi]
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFigure5SAIsWinsEverywhere(t *testing.T) {
	rep := runSlice(t, Figure5(), 8, 12) // the 1MiB row
	for _, c := range rep.Cells {
		if c.Change <= 0 {
			t.Errorf("%s: SAIs did not win (%.2f%%)", c.Label, c.Change*100)
		}
		if c.Change > 0.6 {
			t.Errorf("%s: speed-up %.2f%% implausibly large", c.Label, c.Change*100)
		}
	}
	best, _ := rep.BestChange()
	if best < 0.10 {
		t.Errorf("peak 3-Gbit speed-up %.2f%% too small (paper: 23.57%%)", best*100)
	}
}

func TestOneGigCompressesGain(t *testing.T) {
	g3 := runSlice(t, Figure5(), 8, 12)
	g1 := runSlice(t, Figure5OneGig(), 8, 12)
	best3, _ := g3.BestChange()
	best1, _ := g1.BestChange()
	if best1 >= best3 {
		t.Errorf("1-Gbit peak %.2f%% not below 3-Gbit peak %.2f%%", best1*100, best3*100)
	}
	if best1 > 0.08 {
		t.Errorf("1-Gbit peak %.2f%% exceeds the NIC-bound regime (paper: 6.05%%)", best1*100)
	}
}

func TestFigure7MissRateReduction(t *testing.T) {
	rep := runSlice(t, Figure7(), 8, 12)
	for _, c := range rep.Cells {
		if c.Change < 0.2 || c.Change > 0.7 {
			t.Errorf("%s: miss-rate reduction %.1f%% outside the paper's ≈40%% band", c.Label, c.Change*100)
		}
	}
}

func TestFigure11UnhaltedReduction(t *testing.T) {
	rep := runSlice(t, Figure11(), 8, 12)
	for _, c := range rep.Cells {
		if c.Change <= 0.15 {
			t.Errorf("%s: unhalted reduction %.1f%% too small (paper: up to 48.57%%)", c.Label, c.Change*100)
		}
	}
}

func TestFigure12PeaksThenDecays(t *testing.T) {
	e := Figure12()
	e.Seeds = 1
	e.Cells = []Cell{e.Cells[1], e.Cells[5]} // 8 clients vs 48 clients
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	at8, at48 := rep.Cells[0].Change, rep.Cells[1].Change
	if at8 <= at48 {
		t.Errorf("speed-up at 8 clients (%.2f%%) not above 48 clients (%.2f%%)", at8*100, at48*100)
	}
	if at8 <= 0 {
		t.Errorf("no gain at the paper's peak point: %.2f%%", at8*100)
	}
}

func TestFigure14NoBottleneckGain(t *testing.T) {
	e := Figure14()
	e.Seeds = 1
	e.Cells = []Cell{e.Cells[2]} // 4 apps
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Cells[0].Change
	if got < 0.3 || got > 0.9 {
		t.Errorf("no-bottleneck speed-up %.2f%% outside the paper's ≈53%% region", got*100)
	}
	// Bandwidth must far exceed the 3-Gbit figures.
	if rep.Cells[0].Treatment.Mean() < 800 {
		t.Errorf("treatment bandwidth %.0f MB/s too low for the memory-rate configuration",
			rep.Cells[0].Treatment.Mean())
	}
}

func TestReportTable(t *testing.T) {
	e := Figure5()
	e.Seeds = 1
	e.Cells = e.Cells[:1]
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	table := rep.Table()
	for _, want := range []string{"figure5", "irqbalance", "sais", "peak change", "128KiB/8 nodes"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestEmptyExperimentRejected(t *testing.T) {
	e := Experiment{ID: "empty"}
	if _, err := e.Run(); err == nil {
		t.Error("empty experiment ran")
	}
}

func TestEvalConfigScale(t *testing.T) {
	cfg := evalConfig(rate3G)
	if cfg.BytesPerProc < 16*units.MiB {
		t.Errorf("per-proc budget %v too small for steady state", cfg.BytesPerProc)
	}
}

func TestWritesControlTies(t *testing.T) {
	e := WritesControl()
	e.Seeds = 1
	e.Cells = e.Cells[1:2] // 16 nodes
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Change > 0.05 || c.Change < -0.05 {
		t.Errorf("write-path change %.2f%%; policies should tie", c.Change*100)
	}
}

func TestHybridRetainsGain(t *testing.T) {
	e := HybridComparison()
	e.Seeds = 1
	e.Cells = e.Cells[1:2] // 16 nodes
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Cells[0].Change; got < 0.08 {
		t.Errorf("hybrid gain %.2f%% too small; should retain most of SAIs' gain", got*100)
	}
}

func TestFlowHashLosesToSAIs(t *testing.T) {
	e := FlowHashComparison()
	e.Seeds = 1
	e.Cells = e.Cells[1:2]
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Cells[0].Change; got <= 0 {
		t.Errorf("SAIs did not beat flow-affinity: %.2f%%", got*100)
	}
}

func TestReportChart(t *testing.T) {
	e := Figure5()
	e.Seeds = 1
	e.Cells = e.Cells[:2]
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	chart, err := rep.Chart()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"figure5", "irqbalance", "sais", "128KiB/8 nodes"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q:\n%s", want, chart)
		}
	}
}

func TestReportCSV(t *testing.T) {
	e := Figure5()
	e.Seeds = 2
	e.Cells = e.Cells[:1]
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	csv := rep.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want header + 1 row:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[1], "figure5,") {
		t.Errorf("row = %q", lines[1])
	}
	if got := strings.Count(lines[1], ","); got != 13 {
		t.Errorf("row has %d commas, want 13", got)
	}
}

func TestWriteHTML(t *testing.T) {
	e := Figure5()
	e.Seeds = 1
	e.Cells = e.Cells[:2]
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteHTML(&buf, []*Report{rep}, "2012-05-21 (injected)"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!DOCTYPE html>", "figure5", "irqbalance", "sais", "128KiB/8 nodes", "peak change", "2012-05-21 (injected)"} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
	// With the timestamp injected, the report is a pure function of its
	// inputs: rendering the same reports again must be byte-identical.
	var again strings.Builder
	if err := WriteHTML(&again, []*Report{rep}, "2012-05-21 (injected)"); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Error("WriteHTML is not byte-stable across identical inputs")
	}
}

// failingWriter errors on every write, like a full disk.
type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWriteHTMLPropagatesWriterError(t *testing.T) {
	rep := &Report{ID: "x", Title: "x", Cells: []CellResult{{Label: "c"}}}
	if err := WriteHTML(failingWriter{}, []*Report{rep}, "now"); err == nil {
		t.Error("WriteHTML to a failing writer returned nil")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	e := Figure5()
	e.Seeds = 1
	e.Cells = e.Cells[:4]
	seq, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	e.Parallel = 4
	par, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Cells {
		if seq.Cells[i].Label != par.Cells[i].Label ||
			seq.Cells[i].Baseline.Mean() != par.Cells[i].Baseline.Mean() ||
			seq.Cells[i].Treatment.Mean() != par.Cells[i].Treatment.Mean() {
			t.Errorf("cell %d differs: %+v vs %+v", i, seq.Cells[i], par.Cells[i])
		}
	}
}

// tinyExperiment is a fast synthetic experiment for orchestration
// tests: `cells` small independent cells over the default policies.
func tinyExperiment(cells int) Experiment {
	var cs []Cell
	for i := 0; i < cells; i++ {
		cfg := cluster.DefaultConfig()
		cfg.Servers = 4 + 2*i
		cfg.BytesPerProc = 4 * units.MiB
		cs = append(cs, Cell{Label: fmt.Sprintf("cell-%d", i), Config: cfg})
	}
	return Experiment{
		ID:        "tiny",
		Title:     "orchestration test experiment",
		Metric:    MetricBandwidth,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicySourceAware,
		Cells:     cs,
		Seeds:     2,
	}
}

func TestBestChangeAllRegress(t *testing.T) {
	rep := &Report{Cells: []CellResult{
		{Label: "a", Change: -0.30},
		{Label: "b", Change: -0.05},
		{Label: "c", Change: -0.12},
	}}
	best, label := rep.BestChange()
	if label != "b" || best != -0.05 {
		t.Errorf("BestChange = (%v, %q), want the least-bad cell (-0.05, \"b\")", best, label)
	}
	if _, label := (&Report{}).BestChange(); label != "" {
		t.Errorf("empty report returned label %q", label)
	}
}

// TestFirstCellErrorCancelsRest pins the orchestration error path: the
// first failing cell must stop the experiment — later queued cells are
// never executed (counted via Progress) and the report carries only
// the cells that completed before the failure.
func TestFirstCellErrorCancelsRest(t *testing.T) {
	e := tinyExperiment(6)
	e.Seeds = 1
	e.Cells[2].Config.Servers = 0 // fails Config.Validate immediately
	var executed int
	e.Progress = func(done, total int) { executed = done }
	rep, err := e.RunContext(context.Background())
	if err == nil {
		t.Fatal("experiment with an invalid cell succeeded")
	}
	if !strings.Contains(err.Error(), "cell-2") {
		t.Errorf("error %q does not name the failing cell", err)
	}
	if executed != 2 {
		t.Errorf("executed %d cells after the failure at index 2, want exactly 2", executed)
	}
	if len(rep.Cells) != 2 || rep.Cells[0].Label != "cell-0" || rep.Cells[1].Label != "cell-1" {
		t.Errorf("partial report cells = %+v, want the two completed cells", rep.Cells)
	}
}

// TestParallelCSVByteIdentical is the determinism property the runner
// guarantees: the same experiment rendered from a serial and a
// many-worker run must be byte-identical.
func TestParallelCSVByteIdentical(t *testing.T) {
	e := tinyExperiment(5)
	serial, err := e.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	e.Parallel = 8
	parallel, err := e.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.CSV(), parallel.CSV(); s != p {
		t.Errorf("Parallel=8 CSV differs from serial:\n%s\nvs\n%s", p, s)
	}
	if s, p := serial.Table(), parallel.Table(); s != p {
		t.Errorf("Parallel=8 table differs from serial:\n%s\nvs\n%s", p, s)
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := tinyExperiment(3)
	rep, err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || len(rep.Cells) != 0 {
		t.Errorf("pre-cancelled run reported cells: %+v", rep)
	}
}
