// Fixture proving the rng package exemption: this is raw seed
// arithmetic that would be flagged anywhere else, silent under the
// sais/internal/rng import path because it IS the derivation helper.
package rng

func Derive(seed, stream uint64) uint64 {
	x := seed + (stream+1)*0x9e3779b97f4a7c15 // no finding: rng implements the finalizer
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	return x ^ (x >> 31)
}
