package trace

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"sais/internal/units"
)

// Phase identifies one stage of a strip's lifecycle through the
// simulated cluster. The phases chain: a strip's Issue span ends where
// its Service span starts, and so on through Consume.
type Phase uint8

// Lifecycle phases, in chain order.
const (
	PhaseIssue   Phase = iota // client issue → request arrives at the server
	PhaseService              // server: request arrival → strip handed to the NIC
	PhaseFabric               // NIC egress enqueue → delivery into the client rx ring
	PhaseRing                 // rx ring dwell: delivery → driver drain
	PhaseSteer                // IOAPIC routing decision → local-APIC delivery on the chosen core
	PhaseIRQ                  // interrupt entry + softirq protocol processing
	PhaseConsume              // wake, cache migration, and compute on the consuming core
	NumPhases
)

var phaseNames = [NumPhases]string{
	"issue", "service", "fabric", "ring", "steer", "irq", "consume",
}

// String returns the phase's track label.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Span is one completed phase of one strip's journey, carrying the
// strip's full identity so per-strip timelines can be reassembled
// across components.
type Span struct {
	Phase  Phase
	Start  units.Time
	End    units.Time
	Client int    // client node id
	Server int    // serving node id (-1 when not applicable)
	Tag    uint64 // transfer tag (unique per client)
	Strip  int    // global strip index within the transfer
	Core   int    // client core involved (-1 when not core-bound)
}

// CoreSpan is one contiguous busy slice of a client core, labelled with
// its accounting category — the per-core activity tracks of the Chrome
// export.
type CoreSpan struct {
	Node  int // client node id
	Core  int
	Name  string // busy-time category ("softirq", "compute", ...)
	Start units.Time
	End   units.Time
}

// spanKey matches a Begin with its End across components: the server
// closes the Issue span the client opened, the softirq closes the Steer
// span the driver opened.
type spanKey struct {
	client int
	tag    uint64
	strip  int
	phase  Phase
}

// SpanLog collects the typed spans of one run. A nil *SpanLog is the
// disabled state: every instrumentation site nil-checks its log before
// touching it, so an uninstrumented run allocates nothing. Spans are
// stored by value in one growing slab; the pending map only holds the
// handful of open spans in flight.
//
// One log is shared by every node of a run, so under sharded execution
// (cluster.Config.Workers > 1) instrumentation sites on different
// shards record concurrently: a mutex serializes the appends. The
// recorded content is still deterministic — slab order varies with the
// interleaving, but every exported or aggregated view sorts by a full
// span key first (see ExportChrome), and counts are order-free.
type SpanLog struct {
	mu      sync.Mutex
	spans   []Span
	cores   []CoreSpan
	pending map[spanKey]Span
	orphans uint64
}

// NewSpanLog returns an empty span log.
func NewSpanLog() *SpanLog {
	return &SpanLog{pending: make(map[spanKey]Span)}
}

// Begin opens a span: the phase has started for the identified strip.
// A second Begin for the same strip and phase (a retry) replaces the
// open span.
func (l *SpanLog) Begin(p Phase, at units.Time, client, server int, tag uint64, strip, core int) {
	l.mu.Lock()
	l.pending[spanKey{client, tag, strip, p}] = Span{
		Phase: p, Start: at, Client: client, Server: server, Tag: tag, Strip: strip, Core: core,
	}
	l.mu.Unlock()
}

// End closes the matching open span at the given time and records it.
// core overrides the span's core when >= 0 (the steering decision is
// only known at delivery). An End with no matching Begin is counted in
// Orphans and otherwise ignored.
func (l *SpanLog) End(p Phase, at units.Time, client int, tag uint64, strip, core int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := spanKey{client, tag, strip, p}
	s, ok := l.pending[k]
	if !ok {
		l.orphans++
		return
	}
	delete(l.pending, k)
	s.End = at
	if core >= 0 {
		s.Core = core
	}
	l.spans = append(l.spans, s)
}

// Emit records an already-complete span (both endpoints known at the
// same instrumentation site).
func (l *SpanLog) Emit(s Span) {
	l.mu.Lock()
	l.spans = append(l.spans, s)
	l.mu.Unlock()
}

// AddCoreSpan records one busy slice of a client core.
func (l *SpanLog) AddCoreSpan(cs CoreSpan) {
	l.mu.Lock()
	l.cores = append(l.cores, cs)
	l.mu.Unlock()
}

// Spans returns the completed strip spans in slab order. Call only
// after the run drains; slab order depends on worker interleaving, so
// order-sensitive consumers must sort (see ExportChrome).
func (l *SpanLog) Spans() []Span { return l.spans }

// CoreSpans returns the recorded core busy slices (same caveats as
// Spans).
func (l *SpanLog) CoreSpans() []CoreSpan { return l.cores }

// Len returns the number of completed strip spans.
func (l *SpanLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.spans)
}

// OpenCount returns the spans begun but never ended — non-zero means
// strips died mid-flight (loss, abandon) or instrumentation is
// incomplete.
func (l *SpanLog) OpenCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// PendingSpans returns a sorted copy of the spans begun but never
// ended — the strips that died mid-flight. The invariant checker walks
// them to demand that every issued strip still reached a terminal
// account (a consume span or a typed OpError). Sorted by full span key
// so the view is deterministic under sharded execution.
func (l *SpanLog) PendingSpans() []Span {
	l.mu.Lock()
	out := make([]Span, 0, len(l.pending))
	for _, s := range l.pending {
		out = append(out, s)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Client != b.Client:
			return a.Client < b.Client
		case a.Tag != b.Tag:
			return a.Tag < b.Tag
		case a.Strip != b.Strip:
			return a.Strip < b.Strip
		default:
			return a.Phase < b.Phase
		}
	})
	return out
}

// Orphans returns the count of End calls that matched no open span
// (late duplicates from the retry path).
func (l *SpanLog) Orphans() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.orphans
}

// Chrome-export track layout. Client and server node ids become
// Chrome pids directly; the fabric gets a pid far outside the node-id
// space, and each client's NIC rx ring gets a tid above any plausible
// core count.
const (
	// ChromeFabricPID is the Chrome process id of the fabric-transit
	// track group (one thread per server).
	ChromeFabricPID = 1 << 20
	// ChromeRingTID is the Chrome thread id of a client's "nic ring"
	// track.
	ChromeRingTID = 1000
)

// chromeSpanEvent is one Chrome trace-event record ("X" = complete
// span, "M" = metadata).
type chromeSpanEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container Perfetto and
// chrome://tracing both accept.
type chromeTrace struct {
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	TraceEvents     []chromeSpanEvent `json:"traceEvents"`
}

// track resolves the (pid, tid) pair a span renders on.
func (s Span) track() (pid, tid int) {
	switch s.Phase {
	case PhaseService:
		return s.Server, 0
	case PhaseFabric:
		return ChromeFabricPID, s.Server
	case PhaseRing:
		return s.Client, ChromeRingTID
	default: // issue, steer, irq, consume: a client-core track
		core := s.Core
		if core < 0 {
			core = 0
		}
		return s.Client, core
	}
}

// ExportChrome writes the log as Chrome trace-event JSON: one complete
// ("X") event per span, per-core tracks for each client, one track per
// server's service path, a fabric-transit track group, and per-core
// busy-slice tracks. The file loads in Perfetto or chrome://tracing.
func (l *SpanLog) ExportChrome(w io.Writer) error {
	us := func(t units.Time) float64 { return float64(t) / float64(units.Microsecond) }
	// Slab order depends on event interleaving under sharded execution;
	// sorted copies make the export canonical — byte-identical for any
	// shard and worker count.
	spans := append([]Span(nil), l.spans...)
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		switch {
		case a.Start != b.Start:
			return a.Start < b.Start
		case a.Client != b.Client:
			return a.Client < b.Client
		case a.Tag != b.Tag:
			return a.Tag < b.Tag
		case a.Strip != b.Strip:
			return a.Strip < b.Strip
		case a.Phase != b.Phase:
			return a.Phase < b.Phase
		case a.Server != b.Server:
			return a.Server < b.Server
		case a.End != b.End:
			return a.End < b.End
		default:
			return a.Core < b.Core
		}
	})
	cores := append([]CoreSpan(nil), l.cores...)
	sort.Slice(cores, func(i, j int) bool {
		a, b := cores[i], cores[j]
		switch {
		case a.Start != b.Start:
			return a.Start < b.Start
		case a.Node != b.Node:
			return a.Node < b.Node
		case a.Core != b.Core:
			return a.Core < b.Core
		case a.End != b.End:
			return a.End < b.End
		default:
			return a.Name < b.Name
		}
	})
	events := make([]chromeSpanEvent, 0, len(spans)+len(cores))
	type trackKey struct{ pid, tid int }
	// Track naming is derived from how each track is used.
	procNames := map[int]string{}
	threadNames := map[trackKey]string{}
	for _, s := range spans {
		pid, tid := s.track()
		switch s.Phase {
		case PhaseService:
			procNames[pid] = "server " + itoa(s.Server)
			threadNames[trackKey{pid, tid}] = "service"
		case PhaseFabric:
			procNames[pid] = "fabric"
			threadNames[trackKey{pid, tid}] = "from server " + itoa(s.Server)
		case PhaseRing:
			procNames[pid] = "client " + itoa(s.Client)
			threadNames[trackKey{pid, tid}] = "nic ring"
		default:
			procNames[pid] = "client " + itoa(s.Client)
			threadNames[trackKey{pid, tid}] = "core " + itoa(tid)
		}
		dur := us(s.End - s.Start)
		events = append(events, chromeSpanEvent{
			Name: s.Phase.String(),
			Cat:  "strip",
			Ph:   "X",
			TS:   us(s.Start),
			Dur:  &dur,
			PID:  pid,
			TID:  tid,
			Args: map[string]any{
				"tag": s.Tag, "strip": s.Strip, "server": s.Server, "core": s.Core,
			},
		})
	}
	for _, cs := range cores {
		procNames[cs.Node] = "client " + itoa(cs.Node)
		threadNames[trackKey{cs.Node, cs.Core}] = "core " + itoa(cs.Core)
		dur := us(cs.End - cs.Start)
		events = append(events, chromeSpanEvent{
			Name: cs.Name,
			Cat:  "cpu",
			Ph:   "X",
			TS:   us(cs.Start),
			Dur:  &dur,
			PID:  cs.Node,
			TID:  cs.Core,
		})
	}
	// Sorting by start time makes every (pid, tid) track's timestamps
	// monotonic, which the Perfetto importer expects. The sort is
	// stable over the canonical pre-sort above, so equal timestamps
	// keep a deterministic order too.
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })

	meta := make([]chromeSpanEvent, 0, len(procNames)+len(threadNames))
	for pid, name := range procNames {
		meta = append(meta, chromeSpanEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
	}
	for tk, name := range threadNames {
		meta = append(meta, chromeSpanEvent{
			Name: "thread_name", Ph: "M", PID: tk.pid, TID: tk.tid,
			Args: map[string]any{"name": name},
		})
	}
	sort.Slice(meta, func(i, j int) bool {
		a, b := meta[i], meta[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})

	return json.NewEncoder(w).Encode(chromeTrace{
		DisplayTimeUnit: "ns",
		TraceEvents:     append(meta, events...),
	})
}

// itoa is a minimal non-negative integer formatter (avoids pulling
// strconv into the hot import path for two call sites).
func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
