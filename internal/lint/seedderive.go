package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"sais/internal/lint/analysis"
)

// SeedDerive outlaws raw arithmetic on seed values. Child seeds built
// as seed+i produce correlated streams: runs with consecutive root
// seeds share entire component streams on the diagonal
// (seed=41,stream=3 aliases seed=42,stream=2), which silently couples
// "independent" repetitions. Every derived seed must go through
// rng.Derive (a splitmix64 finalizer) or rng.Source.Split.
//
// A value is treated as a seed when it is a field or variable whose
// name is "seed" or ends in "Seed" (cfg.Seed, rootSeed, ...), looking
// through parentheses and numeric conversions. Any binary arithmetic,
// compound assignment, or ++/-- on such a value is flagged; comparisons
// are fine. The rng package itself is exempt (it implements Derive).
// Suppress with //lint:seedarith and a reason.
var SeedDerive = &analysis.Analyzer{
	Name: "seedderive",
	Doc: "derive child seeds with rng.Derive, never seed arithmetic like seed+i " +
		"(suppress: //lint:seedarith)",
	Directives: []string{"seedarith"},
	Run:        runSeedDerive,
}

// seedArithOps are the operators that combine or perturb a seed value.
var seedArithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.AND: true, token.OR: true, token.XOR: true,
	token.SHL: true, token.SHR: true, token.AND_NOT: true,
}

// seedAssignOps are the compound-assignment forms of seedArithOps.
var seedAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true, token.AND_ASSIGN: true,
	token.OR_ASSIGN: true, token.XOR_ASSIGN: true, token.SHL_ASSIGN: true,
	token.SHR_ASSIGN: true, token.AND_NOT_ASSIGN: true,
}

func runSeedDerive(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if path == "rng" || strings.HasSuffix(path, "/rng") {
		return nil, nil // the one place seed-mixing arithmetic is the point
	}
	dirs := pass.Directives()

	seedish := func(e ast.Expr) (string, bool) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
				continue
			case *ast.CallExpr:
				// Look through numeric conversions: uint64(cfg.Seed).
				if len(x.Args) == 1 && pass.TypesInfo.Types[x.Fun].IsType() {
					e = x.Args[0]
					continue
				}
				return "", false
			case *ast.SelectorExpr:
				return x.Sel.Name, isSeedName(x.Sel.Name)
			case *ast.Ident:
				return x.Name, isSeedName(x.Name)
			default:
				return "", false
			}
		}
	}

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !seedArithOps[n.Op] {
					return true
				}
				for _, op := range []ast.Expr{n.X, n.Y} {
					if name, ok := seedish(op); ok {
						if !dirs.Suppressed(n.Pos(), "seedarith") {
							pass.Reportf(n.Pos(), "arithmetic on seed value %s: derive child seeds with rng.Derive(seed, stream) so consecutive root seeds stay uncorrelated", name)
						}
						break
					}
				}
			case *ast.AssignStmt:
				if !seedAssignOps[n.Tok] {
					return true
				}
				for _, lhs := range n.Lhs {
					if name, ok := seedish(lhs); ok {
						if !dirs.Suppressed(n.Pos(), "seedarith") {
							pass.Reportf(n.Pos(), "compound assignment mutates seed value %s: derive child seeds with rng.Derive instead", name)
						}
						break
					}
				}
			case *ast.IncDecStmt:
				if name, ok := seedish(n.X); ok {
					if !dirs.Suppressed(n.Pos(), "seedarith") {
						pass.Reportf(n.Pos(), "%s on seed value %s: derive child seeds with rng.Derive instead", n.Tok, name)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// isSeedName reports whether name denotes a seed by the repository's
// naming convention: "seed" itself or any camelCase *Seed suffix.
func isSeedName(name string) bool {
	return name == "seed" || name == "Seed" || strings.HasSuffix(name, "Seed")
}
